package serenity_test

import (
	"context"
	"fmt"
	"time"

	serenity "github.com/serenity-ml/serenity"
)

// ExampleBestEffort shows the degradable compile contract: under a deadline
// the exact DP cannot meet, the best-effort strategy returns a valid
// heuristic schedule tagged as such instead of an error.
func ExampleBestEffort() {
	g := serenity.RandWireCell("rw", 48, 8, 0.9, 10, 16, 8)

	opts := serenity.DefaultOptions()
	opts.Strategy = serenity.StrategyBestEffort
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	res, err := serenity.ScheduleContext(ctx, g, opts)
	if err != nil {
		panic(err) // best-effort degrades rather than failing on deadline
	}
	fmt.Println("quality:", res.Quality)
	fmt.Println("valid schedule:", len(res.Order) == res.Graph.NumNodes())
	// Output:
	// quality: heuristic
	// valid schedule: true
}

// ExampleOptions_Validate shows the fast-fail contract for nonsensical
// option combinations.
func ExampleOptions_Validate() {
	opts := serenity.DefaultOptions()
	opts.Parallelism = -4
	fmt.Println(opts.Validate())
	// Output:
	// serenity: negative Parallelism -4 (0 or 1 means sequential)
}

// ExamplePipeline assembles the composable form explicitly: an exact
// searcher, the TF-Lite best-fit arena planner, and an observer counting
// segment searches.
func ExamplePipeline() {
	b := serenity.NewBuilder("net")
	in := b.Input(serenity.Shape{1, 16, 16, 4})
	x := b.Conv(in, 8, 3, 1, serenity.PadSame)
	y := b.Conv(in, 8, 3, 1, serenity.PadSame)
	b.Concat(x, y)

	segments := 0
	p := &serenity.Pipeline{
		Searcher:  serenity.ExactDP{AdaptiveBudget: true},
		Allocator: serenity.ArenaBestFit{},
		Rewrite:   true,
		Partition: true,
		Observer: serenity.ObserverFunc(func(e serenity.Event) {
			if e.Kind == serenity.EventSegmentDone {
				segments++
			}
		}),
	}
	res, err := p.Run(context.Background(), b.Graph())
	if err != nil {
		panic(err)
	}
	fmt.Println("quality:", res.Quality)
	fmt.Println("segments searched:", segments)
	// Output:
	// quality: optimal
	// segments searched: 1
}
