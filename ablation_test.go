// Ablation benchmarks for the design choices DESIGN.md calls out: exact DP
// vs a greedy heuristic, Belady vs LRU replacement, and the extension
// rewrite rules beyond the paper's two patterns.
package serenity

import (
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/memsim"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/sched"
)

// BenchmarkAblationGreedyVsDP quantifies how much the exact DP buys over a
// one-step-lookahead greedy scheduler across the nine benchmark cells.
func BenchmarkAblationGreedyVsDP(b *testing.B) {
	var worst, geo float64
	for i := 0; i < b.N; i++ {
		logSum := 0.0
		worst = 1
		cells := models.BenchmarkCells()
		for _, c := range cells {
			g := c.Build()
			m := sched.NewMemModel(g)
			_, greedyPeak, err := sched.GreedyMemory(m)
			if err != nil {
				b.Fatal(err)
			}
			ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{StepTimeout: 500 * time.Millisecond})
			if err != nil {
				b.Fatal(err)
			}
			ratio := float64(greedyPeak) / float64(ar.Peak)
			if ratio < 1 {
				b.Fatalf("%s/%s: greedy beat the optimum", c.Network, c.Cell)
			}
			if ratio > worst {
				worst = ratio
			}
			logSum += ln(ratio)
		}
		geo = exp(logSum / float64(len(cells)))
	}
	b.ReportMetric(geo, "geomean-greedy/dp")
	b.ReportMetric(worst, "worst-greedy/dp")
}

// BenchmarkAblationBeladyVsLRU compares the clairvoyant policy the paper
// uses against LRU on the SERENITY schedule of SwiftNet Cell A (64 KB SRAM).
func BenchmarkAblationBeladyVsLRU(b *testing.B) {
	g := models.SwiftNetCellA()
	m := sched.NewMemModel(g)
	ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{StepTimeout: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var bel, lru int64
	for i := 0; i < b.N; i++ {
		tb, err := memsim.Simulate(m, ar.Order, memsim.Config{OnChipBytes: 64 * 1024, Policy: memsim.Belady})
		if err != nil {
			b.Fatal(err)
		}
		tl, err := memsim.Simulate(m, ar.Order, memsim.Config{OnChipBytes: 64 * 1024, Policy: memsim.LRU})
		if err != nil {
			b.Fatal(err)
		}
		bel, lru = tb.Total(), tl.Total()
	}
	b.ReportMetric(float64(bel)/1024, "belady-traffic-KB")
	b.ReportMetric(float64(lru)/1024, "lru-traffic-KB")
}

// BenchmarkAblationExtendedRewrite measures the extension rules (identity
// elimination, concat flattening) on top of the paper's partitioning, using
// the DARTS cell whose skip connections are Identity copies.
func BenchmarkAblationExtendedRewrite(b *testing.B) {
	g := DARTSNormalCell()
	var paper, extended float64
	for i := 0; i < b.N; i++ {
		optsPaper := DefaultOptions()
		rp, err := Schedule(g, optsPaper)
		if err != nil {
			b.Fatal(err)
		}
		optsExt := DefaultOptions()
		optsExt.ExtendedRewrite = true
		re, err := Schedule(g, optsExt)
		if err != nil {
			b.Fatal(err)
		}
		if re.Peak > rp.Peak {
			b.Fatalf("extended rules raised the peak: %d > %d", re.Peak, rp.Peak)
		}
		paper, extended = float64(rp.Peak)/1024, float64(re.Peak)/1024
	}
	b.ReportMetric(paper, "paper-rules-KB")
	b.ReportMetric(extended, "extended-rules-KB")
}

// BenchmarkAblationPartitioning measures divide-and-conquer's effect on
// states explored for the rewritten SwiftNet (Table 2's mechanism).
func BenchmarkAblationPartitioning(b *testing.B) {
	var with, without int64
	for i := 0; i < b.N; i++ {
		g := SwiftNet()
		optsNoPart := DefaultOptions()
		optsNoPart.Partition = false
		rn, err := Schedule(g, optsNoPart)
		if err != nil {
			b.Fatal(err)
		}
		rw, err := Schedule(g, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if rn.Peak != rw.Peak {
			b.Fatalf("partitioning changed the optimum: %d vs %d", rn.Peak, rw.Peak)
		}
		with, without = rw.StatesExplored, rn.StatesExplored
	}
	b.ReportMetric(float64(without), "states-whole-graph")
	b.ReportMetric(float64(with), "states-partitioned")
}
