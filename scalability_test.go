// Scalability benchmarks: divide-and-conquer keeps SERENITY's scheduling
// time roughly linear in the number of stacked cells, the property that
// makes whole-network compilation practical (Section 3.2's motivation).
package serenity

import (
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/partition"
)

func stackedNet(cells int) *Graph {
	return models.StackedRandWire("stack", cells, models.WSConfig{
		Nodes: 16, K: 4, P: 0.75, Seed: 5, HW: 16, Channel: 16,
	})
}

func TestStackedRandWirePartitionsPerCell(t *testing.T) {
	g := stackedNet(4)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := partition.Split(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) < 4 {
		t.Fatalf("stacked net yields %d segments, want >= one per cell", len(p.Segments))
	}
	res, err := Schedule(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak > res.BaselinePeak {
		t.Errorf("DP %d worse than baseline %d", res.Peak, res.BaselinePeak)
	}
}

func TestStackedPeakIndependentOfDepth(t *testing.T) {
	// With identical per-cell wiring statistics, the whole-network optimum
	// is the max over cells, so stacking more cells must not inflate it
	// beyond the worst cell.
	opts := DefaultOptions()
	opts.StepTimeout = 250 * time.Millisecond
	r2, err := Schedule(stackedNet(2), opts)
	if err != nil {
		t.Fatal(err)
	}
	r6, err := Schedule(stackedNet(6), opts)
	if err != nil {
		t.Fatal(err)
	}
	// Cells differ per seed, so allow headroom; an O(depth) blow-up would
	// fail this easily.
	if r6.Peak > 2*r2.Peak {
		t.Errorf("peak grew with depth: %d (2 cells) -> %d (6 cells)", r2.Peak, r6.Peak)
	}
}

func BenchmarkScalabilityStackedCells(b *testing.B) {
	for _, cells := range []int{2, 4, 8, 16} {
		g := stackedNet(cells)
		opts := DefaultOptions()
		opts.Rewrite = false
		opts.StepTimeout = 250 * time.Millisecond
		b.Run(byCells(cells), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				res, err := Schedule(g, opts)
				if err != nil {
					b.Fatal(err)
				}
				ms = float64(res.SchedulingTime.Milliseconds())
			}
			b.ReportMetric(ms, "scheduling-ms")
			b.ReportMetric(float64(g.NumNodes()), "nodes")
		})
	}
}

func byCells(n int) string {
	return map[int]string{2: "cells=2", 4: "cells=4", 8: "cells=8", 16: "cells=16"}[n]
}
