package serenity

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

// fakeFleet is an in-memory PeerTier: a shared key->payload corpus standing
// in for the rest of the fleet, with an ownership predicate per node. It lets
// the pipeline-level contract — fetch before compute, validate before trust,
// replicate after fresh compute — be tested without HTTP.
type fakeFleet struct {
	mu      sync.Mutex
	corpus  map[string][]byte
	ownsAll bool // true = this node owns everything (fleet tier inert)

	fetches, fetchHits, replicas int
}

func (f *fakeFleet) Owns(key string) bool { return f.ownsAll }

func (f *fakeFleet) Fetch(ctx context.Context, key string) ([]byte, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fetches++
	payload, ok := f.corpus[key]
	if ok {
		f.fetchHits++
	}
	return payload, ok
}

func (f *fakeFleet) Replicate(_ context.Context, key string, payload []byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.replicas++
	if _, exists := f.corpus[key]; !exists {
		f.corpus[key] = payload
	}
}

// TestPeerTierGlobalPayOnce is the fleet contract at pipeline scope: node A
// computes a graph and replicates its artifacts; node B — cold memory, cold
// disk — compiles the same graph entirely from peer fetches, with zero fresh
// search work and a bit-identical result.
func TestPeerTierGlobalPayOnce(t *testing.T) {
	g := uniformStack("fleet-pay-once", 4, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute

	corpus := map[string][]byte{}
	nodeA := &fakeFleet{corpus: corpus}
	pa := memoPipeline(t, opts, NewSegmentMemo(256))
	pa.Peers = nodeA
	cold, err := pa.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if nodeA.replicas == 0 {
		t.Fatal("node A never replicated its fresh computes to the fleet")
	}
	if cold.SegmentMemoPeerHits != 0 {
		t.Errorf("cold run against an empty fleet reported %d peer hits", cold.SegmentMemoPeerHits)
	}

	nodeB := &fakeFleet{corpus: corpus}
	pb := memoPipeline(t, opts, NewSegmentMemo(256))
	pb.Peers = nodeB
	warm, err := pb.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if warm.FreshStatesExplored != 0 {
		t.Errorf("node B explored %d fresh states; the fleet corpus should have answered every segment", warm.FreshStatesExplored)
	}
	if warm.SegmentMemoPeerHits == 0 {
		t.Error("node B reported no peer hits compiling a fleet-warm graph")
	}
	if !reflect.DeepEqual(cold.Order, warm.Order) {
		t.Errorf("fleet-served order diverged from the computing node's:\nA: %v\nB: %v", cold.Order, warm.Order)
	}
	assertSameResult(t, "fleet pay-once", cold, warm)
}

// TestPeerTierSelfOwnedKeysSkipTheFleet: a node that owns a key must compute
// it locally without dialing anybody — it IS the authority the rest of the
// fleet would ask.
func TestPeerTierSelfOwnedKeysSkipTheFleet(t *testing.T) {
	g := uniformStack("fleet-self-owned", 3, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	fleet := &fakeFleet{corpus: map[string][]byte{}, ownsAll: true}
	p := memoPipeline(t, opts, NewSegmentMemo(256))
	p.Peers = fleet
	if _, err := p.Run(context.Background(), g); err != nil {
		t.Fatal(err)
	}
	if fleet.fetches != 0 || fleet.replicas != 0 {
		t.Errorf("self-owned keys touched the fleet: %d fetches, %d replicas", fleet.fetches, fleet.replicas)
	}
}

// TestPeerTierRejectsInvalidArtifacts: a peer handing back garbage — wrong
// node count, truncated bytes, alien versions — must degrade to local
// compute, never into a wrong schedule or a stored poison entry.
func TestPeerTierRejectsInvalidArtifacts(t *testing.T) {
	g := uniformStack("fleet-invalid", 3, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute

	// Build a corpus of the RIGHT keys holding WRONG payloads: a valid
	// artifact whose node count matches no segment in the graph, and raw
	// garbage. (A wrong artifact with a coincidentally matching node count is
	// undetectable by construction — content addressing is the defense there,
	// and the pipeline's end-to-end Simulate turns such a lie into an error,
	// never a silently wrong schedule. Same trust bar as the disk tier.)
	probe := &fakeFleet{corpus: map[string][]byte{}}
	pp := memoPipeline(t, opts, NewSegmentMemo(256))
	pp.Peers = probe
	want, err := pp.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	alienOrder := make(Order, 40)
	for i := range alienOrder {
		alienOrder[i] = i
	}
	alien, err := MarshalSegmentArtifact(SearchResult{Order: alienOrder, Quality: QualityOptimal})
	if err != nil {
		t.Fatal(err)
	}
	poisoned := map[string][]byte{}
	i := 0
	for key := range probe.corpus {
		if i%2 == 0 {
			poisoned[key] = alien
		} else {
			poisoned[key] = []byte("definitely not an artifact")
		}
		i++
	}

	fleet := &fakeFleet{corpus: poisoned}
	p := memoPipeline(t, opts, NewSegmentMemo(256))
	p.Peers = fleet
	got, err := p.Run(context.Background(), g)
	if err != nil {
		t.Fatalf("poisoned fleet surfaced an error instead of degrading: %v", err)
	}
	if got.SegmentMemoPeerHits != 0 {
		t.Errorf("%d invalid peer artifacts were counted as hits", got.SegmentMemoPeerHits)
	}
	if got.FreshStatesExplored == 0 {
		t.Error("node accepted poisoned artifacts instead of recomputing")
	}
	if fleet.fetchHits == 0 {
		t.Error("test never exercised the validation path (no corpus fetches hit)")
	}
	assertSameResult(t, "poisoned fleet degrades to local compute", want, got)
}

// TestPeerTierStoreOnlyPath covers the memo-less lookupOrCompute route: a
// Pipeline with only a ScheduleStore still fetches from and replicates to
// the fleet.
func TestPeerTierStoreOnlyPath(t *testing.T) {
	g := uniformStack("fleet-store-only", 3, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute

	corpus := map[string][]byte{}
	storeA, err := OpenScheduleStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer storeA.Close()
	pa := memoPipeline(t, opts, nil)
	pa.Store = storeA
	pa.Peers = &fakeFleet{corpus: corpus}
	cold, err := pa.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("store-only pipeline never replicated to the fleet")
	}

	storeB, err := OpenScheduleStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer storeB.Close()
	pb := memoPipeline(t, opts, nil)
	pb.Store = storeB
	pb.Peers = &fakeFleet{corpus: corpus}
	warm, err := pb.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SegmentMemoPeerHits == 0 {
		t.Error("store-only pipeline reported no peer hits against a warm fleet")
	}
	if warm.FreshStatesExplored != 0 {
		t.Errorf("store-only node B explored %d fresh states", warm.FreshStatesExplored)
	}
	assertSameResult(t, "store-only fleet pay-once", cold, warm)
	// Peer fetches write through to B's local store: after a flush the same
	// artifacts must be retrievable with the fleet gone.
	storeB.Flush()
	pb.Peers = nil
	pb.SegmentMemo = nil
	again, err := pb.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if again.SegmentMemoDiskHits == 0 {
		t.Error("peer-fetched artifacts never reached node B's local store")
	}
}
