package serenity

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// checkScheduleInvariants asserts the properties every Schedule result must
// satisfy, regardless of graph shape or options:
//
//  1. Order is a valid topological order of the (possibly rewritten) graph;
//  2. the reported Peak equals an independent liveness simulation's peak;
//  3. the arena is at least the ideal peak (fragmentation can only add);
//  4. the DP never does worse than the memory-oblivious baseline.
func checkScheduleInvariants(t *testing.T, res *Result) {
	t.Helper()
	m := sched.NewMemModel(res.Graph)
	if err := m.CheckValid(res.Order); err != nil {
		t.Fatalf("order invalid: %v", err)
	}
	sim, err := m.Simulate(res.Order)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Peak != sim.Peak {
		t.Errorf("reported peak %d != simulated peak %d", res.Peak, sim.Peak)
	}
	if res.ArenaSize < res.Peak {
		t.Errorf("arena %d < peak %d", res.ArenaSize, res.Peak)
	}
	if res.Peak > res.BaselinePeak {
		t.Errorf("DP peak %d exceeds baseline %d", res.Peak, res.BaselinePeak)
	}
}

// TestSchedulePropertiesOnRandomDAGs is the property suite over the random
// graph generator: many seeds, both sequential and parallel, full pipeline.
func TestSchedulePropertiesOnRandomDAGs(t *testing.T) {
	iters := 60
	if testing.Short() {
		iters = 15
	}
	rng := rand.New(rand.NewSource(2026))
	for i := 0; i < iters; i++ {
		cfg := graph.RandomDAGConfig{
			Nodes:    4 + rng.Intn(16),
			EdgeProb: 0.15 + rng.Float64()*0.6,
			MaxFanIn: 1 + rng.Intn(4),
		}
		g := graph.RandomDAG(rng, cfg)
		opts := DefaultOptions()
		opts.StepTimeout = 200 * time.Millisecond
		opts.Parallelism = i % 5 // exercise 0..4 workers
		res, err := ScheduleContext(t.Context(), g, opts)
		if err != nil {
			t.Fatalf("iter %d cfg %+v: %v", i, cfg, err)
		}
		checkScheduleInvariants(t, res)
	}
}

// TestSegmentMemoDifferentialRandomDAGs extends the differential harness to
// 200 random DAGs: schedule each cold (empty memo) and warm (memo
// pre-populated by the cold run) and assert bit-identical results. The warm
// run never searches — every segment must come from the memo.
func TestSegmentMemoDifferentialRandomDAGs(t *testing.T) {
	iters := 200
	if testing.Short() {
		iters = 40
	}
	rng := rand.New(rand.NewSource(20260728))
	for i := 0; i < iters; i++ {
		cfg := graph.RandomDAGConfig{
			Nodes:    4 + rng.Intn(14),
			EdgeProb: 0.15 + rng.Float64()*0.6,
			MaxFanIn: 1 + rng.Intn(4),
		}
		g := graph.RandomDAG(rng, cfg)
		opts := DefaultOptions()
		opts.StepTimeout = time.Minute // no probe timeouts: fully deterministic
		opts.Parallelism = i % 3

		memo := NewSegmentMemo(256)
		cold, err := memoPipeline(t, opts, memo).Run(t.Context(), g)
		if err != nil {
			t.Fatalf("iter %d cfg %+v: cold: %v", i, cfg, err)
		}
		warm, err := memoPipeline(t, opts, memo).Run(t.Context(), g)
		if err != nil {
			t.Fatalf("iter %d cfg %+v: warm: %v", i, cfg, err)
		}
		if warm.SegmentMemoHits != len(warm.SegmentQuality) {
			t.Fatalf("iter %d: warm run hit %d of %d segments", i, warm.SegmentMemoHits, len(warm.SegmentQuality))
		}
		assertSameResult(t, fmt.Sprintf("iter %d", i), cold, warm)
		checkScheduleInvariants(t, cold)
		checkScheduleInvariants(t, warm)
	}
}

// TestScheduleMatchesBruteForceOracle cross-checks DP optimality against
// exhaustive search on small random graphs (rewriting off so the graphs
// stay comparable).
func TestScheduleMatchesBruteForceOracle(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 8
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < iters; i++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{
			Nodes:    4 + rng.Intn(6),
			EdgeProb: 0.2 + rng.Float64()*0.5,
		})
		_, want, err := sched.BruteForce(sched.NewMemModel(g))
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{Partition: true, AdaptiveBudget: true, StepTimeout: 200 * time.Millisecond, Parallelism: 2}
		res, err := Schedule(g, opts)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		checkScheduleInvariants(t, res)
		if res.Peak != want {
			t.Errorf("iter %d: DP peak %d != brute-force optimum %d", i, res.Peak, want)
		}
	}
}

// FuzzScheduleRandomDAG drives the full pipeline from fuzzed generator
// parameters; the invariants hold for every input the generator can emit.
func FuzzScheduleRandomDAG(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(128), uint8(2))
	f.Add(int64(42), uint8(20), uint8(40), uint8(0))
	f.Add(int64(-7), uint8(2), uint8(255), uint8(1))
	f.Add(int64(2026), uint8(14), uint8(10), uint8(7))
	f.Fuzz(func(t *testing.T, seed int64, nodes, edgeProb, fanIn uint8) {
		if nodes > 24 {
			t.Skip("keep the DP tractable")
		}
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{
			Nodes:    int(nodes),
			EdgeProb: float64(edgeProb) / 255,
			MaxFanIn: int(fanIn % 8),
		})
		if err := g.Validate(); err != nil {
			t.Fatalf("generator produced invalid graph: %v", err)
		}
		opts := DefaultOptions()
		opts.StepTimeout = 100 * time.Millisecond
		opts.Parallelism = int(seed&3) + 1
		// The cold run doubles as the plain-pipeline fuzz (an empty memo
		// changes nothing but the bookkeeping, which the nine-cell and
		// random-DAG differentials assert separately); keeping it to one
		// expensive compilation stays inside the fuzz engine's per-input
		// hang budget on dense corpus entries.
		memo := NewSegmentMemo(64)
		cold, err := memoPipeline(t, opts, memo).Run(t.Context(), g)
		if err != nil {
			t.Fatalf("schedule: %v", err)
		}
		checkScheduleInvariants(t, cold)

		// Warm memo differential: a second run serves every segment from the
		// memo and must be bit-identical to the run that populated it (the
		// warm side replays stored results, so this holds even when adaptive
		// probes are timing-sensitive).
		warm, err := memoPipeline(t, opts, memo).Run(t.Context(), g)
		if err != nil {
			t.Fatalf("warm memo schedule: %v", err)
		}
		if warm.SegmentMemoHits != len(warm.SegmentQuality) {
			t.Fatalf("warm run hit %d of %d segments", warm.SegmentMemoHits, len(warm.SegmentQuality))
		}
		assertSameResult(t, "fuzz cold/warm", cold, warm)
		checkScheduleInvariants(t, warm)
	})
}

// FuzzGraphJSONRoundTrip feeds arbitrary bytes to the JSON IR reader; any
// graph it accepts must survive a write/read cycle unchanged and validate.
func FuzzGraphJSONRoundTrip(f *testing.F) {
	seedGraphs := []*Graph{
		SwiftNetCellA(),
		RandWireCell("fuzz-seed", 12, 4, 0.75, 5, 8, 4),
		graph.RandomDAG(rand.New(rand.NewSource(3)), graph.RandomDAGConfig{Nodes: 6}),
	}
	for _, g := range seedGraphs {
		data, err := g.MarshalJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g := NewGraph("")
		if err := g.UnmarshalJSON(data); err != nil {
			return // rejected input: fine, just must not panic
		}
		out, err := g.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted graph failed to marshal: %v", err)
		}
		g2 := NewGraph("")
		if err := g2.UnmarshalJSON(out); err != nil {
			t.Fatalf("round-trip rejected: %v", err)
		}
		out2, err := g2.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != string(out2) {
			t.Errorf("round-trip not stable:\n%s\nvs\n%s", out, out2)
		}
	})
}
