package serenity

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/serenity-ml/serenity/internal/store"
	"github.com/serenity-ml/serenity/internal/trace"
)

// ArtifactVersion is the version byte of the per-segment artifact payload —
// the binary encoding of one SearchResult inside the on-disk schedule store.
// It is pinned by the golden fixture in testdata/golden; bump it only with a
// migration plan (old payloads are rejected on decode and recomputed, never
// misread).
const ArtifactVersion = 1

// Artifact payload v1, little-endian:
//
//	byte  0      payload version (ArtifactVersion)
//	byte  1      quality: 0 = optimal, 1 = heuristic
//	bytes 2-9    StatesExplored (uint64)
//	bytes 10-17  MaxFrontier (uint64)
//	bytes 18-21  len(Order) (uint32)
//	bytes 22-    Order entries (uint32 each)
const artifactHeaderLen = 22

// MarshalSegmentArtifact encodes one segment's SearchResult as a schedule
// store payload. Degraded results are not encodable: persisting a
// deadline-fallback would pin one overloaded moment's heuristic schedule for
// every future process, the same poison the in-memory SegmentMemo refuses.
func MarshalSegmentArtifact(sr SearchResult) ([]byte, error) {
	if sr.FellBack {
		return nil, errors.New("serenity: degraded (fallback) results are never persisted")
	}
	var quality byte
	switch sr.Quality {
	case QualityOptimal:
		quality = 0
	case QualityHeuristic:
		quality = 1
	default:
		return nil, fmt.Errorf("serenity: unknown quality %q", sr.Quality)
	}
	if sr.StatesExplored < 0 || sr.MaxFrontier < 0 {
		return nil, fmt.Errorf("serenity: negative accounting (states=%d frontier=%d)", sr.StatesExplored, sr.MaxFrontier)
	}
	buf := make([]byte, artifactHeaderLen+4*len(sr.Order))
	buf[0] = ArtifactVersion
	buf[1] = quality
	binary.LittleEndian.PutUint64(buf[2:], uint64(sr.StatesExplored))
	binary.LittleEndian.PutUint64(buf[10:], uint64(sr.MaxFrontier))
	binary.LittleEndian.PutUint32(buf[18:], uint32(len(sr.Order)))
	for i, id := range sr.Order {
		if id < 0 || int64(id) > 1<<31-1 {
			return nil, fmt.Errorf("serenity: order entry %d out of encodable range", id)
		}
		binary.LittleEndian.PutUint32(buf[artifactHeaderLen+4*i:], uint32(id))
	}
	return buf, nil
}

// UnmarshalSegmentArtifact decodes a schedule store payload. Any deviation —
// wrong version, impossible lengths, unknown quality — is an error, never a
// panic; callers treat a failed decode as a cache miss and recompute.
func UnmarshalSegmentArtifact(b []byte) (SearchResult, error) {
	if len(b) < artifactHeaderLen {
		return SearchResult{}, fmt.Errorf("serenity: artifact payload %d bytes, header needs %d", len(b), artifactHeaderLen)
	}
	if b[0] != ArtifactVersion {
		return SearchResult{}, fmt.Errorf("serenity: artifact version %d, this build reads %d", b[0], ArtifactVersion)
	}
	var sr SearchResult
	switch b[1] {
	case 0:
		sr.Quality = QualityOptimal
	case 1:
		sr.Quality = QualityHeuristic
	default:
		return SearchResult{}, fmt.Errorf("serenity: unknown artifact quality byte %d", b[1])
	}
	states := binary.LittleEndian.Uint64(b[2:])
	frontier := binary.LittleEndian.Uint64(b[10:])
	if states > 1<<62 || frontier > 1<<31 {
		return SearchResult{}, fmt.Errorf("serenity: implausible artifact accounting (states=%d frontier=%d)", states, frontier)
	}
	sr.StatesExplored = int64(states)
	sr.MaxFrontier = int(frontier)
	n := binary.LittleEndian.Uint32(b[18:])
	if int64(len(b)-artifactHeaderLen) != 4*int64(n) {
		return SearchResult{}, fmt.Errorf("serenity: artifact claims %d order entries in %d payload bytes", n, len(b))
	}
	sr.Order = make(Order, n)
	for i := range sr.Order {
		id := binary.LittleEndian.Uint32(b[artifactHeaderLen+4*i:])
		if id > 1<<31-1 {
			return SearchResult{}, fmt.Errorf("serenity: order entry %d out of range", id)
		}
		sr.Order[i] = int(id)
	}
	return sr, nil
}

// StoreStats is a snapshot of a ScheduleStore's counters. Hits and Misses
// count tier-2 (disk) lookups only — lookups that reached the store because
// the in-memory tier missed. CorruptRecords includes both byte-level CRC
// failures and payloads that failed semantic validation on load.
type StoreStats struct {
	Hits           int64
	Misses         int64
	Writes         int64
	DroppedWrites  int64
	Evictions      int64
	CorruptRecords int64
	// LiveBytes is the space held by retrievable artifacts; DeadBytes the
	// reclaimable space a Compact would free; FileBytes the data file size.
	LiveBytes int64
	DeadBytes int64
	FileBytes int64
	Entries   int
}

// ScheduleStore is the persistent tier of the segment memo hierarchy: a
// content-addressed, on-disk store of per-segment search results
// (internal/store format v1), keyed exactly like the SegmentMemo —
// Segment.Fingerprint() + "|" + Searcher.MemoKey(). Both halves of the key
// are golden-pinned (testdata/golden), which is what makes them safe to
// persist: every process, today's or next deploy's, derives the same address
// for the same sub-problem.
//
// Layer it under a SegmentMemo by assigning Pipeline.Store: lookups then
// fall through memory → disk → fresh search, disk hits are promoted to
// memory, and fresh results are written through asynchronously (the DP's
// caller never waits on the disk). Degraded (FellBack) results are never
// persisted — the same poison rule the SegmentMemo enforces.
//
// Artifacts are re-validated on every load: CRC at the byte layer, then
// version, shape, and a full permutation check against the segment's node
// count here. A record that fails any check is dropped and counted, and the
// pipeline recomputes — a corrupted store degrades to cold performance,
// never to a wrong or crashing compilation.
//
// A ScheduleStore is safe for concurrent use by any number of Pipelines;
// serenityd holds one per process (-store-dir). Close it on shutdown to
// flush the write-behind queue.
type ScheduleStore struct {
	st *store.Store

	// mu is read-held by every data operation (get, putAsync, Flush,
	// Compact, replace, Stats) and write-held only by Close, which makes
	// "closed store drops lookups and writes silently" a real invariant:
	// once Close holds the write lock no operation can be mid-flight
	// against the inner store, and every later operation observes closed
	// and returns inert.
	mu         sync.RWMutex
	writeCh    chan storeWrite
	closed     bool
	finalStats store.Stats // inner-store counters, snapshotted by Close
	wg         sync.WaitGroup

	decodeErrs atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	dropped    atomic.Int64
}

type storeWrite struct {
	key     string
	payload []byte
	flushed chan struct{} // non-nil marks a flush barrier, not a write
}

// storeWriteQueue bounds the write-behind queue; at ~4 bytes per scheduled
// node a full queue is still well under a megabyte of pending artifacts.
const storeWriteQueue = 256

// OpenScheduleStore opens (creating if needed) the schedule artifact store
// in dir, bounding the live artifacts to maxBytes (0 = unbounded). Corrupt
// or truncated records in an existing store are skipped and counted, never
// fatal; the caller owns the store and must Close it.
func OpenScheduleStore(dir string, maxBytes int64) (*ScheduleStore, error) {
	st, err := store.Open(dir, maxBytes)
	if err != nil {
		return nil, err
	}
	ss := &ScheduleStore{
		st:      st,
		writeCh: make(chan storeWrite, storeWriteQueue),
	}
	ss.wg.Add(1)
	go ss.writer()
	return ss, nil
}

// writer is the write-behind goroutine: it drains the queue into the store
// so search workers never block on disk.
func (ss *ScheduleStore) writer() {
	defer ss.wg.Done()
	for w := range ss.writeCh {
		if w.flushed != nil {
			close(w.flushed)
			continue
		}
		// Put can only fail on I/O trouble or an oversized record; either
		// way the result is recomputable, so a failed write-behind costs a
		// future cold search, nothing more.
		_ = ss.st.Put(w.key, w.payload)
	}
}

// get loads and validates the artifact for key. nodes is the segment's node
// count: a payload that is not a permutation of exactly that many nodes is
// dropped as corrupt and reported as a miss. A closed store answers false
// without counting a miss — nothing was looked up, and shutdown must not
// skew the hit-rate accounting the caller prints afterwards.
func (ss *ScheduleStore) get(key string, nodes int) (SearchResult, bool) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return SearchResult{}, false
	}
	payload, ok := ss.st.Get(key)
	if !ok {
		ss.misses.Add(1)
		return SearchResult{}, false
	}
	sr, err := UnmarshalSegmentArtifact(payload)
	if err == nil && !validPermutation(sr.Order, nodes) {
		err = fmt.Errorf("serenity: artifact order is not a permutation of %d nodes", nodes)
	}
	if err != nil {
		ss.st.Delete(key)
		ss.decodeErrs.Add(1)
		ss.misses.Add(1)
		return SearchResult{}, false
	}
	ss.hits.Add(1)
	return sr, true
}

// validPermutation reports whether order visits each of 0..nodes-1 exactly
// once.
func validPermutation(order Order, nodes int) bool {
	if len(order) != nodes {
		return false
	}
	seen := make([]bool, nodes)
	for _, id := range order {
		if id < 0 || id >= nodes || seen[id] {
			return false
		}
		seen[id] = true
	}
	return true
}

// putAsync enqueues a write-through of sr without blocking: if the queue is
// full the write is dropped and counted — the artifact is recomputable, and
// the hot path must never wait on disk. Degraded results are refused here as
// well as at the memo layer, so no caller ordering can persist one.
func (ss *ScheduleStore) putAsync(key string, sr SearchResult) {
	if sr.FellBack {
		return
	}
	payload, err := MarshalSegmentArtifact(sr)
	if err != nil {
		return
	}
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return
	}
	select {
	case ss.writeCh <- storeWrite{key: key, payload: payload}:
	default:
		ss.dropped.Add(1)
	}
}

// Flush blocks until every write enqueued before the call has reached the
// store file. Flushing a closed store is a no-op: Close already drained the
// queue.
func (ss *ScheduleStore) Flush() {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return
	}
	barrier := storeWrite{flushed: make(chan struct{})}
	ss.writeCh <- barrier // blocking: a flush must not be droppable
	<-barrier.flushed
}

// Compact flushes pending writes and rewrites the data file with only the
// live artifacts, reclaiming space from superseded, evicted, and corrupt
// records. Compacting a closed store is a no-op, like every other operation
// after Close. The flush barrier is inlined rather than calling Flush: a
// second read-lock acquisition could deadlock against a Close queued between
// the two.
func (ss *ScheduleStore) Compact() error {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return nil
	}
	barrier := storeWrite{flushed: make(chan struct{})}
	ss.writeCh <- barrier
	<-barrier.flushed
	return ss.st.Compact()
}

// replace is the RefinePool's persistent-tier write-through, mirroring
// SegmentMemo.replace: refined results pass the same quality/permutation
// validation artifacts pass on load, an existing optimal artifact is never
// clobbered, and the write is synchronous — refinement runs in the
// background, so it may wait on disk where the compile hot path may not.
// Replacing into a closed store is a silent no-op.
func (ss *ScheduleStore) replace(key string, nodes int, sr SearchResult) error {
	if err := validateRefined(sr, nodes); err != nil {
		return err
	}
	payload, err := MarshalSegmentArtifact(sr)
	if err != nil {
		return err
	}
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return nil
	}
	if cur, ok := ss.st.Get(key); ok {
		if dec, derr := UnmarshalSegmentArtifact(cur); derr == nil && dec.Quality == QualityOptimal {
			return nil // already exact on disk; keep the established artifact
		}
	}
	return ss.st.Put(key, payload)
}

// Close drains the write-behind queue, syncs, and releases the store. A
// closed store drops lookups and writes silently, so Pipelines holding it
// keep working (cold) during shutdown; Stats keeps answering with the
// final pre-close counters.
func (ss *ScheduleStore) Close() error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.closed {
		return nil
	}
	ss.closed = true
	close(ss.writeCh)
	ss.wg.Wait()
	ss.finalStats = ss.st.Stats()
	return ss.st.Close()
}

// Stats returns a snapshot of the store's counters. Lookup accounting
// (hits/misses) is kept at this layer — the raw byte store can't tell a
// semantically invalid payload from a valid one — while write, eviction, and
// size accounting come from the file layer. After Close, the file-layer
// numbers are the snapshot Close took; the lookup counters stop moving
// because a closed store declines lookups.
func (ss *ScheduleStore) Stats() StoreStats {
	ss.mu.RLock()
	raw := ss.finalStats
	if !ss.closed {
		raw = ss.st.Stats()
	}
	ss.mu.RUnlock()
	return StoreStats{
		Hits:           ss.hits.Load(),
		Misses:         ss.misses.Load(),
		Writes:         raw.Writes,
		DroppedWrites:  ss.dropped.Load(),
		Evictions:      raw.Evictions,
		CorruptRecords: raw.CorruptRecords + ss.decodeErrs.Load(),
		LiveBytes:      raw.LiveBytes,
		DeadBytes:      raw.DeadBytes,
		FileBytes:      raw.FileBytes,
		Entries:        raw.Entries,
	}
}

// lookupOrCompute is the store-only lookup path for Pipelines running with a
// ScheduleStore but no SegmentMemo: disk hit, else peer fetch (when a fleet
// tier is installed), else compute and write through. No singleflight — that
// is the memo's job; without one, concurrent identical segments each pay (or
// each disk-hit) on their own. Peer artifacts pass the same validation the
// memo path applies, and fresh non-owned computes replicate to their owner.
func (ss *ScheduleStore) lookupOrCompute(ctx context.Context, key string, peers PeerTier, nodes int, compute func() (SearchResult, error)) (SearchResult, memoTier, error) {
	span := trace.FromContext(ctx)
	var diskSp *trace.SpanHandle
	if span != nil {
		diskSp = span.Child("memo.disk")
	}
	sr, ok := ss.get(key, nodes)
	if diskSp != nil {
		diskSp.Annotate(trace.Bool("hit", ok))
		diskSp.End()
	}
	if ok {
		return sr, memoTierDisk, nil
	}
	if peers != nil && !peers.Owns(key) {
		fctx := ctx
		var peerSp *trace.SpanHandle
		if span != nil {
			peerSp = span.Child("memo.peer")
			fctx = trace.ContextWith(ctx, peerSp)
		}
		if payload, ok := peers.Fetch(fctx, key); ok {
			if sr, ok := decodePeerArtifact(payload, nodes); ok {
				ss.putAsync(key, sr)
				if peerSp != nil {
					peerSp.Annotate(trace.Bool("hit", true))
					peerSp.End()
				}
				return sr, memoTierPeer, nil
			}
		}
		if peerSp != nil {
			peerSp.Annotate(trace.Bool("hit", false))
			peerSp.End()
		}
	}
	sr, err := compute()
	if err == nil && !sr.FellBack {
		ss.putAsync(key, sr)
		if peers != nil && !peers.Owns(key) {
			if payload, perr := MarshalSegmentArtifact(sr); perr == nil {
				peers.Replicate(ctx, key, payload)
			}
		}
	}
	return sr, memoTierMiss, err
}
