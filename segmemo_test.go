package serenity

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/sched"
)

// uniformStack builds `cells` copies of one WS cell so every interior
// partition segment is structurally identical — the repeated-cell shape the
// segment memo exists for.
func uniformStack(name string, cells, nodes int) *Graph {
	return models.StackedUniformRandWire(name, cells, models.WSConfig{
		Nodes: nodes, K: 4, P: 0.75, Seed: 11, HW: 8, Channel: 4,
	})
}

// memoPipeline builds a Pipeline from opts with memo installed (nil = none).
func memoPipeline(t testing.TB, opts Options, memo *SegmentMemo) *Pipeline {
	t.Helper()
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	p.SegmentMemo = memo
	return p
}

// assertSameResult asserts the fields the differential harness locks down:
// order, peak, arena, quality, per-segment quality, states accounting, and
// the scheduled graph's fingerprint.
func assertSameResult(t *testing.T, label string, cold, warm *Result) {
	t.Helper()
	if !reflect.DeepEqual(cold.Order, warm.Order) {
		t.Errorf("%s: warm order diverged\ncold: %v\nwarm: %v", label, cold.Order, warm.Order)
	}
	if cold.Peak != warm.Peak {
		t.Errorf("%s: peak %d (cold) != %d (warm)", label, cold.Peak, warm.Peak)
	}
	if cold.ArenaSize != warm.ArenaSize {
		t.Errorf("%s: arena %d (cold) != %d (warm)", label, cold.ArenaSize, warm.ArenaSize)
	}
	if cold.Quality != warm.Quality {
		t.Errorf("%s: quality %q (cold) != %q (warm)", label, cold.Quality, warm.Quality)
	}
	if !reflect.DeepEqual(cold.SegmentQuality, warm.SegmentQuality) {
		t.Errorf("%s: segment quality diverged: %v vs %v", label, cold.SegmentQuality, warm.SegmentQuality)
	}
	if cold.StatesExplored != warm.StatesExplored {
		t.Errorf("%s: states %d (cold) != %d (warm); memo hits must replay the stored accounting", label, cold.StatesExplored, warm.StatesExplored)
	}
	if cold.MaxFrontier != warm.MaxFrontier {
		t.Errorf("%s: max frontier %d (cold) != %d (warm); memo hits must replay the stored accounting", label, cold.MaxFrontier, warm.MaxFrontier)
	}
	if cold.Graph.Fingerprint() != warm.Graph.Fingerprint() {
		t.Errorf("%s: scheduled graph fingerprints diverged", label)
	}
}

// TestSegmentMemoSharesRepeatedCells: the headline behavior — a stack of
// identical cells pays for one cell's DP, and a second run over the same
// memo searches nothing at all.
func TestSegmentMemoSharesRepeatedCells(t *testing.T) {
	g := uniformStack("memo-share", 4, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute

	memo := NewSegmentMemo(256)
	cold, err := memoPipeline(t, opts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	nsegs := len(cold.SegmentQuality)
	if nsegs < 4 {
		t.Fatalf("graph split into %d segments; the repeated-cell scenario needs >= 4", nsegs)
	}
	// Interior cells repeat, so even the cold run must share within itself.
	if cold.SegmentMemoHits == 0 {
		t.Error("cold run over identical cells recorded no within-run memo hits")
	}
	st := memo.Stats()
	if st.Hits != int64(cold.SegmentMemoHits) || st.Hits+st.Misses != int64(nsegs) {
		t.Errorf("memo stats %+v do not reconcile with %d segments / %d result hits", st, nsegs, cold.SegmentMemoHits)
	}
	if st.Entries == 0 {
		t.Error("memo holds no entries after a successful run")
	}

	warm, err := memoPipeline(t, opts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SegmentMemoHits != nsegs {
		t.Errorf("warm run hit %d of %d segments; every segment should be memoized", warm.SegmentMemoHits, nsegs)
	}
	assertSameResult(t, "uniform stack", cold, warm)
	// StatesExplored replays for bit-identity; FreshStatesExplored is the
	// honest work measure: partial on the (self-sharing) cold run, zero on
	// the all-hits warm run.
	if cold.FreshStatesExplored <= 0 || cold.FreshStatesExplored >= cold.StatesExplored {
		t.Errorf("cold fresh states %d not in (0, %d); within-run hits should replay some states", cold.FreshStatesExplored, cold.StatesExplored)
	}
	if warm.FreshStatesExplored != 0 {
		t.Errorf("warm run reports %d fresh states despite searching nothing", warm.FreshStatesExplored)
	}

	// A memo-less pipeline must agree too: memoization is an optimization,
	// never a behavior change (StepTimeout is high enough that the DP is
	// fully deterministic).
	plain, err := memoPipeline(t, opts, nil).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "memo vs plain", plain, warm)
	if plain.SegmentMemoHits != 0 {
		t.Errorf("memo-less run reports %d memo hits", plain.SegmentMemoHits)
	}
	if plain.FreshStatesExplored != plain.StatesExplored {
		t.Errorf("memo-less run: fresh states %d != states %d", plain.FreshStatesExplored, plain.StatesExplored)
	}
}

// TestSegmentMemoPerStrategyKeys: results memoized under one strategy must
// not leak into another — greedy's heuristic orders and exact's optimal
// orders live under different keys.
func TestSegmentMemoPerStrategyKeys(t *testing.T) {
	g := uniformStack("memo-keys", 3, 12)
	memo := NewSegmentMemo(256)

	greedyOpts := DefaultOptions()
	greedyOpts.StepTimeout = time.Minute
	greedyOpts.Strategy = StrategyGreedy
	gr, err := memoPipeline(t, greedyOpts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Quality != QualityHeuristic {
		t.Fatalf("greedy run quality %q", gr.Quality)
	}

	exactOpts := DefaultOptions()
	exactOpts.StepTimeout = time.Minute
	ex, err := memoPipeline(t, exactOpts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Quality != QualityOptimal {
		t.Errorf("exact run served %q results; greedy entries leaked across strategy keys", ex.Quality)
	}
	for i, q := range ex.SegmentQuality {
		if q != QualityOptimal {
			t.Errorf("segment %d: quality %q under the exact strategy", i, q)
		}
	}

	// And greedy again: its own entries are still there and still heuristic.
	gr2, err := memoPipeline(t, greedyOpts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if gr2.SegmentMemoHits != len(gr2.SegmentQuality) {
		t.Errorf("greedy rerun hit %d of %d segments", gr2.SegmentMemoHits, len(gr2.SegmentQuality))
	}
	assertSameResult(t, "greedy rerun", gr, gr2)
}

// TestBestEffortFallbackDoesNotPoisonMemo is the regression the memo's
// store rule exists for: a run degraded by a tight deadline must leave no
// heuristic segment results behind, so a later unhurried run over the same
// memo still earns Quality=optimal. (Before the never-store-degraded rule, a
// single overloaded moment would pin heuristic schedules for every future
// compilation of that cell.)
func TestBestEffortFallbackDoesNotPoisonMemo(t *testing.T) {
	g := uniformStack("memo-poison", 4, 12)
	opts := DefaultOptions()
	opts.Strategy = StrategyBestEffort
	opts.StepTimeout = time.Minute
	memo := NewSegmentMemo(256)

	// SkipExact forces the degraded path deterministically — every segment
	// falls back exactly as if the deadline expired at search start. (This
	// test used to race a 25ms wall-clock deadline against the DP, which
	// flaked on loaded machines; the scenario is identical, minus the race.)
	rushedP := memoPipeline(t, opts, memo)
	be := rushedP.Searcher.(BestEffort)
	be.SkipExact = true
	rushedP.Searcher = be
	rushed, err := rushedP.Run(context.Background(), g)
	if err != nil {
		t.Fatalf("best-effort errored on the forced degraded path: %v", err)
	}
	if rushed.Fallbacks != len(rushed.SegmentQuality) {
		t.Fatalf("forced degradation fell back on %d of %d segments; the poison scenario needs all of them",
			rushed.Fallbacks, len(rushed.SegmentQuality))
	}
	if err := sched.NewMemModel(rushed.Graph).CheckValid(rushed.Order); err != nil {
		t.Fatalf("degraded schedule invalid: %v", err)
	}

	relaxed, err := memoPipeline(t, opts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Quality != QualityOptimal {
		t.Fatalf("no-deadline run after a degraded run returned %q; the memo was poisoned", relaxed.Quality)
	}
	if relaxed.Fallbacks != 0 {
		t.Errorf("no-deadline run reports %d fallbacks", relaxed.Fallbacks)
	}
	for i, q := range relaxed.SegmentQuality {
		if q != QualityOptimal {
			t.Errorf("segment %d: quality %q served from a poisoned memo", i, q)
		}
	}
	// The uniform interior cells still share work within the relaxed run.
	if relaxed.SegmentMemoHits == 0 {
		t.Error("relaxed run recorded no memo hits despite identical interior cells")
	}

	// A third run is pure hits — and still optimal.
	warm, err := memoPipeline(t, opts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SegmentMemoHits != len(warm.SegmentQuality) {
		t.Errorf("fully warm run hit %d of %d segments", warm.SegmentMemoHits, len(warm.SegmentQuality))
	}
	assertSameResult(t, "warm best-effort", relaxed, warm)
}

// TestSegmentMemoConcurrentReconciliation is the shared-memo race test
// (run under -race in CI): many goroutines schedule overlapping graphs
// through one Pipeline and one memo; every result must match the memo-less
// reference, and the memo's hit+miss counters must reconcile exactly with
// the total number of segments searched.
func TestSegmentMemoConcurrentReconciliation(t *testing.T) {
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	opts.Parallelism = 2

	// Overlapping graphs: different stack depths of the SAME cell share
	// interior segment fingerprints across graphs, not just within one.
	graphs := []*Graph{
		uniformStack("race-a", 2, 12),
		uniformStack("race-b", 3, 12),
		uniformStack("race-c", 4, 12),
		uniformStack("race-d", 5, 12),
	}
	refs := make([]*Result, len(graphs))
	for i, g := range graphs {
		ref, err := memoPipeline(t, opts, nil).Run(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = ref
	}

	memo := NewSegmentMemo(1024)
	p := memoPipeline(t, opts, memo)
	const goroutines = 8
	iters := 6
	if testing.Short() {
		iters = 2
	}
	var totalSegments atomic.Int64
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				i := (w + j) % len(graphs)
				res, err := p.Run(context.Background(), graphs[i])
				if err != nil {
					errc <- err
					return
				}
				totalSegments.Add(int64(len(res.SegmentQuality)))
				if !reflect.DeepEqual(res.Order, refs[i].Order) || res.Peak != refs[i].Peak || res.Quality != refs[i].Quality {
					errc <- fmt.Errorf("graph %d diverged from the memo-less reference", i)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	st := memo.Stats()
	if st.Hits+st.Misses != totalSegments.Load() {
		t.Errorf("memo hits %d + misses %d != %d segments searched; a lookup was double-counted or lost",
			st.Hits, st.Misses, totalSegments.Load())
	}
	if st.Errors != 0 {
		t.Errorf("memo recorded %d errored lookups in an error-free storm", st.Errors)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("degenerate counters (hits=%d misses=%d) — the scenario exercised nothing", st.Hits, st.Misses)
	}
	if st.Entries <= 0 {
		t.Error("memo empty after the storm")
	}
}

// TestSegmentMemoErrorAccounting pins the three-way reconciliation under a
// cancellation storm: every lookup resolves as exactly one Hit, Miss, or
// Error, so Hits+Misses+Errors equals the total lookups even when waiters
// are canceled mid-flight. (Before the Errors counter, a canceled waiter
// was counted as neither hit nor miss and the documented reconciliation
// silently broke.)
func TestSegmentMemoErrorAccounting(t *testing.T) {
	memo := NewSegmentMemo(64)
	const key = "storm|test"
	okResult := SearchResult{Order: Order{0}, Quality: QualityOptimal}

	// A leader holds the flight open while canceled followers pile on.
	started := make(chan struct{})
	release := make(chan struct{})
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := memo.do(context.Background(), key, nil, nil, 1, func() (SearchResult, error) {
			close(started)
			<-release
			return okResult, nil
		})
		leaderErr <- err
	}()
	<-started

	const followers = 50
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	var wg sync.WaitGroup
	var gotErrs atomic.Int64
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := memo.do(canceled, key, nil, nil, 1, func() (SearchResult, error) {
				t.Error("canceled follower ran the compute itself")
				return okResult, nil
			})
			if err != nil {
				gotErrs.Add(1)
			}
		}()
	}
	wg.Wait()
	if n := gotErrs.Load(); n != followers {
		t.Fatalf("%d of %d canceled followers reported an error", n, followers)
	}
	close(release)
	if err := <-leaderErr; err != nil {
		t.Fatalf("leader errored: %v", err)
	}

	// A failing compute is an Error too — nothing served, nothing stored.
	wantErr := fmt.Errorf("search exploded")
	if _, _, err := memo.do(context.Background(), "bad|key", nil, nil, 1, func() (SearchResult, error) {
		return SearchResult{}, wantErr
	}); err == nil {
		t.Fatal("failing compute reported no error")
	}

	// And one warm hit to exercise all three counters at once.
	if _, tier, err := memo.do(context.Background(), key, nil, nil, 1, func() (SearchResult, error) {
		t.Error("warm lookup recomputed")
		return okResult, nil
	}); err != nil || tier != memoTierMemory {
		t.Fatalf("warm lookup: tier=%v err=%v", tier, err)
	}

	st := memo.Stats()
	total := int64(1 + followers + 1 + 1) // leader + canceled + failed + warm
	if st.Hits+st.Misses+st.Errors != total {
		t.Errorf("hits %d + misses %d + errors %d != %d lookups", st.Hits, st.Misses, st.Errors, total)
	}
	if st.Errors != followers+1 {
		t.Errorf("errors = %d, want %d (canceled followers + failed compute)", st.Errors, followers+1)
	}
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("misses=%d hits=%d, want 1 and 1", st.Misses, st.Hits)
	}
}

// stubGovernor implements MemoryGovernor with a fixed grant: limit 1 is the
// Critical floor (the DP aborts before its first expansion), limit 0 is an
// unlimited grant. It counts Reserve/Release pairs so the test can prove the
// pipeline never leaks a reservation — least of all on the error path.
type stubGovernor struct {
	limit    atomic.Int64
	reserves atomic.Int64
	releases atomic.Int64
}

func (g *stubGovernor) Reserve(int64) SearchReservation {
	g.reserves.Add(1)
	return &stubReservation{g: g}
}

type stubReservation struct{ g *stubGovernor }

func (r *stubReservation) SearchLimit() int64 { return r.g.limit.Load() }
func (r *stubReservation) Grow(int64) int64   { return 0 } // always deny
func (r *stubReservation) Release()           { r.g.releases.Add(1) }

// TestSegmentMemoGovernedRejectionAccounting pins the memo's counter
// invariants when the governor rejects searches: a memory-pressure abort is
// an Error (not a Hit, not a Miss), nothing is cached, every reservation is
// released, and once pressure clears the same memo serves the same graph
// exactly — memo hits never touching the ledger at all.
func TestSegmentMemoGovernedRejectionAccounting(t *testing.T) {
	g := uniformStack("memo-governed", 3, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	memo := NewSegmentMemo(256)
	gov := &stubGovernor{}
	gov.limit.Store(1) // Critical floor: every search aborts immediately

	p := memoPipeline(t, opts, memo)
	p.Govern = gov
	if _, err := p.Run(context.Background(), g); !errors.Is(err, ErrMemoryPressure) {
		t.Fatalf("exact run under the floor reservation returned %v, want ErrMemoryPressure", err)
	}
	st1 := memo.Stats()
	if st1.Errors == 0 {
		t.Fatalf("rejected searches recorded no memo errors: %+v", st1)
	}
	if st1.Hits != 0 || st1.Misses != 0 {
		t.Errorf("rejected searches counted as hits/misses: %+v (an abort serves nothing and stores nothing)", st1)
	}
	if st1.Entries != 0 {
		t.Errorf("rejected searches were cached: %d entries", st1.Entries)
	}
	if r, rel := gov.reserves.Load(), gov.releases.Load(); r == 0 || r != rel {
		t.Errorf("reservations leaked on the error path: %d reserved, %d released", r, rel)
	}

	// Pressure clears: the same memo now fills normally, with the error
	// counters frozen where the rejection left them.
	gov.limit.Store(0) // unlimited grants
	p2 := memoPipeline(t, opts, memo)
	p2.Govern = gov
	res, err := p2.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Quality != QualityOptimal {
		t.Fatalf("post-pressure run quality %q, want optimal", res.Quality)
	}
	st2 := memo.Stats()
	if st2.Errors != st1.Errors {
		t.Errorf("successful run grew the error counter: %d -> %d", st1.Errors, st2.Errors)
	}
	if st2.Misses == 0 || st2.Entries == 0 {
		t.Errorf("successful run cached nothing: %+v", st2)
	}
	if nsegs := int64(len(res.SegmentQuality)); st2.Hits+st2.Misses != nsegs {
		t.Errorf("hits %d + misses %d != %d segments searched", st2.Hits, st2.Misses, nsegs)
	}
	if r, rel := gov.reserves.Load(), gov.releases.Load(); r != rel {
		t.Errorf("reservations leaked on the success path: %d reserved, %d released", r, rel)
	}

	// Warm replay: all hits, zero fresh work — and zero ledger traffic,
	// because only a search that actually runs reserves memory.
	reservesBefore := gov.reserves.Load()
	p3 := memoPipeline(t, opts, memo)
	p3.Govern = gov
	warm, err := p3.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "governed warm replay", res, warm)
	if warm.FreshStatesExplored != 0 {
		t.Errorf("warm replay explored %d fresh states, want 0", warm.FreshStatesExplored)
	}
	if got := gov.reserves.Load(); got != reservesBefore {
		t.Errorf("memo hits reserved memory: %d new reservations", got-reservesBefore)
	}
}

// TestSegmentMemoCustomSearcherOptsOut: a Searcher without MemoKey must
// bypass the memo entirely — no lookups, no stores.
func TestSegmentMemoCustomSearcherOptsOut(t *testing.T) {
	g := uniformStack("memo-optout", 3, 12)
	memo := NewSegmentMemo(256)
	p := &Pipeline{
		Searcher:    plainSearcher{},
		Partition:   true,
		SegmentMemo: memo,
	}
	res, err := p.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentMemoHits != 0 {
		t.Errorf("opted-out searcher recorded %d memo hits", res.SegmentMemoHits)
	}
	if st := memo.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("memo touched by a searcher without a MemoKey: %+v", st)
	}
}

// plainSearcher wraps GreedyMemory while hiding its MemoKey.
type plainSearcher struct{}

func (plainSearcher) Name() string { return "plain" }
func (plainSearcher) Search(ctx context.Context, m *MemModel) (SearchResult, error) {
	return GreedyMemory{}.Search(ctx, m)
}
