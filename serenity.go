// Package serenity is a memory-aware scheduler for irregularly wired neural
// networks, reproducing "Ordering Chaos: Memory-Aware Scheduling of
// Irregularly Wired Neural Networks for Edge Devices" (Ahn et al.,
// MLSys 2020).
//
// Given a dataflow graph of tensor operations, Schedule finds an execution
// order minimizing the peak activation memory footprint, using the paper's
// full pipeline: identity graph rewriting, divide-and-conquer partitioning,
// and dynamic programming with adaptive soft budgeting. The resulting
// schedule is paired with a TensorFlow-Lite-style arena allocation, so the
// reported footprint is what a runtime would actually reserve.
//
// Quick start:
//
//	b := serenity.NewBuilder("net")
//	in := b.Input(serenity.Shape{1, 56, 56, 8})
//	... build the graph ...
//	res, err := serenity.Schedule(b.Graph(), serenity.DefaultOptions())
//	// res.Order, res.Peak, res.ArenaSize
//
// Divide-and-conquer makes the partition segments independent sub-problems,
// so ScheduleContext can solve them concurrently: set Options.Parallelism
// to fan the per-segment DP out over a bounded worker pool. Parallelism
// changes wall-clock time, not results (see Options.Parallelism for the
// wall-clock caveat Algorithm 2 carries with or without the pool).
// ScheduleContext also threads context.Context cancellation into the
// DP search loops, so deadlines and client disconnects abort a compilation
// mid-search:
//
//	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
//	defer cancel()
//	opts := serenity.DefaultOptions()
//	opts.Parallelism = runtime.GOMAXPROCS(0)
//	res, err := serenity.ScheduleContext(ctx, g, opts)
//
// For serving schedule requests over HTTP (with an LRU schedule cache keyed
// by Graph.Fingerprint), see cmd/serenityd.
package serenity

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/serenity-ml/serenity/internal/alloc"
	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/partition"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Re-exported IR types; see the internal/graph package for full docs.
type (
	// Graph is the scheduler's dataflow IR.
	Graph = graph.Graph
	// Node is one operation in a Graph.
	Node = graph.Node
	// Shape is a tensor shape in NHWC layout.
	Shape = graph.Shape
	// Builder constructs graphs with shape inference.
	Builder = graph.Builder
	// OpType enumerates operation kinds.
	OpType = graph.OpType
	// Padding selects convolution padding.
	Padding = graph.Padding
	// Order is an execution order over a Graph's nodes.
	Order = sched.Schedule
)

// Re-exported padding policies.
const (
	PadSame  = graph.PadSame
	PadValid = graph.PadValid
)

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// NewBuilder returns a graph builder.
func NewBuilder(name string) *Builder { return graph.NewBuilder(name) }

// Options configures the scheduling pipeline. The zero value disables every
// stage except the core DP scheduler; use DefaultOptions for the paper's
// full pipeline.
type Options struct {
	// Rewrite enables identity graph rewriting (Section 3.3).
	Rewrite bool
	// ExtendedRewrite additionally applies the extension rules beyond the
	// paper (nested-concat flattening, identity-copy elimination) before the
	// partitioning patterns. Implies Rewrite semantics when set.
	ExtendedRewrite bool
	// Partition enables divide-and-conquer (Section 3.2).
	Partition bool
	// AdaptiveBudget enables adaptive soft budgeting (Section 3.2). When
	// false the DP runs unbudgeted, which is exact but may be intractable
	// for graphs beyond ~30 nodes per partition.
	AdaptiveBudget bool
	// StepTimeout is the per-search-step limit T of Algorithm 2.
	// Defaults to 1s when zero and AdaptiveBudget is on.
	StepTimeout time.Duration
	// MemoryBudget, when positive, makes Schedule fail with
	// ErrBudgetExceeded if even the optimal schedule's arena exceeds it
	// (the edge device's hard capacity, e.g. 250KB for a SparkFun Edge).
	MemoryBudget int64
	// MaxStates caps the DP frontier as a memory-safety valve; zero means
	// the adaptive default.
	MaxStates int
	// Parallelism bounds the worker pool scheduling partition segments
	// concurrently. Values <= 1 mean sequential. Segments are independent
	// sub-problems (Section 3.2) and each segment's DP is deterministic, so
	// parallelism introduces no nondeterminism of its own: given the same
	// per-segment budget-probe outcomes, the combined schedule is
	// bit-identical to the sequential path. The one caveat is inherited
	// from Algorithm 2, not from the pool: with AdaptiveBudget on, probe
	// outcomes depend on wall-clock StepTimeout, so under CPU contention
	// any two runs — sequential or parallel — can converge through
	// different budgets (Order and StatesExplored may vary; the peak stays
	// optimal). Whenever no probe times out, the whole pipeline is
	// deterministic at every Parallelism. Has no effect unless Partition is
	// enabled and the graph actually splits into multiple segments.
	Parallelism int
}

// DefaultOptions returns the paper's full pipeline configuration.
func DefaultOptions() Options {
	return Options{
		Rewrite:        true,
		Partition:      true,
		AdaptiveBudget: true,
		StepTimeout:    time.Second,
	}
}

// ErrBudgetExceeded is returned when the optimal schedule still exceeds
// Options.MemoryBudget.
type ErrBudgetExceeded struct {
	Required int64
	Budget   int64
}

// Error implements the error interface.
func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("serenity: optimal arena %d bytes exceeds device budget %d bytes", e.Required, e.Budget)
}

// Result is the outcome of Schedule.
type Result struct {
	// Graph is the graph the schedule indexes: the rewritten graph when
	// rewriting applied, otherwise the input graph.
	Graph *Graph
	// Order is the memory-optimal execution order over Graph.
	Order Order
	// Peak is the ideal peak footprint (sum of live tensor bytes).
	Peak int64
	// ArenaSize is the concrete footprint after arena allocation (includes
	// fragmentation; this is what a runtime reserves).
	ArenaSize int64
	// Offsets[node] is the arena byte offset of each physical tensor, -1
	// for aliases.
	Offsets []int64
	// BaselinePeak is the input graph's peak under Kahn's memory-oblivious
	// order (the hard budget τmax).
	BaselinePeak int64
	// Rewritten reports whether graph rewriting changed the graph, and
	// RewriteCount how many patterns were substituted.
	Rewritten    bool
	RewriteCount int
	// PartitionSizes lists the divide-and-conquer segment node counts.
	PartitionSizes []int
	// SchedulingTime is the end-to-end compile time.
	SchedulingTime time.Duration
	// StatesExplored counts DP memo entries across all segments.
	StatesExplored int64
}

// Schedule runs the SERENITY pipeline (Figure 4) on g.
func Schedule(g *Graph, opts Options) (*Result, error) {
	return ScheduleContext(context.Background(), g, opts)
}

// ScheduleContext runs the SERENITY pipeline (Figure 4) on g under ctx.
//
// Cancellation is threaded down into the DP search loops: when ctx is done
// the search aborts promptly (within one polling interval of ~64 states) and
// ctx.Err() is returned. With opts.Parallelism > 1 the per-segment DP runs
// on a bounded worker pool; see Options.Parallelism for the determinism
// guarantee.
func ScheduleContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	res := &Result{Graph: g}

	// Baseline / hard budget from Kahn's algorithm.
	kahn, err := sched.KahnFIFO(g)
	if err != nil {
		return nil, err
	}
	baseModel := sched.NewMemModel(g)
	res.BaselinePeak, err = baseModel.Peak(kahn)
	if err != nil {
		return nil, err
	}

	// Stage 1: identity graph rewriting.
	work := g
	if opts.Rewrite || opts.ExtendedRewrite {
		rules := rewrite.DefaultRules()
		if opts.ExtendedRewrite {
			rules = rewrite.ExtendedRules()
		}
		rw, apps, err := rewrite.RewriteAll(g, rules, 0)
		if err != nil {
			return nil, err
		}
		if len(apps) > 0 {
			work = rw
			res.Rewritten = true
			for _, a := range apps {
				res.RewriteCount += a.Sites
			}
			res.Graph = rw
		}
	}
	model := sched.NewMemModel(work)

	// Stage 2: divide-and-conquer.
	var segments []*partition.Segment
	var part *partition.Partition
	if opts.Partition {
		part, err = partition.Split(work)
		if err != nil {
			return nil, err
		}
		segments = part.Segments
		res.PartitionSizes = part.Sizes()
	} else {
		res.PartitionSizes = []int{work.NumNodes()}
	}

	// Stage 3: dynamic programming with adaptive soft budgeting. Each
	// segment is an independent sub-problem; scheduleOne is pure (no shared
	// state), so segments may run concurrently.
	scheduleOne := func(ctx context.Context, m *sched.MemModel) (sched.Schedule, int64, error) {
		if opts.AdaptiveBudget {
			ar, err := dp.AdaptiveScheduleCtx(ctx, m, dp.AdaptiveOptions{
				StepTimeout: opts.StepTimeout,
				MaxStates:   opts.MaxStates,
			})
			if err != nil {
				return nil, 0, err
			}
			if ar.Flag != dp.FlagSolution {
				return nil, 0, fmt.Errorf("serenity: adaptive scheduling ended with %v", ar.Flag)
			}
			return ar.Order, ar.StatesExplored, nil
		}
		r := dp.ScheduleCtx(ctx, m, dp.Options{MaxStates: opts.MaxStates})
		if r.Flag == dp.FlagCanceled {
			return nil, 0, ctx.Err()
		}
		if r.Flag != dp.FlagSolution {
			return nil, 0, fmt.Errorf("serenity: dynamic programming ended with %v", r.Flag)
		}
		return r.Order, r.StatesExplored, nil
	}

	var order sched.Schedule
	if part != nil {
		orders, states, err := scheduleSegments(ctx, segments, opts.Parallelism, scheduleOne)
		if err != nil {
			return nil, err
		}
		res.StatesExplored += states
		order, err = part.Combine(orders)
		if err != nil {
			return nil, err
		}
	} else {
		var states int64
		order, states, err = scheduleOne(ctx, model)
		if err != nil {
			return nil, err
		}
		res.StatesExplored += states
	}

	// Verify and measure the combined schedule end to end.
	sim, err := model.Simulate(order)
	if err != nil {
		return nil, fmt.Errorf("serenity: combined schedule invalid: %w", err)
	}
	res.Order = order
	res.Peak = sim.Peak

	// Stage 4: arena allocation (TF-Lite simple memory arena).
	asn, err := alloc.Plan(model, order)
	if err != nil {
		return nil, err
	}
	res.ArenaSize = asn.ArenaSize
	res.Offsets = asn.Offsets
	res.SchedulingTime = time.Since(start)

	if opts.MemoryBudget > 0 && res.ArenaSize > opts.MemoryBudget {
		return res, &ErrBudgetExceeded{Required: res.ArenaSize, Budget: opts.MemoryBudget}
	}
	return res, nil
}

// scheduleSegments solves every partition segment, sequentially or on a
// bounded worker pool of min(parallelism, len(segments)) goroutines. Results
// are collected by segment index and state counts summed in segment order,
// so on success the outcome is identical regardless of parallelism or
// goroutine interleaving. On the first failure the remaining segments are
// canceled for a prompt abort; the reported segment index may then differ
// from the sequential path's (the failure itself is the same kind), which is
// the one deliberate concession to the worker pool.
func scheduleSegments(ctx context.Context, segments []*partition.Segment, parallelism int,
	scheduleOne func(context.Context, *sched.MemModel) (sched.Schedule, int64, error)) ([]sched.Schedule, int64, error) {

	orders := make([]sched.Schedule, len(segments))
	states := make([]int64, len(segments))
	errs := make([]error, len(segments))

	workers := parallelism
	if workers > len(segments) {
		workers = len(segments)
	}
	// The per-segment DP is pure CPU work: workers beyond GOMAXPROCS cannot
	// run and only multiply live memo tables, so cap the pool there.
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	if workers <= 1 {
		for i, seg := range segments {
			o, s, err := scheduleOne(ctx, sched.NewMemModel(seg.G))
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return nil, 0, ctxErr
				}
				return nil, 0, fmt.Errorf("segment %d: %w", i, err)
			}
			orders[i], states[i] = o, s
		}
	} else {
		segCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					o, s, err := scheduleOne(segCtx, sched.NewMemModel(segments[i].G))
					if err != nil {
						errs[i] = err
						cancel() // abort the remaining segments
						continue
					}
					orders[i], states[i] = o, s
				}
			}()
		}
		for i := range segments {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		if ctxErr := ctx.Err(); ctxErr != nil {
			// The caller's own cancellation outranks any per-segment error.
			return nil, 0, ctxErr
		}
		// A genuine failure cancels its siblings, so skip induced
		// context.Canceled errors and report the lowest-index real one.
		var firstErr error
		firstIdx := -1
		for i, err := range errs {
			if err == nil || errors.Is(err, context.Canceled) {
				continue
			}
			firstErr, firstIdx = err, i
			break
		}
		if firstErr == nil {
			// Unreachable under the invariant that a Canceled entry implies
			// some worker recorded a genuine failure first (only failures
			// call cancel, and the caller's own cancellation returned
			// above); kept so a broken invariant surfaces as an error
			// rather than as missing segment orders.
			for i, err := range errs {
				if err != nil {
					firstErr, firstIdx = err, i
					break
				}
			}
		}
		if firstErr != nil {
			return nil, 0, fmt.Errorf("segment %d: %w", firstIdx, firstErr)
		}
	}
	var total int64
	for _, s := range states {
		total += s
	}
	return orders, total, nil
}

// PeakOf evaluates the peak footprint of an arbitrary schedule on g;
// a convenience for comparing against baselines.
func PeakOf(g *Graph, order Order) (int64, error) {
	return sched.NewMemModel(g).Peak(order)
}

// BaselineOrder returns Kahn's memory-oblivious topological order — the
// "basic topological ordering algorithm" the paper attributes to existing
// frameworks.
func BaselineOrder(g *Graph) (Order, error) {
	return sched.KahnFIFO(g)
}
