// Package serenity is a memory-aware scheduler for irregularly wired neural
// networks, reproducing "Ordering Chaos: Memory-Aware Scheduling of
// Irregularly Wired Neural Networks for Edge Devices" (Ahn et al.,
// MLSys 2020).
//
// Given a dataflow graph of tensor operations, Schedule finds an execution
// order minimizing the peak activation memory footprint, using the paper's
// full pipeline: identity graph rewriting, divide-and-conquer partitioning,
// and dynamic programming with adaptive soft budgeting. The resulting
// schedule is paired with a TensorFlow-Lite-style arena allocation, so the
// reported footprint is what a runtime would actually reserve.
//
// Quick start:
//
//	b := serenity.NewBuilder("net")
//	in := b.Input(serenity.Shape{1, 56, 56, 8})
//	... build the graph ...
//	res, err := serenity.Schedule(b.Graph(), serenity.DefaultOptions())
//	// res.Order, res.Peak, res.ArenaSize
//
// # Pipeline, strategies, observability
//
// The pipeline is composable: Pipeline wires a Searcher (the per-segment
// scheduling strategy), an Allocator (the arena planning strategy), and an
// optional Observer (per-stage and per-segment events) around the graph
// stages. Three searchers ship built in:
//
//   - ExactDP — the paper's exact search; optimal or an error (default)
//   - GreedyMemory — the linear-time heuristic, for graphs beyond DP reach
//   - BestEffort — exact under the deadline, degrading to the heuristic
//     instead of failing, with each segment tagged Optimal or Heuristic
//
// Schedule and ScheduleContext remain as thin wrappers over Pipeline;
// Options.Strategy selects the searcher without touching the Pipeline API:
//
//	opts := serenity.DefaultOptions()
//	opts.Strategy = serenity.StrategyBestEffort
//	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
//	defer cancel()
//	res, err := serenity.ScheduleContext(ctx, g, opts)
//	// err == nil even if the DP could not finish; res.Quality says which
//	// path produced the schedule, res.Fallbacks how many segments degraded.
//
// Divide-and-conquer makes the partition segments independent sub-problems,
// so the pipeline can solve them concurrently: set Options.Parallelism
// to fan the per-segment search out over a bounded worker pool. Parallelism
// changes wall-clock time, not results (see Options.Parallelism for the
// wall-clock caveat Algorithm 2 carries with or without the pool).
// Cancellation is threaded into the search loops, so deadlines and client
// disconnects abort (or, under BestEffort, degrade) a compilation
// mid-search.
//
// Because segments are independent sub-problems, their solutions are also
// reusable: install a SegmentMemo on a Pipeline to share per-segment search
// results across runs (and across Pipelines holding the same memo), so
// networks stacking a repeated cell pay for its DP once. See SegmentMemo.
//
// For serving schedule requests over HTTP (with an LRU schedule cache keyed
// by Graph.Fingerprint, a process-wide SegmentMemo, batch compilation, and
// per-request strategy selection), see cmd/serenityd.
package serenity

import (
	"context"
	"fmt"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Re-exported IR types; see the internal/graph package for full docs.
type (
	// Graph is the scheduler's dataflow IR.
	Graph = graph.Graph
	// Node is one operation in a Graph.
	Node = graph.Node
	// Shape is a tensor shape in NHWC layout.
	Shape = graph.Shape
	// Builder constructs graphs with shape inference.
	Builder = graph.Builder
	// OpType enumerates operation kinds.
	OpType = graph.OpType
	// Padding selects convolution padding.
	Padding = graph.Padding
	// Order is an execution order over a Graph's nodes.
	Order = sched.Schedule
)

// Re-exported padding policies.
const (
	PadSame  = graph.PadSame
	PadValid = graph.PadValid
)

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph { return graph.New(name) }

// NewBuilder returns a graph builder.
func NewBuilder(name string) *Builder { return graph.NewBuilder(name) }

// Options configures the scheduling pipeline. The zero value disables every
// stage except the core DP scheduler; use DefaultOptions for the paper's
// full pipeline.
type Options struct {
	// Rewrite enables identity graph rewriting (Section 3.3).
	Rewrite bool
	// ExtendedRewrite additionally applies the extension rules beyond the
	// paper (nested-concat flattening, identity-copy elimination) before the
	// partitioning patterns. Implies Rewrite semantics when set.
	ExtendedRewrite bool
	// Partition enables divide-and-conquer (Section 3.2).
	Partition bool
	// Strategy selects the per-segment search strategy: StrategyExact (the
	// default; the empty string means exact), StrategyGreedy, or
	// StrategyBestEffort. See the Searcher implementations for semantics.
	Strategy Strategy
	// AdaptiveBudget enables adaptive soft budgeting (Section 3.2) for the
	// exact strategy. When false the DP runs unbudgeted, which is exact but
	// may be intractable for graphs beyond ~30 nodes per partition.
	AdaptiveBudget bool
	// StepTimeout is the per-search-step limit T of Algorithm 2.
	// Defaults to 1s when zero and AdaptiveBudget is on. Under
	// StrategyExact it requires AdaptiveBudget (Validate rejects a
	// StepTimeout the unbudgeted DP would silently ignore); under
	// StrategyBestEffort it bounds the exact attempt's steps; under
	// StrategyGreedy it is ignored.
	StepTimeout time.Duration
	// MemoryBudget, when positive, makes Schedule fail with
	// ErrBudgetExceeded if even the optimal schedule's arena exceeds it
	// (the edge device's hard capacity, e.g. 250KB for a SparkFun Edge).
	MemoryBudget int64
	// MaxStates caps the DP frontier as a memory-safety valve; zero means
	// the adaptive default.
	MaxStates int
	// Parallelism is the compilation's CPU budget, spent on two fan-outs
	// that share it: the worker pool scheduling partition segments
	// concurrently, and — for the built-in exact searchers — intra-level
	// sharded expansion inside each segment's DP, so even a single-segment
	// graph benefits (see ExactDP.Parallelism and dp.Options.Parallelism).
	// Values of 0 or 1 mean sequential; negative values are rejected by
	// Validate. Segments are independent sub-problems (Section 3.2), each
	// segment's DP is deterministic, and sharded expansion merges shard
	// frontiers back in sequential discovery order, so parallelism
	// introduces no nondeterminism of its own: given the same per-segment
	// budget-probe outcomes, the combined schedule is bit-identical to the
	// sequential path. The one caveat is inherited from Algorithm 2, not
	// from the fan-outs: with AdaptiveBudget on, probe outcomes depend on
	// wall-clock StepTimeout, so under CPU contention any two runs —
	// sequential or parallel — can converge through different budgets
	// (Order and StatesExplored may vary; the peak stays optimal). Whenever
	// no probe times out, the whole pipeline is deterministic at every
	// Parallelism.
	Parallelism int
}

// DefaultOptions returns the paper's full pipeline configuration.
func DefaultOptions() Options {
	return Options{
		Rewrite:        true,
		Partition:      true,
		AdaptiveBudget: true,
		StepTimeout:    time.Second,
	}
}

// Validate rejects option combinations that would otherwise surface as
// confusing deep-pipeline errors or silently do nothing: negative
// Parallelism, a StepTimeout the unbudgeted exact DP would ignore, negative
// MaxStates or MemoryBudget, and unknown strategies. ScheduleContext and
// NewPipeline call it; servers should call it at request-decoding time so
// bad requests fail fast with a clear message.
func (o Options) Validate() error {
	if o.Parallelism < 0 {
		return fmt.Errorf("serenity: negative Parallelism %d (0 or 1 means sequential)", o.Parallelism)
	}
	if o.StepTimeout < 0 {
		return fmt.Errorf("serenity: negative StepTimeout %s", o.StepTimeout)
	}
	if o.MaxStates < 0 {
		return fmt.Errorf("serenity: negative MaxStates %d (zero means the adaptive default)", o.MaxStates)
	}
	if o.MemoryBudget < 0 {
		return fmt.Errorf("serenity: negative MemoryBudget %d", o.MemoryBudget)
	}
	strategy, err := ParseStrategy(string(o.Strategy))
	if err != nil {
		return err
	}
	if strategy == StrategyExact && o.StepTimeout > 0 && !o.AdaptiveBudget {
		return fmt.Errorf("serenity: StepTimeout %s requires AdaptiveBudget under the exact strategy (the unbudgeted DP has no search steps to time out)", o.StepTimeout)
	}
	return nil
}

// searcher derives the Searcher opts.Strategy selects. Callers must have
// validated opts first.
func (o Options) searcher() Searcher {
	exact := ExactDP{
		AdaptiveBudget: o.AdaptiveBudget,
		StepTimeout:    o.StepTimeout,
		MaxStates:      o.MaxStates,
		Parallelism:    o.Parallelism,
	}
	switch o.Strategy {
	case StrategyGreedy:
		return GreedyMemory{}
	case StrategyBestEffort:
		exact.AdaptiveBudget = true
		return BestEffort{Exact: exact}
	}
	return exact
}

// ErrBudgetExceeded is returned when the optimal schedule still exceeds
// Options.MemoryBudget.
type ErrBudgetExceeded struct {
	Required int64
	Budget   int64
}

// Error implements the error interface.
func (e *ErrBudgetExceeded) Error() string {
	return fmt.Sprintf("serenity: optimal arena %d bytes exceeds device budget %d bytes", e.Required, e.Budget)
}

// Result is the outcome of Schedule.
type Result struct {
	// Graph is the graph the schedule indexes: the rewritten graph when
	// rewriting applied, otherwise the input graph.
	Graph *Graph
	// Order is the execution order over Graph; memory-optimal when Quality
	// is QualityOptimal.
	Order Order
	// Peak is the ideal peak footprint (sum of live tensor bytes).
	Peak int64
	// ArenaSize is the concrete footprint after arena allocation (includes
	// fragmentation; this is what a runtime reserves).
	ArenaSize int64
	// Offsets[node] is the arena byte offset of each physical tensor, -1
	// for aliases.
	Offsets []int64
	// BaselinePeak is the input graph's peak under Kahn's memory-oblivious
	// order (the hard budget τmax).
	BaselinePeak int64
	// Rewritten reports whether graph rewriting changed the graph, and
	// RewriteCount how many patterns were substituted.
	Rewritten    bool
	RewriteCount int
	// PartitionSizes lists the divide-and-conquer segment node counts.
	PartitionSizes []int
	// Quality is QualityOptimal iff every segment's search was exact;
	// SegmentQuality reports each segment (parallel to PartitionSizes).
	Quality        Quality
	SegmentQuality []Quality
	// Fallbacks counts segments where a degradable searcher abandoned the
	// exact search for its heuristic fallback.
	Fallbacks int
	// RefinementsQueued counts fallen-back segments whose exact re-search
	// was accepted by the Pipeline's RefinePool for background repair.
	// Always zero without a RefinePool installed; may be less than
	// Fallbacks when a refinement for the key is already pending or the
	// pool's queue is full.
	RefinementsQueued int
	// SegmentMemoHits counts segments whose search result came from the
	// memo hierarchy instead of a fresh search — from the Pipeline's
	// in-memory SegmentMemo (stored by an earlier run, or shared with a
	// concurrent search of the same segment) or from the persistent
	// ScheduleStore tier beneath it. Always zero without an installed memo
	// or store.
	SegmentMemoHits int
	// SegmentMemoDiskHits is the subset of SegmentMemoHits answered by the
	// persistent tier (Pipeline.Store): artifacts loaded, validated, and
	// promoted from disk. SegmentMemoHits - SegmentMemoDiskHits were served
	// from memory. Always zero without a store.
	SegmentMemoDiskHits int
	// SegmentMemoPeerHits is the subset of SegmentMemoHits answered by the
	// fleet tier (Pipeline.Peers): artifacts fetched from the key's owning
	// peer, validated, and promoted into the local tiers. Always zero
	// without a fleet.
	SegmentMemoPeerHits int
	// Stages breaks the compile time down per pipeline stage.
	Stages StageTimings
	// SchedulingTime is the end-to-end compile time.
	SchedulingTime time.Duration
	// StatesExplored counts partial schedules considered across all
	// segments (DP memo entries; greedy candidate evaluations). Segment
	// memo hits replay the stored search's count, so warm runs reconcile
	// bit for bit with the cold runs that populated the memo.
	StatesExplored int64
	// MaxFrontier is the largest number of coexisting DP signatures any
	// segment's search held — the frontier's memory high-water mark for the
	// compilation. Memo hits replay the stored search's value. Zero when
	// every segment was scheduled heuristically.
	MaxFrontier int
	// FreshStatesExplored counts only states explored by searches actually
	// run in this compilation: memo hits contribute nothing. Equal to
	// StatesExplored when no memo is installed (or nothing hit); the honest
	// measure of search work done for metering and capacity accounting.
	FreshStatesExplored int64
	// SearchPeakBytes is the largest byte footprint any single segment's
	// search retained in this compilation (frontier slabs plus compacted
	// reconstruction history; see dp.Result.PeakBytes) — the scheduler's own
	// memory appetite, as opposed to ArenaSize, the scheduled model's. Like
	// FreshStatesExplored it reports only work done here: memo hits and
	// heuristic segments contribute zero.
	SearchPeakBytes int64
}

// Schedule runs the SERENITY pipeline (Figure 4) on g. It is a thin wrapper
// over Pipeline: NewPipeline(opts) followed by Run.
func Schedule(g *Graph, opts Options) (*Result, error) {
	return ScheduleContext(context.Background(), g, opts)
}

// ScheduleContext runs the SERENITY pipeline (Figure 4) on g under ctx.
//
// Cancellation is threaded down into the search loops: when ctx is done the
// search aborts promptly (within one polling interval of ~64 transitions) and
// ctx.Err() is returned — except under StrategyBestEffort, where a deadline
// degrades the affected segments to the greedy heuristic instead (see
// BestEffort). With opts.Parallelism > 1 the per-segment search runs on a
// bounded worker pool; see Options.Parallelism for the determinism
// guarantee.
func ScheduleContext(ctx context.Context, g *Graph, opts Options) (*Result, error) {
	p, err := NewPipeline(opts)
	if err != nil {
		return nil, err
	}
	return p.Run(ctx, g)
}

// PeakOf evaluates the peak footprint of an arbitrary schedule on g;
// a convenience for comparing against baselines.
func PeakOf(g *Graph, order Order) (int64, error) {
	return sched.NewMemModel(g).Peak(order)
}

// BaselineOrder returns Kahn's memory-oblivious topological order — the
// "basic topological ordering algorithm" the paper attributes to existing
// frameworks.
func BaselineOrder(g *Graph) (Order, error) {
	return sched.KahnFIFO(g)
}
