package serenity

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/sched"
)

// MemModel is the activation-memory model a Searcher schedules against; it
// is the per-segment view of the (possibly rewritten) graph. Re-exported
// from internal/sched so external packages can implement Searcher.
type MemModel = sched.MemModel

// NewMemModel builds the memory model for g. g must be a valid DAG.
func NewMemModel(g *Graph) *MemModel { return sched.NewMemModel(g) }

// Strategy selects the search strategy a Pipeline uses per segment.
type Strategy string

// Built-in strategies.
const (
	// StrategyExact is the paper's exact DP (with adaptive soft budgeting
	// when Options.AdaptiveBudget is set). The empty string means exact.
	StrategyExact Strategy = "exact"
	// StrategyGreedy schedules with the one-step-lookahead greedy heuristic:
	// linear-ish time, valid but possibly suboptimal peaks. For graphs
	// beyond the DP's reach.
	StrategyGreedy Strategy = "greedy"
	// StrategyBestEffort runs the exact DP under the caller's deadline and
	// falls back to the greedy heuristic instead of erroring when the DP
	// cannot finish, tagging each segment's Quality accordingly.
	StrategyBestEffort Strategy = "best-effort"
)

// ParseStrategy converts a wire/flag string into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch Strategy(s) {
	case "", StrategyExact:
		return StrategyExact, nil
	case StrategyGreedy:
		return StrategyGreedy, nil
	case StrategyBestEffort:
		return StrategyBestEffort, nil
	}
	return "", fmt.Errorf("serenity: unknown strategy %q (want exact, greedy, or best-effort)", s)
}

// Quality tags how a segment's schedule was obtained.
type Quality string

// Schedule qualities.
const (
	// QualityOptimal: the exact DP proved the segment's peak minimal.
	QualityOptimal Quality = "optimal"
	// QualityHeuristic: a heuristic produced the segment's order; the
	// schedule is valid but its peak carries no optimality guarantee.
	QualityHeuristic Quality = "heuristic"
)

// SearchResult is one segment's outcome from a Searcher.
type SearchResult struct {
	// Order is a valid execution order over the segment's graph.
	Order Order
	// StatesExplored counts partial schedules considered; exact and
	// heuristic searchers report comparable numbers (DP memo entries vs.
	// greedy candidate evaluations).
	StatesExplored int64
	// MaxFrontier is the largest number of coexisting DP signatures the
	// search held for this segment — the memory high-water mark of the
	// frontier. Zero for heuristic searchers, which keep no frontier.
	MaxFrontier int
	// PeakBytes is the high-water mark of the bytes the search itself
	// retained (frontier slabs plus compacted history; see
	// dp.Result.PeakBytes). It reports only work done in this process on
	// this call: heuristic searchers and memo/store/peer hits report zero.
	PeakBytes int64
	// Quality reports whether Order is provably optimal for the segment.
	Quality Quality
	// FellBack is set when a degradable searcher abandoned its primary
	// (exact) search and Order came from its fallback; FallbackReason
	// records why the primary search gave up.
	FellBack       bool
	FallbackReason error
}

// ErrMemoryPressure reports that a search was aborted by its byte ceiling —
// the DP's MemLimit valve, typically parameterized by a memory governor's
// reservation — and no fallback was available at this layer. Callers match
// it with errors.Is; serenityd maps it to 503 + Retry-After, distinct from
// both admission rejections (429) and hard failures (500). BestEffort never
// surfaces it from Search: its greedy fallback absorbs the abort and records
// it as the FallbackReason instead.
var ErrMemoryPressure = errors.New("serenity: memory pressure")

// memScoper is implemented by searchers whose primary search honors a byte
// ceiling. The Pipeline uses it to thread a governor reservation into each
// segment's search: limit seeds the DP's MemLimit, grow its MemGrow upgrade
// hook. Like scopeParallelism it returns a scoped copy, so the shared
// Searcher stays immutable across concurrent segments.
type memScoper interface {
	scopeMemory(limit int64, grow func(needed int64) int64) Searcher
}

// estimateReserveStates is the frontier width a governor reservation is
// initially sized for. Deliberately modest: most segments finish far below
// it, and a search that outgrows it upgrades through the reservation's Grow
// hook — which is exactly where the governor applies back-pressure.
const estimateReserveStates = 4096

// estimateSearchBytes is the initial governor reservation for a segment of
// nodes nodes: a 4096-state frontier at that segment's per-state width.
func estimateSearchBytes(nodes int) int64 {
	return dp.FrontierStateBytes(nodes) * estimateReserveStates
}

// parallelScoper is implemented by searchers whose single-segment search can
// itself fan out (the DP's intra-level sharded expansion). The Pipeline uses
// it to split one Parallelism budget between the segment pool and the
// per-segment DP: when w segment workers run concurrently, each segment's
// search is scoped to Parallelism/w shards, and a single-segment graph gets
// the whole budget.
type parallelScoper interface {
	scopeParallelism(perSegment int) Searcher
}

// Searcher is a per-segment scheduling strategy. Implementations must be
// safe for concurrent use: with Options.Parallelism > 1 the Pipeline calls
// Search from multiple goroutines, one segment each.
type Searcher interface {
	// Name identifies the strategy in logs, metrics, and responses.
	Name() string
	// Search returns an execution order for the segment modeled by m,
	// honoring ctx for cancellation and deadlines.
	Search(ctx context.Context, m *MemModel) (SearchResult, error)
}

// ExactDP is the paper's exact search: Algorithm 1's dynamic programming,
// optionally wrapped in Algorithm 2's adaptive soft budgeting. It either
// returns a provably peak-optimal order or an error — a timeout or state-cap
// blowup is a hard failure. This is the default Searcher and reproduces the
// pre-Pipeline Schedule behavior bit for bit.
type ExactDP struct {
	// AdaptiveBudget wraps the DP in the adaptive soft budgeting
	// meta-search; off means one unbudgeted exact run.
	AdaptiveBudget bool
	// StepTimeout is Algorithm 2's per-search-step limit T (adaptive only).
	StepTimeout time.Duration
	// MaxStates caps the DP frontier as a memory-safety valve; zero means
	// the adaptive default (unlimited when AdaptiveBudget is off).
	MaxStates int
	// Parallelism fans a single segment's wide DP levels across worker
	// shards (see dp.Options.Parallelism); results on the solution path are
	// bit-identical to a sequential search. The Pipeline scopes this down
	// automatically when it is already running segments concurrently, so
	// the two fan-outs share one budget.
	Parallelism int
	// MemLimit caps the bytes the search may retain (dp.Options.MemLimit);
	// crossing it without a MemGrow grant fails the search with an error
	// wrapping ErrMemoryPressure. Zero means unlimited. The Pipeline sets
	// both fields from its governor's reservation via scopeMemory.
	MemLimit int64
	// MemGrow is the mid-search ceiling upgrade hook (dp.Options.MemGrow).
	MemGrow func(needed int64) int64
}

// Name implements Searcher.
func (e ExactDP) Name() string { return "exact" }

// MemoKey implements MemoKeyer: AdaptiveBudget, StepTimeout, and MaxStates
// can each change the resulting order (never the peak, which is provably
// minimal either way), so all three discriminate the memo key. Parallelism
// is deliberately excluded: sharded expansion is bit-identical on the
// solution path, and only solutions are memoized. MemLimit/MemGrow are
// excluded for the same reason: a search the byte valve aborts produces no
// result to store, and one that completes is the same optimal answer it
// would have found unlimited.
//
// MemoKeys outlive the process: they are half of the on-disk ScheduleStore's
// content address (the other half, Segment.Fingerprint, is golden-pinned in
// testdata/golden). Changing any MemoKey's rendering silently orphans — or,
// worse, aliases — every artifact persisted by deployed stores, so treat the
// format of all three built-in keys as a wire format.
func (e ExactDP) MemoKey() string {
	return fmt.Sprintf("exact|a=%t|t=%d|s=%d", e.AdaptiveBudget, e.StepTimeout, e.MaxStates)
}

// scopeParallelism implements parallelScoper.
func (e ExactDP) scopeParallelism(perSegment int) Searcher {
	e.Parallelism = perSegment
	return e
}

// scopeMemory implements memScoper.
func (e ExactDP) scopeMemory(limit int64, grow func(needed int64) int64) Searcher {
	e.MemLimit, e.MemGrow = limit, grow
	return e
}

// Search implements Searcher.
func (e ExactDP) Search(ctx context.Context, m *MemModel) (SearchResult, error) {
	if e.AdaptiveBudget {
		ar, err := dp.AdaptiveScheduleCtx(ctx, m, dp.AdaptiveOptions{
			StepTimeout: e.StepTimeout,
			MaxStates:   e.MaxStates,
			Parallelism: e.Parallelism,
			MemLimit:    e.MemLimit,
			MemGrow:     e.MemGrow,
		})
		if err != nil {
			return SearchResult{}, err
		}
		if ar.Flag == dp.FlagMemPressure {
			return SearchResult{}, fmt.Errorf("%w: adaptive scheduling aborted at its byte ceiling", ErrMemoryPressure)
		}
		if ar.Flag != dp.FlagSolution {
			return SearchResult{}, fmt.Errorf("serenity: adaptive scheduling ended with %v", ar.Flag)
		}
		return SearchResult{Order: ar.Order, StatesExplored: ar.StatesExplored, MaxFrontier: ar.MaxFrontier, PeakBytes: ar.PeakBytes, Quality: QualityOptimal}, nil
	}
	r := dp.ScheduleCtx(ctx, m, dp.Options{MaxStates: e.MaxStates, Parallelism: e.Parallelism, MemLimit: e.MemLimit, MemGrow: e.MemGrow})
	if r.Flag == dp.FlagCanceled {
		return SearchResult{}, ctx.Err()
	}
	if r.Flag == dp.FlagMemPressure {
		return SearchResult{}, fmt.Errorf("%w: dynamic programming aborted at its byte ceiling", ErrMemoryPressure)
	}
	if r.Flag != dp.FlagSolution {
		return SearchResult{}, fmt.Errorf("serenity: dynamic programming ended with %v", r.Flag)
	}
	return SearchResult{Order: r.Order, StatesExplored: r.StatesExplored, MaxFrontier: r.MaxFrontier, PeakBytes: r.PeakBytes, Quality: QualityOptimal}, nil
}

// GreedyMemory is the one-step-lookahead greedy heuristic as a first-class
// strategy: at every step it schedules the ready node minimizing the
// resulting footprint. Deterministic, linear-ish time, never errors on a
// valid DAG — the strategy of last resort for graphs beyond the DP's reach,
// and BestEffort's fallback.
type GreedyMemory struct{}

// Name implements Searcher.
func (GreedyMemory) Name() string { return "greedy" }

// MemoKey implements MemoKeyer. The greedy heuristic is deterministic and
// configuration-free, so the strategy name alone discriminates; its results
// are heuristic-quality but not degraded (FellBack is never set), so they are
// memoizable under their own key.
func (GreedyMemory) MemoKey() string { return "greedy" }

// Search implements Searcher. The scan honors ctx: linear-ish is still
// minutes on a dense many-thousand-node graph, and a disconnected caller
// should not pin a CPU for it.
func (GreedyMemory) Search(ctx context.Context, m *MemModel) (SearchResult, error) {
	r, err := sched.GreedyMemoryRunCtx(ctx, m)
	if err != nil {
		return SearchResult{}, err
	}
	return SearchResult{Order: r.Order, StatesExplored: r.StatesExplored, Quality: QualityHeuristic}, nil
}

// BestEffort turns "exact or error" into "exact, else valid": it runs the
// exact DP (adaptive soft budgeting with the liveness growth loop disabled,
// so a hopeless instance gives up instead of retrying forever) under ctx's
// deadline, and on timeout, state-cap blowup, or deadline expiry degrades to
// the greedy heuristic rather than failing. The segment's Quality reports
// which path produced the order.
//
// Cancellation semantics: a context *deadline* triggers the fallback (the
// caller wants an answer by then), while an explicit cancellation aborts
// with ctx.Err() (the caller is gone; nobody wants the answer).
type BestEffort struct {
	// Exact configures the primary search. AdaptiveBudget is implied: the
	// exact attempt always runs under adaptive soft budgeting, the only
	// deadline-aware exact configuration.
	Exact ExactDP
	// SkipExact degrades every segment immediately, without attempting the
	// exact search — exactly as if the caller's deadline expired the moment
	// the search began. It exists to make the degraded path deterministic:
	// tests and operational drills of the serve-then-refine loop (see
	// RefinePool) force fallbacks with it instead of racing a wall-clock
	// deadline against the DP. It is deliberately absent from MemoKey:
	// degraded results are never stored, so the flag cannot alias cached
	// entries, and a RefinePool repairs the key with RefineSearcher's
	// configuration, which clears it.
	SkipExact bool
}

// Name implements Searcher.
func (b BestEffort) Name() string { return "best-effort" }

// MemoKey implements MemoKeyer. The caller's deadline is deliberately NOT
// part of the key: only non-degraded (optimal) results are ever stored in a
// SegmentMemo, and an optimal segment order is valid under any deadline. Two
// best-effort runs at different deadlines may therefore share stored optimal
// segments — the same interchangeability Algorithm 2 already grants runs that
// converge through different budgets. Degraded results never enter the memo
// (see SegmentMemo), so deadline pressure cannot leak across requests.
func (b BestEffort) MemoKey() string {
	return fmt.Sprintf("best-effort|t=%d|s=%d", b.Exact.StepTimeout, b.Exact.MaxStates)
}

// scopeParallelism implements parallelScoper.
func (b BestEffort) scopeParallelism(perSegment int) Searcher {
	b.Exact.Parallelism = perSegment
	return b
}

// scopeMemory implements memScoper. A governed BestEffort converts the byte
// ceiling into degradation, not failure: when the adaptive search aborts
// under memory pressure the greedy fallback (whose O(n) working set needs no
// reservation) still answers, with FallbackReason wrapping
// ErrMemoryPressure so serve-then-refine can repair the segment later.
func (b BestEffort) scopeMemory(limit int64, grow func(needed int64) int64) Searcher {
	b.Exact.MemLimit, b.Exact.MemGrow = limit, grow
	return b
}

// RefineSearcher implements Refiner: a fallen-back BestEffort segment is
// repaired by the same configuration with the deadline pressure removed —
// SkipExact cleared, run under a background context — which produces the
// exact answer the degraded request was denied, under the same MemoKey.
func (b BestEffort) RefineSearcher() Searcher {
	b.SkipExact = false
	return b
}

// errSkipExact is the fallback reason of a forced (SkipExact) degradation.
var errSkipExact = errors.New("serenity: exact search skipped (forced degradation)")

// Search implements Searcher.
func (b BestEffort) Search(ctx context.Context, m *MemModel) (SearchResult, error) {
	if b.SkipExact {
		gr, err := sched.GreedyMemoryRun(m)
		if err != nil {
			return SearchResult{}, err
		}
		return SearchResult{
			Order:          gr.Order,
			StatesExplored: gr.StatesExplored,
			Quality:        QualityHeuristic,
			FellBack:       true,
			FallbackReason: errSkipExact,
		}, nil
	}
	ar, err := dp.AdaptiveScheduleCtx(ctx, m, dp.AdaptiveOptions{
		StepTimeout:   b.Exact.StepTimeout,
		MaxStates:     b.Exact.MaxStates,
		DisableGrowth: true,
		Parallelism:   b.Exact.Parallelism,
		MemLimit:      b.Exact.MemLimit,
		MemGrow:       b.Exact.MemGrow,
	})
	var reason error
	var dpStates, dpPeakBytes int64
	switch {
	case err == nil && ar.Flag == dp.FlagSolution:
		return SearchResult{Order: ar.Order, StatesExplored: ar.StatesExplored, MaxFrontier: ar.MaxFrontier, PeakBytes: ar.PeakBytes, Quality: QualityOptimal}, nil
	case err == nil && ar.Flag == dp.FlagMemPressure:
		// The byte ceiling, not the clock, stopped the search: degrade like
		// a deadline, but tag the reason so governors and metrics can tell
		// pressure-forced heuristics from deadline-forced ones.
		reason = fmt.Errorf("%w: adaptive scheduling aborted at its byte ceiling", ErrMemoryPressure)
	case err == nil:
		// The meta-search surrendered (every probe timed out or the budget
		// interval collapsed); the probes' work still counts.
		reason = fmt.Errorf("serenity: adaptive scheduling ended with %v", ar.Flag)
	case errors.Is(err, context.DeadlineExceeded):
		reason = err
	default:
		// Explicit cancellation or an invalid graph: not degradable.
		return SearchResult{}, err
	}
	if ar != nil {
		// Both abandoned-DP paths report the work burned before giving up.
		for _, p := range ar.Probes {
			dpStates += p.States
			if p.PeakBytes > dpPeakBytes {
				dpPeakBytes = p.PeakBytes
			}
		}
	}

	// The fallback deliberately runs without ctx: the deadline has already
	// expired, and the contract is that the caller is owed a valid answer
	// anyway (explicit cancellation was handled above, before the DP work
	// was abandoned).
	gr, err := sched.GreedyMemoryRun(m)
	if err != nil {
		return SearchResult{}, err
	}
	return SearchResult{
		Order:          gr.Order,
		StatesExplored: dpStates + gr.StatesExplored,
		PeakBytes:      dpPeakBytes,
		Quality:        QualityHeuristic,
		FellBack:       true,
		FallbackReason: reason,
	}, nil
}
