package serenity

import (
	"context"
	"io"

	"github.com/serenity-ml/serenity/internal/store"
)

// PeerTier is the distributed tier of the segment memo hierarchy: a fleet of
// processes sharing one corpus of per-segment artifacts, so each distinct
// fingerprint pays its DP once globally. internal/fleet provides the
// implementation (consistent-hash ring + bounded HTTP client); the Pipeline
// only needs these three operations:
//
//   - Owns gates the fetch: only keys another member authoritatively owns are
//     worth a round trip (a single-node fleet owns everything, which disables
//     the tier by construction).
//   - Fetch asks the owner for the raw artifact payload. It must be cheap or
//     absent: every failure mode returns ok=false and the caller computes
//     locally, exactly as a fleetless Pipeline would.
//   - Replicate pushes a freshly computed non-owned artifact toward its
//     owner, asynchronously; the compile path never waits on it. ctx carries
//     only trace context (captured before the call returns) — the push
//     itself must not be canceled when the originating request ends.
//
// Payloads cross the wire in the MarshalSegmentArtifact encoding and are
// re-validated on arrival — decode, poison rule, permutation check — so a
// confused peer degrades the fleet to local compute, never to a wrong
// schedule.
type PeerTier interface {
	Owns(key string) bool
	Fetch(ctx context.Context, key string) ([]byte, bool)
	Replicate(ctx context.Context, key string, payload []byte)
}

// decodePeerArtifact validates a payload that arrived from a peer exactly as
// hard as a disk artifact is validated on load: decode (which enforces the
// version and the never-persist-degraded rule) plus the full permutation
// check against the segment's node count.
func decodePeerArtifact(payload []byte, nodes int) (SearchResult, bool) {
	sr, err := UnmarshalSegmentArtifact(payload)
	if err != nil || sr.FellBack || !validPermutation(sr.Order, nodes) {
		return SearchResult{}, false
	}
	return sr, true
}

// artifactSelfConsistent reports whether a payload decodes to a structurally
// valid artifact on its own terms — a permutation of exactly its own length.
// The replication and sync receivers run this gate: they do not know the
// segment's node count (only a later lookup does), but an artifact whose
// order is not a permutation of anything can be rejected before it ever
// occupies store space.
func artifactSelfConsistent(payload []byte) bool {
	sr, err := UnmarshalSegmentArtifact(payload)
	return err == nil && !sr.FellBack && validPermutation(sr.Order, len(sr.Order))
}

// The methods below adapt a ScheduleStore to the fleet's Store interface
// (internal/fleet.Server and Syncer), making the persistent tier double as
// the fleet-visible artifact corpus. All of them are inert on a closed store,
// like every other ScheduleStore operation.

// GetArtifact returns the raw payload stored for key, bypassing the memo
// hierarchy's lookup accounting — peer traffic must not skew the disk-tier
// hit rate operators alert on.
func (ss *ScheduleStore) GetArtifact(key string) ([]byte, bool) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return nil, false
	}
	return ss.st.Get(key)
}

// PutArtifact stores a payload replicated from a peer, first-writer-wins: an
// existing record keeps its established bytes, so replication can never
// change an answer a client has already seen. Invalid payloads are refused.
// The write is synchronous — replication arrives on peer-facing handlers,
// not the compile hot path.
func (ss *ScheduleStore) PutArtifact(key string, payload []byte) bool {
	if !artifactSelfConsistent(payload) {
		return false
	}
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return false
	}
	if ss.st.Has(key) {
		return false
	}
	return ss.st.Put(key, payload) == nil
}

// KeyHashes returns the anti-entropy digest of the stored artifacts.
func (ss *ScheduleStore) KeyHashes() []uint64 {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return nil
	}
	return ss.st.KeyHashes()
}

// ExportSubset streams the stored artifacts whose key-hash want contains, as
// a self-contained store file, returning how many records it wrote.
func (ss *ScheduleStore) ExportSubset(w io.Writer, want map[uint64]bool) (int, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return 0, nil
	}
	n := 0
	err := ss.st.ExportFiltered(w, func(key string) bool {
		if want[store.KeyHash(key)] {
			n++
			return true
		}
		return false
	})
	return n, err
}

// ImportMissing merges an anti-entropy stream: records for keys already
// present are skipped (first-writer-wins), payloads that fail artifact
// validation are skipped, and corrupt records are tolerated exactly as a
// store Open tolerates them. Returns how many records were added.
func (ss *ScheduleStore) ImportMissing(r io.Reader) (int, error) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	if ss.closed {
		return 0, nil
	}
	added, _, err := ss.st.ImportFiltered(r, func(key string, payload []byte) bool {
		return !ss.st.Has(key) && artifactSelfConsistent(payload)
	})
	return added, err
}
