// Benchmarks regenerating every measured table and figure of the paper.
// Run all of them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the figure's headline number as a custom metric so
// `go test -bench` output doubles as the reproduction record (see
// EXPERIMENTS.md for the paper-vs-measured comparison).
package serenity

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/bench"
	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/sched"
)

// BenchmarkTable1Specs regenerates Table 1 (network specifications).
func BenchmarkTable1Specs(b *testing.B) {
	var macs int64
	for i := 0; i < b.N; i++ {
		specs := models.Table1Specs()
		macs = 0
		for _, s := range specs {
			macs += s.MACs
		}
	}
	b.ReportMetric(float64(macs)/1e6, "total-MMACs")
}

// BenchmarkFig3bCDF regenerates Figure 3(b): the CDF of peak footprints
// over sampled schedules of SwiftNet Cell A against the 250 KB constraint.
func BenchmarkFig3bCDF(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig3b(2000, 2020)
		if err != nil {
			b.Fatal(err)
		}
		frac = r.FracUnderCap
	}
	b.ReportMetric(100*frac, "pct-schedules-under-250KB")
}

// BenchmarkFig10PeakReduction regenerates Figure 10: peak-footprint
// reduction of SERENITY over the memory-oblivious baseline on all nine
// cells (geomean reported).
func BenchmarkFig10PeakReduction(b *testing.B) {
	b.ReportAllocs()
	var geoDP, geoGR float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.MeasureAllCells(500 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		logDP, logGR := 0.0, 0.0
		for _, c := range cells {
			logDP += ln(float64(c.BaselinePeak) / float64(c.DPPeak))
			logGR += ln(float64(c.BaselinePeak) / float64(c.DPGRPeak))
		}
		geoDP = exp(logDP / float64(len(cells)))
		geoGR = exp(logGR / float64(len(cells)))
	}
	b.ReportMetric(geoDP, "geomean-reduction-DP")
	b.ReportMetric(geoGR, "geomean-reduction-DP+GR")
}

// BenchmarkFig11Traffic regenerates Figure 11: off-chip traffic reduction
// with a 256 KB on-chip memory (geomean over measurable cells).
func BenchmarkFig11Traffic(b *testing.B) {
	cells, err := bench.MeasureAllCells(500 * time.Millisecond)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var geo float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig11(cells)
		if err != nil {
			b.Fatal(err)
		}
		logSum, n := 0.0, 0
		for _, r := range rows {
			if r.OnChipKB == 256 && !r.NA && !r.Eliminated {
				logSum += ln(float64(r.BaselineTraffic) / float64(r.SerenityTraffic))
				n++
			}
		}
		if n > 0 {
			geo = exp(logSum / float64(n))
		}
	}
	b.ReportMetric(geo, "geomean-traffic-reduction-256KB")
}

// BenchmarkFig12Profile regenerates Figure 12: the SwiftNet Cell A
// footprint profiles with and without rewriting and the allocator.
func BenchmarkFig12Profile(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		reduction = r.WithoutAllocator[0].PeakKB - r.WithoutAllocator[1].PeakKB
	}
	b.ReportMetric(reduction, "rewrite-reduction-KB")
}

// BenchmarkFig13SchedulingTime regenerates Figure 13: SERENITY's compile
// (scheduling) time averaged over the nine cells.
func BenchmarkFig13SchedulingTime(b *testing.B) {
	b.ReportAllocs()
	var meanMS float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.MeasureAllCells(500 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		var sum time.Duration
		for _, c := range cells {
			sum += c.DPGRTime
		}
		meanMS = float64(sum.Milliseconds()) / float64(len(cells))
	}
	b.ReportMetric(meanMS, "mean-scheduling-ms")
}

// BenchmarkFig15RawPeak regenerates Figure 15: raw peak footprints (the
// SwiftNet Cell A value is reported as the headline metric).
func BenchmarkFig15RawPeak(b *testing.B) {
	var cellA float64
	for i := 0; i < b.N; i++ {
		cells, err := bench.MeasureAllCells(500 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range cells {
			if c.Network == "SwiftNet" && c.Cell == "Cell A" {
				cellA = bench.KB(c.DPGRPeak)
			}
		}
	}
	b.ReportMetric(cellA, "swiftnet-a-DP+GR-KB")
}

// BenchmarkTable2Ablation regenerates Table 2: scheduling time by algorithm
// combination on SwiftNet.
func BenchmarkTable2Ablation(b *testing.B) {
	b.ReportAllocs()
	var fullMS float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(bench.Table2Options{
			PlainDPBudget: 250 * time.Millisecond,
			StepTimeout:   500 * time.Millisecond,
			MaxStates:     1 << 19,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Algorithm == "1+2+3" && r.GraphRewriting {
				fullMS = float64(r.Time.Milliseconds())
			}
		}
	}
	b.ReportMetric(fullMS, "swiftnet+GR-1+2+3-ms")
}

// BenchmarkDPSchedulerMicro is a microbenchmark of the core DP scheduler on
// SwiftNet Cell C (ablation support; not a paper figure).
func BenchmarkDPSchedulerMicro(b *testing.B) {
	g := models.SwiftNetCellC()
	m := sched.NewMemModel(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := dp.Optimal(m)
		if r.Flag != dp.FlagSolution {
			b.Fatal("DP failed")
		}
	}
}

// BenchmarkAdaptiveVsUnbudgeted quantifies the state-space pruning of
// adaptive soft budgeting (Figure 8(b)'s mechanism) on SwiftNet Cell A.
func BenchmarkAdaptiveVsUnbudgeted(b *testing.B) {
	g := models.SwiftNetCellA()
	m := sched.NewMemModel(g)
	var plain, adaptive int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := dp.Optimal(m)
		ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{StepTimeout: time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if pr.Peak != ar.Peak {
			b.Fatalf("adaptive peak %d != exact %d", ar.Peak, pr.Peak)
		}
		plain, adaptive = pr.StatesExplored, ar.StatesExplored
	}
	b.ReportMetric(float64(plain), "states-unbudgeted")
	b.ReportMetric(float64(adaptive), "states-adaptive")
}

// BenchmarkRandomScheduleSampling measures the Figure 3(b) sampling engine.
func BenchmarkRandomScheduleSampling(b *testing.B) {
	g := models.SwiftNetCellA()
	m := sched.NewMemModel(g)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		order := sched.RandomTopo(g, rng)
		if _, err := m.Peak(order); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScheduleParallelism measures the wall-clock effect of fanning the
// per-segment DP over the worker pool (Options.Parallelism) on a stacked
// multi-segment graph; results are bit-identical across sub-benchmarks, only
// the elapsed time changes. Compare:
//
//	go test -bench BenchmarkScheduleParallelism -benchtime 3x
//
// The step timeout is set high enough that adaptive budgeting runs exactly
// one probe per segment, so the comparison isolates the DP fan-out. Speedup
// requires GOMAXPROCS > 1; on a single core the pool degrades to roughly
// sequential cost.
func BenchmarkScheduleParallelism(b *testing.B) {
	g := models.StackedRandWire("bench-par", 6, models.WSConfig{
		Nodes: 40, K: 6, P: 0.9, Seed: 5, HW: 16, Channel: 8,
	})
	var wantPeak int64
	for _, p := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			opts := DefaultOptions()
			opts.StepTimeout = time.Minute
			opts.Parallelism = p
			for i := 0; i < b.N; i++ {
				res, err := Schedule(g, opts)
				if err != nil {
					b.Fatal(err)
				}
				if wantPeak == 0 {
					wantPeak = res.Peak
				} else if res.Peak != wantPeak {
					b.Fatalf("peak %d diverged from %d", res.Peak, wantPeak)
				}
			}
		})
	}
}

// BenchmarkDPIntraLevelParallel measures the sharded intra-level expansion
// on a single dense cell — the single-segment shape the segment pool cannot
// help with. Results are bit-identical across sub-benchmarks (asserted);
// only wall-clock changes, and only with GOMAXPROCS > 1.
func BenchmarkDPIntraLevelParallel(b *testing.B) {
	g := models.RandWireCell("bench-intra", models.WSConfig{
		Nodes: 44, K: 6, P: 0.9, Seed: 11, HW: 16, Channel: 8,
	})
	m := sched.NewMemModel(g)
	var wantPeak int64
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := dp.Schedule(m, dp.Options{Parallelism: p})
				if r.Flag != dp.FlagSolution {
					b.Fatal("DP failed")
				}
				if wantPeak == 0 {
					wantPeak = r.Peak
				} else if r.Peak != wantPeak {
					b.Fatalf("peak %d diverged from %d", r.Peak, wantPeak)
				}
			}
		})
	}
}

// BenchmarkSegmentMemo measures the cross-request segment memo on the
// repeated-cell shape it exists for: a stack of six structurally identical
// WS cells (five of which share one segment fingerprint). "cold" compiles
// with no memo at all — every segment pays its own DP. "warm" compiles
// against a memo pre-populated by one untimed run, so every segment is a
// hit and the pipeline spends its time on rewrite/partition/alloc only.
// Compare ns/op:
//
//	go test -bench BenchmarkSegmentMemo -benchtime 3x
//
// The warm path is expected to be orders of magnitude faster (≥5x is the
// acceptance floor; in practice the DP dominates so thoroughly that the
// ratio is in the hundreds). Results are bit-identical either way, asserted
// against the cold peak.
func BenchmarkSegmentMemo(b *testing.B) {
	g := models.StackedUniformRandWire("bench-memo", 6, models.WSConfig{
		Nodes: 40, K: 6, P: 0.9, Seed: 5, HW: 16, Channel: 8,
	})
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	run := func(b *testing.B, memo *SegmentMemo) *Result {
		b.Helper()
		p, err := NewPipeline(opts)
		if err != nil {
			b.Fatal(err)
		}
		p.SegmentMemo = memo
		res, err := p.Run(context.Background(), g)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var wantPeak int64
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := run(b, nil)
			if wantPeak == 0 {
				wantPeak = res.Peak
			} else if res.Peak != wantPeak {
				b.Fatalf("peak %d diverged from %d", res.Peak, wantPeak)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		memo := NewSegmentMemo(1024)
		pre := run(b, memo) // populate, untimed
		if wantPeak != 0 && pre.Peak != wantPeak {
			b.Fatalf("memo-populating peak %d diverged from cold %d", pre.Peak, wantPeak)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := run(b, memo)
			if res.SegmentMemoHits != len(res.SegmentQuality) {
				b.Fatalf("warm run hit %d of %d segments", res.SegmentMemoHits, len(res.SegmentQuality))
			}
			if res.Peak != pre.Peak {
				b.Fatalf("warm peak %d diverged from %d", res.Peak, pre.Peak)
			}
		}
	})
}

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }
