package serenity

import (
	"sync"
	"time"
)

// Stage names one of the pipeline's four stages (Figure 4).
type Stage string

// Pipeline stages.
const (
	StageRewrite   Stage = "rewrite"
	StagePartition Stage = "partition"
	StageSearch    Stage = "search"
	StageAlloc     Stage = "alloc"
)

// EventKind classifies an Observer event.
type EventKind int

// Observer event kinds.
const (
	// EventStageStart / EventStageDone bracket one enabled pipeline stage;
	// disabled stages emit nothing.
	EventStageStart EventKind = iota
	EventStageDone
	// EventSegmentStart / EventSegmentDone bracket one segment's search.
	EventSegmentStart
	EventSegmentDone
	// EventFallback reports a degradable searcher abandoning its exact
	// search for a segment; Err carries the reason.
	EventFallback
	// EventRefined reports a RefinePool repairing one degraded key in the
	// background: the exact search ran to completion and its optimal result
	// replaced the poisoned (never-cached) answer in the memo hierarchy.
	// Emitted by the pool's Observer, not a Pipeline's; Segment is -1,
	// Nodes/Quality/States/Elapsed describe the refining search, and Err is
	// set when the refinement failed (the key stays cold, nothing was
	// replaced).
	EventRefined
)

// String renders the kind.
func (k EventKind) String() string {
	switch k {
	case EventStageStart:
		return "stage-start"
	case EventStageDone:
		return "stage-done"
	case EventSegmentStart:
		return "segment-start"
	case EventSegmentDone:
		return "segment-done"
	case EventFallback:
		return "fallback"
	case EventRefined:
		return "refined"
	}
	return "unknown"
}

// Event is one observation from a running Pipeline.
type Event struct {
	Kind  EventKind
	Stage Stage // the stage (segment events report StageSearch)
	// Segment is the partition segment index, -1 for whole-pipeline events.
	Segment int
	// Nodes is the segment's node count (segment events).
	Nodes int
	// Quality and States report the segment's outcome (EventSegmentDone).
	Quality Quality
	States  int64
	// Fingerprint is the segment's memo fingerprint (EventSegmentDone), the
	// same value the memo hierarchy keys on, so an Observer can correlate a
	// segment event with store/peer traffic for the same artifact.
	Fingerprint string
	// MemoTier reports which memo tier answered the segment (EventSegmentDone):
	// "memory", "disk", "peer", or "fresh" when the DP actually ran.
	MemoTier string
	// Elapsed is the stage or segment duration (done events), or — on
	// EventFallback — how long the doomed exact attempt burned before the
	// searcher abandoned it.
	Elapsed time.Duration
	// Err is the fallback reason (EventFallback).
	Err error
}

// Observer receives pipeline events. The Pipeline serializes calls — even
// with Options.Parallelism > 1 an Observer never sees concurrent
// invocations — so implementations need no locking of their own. Segment
// events may arrive in any segment order when searches run in parallel; use
// Event.Segment, not arrival order.
//
// A compilation that fails mid-stage returns its error to the caller
// without emitting the corresponding done events — the error, not the event
// stream, is the authoritative completion signal. Observers tracking
// in-flight work must reset when Run returns.
type Observer interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event)

// Observe implements Observer.
func (f ObserverFunc) Observe(e Event) { f(e) }

// emitter serializes event delivery to an optional Observer.
type emitter struct {
	mu  sync.Mutex
	obs Observer
}

func (e *emitter) emit(ev Event) {
	if e.obs == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.obs.Observe(ev)
}

func (e *emitter) stageStart(s Stage) {
	e.emit(Event{Kind: EventStageStart, Stage: s, Segment: -1})
}

func (e *emitter) stageDone(s Stage, d time.Duration) {
	e.emit(Event{Kind: EventStageDone, Stage: s, Segment: -1, Elapsed: d})
}

func (e *emitter) segmentStart(idx, nodes int) {
	e.emit(Event{Kind: EventSegmentStart, Stage: StageSearch, Segment: idx, Nodes: nodes})
}

func (e *emitter) segmentDone(idx, nodes int, sr SearchResult, d time.Duration, fp, tier string) {
	e.emit(Event{
		Kind: EventSegmentDone, Stage: StageSearch, Segment: idx, Nodes: nodes,
		Quality: sr.Quality, States: sr.StatesExplored, Elapsed: d,
		Fingerprint: fp, MemoTier: tier,
	})
}

func (e *emitter) fallback(idx int, reason error, elapsed time.Duration) {
	e.emit(Event{Kind: EventFallback, Stage: StageSearch, Segment: idx, Err: reason, Elapsed: elapsed})
}
