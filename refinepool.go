package serenity

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/serenity-ml/serenity/internal/trace"
)

// Refiner is implemented by Searchers whose degraded results can be repaired
// in the background: RefineSearcher returns the searcher configuration a
// RefinePool runs — the same search with the deadline pressure removed —
// whose result is valid under the original MemoKey. BestEffort implements it
// (the refined searcher is the exact attempt, run to completion under a
// background context). A Searcher that does not implement Refiner opts out:
// the Pipeline serves its degraded results as before, final and uncached.
type Refiner interface {
	Searcher
	MemoKeyer
	// RefineSearcher returns the searcher the RefinePool runs to produce
	// the exact result for a key this searcher degraded. The returned
	// searcher must produce results interchangeable with this searcher's
	// non-degraded results (same MemoKey contract).
	RefineSearcher() Searcher
}

// RefinePoolOptions configures a RefinePool.
type RefinePoolOptions struct {
	// Workers is the number of background refinement goroutines; values < 1
	// mean 1.
	Workers int
	// QueueDepth bounds the refinement queue. An enqueue against a full
	// queue is dropped and counted — refinement is best-effort repair, and
	// the serving path must never block on it. Values < 1 mean 64.
	QueueDepth int
	// Parallelism is the CPU budget of each refining search (the same
	// semantics as Options.Parallelism). Refinement is the lowest-priority
	// work in the process, so keep this small; values < 1 mean 1.
	Parallelism int
	// Gate, when non-nil, is acquired around every refinement run. It is
	// how serenityd subordinates refinement to live traffic: the gate is an
	// admission-control slot in the lowest priority class, so a refinement
	// only occupies a compile slot when no interactive or batch request
	// wants it. Gate blocks until a slot is free and returns its release,
	// or an error when ctx ends (the job is then dropped, not failed).
	Gate func(ctx context.Context) (release func(), err error)
	// Observer, when non-nil, receives one EventRefined per finished job
	// (Err set on failure). Calls are serialized, like a Pipeline's.
	Observer Observer
	// Pressure, when non-nil, is the memory governor's shed signal: while it
	// returns true, workers park jobs instead of running them — refinement
	// is the first work the pressure ladder sheds, since a refining search
	// builds exactly the DP frontiers the process is short of memory for. A
	// parked job keeps its key pending (dedup and wait_refined revalidation
	// still see the repair coming) and is re-enqueued once pressure clears,
	// so a pressure-forced degradation is never silently permanent.
	Pressure func() bool
	// RequeueInterval is the cadence at which parked jobs are re-tried
	// against the Pressure signal. Values <= 0 mean 250ms.
	RequeueInterval time.Duration
	// Tracer, when non-nil, records the refinement lifecycle (queued →
	// parked → run) as spans linked back to the trace of the request whose
	// degraded answer the job repairs, so a forced-degraded trace shows its
	// background repair after the fact.
	Tracer *trace.Tracer
}

// RefinePoolStats is a snapshot of a pool's counters. Queued - Done -
// Dropped is the work still in flight (Outstanding).
type RefinePoolStats struct {
	// Queued counts jobs accepted into the queue (deduplicated re-enqueues
	// of a pending key are not accepted and count nowhere).
	Queued int64
	// Done counts jobs that ran to completion, successfully or not; Failed
	// is the subset whose refining search or write-through failed.
	Done   int64
	Failed int64
	// Dropped counts jobs rejected at enqueue (full queue, closed pool) or
	// abandoned before running (pool closed while the job waited, gate
	// refused).
	Dropped int64
	// Outstanding is the number of accepted jobs not yet finished.
	Outstanding int64
	// Shed counts jobs parked because the Pressure signal was high when a
	// worker picked them up (a job parked, requeued, and parked again
	// counts each time). Requeued counts re-injections of parked jobs after
	// pressure cleared. Parked is the gauge of jobs currently waiting out
	// pressure; they remain Outstanding until run or dropped by Close.
	Shed     int64
	Requeued int64
	Parked   int64
}

// refineJob is one queued refinement: a key (for pending-set dedup), the
// work to run, and the originating request's trace link (zero when the
// request was untraced) plus the lifecycle bookkeeping the trace spans
// report.
type refineJob struct {
	key        string
	run        func(ctx context.Context) error
	link       trace.Link
	enqueuedAt time.Time
	parks      int
}

// RefinePool repairs degraded schedules in the background, making fallbacks
// provisional instead of final.
//
// The poison rule (see SegmentMemo) keeps degraded results out of every
// cache tier, which protects future requests from one overloaded moment —
// but it also means a hot key compiled under pressure stays cold for
// everyone until some quiet request happens to recompute it. A RefinePool
// closes that gap: when a compilation falls back, the Pipeline enqueues the
// segment's exact search here; workers run it with no deadline, and the
// optimal result is written through the guarded replace path into the
// SegmentMemo and ScheduleStore. The next identical request is then a warm
// hit on the exact answer, bit-identical to an unpressured run.
//
// Un-poisoning is safe by construction: every refined result passes the
// same quality and permutation validation disk artifacts pass on load
// before it may replace anything, and an entry that is already optimal is
// never clobbered (see SegmentMemo.replace). A buggy or degraded refinement
// therefore repairs nothing rather than poisoning something.
//
// Enqueue order is FIFO and keys are deduplicated while pending, so a hot
// degraded key costs one refinement no matter how many requests hit it.
// The pool is bounded (QueueDepth) and drops on overflow: under sustained
// overload refinement sheds load first, which is exactly its place in the
// priority order (serenityd additionally routes every refinement run
// through the lowest admission class via Gate).
//
// A RefinePool is safe for concurrent use. Close it on shutdown: queued
// jobs are dropped, running searches are canceled, and workers exit.
type RefinePool struct {
	memo  *SegmentMemo
	store *ScheduleStore
	opts  RefinePoolOptions
	obs   *emitter

	ctx    context.Context
	cancel context.CancelFunc
	jobs   chan refineJob
	wg     sync.WaitGroup

	mu      sync.Mutex
	pending map[string]struct{}
	parked  []refineJob
	closed  bool

	queued      atomic.Int64
	done        atomic.Int64
	failed      atomic.Int64
	dropped     atomic.Int64
	outstanding atomic.Int64
	shed        atomic.Int64
	requeued    atomic.Int64
}

// NewRefinePool starts a pool writing refined results through to memo
// and/or store (either may be nil; with both nil the pool still runs jobs,
// which is useful only for the generic Enqueue). The caller owns the pool
// and must Close it.
func NewRefinePool(memo *SegmentMemo, store *ScheduleStore, opts RefinePoolOptions) *RefinePool {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.QueueDepth < 1 {
		opts.QueueDepth = 64
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &RefinePool{
		memo:    memo,
		store:   store,
		opts:    opts,
		obs:     &emitter{obs: opts.Observer},
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(chan refineJob, opts.QueueDepth),
		pending: make(map[string]struct{}),
	}
	p.wg.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go p.worker()
	}
	if opts.Pressure != nil {
		iv := opts.RequeueInterval
		if iv <= 0 {
			iv = 250 * time.Millisecond
		}
		p.wg.Add(1)
		go p.requeueLoop(iv)
	}
	return p
}

// EnqueueSegment queues the exact re-search of one degraded segment: run
// r.RefineSearcher() on g with no deadline and write the optimal result
// through to the memo hierarchy under key. ctx is consulted only for trace
// context — when the degrading request was traced, the refinement's
// lifecycle spans are linked back to its trace ID — and is not a
// cancellation signal (the job runs under the pool's own context). Returns
// whether the job was accepted; false means the key is already pending (the
// earlier job covers this request too), the queue is full, or the pool is
// closed.
func (p *RefinePool) EnqueueSegment(ctx context.Context, key string, g *Graph, r Refiner) bool {
	searcher := r.RefineSearcher()
	if ps, ok := searcher.(parallelScoper); ok && p.opts.Parallelism > 1 {
		searcher = ps.scopeParallelism(p.opts.Parallelism)
	}
	link := trace.LinkFromContext(ctx)
	return p.Enqueue(ctx, key, func(ctx context.Context) error {
		m := NewMemModel(g)
		nodes := g.NumNodes()
		start := time.Now()
		sr, err := searcher.Search(ctx, m)
		if err == nil && len(sr.Order) != nodes {
			err = fmt.Errorf("serenity: refining searcher %s returned %d of %d nodes", searcher.Name(), len(sr.Order), nodes)
		}
		if err == nil {
			if p.memo != nil {
				err = p.memo.replace(key, nodes, sr)
			}
			if err == nil && p.store != nil {
				err = p.store.replace(key, nodes, sr)
			}
		}
		if p.opts.Tracer != nil {
			p.opts.Tracer.RecordLinked(link, "refine.run", start, time.Since(start), err,
				trace.Str("key", key),
				trace.Str("quality", string(sr.Quality)),
				trace.Int("states", sr.StatesExplored))
		}
		p.obs.emit(Event{
			Kind: EventRefined, Stage: StageSearch, Segment: -1, Nodes: nodes,
			Quality: sr.Quality, States: sr.StatesExplored,
			Elapsed: time.Since(start), Err: err,
		})
		return err
	})
}

// Enqueue queues an arbitrary refinement job under key. Keys deduplicate:
// while a job for key is queued or running, further enqueues of the same
// key are declined (return false) — the pending job repairs the key for
// everyone. ctx carries only trace context (see EnqueueSegment). serenityd
// uses this form for whole-response refinements on top of the Pipeline's
// per-segment ones.
func (p *RefinePool) Enqueue(ctx context.Context, key string, run func(ctx context.Context) error) bool {
	job := refineJob{key: key, run: run, link: trace.LinkFromContext(ctx), enqueuedAt: time.Now()}
	// The whole admission — closed check, dedup, and the non-blocking send —
	// happens under mu, the same lock Close holds while closing the channel,
	// so a send can never race the close.
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		p.dropped.Add(1)
		return false
	}
	if _, dup := p.pending[key]; dup {
		return false
	}
	select {
	case p.jobs <- job:
		p.pending[key] = struct{}{}
		p.queued.Add(1)
		p.outstanding.Add(1)
		return true
	default:
		p.dropped.Add(1)
		return false
	}
}

// Pending reports whether a refinement for key is queued or running. It is
// the revalidation primitive: serenityd's ?wait_refined= poll and 304
// responses consult it to tell "refinement coming" from "this is final".
func (p *RefinePool) Pending(key string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.pending[key]
	return ok
}

// worker drains the queue. Each job acquires the Gate (when configured),
// runs under the pool's root context — no deadline, canceled only by Close
// — and retires into the counters.
func (p *RefinePool) worker() {
	defer p.wg.Done()
	for job := range p.jobs {
		if p.ctx.Err() != nil {
			// Closing: abandon without running.
			p.retire(job.key, &p.dropped)
			continue
		}
		if p.opts.Pressure != nil && p.opts.Pressure() {
			// Memory pressure: park instead of running. The key stays
			// pending, so dedup and wait_refined still see the repair
			// coming; requeueLoop re-injects once pressure clears.
			p.park(job)
			continue
		}
		var release func()
		if p.opts.Gate != nil {
			var err error
			release, err = p.opts.Gate(p.ctx)
			if err != nil {
				p.retire(job.key, &p.dropped)
				continue
			}
		}
		if p.opts.Tracer != nil {
			// The queued span covers enqueue → the moment the job got a
			// worker AND a gate slot: the full wait a degraded answer sat
			// unrepaired, parks included.
			p.opts.Tracer.RecordLinked(job.link, "refine.queued", job.enqueuedAt,
				time.Since(job.enqueuedAt), nil,
				trace.Str("key", job.key), trace.Int("parks", int64(job.parks)))
		}
		err := job.run(p.ctx)
		if release != nil {
			release()
		}
		p.done.Add(1)
		if err != nil {
			p.failed.Add(1)
		}
		p.retire(job.key, nil)
	}
}

// park sets a job aside under memory pressure. The job remains pending and
// outstanding; only Close or a successful requeue moves it on. If the pool
// closed while the worker was deciding, the job is dropped instead.
func (p *RefinePool) park(job refineJob) {
	job.parks++
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		p.retire(job.key, &p.dropped)
		return
	}
	p.parked = append(p.parked, job)
	p.mu.Unlock()
	p.shed.Add(1)
	if p.opts.Tracer != nil {
		p.opts.Tracer.RecordLinked(job.link, "refine.parked", time.Now(), 0, nil,
			trace.Str("key", job.key), trace.Int("parks", int64(job.parks)))
	}
}

// requeueLoop re-injects parked jobs into the queue once the Pressure signal
// clears. Sends happen under mu with the closed flag checked — the same
// discipline as Enqueue — so they can never race Close's channel close. A
// full queue leaves the remainder parked for the next tick.
func (p *RefinePool) requeueLoop(iv time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
		}
		if p.opts.Pressure() {
			continue
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		moved := 0
		for moved < len(p.parked) {
			select {
			case p.jobs <- p.parked[moved]:
				moved++
			default:
				// Queue full: stop here, keep the rest parked.
				goto drained
			}
		}
	drained:
		if moved > 0 {
			p.parked = append(p.parked[:0], p.parked[moved:]...)
			p.requeued.Add(int64(moved))
		}
		p.mu.Unlock()
	}
}

// retire removes key from the pending set, bumps counter (when non-nil),
// and decrements the outstanding gauge.
func (p *RefinePool) retire(key string, counter *atomic.Int64) {
	if counter != nil {
		counter.Add(1)
	}
	p.mu.Lock()
	delete(p.pending, key)
	p.mu.Unlock()
	p.outstanding.Add(-1)
}

// Quiesce blocks until every accepted job has finished (or been dropped by
// a concurrent Close), or ctx ends. Jobs enqueued after Quiesce is called
// extend the wait. Tests and drains use it as the "refinement has caught
// up" barrier.
func (p *RefinePool) Quiesce(ctx context.Context) error {
	for {
		if p.outstanding.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Stats returns a snapshot of the pool's counters.
func (p *RefinePool) Stats() RefinePoolStats {
	p.mu.Lock()
	parked := int64(len(p.parked))
	p.mu.Unlock()
	return RefinePoolStats{
		Queued:      p.queued.Load(),
		Done:        p.done.Load(),
		Failed:      p.failed.Load(),
		Dropped:     p.dropped.Load(),
		Outstanding: p.outstanding.Load(),
		Shed:        p.shed.Load(),
		Requeued:    p.requeued.Load(),
		Parked:      parked,
	}
}

// Close stops the pool: no further jobs are accepted, queued jobs are
// dropped, running searches are canceled promptly, and workers exit before
// Close returns. Closing twice is safe.
func (p *RefinePool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.cancel()
	close(p.jobs) // under mu: no Enqueue can be mid-send (see Enqueue)
	parked := p.parked
	p.parked = nil
	p.mu.Unlock()
	for _, job := range parked {
		p.retire(job.key, &p.dropped)
	}
	p.wg.Wait()
}
