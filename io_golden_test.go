package serenity

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/serenity-ml/serenity/internal/partition"
)

// TestGoldenJSONRoundTrip locks the JSON IR wire format to the committed
// fixtures: every golden graph must parse, re-serialize byte-identically,
// and survive a second read. serenityd serves this exact format, so any
// silent drift (field renames, ordering changes, dropped attributes) fails
// here before it can break clients. Regenerate deliberately with
// `go run testdata/golden/gen.go` after an intentional format change.
func TestGoldenJSONRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "golden", "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 4 {
		t.Fatalf("found %d golden fixtures, want at least 4", len(files))
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			want, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			g, err := ReadGraphJSON(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden fixture rejected: %v", err)
			}
			var buf bytes.Buffer
			if err := WriteGraphJSON(&buf, g); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("wire format drifted from %s; if intentional, regenerate with `go run testdata/golden/gen.go`", file)
			}
			g2, err := ReadGraphJSON(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("re-read failed: %v", err)
			}
			if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
				t.Errorf("re-read changed graph: %d/%d nodes, %d/%d edges",
					g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
			}
		})
	}
}

// TestGoldenFingerprints locks the structural hash: the cache key format of
// internal/cache and serenityd. A change here invalidates every deployed
// cache, so it must be a conscious decision.
func TestGoldenFingerprints(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden", "fingerprints.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	checked := 0
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) != 2 {
			t.Fatalf("malformed manifest line %q", scanner.Text())
		}
		name, want := fields[0], fields[1]
		data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		g, err := ReadGraphJSON(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if got := g.Fingerprint(); got != want {
			t.Errorf("%s: fingerprint %s, want %s (cache keys would be invalidated)", name, got, want)
		}
		checked++
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if checked < 4 {
		t.Errorf("manifest covers %d graphs, want at least 4", checked)
	}
}

// TestGoldenSegmentFingerprints locks the segment fingerprint — the key
// format of the cross-request segment memo (SegmentMemo, serenityd's
// -segment-memo-size). Drift here silently invalidates every deployed memo;
// an accidental collision would be far worse, aliasing different
// sub-problems to one stored schedule. Regenerate deliberately with
// `go run testdata/golden/gen.go`.
func TestGoldenSegmentFingerprints(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden", "segment_fingerprints.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	graphs := map[string]*partition.Partition{}
	perGraph := map[string]int{}
	checked := 0
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) != 3 {
			t.Fatalf("malformed manifest line %q", scanner.Text())
		}
		name, want := fields[0], fields[2]
		idx, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatalf("malformed segment index in %q", scanner.Text())
		}
		p, ok := graphs[name]
		if !ok {
			data, err := os.ReadFile(filepath.Join("testdata", "golden", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			g, err := ReadGraphJSON(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if p, err = partition.Split(g); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			graphs[name] = p
		}
		if idx >= len(p.Segments) {
			t.Fatalf("%s: manifest names segment %d, graph splits into %d", name, idx, len(p.Segments))
		}
		if got := p.Segments[idx].Fingerprint(); got != want {
			t.Errorf("%s segment %d: fingerprint %s, want %s (deployed segment memos would be invalidated)", name, idx, got, want)
		}
		perGraph[name]++
		checked++
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if checked < 4 {
		t.Errorf("manifest covers %d segments, want at least 4", checked)
	}
	// Every segment of every golden graph must be covered — a manifest that
	// silently shrinks is as bad as one that drifts.
	for name, p := range graphs {
		if perGraph[name] != len(p.Segments) {
			t.Errorf("%s: manifest covers %d of %d segments", name, perGraph[name], len(p.Segments))
		}
	}
}

// TestGoldenRewrittenGraphCoversAliasing guards against fixtures regressing
// to shapes that no longer exercise the aliasing fields of the wire format.
func TestGoldenRewrittenGraphCoversAliasing(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden", "swiftnet_cell_a_rewritten.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"alias_of"`)) {
		t.Error("rewritten fixture carries no alias_of fields")
	}
	if !bytes.Contains(data, []byte(`"Buffer"`)) {
		t.Error("rewritten fixture carries no Buffer ops")
	}
}
