package serenity

import (
	"github.com/serenity-ml/serenity/internal/alloc"
)

// Allocation maps a schedule's physical tensors to byte offsets in one flat
// arena.
type Allocation struct {
	// Offsets[node] is the arena byte offset of each physical tensor, -1
	// for aliases and zero-sized tensors.
	Offsets []int64
	// ArenaSize is the total bytes the arena reserves: max(offset+size).
	ArenaSize int64
}

// Allocator plans the arena for a finished schedule. Implementations must
// guarantee that tensors with overlapping lifetimes never overlap in space.
type Allocator interface {
	// Name identifies the strategy in logs, metrics, and responses.
	Name() string
	// Allocate assigns every physical tensor of m an offset under order.
	Allocate(m *MemModel, order Order) (Allocation, error)
}

// ArenaBestFit is TensorFlow Lite's "simple memory arena" planning scheme —
// greedy best-fit offset assignment over tensor lifetimes, largest tensors
// first — and the default Allocator. This is the allocator the paper pairs
// with its scheduler (the "+Memory Allocator" curves of Figure 12a).
type ArenaBestFit struct{}

// Name implements Allocator.
func (ArenaBestFit) Name() string { return "best-fit" }

// Allocate implements Allocator.
func (ArenaBestFit) Allocate(m *MemModel, order Order) (Allocation, error) {
	a, err := alloc.Plan(m, order)
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{Offsets: a.Offsets, ArenaSize: a.ArenaSize}, nil
}

// ArenaBump never reuses space: every tensor gets a fresh offset, so the
// arena is the sum of all tensor sizes. The degenerate no-sharing strategy —
// a fragmentation-free correctness baseline, and the honest answer for
// runtimes that cannot alias buffers at all.
type ArenaBump struct{}

// Name implements Allocator.
func (ArenaBump) Name() string { return "bump" }

// Allocate implements Allocator.
func (ArenaBump) Allocate(m *MemModel, order Order) (Allocation, error) {
	a, err := alloc.PlanBump(m, order)
	if err != nil {
		return Allocation{}, err
	}
	return Allocation{Offsets: a.Offsets, ArenaSize: a.ArenaSize}, nil
}
