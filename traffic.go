package serenity

import (
	"github.com/serenity-ml/serenity/internal/memsim"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Traffic reports the off-chip bytes a schedule moves on a device with a
// two-level memory hierarchy (on-chip SRAM backed by DRAM), measured with
// Belady's clairvoyant replacement as in the paper's Figure 11.
type Traffic struct {
	// FetchBytes are DRAM->SRAM refills of spilled tensors.
	FetchBytes int64
	// WritebackBytes are SRAM->DRAM spills of still-live tensors.
	WritebackBytes int64
	// BypassBytes stream tensors larger than the SRAM per access.
	BypassBytes int64
}

// Total returns all off-chip bytes moved.
func (t Traffic) Total() int64 { return t.FetchBytes + t.WritebackBytes + t.BypassBytes }

// SimulateTraffic measures the off-chip traffic of executing g in the given
// order with onChipBytes of SRAM. A zero Total means the schedule's working
// set fits on-chip for the whole inference.
func SimulateTraffic(g *Graph, order Order, onChipBytes int64) (Traffic, error) {
	m := sched.NewMemModel(g)
	tr, err := memsim.Simulate(m, order, memsim.Config{OnChipBytes: onChipBytes})
	if err != nil {
		return Traffic{}, err
	}
	return Traffic{
		FetchBytes:     tr.FetchBytes,
		WritebackBytes: tr.WritebackBytes,
		BypassBytes:    tr.BypassBytes,
	}, nil
}
