package serenity

import (
	"context"
	"testing"
)

// TestMemoWarmPathZeroAlloc pins the tracing-off overhead contract: an
// untraced lookup that hits the in-memory tier performs zero heap
// allocations. The trace hooks in do() are nil-guarded for exactly this —
// span and attribute construction must only happen when a live span rides
// the context.
func TestMemoWarmPathZeroAlloc(t *testing.T) {
	m := NewSegmentMemo(16)
	ctx := context.Background()
	compute := func() (SearchResult, error) {
		return SearchResult{Order: []int{0, 1, 2}, Quality: QualityOptimal}, nil
	}
	if _, tier, err := m.do(ctx, "k", nil, nil, 3, compute); err != nil || tier != memoTierMiss {
		t.Fatalf("seeding the memo: tier=%v err=%v", tier, err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, tier, err := m.do(ctx, "k", nil, nil, 3, compute)
		if err != nil || tier != memoTierMemory {
			t.Fatalf("warm lookup: tier=%v err=%v", tier, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("untraced memo warm path allocates %.1f per op, want 0", allocs)
	}
}

func TestMemoTierNames(t *testing.T) {
	want := map[memoTier]string{
		memoTierMemory: "memory",
		memoTierDisk:   "disk",
		memoTierPeer:   "peer",
		memoTierMiss:   "fresh",
	}
	for tier, name := range want {
		if got := tier.name(); got != name {
			t.Errorf("tier %d name = %q, want %q", tier, got, name)
		}
	}
}
