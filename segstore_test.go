package serenity

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/store"
)

// --- artifact codec -------------------------------------------------------

func TestSegmentArtifactRoundTrip(t *testing.T) {
	cases := []SearchResult{
		{Order: Order{0, 2, 1, 3}, StatesExplored: 12345, MaxFrontier: 7, Quality: QualityOptimal},
		{Order: Order{0}, StatesExplored: 0, MaxFrontier: 0, Quality: QualityHeuristic},
		{Order: Order{}, Quality: QualityOptimal},
	}
	for i, sr := range cases {
		b, err := MarshalSegmentArtifact(sr)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got, err := UnmarshalSegmentArtifact(b)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !reflect.DeepEqual(got.Order, sr.Order) || got.StatesExplored != sr.StatesExplored ||
			got.MaxFrontier != sr.MaxFrontier || got.Quality != sr.Quality {
			t.Errorf("case %d: round trip %+v -> %+v", i, sr, got)
		}
	}
}

func TestSegmentArtifactRefusesDegraded(t *testing.T) {
	_, err := MarshalSegmentArtifact(SearchResult{
		Order: Order{0, 1}, Quality: QualityHeuristic, FellBack: true,
	})
	if err == nil {
		t.Fatal("a degraded (FellBack) result marshaled; the poison rule has a persistent bypass")
	}
}

func TestSegmentArtifactDecodeRejectsMalformed(t *testing.T) {
	good, err := MarshalSegmentArtifact(SearchResult{Order: Order{0, 1, 2}, Quality: QualityOptimal})
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"empty":          {},
		"short header":   good[:10],
		"truncated body": good[:len(good)-2],
		"trailing junk":  append(append([]byte{}, good...), 0xAA),
		"alien version":  append([]byte{99}, good[1:]...),
		"alien quality":  append([]byte{good[0], 7}, good[2:]...),
	}
	for name, b := range bad {
		if _, err := UnmarshalSegmentArtifact(b); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// FuzzSegmentArtifact: no payload, however mangled, may panic the decoder;
// whatever decodes must re-encode to the same result.
func FuzzSegmentArtifact(f *testing.F) {
	seed, _ := MarshalSegmentArtifact(SearchResult{
		Order: Order{0, 3, 1, 2}, StatesExplored: 99, MaxFrontier: 4, Quality: QualityOptimal,
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{1, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := UnmarshalSegmentArtifact(data)
		if err != nil {
			return
		}
		re, err := MarshalSegmentArtifact(sr)
		if err != nil {
			t.Fatalf("decoded artifact failed to re-encode: %v", err)
		}
		sr2, err := UnmarshalSegmentArtifact(re)
		if err != nil || !reflect.DeepEqual(sr, sr2) {
			t.Fatalf("re-encode round trip diverged: %+v vs %+v (%v)", sr, sr2, err)
		}
	})
}

// --- tiered memo behavior -------------------------------------------------

func openStoreT(t *testing.T, dir string) *ScheduleStore {
	t.Helper()
	ss, err := OpenScheduleStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ss.Close() })
	return ss
}

func storePipeline(t testing.TB, opts Options, memo *SegmentMemo, ss *ScheduleStore) *Pipeline {
	t.Helper()
	p, err := NewPipeline(opts)
	if err != nil {
		t.Fatal(err)
	}
	p.SegmentMemo = memo
	p.Store = ss
	return p
}

// TestScheduleStoreTierPromotion walks one key set through all three tiers:
// fresh search → disk hit (new memo, old store) → memory hit (same memo).
func TestScheduleStoreTierPromotion(t *testing.T) {
	g := uniformStack("store-tiers", 4, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	dir := t.TempDir()
	ss := openStoreT(t, dir)

	cold, err := storePipeline(t, opts, NewSegmentMemo(256), ss).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if cold.SegmentMemoDiskHits != 0 {
		t.Errorf("cold run on an empty store reports %d disk hits", cold.SegmentMemoDiskHits)
	}
	ss.Flush()
	if st := ss.Stats(); st.Writes == 0 || st.Entries == 0 {
		t.Fatalf("cold run wrote nothing through: %+v", st)
	}

	// Fresh memo, same store: simulates a restart inside one process. Every
	// distinct segment loads from disk once and is promoted; its structural
	// twins then hit memory.
	memo2 := NewSegmentMemo(256)
	warm, err := storePipeline(t, opts, memo2, ss).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	nsegs := len(warm.SegmentQuality)
	if warm.SegmentMemoHits != nsegs {
		t.Errorf("warm run hit %d of %d segments", warm.SegmentMemoHits, nsegs)
	}
	if warm.SegmentMemoDiskHits == 0 || warm.SegmentMemoDiskHits >= nsegs {
		t.Errorf("disk hits %d of %d: want >=1 (the store answered) and <nsegs (promotion served the twins)",
			warm.SegmentMemoDiskHits, nsegs)
	}
	if warm.FreshStatesExplored != 0 {
		t.Errorf("warm run explored %d fresh states", warm.FreshStatesExplored)
	}
	assertSameResult(t, "disk-warm", cold, warm)
	if ms := memo2.Stats(); ms.DiskHits != int64(warm.SegmentMemoDiskHits) {
		t.Errorf("memo disk-hit counter %d != result's %d", ms.DiskHits, warm.SegmentMemoDiskHits)
	}

	// Same memo again: everything is promoted now; the disk stays idle.
	hot, err := storePipeline(t, opts, memo2, ss).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if hot.SegmentMemoDiskHits != 0 {
		t.Errorf("fully promoted run still read %d segments from disk", hot.SegmentMemoDiskHits)
	}
	if hot.SegmentMemoHits != nsegs {
		t.Errorf("fully promoted run hit %d of %d segments", hot.SegmentMemoHits, nsegs)
	}
	assertSameResult(t, "memory-hot", cold, hot)
}

// TestScheduleStoreWithoutMemo: Pipeline.Store alone (no SegmentMemo) still
// persists and serves artifacts.
func TestScheduleStoreWithoutMemo(t *testing.T) {
	g := uniformStack("store-only", 3, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	ss := openStoreT(t, t.TempDir())

	cold, err := storePipeline(t, opts, nil, ss).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	ss.Flush()
	warm, err := storePipeline(t, opts, nil, ss).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SegmentMemoHits != len(warm.SegmentQuality) || warm.SegmentMemoHits != warm.SegmentMemoDiskHits {
		t.Errorf("store-only warm run: %d hits, %d disk hits, %d segments — all three should match",
			warm.SegmentMemoHits, warm.SegmentMemoDiskHits, len(warm.SegmentQuality))
	}
	assertSameResult(t, "store-only", cold, warm)
}

// TestScheduleStorePoisonRule: a deadline-degraded run must leave nothing on
// disk that a later process could mistake for the exact answer — the
// SegmentMemo's poison rule extended to the persistent tier.
func TestScheduleStorePoisonRule(t *testing.T) {
	g := models.StackedUniformRandWire("store-poison", 4, models.WSConfig{
		Nodes: 40, K: 6, P: 0.9, Seed: 5, HW: 16, Channel: 8,
	})
	opts := DefaultOptions()
	opts.Strategy = StrategyBestEffort
	dir := t.TempDir()
	ss := openStoreT(t, dir)

	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	rushed, err := storePipeline(t, opts, NewSegmentMemo(256), ss).Run(ctx, g)
	if err != nil {
		t.Fatalf("best-effort errored under deadline: %v", err)
	}
	if rushed.Fallbacks == 0 {
		t.Fatal("expected fallbacks under the 25ms deadline; the poison scenario never happened")
	}
	ss.Flush()
	ss.Close()

	// Inspect the raw store: every artifact persisted under the degraded
	// run's best-effort keys must decode to an optimal result.
	raw, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range raw.Entries() {
		payload, ok := raw.Get(e.Key)
		if !ok {
			t.Fatalf("entry %q unreadable", e.Key)
		}
		sr, err := UnmarshalSegmentArtifact(payload)
		if err != nil {
			t.Fatalf("entry %q: %v", e.Key, err)
		}
		if sr.Quality != QualityOptimal {
			t.Errorf("entry %q: persisted quality %q — a degraded result leaked to disk", e.Key, sr.Quality)
		}
	}
	raw.Close()

	// A fresh process over the same store must still earn optimal.
	ss2 := openStoreT(t, dir)
	relaxed, err := storePipeline(t, opts, NewSegmentMemo(256), ss2).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Quality != QualityOptimal {
		t.Fatalf("restarted run served %q; the store was poisoned", relaxed.Quality)
	}
}

// TestScheduleStoreCorruptionDegrades: a corrupted store file must cost only
// performance. Open skips the bad records (counted), the pipeline recomputes
// them, and the answers match a store-less reference bit for bit.
func TestScheduleStoreCorruptionDegrades(t *testing.T) {
	g := uniformStack("store-corrupt", 4, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	dir := t.TempDir()

	ss := openStoreT(t, dir)
	ref, err := storePipeline(t, opts, NewSegmentMemo(256), ss).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	ss.Flush()
	ss.Close()

	// Flip bytes throughout the record region of the data file.
	path := filepath.Join(dir, store.DataFileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 40; off < len(data); off += 37 {
		data[off] ^= 0x5A
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	ss2 := openStoreT(t, dir)
	if st := ss2.Stats(); st.CorruptRecords == 0 {
		t.Error("corrupted file opened with zero corrupt records counted")
	}
	res, err := storePipeline(t, opts, NewSegmentMemo(256), ss2).Run(context.Background(), g)
	if err != nil {
		t.Fatalf("pipeline failed over a corrupted store: %v", err)
	}
	assertSameResult(t, "corrupt-store", ref, res)

	// Total garbage must also cost only performance.
	if err := os.WriteFile(path, bytes.Repeat([]byte{0xDB}, 4096), 0o644); err != nil {
		t.Fatal(err)
	}
	ss3 := openStoreT(t, dir)
	res3, err := storePipeline(t, opts, NewSegmentMemo(256), ss3).Run(context.Background(), g)
	if err != nil {
		t.Fatalf("pipeline failed over a garbage store: %v", err)
	}
	assertSameResult(t, "garbage-store", ref, res3)
}

// TestScheduleStoreClosedIsInert: lookups and writes against a closed store
// neither panic nor wedge a compilation — shutdown races degrade to cold
// searches.
func TestScheduleStoreClosedIsInert(t *testing.T) {
	g := uniformStack("store-closed", 3, 12)
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	ss := openStoreT(t, t.TempDir())
	ss.Close()
	ss.Flush() // must be a no-op, not a deadlock
	res, err := storePipeline(t, opts, NewSegmentMemo(256), ss).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.SegmentMemoDiskHits != 0 {
		t.Errorf("closed store served %d disk hits", res.SegmentMemoDiskHits)
	}
}

// TestScheduleStoreConcurrentCloseDrain is the shutdown race test (run under
// -race in CI): lookups, writes, flushes, compactions, and stats snapshots
// drain through a store while another goroutine closes it mid-storm. Every
// entry point must be closed-inert — return without panicking, deadlocking,
// or touching the released inner store — and a closed get must not count a
// miss (nothing was looked up, and shutdown must not skew the hit rate the
// daemon prints on exit).
func TestScheduleStoreConcurrentCloseDrain(t *testing.T) {
	ss, err := OpenScheduleStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sr := SearchResult{Order: Order{0, 1, 2}, Quality: QualityOptimal}
	ss.putAsync("seed", sr)
	ss.Flush()

	start := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				switch (w + i) % 5 {
				case 0:
					ss.get("seed", 3)
				case 1:
					ss.putAsync(fmt.Sprintf("k%d-%d", w, i), sr)
				case 2:
					ss.Flush()
				case 3:
					_ = ss.Compact()
				case 4:
					ss.Stats()
				}
			}
		}(w)
	}
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		<-start
		if err := ss.Close(); err != nil {
			t.Errorf("Close mid-storm: %v", err)
		}
	}()
	close(start)
	wg.Wait()
	<-closed

	before := ss.Stats()
	if _, ok := ss.get("seed", 3); ok {
		t.Error("closed store served a lookup")
	}
	ss.putAsync("late", sr)
	ss.Flush()
	if err := ss.Compact(); err != nil {
		t.Errorf("Compact on a closed store: %v", err)
	}
	after := ss.Stats()
	if after.Misses != before.Misses {
		t.Errorf("closed get counted a miss (%d -> %d)", before.Misses, after.Misses)
	}
	if after != before {
		t.Errorf("closed store's stats moved: %+v -> %+v", before, after)
	}
	if err := ss.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestScheduleStoreReplaceUpgradesOnly pins the guarded replace path the
// RefinePool writes through: heuristic artifacts upgrade to optimal,
// existing optimal artifacts are never clobbered, and nothing invalid or
// degraded gets in.
func TestScheduleStoreReplaceUpgradesOnly(t *testing.T) {
	ss := openStoreT(t, t.TempDir())
	heuristic := SearchResult{Order: Order{2, 1, 0}, StatesExplored: 3, Quality: QualityHeuristic}
	optimal := SearchResult{Order: Order{0, 1, 2}, StatesExplored: 9, Quality: QualityOptimal}

	// Upgrade heuristic → optimal.
	ss.putAsync("k", heuristic)
	ss.Flush()
	if err := ss.replace("k", 3, optimal); err != nil {
		t.Fatalf("replace heuristic with optimal: %v", err)
	}
	got, ok := ss.get("k", 3)
	if !ok || got.Quality != QualityOptimal || !reflect.DeepEqual(got.Order, optimal.Order) {
		t.Fatalf("after replace: got %+v ok=%v", got, ok)
	}

	// An established optimal artifact wins over a later refinement: hits
	// must stay bit-identical to whichever run populated the entry.
	other := SearchResult{Order: Order{1, 0, 2}, StatesExplored: 7, Quality: QualityOptimal}
	if err := ss.replace("k", 3, other); err != nil {
		t.Fatalf("replace optimal with optimal: %v", err)
	}
	got, _ = ss.get("k", 3)
	if !reflect.DeepEqual(got.Order, optimal.Order) {
		t.Errorf("second replace clobbered the established optimal artifact: %v", got.Order)
	}

	// Nothing degraded or malformed gets in.
	if err := ss.replace("k2", 3, SearchResult{Order: Order{0, 1, 2}, Quality: QualityOptimal, FellBack: true}); err == nil {
		t.Error("replace accepted a degraded result")
	}
	if err := ss.replace("k2", 3, heuristic); err == nil {
		t.Error("replace accepted a heuristic result")
	}
	if err := ss.replace("k2", 3, SearchResult{Order: Order{0, 0, 2}, Quality: QualityOptimal}); err == nil {
		t.Error("replace accepted a non-permutation order")
	}
	if _, ok := ss.get("k2", 3); ok {
		t.Error("a rejected replace still wrote an artifact")
	}
}

// --- golden fixture -------------------------------------------------------

// TestGoldenStoreFixture pins on-disk artifact format v1 end to end: the
// committed store under testdata/golden/store_v1 (written by gen.go) must
// open clean, decode fully, and warm-start a fresh pipeline to the
// pre-redesign schedule goldens with zero fresh searches. If this test fails
// after a deliberate format change, regenerate the fixture with
// `go run testdata/golden/gen.go` — committing it is the explicit act that
// acknowledges the break; deployed stores will cold-start across it.
func TestGoldenStoreFixture(t *testing.T) {
	// Copy the fixture into a scratch directory: Open repairs files in
	// place, and a test must never mutate a committed fixture.
	fixture := filepath.Join("testdata", "golden", "store_v1", store.DataFileName)
	data, err := os.ReadFile(fixture)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, store.DataFileName), data, 0o644); err != nil {
		t.Fatal(err)
	}

	raw, err := store.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := raw.Stats(); st.Entries == 0 || st.CorruptRecords != 0 {
		t.Fatalf("golden store opened with stats %+v; want clean entries — format v1 no longer reads", st)
	}
	for _, e := range raw.Entries() {
		payload, ok := raw.Get(e.Key)
		if !ok {
			t.Fatalf("golden artifact %q unreadable", e.Key)
		}
		sr, err := UnmarshalSegmentArtifact(payload)
		if err != nil {
			t.Fatalf("golden artifact %q no longer decodes: %v", e.Key, err)
		}
		if sr.Quality != QualityOptimal || !validPermutation(sr.Order, len(sr.Order)) {
			t.Errorf("golden artifact %q decoded to %+v", e.Key, sr)
		}
	}
	raw.Close()

	// Warm-start from the fixture: SwiftNet cells A and B (the graphs gen.go
	// compiled) must come back bit-identical to the pre-redesign goldens —
	// peak, arena, order — without a single fresh search.
	ss, err := OpenScheduleStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	memo := NewSegmentMemo(256)
	golden := []struct {
		g  *Graph
		tc int // index into compatGolden
	}{
		{SwiftNetCellA(), 1},
		{SwiftNetCellB(), 2},
	}
	for _, gc := range golden {
		p, err := NewPipeline(compatOptions())
		if err != nil {
			t.Fatal(err)
		}
		p.SegmentMemo = memo
		p.Store = ss
		res, err := p.Run(context.Background(), gc.g)
		if err != nil {
			t.Fatal(err)
		}
		tc := compatGolden[gc.tc]
		checkCompat(t, "golden store "+tc.name, res, tc.peak, tc.arenaSize, tc.order)
		if res.SegmentMemoHits != len(res.SegmentQuality) {
			t.Errorf("%s: %d of %d segments hit; a key or format drift forced fresh searches",
				tc.name, res.SegmentMemoHits, len(res.SegmentQuality))
		}
		if res.FreshStatesExplored != 0 {
			t.Errorf("%s: %d fresh states explored warm-starting from the golden store", tc.name, res.FreshStatesExplored)
		}
	}
	if st := ss.Stats(); st.Hits == 0 {
		t.Errorf("golden warm-start never hit the disk tier: %+v", st)
	}
}

// --- cross-process warm restart ------------------------------------------

// storeDifferentialWorkload is the suite both halves of the cross-process
// test compile: the paper's nine cells plus deterministic random DAGs. Both
// processes must derive it identically.
func storeDifferentialWorkload() []*Graph {
	var gs []*Graph
	for _, c := range models.BenchmarkCells() {
		gs = append(gs, c.Build())
	}
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		gs = append(gs, graph.RandomDAG(rng, graph.RandomDAGConfig{
			Nodes:    6 + int(seed)*3,
			EdgeProb: 0.35,
			MaxFanIn: 3,
		}))
	}
	return gs
}

func storeDifferentialOptions() Options {
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute // no probe ever times out: fully deterministic
	return opts
}

// storeRunSummary is the wire format between the cold (child) and warm
// (parent) processes.
type storeRunSummary struct {
	Order       []int     `json:"order"`
	Peak        int64     `json:"peak"`
	ArenaSize   int64     `json:"arena_size"`
	Quality     Quality   `json:"quality"`
	SegQuality  []Quality `json:"segment_quality"`
	States      int64     `json:"states_explored"`
	MaxFrontier int       `json:"max_frontier"`
}

func summarize(res *Result) storeRunSummary {
	return storeRunSummary{
		Order:       res.Order,
		Peak:        res.Peak,
		ArenaSize:   res.ArenaSize,
		Quality:     res.Quality,
		SegQuality:  res.SegmentQuality,
		States:      res.StatesExplored,
		MaxFrontier: res.MaxFrontier,
	}
}

// TestScheduleStoreHelperProcess is the cold half of the cross-process
// differential: re-executed as a child process, it compiles the workload
// against a fresh store, flushes, and reports its results as JSON. It is a
// no-op under normal test runs.
func TestScheduleStoreHelperProcess(t *testing.T) {
	dir := os.Getenv("SERENITY_STORE_HELPER_DIR")
	if dir == "" {
		t.Skip("helper process for TestScheduleStoreWarmRestartCrossProcess")
	}
	ss, err := OpenScheduleStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	memo := NewSegmentMemo(1024)
	var out []storeRunSummary
	for _, g := range storeDifferentialWorkload() {
		p, err := NewPipeline(storeDifferentialOptions())
		if err != nil {
			t.Fatal(err)
		}
		p.SegmentMemo = memo
		p.Store = ss
		res, err := p.Run(context.Background(), g)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, summarize(res))
	}
	if err := ss.Compact(); err != nil { // Compact flushes first; exercises the GC pass cross-process
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	enc, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("STORE_HELPER_BEGIN%sSTORE_HELPER_END\n", enc)
}

// TestScheduleStoreWarmRestartCrossProcess is the acceptance differential: a
// cold process populates the store and exits; a second process (this one)
// opens the same directory and must produce bit-identical schedules — order,
// peak, arena, quality, states accounting, MaxFrontier — for the nine-cell
// suite and random DAGs, with the disk tier demonstrably answering.
func TestScheduleStoreWarmRestartCrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process compiling the full nine-cell suite")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestScheduleStoreHelperProcess$", "-test.count=1")
	cmd.Env = append(os.Environ(), "SERENITY_STORE_HELPER_DIR="+dir)
	outBytes, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cold (child) process failed: %v\n%s", err, outBytes)
	}
	outStr := string(outBytes)
	begin := bytes.Index(outBytes, []byte("STORE_HELPER_BEGIN"))
	end := bytes.Index(outBytes, []byte("STORE_HELPER_END"))
	if begin < 0 || end < 0 || end <= begin {
		t.Fatalf("child produced no result block:\n%s", outStr)
	}
	var cold []storeRunSummary
	if err := json.Unmarshal(outBytes[begin+len("STORE_HELPER_BEGIN"):end], &cold); err != nil {
		t.Fatalf("parsing child results: %v", err)
	}

	// Warm restart: a brand-new process image (this test binary run) with
	// nothing in memory but the store directory.
	ss, err := OpenScheduleStore(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if st := ss.Stats(); st.Entries == 0 || st.CorruptRecords != 0 {
		t.Fatalf("store after cold process: %+v, want clean entries", st)
	}
	memo := NewSegmentMemo(1024)
	workload := storeDifferentialWorkload()
	if len(cold) != len(workload) {
		t.Fatalf("child compiled %d graphs, workload has %d", len(cold), len(workload))
	}
	var totalDisk, totalFresh int
	for i, g := range workload {
		p, err := NewPipeline(storeDifferentialOptions())
		if err != nil {
			t.Fatal(err)
		}
		p.SegmentMemo = memo
		p.Store = ss
		warm, err := p.Run(context.Background(), g)
		if err != nil {
			t.Fatalf("graph %d: %v", i, err)
		}
		w := summarize(warm)
		if !reflect.DeepEqual(w, cold[i]) {
			t.Errorf("graph %d (%s) diverged across restart:\ncold: %+v\nwarm: %+v", i, g.Name, cold[i], w)
		}
		totalDisk += warm.SegmentMemoDiskHits
		totalFresh += len(warm.SegmentQuality) - warm.SegmentMemoHits
	}
	if totalDisk == 0 {
		t.Error("warm restart never read the disk tier; the store contributed nothing")
	}
	if totalFresh != 0 {
		t.Errorf("warm restart ran %d fresh searches; every segment should come from the store", totalFresh)
	}
	if st := ss.Stats(); st.Hits == 0 {
		t.Errorf("store counters after warm restart: %+v, want hits > 0", st)
	}
}
