package serenity

import (
	"context"
	"reflect"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/models"
)

// compatGolden pins the pre-Pipeline-redesign outputs of Schedule with
// DefaultOptions (StepTimeout raised to a minute so no adaptive probe ever
// hits its wall-clock limit, making the pipeline fully deterministic) on the
// paper's nine-cell model suite. Captured from the monolithic
// ScheduleContext immediately before the Searcher/Allocator redesign; the
// compatibility contract is that the ExactDP strategy reproduces these bit
// for bit.
var compatGolden = []struct {
	name      string
	cell      int // index into models.BenchmarkCells()
	peak      int64
	arenaSize int64
	order     []int
}{
	{"DARTS/Normal", 0, 903168, 903168, []int{0, 2, 1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 21, 16, 23, 17, 18, 19, 20, 22, 24, 25, 26}},
	{"SwiftNet/CellA", 1, 123904, 123904, []int{0, 2, 6, 7, 3, 8, 4, 9, 5, 10, 12, 16, 17, 13, 18, 14, 19, 15, 20, 22, 26, 27, 23, 28, 24, 29, 25, 30, 1, 11, 21, 31, 32}},
	{"SwiftNet/CellB", 2, 30976, 30976, []int{0, 2, 5, 6, 3, 7, 4, 8, 10, 13, 14, 11, 15, 12, 16, 18, 21, 22, 19, 23, 20, 24, 1, 9, 17, 25, 26, 27, 28}},
	{"SwiftNet/CellC", 3, 7328, 7328, []int{0, 2, 6, 7, 3, 8, 4, 9, 5, 10, 12, 15, 16, 13, 17, 14, 18, 1, 11, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29}},
	{"RandWire/C10-A", 4, 983040, 983040, []int{0, 1, 2, 3, 4, 5, 6, 9, 12, 13, 19, 21, 24, 25, 31, 32, 33, 34, 7, 8, 35, 20, 22, 23, 26, 27, 10, 11, 14, 15, 16, 17, 18, 28, 29, 30, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52}},
	{"RandWire/C10-B", 5, 458752, 458752, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 23, 24, 25, 26, 21, 27, 28, 29, 30, 31, 32, 33, 34, 35, 36, 20, 22, 37, 38, 39, 42, 40, 41, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52, 53}},
	{"RandWire/C100-A", 6, 983040, 983040, []int{0, 1, 2, 5, 6, 7, 8, 9, 4, 11, 12, 20, 13, 10, 14, 15, 16, 3, 17, 18, 19, 21, 22, 23, 24, 25, 26, 27, 28, 48, 29, 30, 31, 32, 35, 33, 34, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, 49, 50, 51, 52, 53}},
	{"RandWire/C100-B", 7, 491520, 491520, []int{0, 1, 3, 4, 5, 9, 10, 18, 6, 2, 8, 11, 13, 14, 7, 19, 22, 23, 24, 25, 28, 29, 26, 30, 32, 45, 12, 15, 16, 17, 20, 21, 27, 31, 33, 36, 37, 38, 39, 34, 35, 40, 41, 42, 43, 44, 46, 47, 48, 49, 50, 51, 52}},
	{"RandWire/C100-C", 8, 229376, 229376, []int{0, 1, 3, 6, 7, 8, 9, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 23, 24, 4, 27, 5, 10, 33, 11, 34, 35, 2, 36, 37, 25, 26, 38, 39, 22, 28, 29, 30, 31, 32, 40, 41, 42, 43, 44, 45, 46, 47, 48, 49, 50, 51, 52}},
}

func compatOptions() Options {
	opts := DefaultOptions()
	opts.StepTimeout = time.Minute
	return opts
}

// TestExactDPMatchesPreRedesignSchedule is the API-redesign compatibility
// contract: the ExactDP strategy — reached through both the Schedule wrapper
// and an explicitly assembled Pipeline — produces bit-identical Order, Peak,
// and ArenaSize to the pre-redesign monolithic Schedule on the nine-cell
// model suite (golden values captured before the refactor).
func TestExactDPMatchesPreRedesignSchedule(t *testing.T) {
	cells := models.BenchmarkCells()
	for _, tc := range compatGolden {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()

			// Through the compatibility wrapper.
			res, err := Schedule(cells[tc.cell].Build(), compatOptions())
			if err != nil {
				t.Fatal(err)
			}
			checkCompat(t, "Schedule", res, tc.peak, tc.arenaSize, tc.order)

			// Through an explicitly assembled Pipeline with the ExactDP
			// strategy spelled out.
			p := &Pipeline{
				Searcher:  ExactDP{AdaptiveBudget: true, StepTimeout: time.Minute},
				Allocator: ArenaBestFit{},
				Rewrite:   true,
				Partition: true,
			}
			pres, err := p.Run(context.Background(), cells[tc.cell].Build())
			if err != nil {
				t.Fatal(err)
			}
			checkCompat(t, "Pipeline", pres, tc.peak, tc.arenaSize, tc.order)
			if pres.Quality != QualityOptimal {
				t.Errorf("ExactDP quality = %q, want optimal", pres.Quality)
			}
			for i, q := range pres.SegmentQuality {
				if q != QualityOptimal {
					t.Errorf("segment %d quality = %q, want optimal", i, q)
				}
			}
			if pres.Fallbacks != 0 {
				t.Errorf("ExactDP reported %d fallbacks", pres.Fallbacks)
			}
		})
	}
}

// TestSegmentMemoDifferentialNineCells is the differential harness over the
// paper's nine-cell suite: scheduling each cell cold (empty memo) and warm
// (memo pre-populated by the cold run) must be bit-identical — and both must
// still match the pre-redesign goldens, so memoization provably changes
// nothing but the work done.
func TestSegmentMemoDifferentialNineCells(t *testing.T) {
	cells := models.BenchmarkCells()
	for _, tc := range compatGolden {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			memo := NewSegmentMemo(512)
			newPipe := func() *Pipeline {
				p, err := NewPipeline(compatOptions())
				if err != nil {
					t.Fatal(err)
				}
				p.SegmentMemo = memo
				return p
			}
			cold, err := newPipe().Run(context.Background(), cells[tc.cell].Build())
			if err != nil {
				t.Fatal(err)
			}
			checkCompat(t, "cold+memo", cold, tc.peak, tc.arenaSize, tc.order)

			warm, err := newPipe().Run(context.Background(), cells[tc.cell].Build())
			if err != nil {
				t.Fatal(err)
			}
			checkCompat(t, "warm", warm, tc.peak, tc.arenaSize, tc.order)
			if warm.SegmentMemoHits != len(warm.SegmentQuality) {
				t.Errorf("warm run hit %d of %d segments", warm.SegmentMemoHits, len(warm.SegmentQuality))
			}
			assertSameResult(t, tc.name, cold, warm)
		})
	}
}

func checkCompat(t *testing.T, via string, res *Result, peak, arena int64, order []int) {
	t.Helper()
	if res.Peak != peak {
		t.Errorf("%s: peak = %d, want golden %d", via, res.Peak, peak)
	}
	if res.ArenaSize != arena {
		t.Errorf("%s: arena = %d, want golden %d", via, res.ArenaSize, arena)
	}
	if !reflect.DeepEqual([]int(res.Order), order) {
		t.Errorf("%s: order diverged from pre-redesign golden\ngot:  %v\nwant: %v", via, res.Order, order)
	}
}
