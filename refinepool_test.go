package serenity

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// refineTestOpts is the best-effort configuration shared by the refinement
// tests: a StepTimeout high enough that an unpressured exact attempt is
// fully deterministic.
func refineTestOpts() Options {
	opts := DefaultOptions()
	opts.Strategy = StrategyBestEffort
	opts.StepTimeout = time.Minute
	return opts
}

// skipExactPipeline builds a best-effort pipeline whose every segment is
// forced down the degraded path (see BestEffort.SkipExact).
func skipExactPipeline(t testing.TB, opts Options, memo *SegmentMemo) *Pipeline {
	t.Helper()
	p := memoPipeline(t, opts, memo)
	be := p.Searcher.(BestEffort)
	be.SkipExact = true
	p.Searcher = be
	return p
}

func quiesce(t *testing.T, pool *RefinePool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.Quiesce(ctx); err != nil {
		t.Fatalf("refine pool did not drain: %v", err)
	}
}

// TestRefinePoolRepairsDegradedRun is the serve-then-refine acceptance
// scenario at the segment level: a forced-degraded run leaves nothing cached
// (the poison rule) but queues every fallen-back segment for repair; after
// the pool drains, a warm identical request is answered entirely from the
// memo with zero fresh search — bit-identical to an unpressured exact run.
func TestRefinePoolRepairsDegradedRun(t *testing.T) {
	g := uniformStack("refine-repair", 4, 12)
	opts := refineTestOpts()

	// The unpressured reference: same searcher configuration, no memo, no
	// pressure.
	ref, err := memoPipeline(t, opts, nil).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Quality != QualityOptimal {
		t.Fatalf("reference run quality %q; the scenario needs an exact baseline", ref.Quality)
	}

	memo := NewSegmentMemo(256)
	ss := openStoreT(t, t.TempDir())
	pool := NewRefinePool(memo, ss, RefinePoolOptions{Workers: 1, QueueDepth: 64})
	defer pool.Close()

	rushedP := skipExactPipeline(t, opts, memo)
	rushedP.Store = ss
	rushedP.RefinePool = pool
	rushed, err := rushedP.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	nsegs := len(rushed.SegmentQuality)
	if rushed.Fallbacks != nsegs {
		t.Fatalf("forced degradation fell back on %d of %d segments", rushed.Fallbacks, nsegs)
	}
	if rushed.RefinementsQueued == 0 {
		t.Fatal("degraded run queued no refinements")
	}
	// Identical interior cells share one memo key, so dedup keeps the queue
	// smaller than the fallback count.
	if rushed.RefinementsQueued > rushed.Fallbacks {
		t.Errorf("queued %d refinements for %d fallbacks", rushed.RefinementsQueued, rushed.Fallbacks)
	}

	quiesce(t, pool)
	st := pool.Stats()
	if st.Done != int64(rushed.RefinementsQueued) || st.Failed != 0 {
		t.Fatalf("pool stats %+v after draining %d refinements", st, rushed.RefinementsQueued)
	}

	// Warm run: pure memo hits, exact quality, no fresh search — the repaired
	// answer, bit-identical to the unpressured reference.
	warm, err := memoPipeline(t, opts, memo).Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if warm.SegmentMemoHits != nsegs {
		t.Errorf("warm run hit %d of %d segments after refinement", warm.SegmentMemoHits, nsegs)
	}
	if warm.FreshStatesExplored != 0 {
		t.Errorf("warm run searched %d fresh states; refinement should have repaired every key", warm.FreshStatesExplored)
	}
	assertSameResult(t, "refined vs unpressured", ref, warm)

	// The repair reached the persistent tier too: a cold memo over the same
	// store warm-starts from disk at exact quality.
	coldMemoP := memoPipeline(t, opts, NewSegmentMemo(256))
	coldMemoP.Store = ss
	fromDisk, err := coldMemoP.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if fromDisk.SegmentMemoDiskHits == 0 {
		t.Error("refined artifacts never reached the schedule store")
	}
	assertSameResult(t, "refined-from-disk vs unpressured", ref, fromDisk)

	if mst := memo.Stats(); mst.Replaced == 0 {
		t.Error("memo records no replaced entries after refinement")
	}
}

// TestSegmentMemoReplaceUpgradesOnly pins the in-memory half of the guarded
// replace path: heuristic entries upgrade, optimal entries are never
// clobbered, and degraded or malformed results are rejected.
func TestSegmentMemoReplaceUpgradesOnly(t *testing.T) {
	memo := NewSegmentMemo(64)
	heuristic := SearchResult{Order: Order{1, 0}, Quality: QualityHeuristic}
	optimal := SearchResult{Order: Order{0, 1}, StatesExplored: 4, Quality: QualityOptimal}
	other := SearchResult{Order: Order{1, 0}, StatesExplored: 2, Quality: QualityOptimal}

	memo.store.Put("k", heuristic)
	if err := memo.replace("k", 2, optimal); err != nil {
		t.Fatalf("upgrade heuristic→optimal: %v", err)
	}
	if got, _ := memo.store.Get("k"); !reflect.DeepEqual(got, optimal) {
		t.Fatalf("after upgrade: %+v", got)
	}
	if err := memo.replace("k", 2, other); err != nil {
		t.Fatalf("replace over optimal: %v", err)
	}
	if got, _ := memo.store.Get("k"); !reflect.DeepEqual(got, optimal) {
		t.Error("replace clobbered an established optimal entry")
	}
	if err := memo.replace("k2", 2, SearchResult{Order: Order{0, 1}, Quality: QualityOptimal, FellBack: true}); err == nil {
		t.Error("replace accepted a degraded result")
	}
	if err := memo.replace("k2", 2, heuristic); err == nil {
		t.Error("replace accepted a heuristic result")
	}
	if err := memo.replace("k2", 2, SearchResult{Order: Order{0, 0}, Quality: QualityOptimal}); err == nil {
		t.Error("replace accepted a non-permutation")
	}
	if _, ok := memo.store.Get("k2"); ok {
		t.Error("a rejected replace still stored an entry")
	}
	if st := memo.Stats(); st.Replaced != 1 {
		t.Errorf("Replaced = %d, want 1 (only the heuristic upgrade wrote)", st.Replaced)
	}
}

// TestRefinePoolDedupOverflowAndClose drives the queue mechanics with
// choreographed jobs: pending keys deduplicate, a full queue drops, and
// Close drops the backlog while canceling the running job.
func TestRefinePoolDedupOverflowAndClose(t *testing.T) {
	pool := NewRefinePool(nil, nil, RefinePoolOptions{Workers: 1, QueueDepth: 1})
	running := make(chan struct{})
	if !pool.Enqueue(context.Background(), "a", func(ctx context.Context) error {
		close(running)
		<-ctx.Done() // released only by Close
		return ctx.Err()
	}) {
		t.Fatal("first enqueue declined")
	}
	<-running

	if !pool.Enqueue(context.Background(), "b", func(ctx context.Context) error { return nil }) {
		t.Fatal("enqueue into an empty queue declined")
	}
	if pool.Enqueue(context.Background(), "b", func(ctx context.Context) error { return nil }) {
		t.Error("pending key was not deduplicated")
	}
	if !pool.Pending("b") || !pool.Pending("a") {
		t.Error("Pending does not report queued/running keys")
	}
	if pool.Enqueue(context.Background(), "c", func(ctx context.Context) error { return nil }) {
		t.Error("enqueue into a full queue accepted")
	}

	pool.Close()
	if pool.Pending("a") || pool.Pending("b") {
		t.Error("keys still pending after Close")
	}
	if pool.Enqueue(context.Background(), "d", func(ctx context.Context) error { return nil }) {
		t.Error("closed pool accepted a job")
	}
	st := pool.Stats()
	// a ran (and failed with the close cancellation), b was dropped from the
	// backlog, c was dropped at enqueue, d was dropped at enqueue.
	if st.Queued != 2 || st.Done != 1 || st.Failed != 1 || st.Dropped != 3 || st.Outstanding != 0 {
		t.Errorf("stats after close: %+v", st)
	}
	pool.Close() // idempotent
}

// TestRefinePoolPressureParksAndRequeues pins the memory-pressure gate:
// while the Pressure signal is high workers park jobs instead of running
// them (keys stay pending, so dedup and revalidation still see the repair
// coming), and once pressure clears the requeue loop re-injects every parked
// job. A Close with jobs still parked drops them cleanly.
func TestRefinePoolPressureParksAndRequeues(t *testing.T) {
	var pressure atomic.Bool
	pressure.Store(true)
	var ran atomic.Int64
	pool := NewRefinePool(nil, nil, RefinePoolOptions{
		Workers:         1,
		QueueDepth:      8,
		Pressure:        pressure.Load,
		RequeueInterval: 2 * time.Millisecond,
	})
	defer pool.Close()

	for _, key := range []string{"a", "b"} {
		if !pool.Enqueue(context.Background(), key, func(ctx context.Context) error {
			ran.Add(1)
			return nil
		}) {
			t.Fatalf("enqueue %q declined", key)
		}
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s; stats %+v", what, pool.Stats())
			}
			time.Sleep(time.Millisecond)
		}
	}

	waitFor("both jobs parked", func() bool { return pool.Stats().Parked == 2 })
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d jobs ran under pressure", got)
	}
	if st := pool.Stats(); st.Shed < 2 {
		t.Errorf("Shed = %d after parking two jobs", st.Shed)
	}
	// Parked keys are still pending: the repair is coming, so dedup holds and
	// wait_refined keeps waiting.
	if !pool.Pending("a") || !pool.Pending("b") {
		t.Error("parked keys no longer pending")
	}
	if pool.Enqueue(context.Background(), "a", func(ctx context.Context) error { return nil }) {
		t.Error("parked key was not deduplicated")
	}

	// Pressure clears: the requeue loop re-injects and the worker drains.
	pressure.Store(false)
	waitFor("parked jobs to run", func() bool { return ran.Load() == 2 })
	quiesce(t, pool)
	st := pool.Stats()
	if st.Requeued < 2 || st.Parked != 0 || st.Done != 2 || st.Failed != 0 || st.Dropped != 0 {
		t.Errorf("stats after pressure cleared: %+v", st)
	}
	if pool.Pending("a") || pool.Pending("b") {
		t.Error("keys still pending after requeued jobs ran")
	}

	// Close with a job parked: it is dropped and un-pended, never run.
	pressure.Store(true)
	pool2 := NewRefinePool(nil, nil, RefinePoolOptions{
		Workers:         1,
		QueueDepth:      8,
		Pressure:        pressure.Load,
		RequeueInterval: 2 * time.Millisecond,
	})
	var ran2 atomic.Int64
	if !pool2.Enqueue(context.Background(), "x", func(ctx context.Context) error {
		ran2.Add(1)
		return nil
	}) {
		t.Fatal("enqueue into fresh pool declined")
	}
	deadline := time.Now().Add(30 * time.Second)
	for pool2.Stats().Parked != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("job never parked; stats %+v", pool2.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	pool2.Close()
	if ran2.Load() != 0 {
		t.Error("parked job ran during Close")
	}
	if pool2.Pending("x") {
		t.Error("parked key still pending after Close")
	}
	if st := pool2.Stats(); st.Dropped != 1 || st.Outstanding != 0 || st.Parked != 0 {
		t.Errorf("stats after closing with a parked job: %+v", st)
	}
}

// failingRefiner is a Refiner whose refinement always fails; it exercises
// the EventRefined error path and proves a broken refinement repairs
// nothing.
type failingRefiner struct{ BestEffort }

func (f failingRefiner) RefineSearcher() Searcher { return failingSearcher{} }

type failingSearcher struct{}

func (failingSearcher) Name() string { return "failing" }
func (failingSearcher) Search(ctx context.Context, m *MemModel) (SearchResult, error) {
	return SearchResult{}, errors.New("refinement exploded")
}

// TestRefinePoolObserverAndFailure: every finished refinement emits one
// EventRefined (Err set on failure), and a failed refinement leaves the memo
// untouched.
func TestRefinePoolObserverAndFailure(t *testing.T) {
	g := uniformStack("refine-observe", 2, 12)
	memo := NewSegmentMemo(64)
	var refinedOK, refinedErr atomic.Int64
	obs := ObserverFunc(func(e Event) {
		if e.Kind != EventRefined {
			return
		}
		if e.Err != nil {
			refinedErr.Add(1)
		} else {
			refinedOK.Add(1)
		}
	})

	// Failure path first: a refiner whose background search errors.
	pool := NewRefinePool(memo, nil, RefinePoolOptions{Workers: 1, Observer: obs})
	be := refineTestOpts()
	p := skipExactPipeline(t, be, memo)
	p.Searcher = failingRefiner{p.Searcher.(BestEffort)}
	p.RefinePool = pool
	res, err := p.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	if res.RefinementsQueued == 0 {
		t.Fatal("no refinements queued")
	}
	quiesce(t, pool)
	if got := refinedErr.Load(); got != int64(res.RefinementsQueued) {
		t.Errorf("%d failed-refinement events for %d queued jobs", got, res.RefinementsQueued)
	}
	if st := pool.Stats(); st.Failed != int64(res.RefinementsQueued) {
		t.Errorf("pool stats %+v; every refinement should have failed", st)
	}
	if st := memo.Stats(); st.Replaced != 0 || st.Entries != 0 {
		t.Errorf("failed refinements touched the memo: %+v", st)
	}
	pool.Close()

	// Success path: the real refiner repairs the same keys and emits
	// error-free events.
	pool2 := NewRefinePool(memo, nil, RefinePoolOptions{Workers: 1, Observer: obs})
	p2 := skipExactPipeline(t, be, memo)
	p2.RefinePool = pool2
	res2, err := p2.Run(context.Background(), g)
	if err != nil {
		t.Fatal(err)
	}
	quiesce(t, pool2)
	if got := refinedOK.Load(); got != int64(res2.RefinementsQueued) {
		t.Errorf("%d successful-refinement events for %d queued jobs", got, res2.RefinementsQueued)
	}
	if st := memo.Stats(); st.Replaced == 0 {
		t.Error("successful refinements replaced nothing")
	}
	pool2.Close()
}
