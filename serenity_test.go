package serenity

import (
	"errors"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/sched"
)

func buildSmallNet() *Graph {
	b := NewBuilder("small")
	in := b.Input(Shape{1, 16, 16, 4})
	x1 := b.Conv(in, 8, 3, 1, PadSame)
	x2 := b.Conv(in, 8, 3, 1, PadSame)
	cc := b.Concat(x1, x2)
	y := b.Conv(cc, 8, 3, 1, PadSame)
	b.ReLU(y)
	return b.Graph()
}

func TestScheduleDefaultPipeline(t *testing.T) {
	g := buildSmallNet()
	res, err := Schedule(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak <= 0 || res.ArenaSize < res.Peak {
		t.Errorf("peak %d arena %d", res.Peak, res.ArenaSize)
	}
	if res.Peak > res.BaselinePeak {
		t.Errorf("DP peak %d worse than baseline %d", res.Peak, res.BaselinePeak)
	}
	if !res.Rewritten || res.RewriteCount != 1 {
		t.Errorf("expected one rewrite, got %v/%d", res.Rewritten, res.RewriteCount)
	}
	if len(res.Order) != res.Graph.NumNodes() {
		t.Errorf("order covers %d of %d nodes", len(res.Order), res.Graph.NumNodes())
	}
	if res.SchedulingTime <= 0 {
		t.Error("missing scheduling time")
	}
}

func TestScheduleNoStages(t *testing.T) {
	g := buildSmallNet()
	res, err := Schedule(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewritten {
		t.Error("rewriting ran despite being disabled")
	}
	if res.Graph != g {
		t.Error("graph replaced despite rewrite disabled")
	}
	// Plain DP is exact: must equal the full pipeline's pre-rewrite optimum.
	full, err := Schedule(g, Options{Partition: true, AdaptiveBudget: true, StepTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak != full.Peak {
		t.Errorf("plain DP %d != partitioned+budgeted %d", res.Peak, full.Peak)
	}
}

func TestScheduleRespectsMemoryBudget(t *testing.T) {
	g := buildSmallNet()
	opts := DefaultOptions()
	opts.MemoryBudget = 1 // impossible
	_, err := Schedule(g, opts)
	var be *ErrBudgetExceeded
	if !errors.As(err, &be) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	if be.Budget != 1 || be.Required <= 0 {
		t.Errorf("budget error fields: %+v", be)
	}
	if be.Error() == "" {
		t.Error("empty error message")
	}

	opts.MemoryBudget = 64 << 20 // plenty
	if _, err := Schedule(g, opts); err != nil {
		t.Fatalf("generous budget rejected: %v", err)
	}
}

func TestScheduleRejectsInvalidGraph(t *testing.T) {
	g := NewGraph("cyclic")
	a := g.AddNode(0 /* OpInput */, "a", Shape{4})
	b := g.AddNode(9 /* OpReLU-ish */, "b", Shape{4}, a)
	g.AddEdge(b, a)
	if _, err := Schedule(g, DefaultOptions()); err == nil {
		t.Error("cyclic graph accepted")
	}
}

func TestScheduleOrderIsValidOnRewrittenGraph(t *testing.T) {
	g := SwiftNetCellA()
	res, err := Schedule(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := sched.NewMemModel(res.Graph)
	if err := m.CheckValid(res.Order); err != nil {
		t.Fatal(err)
	}
	if got := m.MustPeak(res.Order); got != res.Peak {
		t.Errorf("reported peak %d != simulated %d", res.Peak, got)
	}
}

func TestScheduleFullSwiftNetPartitions(t *testing.T) {
	res, err := Schedule(SwiftNet(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PartitionSizes) != 3 {
		t.Errorf("partitions = %v, want 3 segments", res.PartitionSizes)
	}
	want := []int{33, 28, 29} // rewritten SwiftNet (Table 2)
	for i, w := range want {
		if i < len(res.PartitionSizes) && res.PartitionSizes[i] != w {
			t.Errorf("partitions = %v, want %v", res.PartitionSizes, want)
			break
		}
	}
}

func TestBaselineOrderAndPeakOf(t *testing.T) {
	g := buildSmallNet()
	base, err := BaselineOrder(g)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PeakOf(g, base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if p != res.BaselinePeak {
		t.Errorf("PeakOf baseline %d != result baseline %d", p, res.BaselinePeak)
	}
}

func TestModelReexports(t *testing.T) {
	for name, g := range map[string]*Graph{
		"darts":    DARTSNormalCell(),
		"swiftA":   SwiftNetCellA(),
		"swiftB":   SwiftNetCellB(),
		"swiftC":   SwiftNetCellC(),
		"swiftnet": SwiftNet(),
		"randwire": RandWireCell("rw", 16, 4, 0.5, 3, 16, 8),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
