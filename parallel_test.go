package serenity

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/models"
)

// TestParallelMatchesSequential asserts the tentpole determinism claim: on
// the paper's full model suite, fanning the per-segment DP over a worker
// pool produces exactly the sequential result — same Order, Peak, ArenaSize,
// Offsets, and even StatesExplored.
func TestParallelMatchesSequential(t *testing.T) {
	cells := models.BenchmarkCells()
	if testing.Short() {
		cells = cells[:4]
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.Network+"/"+cell.Cell, func(t *testing.T) {
			t.Parallel()
			opts := DefaultOptions()
			// Large enough that no DP step ever hits the timeout, even under
			// the race detector: Algorithm 2's probe sequence is then
			// wall-clock independent, and the whole pipeline deterministic.
			opts.StepTimeout = time.Minute
			seq, err := Schedule(cell.Build(), opts)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range []int{2, 8} {
				popts := opts
				popts.Parallelism = p
				par, err := ScheduleContext(context.Background(), cell.Build(), popts)
				if err != nil {
					t.Fatalf("parallelism %d: %v", p, err)
				}
				if !reflect.DeepEqual(par.Order, seq.Order) {
					t.Errorf("parallelism %d: order diverged\nseq: %v\npar: %v", p, seq.Order, par.Order)
				}
				if par.Peak != seq.Peak || par.ArenaSize != seq.ArenaSize {
					t.Errorf("parallelism %d: peak/arena %d/%d, want %d/%d",
						p, par.Peak, par.ArenaSize, seq.Peak, seq.ArenaSize)
				}
				if !reflect.DeepEqual(par.Offsets, seq.Offsets) {
					t.Errorf("parallelism %d: arena offsets diverged", p)
				}
				if par.StatesExplored != seq.StatesExplored {
					t.Errorf("parallelism %d: states %d, want %d", p, par.StatesExplored, seq.StatesExplored)
				}
				if !reflect.DeepEqual(par.PartitionSizes, seq.PartitionSizes) {
					t.Errorf("parallelism %d: partitions %v, want %v", p, par.PartitionSizes, seq.PartitionSizes)
				}
			}
		})
	}
}

// TestParallelismOversubscription exercises worker counts beyond the segment
// count and degenerate values.
func TestParallelismOversubscription(t *testing.T) {
	build := func() *Graph {
		return models.StackedRandWire("oversub", 6, models.WSConfig{
			Nodes: 14, K: 4, P: 0.75, Seed: 21, HW: 8, Channel: 4,
		})
	}
	opts := DefaultOptions()
	seq, err := Schedule(build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.PartitionSizes) < 4 {
		t.Fatalf("test graph split into %v; need several segments", seq.PartitionSizes)
	}
	for _, p := range []int{0, 1, 64} {
		opts.Parallelism = p
		res, err := Schedule(build(), opts)
		if err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if res.Peak != seq.Peak || !reflect.DeepEqual(res.Order, seq.Order) {
			t.Errorf("parallelism %d: result diverged", p)
		}
	}
}

func TestScheduleContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScheduleContext(ctx, SwiftNetCellA(), DefaultOptions())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestScheduleContextCancelMidSearch verifies cancellation reaches down into
// the DP search loop: the Observer cancels the context at the instant the
// search stage starts (Observer calls are synchronous, so the search begins
// with the context already done), and the unbudgeted exact DP — which would
// otherwise run ~1.3s on this cell — must return promptly with the context's
// error. The hook replaces the 50ms wall-clock deadline this test used to
// race against the DP, which flaked under CPU contention.
func TestScheduleContextCancelMidSearch(t *testing.T) {
	g := models.StackedRandWire("cancel", 2, models.WSConfig{
		Nodes: 44, K: 4, P: 0.75, Seed: 9, HW: 16, Channel: 8,
	})
	p, err := NewPipeline(Options{}) // exact DP, no budget pruning
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Observer = ObserverFunc(func(e Event) {
		if e.Kind == EventStageStart && e.Stage == StageSearch {
			cancel()
		}
	})
	start := time.Now()
	_, err = p.Run(ctx, g)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %s; search loop is not polling the context", elapsed)
	}
}

// TestScheduleContextCancelMidSearchParallel does the same through the
// worker pool: every worker starts its segment's DP under an already-done
// context and must abort rather than complete its ~1.5s search.
func TestScheduleContextCancelMidSearchParallel(t *testing.T) {
	g := models.StackedRandWire("cancel-par", 4, models.WSConfig{
		Nodes: 48, K: 8, P: 0.9, Seed: 10, HW: 16, Channel: 8,
	})
	p, err := NewPipeline(Options{Partition: true, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p.Observer = ObserverFunc(func(e Event) {
		if e.Kind == EventStageStart && e.Stage == StageSearch {
			cancel()
		}
	})
	start := time.Now()
	_, err = p.Run(ctx, g)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("parallel cancellation took %s", elapsed)
	}
}

// TestParallelErrorPropagation asserts that a genuine per-segment failure —
// not the induced cancellation of its siblings — is what surfaces from the
// worker pool. The reported segment index may differ from the sequential
// path's (siblings are canceled on first failure), but the cause must be the
// real DP outcome and never a bare context.Canceled.
func TestParallelErrorPropagation(t *testing.T) {
	g := SwiftNet()
	opts := Options{Partition: true, AdaptiveBudget: false, MaxStates: 1}
	_, seqErr := Schedule(g, opts)
	if seqErr == nil {
		t.Fatal("MaxStates=1 unexpectedly solvable; test needs a harder setup")
	}
	if !strings.Contains(seqErr.Error(), "segment 0") {
		t.Errorf("sequential path reports %q, want the first segment", seqErr)
	}
	for i := 0; i < 5; i++ {
		opts.Parallelism = 4
		_, parErr := Schedule(SwiftNet(), opts)
		if parErr == nil {
			t.Fatal("parallel run unexpectedly succeeded")
		}
		if errors.Is(parErr, context.Canceled) {
			t.Fatalf("induced sibling cancellation leaked to the caller: %v", parErr)
		}
		if !strings.Contains(parErr.Error(), "dynamic programming ended with timeout") {
			t.Fatalf("parallel error %q lost the underlying DP outcome", parErr)
		}
	}
}
