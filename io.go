package serenity

import (
	"io"

	"github.com/serenity-ml/serenity/internal/graph"
)

// ReadGraphJSON parses a graph from the JSON IR format.
func ReadGraphJSON(r io.Reader) (*Graph, error) {
	return graph.ReadJSON(r)
}

// WriteGraphJSON writes g in the JSON IR format.
func WriteGraphJSON(w io.Writer, g *Graph) error {
	return g.WriteJSON(w)
}
