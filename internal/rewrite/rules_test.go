package rewrite

import (
	"testing"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

func nestedConcatGraph() *graph.Graph {
	b := graph.NewBuilder("nested")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	x1 := b.Conv(in, 4, 3, 1, graph.PadSame)
	x2 := b.Conv(in, 6, 3, 1, graph.PadSame)
	x3 := b.Conv(in, 8, 3, 1, graph.PadSame)
	inner := b.Concat(x1, x2)
	outer := b.Concat(inner, x3)
	y := b.Conv(outer, 8, 3, 1, graph.PadSame)
	b.ReLU(y)
	return b.Graph()
}

func TestConcatFlatten(t *testing.T) {
	g := nestedConcatGraph()
	out, count, err := ConcatFlattenRule().Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	var concats int
	for _, n := range out.Nodes {
		if n.Op == graph.OpConcat {
			concats++
			if len(n.Preds) != 3 {
				t.Errorf("flattened concat has %d preds, want 3", len(n.Preds))
			}
			if n.Shape.Channels() != 18 {
				t.Errorf("flattened concat channels = %d, want 18", n.Shape.Channels())
			}
		}
	}
	if concats != 1 {
		t.Errorf("concats = %d, want 1", concats)
	}
	if out.NumNodes() != g.NumNodes()-1 {
		t.Errorf("nodes %d -> %d, want one fewer", g.NumNodes(), out.NumNodes())
	}
}

func TestConcatFlattenNoChange(t *testing.T) {
	g := concatConvGraph()
	out, count, err := ConcatFlattenRule().Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || out != nil {
		t.Errorf("rule fired on flat concat: count=%d", count)
	}
}

func TestIdentityElim(t *testing.T) {
	b := graph.NewBuilder("idelim")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	id1 := b.Identity(in)
	c := b.Conv(id1, 8, 3, 1, graph.PadSame)
	id2 := b.Identity(c) // graph sink via pool below
	b.MaxPool(id2, 2, 2, graph.PadSame)
	g := b.Graph()

	out, count, err := IdentityElimRule().Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	for _, n := range out.Nodes {
		if n.Op == graph.OpIdentity {
			t.Errorf("identity survived: %s", n.Name)
		}
	}
	// Footprint strictly improves: the copies are gone.
	before := dp.Optimal(sched.NewMemModel(g)).Peak
	after := dp.Optimal(sched.NewMemModel(out)).Peak
	if after >= before {
		t.Errorf("identity elimination did not reduce peak: %d -> %d", before, after)
	}
}

func TestIdentityElimKeepsSinkIdentity(t *testing.T) {
	b := graph.NewBuilder("sink-id")
	in := b.Input(graph.Shape{1, 4, 4, 2})
	c := b.Conv(in, 4, 3, 1, graph.PadSame)
	b.Identity(c) // sink: must survive (it IS the graph output)
	g := b.Graph()
	out, count, err := IdentityElimRule().Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("sink identity elided (count=%d, out=%v)", count, out != nil)
	}
}

func TestRewriteAllFixpoint(t *testing.T) {
	g := nestedConcatGraph()
	out, apps, err := RewriteAll(g, ExtendedRules(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) < 2 {
		t.Fatalf("apps = %+v, want flatten then partitioning", apps)
	}
	// After flattening, the outer concat+conv partitioned into 3 partials.
	var partials int
	for _, n := range out.Nodes {
		switch n.Op {
		case graph.OpPartialConv:
			partials++
		case graph.OpConcat:
			t.Error("concat survived the extended pipeline")
		}
	}
	if partials != 3 {
		t.Errorf("partials = %d, want 3 (flattening exposed the third branch)", partials)
	}
	// The result must beat plain partitioning (which would treat the inner
	// concat as a materialized branch).
	plain, _, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	peakExt := dp.Optimal(sched.NewMemModel(out)).Peak
	peakPlain := dp.Optimal(sched.NewMemModel(plain)).Peak
	if peakExt > peakPlain {
		t.Errorf("extended rules worse than paper rules: %d > %d", peakExt, peakPlain)
	}
}

func TestRewriteAllNoRulesFire(t *testing.T) {
	b := graph.NewBuilder("plain")
	in := b.Input(graph.Shape{1, 4, 4, 2})
	b.Conv(in, 4, 3, 1, graph.PadSame)
	g := b.Graph()
	out, apps, err := RewriteAll(g, ExtendedRules(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(apps) != 0 {
		t.Errorf("apps = %+v, want none", apps)
	}
	if out != g {
		t.Error("graph replaced although nothing fired")
	}
}

func TestRuleNames(t *testing.T) {
	names := map[string]bool{}
	for _, r := range ExtendedRules() {
		if r.Name() == "" {
			t.Error("empty rule name")
		}
		if names[r.Name()] {
			t.Errorf("duplicate rule name %s", r.Name())
		}
		names[r.Name()] = true
	}
	if len(DefaultRules()) != 1 {
		t.Error("default rules should be the paper's partitioning only")
	}
}
