package rewrite

import (
	"fmt"

	"github.com/serenity-ml/serenity/internal/graph"
)

// Rule is a semantics-preserving graph transformation. Rules beyond the
// paper's two partitioning patterns are extensions (Section 6 notes the
// "significant potential for compiler techniques"); each is verified
// numerically by the executor tests like the core patterns.
type Rule interface {
	// Name identifies the rule in logs and results.
	Name() string
	// Apply returns a transformed copy of g and the number of sites
	// changed; it returns (nil, 0) best-effort clones are not required when
	// count is zero — callers keep the input graph.
	Apply(g *graph.Graph) (*graph.Graph, int, error)
}

// partitioningRule wraps the paper's channel-wise/kernel-wise patterns as a
// Rule.
type partitioningRule struct{}

func (partitioningRule) Name() string { return "concat-partitioning" }

func (partitioningRule) Apply(g *graph.Graph) (*graph.Graph, int, error) {
	matches := FindMatches(g)
	if len(matches) == 0 {
		return nil, 0, nil
	}
	out, err := Apply(g, matches)
	if err != nil {
		return nil, 0, err
	}
	return out, len(matches), nil
}

// PartitioningRule returns the paper's identity-partitioning rule
// (channel-wise + kernel-wise).
func PartitioningRule() Rule { return partitioningRule{} }

// concatFlattenRule rewrites concat(concat(a,b), c) -> concat(a, b, c).
// Nested concatenation materializes the inner tensor for no reason; the
// flattened form both removes that allocation and exposes more branches to
// the partitioning rule.
type concatFlattenRule struct{}

func (concatFlattenRule) Name() string { return "concat-flatten" }

func (concatFlattenRule) Apply(g *graph.Graph) (*graph.Graph, int, error) {
	// Find inner concats whose only consumer is another concat (on the
	// channel axis; the builder only produces channel concats).
	inner := map[int]bool{}
	for _, n := range g.Nodes {
		if n.Op != graph.OpConcat {
			continue
		}
		if len(n.Succs) != 1 {
			continue
		}
		s := g.Nodes[n.Succs[0]]
		if s.Op == graph.OpConcat {
			inner[n.ID] = true
		}
	}
	if len(inner) == 0 {
		return nil, 0, nil
	}

	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	out := graph.New(g.Name)
	remap := make([]int, g.NumNodes())
	// expansion[v] lists the new-graph IDs replacing v when v is an elided
	// inner concat (its operands in order).
	expansion := make(map[int][]int)
	for i := range remap {
		remap[i] = -1
	}
	count := 0
	for _, v := range order {
		n := g.Nodes[v]
		if inner[n.ID] {
			var expanded []int
			for _, p := range n.Preds {
				if exp, ok := expansion[p]; ok {
					expanded = append(expanded, exp...)
				} else {
					expanded = append(expanded, remap[p])
				}
			}
			expansion[v] = expanded
			count++
			continue
		}
		var preds []int
		for _, p := range n.Preds {
			if exp, ok := expansion[p]; ok {
				preds = append(preds, exp...)
			} else {
				preds = append(preds, remap[p])
			}
		}
		nid := out.AddNode(n.Op, n.Name, n.Shape, preds...)
		nn := out.Nodes[nid]
		nn.DType = n.DType
		nn.Attr = n.Attr
		if n.Attr.AliasOf >= 0 {
			nn.Attr.AliasOf = remap[n.Attr.AliasOf]
		}
		remap[v] = nid
	}
	if err := out.Validate(); err != nil {
		return nil, 0, fmt.Errorf("rewrite: concat-flatten produced invalid graph: %w", err)
	}
	return out, count, nil
}

// ConcatFlattenRule returns the nested-concat flattening rule.
func ConcatFlattenRule() Rule { return concatFlattenRule{} }

// identityElimRule removes pure-copy Identity nodes (single predecessor, no
// aliasing, not a graph output). Identity copies cost a full activation
// tensor; forwarding consumers to the source is arithmetic-identical.
type identityElimRule struct{}

func (identityElimRule) Name() string { return "identity-elimination" }

func (identityElimRule) Apply(g *graph.Graph) (*graph.Graph, int, error) {
	elide := map[int]bool{}
	for _, n := range g.Nodes {
		if n.Op == graph.OpIdentity && n.Attr.AliasOf < 0 &&
			len(n.Preds) == 1 && len(n.Succs) > 0 {
			elide[n.ID] = true
		}
	}
	if len(elide) == 0 {
		return nil, 0, nil
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	out := graph.New(g.Name)
	remap := make([]int, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}
	resolve := func(p int) int {
		for elide[p] {
			p = g.Nodes[p].Preds[0]
		}
		return remap[p]
	}
	for _, v := range order {
		n := g.Nodes[v]
		if elide[v] {
			continue
		}
		var preds []int
		for _, p := range n.Preds {
			preds = append(preds, resolve(p))
		}
		nid := out.AddNode(n.Op, n.Name, n.Shape, preds...)
		nn := out.Nodes[nid]
		nn.DType = n.DType
		nn.Attr = n.Attr
		if n.Attr.AliasOf >= 0 {
			a := n.Attr.AliasOf
			for elide[a] {
				a = g.Nodes[a].Preds[0]
			}
			nn.Attr.AliasOf = remap[a]
		}
		remap[v] = nid
	}
	if err := out.Validate(); err != nil {
		return nil, 0, fmt.Errorf("rewrite: identity-elimination produced invalid graph: %w", err)
	}
	return out, len(elide), nil
}

// IdentityElimRule returns the identity-copy elimination rule.
func IdentityElimRule() Rule { return identityElimRule{} }

// RuleApplication records one rule firing during RewriteAll.
type RuleApplication struct {
	Rule  string
	Sites int
}

// DefaultRules returns the paper's rule set (partitioning only).
func DefaultRules() []Rule { return []Rule{PartitioningRule()} }

// ExtendedRules returns the full rule set: cleanup rules first (they expose
// more partitioning sites), then the paper's partitioning patterns.
func ExtendedRules() []Rule {
	return []Rule{IdentityElimRule(), ConcatFlattenRule(), PartitioningRule()}
}

// RewriteAll applies rules in order, repeating until a fixpoint (no rule
// fires) or maxPasses is reached. It returns the final graph (the input if
// nothing fired) and the applications performed.
func RewriteAll(g *graph.Graph, rules []Rule, maxPasses int) (*graph.Graph, []RuleApplication, error) {
	if maxPasses <= 0 {
		maxPasses = 8
	}
	cur := g
	var apps []RuleApplication
	for pass := 0; pass < maxPasses; pass++ {
		fired := false
		for _, r := range rules {
			next, count, err := r.Apply(cur)
			if err != nil {
				return nil, nil, fmt.Errorf("rewrite: rule %s: %w", r.Name(), err)
			}
			if count > 0 {
				cur = next
				apps = append(apps, RuleApplication{Rule: r.Name(), Sites: count})
				fired = true
			}
		}
		if !fired {
			break
		}
	}
	return cur, apps, nil
}
