package rewrite

import (
	"testing"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// concatConvGraph: three branches -> concat -> conv -> relu (channel-wise
// pattern, Figure 9 top).
func concatConvGraph() *graph.Graph {
	b := graph.NewBuilder("ccg")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	x1 := b.Conv(in, 6, 3, 1, graph.PadSame)
	x2 := b.Conv(in, 8, 3, 1, graph.PadSame)
	x3 := b.Conv(in, 10, 3, 1, graph.PadSame)
	cc := b.Concat(x1, x2, x3)
	y := b.Conv(cc, 16, 3, 1, graph.PadSame)
	b.ReLU(y)
	return b.Graph()
}

// concatDWGraph: two branches -> concat -> depthwise -> relu (kernel-wise
// pattern, Figure 9 bottom).
func concatDWGraph() *graph.Graph {
	b := graph.NewBuilder("cdw")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	x1 := b.Conv(in, 6, 3, 1, graph.PadSame)
	x2 := b.Conv(in, 10, 3, 1, graph.PadSame)
	cc := b.Concat(x1, x2)
	y := b.DepthwiseConv(cc, 3, 1, graph.PadSame)
	b.ReLU(y)
	return b.Graph()
}

func TestFindMatches(t *testing.T) {
	g := concatConvGraph()
	ms := FindMatches(g)
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0].Kind != ChannelWise {
		t.Errorf("kind = %v, want channel-wise", ms[0].Kind)
	}
	g2 := concatDWGraph()
	ms2 := FindMatches(g2)
	if len(ms2) != 1 || ms2[0].Kind != KernelWise {
		t.Fatalf("dw matches = %+v", ms2)
	}
}

func TestFindMatchesSkipsSharedConcat(t *testing.T) {
	// Concat consumed by two ops must not match.
	b := graph.NewBuilder("shared")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	x1 := b.Conv(in, 4, 3, 1, graph.PadSame)
	x2 := b.Conv(in, 4, 3, 1, graph.PadSame)
	cc := b.Concat(x1, x2)
	b.Conv(cc, 8, 3, 1, graph.PadSame)
	b.ReLU(cc)
	if ms := FindMatches(b.Graph()); len(ms) != 0 {
		t.Fatalf("matched a shared concat: %+v", ms)
	}
}

func TestFindMatchesSkipsNonConcatInput(t *testing.T) {
	b := graph.NewBuilder("plain")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	c := b.Conv(in, 8, 3, 1, graph.PadSame)
	b.Conv(c, 8, 3, 1, graph.PadSame)
	if ms := FindMatches(b.Graph()); len(ms) != 0 {
		t.Fatalf("matched without concat: %+v", ms)
	}
}

func TestApplyChannelWiseStructure(t *testing.T) {
	g := concatConvGraph()
	out, ms, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 {
		t.Fatalf("want 1 match, got %d", len(ms))
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	var buffers, partials, joins int
	for _, n := range out.Nodes {
		switch n.Op {
		case graph.OpBuffer:
			buffers++
		case graph.OpPartialConv:
			partials++
			if n.Attr.AliasOf < 0 || out.Nodes[n.Attr.AliasOf].Op != graph.OpBuffer {
				t.Error("partial must alias the buffer")
			}
		case graph.OpConcat:
			t.Error("concat should be elided")
		case graph.OpIdentity:
			joins++
		}
	}
	if buffers != 1 || partials != 3 || joins != 1 {
		t.Errorf("structure: buffers=%d partials=%d joins=%d", buffers, partials, joins)
	}
	// Channel offsets must tile the concatenated input (6, 8, 10).
	offsets := map[int]int{}
	for _, n := range out.Nodes {
		if n.Op == graph.OpPartialConv {
			offsets[n.Attr.ChanOffset] = n.Attr.InChannels
		}
	}
	if offsets[0] != 6 || offsets[6] != 8 || offsets[14] != 10 {
		t.Errorf("offsets = %v", offsets)
	}
	// Node count per Table 2's direction: rewriting increases nodes.
	if out.NumNodes() <= g.NumNodes() {
		t.Errorf("rewrite should add nodes: %d -> %d", g.NumNodes(), out.NumNodes())
	}
}

func TestApplyKernelWiseStructure(t *testing.T) {
	g := concatDWGraph()
	out, _, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	var partials int
	for _, n := range out.Nodes {
		if n.Op == graph.OpPartialDWConv {
			partials++
			// Partial slice shapes match branch channel counts.
			if c := n.Shape.Channels(); c != n.Attr.InChannels {
				t.Errorf("partial dw shape channels %d != in channels %d", c, n.Attr.InChannels)
			}
		}
	}
	if partials != 2 {
		t.Errorf("partials = %d, want 2", partials)
	}
}

// TestRewriteLowersOptimalPeak: the rewritten search space admits a schedule
// at least as good as the original optimum, and for these concat-heavy
// graphs strictly better (the paper's extra 10.7%).
func TestRewriteLowersOptimalPeak(t *testing.T) {
	for _, build := range []func() *graph.Graph{concatConvGraph, concatDWGraph} {
		g := build()
		out, _, err := Rewrite(g)
		if err != nil {
			t.Fatal(err)
		}
		before := dp.Optimal(sched.NewMemModel(g))
		after := dp.Optimal(sched.NewMemModel(out))
		if before.Flag != dp.FlagSolution || after.Flag != dp.FlagSolution {
			t.Fatal("DP failed")
		}
		if after.Peak > before.Peak {
			t.Errorf("%s: rewrite increased optimal peak %d -> %d", g.Name, before.Peak, after.Peak)
		}
		if after.Peak == before.Peak {
			t.Logf("%s: rewrite neutral (%d)", g.Name, after.Peak)
		}
	}
}

func TestRewriteNoMatchesReturnsClone(t *testing.T) {
	b := graph.NewBuilder("plain")
	in := b.Input(graph.Shape{1, 4, 4, 2})
	b.Conv(in, 4, 3, 1, graph.PadSame)
	g := b.Graph()
	out, ms, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 0 {
		t.Fatalf("unexpected matches %+v", ms)
	}
	if out.NumNodes() != g.NumNodes() {
		t.Error("clone changed structure")
	}
	out.Nodes[0].Name = "mutated"
	if g.Nodes[0].Name == "mutated" {
		t.Error("Rewrite returned the original graph, not a clone")
	}
}

func TestApplyRejectsStaleMatch(t *testing.T) {
	g := concatConvGraph()
	if _, err := Apply(g, []Match{{Kind: ChannelWise, Concat: 0, Op: 1}}); err == nil {
		t.Error("stale match accepted")
	}
}

func TestWeightSeedStability(t *testing.T) {
	if NameSeed("conv_1") != NameSeed("conv_1") {
		t.Error("NameSeed not deterministic")
	}
	if NameSeed("conv_1") == NameSeed("conv_2") {
		t.Error("NameSeed collision for distinct names")
	}
	n := &graph.Node{Name: "x", Attr: graph.Attr{Seed: 42, AliasOf: -1}}
	if WeightSeed(n) != 42 {
		t.Error("explicit seed ignored")
	}
	n.Attr.Seed = 0
	if WeightSeed(n) != NameSeed("x") {
		t.Error("fallback seed wrong")
	}
}

func TestRewriteChainsOfConcats(t *testing.T) {
	// Two independent matches in one graph are both rewritten.
	b := graph.NewBuilder("double")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	a1 := b.Conv(in, 4, 3, 1, graph.PadSame)
	a2 := b.Conv(in, 4, 3, 1, graph.PadSame)
	y1 := b.Conv(b.Concat(a1, a2), 8, 3, 1, graph.PadSame)
	b1 := b.Conv(y1, 4, 3, 1, graph.PadSame)
	b2 := b.Conv(y1, 4, 3, 1, graph.PadSame)
	y2 := b.DepthwiseConv(b.Concat(b1, b2), 3, 1, graph.PadSame)
	b.ReLU(y2)
	g := b.Graph()

	out, ms, err := Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2", len(ms))
	}
	var buffers int
	for _, n := range out.Nodes {
		if n.Op == graph.OpBuffer {
			buffers++
		}
	}
	if buffers != 2 {
		t.Errorf("buffers = %d, want 2", buffers)
	}
}
