// Package rewrite implements SERENITY's identity graph rewriting
// (Section 3.3): semantics-preserving pattern substitutions that lower the
// peak activation footprint achievable by any schedule.
//
// Two patterns from the paper (Figure 9) are implemented:
//
//   - Channel-wise partitioning: concat(x1..xn) → conv(W) becomes n partial
//     convolutions w⋆i ∗ xi accumulating into one shared output buffer
//     (Equations 3–6: the distributivity of Σ over ∗). Footprint drops from
//     Σ size(xi) + size(y) to max_i(size(xi)) + size(y).
//
//   - Kernel-wise partitioning: concat(x1..xn) → depthwiseConv(W) becomes n
//     partial depthwise convolutions wi ∗ xi, each writing its channel slice
//     of the shared output buffer (Equations 7–8: depthconv and concat
//     commute). Footprint drops identically.
//
// The shared buffer is expressed with an OpBuffer node plus alias metadata
// (Attr.AliasOf): partial ops and the final join contribute zero bytes; the
// buffer is freed when the last reader of any view finishes. The reference
// executor (internal/exec) verifies numerically that rewritten graphs
// produce identical outputs.
package rewrite

import (
	"fmt"
	"hash/fnv"

	"github.com/serenity-ml/serenity/internal/graph"
)

// Kind discriminates the two rewrite patterns.
type Kind int

// Rewrite pattern kinds.
const (
	ChannelWise Kind = iota // concat + conv      -> partial conv + add
	KernelWise              // concat + depthconv -> partial depthconv + concat
)

// String names the pattern as in the paper.
func (k Kind) String() string {
	if k == KernelWise {
		return "kernel-wise partitioning"
	}
	return "channel-wise partitioning"
}

// Match is one rewritable occurrence: a Concat feeding a (depthwise)
// convolution, where the concat's output has no other consumer.
type Match struct {
	Kind   Kind
	Concat int // concat node ID in the original graph
	Op     int // conv/depthwise node ID in the original graph
}

// FindMatches scans g for rewritable patterns. A pattern qualifies when the
// convolution's data operand is a Concat consumed only by that convolution
// (otherwise the concatenated tensor must materialize anyway and the rewrite
// could not reduce memory).
func FindMatches(g *graph.Graph) []Match {
	var out []Match
	for _, n := range g.Nodes {
		var kind Kind
		switch n.Op {
		case graph.OpConv, graph.OpPointwiseConv:
			kind = ChannelWise
		case graph.OpDepthwiseConv:
			kind = KernelWise
		default:
			continue
		}
		if len(n.Preds) != 1 {
			continue
		}
		c := g.Nodes[n.Preds[0]]
		if c.Op != graph.OpConcat || len(c.Preds) < 2 {
			continue
		}
		if len(c.Succs) != 1 {
			continue
		}
		// Dilated partial convolution is legal too, but keep parity with the
		// paper's two patterns: stride/dilation carry over unchanged.
		out = append(out, Match{Kind: kind, Concat: c.ID, Op: n.ID})
	}
	return out
}

// Apply returns a new graph with every match substituted. The original graph
// is not modified. Node names are preserved where nodes survive; new nodes
// get names derived from the rewritten convolution.
func Apply(g *graph.Graph, matches []Match) (*graph.Graph, error) {
	if len(matches) == 0 {
		return g.Clone(), nil
	}
	matchByConcat := map[int]*Match{}
	matchByOp := map[int]*Match{}
	for i := range matches {
		m := &matches[i]
		matchByConcat[m.Concat] = m
		matchByOp[m.Op] = m
		c := g.Nodes[m.Concat]
		if c.Op != graph.OpConcat || len(c.Succs) != 1 || c.Succs[0] != m.Op {
			return nil, fmt.Errorf("rewrite: stale match %+v", *m)
		}
	}

	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	anc, err := g.Ancestors()
	if err != nil {
		return nil, err
	}
	topoPos := make([]int, g.NumNodes())
	for i, v := range order {
		topoPos[v] = i
	}
	out := graph.New(g.Name + "+rewrite")
	remap := make([]int, g.NumNodes())
	for i := range remap {
		remap[i] = -1
	}

	for _, v := range order {
		n := g.Nodes[v]
		if _, isConcat := matchByConcat[v]; isConcat {
			continue // elided; the partials consume the branches directly
		}
		m, isOp := matchByOp[v]
		if !isOp {
			preds := make([]int, len(n.Preds))
			for i, p := range n.Preds {
				if remap[p] < 0 {
					return nil, fmt.Errorf("rewrite: node %d consumed elided node %d", v, p)
				}
				preds[i] = remap[p]
			}
			nid := out.AddNode(n.Op, n.Name, n.Shape, preds...)
			nn := out.Nodes[nid]
			nn.DType = n.DType
			nn.Attr = n.Attr
			if n.Attr.AliasOf >= 0 {
				nn.Attr.AliasOf = remap[n.Attr.AliasOf]
			}
			remap[v] = nid
			continue
		}

		// Substitute the (concat -> conv) pair. The buffer is anchored on the
		// deepest common ancestor of all branches: every partial already
		// transitively requires that node (so the edge excludes no schedule
		// that could beat the optimum — a buffer allocated any earlier only
		// holds memory longer), and the anchor keeps the buffer inside its
		// cell so divide-and-conquer cut points survive rewriting.
		conv := n
		concat := g.Nodes[m.Concat]
		var bufPreds []int
		if a := commonAncestor(g, concat.Preds, anc, topoPos, remap); a >= 0 {
			bufPreds = []int{a}
		}
		buf := out.AddNode(graph.OpBuffer, conv.Name+"#buf", conv.Shape, bufPreds...)
		out.Nodes[buf].DType = conv.DType

		partials := make([]int, 0, len(concat.Preds))
		inOffset := 0
		for bi, branch := range concat.Preds {
			if remap[branch] < 0 {
				return nil, fmt.Errorf("rewrite: branch %d of concat %d not materialized", branch, m.Concat)
			}
			bshape := g.Nodes[branch].Shape
			var pid int
			switch m.Kind {
			case ChannelWise:
				// Partial conv over branch channels, accumulating into buf.
				pid = out.AddNode(graph.OpPartialConv,
					fmt.Sprintf("%s#part%d", conv.Name, bi), conv.Shape, remap[branch], buf)
			case KernelWise:
				// Partial depthwise conv producing the branch's output slice.
				ps := conv.Shape.Clone()
				ps[len(ps)-1] = bshape.Channels()
				pid = out.AddNode(graph.OpPartialDWConv,
					fmt.Sprintf("%s#part%d", conv.Name, bi), ps, remap[branch], buf)
			}
			pn := out.Nodes[pid]
			pn.DType = conv.DType
			pn.Attr = conv.Attr
			pn.Attr.AliasOf = buf
			pn.Attr.ChanOffset = inOffset
			pn.Attr.InChannels = bshape.Channels()
			pn.Attr.Seed = WeightSeed(conv)
			inOffset += bshape.Channels()
			partials = append(partials, pid)
		}

		join := out.AddNode(graph.OpIdentity, conv.Name+"#join", conv.Shape, partials...)
		out.Nodes[join].DType = conv.DType
		out.Nodes[join].Attr.AliasOf = buf
		remap[v] = join
	}

	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rewrite: produced invalid graph: %w", err)
	}
	return out, nil
}

// Rewrite finds and applies all matches, returning the rewritten graph and
// the matches performed. With no matches it returns a clone of g.
func Rewrite(g *graph.Graph) (*graph.Graph, []Match, error) {
	matches := FindMatches(g)
	out, err := Apply(g, matches)
	if err != nil {
		return nil, nil, err
	}
	return out, matches, nil
}

// commonAncestor returns the new-graph ID of the deepest node that is an
// ancestor of every branch (and survives rewriting), or -1 if none exists.
func commonAncestor(g *graph.Graph, branches []int, anc []*graph.Bitset, topoPos []int, remap []int) int {
	if len(branches) == 0 {
		return -1
	}
	common := anc[branches[0]].Clone()
	for _, b := range branches[1:] {
		and := graph.NewBitset(g.NumNodes())
		and.Or(common)
		// common ∩ anc[b] via AndNot of the complement is awkward; do it
		// directly: keep only elements also in anc[b].
		common.ForEach(func(v int) {
			if !anc[b].Has(v) {
				and.Clear(v)
			}
		})
		common = and
	}
	best, bestPos := -1, -1
	common.ForEach(func(v int) {
		if remap[v] >= 0 && topoPos[v] > bestPos {
			best, bestPos = remap[v], topoPos[v]
		}
	})
	return best
}

// WeightSeed returns the deterministic weight seed of a convolution node,
// preserved across rewriting so partial convolutions slice the *same*
// weights the original convolution would have used (the executor relies on
// this to verify arithmetic identity).
func WeightSeed(n *graph.Node) int64 {
	if n.Attr.Seed != 0 {
		return n.Attr.Seed
	}
	return NameSeed(n.Name)
}

// NameSeed derives a stable seed from a node name. Graph names are
// deliberately excluded so seeds survive rewriting (the rewritten graph is
// renamed but surviving nodes keep their weights).
func NameSeed(nodeName string) int64 {
	h := fnv.New64a()
	h.Write([]byte(nodeName))
	v := int64(h.Sum64())
	if v == 0 {
		v = 1
	}
	return v
}
