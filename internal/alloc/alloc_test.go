package alloc

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

func bytesShape(b int64) graph.Shape { return graph.Shape{int(b / 4)} }

func chain() (*sched.MemModel, sched.Schedule) {
	g := graph.New("chain")
	a := g.AddNode(graph.OpInput, "in", bytesShape(100))
	b := g.AddNode(graph.OpReLU, "r1", bytesShape(100), a)
	g.AddNode(graph.OpReLU, "r2", bytesShape(100), b)
	return sched.NewMemModel(g), sched.Schedule{0, 1, 2}
}

func TestLifetimesChain(t *testing.T) {
	m, order := chain()
	lts, err := Lifetimes(m, order)
	if err != nil {
		t.Fatal(err)
	}
	if len(lts) != 3 {
		t.Fatalf("lifetimes = %d", len(lts))
	}
	byRoot := map[int]Lifetime{}
	for _, lt := range lts {
		byRoot[lt.Root] = lt
	}
	if byRoot[0].Start != 0 || byRoot[0].End != 1 {
		t.Errorf("in lifetime = %+v", byRoot[0])
	}
	if byRoot[2].End != 2 {
		t.Errorf("output must live to the end: %+v", byRoot[2])
	}
}

func TestPlanChainReusesMemory(t *testing.T) {
	m, order := chain()
	a, err := Plan(m, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	// in[0,1] and r2[2,2] can share; r1[1,2] overlaps both -> arena 200.
	if a.ArenaSize != 200 {
		t.Errorf("arena = %d, want 200", a.ArenaSize)
	}
}

func TestPlanAliasedBufferGetsOneAllocation(t *testing.T) {
	g := graph.New("buf")
	x := g.AddNode(graph.OpInput, "x", bytesShape(40))
	buf := g.AddNode(graph.OpBuffer, "buf", bytesShape(100))
	w := g.AddNode(graph.OpPartialDWConv, "w", bytesShape(40), x, buf)
	g.Nodes[w].Attr.AliasOf = buf
	j := g.AddNode(graph.OpIdentity, "j", bytesShape(100), w)
	g.Nodes[j].Attr.AliasOf = buf
	g.AddNode(graph.OpReLU, "out", bytesShape(100), j)
	m := sched.NewMemModel(g)
	order := sched.Schedule{0, 1, 2, 3, 4}
	a, err := Plan(m, order)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offsets[w] != -1 || a.Offsets[j] != -1 {
		t.Error("alias nodes must not receive their own offsets")
	}
	if a.Offsets[buf] < 0 {
		t.Error("buffer must receive an offset")
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanNonOverlapProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 60; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 20, EdgeProb: 0.2})
		m := sched.NewMemModel(g)
		order := sched.RandomTopo(g, rng)
		a, err := Plan(m, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Arena bounded below by the ideal peak and above by total bytes.
		peak := m.MustPeak(order)
		if a.ArenaSize < peak {
			t.Fatalf("trial %d: arena %d < ideal peak %d", trial, a.ArenaSize, peak)
		}
		if total := g.TotalActivationBytes(); a.ArenaSize > total {
			t.Fatalf("trial %d: arena %d > total %d", trial, a.ArenaSize, total)
		}
	}
}

// TestPlanBump: the no-reuse strategy is always valid, sums all tensor
// sizes, and upper-bounds the best-fit plan.
func TestPlanBump(t *testing.T) {
	m, order := chain()
	a, err := PlanBump(m, order)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	if a.ArenaSize != 300 {
		t.Errorf("bump arena = %d, want the 300-byte sum", a.ArenaSize)
	}

	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 20, EdgeProb: 0.2})
		m := sched.NewMemModel(g)
		order := sched.RandomTopo(g, rng)
		bump, err := PlanBump(m, order)
		if err != nil {
			t.Fatal(err)
		}
		if err := bump.Verify(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		best, err := Plan(m, order)
		if err != nil {
			t.Fatal(err)
		}
		if bump.ArenaSize < best.ArenaSize {
			t.Fatalf("trial %d: bump %d below best-fit %d", trial, bump.ArenaSize, best.ArenaSize)
		}
	}
}

func TestPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 15, EdgeProb: 0.25})
	m := sched.NewMemModel(g)
	order, _ := sched.KahnFIFO(g)
	a1, _ := Plan(m, order)
	a2, _ := Plan(m, order)
	for i := range a1.Offsets {
		if a1.Offsets[i] != a2.Offsets[i] {
			t.Fatal("Plan not deterministic")
		}
	}
}

func TestPlanRejectsInvalidOrder(t *testing.T) {
	m, _ := chain()
	if _, err := Plan(m, sched.Schedule{2, 1, 0}); err == nil {
		t.Error("invalid order accepted")
	}
	if _, err := ArenaPeak(m, sched.Schedule{0}); err == nil {
		t.Error("short order accepted")
	}
}

func TestArenaPeak(t *testing.T) {
	m, order := chain()
	p, err := ArenaPeak(m, order)
	if err != nil {
		t.Fatal(err)
	}
	if p != 200 {
		t.Errorf("ArenaPeak = %d", p)
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	m, order := chain()
	a, _ := Plan(m, order)
	// Force every tensor to offset 0: in/r1 overlap in time -> must fail.
	for i := range a.Offsets {
		if a.Offsets[i] > 0 {
			a.Offsets[i] = 0
		}
	}
	if err := a.Verify(); err == nil {
		t.Error("corrupted assignment passed Verify")
	}
}
