// Package alloc implements the linear memory allocator the paper pairs with
// its scheduler: TensorFlow Lite's "simple memory arena" planning scheme
// (greedy best-fit offset assignment over tensor lifetimes). Given a graph
// and a schedule it assigns every physical tensor a byte offset in one flat
// arena such that tensors with overlapping lifetimes never overlap in space.
//
// The arena size is the concrete peak footprint a runtime would observe —
// the "+Memory Allocator" curves of Figure 12(a) — and can exceed the ideal
// sum-of-live-bytes footprint because of fragmentation.
package alloc

import (
	"fmt"
	"sort"

	"github.com/serenity-ml/serenity/internal/sched"
)

// Lifetime is the closed step interval during which a physical tensor is
// resident under a given schedule.
type Lifetime struct {
	Root  int   // physical root node ID
	Size  int64 // bytes
	Start int   // schedule position of allocation
	End   int   // schedule position of the last consumer (len(order)-1 for outputs)
}

// Assignment maps physical tensors to arena offsets.
type Assignment struct {
	// Offsets[root] is the byte offset of the tensor rooted at root, or -1
	// for nodes that are not physical roots (aliases) or zero-sized.
	Offsets []int64
	// ArenaSize is the total bytes of the arena: max(offset+size).
	ArenaSize int64
	// Lifetimes lists the placed tensors, largest first (placement order).
	Lifetimes []Lifetime
}

// Lifetimes computes the per-tensor residency intervals of order under the
// model's liveness rules.
func Lifetimes(m *sched.MemModel, order sched.Schedule) ([]Lifetime, error) {
	if err := m.CheckValid(order); err != nil {
		return nil, err
	}
	n := m.G.NumNodes()
	pos := make([]int, n)
	for i, u := range order {
		pos[u] = i
	}
	var out []Lifetime
	for root := 0; root < n; root++ {
		if m.Root[root] != root || m.RootSize[root] == 0 {
			continue
		}
		lt := Lifetime{Root: root, Size: m.RootSize[root], Start: pos[root], End: len(order) - 1}
		if cs := m.Consumers[root]; len(cs) > 0 {
			end := pos[root]
			for _, c := range cs {
				if pos[c] > end {
					end = pos[c]
				}
			}
			lt.End = end
		}
		out = append(out, lt)
	}
	return out, nil
}

// Plan assigns offsets with the greedy-by-size best-fit strategy of
// TensorFlow Lite's arena planner: tensors are placed in decreasing size
// order, each at the lowest offset where it fits without overlapping (in
// space) any already-placed tensor whose lifetime overlaps (in time).
func Plan(m *sched.MemModel, order sched.Schedule) (*Assignment, error) {
	lts, err := Lifetimes(m, order)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(lts, func(i, j int) bool {
		if lts[i].Size != lts[j].Size {
			return lts[i].Size > lts[j].Size
		}
		return lts[i].Start < lts[j].Start
	})

	a := &Assignment{
		Offsets:   make([]int64, m.G.NumNodes()),
		Lifetimes: lts,
	}
	for i := range a.Offsets {
		a.Offsets[i] = -1
	}

	type placed struct {
		lt     Lifetime
		offset int64
	}
	var fixed []placed
	for _, lt := range lts {
		// Collect the occupied intervals that conflict in time, sorted by
		// offset, then scan for the lowest gap of lt.Size bytes.
		var conflicts []placed
		for _, p := range fixed {
			if p.lt.Start <= lt.End && lt.Start <= p.lt.End {
				conflicts = append(conflicts, p)
			}
		}
		sort.Slice(conflicts, func(i, j int) bool { return conflicts[i].offset < conflicts[j].offset })
		var offset int64
		for _, c := range conflicts {
			if offset+lt.Size <= c.offset {
				break // fits in the gap before c
			}
			if end := c.offset + c.lt.Size; end > offset {
				offset = end
			}
		}
		a.Offsets[lt.Root] = offset
		if end := offset + lt.Size; end > a.ArenaSize {
			a.ArenaSize = end
		}
		fixed = append(fixed, placed{lt: lt, offset: offset})
	}
	return a, nil
}

// PlanBump assigns offsets with a bump allocator that never reuses space:
// every physical tensor gets a fresh offset at the current high-water mark,
// so the arena size is the sum of all tensor sizes. It is the degenerate
// no-sharing strategy — useful as a fragmentation-free correctness baseline
// and as the upper bound the best-fit planner is measured against.
func PlanBump(m *sched.MemModel, order sched.Schedule) (*Assignment, error) {
	lts, err := Lifetimes(m, order)
	if err != nil {
		return nil, err
	}
	a := &Assignment{
		Offsets:   make([]int64, m.G.NumNodes()),
		Lifetimes: lts,
	}
	for i := range a.Offsets {
		a.Offsets[i] = -1
	}
	for _, lt := range lts {
		a.Offsets[lt.Root] = a.ArenaSize
		a.ArenaSize += lt.Size
	}
	return a, nil
}

// Verify checks the non-overlap invariant: any two tensors overlapping in
// both time and space constitute a planning bug.
func (a *Assignment) Verify() error {
	for i := 0; i < len(a.Lifetimes); i++ {
		li := a.Lifetimes[i]
		oi := a.Offsets[li.Root]
		for j := i + 1; j < len(a.Lifetimes); j++ {
			lj := a.Lifetimes[j]
			oj := a.Offsets[lj.Root]
			timeOverlap := li.Start <= lj.End && lj.Start <= li.End
			spaceOverlap := oi < oj+lj.Size && oj < oi+li.Size
			if timeOverlap && spaceOverlap {
				return fmt.Errorf("alloc: tensors %d@[%d,%d) and %d@[%d,%d) overlap in time and space",
					li.Root, oi, oi+li.Size, lj.Root, oj, oj+lj.Size)
			}
		}
	}
	return nil
}

// ArenaPeak is a convenience: plan order and return the arena size.
func ArenaPeak(m *sched.MemModel, order sched.Schedule) (int64, error) {
	a, err := Plan(m, order)
	if err != nil {
		return 0, err
	}
	return a.ArenaSize, nil
}
