package bench

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/models"
)

func measureSwiftC(t *testing.T) *CellResult {
	t.Helper()
	r, err := MeasureCell(models.BenchCell{
		Network: "SwiftNet", Dataset: "HPD", Cell: "Cell C",
		Build: models.SwiftNetCellC,
	}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMeasureCellInvariants(t *testing.T) {
	r := measureSwiftC(t)
	if r.DPPeak > r.BaselinePeak {
		t.Errorf("DP arena %d worse than baseline %d", r.DPPeak, r.BaselinePeak)
	}
	if r.DPGRPeakIdeal > r.DPPeakIdeal {
		t.Errorf("rewriting increased ideal peak %d -> %d", r.DPPeakIdeal, r.DPGRPeakIdeal)
	}
	if r.DPPeak < r.DPPeakIdeal {
		t.Errorf("arena %d below ideal peak %d", r.DPPeak, r.DPPeakIdeal)
	}
	if r.DPTime <= 0 || r.DPGRTime <= 0 {
		t.Error("missing scheduling times")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	r := measureSwiftC(t)
	cells := []*CellResult{r}

	var buf bytes.Buffer
	RenderFig10(&buf, cells)
	if !strings.Contains(buf.String(), "Geomean") {
		t.Error("Fig10 output missing geomean")
	}
	buf.Reset()
	RenderFig15(&buf, cells)
	if !strings.Contains(buf.String(), "raw values") {
		t.Error("Fig15 output malformed")
	}
	buf.Reset()
	RenderFig13(&buf, cells)
	if !strings.Contains(buf.String(), "Mean") {
		t.Error("Fig13 output missing mean")
	}
	buf.Reset()
	RenderTable1(&buf)
	for _, want := range []string{"DARTS", "SwiftNet", "RandWire", "Top-1"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
	buf.Reset()
	RenderFig2(&buf)
	if !strings.Contains(buf.String(), "Pareto frontier (irregular)") {
		t.Error("Fig2 output missing frontier")
	}
}

func TestFig11TrafficDirection(t *testing.T) {
	r := measureSwiftC(t)
	rows, err := Fig11([]*CellResult{r})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 SRAM sizes", len(rows))
	}
	for _, row := range rows {
		if !row.NA && !row.Eliminated && row.SerenityTraffic > row.BaselineTraffic {
			t.Errorf("%dKB: SERENITY traffic %d exceeds baseline %d",
				row.OnChipKB, row.SerenityTraffic, row.BaselineTraffic)
		}
	}
	var buf bytes.Buffer
	RenderFig11(&buf, rows)
	if !strings.Contains(buf.String(), "Geomean") {
		t.Error("Fig11 output missing geomean")
	}
}

func TestFig3bSmall(t *testing.T) {
	r, err := Fig3b(300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r.SampledBetter != 0 {
		t.Errorf("%d sampled schedules beat the DP optimum", r.SampledBetter)
	}
	if r.MinKB < r.OptimalKB {
		t.Errorf("sampled min %.1f below optimal %.1f", r.MinKB, r.OptimalKB)
	}
	if r.FracUnderCap < 0 || r.FracUnderCap > 1 {
		t.Errorf("fraction out of range: %v", r.FracUnderCap)
	}
	var buf bytes.Buffer
	RenderFig3b(&buf, r)
	if !strings.Contains(buf.String(), "constraint") {
		t.Error("Fig3b output malformed")
	}
}

func TestFig12ProfilesAndReduction(t *testing.T) {
	r, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WithAllocator) != 2 || len(r.WithoutAllocator) != 2 {
		t.Fatal("expected 2+2 series")
	}
	// Graph rewriting must reduce (or match) the peak in both panels.
	if r.WithAllocator[1].PeakKB > r.WithAllocator[0].PeakKB {
		t.Errorf("rewriting increased allocated peak: %v -> %v",
			r.WithAllocator[0].PeakKB, r.WithAllocator[1].PeakKB)
	}
	if r.WithoutAllocator[1].PeakKB > r.WithoutAllocator[0].PeakKB {
		t.Errorf("rewriting increased ideal peak")
	}
	// Allocator can only add fragmentation.
	if r.WithAllocator[0].PeakKB < r.WithoutAllocator[0].PeakKB {
		t.Errorf("allocated peak below ideal peak")
	}
	var buf bytes.Buffer
	RenderFig12(&buf, r)
	if !strings.Contains(buf.String(), "graph rewriting reduction") {
		t.Error("Fig12 output malformed")
	}
}

func TestTable2AblationDirections(t *testing.T) {
	rows, err := Table2(Table2Options{
		PlainDPBudget: 200 * time.Millisecond,
		StepTimeout:   500 * time.Millisecond,
		MaxStates:     1 << 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	// Whole-graph DP on 62/90 nodes must be infeasible within the cap.
	if rows[0].Feasible {
		t.Log("note: plain DP solved SwiftNet within the cap (fast machine)")
	}
	// The full pipeline rows must always be feasible.
	if !rows[2].Feasible || !rows[5].Feasible {
		t.Error("1+2+3 rows must be feasible")
	}
	// Partition statistics must match Table 2.
	wantParts := [][]int{{62}, {21, 19, 22}, {21, 19, 22}, {90}, {33, 28, 29}, {33, 28, 29}}
	for i, row := range rows {
		if len(row.Partitions) != len(wantParts[i]) {
			t.Errorf("row %d partitions %v, want %v", i, row.Partitions, wantParts[i])
			continue
		}
		for j := range wantParts[i] {
			if row.Partitions[j] != wantParts[i][j] {
				t.Errorf("row %d partitions %v, want %v", i, row.Partitions, wantParts[i])
				break
			}
		}
	}
	var buf bytes.Buffer
	RenderTable2(&buf, rows)
	out := buf.String()
	if !strings.Contains(out, "1+2+3") {
		t.Error("Table2 output malformed")
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); g < 3.99 || g > 4.01 {
		t.Errorf("geomean(2,8) = %v, want 4", g)
	}
	if g := geomean(nil); g != 0 {
		t.Errorf("geomean(nil) = %v", g)
	}
}

func TestKB(t *testing.T) {
	if KB(2048) != 2 {
		t.Errorf("KB(2048) = %v", KB(2048))
	}
}
