package bench

import (
	"fmt"
	"io"
	"sort"

	"github.com/serenity-ml/serenity/internal/models"
)

// RenderFig2 prints the accuracy-vs-compute scatter of Figures 2/14 and the
// per-class Pareto frontiers, demonstrating the paper's motivation that
// irregularly wired networks dominate the frontier.
func RenderFig2(w io.Writer) {
	points := models.ParetoDataset()
	fmt.Fprintln(w, "Figure 2/14: ImageNet top-1 accuracy vs multiply-accumulates (literature data)")
	fmt.Fprintf(w, "%-22s %10s %9s %7s  %s\n", "Model", "MACs (M)", "Params(M)", "Top-1", "class")
	sorted := append([]models.ParetoPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].MACsM < sorted[j].MACsM })
	for _, p := range sorted {
		class := "regular"
		if p.Irregular {
			class = "irregular"
		}
		fmt.Fprintf(w, "%-22s %10.0f %9.1f %6.1f%%  %s\n", p.Model, p.MACsM, p.ParamsM, p.Top1, class)
	}
	for _, irregular := range []bool{true, false} {
		frontier := models.ParetoFrontier(points, irregular)
		sort.Slice(frontier, func(i, j int) bool { return frontier[i].MACsM < frontier[j].MACsM })
		label := "regular"
		if irregular {
			label = "irregular"
		}
		fmt.Fprintf(w, "Pareto frontier (%s):", label)
		for _, p := range frontier {
			fmt.Fprintf(w, " %s(%.0fM, %.1f%%)", p.Model, p.MACsM, p.Top1)
		}
		fmt.Fprintln(w)
	}
}
