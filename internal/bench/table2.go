package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/partition"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Table2Row is one algorithm-combination measurement on SwiftNet.
// Algorithm labels follow the paper: 1 = dynamic programming,
// 2 = divide-and-conquer, 3 = adaptive soft budgeting.
type Table2Row struct {
	GraphRewriting bool
	Algorithm      string
	Nodes          int
	Partitions     []int
	Time           time.Duration
	Feasible       bool // false = N/A (infeasible within the practical cap)
	Peak           int64
}

// Table2Options bounds the infeasibility probes so the ablation terminates.
type Table2Options struct {
	// PlainDPBudget caps the whole-graph DP probe (algorithm 1 alone); the
	// paper reports N/A ("infeasible within practical time"). Default 3s.
	PlainDPBudget time.Duration
	// StepTimeout is T for the adaptive runs. Default 1s.
	StepTimeout time.Duration
	// MaxStates caps DP frontiers for the unbudgeted runs. Default 2M.
	MaxStates int
}

// Table2 reproduces the scheduling-time ablation on SwiftNet (62 nodes;
// 90 after rewriting) for {1, 1+2, 1+2+3} × {with, without rewriting}.
func Table2(opts Table2Options) ([]Table2Row, error) {
	if opts.PlainDPBudget <= 0 {
		opts.PlainDPBudget = 3 * time.Second
	}
	if opts.StepTimeout <= 0 {
		opts.StepTimeout = time.Second
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 2 << 20
	}

	base := models.SwiftNet()
	rw, _, err := rewrite.Rewrite(base)
	if err != nil {
		return nil, err
	}

	var rows []Table2Row
	for _, variant := range []struct {
		g        *graph.Graph
		rewrites bool
	}{{base, false}, {rw, true}} {
		g := variant.g

		// Algorithm 1 alone: whole-graph DP. Expected N/A — the state space
		// of a 62/90-node graph exceeds any practical budget; we bound the
		// probe by time and frontier size.
		start := time.Now()
		r := dp.Schedule(sched.NewMemModel(g), dp.Options{
			StepTimeout: opts.PlainDPBudget,
			MaxStates:   opts.MaxStates,
		})
		rows = append(rows, Table2Row{
			GraphRewriting: variant.rewrites,
			Algorithm:      "1",
			Nodes:          g.NumNodes(),
			Partitions:     []int{g.NumNodes()},
			Time:           time.Since(start),
			Feasible:       r.Flag == dp.FlagSolution,
			Peak:           r.Peak,
		})

		// Algorithm 1+2: divide-and-conquer, unbudgeted DP per segment.
		part, err := partition.Split(g)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		feasible := true
		var peak int64
		orders := make([]sched.Schedule, len(part.Segments))
		for i, seg := range part.Segments {
			sr := dp.Schedule(sched.NewMemModel(seg.G), dp.Options{
				StepTimeout: opts.PlainDPBudget,
				MaxStates:   opts.MaxStates,
			})
			if sr.Flag != dp.FlagSolution {
				feasible = false
				break
			}
			orders[i] = sr.Order
		}
		if feasible {
			combined, err := part.Combine(orders)
			if err != nil {
				return nil, err
			}
			peak, err = sched.NewMemModel(g).Peak(combined)
			if err != nil {
				return nil, err
			}
		}
		rows = append(rows, Table2Row{
			GraphRewriting: variant.rewrites,
			Algorithm:      "1+2",
			Nodes:          g.NumNodes(),
			Partitions:     part.Sizes(),
			Time:           time.Since(start),
			Feasible:       feasible,
			Peak:           peak,
		})

		// Algorithm 1+2+3: the full pipeline.
		order, idealPeak, _, elapsed, err := scheduleAdaptive(g, opts.StepTimeout)
		if err != nil {
			return nil, err
		}
		_ = order
		rows = append(rows, Table2Row{
			GraphRewriting: variant.rewrites,
			Algorithm:      "1+2+3",
			Nodes:          g.NumNodes(),
			Partitions:     part.Sizes(),
			Time:           elapsed,
			Feasible:       true,
			Peak:           idealPeak,
		})
	}
	return rows, nil
}

// RenderTable2 prints the ablation in the paper's layout.
func RenderTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: scheduling time for SwiftNet by algorithm combination")
	fmt.Fprintln(w, "(1 = dynamic programming, 2 = divide-and-conquer, 3 = adaptive soft budgeting)")
	fmt.Fprintf(w, "%-8s %-10s %-22s %14s %12s\n", "GraphRW", "Algorithm", "# nodes and partitions", "time", "peak (KB)")
	for _, r := range rows {
		parts := fmt.Sprint(r.Partitions)
		tval := r.Time.Round(time.Millisecond).String()
		peak := fmt.Sprintf("%.1f", KB(r.Peak))
		if !r.Feasible {
			tval = "N/A"
			peak = "-"
		}
		check := "no"
		if r.GraphRewriting {
			check = "yes"
		}
		fmt.Fprintf(w, "%-8s %-10s %3d=%-18s %14s %12s\n", check, r.Algorithm, r.Nodes, parts, tval, peak)
	}
}
