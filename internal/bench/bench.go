// Package bench regenerates every measured table and figure of the paper's
// evaluation section. Each Fig*/Table* function computes the underlying
// data; the Render* helpers print rows/series shaped like the paper's.
// EXPERIMENTS.md records paper-vs-measured for each artifact.
package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
	"time"

	"github.com/serenity-ml/serenity/internal/alloc"
	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/memsim"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/partition"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
)

// KB converts bytes to kilobytes for display.
func KB(b int64) float64 { return float64(b) / 1024 }

// geomean of a slice of positive ratios.
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// scheduleAdaptive runs partition + DP + ASB on g, returning the schedule,
// its ideal peak, arena peak, and elapsed wall time.
func scheduleAdaptive(g *graph.Graph, stepTimeout time.Duration) (sched.Schedule, int64, int64, time.Duration, error) {
	start := time.Now()
	part, err := partition.Split(g)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	orders := make([]sched.Schedule, len(part.Segments))
	for i, seg := range part.Segments {
		ar, err := dp.AdaptiveSchedule(sched.NewMemModel(seg.G), dp.AdaptiveOptions{StepTimeout: stepTimeout})
		if err != nil {
			return nil, 0, 0, 0, err
		}
		if ar.Flag != dp.FlagSolution {
			return nil, 0, 0, 0, fmt.Errorf("bench: segment %d ended with %v", i, ar.Flag)
		}
		orders[i] = ar.Order
	}
	order, err := part.Combine(orders)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	elapsed := time.Since(start)
	m := sched.NewMemModel(g)
	peak, err := m.Peak(order)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	arena, err := alloc.ArenaPeak(m, order)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	return order, peak, arena, elapsed, nil
}

// CellResult is the full measurement set for one benchmark cell, shared by
// Figures 10, 11, 13 and 15.
type CellResult struct {
	Network, Dataset, Cell string

	Nodes          int
	BaselinePeak   int64 // Kahn order + arena allocator (TFLite proxy)
	DPPeak         int64 // DP schedule + arena allocator
	DPGRPeak       int64 // DP on rewritten graph + arena allocator
	DPPeakIdeal    int64 // DP schedule, sum-of-live (no allocator)
	DPGRPeakIdeal  int64
	BaselineIdeal  int64
	DPTime         time.Duration // scheduling time without rewriting
	DPGRTime       time.Duration // scheduling time with rewriting
	BaselineOrder  sched.Schedule
	DPOrder        sched.Schedule
	DPGROrder      sched.Schedule
	Graph          *graph.Graph
	RewrittenGraph *graph.Graph
}

// MeasureCell runs the whole SERENITY pipeline on one benchmark cell.
func MeasureCell(c models.BenchCell, stepTimeout time.Duration) (*CellResult, error) {
	g := c.Build()
	m := sched.NewMemModel(g)
	kahn, err := sched.KahnFIFO(g)
	if err != nil {
		return nil, err
	}
	baseIdeal, err := m.Peak(kahn)
	if err != nil {
		return nil, err
	}
	baseArena, err := alloc.ArenaPeak(m, kahn)
	if err != nil {
		return nil, err
	}

	dpOrder, dpIdeal, dpArena, dpTime, err := scheduleAdaptive(g, stepTimeout)
	if err != nil {
		return nil, err
	}

	rw, _, err := rewrite.Rewrite(g)
	if err != nil {
		return nil, err
	}
	grOrder, grIdeal, grArena, grTime, err := scheduleAdaptive(rw, stepTimeout)
	if err != nil {
		return nil, err
	}

	return &CellResult{
		Network: c.Network, Dataset: c.Dataset, Cell: c.Cell,
		Nodes:         g.NumNodes(),
		BaselinePeak:  baseArena,
		DPPeak:        dpArena,
		DPGRPeak:      grArena,
		DPPeakIdeal:   dpIdeal,
		DPGRPeakIdeal: grIdeal,
		BaselineIdeal: baseIdeal,
		DPTime:        dpTime,
		DPGRTime:      grTime,
		BaselineOrder: kahn, DPOrder: dpOrder, DPGROrder: grOrder,
		Graph: g, RewrittenGraph: rw,
	}, nil
}

// MeasureAllCells measures the nine benchmark cells.
func MeasureAllCells(stepTimeout time.Duration) ([]*CellResult, error) {
	var out []*CellResult
	for _, c := range models.BenchmarkCells() {
		r, err := MeasureCell(c, stepTimeout)
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", c.Network, c.Cell, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// RenderFig10 prints the peak-memory reduction bars of Figure 10
// (higher is better; last row is the geomean, as in the paper).
func RenderFig10(w io.Writer, cells []*CellResult) {
	fmt.Fprintln(w, "Figure 10: reduction in peak memory footprint vs memory-oblivious baseline")
	fmt.Fprintln(w, "(TensorFlow Lite proxy: Kahn emission order + simple memory arena)")
	fmt.Fprintf(w, "%-10s %-9s %-8s | %14s %18s %21s\n",
		"Network", "Dataset", "Cell", "baseline (KB)", "DP+Allocator", "DP+GraphRW+Allocator")
	var dpRatios, grRatios []float64
	for _, c := range cells {
		rDP := float64(c.BaselinePeak) / float64(c.DPPeak)
		rGR := float64(c.BaselinePeak) / float64(c.DPGRPeak)
		dpRatios = append(dpRatios, rDP)
		grRatios = append(grRatios, rGR)
		fmt.Fprintf(w, "%-10s %-9s %-8s | %14.1f %17.2fx %20.2fx\n",
			c.Network, c.Dataset, c.Cell, KB(c.BaselinePeak), rDP, rGR)
	}
	fmt.Fprintf(w, "%-10s %-9s %-8s | %14s %17.2fx %20.2fx\n",
		"Geomean", "", "", "", geomean(dpRatios), geomean(grRatios))
}

// RenderFig15 prints the raw peak footprints of Figure 15 (smaller better).
func RenderFig15(w io.Writer, cells []*CellResult) {
	fmt.Fprintln(w, "Figure 15: peak memory footprint (KB), raw values")
	fmt.Fprintf(w, "%-10s %-9s %-8s | %12s %14s %22s\n",
		"Network", "Dataset", "Cell", "TFLite-proxy", "DP+Allocator", "DP+GraphRW+Allocator")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10s %-9s %-8s | %12.0f %14.0f %22.0f\n",
			c.Network, c.Dataset, c.Cell, KB(c.BaselinePeak), KB(c.DPPeak), KB(c.DPGRPeak))
	}
}

// Fig11Row is one cell × SRAM-size measurement of off-chip traffic.
type Fig11Row struct {
	Network, Dataset, Cell string
	OnChipKB               int64
	BaselineTraffic        int64
	SerenityTraffic        int64 // best of DP and DP+GR schedules
	Eliminated             bool  // SERENITY removes all off-chip traffic
	NA                     bool  // both already fit on-chip
}

// Fig11 sweeps on-chip sizes {32,64,128,256}KB measuring Belady-optimal
// off-chip traffic for the baseline and SERENITY schedules.
func Fig11(cells []*CellResult) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, c := range cells {
		m := sched.NewMemModel(c.Graph)
		mRW := sched.NewMemModel(c.RewrittenGraph)
		for _, kb := range []int64{32, 64, 128, 256} {
			cfg := memsim.Config{OnChipBytes: kb * 1024}
			base, err := memsim.Simulate(m, c.BaselineOrder, cfg)
			if err != nil {
				return nil, err
			}
			ser, err := memsim.Simulate(m, c.DPOrder, cfg)
			if err != nil {
				return nil, err
			}
			serGR, err := memsim.Simulate(mRW, c.DPGROrder, cfg)
			if err != nil {
				return nil, err
			}
			best := ser.Total()
			if serGR.Total() < best {
				best = serGR.Total()
			}
			rows = append(rows, Fig11Row{
				Network: c.Network, Dataset: c.Dataset, Cell: c.Cell,
				OnChipKB:        kb,
				BaselineTraffic: base.Total(),
				SerenityTraffic: best,
				Eliminated:      base.Total() > 0 && best == 0,
				NA:              base.Total() == 0 && best == 0,
			})
		}
	}
	return rows, nil
}

// RenderFig11 prints the off-chip traffic reduction series of Figure 11.
func RenderFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintln(w, "Figure 11: reduction in off-chip memory communication (Belady replacement)")
	fmt.Fprintf(w, "%-10s %-9s %-8s |", "Network", "Dataset", "Cell")
	for _, kb := range []int64{32, 64, 128, 256} {
		fmt.Fprintf(w, " %8dKB", kb)
	}
	fmt.Fprintln(w)
	byCell := map[string][]Fig11Row{}
	var order []string
	for _, r := range rows {
		key := r.Network + "/" + r.Dataset + "/" + r.Cell
		if _, ok := byCell[key]; !ok {
			order = append(order, key)
		}
		byCell[key] = append(byCell[key], r)
	}
	ratios := map[int64][]float64{}
	for _, key := range order {
		rs := byCell[key]
		fmt.Fprintf(w, "%-10s %-9s %-8s |", rs[0].Network, rs[0].Dataset, rs[0].Cell)
		for _, r := range rs {
			switch {
			case r.NA:
				fmt.Fprintf(w, " %10s", "N/A")
			case r.Eliminated:
				fmt.Fprintf(w, " %10s", "removed")
			default:
				ratio := float64(r.BaselineTraffic) / float64(r.SerenityTraffic)
				ratios[r.OnChipKB] = append(ratios[r.OnChipKB], ratio)
				fmt.Fprintf(w, " %9.2fx", ratio)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-29s |", "Geomean (measurable cells)")
	for _, kb := range []int64{32, 64, 128, 256} {
		if len(ratios[kb]) == 0 {
			fmt.Fprintf(w, " %10s", "-")
		} else {
			fmt.Fprintf(w, " %9.2fx", geomean(ratios[kb]))
		}
	}
	fmt.Fprintln(w)
}

// Fig3bResult summarizes the schedule-space CDF of Figure 3(b).
type Fig3bResult struct {
	Samples        int
	MinKB, MaxKB   float64
	OptimalKB      float64
	FracUnderCap   float64 // fraction of schedules within the 250KB device cap
	FracOptimal    float64 // fraction achieving the optimal peak
	DecileKB       [11]float64
	DeviceCapKB    float64
	GraphName      string
	SampledBetter  int // sanity: samples strictly below the DP optimum (must be 0)
	BaselinePeakKB float64
}

// Fig3b samples random schedules of SwiftNet Cell A and locates the device
// cap and the optimal peak within the CDF.
func Fig3b(samples int, seed int64) (*Fig3bResult, error) {
	g := models.SwiftNetCellA()
	m := sched.NewMemModel(g)
	rng := rand.New(rand.NewSource(seed))
	cdf := sched.SamplePeakCDF(m, samples, rng)

	_, ideal, _, _, err := scheduleAdaptive(g, time.Second)
	if err != nil {
		return nil, err
	}

	res := &Fig3bResult{
		Samples:      samples,
		GraphName:    g.Name,
		MinKB:        KB(cdf.Min()),
		MaxKB:        KB(cdf.Max()),
		OptimalKB:    KB(ideal),
		DeviceCapKB:  250,
		FracUnderCap: cdf.FractionAtOrBelow(250 * 1024),
		FracOptimal:  cdf.FractionAtOrBelow(ideal),
	}
	kahn, _ := sched.KahnFIFO(g)
	bp, _ := m.Peak(kahn)
	res.BaselinePeakKB = KB(bp)
	for i := 0; i <= 10; i++ {
		res.DecileKB[i] = KB(cdf.Quantile(float64(i) / 10))
	}
	for _, p := range cdf.Peaks {
		if p < ideal {
			res.SampledBetter++
		}
	}
	return res, nil
}

// RenderFig3b prints the CDF summary.
func RenderFig3b(w io.Writer, r *Fig3bResult) {
	fmt.Fprintf(w, "Figure 3b: CDF of peak memory across %d sampled schedules of %s\n", r.Samples, r.GraphName)
	fmt.Fprintf(w, "  optimal peak: %.1f KB   sampled min/max: %.1f / %.1f KB   Kahn baseline: %.1f KB\n",
		r.OptimalKB, r.MinKB, r.MaxKB, r.BaselinePeakKB)
	fmt.Fprintf(w, "  %.2f%% of schedules satisfy the %g KB constraint\n", 100*r.FracUnderCap, r.DeviceCapKB)
	fmt.Fprintf(w, "  %.2f%% of schedules are optimal\n", 100*r.FracOptimal)
	fmt.Fprint(w, "  deciles (KB):")
	for i, d := range r.DecileKB {
		fmt.Fprintf(w, " p%d=%.0f", i*10, d)
	}
	fmt.Fprintln(w)
}

// RenderFig13 prints the scheduling-time bars of Figure 13.
func RenderFig13(w io.Writer, cells []*CellResult) {
	fmt.Fprintln(w, "Figure 13: scheduling time (divide-and-conquer + adaptive soft budgeting)")
	fmt.Fprintf(w, "%-10s %-9s %-8s | %16s %16s\n", "Network", "Dataset", "Cell", "DP", "DP+GraphRW")
	var sumDP, sumGR time.Duration
	for _, c := range cells {
		sumDP += c.DPTime
		sumGR += c.DPGRTime
		fmt.Fprintf(w, "%-10s %-9s %-8s | %16s %16s\n",
			c.Network, c.Dataset, c.Cell, c.DPTime.Round(time.Millisecond), c.DPGRTime.Round(time.Millisecond))
	}
	n := time.Duration(len(cells))
	if n > 0 {
		fmt.Fprintf(w, "%-10s %-9s %-8s | %16s %16s\n", "Mean", "", "",
			(sumDP / n).Round(time.Millisecond), (sumGR / n).Round(time.Millisecond))
	}
}

// RenderTable1 prints Table 1.
func RenderTable1(w io.Writer) {
	fmt.Fprintln(w, "Table 1: benchmark network specifications (measured on generated graphs;")
	fmt.Fprintln(w, "paper values in parentheses; accuracy cited, not retrained)")
	fmt.Fprintf(w, "%-10s %-5s %-9s | %22s %22s %8s\n", "Network", "Type", "Dataset", "# MAC", "# Weight", "Top-1")
	for _, s := range models.Table1Specs() {
		fmt.Fprintf(w, "%-10s %-5s %-9s | %10.1fM (%6.1fM) %10.1fK (%7.1fK) %8s\n",
			s.Network, s.Type, s.Dataset,
			float64(s.MACs)/1e6, float64(s.PaperMACs)/1e6,
			float64(s.Weights)/1e3, float64(s.PaperWts)/1e3, s.PaperTop1)
	}
}

// divider prints a section separator.
func divider(w io.Writer, title string) {
	fmt.Fprintln(w, strings.Repeat("=", 78))
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("=", 78))
}

// Divider is exported for cmd/experiments.
func Divider(w io.Writer, title string) { divider(w, title) }
