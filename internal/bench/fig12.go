package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/serenity-ml/serenity/internal/alloc"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Fig12Series is one memory-footprint-over-time curve.
type Fig12Series struct {
	Label  string
	Points []int64 // bytes live (or allocated) after each schedule step
	PeakKB float64
}

// Fig12Result collects the four curves of Figure 12: {DP, DP+GraphRewriting}
// × {with, without the memory allocator}, for SwiftNet Cell A.
type Fig12Result struct {
	WithAllocator    []Fig12Series // Figure 12(a)
	WithoutAllocator []Fig12Series // Figure 12(b)
	BaselinePeakKB   float64       // TFLite-proxy peak with allocator
}

// arenaProfile computes the allocated high-water mark over time: at each
// step, the maximum offset+size over tensors whose lifetimes contain the
// step.
func arenaProfile(m *sched.MemModel, order sched.Schedule) ([]int64, error) {
	a, err := alloc.Plan(m, order)
	if err != nil {
		return nil, err
	}
	profile := make([]int64, len(order))
	for _, lt := range a.Lifetimes {
		end := a.Offsets[lt.Root] + lt.Size
		for s := lt.Start; s <= lt.End && s < len(profile); s++ {
			if end > profile[s] {
				profile[s] = end
			}
		}
	}
	return profile, nil
}

// Fig12 regenerates the memory-footprint profiles of Figure 12.
func Fig12() (*Fig12Result, error) {
	g := models.SwiftNetCellA()
	cell, err := MeasureCell(models.BenchCell{
		Network: "SwiftNet", Dataset: "HPD", Cell: "Cell A",
		Build: models.SwiftNetCellA,
	}, time.Second)
	if err != nil {
		return nil, err
	}
	m := sched.NewMemModel(g)
	mRW := sched.NewMemModel(cell.RewrittenGraph)

	simDP, err := m.Simulate(cell.DPOrder)
	if err != nil {
		return nil, err
	}
	simGR, err := mRW.Simulate(cell.DPGROrder)
	if err != nil {
		return nil, err
	}
	arenaDP, err := arenaProfile(m, cell.DPOrder)
	if err != nil {
		return nil, err
	}
	arenaGR, err := arenaProfile(mRW, cell.DPGROrder)
	if err != nil {
		return nil, err
	}

	maxOf := func(xs []int64) int64 {
		var m int64
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	return &Fig12Result{
		WithAllocator: []Fig12Series{
			{Label: "DynamicProgramming+MemoryAllocator", Points: arenaDP, PeakKB: KB(maxOf(arenaDP))},
			{Label: "DynamicProgramming+GraphRewriting+MemoryAllocator", Points: arenaGR, PeakKB: KB(maxOf(arenaGR))},
		},
		WithoutAllocator: []Fig12Series{
			{Label: "DynamicProgramming", Points: simDP.HighMark, PeakKB: KB(simDP.Peak)},
			{Label: "DynamicProgramming+GraphRewriting", Points: simGR.HighMark, PeakKB: KB(simGR.Peak)},
		},
		BaselinePeakKB: KB(cell.BaselinePeak),
	}, nil
}

// RenderFig12 prints the profile curves as step series.
func RenderFig12(w io.Writer, r *Fig12Result) {
	fmt.Fprintln(w, "Figure 12: memory footprint while running SwiftNet Cell A")
	fmt.Fprintf(w, "(a) with the memory allocator (TFLite-proxy peak = %.1f KB)\n", r.BaselinePeakKB)
	for _, s := range r.WithAllocator {
		fmt.Fprintf(w, "  %-50s peak %.1f KB\n", s.Label, s.PeakKB)
		renderSeries(w, s.Points)
	}
	fmt.Fprintln(w, "(b) without the memory allocator")
	for _, s := range r.WithoutAllocator {
		fmt.Fprintf(w, "  %-50s peak %.1f KB\n", s.Label, s.PeakKB)
		renderSeries(w, s.Points)
	}
	redA := r.WithAllocator[0].PeakKB - r.WithAllocator[1].PeakKB
	redB := r.WithoutAllocator[0].PeakKB - r.WithoutAllocator[1].PeakKB
	fmt.Fprintf(w, "graph rewriting reduction: %.1f KB (with allocator), %.1f KB (without)\n", redA, redB)
}

func renderSeries(w io.Writer, pts []int64) {
	fmt.Fprint(w, "    KB:")
	for _, p := range pts {
		fmt.Fprintf(w, " %.0f", KB(p))
	}
	fmt.Fprintln(w)
}
