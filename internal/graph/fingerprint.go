package graph

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a canonical structural hash of the graph: a hex-encoded
// SHA-256 over every node's operation, dtype, shape, predecessor list, and
// scheduling-relevant attributes, in ID order. Two graphs have equal
// fingerprints iff they are structurally identical inputs to the scheduler —
// names and debugging provenance (Attr.Seed) are deliberately excluded, since
// they cannot affect any schedule. The fingerprint is the cache key used by
// internal/cache and cmd/serenityd to recognize repeated compilations of the
// same topology.
func (g *Graph) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wi(int64(len(g.Nodes)))
	for _, n := range g.Nodes {
		wi(int64(n.Op))
		wi(int64(n.DType))
		wi(int64(len(n.Shape)))
		for _, d := range n.Shape {
			wi(int64(d))
		}
		wi(int64(len(n.Preds)))
		for _, p := range n.Preds {
			wi(int64(p))
		}
		a := n.Attr
		wi(int64(a.KernelH))
		wi(int64(a.KernelW))
		wi(int64(a.StrideH))
		wi(int64(a.StrideW))
		wi(int64(a.Pad))
		wi(int64(a.Dilation))
		wi(int64(a.Axis))
		wi(int64(a.AliasOf))
		wi(int64(a.ChanOffset))
		wi(int64(a.InChannels))
	}
	return hex.EncodeToString(h.Sum(nil))
}
