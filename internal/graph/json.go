package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonGraph is the on-disk representation accepted by the CLI.
type jsonGraph struct {
	Name  string     `json:"name"`
	Nodes []jsonNode `json:"nodes"`
}

type jsonNode struct {
	ID         int    `json:"id"`
	Name       string `json:"name,omitempty"`
	Op         string `json:"op"`
	Shape      []int  `json:"shape"`
	DType      string `json:"dtype,omitempty"`
	Preds      []int  `json:"preds,omitempty"`
	KernelH    int    `json:"kernel_h,omitempty"`
	KernelW    int    `json:"kernel_w,omitempty"`
	StrideH    int    `json:"stride_h,omitempty"`
	StrideW    int    `json:"stride_w,omitempty"`
	Pad        string `json:"pad,omitempty"`
	Dilation   int    `json:"dilation,omitempty"`
	Axis       int    `json:"axis,omitempty"`
	AliasOf    *int   `json:"alias_of,omitempty"`
	ChanOffset int    `json:"chan_offset,omitempty"`
	InChannels int    `json:"in_channels,omitempty"`
}

// MarshalJSON encodes the graph in the CLI's JSON format.
func (g *Graph) MarshalJSON() ([]byte, error) {
	jg := jsonGraph{Name: g.Name, Nodes: make([]jsonNode, len(g.Nodes))}
	for i, n := range g.Nodes {
		jn := jsonNode{
			ID:         n.ID,
			Name:       n.Name,
			Op:         n.Op.String(),
			Shape:      []int(n.Shape),
			DType:      n.DType.String(),
			Preds:      n.Preds,
			KernelH:    n.Attr.KernelH,
			KernelW:    n.Attr.KernelW,
			StrideH:    n.Attr.StrideH,
			StrideW:    n.Attr.StrideW,
			Dilation:   n.Attr.Dilation,
			Axis:       n.Attr.Axis,
			ChanOffset: n.Attr.ChanOffset,
			InChannels: n.Attr.InChannels,
		}
		if n.Attr.Pad == PadValid {
			jn.Pad = "valid"
		}
		if n.Attr.AliasOf >= 0 {
			a := n.Attr.AliasOf
			jn.AliasOf = &a
		}
		jg.Nodes[i] = jn
	}
	return json.MarshalIndent(jg, "", "  ")
}

// UnmarshalJSON decodes the CLI's JSON format into the graph. Nodes must be
// listed in ID order starting at zero.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	out := New(jg.Name)
	for i, jn := range jg.Nodes {
		if jn.ID != i {
			return fmt.Errorf("graph: node %d listed at index %d; nodes must be dense and ordered", jn.ID, i)
		}
		op, err := ParseOpType(jn.Op)
		if err != nil {
			return err
		}
		// Preds must reference already-decoded nodes (the format is dense
		// and topologically ordered); AddNode would index out of range on a
		// forward or out-of-range reference, so reject it as a decode error.
		for _, p := range jn.Preds {
			if p < 0 || p >= i {
				return fmt.Errorf("graph: node %d references predecessor %d; preds must name earlier node IDs", i, p)
			}
		}
		id := out.AddNode(op, jn.Name, Shape(jn.Shape), jn.Preds...)
		n := out.Nodes[id]
		if jn.DType != "" {
			dt, err := ParseDType(jn.DType)
			if err != nil {
				return err
			}
			n.DType = dt
		}
		n.Attr.KernelH, n.Attr.KernelW = jn.KernelH, jn.KernelW
		n.Attr.StrideH, n.Attr.StrideW = jn.StrideH, jn.StrideW
		n.Attr.Dilation = jn.Dilation
		n.Attr.Axis = jn.Axis
		n.Attr.ChanOffset = jn.ChanOffset
		n.Attr.InChannels = jn.InChannels
		if jn.Pad == "valid" {
			n.Attr.Pad = PadValid
		}
		if jn.AliasOf != nil {
			n.Attr.AliasOf = *jn.AliasOf
		}
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*g = *out
	return nil
}

// WriteJSON writes the graph to w in the CLI's JSON format.
func (g *Graph) WriteJSON(w io.Writer) error {
	data, err := g.MarshalJSON()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ReadJSON parses a graph from r.
func ReadJSON(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	g := New("")
	if err := g.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return g, nil
}
