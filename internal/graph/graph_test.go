package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder("diamond")
	in := b.Input(Shape{1, 8, 8, 4})
	l := b.Conv(in, 8, 3, 1, PadSame)
	r := b.Conv(in, 8, 3, 1, PadSame)
	b.Add(l, r)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond invalid: %v", err)
	}
	return g
}

func TestOpTypeStringRoundTrip(t *testing.T) {
	for op := OpType(0); op < opTypeCount; op++ {
		got, err := ParseOpType(op.String())
		if err != nil {
			t.Fatalf("ParseOpType(%s): %v", op, err)
		}
		if got != op {
			t.Errorf("round trip %v -> %v", op, got)
		}
	}
	if _, err := ParseOpType("Bogus"); err == nil {
		t.Error("ParseOpType accepted bogus name")
	}
}

func TestDTypeSizes(t *testing.T) {
	cases := map[DType]int64{Float32: 4, Float16: 2, Int8: 1, UInt8: 1}
	for d, want := range cases {
		if got := d.Size(); got != want {
			t.Errorf("%v.Size() = %d, want %d", d, got, want)
		}
		rt, err := ParseDType(d.String())
		if err != nil || rt != d {
			t.Errorf("dtype round trip %v -> %v, %v", d, rt, err)
		}
	}
}

func TestShapeElems(t *testing.T) {
	if got := (Shape{1, 8, 8, 16}).Elems(); got != 1024 {
		t.Errorf("Elems = %d, want 1024", got)
	}
	if got := (Shape{}).Elems(); got != 1 {
		t.Errorf("empty shape Elems = %d, want 1", got)
	}
	s := Shape{2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 2 {
		t.Error("Clone aliases original storage")
	}
	if !s.Equal(Shape{2, 3}) || s.Equal(Shape{2, 4}) || s.Equal(Shape{2}) {
		t.Error("Shape.Equal misbehaves")
	}
	if (Shape{1, 2, 3, 7}).Channels() != 7 {
		t.Error("Channels should return trailing dim")
	}
	if (Shape{}).Channels() != 0 {
		t.Error("Channels of empty shape should be 0")
	}
}

func TestNodeOutBytes(t *testing.T) {
	g := New("t")
	a := g.AddNode(OpInput, "a", Shape{1, 4, 4, 2})
	if got := g.Nodes[a].OutBytes(); got != 4*4*2*4 {
		t.Errorf("OutBytes = %d, want 128", got)
	}
	v := g.AddNode(OpIdentity, "view", Shape{1, 4, 4, 2}, a)
	g.Nodes[v].Attr.AliasOf = a
	if got := g.Nodes[v].OutBytes(); got != 0 {
		t.Errorf("aliased OutBytes = %d, want 0", got)
	}
	if got := g.Nodes[v].StorageBytes(); got != 128 {
		t.Errorf("StorageBytes = %d, want 128", got)
	}
}

func TestGraphEdgesAndDegrees(t *testing.T) {
	g := diamond(t)
	if g.NumNodes() != 4 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	in := g.Indegrees()
	want := []int{0, 1, 1, 2}
	for i, w := range want {
		if in[i] != w {
			t.Errorf("indeg[%d] = %d, want %d", i, in[i], w)
		}
	}
	if got := g.Inputs(); len(got) != 1 || got[0] != 0 {
		t.Errorf("Inputs = %v", got)
	}
	if got := g.Outputs(); len(got) != 1 || got[0] != 3 {
		t.Errorf("Outputs = %v", got)
	}
}

func TestTopoOrderDeterministicAndValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := RandomDAG(rng, RandomDAGConfig{Nodes: 20, EdgeProb: 0.2})
		o1, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		o2, _ := g.TopoOrder()
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatal("TopoOrder not deterministic")
			}
		}
		pos := make([]int, g.NumNodes())
		for i, v := range o1 {
			pos[v] = i
		}
		for _, n := range g.Nodes {
			for _, p := range n.Preds {
				if pos[p] >= pos[n.ID] {
					t.Fatalf("order violates edge %d->%d", p, n.ID)
				}
			}
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New("cycle")
	a := g.AddNode(OpInput, "a", Shape{1})
	b := g.AddNode(OpReLU, "b", Shape{1}, a)
	g.AddEdge(b, a) // creates a->b->a
	if _, err := g.TopoOrder(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted cyclic graph")
	}
}

func TestReachabilityAndAncestors(t *testing.T) {
	g := diamond(t)
	reach, err := g.Reachability()
	if err != nil {
		t.Fatal(err)
	}
	if !reach[0].Has(3) || !reach[0].Has(1) || !reach[0].Has(2) {
		t.Error("input should reach all")
	}
	if reach[1].Has(2) || reach[2].Has(1) {
		t.Error("parallel branches must not reach each other")
	}
	anc, err := g.Ancestors()
	if err != nil {
		t.Fatal(err)
	}
	if !anc[3].Has(0) || !anc[3].Has(1) || !anc[3].Has(2) {
		t.Error("sink should have all ancestors")
	}
	if anc[0].Count() != 0 {
		t.Error("source has no ancestors")
	}
}

func TestZeroIndegree(t *testing.T) {
	g := diamond(t)
	s := NewBitset(4)
	z := g.ZeroIndegree(s)
	if z.Count() != 1 || !z.Has(0) {
		t.Fatalf("initial z = %v", z.Elems())
	}
	s.Set(0)
	z = g.ZeroIndegree(s)
	if !z.Has(1) || !z.Has(2) || z.Has(3) {
		t.Fatalf("after input z = %v", z.Elems())
	}
	s.Set(1)
	s.Set(2)
	z = g.ZeroIndegree(s)
	if z.Count() != 1 || !z.Has(3) {
		t.Fatalf("final z = %v", z.Elems())
	}
}

func TestValidateCatchesBadAlias(t *testing.T) {
	g := New("bad")
	a := g.AddNode(OpInput, "a", Shape{4})
	b := g.AddNode(OpReLU, "b", Shape{4}, a)
	g.Nodes[b].Attr.AliasOf = 99
	if err := g.Validate(); err == nil {
		t.Error("out-of-range alias accepted")
	}
	g.Nodes[b].Attr.AliasOf = -1
	g.Nodes[b].Shape = Shape{0}
	if err := g.Validate(); err == nil {
		t.Error("non-positive shape accepted")
	}
}

func TestValidateAliasMustDepend(t *testing.T) {
	g := New("alias-no-dep")
	a := g.AddNode(OpInput, "a", Shape{4})
	c := g.AddNode(OpInput, "c", Shape{4})
	v := g.AddNode(OpIdentity, "v", Shape{4}, a)
	g.Nodes[v].Attr.AliasOf = c // aliases a node it does not consume
	if err := g.Validate(); err == nil {
		t.Error("alias without dependency accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.Nodes[0].Shape[0] = 99
	c.Nodes[3].Preds[0] = 0
	if g.Nodes[0].Shape[0] == 99 {
		t.Error("Clone shares shape storage")
	}
	if g.Nodes[3].Preds[0] == 0 {
		t.Error("Clone shares pred storage")
	}
}

func TestPhysRootAndConsumers(t *testing.T) {
	g := New("alias")
	x := g.AddNode(OpInput, "x", Shape{16})
	buf := g.AddNode(OpBuffer, "buf", Shape{32}, x)
	w := g.AddNode(OpPartialDWConv, "w", Shape{16}, x, buf)
	g.Nodes[w].Attr.AliasOf = buf
	j := g.AddNode(OpIdentity, "join", Shape{32}, w)
	g.Nodes[j].Attr.AliasOf = buf
	r := g.AddNode(OpReLU, "read", Shape{32}, j)
	if err := g.Validate(); err != nil {
		t.Fatalf("alias graph invalid: %v", err)
	}
	if g.PhysRoot(j) != buf || g.PhysRoot(w) != buf || g.PhysRoot(x) != x {
		t.Error("PhysRoot wrong")
	}
	cons := g.Consumers()
	// buf consumed by: w (direct), j (via w alias), r (via j alias).
	if got := cons[buf]; len(got) != 3 {
		t.Errorf("buf consumers = %v, want 3", got)
	}
	if got := cons[x]; len(got) != 2 { // buf pred? x consumed by buf and w
		t.Errorf("x consumers = %v, want [1 2]", got)
	}
	if got := cons[r]; got != nil {
		t.Errorf("sink must have no consumers, got %v", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := diamond(t)
	g.Nodes[1].Attr.Pad = PadValid
	var buf bytes.Buffer
	if err := g.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed structure: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i, n := range g.Nodes {
		o := got.Nodes[i]
		if n.Op != o.Op || !n.Shape.Equal(o.Shape) || n.Attr.Pad != o.Attr.Pad {
			t.Errorf("node %d mismatch after round trip", i)
		}
	}
}

func TestJSONRejectsNonDense(t *testing.T) {
	data := []byte(`{"name":"x","nodes":[{"id":5,"op":"Input","shape":[1]}]}`)
	g := New("")
	if err := g.UnmarshalJSON(data); err == nil {
		t.Error("accepted non-dense node IDs")
	}
}

func TestDOTOutput(t *testing.T) {
	g := diamond(t)
	var buf bytes.Buffer
	if err := g.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"digraph", "n0 -> n1", "n1 -> n3", "Conv"} {
		if !strings.Contains(s, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
}

func TestBuilderShapeInference(t *testing.T) {
	b := NewBuilder("shapes")
	in := b.Input(Shape{1, 32, 32, 3})
	c := b.Conv(in, 16, 3, 2, PadSame)
	if got := b.Graph().Nodes[c].Shape; !got.Equal(Shape{1, 16, 16, 16}) {
		t.Errorf("conv same s2 shape = %v", got)
	}
	v := b.Conv(in, 8, 5, 1, PadValid)
	if got := b.Graph().Nodes[v].Shape; !got.Equal(Shape{1, 28, 28, 8}) {
		t.Errorf("conv valid shape = %v", got)
	}
	d := b.DilConv(in, 8, 3, 1, 2, PadValid) // effective kernel 5
	if got := b.Graph().Nodes[d].Shape; !got.Equal(Shape{1, 28, 28, 8}) {
		t.Errorf("dilconv shape = %v", got)
	}
	p := b.MaxPool(c, 2, 2, PadSame)
	if got := b.Graph().Nodes[p].Shape; !got.Equal(Shape{1, 8, 8, 16}) {
		t.Errorf("pool shape = %v", got)
	}
	gp := b.GlobalAvgPool(p)
	if got := b.Graph().Nodes[gp].Shape; !got.Equal(Shape{1, 1, 1, 16}) {
		t.Errorf("gap shape = %v", got)
	}
	dn := b.Dense(gp, 10)
	if got := b.Graph().Nodes[dn].Shape; !got.Equal(Shape{1, 10}) {
		t.Errorf("dense shape = %v", got)
	}
	c2 := b.Conv(c, 8, 3, 1, PadSame) // 1x16x16x8, same spatial as c
	cc := b.Concat(c, c2)
	if got := b.Graph().Nodes[cc].Shape; !got.Equal(Shape{1, 16, 16, 24}) {
		t.Errorf("concat shape = %v, want [1 16 16 24]", got)
	}
}

func TestBuilderConcatPanicsOnSpatialMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Concat accepted mismatched spatial dims")
		}
	}()
	b := NewBuilder("bad")
	in := b.Input(Shape{1, 8, 8, 4})
	a := b.Conv(in, 4, 3, 1, PadSame)
	p := b.MaxPool(in, 2, 2, PadSame)
	b.Concat(a, p)
}

func TestBuilderAddPanicsOnShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add accepted mismatched shapes")
		}
	}()
	b := NewBuilder("bad")
	x := b.Input(Shape{1, 8, 8, 4})
	y := b.Input(Shape{1, 8, 8, 8})
	b.Add(x, y)
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.Set(i)
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d", b.Count())
	}
	if !b.Has(64) || b.Has(65) {
		t.Error("Has wrong")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 4 {
		t.Error("Clear wrong")
	}
	c := b.Clone()
	if !c.Equal(b) {
		t.Error("Clone not equal")
	}
	c.Set(1)
	if c.Equal(b) {
		t.Error("Equal ignores difference")
	}
	if b.Key() == c.Key() {
		t.Error("Key collision for different sets")
	}
	got := b.Elems()
	want := []int{0, 63, 127, 129}
	if len(got) != len(want) {
		t.Fatalf("Elems = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v, want %v", got, want)
		}
	}
	d := NewBitset(130)
	d.Set(0)
	d.Set(5)
	b.Or(d)
	if !b.Has(5) {
		t.Error("Or missing element")
	}
	b.AndNot(d)
	if b.Has(0) || b.Has(5) {
		t.Error("AndNot left elements")
	}
}

func TestBitsetKeyInjective(t *testing.T) {
	f := func(xs []uint8) bool {
		b1 := NewBitset(256)
		b2 := NewBitset(256)
		for i, x := range xs {
			if i%2 == 0 {
				b1.Set(int(x))
			} else {
				b2.Set(int(x))
			}
		}
		return (b1.Key() == b2.Key()) == b1.Equal(b2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomDAGConnectivityAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		g := RandomDAG(rng, RandomDAGConfig{Nodes: 15, EdgeProb: 0.25, MaxFanIn: 3})
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, n := range g.Nodes[1:] {
			if len(n.Preds) == 0 && n.Op != OpInput {
				t.Fatalf("trial %d: non-input node %d has no preds", trial, n.ID)
			}
			if len(n.Preds) > 3 {
				t.Fatalf("trial %d: fan-in cap violated", trial)
			}
		}
	}
}

// TestUnmarshalRejectsBadPreds pins the decode-time bounds check: a pred
// referencing a missing or later node must be a clean error, never the
// index-out-of-range panic AddNode would otherwise hit mid-decode (found by
// probing serenityd with a malformed graph; also fuzz-reachable).
func TestUnmarshalRejectsBadPreds(t *testing.T) {
	for _, bad := range []string{
		`{"name":"bad","nodes":[{"id":0,"name":"x","op":"ReLU","shape":[1],"preds":[5]}]}`,
		`{"name":"bad","nodes":[{"id":0,"name":"x","op":"ReLU","shape":[1],"preds":[0]}]}`,
		`{"name":"bad","nodes":[{"id":0,"name":"x","op":"ReLU","shape":[1],"preds":[-1]}]}`,
	} {
		g := New("")
		if err := g.UnmarshalJSON([]byte(bad)); err == nil {
			t.Errorf("decoder accepted %s", bad)
		}
	}
}
