package graph

import "fmt"

// Builder provides a fluent construction API with shape inference for the
// operation set used by the benchmark networks. All methods panic on
// malformed construction (builder misuse is a programming error, matching
// the convention of the standard library's text/template.Must).
type Builder struct {
	g       *Graph
	counter map[string]int
}

// NewBuilder returns a builder for a fresh graph with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{g: New(name), counter: map[string]int{}}
}

// Graph returns the constructed graph.
func (b *Builder) Graph() *Graph { return b.g }

func (b *Builder) autoName(prefix string) string {
	b.counter[prefix]++
	return fmt.Sprintf("%s_%d", prefix, b.counter[prefix])
}

func (b *Builder) shapeOf(id int) Shape { return b.g.Nodes[id].Shape }

// Input adds a graph input of the given shape.
func (b *Builder) Input(shape Shape) int {
	return b.g.AddNode(OpInput, b.autoName("input"), shape)
}

func spatialOut(in, kernel, stride, dilation int, pad Padding) int {
	if stride <= 0 {
		stride = 1
	}
	if dilation <= 0 {
		dilation = 1
	}
	eff := (kernel-1)*dilation + 1
	switch pad {
	case PadValid:
		return (in-eff)/stride + 1
	default: // PadSame
		return (in + stride - 1) / stride
	}
}

func (b *Builder) convLike(op OpType, name string, x, outC, k, stride int, pad Padding, dilation int) int {
	in := b.shapeOf(x)
	if len(in) != 4 {
		panic(fmt.Sprintf("graph: %s requires rank-4 input, got %v", op, in))
	}
	h := spatialOut(in[1], k, stride, dilation, pad)
	w := spatialOut(in[2], k, stride, dilation, pad)
	if h <= 0 || w <= 0 {
		panic(fmt.Sprintf("graph: %s on %v with k=%d s=%d yields empty output", op, in, k, stride))
	}
	id := b.g.AddNode(op, name, Shape{in[0], h, w, outC}, x)
	n := b.g.Nodes[id]
	n.Attr.KernelH, n.Attr.KernelW = k, k
	n.Attr.StrideH, n.Attr.StrideW = stride, stride
	n.Attr.Pad = pad
	n.Attr.Dilation = dilation
	n.Attr.InChannels = in[3]
	return id
}

// Conv adds a 2-D convolution with outC output channels, k×k kernel and the
// given stride/padding.
func (b *Builder) Conv(x, outC, k, stride int, pad Padding) int {
	return b.convLike(OpConv, b.autoName("conv"), x, outC, k, stride, pad, 1)
}

// DepthwiseConv adds a depthwise convolution (channel multiplier 1).
func (b *Builder) DepthwiseConv(x, k, stride int, pad Padding) int {
	c := b.shapeOf(x).Channels()
	return b.convLike(OpDepthwiseConv, b.autoName("dwconv"), x, c, k, stride, pad, 1)
}

// PointwiseConv adds a 1×1 convolution with outC output channels.
func (b *Builder) PointwiseConv(x, outC int) int {
	return b.convLike(OpPointwiseConv, b.autoName("pwconv"), x, outC, 1, 1, PadSame, 1)
}

// SepConv adds a separable convolution (depthwise k×k then pointwise to
// outC), modeled as a single fused node as in DARTS cost accounting.
func (b *Builder) SepConv(x, outC, k, stride int, pad Padding) int {
	return b.convLike(OpSepConv, b.autoName("sepconv"), x, outC, k, stride, pad, 1)
}

// DilConv adds a dilated separable convolution with the given dilation.
func (b *Builder) DilConv(x, outC, k, stride, dilation int, pad Padding) int {
	return b.convLike(OpDilConv, b.autoName("dilconv"), x, outC, k, stride, pad, dilation)
}

// MaxPool adds a k×k max pooling node.
func (b *Builder) MaxPool(x, k, stride int, pad Padding) int {
	c := b.shapeOf(x).Channels()
	return b.convLike(OpMaxPool, b.autoName("maxpool"), x, c, k, stride, pad, 1)
}

// AvgPool adds a k×k average pooling node.
func (b *Builder) AvgPool(x, k, stride int, pad Padding) int {
	c := b.shapeOf(x).Channels()
	return b.convLike(OpAvgPool, b.autoName("avgpool"), x, c, k, stride, pad, 1)
}

// GlobalAvgPool reduces spatial dimensions to 1×1.
func (b *Builder) GlobalAvgPool(x int) int {
	in := b.shapeOf(x)
	id := b.g.AddNode(OpGlobalAvgPool, b.autoName("gap"), Shape{in[0], 1, 1, in[3]}, x)
	b.g.Nodes[id].Attr.InChannels = in[3]
	return id
}

// Dense adds a fully connected layer with units outputs over a flattened
// input.
func (b *Builder) Dense(x, units int) int {
	in := b.shapeOf(x)
	id := b.g.AddNode(OpDense, b.autoName("dense"), Shape{in[0], units}, x)
	b.g.Nodes[id].Attr.InChannels = int(in.Elems()) / in[0]
	return id
}

// ReLU adds an activation node.
func (b *Builder) ReLU(x int) int {
	return b.g.AddNode(OpReLU, b.autoName("relu"), b.shapeOf(x), x)
}

// Sigmoid adds a sigmoid activation node.
func (b *Builder) Sigmoid(x int) int {
	return b.g.AddNode(OpSigmoid, b.autoName("sigmoid"), b.shapeOf(x), x)
}

// Add sums two or more same-shaped tensors.
func (b *Builder) Add(xs ...int) int {
	if len(xs) < 2 {
		panic("graph: Add requires at least two operands")
	}
	s := b.shapeOf(xs[0])
	for _, x := range xs[1:] {
		if !b.shapeOf(x).Equal(s) {
			panic(fmt.Sprintf("graph: Add shape mismatch %v vs %v", s, b.shapeOf(x)))
		}
	}
	return b.g.AddNode(OpAdd, b.autoName("add"), s, xs...)
}

// Mul multiplies two same-shaped tensors element-wise.
func (b *Builder) Mul(x, y int) int {
	s := b.shapeOf(x)
	if !b.shapeOf(y).Equal(s) {
		panic(fmt.Sprintf("graph: Mul shape mismatch %v vs %v", s, b.shapeOf(y)))
	}
	return b.g.AddNode(OpMul, b.autoName("mul"), s, x, y)
}

// Concat concatenates tensors along the channel axis. Spatial dims must
// agree.
func (b *Builder) Concat(xs ...int) int {
	if len(xs) < 2 {
		panic("graph: Concat requires at least two operands")
	}
	s := b.shapeOf(xs[0]).Clone()
	c := s.Channels()
	for _, x := range xs[1:] {
		o := b.shapeOf(x)
		if len(o) != len(s) {
			panic(fmt.Sprintf("graph: Concat rank mismatch %v vs %v", s, o))
		}
		for i := 0; i < len(s)-1; i++ {
			if o[i] != s[i] {
				panic(fmt.Sprintf("graph: Concat spatial mismatch %v vs %v", s, o))
			}
		}
		c += o.Channels()
	}
	s[len(s)-1] = c
	id := b.g.AddNode(OpConcat, b.autoName("concat"), s, xs...)
	b.g.Nodes[id].Attr.Axis = len(s) - 1
	return id
}

// Identity adds a pass-through node (used for graph outputs and cell
// boundary markers).
func (b *Builder) Identity(x int) int {
	return b.g.AddNode(OpIdentity, b.autoName("id"), b.shapeOf(x), x)
}

// Output marks x as a graph output with an explicit Output node.
func (b *Builder) Output(x int) int {
	return b.g.AddNode(OpOutput, b.autoName("output"), b.shapeOf(x), x)
}
