package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestJSONRoundTripProperty: any random DAG survives a JSON round trip with
// identical structure, shapes, and attributes.
func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := RandomDAG(rng, RandomDAGConfig{Nodes: 2 + int(n%24), EdgeProb: 0.25})
		var buf bytes.Buffer
		if err := g.WriteJSON(&buf); err != nil {
			return false
		}
		back, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for i, node := range g.Nodes {
			o := back.Nodes[i]
			if node.Op != o.Op || !node.Shape.Equal(o.Shape) || node.DType != o.DType {
				return false
			}
			if len(node.Preds) != len(o.Preds) {
				return false
			}
			for j := range node.Preds {
				if node.Preds[j] != o.Preds[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestZeroIndegreeBijectionProperty verifies the bijection the DP relies
// on: distinct downward-closed sets have distinct zero-indegree sets (the
// complement's minimal antichain determines the up-set).
func TestZeroIndegreeBijectionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		g := RandomDAG(rng, RandomDAGConfig{Nodes: 12, EdgeProb: 0.25})
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		// Enumerate many random downward-closed sets via random prefixes of
		// random topological orders.
		seen := map[string]string{} // z key -> scheduled key
		for i := 0; i < 200; i++ {
			perm := randomTopo(g, rng)
			k := rng.Intn(len(perm) + 1)
			s := NewBitset(g.NumNodes())
			for _, v := range perm[:k] {
				s.Set(v)
			}
			z := g.ZeroIndegree(s)
			if prev, ok := seen[z.Key()]; ok && prev != s.Key() {
				t.Fatalf("two closed sets share a zero-indegree signature")
			}
			seen[z.Key()] = s.Key()
		}
		_ = order
	}
}

// randomTopo is a local random-topological-order sampler (avoiding an
// import cycle with internal/sched).
func randomTopo(g *Graph, rng *rand.Rand) []int {
	n := g.NumNodes()
	indeg := g.Indegrees()
	var ready []int
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var order []int
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		v := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, s := range g.Nodes[v].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}
