package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for visual inspection.
// Alias edges (shared-buffer writes from rewriting) are drawn dashed.
func (g *Graph) WriteDOT(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", sanitizeDOT(g.Name))
	for _, n := range g.Nodes {
		label := fmt.Sprintf("%s\\n%s %v", n.Name, n.Op, n.Shape)
		style := ""
		switch n.Op {
		case OpInput:
			style = ", style=filled, fillcolor=lightblue"
		case OpBuffer:
			style = ", style=filled, fillcolor=lightyellow"
		case OpConcat:
			style = ", style=filled, fillcolor=lightgray"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", n.ID, label, style)
	}
	for _, n := range g.Nodes {
		for _, p := range n.Preds {
			attr := ""
			if n.Attr.AliasOf == p || (n.Attr.AliasOf >= 0 && g.PhysRoot(p) == g.PhysRoot(n.ID)) {
				attr = " [style=dashed]"
			}
			fmt.Fprintf(&b, "  n%d -> n%d%s;\n", p, n.ID, attr)
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitizeDOT(s string) string {
	return strings.NewReplacer("\"", "'", "\n", " ").Replace(s)
}
