package graph

import "math/rand"

// RandomDAGConfig parameterizes RandomDAG.
type RandomDAGConfig struct {
	Nodes    int     // total node count (>= 2)
	EdgeProb float64 // probability of an edge between eligible pairs
	MaxFanIn int     // cap on predecessors per node (0 = unlimited)
	MinBytes int64   // minimum output tensor size
	MaxBytes int64   // maximum output tensor size
}

// RandomDAG generates a connected random DAG with tensor-sized nodes for
// property tests and the schedule-CDF experiment. Node i may receive edges
// only from nodes j < i, guaranteeing acyclicity; every non-source node has
// at least one predecessor so the graph is connected from its sources.
// Shapes are rank-1 byte blobs: the memory model only needs sizes.
func RandomDAG(rng *rand.Rand, cfg RandomDAGConfig) *Graph {
	if cfg.Nodes < 2 {
		cfg.Nodes = 2
	}
	if cfg.EdgeProb <= 0 {
		cfg.EdgeProb = 0.3
	}
	if cfg.MinBytes <= 0 {
		cfg.MinBytes = 1 << 8
	}
	if cfg.MaxBytes < cfg.MinBytes {
		cfg.MaxBytes = cfg.MinBytes * 16
	}
	g := New("random_dag")
	size := func() Shape {
		bytes := cfg.MinBytes + rng.Int63n(cfg.MaxBytes-cfg.MinBytes+1)
		elems := int(bytes / Float32.Size())
		if elems < 1 {
			elems = 1
		}
		return Shape{elems}
	}
	g.AddNode(OpInput, "in_0", size())
	for i := 1; i < cfg.Nodes; i++ {
		var preds []int
		for j := 0; j < i; j++ {
			if rng.Float64() < cfg.EdgeProb {
				preds = append(preds, j)
				if cfg.MaxFanIn > 0 && len(preds) >= cfg.MaxFanIn {
					break
				}
			}
		}
		if len(preds) == 0 {
			preds = []int{rng.Intn(i)}
		}
		op := OpAdd
		if len(preds) == 1 {
			op = OpReLU
		}
		g.AddNode(op, "", size(), preds...)
	}
	for _, n := range g.Nodes {
		if n.Name == "" {
			n.Name = n.Op.String()
		}
	}
	return g
}
