package graph

import (
	"errors"
	"fmt"
)

// ErrCycle is returned when an operation requires a DAG but the graph
// contains a directed cycle.
var ErrCycle = errors.New("graph: not a DAG (cycle detected)")

// TopoOrder returns the node IDs in a deterministic topological order
// (Kahn's algorithm with a min-ID tie break). It returns ErrCycle if the
// graph is not a DAG.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.Nodes)
	indeg := g.Indegrees()
	// Min-heap by node ID for determinism.
	heap := make([]int, 0, n)
	push := func(v int) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() int {
		v := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < last && heap[l] < heap[s] {
				s = l
			}
			if r < last && heap[r] < heap[s] {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return v
	}
	for id, d := range indeg {
		if d == 0 {
			push(id)
		}
	}
	order := make([]int, 0, n)
	for len(heap) > 0 {
		v := pop()
		order = append(order, v)
		for _, s := range g.Nodes[v].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				push(s)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// Reachability returns, for every node v, the bitset of nodes reachable from
// v (excluding v itself). Complexity O(V·E/64) via reverse-topological
// union of successor sets.
func (g *Graph) Reachability() ([]*Bitset, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.Nodes)
	reach := make([]*Bitset, n)
	for i := range reach {
		reach[i] = NewBitset(n)
	}
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		for _, s := range g.Nodes[v].Succs {
			reach[v].Set(s)
			reach[v].Or(reach[s])
		}
	}
	return reach, nil
}

// Ancestors returns, for every node v, the bitset of nodes that can reach v
// (excluding v itself).
func (g *Graph) Ancestors() ([]*Bitset, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := len(g.Nodes)
	anc := make([]*Bitset, n)
	for i := range anc {
		anc[i] = NewBitset(n)
	}
	for _, v := range order {
		for _, s := range g.Nodes[v].Succs {
			anc[s].Set(v)
			anc[s].Or(anc[v])
		}
	}
	return anc, nil
}

// ZeroIndegree computes the zero-indegree set z of the paper: the nodes not
// in scheduled whose predecessors are all in scheduled. scheduled must be a
// downward-closed set for the result to be meaningful.
func (g *Graph) ZeroIndegree(scheduled *Bitset) *Bitset {
	z := NewBitset(len(g.Nodes))
	for _, n := range g.Nodes {
		if scheduled.Has(n.ID) {
			continue
		}
		ready := true
		for _, p := range n.Preds {
			if !scheduled.Has(p) {
				ready = false
				break
			}
		}
		if ready {
			z.Set(n.ID)
		}
	}
	return z
}

// Validate checks structural invariants: edge symmetry, acyclicity,
// in-range alias targets with no alias cycles, Buffer aliasing rules, and
// positive shapes. It returns the first violation found.
func (g *Graph) Validate() error {
	for id, n := range g.Nodes {
		if n.ID != id {
			return fmt.Errorf("graph %q: node at index %d has ID %d", g.Name, id, n.ID)
		}
		for _, d := range n.Shape {
			if d <= 0 {
				return fmt.Errorf("graph %q: node %d (%s) has non-positive shape %v", g.Name, id, n.Name, n.Shape)
			}
		}
		for _, p := range n.Preds {
			if p < 0 || p >= len(g.Nodes) {
				return fmt.Errorf("graph %q: node %d has out-of-range pred %d", g.Name, id, p)
			}
			if !contains(g.Nodes[p].Succs, id) {
				return fmt.Errorf("graph %q: edge %d->%d missing reverse link", g.Name, p, id)
			}
		}
		for _, s := range n.Succs {
			if s < 0 || s >= len(g.Nodes) {
				return fmt.Errorf("graph %q: node %d has out-of-range succ %d", g.Name, id, s)
			}
			if !contains(g.Nodes[s].Preds, id) {
				return fmt.Errorf("graph %q: edge %d->%d missing forward link", g.Name, id, s)
			}
		}
		if a := n.Attr.AliasOf; a >= 0 {
			if a >= len(g.Nodes) {
				return fmt.Errorf("graph %q: node %d aliases out-of-range node %d", g.Name, id, a)
			}
			if !contains(n.Preds, a) && !aliasReachesViaPreds(g, n, a) {
				return fmt.Errorf("graph %q: node %d aliases %d but does not depend on it", g.Name, id, a)
			}
		}
	}
	// Alias cycle check: following AliasOf must terminate.
	for id := range g.Nodes {
		steps := 0
		cur := id
		for g.Nodes[cur].Attr.AliasOf >= 0 {
			cur = g.Nodes[cur].Attr.AliasOf
			steps++
			if steps > len(g.Nodes) {
				return fmt.Errorf("graph %q: alias cycle involving node %d", g.Name, id)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// aliasReachesViaPreds reports whether target is reachable from n by
// following predecessor edges through alias nodes only. A rewrite join node
// aliases the Buffer through its partial writers, which themselves alias it.
func aliasReachesViaPreds(g *Graph, n *Node, target int) bool {
	seen := map[int]bool{}
	var walk func(id int) bool
	walk = func(id int) bool {
		if id == target {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, p := range g.Nodes[id].Preds {
			pn := g.Nodes[p]
			if p == target {
				return true
			}
			if pn.Attr.AliasOf >= 0 && walk(p) {
				return true
			}
		}
		return false
	}
	return walk(n.ID)
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
