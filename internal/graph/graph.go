// Package graph provides the intermediate representation (IR) used by the
// SERENITY scheduler: a directed acyclic graph of tensor-producing operations
// annotated with output shapes, data types, and memory-aliasing metadata.
//
// The IR mirrors the augmented graph described in Section 3 of the paper
// ("we augment this IR with the metadata of the nodes such as the operation
// type, input/output edges, input/output shapes, and memory cost"). Every
// node produces exactly one output tensor; multi-output constructs are
// expressed with Identity views.
package graph

import (
	"fmt"
	"sort"
)

// OpType enumerates the operation kinds understood by the scheduler, the
// rewriter, and the reference executor.
type OpType int

// Operation kinds. The Partial* and Buffer ops only appear after identity
// graph rewriting (Section 3.3): Buffer allocates a shared output tensor and
// Partial ops write disjoint slices of (or accumulate into) that buffer.
const (
	OpInput OpType = iota
	OpConv
	OpDepthwiseConv
	OpPointwiseConv
	OpSepConv // depthwise + pointwise fused (DARTS-style separable conv)
	OpDilConv // dilated separable conv
	OpAdd
	OpMul
	OpConcat
	OpReLU
	OpSigmoid
	OpMaxPool
	OpAvgPool
	OpGlobalAvgPool
	OpDense
	OpIdentity
	OpPad
	OpBuffer        // shared output allocation introduced by rewriting
	OpPartialConv   // channel-wise partitioned conv accumulating into a Buffer
	OpPartialDWConv // kernel-wise partitioned depthwise conv writing a Buffer slice
	OpOutput
	opTypeCount
)

var opNames = [...]string{
	OpInput:         "Input",
	OpConv:          "Conv",
	OpDepthwiseConv: "DepthwiseConv",
	OpPointwiseConv: "PointwiseConv",
	OpSepConv:       "SepConv",
	OpDilConv:       "DilConv",
	OpAdd:           "Add",
	OpMul:           "Mul",
	OpConcat:        "Concat",
	OpReLU:          "ReLU",
	OpSigmoid:       "Sigmoid",
	OpMaxPool:       "MaxPool",
	OpAvgPool:       "AvgPool",
	OpGlobalAvgPool: "GlobalAvgPool",
	OpDense:         "Dense",
	OpIdentity:      "Identity",
	OpPad:           "Pad",
	OpBuffer:        "Buffer",
	OpPartialConv:   "PartialConv",
	OpPartialDWConv: "PartialDWConv",
	OpOutput:        "Output",
}

// String returns the canonical operation name.
func (op OpType) String() string {
	if op < 0 || int(op) >= len(opNames) {
		return fmt.Sprintf("OpType(%d)", int(op))
	}
	return opNames[op]
}

// ParseOpType maps a canonical operation name back to its OpType.
func ParseOpType(s string) (OpType, error) {
	for i, n := range opNames {
		if n == s {
			return OpType(i), nil
		}
	}
	return 0, fmt.Errorf("graph: unknown op type %q", s)
}

// DType is the element type of a tensor.
type DType int

// Supported element types.
const (
	Float32 DType = iota
	Float16
	Int8
	UInt8
)

// Size returns the width of one element in bytes.
func (d DType) Size() int64 {
	switch d {
	case Float32:
		return 4
	case Float16:
		return 2
	case Int8, UInt8:
		return 1
	}
	return 4
}

// String returns the canonical dtype name.
func (d DType) String() string {
	switch d {
	case Float32:
		return "float32"
	case Float16:
		return "float16"
	case Int8:
		return "int8"
	case UInt8:
		return "uint8"
	}
	return fmt.Sprintf("DType(%d)", int(d))
}

// ParseDType maps a canonical dtype name back to its DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "float32":
		return Float32, nil
	case "float16":
		return Float16, nil
	case "int8":
		return Int8, nil
	case "uint8":
		return UInt8, nil
	}
	return 0, fmt.Errorf("graph: unknown dtype %q", s)
}

// Shape is a tensor shape in NHWC layout ([N, H, W, C]); rank-2 shapes
// ([N, F]) are used for Dense outputs.
type Shape []int

// Elems returns the number of elements in the shape (1 for a scalar).
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape {
	out := make(Shape, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Channels returns the trailing (channel) dimension, or 0 for rank-0 shapes.
func (s Shape) Channels() int {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// String renders the shape as e.g. "[1 32 32 16]".
func (s Shape) String() string { return fmt.Sprint([]int(s)) }

// Padding selects the spatial padding policy of a convolution or pool.
type Padding int

// Padding policies.
const (
	PadSame Padding = iota
	PadValid
)

// String returns "same" or "valid".
func (p Padding) String() string {
	if p == PadValid {
		return "valid"
	}
	return "same"
}

// Attr carries per-node operation attributes. Zero values mean
// "not applicable". Only the fields relevant to the node's OpType are used.
type Attr struct {
	KernelH, KernelW int     // filter size (Conv/DW/Pool)
	StrideH, StrideW int     // strides (default 1 when zero)
	Pad              Padding // spatial padding policy
	Dilation         int     // dilation rate (default 1 when zero)
	Axis             int     // concat axis (default: channel axis)
	AliasOf          int     // node ID whose storage this node's output aliases; -1 if none
	ChanOffset       int     // channel offset of this node's slice within the aliased buffer
	InChannels       int     // input channel count consumed (Partial ops; weight accounting)
	Seed             int64   // provenance for generated nodes (debugging)
}

// Node is a single operation in the dataflow graph. A node produces exactly
// one output tensor of shape Shape and element type DType.
type Node struct {
	ID    int
	Name  string
	Op    OpType
	Shape Shape
	DType DType
	Preds []int // ordered operand node IDs
	Succs []int // consumer node IDs (maintained by Graph)
	Attr  Attr
}

// OutBytes returns the size of the node's output tensor in bytes. Nodes
// whose output aliases another node's storage (Attr.AliasOf >= 0) occupy no
// additional memory; the underlying Buffer node carries the allocation.
func (n *Node) OutBytes() int64 {
	if n.Attr.AliasOf >= 0 {
		return 0
	}
	return n.Shape.Elems() * n.DType.Size()
}

// StorageBytes returns the size of the node's backing storage, ignoring
// aliasing. For alias nodes this is the logical view size.
func (n *Node) StorageBytes() int64 {
	return n.Shape.Elems() * n.DType.Size()
}

// Graph is a DAG of Nodes. Node IDs are dense indices into Nodes.
type Graph struct {
	Name  string
	Nodes []*Node
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int {
	n := 0
	for _, v := range g.Nodes {
		n += len(v.Preds)
	}
	return n
}

// Node returns the node with the given ID, or nil if out of range.
func (g *Graph) Node(id int) *Node {
	if id < 0 || id >= len(g.Nodes) {
		return nil
	}
	return g.Nodes[id]
}

// AddNode appends a node with the given operation, name, shape and
// predecessor IDs, returning its ID. Edges from each predecessor are
// recorded in both directions. AliasOf defaults to -1 (no aliasing).
func (g *Graph) AddNode(op OpType, name string, shape Shape, preds ...int) int {
	id := len(g.Nodes)
	n := &Node{
		ID:    id,
		Name:  name,
		Op:    op,
		Shape: shape.Clone(),
		DType: Float32,
		Attr:  Attr{AliasOf: -1},
	}
	g.Nodes = append(g.Nodes, n)
	for _, p := range preds {
		g.AddEdge(p, id)
	}
	return id
}

// AddEdge inserts a directed edge from -> to. Duplicate edges are allowed in
// the IR (a node may consume the same tensor twice); the scheduler treats
// consumption per distinct physical tensor.
func (g *Graph) AddEdge(from, to int) {
	f, t := g.Nodes[from], g.Nodes[to]
	t.Preds = append(t.Preds, from)
	f.Succs = append(f.Succs, to)
}

// Inputs returns the IDs of all OpInput nodes in ID order.
func (g *Graph) Inputs() []int {
	var out []int
	for _, n := range g.Nodes {
		if n.Op == OpInput {
			out = append(out, n.ID)
		}
	}
	return out
}

// Outputs returns the IDs of all nodes with no successors, in ID order.
func (g *Graph) Outputs() []int {
	var out []int
	for _, n := range g.Nodes {
		if len(n.Succs) == 0 {
			out = append(out, n.ID)
		}
	}
	return out
}

// Indegrees returns a slice mapping node ID to its number of predecessor
// edges (counting duplicates).
func (g *Graph) Indegrees() []int {
	in := make([]int, len(g.Nodes))
	for _, n := range g.Nodes {
		in[n.ID] = len(n.Preds)
	}
	return in
}

// TotalActivationBytes returns the sum of all non-aliased output tensor
// sizes: an upper bound on any schedule's peak footprint.
func (g *Graph) TotalActivationBytes() int64 {
	var total int64
	for _, n := range g.Nodes {
		total += n.OutBytes()
	}
	return total
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := &Graph{Name: g.Name, Nodes: make([]*Node, len(g.Nodes))}
	for i, n := range g.Nodes {
		c := *n
		c.Shape = n.Shape.Clone()
		c.Preds = append([]int(nil), n.Preds...)
		c.Succs = append([]int(nil), n.Succs...)
		out.Nodes[i] = &c
	}
	return out
}

// PhysRoot resolves the physical-storage root of node id by following
// AliasOf links. A Buffer node is its own root, as is any non-aliased node.
func (g *Graph) PhysRoot(id int) int {
	seen := 0
	for g.Nodes[id].Attr.AliasOf >= 0 {
		id = g.Nodes[id].Attr.AliasOf
		seen++
		if seen > len(g.Nodes) {
			// Defensive: alias cycles are rejected by Validate.
			return id
		}
	}
	return id
}

// Consumers returns, for every node, the IDs of nodes that consume its
// physical tensor (i.e. nodes having a predecessor whose PhysRoot is this
// node). Keys are physical roots only.
func (g *Graph) Consumers() map[int][]int {
	out := make(map[int][]int)
	for _, n := range g.Nodes {
		seen := map[int]bool{}
		for _, p := range n.Preds {
			r := g.PhysRoot(p)
			if !seen[r] {
				seen[r] = true
				out[r] = append(out[r], n.ID)
			}
		}
	}
	for _, v := range out {
		sort.Ints(v)
	}
	return out
}
