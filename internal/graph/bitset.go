package graph

import (
	"math/bits"
)

// Bitset is a fixed-capacity set of node IDs backed by 64-bit words. It is
// the workhorse of the DP scheduler's signatures and of reachability
// analysis; all operations are allocation-free unless noted.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns an empty bitset able to hold IDs in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the capacity in bits.
func (b *Bitset) Len() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Clone returns a copy of the set.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// CopyFrom overwrites the receiver with o's contents (capacities must match).
func (b *Bitset) CopyFrom(o *Bitset) {
	copy(b.words, o.words)
}

// Or sets b to b ∪ o.
func (b *Bitset) Or(o *Bitset) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// AndNot sets b to b \ o.
func (b *Bitset) AndNot(o *Bitset) {
	for i, w := range o.words {
		b.words[i] &^= w
	}
}

// Equal reports whether both sets contain the same elements.
func (b *Bitset) Equal(o *Bitset) bool {
	if len(b.words) != len(o.words) {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Words exposes the backing 64-bit words, least-significant IDs first. The
// slice aliases the bitset's storage: callers mutating it mutate the set.
// This is the escape hatch the DP scheduler's slab arenas are built on; most
// callers want the element-level API instead.
func (b *Bitset) Words() []uint64 { return b.words }

// Attach repoints the bitset at an external word slice holding a set over
// [0, n), turning b into a zero-allocation *view*: no copy is made, and
// mutations flow both ways. len(words) must be (n+63)/64. The DP scheduler
// uses one reusable attached Bitset to present slab-arena regions to
// MemModel.StepDealloc without materializing per-state bitsets.
func (b *Bitset) Attach(words []uint64, n int) {
	b.words = words
	b.n = n
}

// Key returns a compact string usable as a map key. The string shares no
// storage with the bitset. The production DP scheduler indexes its frontier
// by Zobrist hash instead; Key survives as the reference implementation's
// (and any external caller's) allocation-heavy but dependency-free keying.
func (b *Bitset) Key() string {
	buf := make([]byte, 8*len(b.words))
	for i, w := range b.words {
		buf[8*i+0] = byte(w)
		buf[8*i+1] = byte(w >> 8)
		buf[8*i+2] = byte(w >> 16)
		buf[8*i+3] = byte(w >> 24)
		buf[8*i+4] = byte(w >> 32)
		buf[8*i+5] = byte(w >> 40)
		buf[8*i+6] = byte(w >> 48)
		buf[8*i+7] = byte(w >> 56)
	}
	return string(buf)
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*64 + tz)
			w &= w - 1
		}
	}
}

// Elems returns the set's elements in ascending order.
func (b *Bitset) Elems() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}
