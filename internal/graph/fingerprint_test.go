package graph

import (
	"math/rand"
	"testing"
)

func fingerprintNet() *Graph {
	b := NewBuilder("fp")
	in := b.Input(Shape{1, 8, 8, 4})
	x := b.Conv(in, 8, 3, 1, PadSame)
	y := b.Conv(in, 8, 3, 1, PadSame)
	b.Concat(x, y)
	return b.Graph()
}

func TestFingerprintDeterministic(t *testing.T) {
	g := fingerprintNet()
	f1, f2 := g.Fingerprint(), g.Fingerprint()
	if f1 != f2 {
		t.Fatalf("fingerprint not deterministic: %s vs %s", f1, f2)
	}
	if len(f1) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(f1))
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a, b := fingerprintNet(), fingerprintNet()
	b.Name = "renamed"
	for _, n := range b.Nodes {
		n.Name = "x" + n.Name
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("renaming nodes changed the structural fingerprint")
	}
	b.Nodes[1].Attr.Seed = 42
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Attr.Seed changed the structural fingerprint")
	}
}

func TestFingerprintSensitiveToStructure(t *testing.T) {
	base := fingerprintNet().Fingerprint()
	mut := func(name string, f func(g *Graph)) {
		g := fingerprintNet()
		f(g)
		if g.Fingerprint() == base {
			t.Errorf("%s: fingerprint unchanged", name)
		}
	}
	mut("shape", func(g *Graph) { g.Nodes[1].Shape[3] = 16 })
	mut("dtype", func(g *Graph) { g.Nodes[1].DType = Int8 })
	mut("op", func(g *Graph) { g.Nodes[1].Op = OpMaxPool })
	mut("kernel", func(g *Graph) { g.Nodes[1].Attr.KernelH = 5 })
	mut("alias", func(g *Graph) { g.Nodes[3].Attr.AliasOf = 1 })
	mut("extra-node", func(g *Graph) { g.AddNode(OpReLU, "t", Shape{1, 8, 8, 16}, 3) })
	mut("extra-edge", func(g *Graph) { g.AddEdge(0, 3) })
}

func TestFingerprintRandomCollisionFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		g := RandomDAG(rng, RandomDAGConfig{Nodes: 12, EdgeProb: 0.4})
		seen[g.Fingerprint()] = true
	}
	// Random graphs occasionally repeat topology+sizes; just require that
	// fingerprints distinguish the overwhelming majority.
	if len(seen) < 190 {
		t.Errorf("only %d distinct fingerprints over 200 random graphs", len(seen))
	}
}
