package exec

import (
	"fmt"

	"github.com/serenity-ml/serenity/internal/alloc"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
	"github.com/serenity-ml/serenity/internal/tensor"
)

// ArenaResult reports an arena-backed execution.
type ArenaResult struct {
	Outputs    map[string]*tensor.Tensor // canonical sink name -> copy of the sink tensor
	ArenaBytes int64
}

// RunInArena executes the scheduled graph inside a single flat arena using
// the offsets produced by the allocator — the strongest end-to-end check of
// the whole pipeline: if the schedule's liveness analysis or the planner's
// offsets were wrong anywhere, tensors would overwrite each other while
// still needed and the outputs would diverge from the reference executor.
//
// Every physical tensor is a slice view into the arena; operations compute
// into scratch and copy into their view (a real runtime would compute
// in-place; the copy keeps the oracle simple without changing aliasing
// semantics). Sink tensors are copied out before their storage is reused.
func RunInArena(g *graph.Graph, order sched.Schedule) (*ArenaResult, error) {
	m := sched.NewMemModel(g)
	if order == nil {
		o, err := g.TopoOrder()
		if err != nil {
			return nil, err
		}
		order = o
	}
	asn, err := alloc.Plan(m, order)
	if err != nil {
		return nil, err
	}
	if err := asn.Verify(); err != nil {
		return nil, err
	}
	if asn.ArenaSize%4 != 0 {
		return nil, fmt.Errorf("exec: arena size %d not float32-aligned", asn.ArenaSize)
	}
	arena := make([]float32, asn.ArenaSize/4)

	// view returns the arena-backed tensor of a physical root.
	view := func(root int) (*tensor.Tensor, error) {
		off := asn.Offsets[root]
		if off < 0 {
			return nil, fmt.Errorf("exec: root %d has no arena offset", root)
		}
		n := g.Nodes[root]
		elems := n.Shape.Elems()
		return &tensor.Tensor{
			Shape: append([]int(nil), n.Shape...),
			Data:  arena[off/4 : off/4+elems],
		}, nil
	}

	values := make(map[int]*tensor.Tensor, g.NumNodes())
	res := &ArenaResult{Outputs: map[string]*tensor.Tensor{}, ArenaBytes: asn.ArenaSize}
	sinks := map[int]bool{}
	for _, s := range g.Outputs() {
		sinks[s] = true
	}

	for _, id := range order {
		n := g.Nodes[id]
		// Compute into scratch with the reference semantics; the operands in
		// `values` are themselves arena views, so stale (overwritten) inputs
		// would corrupt the result here.
		v, err := eval(g, n, values)
		if err != nil {
			return nil, fmt.Errorf("exec: arena node %d (%s): %w", id, n.Name, err)
		}
		root := g.PhysRoot(id)
		if m.RootSize[root] > 0 {
			dst, err := view(root)
			if err != nil {
				return nil, err
			}
			if len(v.Data) != len(dst.Data) {
				return nil, fmt.Errorf("exec: node %d result %d elems, arena view %d", id, len(v.Data), len(dst.Data))
			}
			// For alias nodes eval already mutated the buffer view; this
			// copy is then a self-copy. Future readers see the arena view.
			copy(dst.Data, v.Data)
			values[id] = dst
		} else {
			values[id] = v
		}
		if sinks[id] {
			res.Outputs[CanonicalName(n.Name)] = values[id].Clone()
		}
	}
	return res, nil
}

// VerifyArenaExecution runs g both ways and returns the largest output
// divergence; zero divergence proves the schedule + allocation reuse memory
// without corrupting any still-live tensor.
func VerifyArenaExecution(g *graph.Graph, order sched.Schedule) (float64, error) {
	ref, err := Run(g, order)
	if err != nil {
		return 0, err
	}
	ar, err := RunInArena(g, order)
	if err != nil {
		return 0, err
	}
	if len(ref.Outputs) != len(ar.Outputs) {
		return 0, fmt.Errorf("exec: sink count mismatch %d vs %d", len(ref.Outputs), len(ar.Outputs))
	}
	var worst float64
	for name, want := range ref.Outputs {
		got, ok := ar.Outputs[name]
		if !ok {
			return 0, fmt.Errorf("exec: sink %q missing from arena run", name)
		}
		if d := tensor.MaxAbsDiff(want, got); d > worst {
			worst = d
		}
	}
	return worst, nil
}
