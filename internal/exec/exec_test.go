package exec

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
	"github.com/serenity-ml/serenity/internal/tensor"
)

const tol = 2e-3 // float32 accumulation-order tolerance

func concatConvGraph() *graph.Graph {
	b := graph.NewBuilder("ccg")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	x1 := b.Conv(in, 6, 3, 1, graph.PadSame)
	x2 := b.Conv(in, 8, 3, 2, graph.PadSame) // different stride branch below
	x2 = b.Conv(x2, 8, 1, 1, graph.PadSame)
	_ = x2
	x2b := b.Conv(in, 8, 3, 1, graph.PadSame)
	x3 := b.Conv(in, 10, 5, 1, graph.PadSame)
	cc := b.Concat(x1, x2b, x3)
	y := b.Conv(cc, 16, 3, 1, graph.PadSame)
	b.ReLU(y)
	return b.Graph()
}

func TestRunProducesAllValues(t *testing.T) {
	g := concatConvGraph()
	res, err := Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != g.NumNodes() {
		t.Fatalf("values = %d, want %d", len(res.Values), g.NumNodes())
	}
	for id, v := range res.Values {
		if int64(v.Elems())*4 != g.Nodes[id].StorageBytes() {
			t.Errorf("node %d tensor bytes %d != declared %d", id, v.Elems()*4, g.Nodes[id].StorageBytes())
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	g := concatConvGraph()
	r1, err := Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := Run(g, nil)
	for name, t1 := range r1.Outputs {
		if d := tensor.MaxAbsDiff(t1, r2.Outputs[name]); d != 0 {
			t.Errorf("nondeterministic output %q (diff %g)", name, d)
		}
	}
}

// TestChannelWiseRewritePreservesOutputs is the paper's "mathematical
// integrity" claim (Equations 3-6) verified numerically.
func TestChannelWiseRewritePreservesOutputs(t *testing.T) {
	g := concatConvGraph()
	rw, ms, err := rewrite.Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Fatal("no matches found")
	}
	diff, err := MaxOutputDiff(g, rw)
	if err != nil {
		t.Fatal(err)
	}
	if diff > tol {
		t.Errorf("outputs diverge after channel-wise rewrite: max diff %g", diff)
	}
}

// TestKernelWiseRewritePreservesOutputs verifies Equations 7-8.
func TestKernelWiseRewritePreservesOutputs(t *testing.T) {
	b := graph.NewBuilder("cdw")
	in := b.Input(graph.Shape{1, 10, 10, 3})
	x1 := b.Conv(in, 5, 3, 1, graph.PadSame)
	x2 := b.Conv(in, 7, 3, 1, graph.PadSame)
	x3 := b.Conv(in, 4, 1, 1, graph.PadSame)
	cc := b.Concat(x1, x2, x3)
	y := b.DepthwiseConv(cc, 3, 1, graph.PadSame)
	b.ReLU(y)
	g := b.Graph()

	rw, ms, err := rewrite.Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Kind != rewrite.KernelWise {
		t.Fatalf("matches = %+v", ms)
	}
	diff, err := MaxOutputDiff(g, rw)
	if err != nil {
		t.Fatal(err)
	}
	if diff > tol {
		t.Errorf("outputs diverge after kernel-wise rewrite: max diff %g", diff)
	}
}

// TestStridedDepthwiseRewrite exercises stride-2 kernel-wise partitioning.
func TestStridedDepthwiseRewrite(t *testing.T) {
	b := graph.NewBuilder("cdw-s2")
	in := b.Input(graph.Shape{1, 12, 12, 3})
	x1 := b.Conv(in, 6, 3, 1, graph.PadSame)
	x2 := b.Conv(in, 6, 3, 1, graph.PadSame)
	y := b.DepthwiseConv(b.Concat(x1, x2), 3, 2, graph.PadSame)
	b.ReLU(y)
	g := b.Graph()
	rw, _, err := rewrite.Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := MaxOutputDiff(g, rw)
	if err != nil {
		t.Fatal(err)
	}
	if diff > tol {
		t.Errorf("strided rewrite diverges: %g", diff)
	}
}

// TestRewritePreservesOutputsUnderAnySchedule: accumulation order varies
// with the schedule; outputs must not.
func TestRewritePreservesOutputsUnderAnySchedule(t *testing.T) {
	g := concatConvGraph()
	rw, _, err := rewrite.Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 10; trial++ {
		order := sched.RandomTopo(rw, rng)
		res, err := Run(rw, order)
		if err != nil {
			t.Fatal(err)
		}
		for name, want := range base.Outputs {
			got, ok := res.Outputs[name]
			if !ok {
				t.Fatalf("sink %q missing", name)
			}
			if d := tensor.MaxAbsDiff(want, got); d > tol {
				t.Fatalf("trial %d: output %q diff %g", trial, name, d)
			}
		}
	}
}

// TestLiveProfileMatchesAnalyticModel cross-checks the executor's actual
// allocation accounting against internal/sched's prediction.
func TestLiveProfileMatchesAnalyticModel(t *testing.T) {
	for _, build := range []func() *graph.Graph{concatConvGraph} {
		g := build()
		rw, _, err := rewrite.Rewrite(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, gg := range []*graph.Graph{g, rw} {
			m := sched.NewMemModel(gg)
			r := dp.Optimal(m)
			if r.Flag != dp.FlagSolution {
				t.Fatal("DP failed")
			}
			sim, err := m.Simulate(r.Order)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(gg, r.Order)
			if err != nil {
				t.Fatal(err)
			}
			if res.PeakLive != sim.Peak {
				t.Errorf("%s: executor peak %d != model %d", gg.Name, res.PeakLive, sim.Peak)
			}
			for i := range sim.Profile {
				if res.LiveProfile[i] != sim.Profile[i] {
					t.Fatalf("%s step %d: live %d != model %d", gg.Name, i, res.LiveProfile[i], sim.Profile[i])
				}
			}
		}
	}
}

func TestRunRejectsInvalidOrder(t *testing.T) {
	g := concatConvGraph()
	if _, err := Run(g, sched.Schedule{0, 0, 0}); err == nil {
		t.Error("invalid order accepted")
	}
}

func TestCanonicalName(t *testing.T) {
	cases := map[string]string{
		"conv_1":       "conv_1",
		"conv_1#join":  "conv_1",
		"conv_1#part0": "conv_1",
		"conv_1#buf":   "conv_1",
		"in#boundary":  "in",
	}
	for in, want := range cases {
		if got := CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestAllOpsExecutable covers every op kind the models emit.
func TestAllOpsExecutable(t *testing.T) {
	b := graph.NewBuilder("zoo")
	in := b.Input(graph.Shape{1, 8, 8, 4})
	c := b.Conv(in, 8, 3, 1, graph.PadSame)
	d := b.DepthwiseConv(c, 3, 1, graph.PadSame)
	p := b.PointwiseConv(d, 8)
	s := b.SepConv(p, 8, 3, 1, graph.PadSame)
	dl := b.DilConv(s, 8, 3, 1, 2, graph.PadSame)
	a := b.Add(s, dl)
	mu := b.Mul(a, s)
	r := b.ReLU(mu)
	sg := b.Sigmoid(r)
	mp := b.MaxPool(sg, 2, 2, graph.PadSame)
	ap := b.AvgPool(sg, 2, 2, graph.PadSame)
	cc := b.Concat(mp, ap)
	gp := b.GlobalAvgPool(cc)
	dn := b.Dense(gp, 10)
	b.Output(dn)
	g := b.Graph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Values[dn]
	if out.Shape[1] != 10 {
		t.Errorf("dense output shape %v", out.Shape)
	}
	// Sanity: non-degenerate values.
	var nonzero bool
	for _, v := range out.Data {
		if v != 0 {
			nonzero = true
		}
		if v != v { // NaN
			t.Fatal("NaN in output")
		}
	}
	if !nonzero {
		t.Error("all-zero network output")
	}
}
