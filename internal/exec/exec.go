// Package exec is the reference executor: it runs a scheduled graph on real
// float32 tensors. It serves two verification purposes:
//
//  1. Arithmetic identity of graph rewriting — weights are generated
//     deterministically per node (and per input channel, so partial
//     convolutions slice the exact weights the original convolution used),
//     letting tests assert that a rewritten graph computes the same outputs.
//
//  2. Cross-checking the analytic memory model — the executor frees tensors
//     eagerly when their consumers have run and reports the actual live-byte
//     profile, which must match internal/sched's prediction step for step.
package exec

import (
	"fmt"
	"strings"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
	"github.com/serenity-ml/serenity/internal/tensor"
)

// mix folds an absolute channel index into a weight seed so that weight
// slices are position-independent (see convWeights).
func mix(seed int64, channel int) int64 {
	x := uint64(seed) ^ (uint64(channel+1) * 0x9e3779b97f4a7c15)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	if x == 0 {
		x = 1
	}
	return int64(x)
}

// convWeights generates the weight block W[kh][kw][inCount][outC] covering
// absolute input channels [inFrom, inFrom+inCount) of the convolution with
// the given seed. Generating per absolute channel makes slices of a larger
// weight tensor bit-identical regardless of how the input is partitioned.
func convWeights(seed int64, kh, kw, inFrom, inCount, outC int) *tensor.Tensor {
	w := tensor.New(kh, kw, inCount, outC)
	for k := 0; k < inCount; k++ {
		chw := tensor.New(kh, kw, 1, outC)
		chw.FillRandom(mix(seed, inFrom+k))
		for i := 0; i < kh; i++ {
			for j := 0; j < kw; j++ {
				for o := 0; o < outC; o++ {
					w.Data[((i*kw+j)*inCount+k)*outC+o] = chw.Data[(i*kw+j)*outC+o]
				}
			}
		}
	}
	return w
}

// dwWeights generates depthwise weights W[kh][kw][count] for absolute
// channels [from, from+count), again per-channel deterministic.
func dwWeights(seed int64, kh, kw, from, count int) *tensor.Tensor {
	w := tensor.New(kh, kw, count)
	for k := 0; k < count; k++ {
		chw := tensor.New(kh, kw)
		chw.FillRandom(mix(seed, from+k))
		for i := 0; i < kh*kw; i++ {
			w.Data[i*count+k] = chw.Data[i]
		}
	}
	return w
}

// Result of executing a graph.
type Result struct {
	Values      map[int]*tensor.Tensor    // node ID -> output tensor (aliases share storage)
	Outputs     map[string]*tensor.Tensor // canonical sink name -> tensor
	LiveProfile []int64                   // actual live bytes after each step
	PeakLive    int64
}

// Run executes g in the given order. If order is nil, a deterministic
// topological order is used.
func Run(g *graph.Graph, order sched.Schedule) (*Result, error) {
	if order == nil {
		o, err := g.TopoOrder()
		if err != nil {
			return nil, err
		}
		order = o
	}
	m := sched.NewMemModel(g)
	if err := m.CheckValid(order); err != nil {
		return nil, err
	}

	res := &Result{
		Values:  make(map[int]*tensor.Tensor, g.NumNodes()),
		Outputs: map[string]*tensor.Tensor{},
	}
	// Liveness bookkeeping mirroring the analytic model.
	remaining := make([]int, g.NumNodes())
	for r, cs := range m.Consumers {
		remaining[r] = len(cs)
	}
	var live int64

	for _, id := range order {
		n := g.Nodes[id]
		v, err := eval(g, n, res.Values)
		if err != nil {
			return nil, fmt.Errorf("exec: node %d (%s %s): %w", id, n.Name, n.Op, err)
		}
		res.Values[id] = v
		live += m.Alloc[id]
		if live > res.PeakLive {
			res.PeakLive = live
		}
		for _, r := range m.PredRoots[id] {
			remaining[r]--
			if remaining[r] == 0 {
				live -= m.RootSize[r]
				// A production runtime would release the tensor here; the
				// oracle keeps values for later comparison.
			}
		}
		res.LiveProfile = append(res.LiveProfile, live)
	}
	for _, sink := range g.Outputs() {
		res.Outputs[CanonicalName(g.Nodes[sink].Name)] = res.Values[sink]
	}
	return res, nil
}

// CanonicalName strips rewrite suffixes (#join, #buf, #partN, #boundary) so
// sinks can be matched across graph variants.
func CanonicalName(name string) string {
	if i := strings.IndexByte(name, '#'); i >= 0 {
		return name[:i]
	}
	return name
}

func eval(g *graph.Graph, n *graph.Node, values map[int]*tensor.Tensor) (*tensor.Tensor, error) {
	in := func(i int) *tensor.Tensor { return values[n.Preds[i]] }
	seed := rewrite.WeightSeed(n)
	a := n.Attr
	stride := a.StrideH
	same := a.Pad == graph.PadSame

	switch n.Op {
	case graph.OpInput:
		t := tensor.New(n.Shape...)
		t.FillRandom(seed)
		return t, nil

	case graph.OpConv, graph.OpPointwiseConv:
		x := in(0)
		inC := x.Shape[len(x.Shape)-1]
		w := convWeights(seed, a.KernelH, a.KernelW, 0, inC, n.Shape.Channels())
		return tensor.Conv2D(x, w, stride, a.Dilation, same), nil

	case graph.OpDepthwiseConv:
		x := in(0)
		c := x.Shape[len(x.Shape)-1]
		w := dwWeights(seed, a.KernelH, a.KernelW, 0, c)
		return tensor.DepthwiseConv2D(x, w, stride, a.Dilation, same), nil

	case graph.OpSepConv, graph.OpDilConv:
		x := in(0)
		c := x.Shape[len(x.Shape)-1]
		dw := dwWeights(seed, a.KernelH, a.KernelW, 0, c)
		mid := tensor.DepthwiseConv2D(x, dw, stride, a.Dilation, same)
		pw := convWeights(mix(seed, 1<<20), 1, 1, 0, c, n.Shape.Channels())
		return tensor.Conv2D(mid, pw, 1, 1, true), nil

	case graph.OpAdd:
		xs := make([]*tensor.Tensor, len(n.Preds))
		for i := range n.Preds {
			xs[i] = in(i)
		}
		return tensor.Add(xs...), nil

	case graph.OpMul:
		return tensor.Mul(in(0), in(1)), nil

	case graph.OpReLU:
		return tensor.ReLU(in(0)), nil

	case graph.OpSigmoid:
		return tensor.Sigmoid(in(0)), nil

	case graph.OpConcat:
		xs := make([]*tensor.Tensor, len(n.Preds))
		for i := range n.Preds {
			xs[i] = in(i)
		}
		return tensor.ConcatChannels(xs...), nil

	case graph.OpMaxPool:
		return tensor.MaxPool(in(0), a.KernelH, stride, same), nil

	case graph.OpAvgPool:
		return tensor.AvgPool(in(0), a.KernelH, stride, same), nil

	case graph.OpGlobalAvgPool:
		return tensor.GlobalAvgPool(in(0)), nil

	case graph.OpDense:
		x := in(0)
		inF := x.Elems() / x.Shape[0]
		w := tensor.RandomWeights(seed, inF, n.Shape[1])
		return tensor.Dense(x, w), nil

	case graph.OpIdentity, graph.OpOutput:
		if a.AliasOf >= 0 {
			return values[g.PhysRoot(n.ID)], nil
		}
		return in(0).Clone(), nil

	case graph.OpBuffer:
		return tensor.New(n.Shape...), nil

	case graph.OpPartialConv:
		x := in(0)
		buf := values[g.PhysRoot(n.ID)]
		if buf == nil {
			return nil, fmt.Errorf("buffer not materialized")
		}
		w := convWeights(seed, a.KernelH, a.KernelW, a.ChanOffset, a.InChannels, n.Shape.Channels())
		partial := tensor.Conv2D(x, w, stride, a.Dilation, same)
		tensor.AccumulateInto(buf, partial)
		return buf, nil

	case graph.OpPartialDWConv:
		x := in(0)
		buf := values[g.PhysRoot(n.ID)]
		if buf == nil {
			return nil, fmt.Errorf("buffer not materialized")
		}
		w := dwWeights(seed, a.KernelH, a.KernelW, a.ChanOffset, a.InChannels)
		slice := tensor.DepthwiseConv2D(x, w, stride, a.Dilation, same)
		tensor.CopyChannels(buf, slice, a.ChanOffset)
		return buf, nil

	default:
		return nil, fmt.Errorf("unsupported op %v", n.Op)
	}
}

// MaxOutputDiff runs both graphs (with deterministic orders) and returns the
// largest elementwise difference across all matched sink tensors. Sinks are
// matched by canonical name; unmatched sinks yield an error.
func MaxOutputDiff(g1, g2 *graph.Graph) (float64, error) {
	r1, err := Run(g1, nil)
	if err != nil {
		return 0, err
	}
	r2, err := Run(g2, nil)
	if err != nil {
		return 0, err
	}
	if len(r1.Outputs) != len(r2.Outputs) {
		return 0, fmt.Errorf("exec: sink count mismatch %d vs %d", len(r1.Outputs), len(r2.Outputs))
	}
	var worst float64
	for name, t1 := range r1.Outputs {
		t2, ok := r2.Outputs[name]
		if !ok {
			return 0, fmt.Errorf("exec: sink %q missing in second graph", name)
		}
		if d := tensor.MaxAbsDiff(t1, t2); d > worst {
			worst = d
		}
	}
	return worst, nil
}
