package exec

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
)

// TestArenaExecutionMatchesReference is the end-to-end proof that the
// optimal schedule + arena offsets reuse memory without corrupting live
// tensors: the network runs inside one flat buffer and produces the same
// outputs as the never-freeing reference executor.
func TestArenaExecutionMatchesReference(t *testing.T) {
	g := concatConvGraph()
	r := dp.Optimal(sched.NewMemModel(g))
	if r.Flag != dp.FlagSolution {
		t.Fatal("DP failed")
	}
	diff, err := VerifyArenaExecution(g, r.Order)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("arena execution diverged: %g", diff)
	}
}

func TestArenaExecutionRewrittenGraph(t *testing.T) {
	g := concatConvGraph()
	rw, _, err := rewrite.Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	r := dp.Optimal(sched.NewMemModel(rw))
	diff, err := VerifyArenaExecution(rw, r.Order)
	if err != nil {
		t.Fatal(err)
	}
	if diff != 0 {
		t.Errorf("rewritten arena execution diverged: %g", diff)
	}
	// And the rewritten arena outputs still match the ORIGINAL graph's
	// reference outputs (full pipeline equivalence through real memory).
	ref, err := Run(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := RunInArena(rw, r.Order)
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range ref.Outputs {
		got, ok := ar.Outputs[name]
		if !ok {
			t.Fatalf("sink %q missing", name)
		}
		if d := maxDiff(want.Data, got.Data); d > tol {
			t.Errorf("sink %q: rewritten arena diff %g", name, d)
		}
	}
}

func maxDiff(a, b []float32) float64 {
	if len(a) != len(b) {
		return 1e30
	}
	var m float64
	for i := range a {
		d := float64(a[i] - b[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

func TestArenaExecutionUnderRandomSchedules(t *testing.T) {
	g := concatConvGraph()
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 8; trial++ {
		order := sched.RandomTopo(g, rng)
		diff, err := VerifyArenaExecution(g, order)
		if err != nil {
			t.Fatal(err)
		}
		if diff != 0 {
			t.Fatalf("trial %d: arena diverged under random schedule: %g", trial, diff)
		}
	}
}

func TestArenaSmallerThanTotalActivations(t *testing.T) {
	g := concatConvGraph()
	r := dp.Optimal(sched.NewMemModel(g))
	ar, err := RunInArena(g, r.Order)
	if err != nil {
		t.Fatal(err)
	}
	if total := g.TotalActivationBytes(); ar.ArenaBytes >= total {
		t.Errorf("arena %d did not reuse memory (total %d)", ar.ArenaBytes, total)
	}
}

func TestArenaRejectsInvalidOrder(t *testing.T) {
	g := concatConvGraph()
	if _, err := RunInArena(g, sched.Schedule{0, 0}); err == nil {
		t.Error("invalid order accepted")
	}
}

func TestGreedySchedulerOnExecGraphs(t *testing.T) {
	// Greedy is valid and between optimal and worst-case on this workload.
	g := concatConvGraph()
	m := sched.NewMemModel(g)
	order, peak, err := sched.GreedyMemory(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckValid(order); err != nil {
		t.Fatal(err)
	}
	if got := m.MustPeak(order); got != peak {
		t.Errorf("reported %d != simulated %d", peak, got)
	}
	opt := dp.Optimal(m)
	if peak < opt.Peak {
		t.Errorf("greedy %d beat the optimum %d", peak, opt.Peak)
	}
}
