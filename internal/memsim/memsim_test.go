package memsim

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

func bytesShape(b int64) graph.Shape { return graph.Shape{int(b / 4)} }

func chain() (*sched.MemModel, sched.Schedule) {
	g := graph.New("chain")
	a := g.AddNode(graph.OpInput, "in", bytesShape(100))
	b := g.AddNode(graph.OpReLU, "r1", bytesShape(100), a)
	g.AddNode(graph.OpReLU, "r2", bytesShape(100), b)
	return sched.NewMemModel(g), sched.Schedule{0, 1, 2}
}

func TestZeroTrafficWhenEverythingFits(t *testing.T) {
	m, order := chain()
	tr, err := Simulate(m, order, Config{OnChipBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != 0 {
		t.Errorf("traffic = %+v, want zero", tr)
	}
	ok, err := ZeroTraffic(m, order, Config{OnChipBytes: 4096})
	if err != nil || !ok {
		t.Errorf("ZeroTraffic = %v, %v", ok, err)
	}
}

func TestBypassWhenTensorLargerThanSRAM(t *testing.T) {
	m, order := chain()
	tr, err := Simulate(m, order, Config{OnChipBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Every tensor (100B) exceeds 64B SRAM: each touch streams 100B.
	// Touches: write in, read in + write r1, read r1 + write r2 = 5.
	if tr.BypassBytes != 500 {
		t.Errorf("bypass = %d, want 500 (traffic %+v)", tr.BypassBytes, tr)
	}
}

// spillGraph forces a capacity conflict: tensor A is used early and late,
// with a bulky middle section that exceeds SRAM when A stays resident.
func spillGraph() (*sched.MemModel, sched.Schedule) {
	g := graph.New("spill")
	a := g.AddNode(graph.OpInput, "A", bytesShape(100))
	b := g.AddNode(graph.OpReLU, "B", bytesShape(100), a)
	c := g.AddNode(graph.OpReLU, "C", bytesShape(100), b)
	d := g.AddNode(graph.OpReLU, "D", bytesShape(100), c)
	g.AddNode(graph.OpAdd, "E", bytesShape(100), d, a)
	return sched.NewMemModel(g), sched.Schedule{a, b, c, d, 4}
}

func TestSpillAndRefill(t *testing.T) {
	m, order := spillGraph()
	// SRAM of 150B: A cannot coexist with the 100B working tensors, so it
	// is spilled (dirty) and refetched for E.
	tr, err := Simulate(m, order, Config{OnChipBytes: 150})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() == 0 {
		t.Fatal("expected spill traffic")
	}
	// A is dirty (written on-chip), spilled once (100B writeback) and
	// refetched once for E (100B fetch).
	if tr.WritebackBytes != 100 || tr.FetchBytes != 100 {
		t.Errorf("traffic = %+v, want 100/100", tr)
	}
}

// uniformDAG yields a DAG whose tensors all have the same size; Belady's
// farthest-in-future rule is provably optimal (and monotone in capacity)
// only in this uniform-block regime.
func uniformDAG(rng *rand.Rand, nodes int) *sched.MemModel {
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{
		Nodes: nodes, EdgeProb: 0.2, MinBytes: 256, MaxBytes: 256,
	})
	return sched.NewMemModel(g)
}

func TestBeladyNeverWorseThanLRUOnUniformTensors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := uniformDAG(rng, 22)
		order := sched.RandomTopo(m.G, rng)
		for _, cap := range []int64{256, 1024, 4096} {
			bel, err := Simulate(m, order, Config{OnChipBytes: cap, Policy: Belady})
			if err != nil {
				t.Fatal(err)
			}
			lru, err := Simulate(m, order, Config{OnChipBytes: cap, Policy: LRU})
			if err != nil {
				t.Fatal(err)
			}
			if bel.Misses > lru.Misses {
				t.Fatalf("trial %d cap %d: belady misses %d > lru %d", trial, cap, bel.Misses, lru.Misses)
			}
		}
	}
}

func TestMissesMonotoneInCapacityOnUniformTensors(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		m := uniformDAG(rng, 20)
		order := sched.RandomTopo(m.G, rng)
		prev := int(^uint(0) >> 1)
		for _, cap := range []int64{512, 1024, 2048, 4096, 1 << 20} {
			tr, err := Simulate(m, order, Config{OnChipBytes: cap})
			if err != nil {
				t.Fatal(err)
			}
			if tr.Misses > prev {
				t.Fatalf("trial %d: misses grew with capacity (%d -> %d at %d)",
					trial, prev, tr.Misses, cap)
			}
			prev = tr.Misses
		}
		// And ample capacity means zero traffic outright.
		tr, _ := Simulate(m, order, Config{OnChipBytes: m.G.TotalActivationBytes()})
		if tr.Total() != 0 {
			t.Fatalf("trial %d: traffic %d with ample capacity", trial, tr.Total())
		}
	}
}

func TestLowerPeakScheduleLowersTraffic(t *testing.T) {
	// The paper's Figure 11 premise: a schedule with a lower footprint
	// spills less at a given SRAM size. Construct a graph where order
	// matters: wide fan-out consumed pairwise.
	g := graph.New("wide")
	in := g.AddNode(graph.OpInput, "in", bytesShape(64))
	var mids []int
	for i := 0; i < 6; i++ {
		mids = append(mids, g.AddNode(graph.OpReLU, "", bytesShape(256), in))
	}
	var outs []int
	for i := 0; i < 6; i++ {
		outs = append(outs, g.AddNode(graph.OpReLU, "", bytesShape(32), mids[i]))
	}
	g.AddNode(graph.OpAdd, "sink", bytesShape(32), outs...)
	for _, n := range g.Nodes {
		if n.Name == "" {
			n.Name = n.Op.String()
		}
	}
	m := sched.NewMemModel(g)

	// Bad order: all mids first (peak ~6*256); good: mid_i, out_i pairs.
	bad := sched.Schedule{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13}
	good := sched.Schedule{0, 1, 7, 2, 8, 3, 9, 4, 10, 5, 11, 6, 12, 13}
	if err := m.CheckValid(bad); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckValid(good); err != nil {
		t.Fatal(err)
	}
	cfg := Config{OnChipBytes: 640}
	trBad, _ := Simulate(m, bad, cfg)
	trGood, _ := Simulate(m, good, cfg)
	if trGood.Total() >= trBad.Total() {
		t.Errorf("good order traffic %d !< bad order %d", trGood.Total(), trBad.Total())
	}
	if trGood.Total() != 0 {
		t.Errorf("good order should fit on-chip entirely, traffic %+v", trGood)
	}
}

func TestSimulateRejectsBadInput(t *testing.T) {
	m, order := chain()
	if _, err := Simulate(m, order, Config{OnChipBytes: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Simulate(m, sched.Schedule{0}, Config{OnChipBytes: 100}); err == nil {
		t.Error("invalid order accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if Belady.String() != "belady" || LRU.String() != "lru" {
		t.Error("policy names")
	}
}
