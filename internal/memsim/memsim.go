// Package memsim models a two-level memory hierarchy (on-chip SRAM backed
// by off-chip DRAM) executing a scheduled graph, and measures the off-chip
// traffic a schedule induces. Replacement is Belady's clairvoyant optimal
// algorithm, exactly as the paper uses for Figure 11 ("since we know the
// entire schedule a priori, we use Belady's optimal algorithm ... for
// measuring the off-chip memory communication").
//
// Units are whole activation tensors (the scheduler's allocation
// granularity). Weights are excluded, matching the paper's activation-only
// accounting: a device whose activations fit on-chip reports zero traffic
// ("SERENITY removes off-chip communication" markers in Figure 11).
package memsim

import (
	"fmt"

	"github.com/serenity-ml/serenity/internal/sched"
)

// Policy selects the replacement policy.
type Policy int

// Replacement policies. Belady is the paper's choice; LRU exists for the
// ablation benchmarks.
const (
	Belady Policy = iota
	LRU
)

// String names the policy.
func (p Policy) String() string {
	if p == LRU {
		return "lru"
	}
	return "belady"
}

// Config parameterizes the hierarchy.
type Config struct {
	OnChipBytes int64
	Policy      Policy
}

// Traffic aggregates the off-chip bytes moved while executing a schedule.
type Traffic struct {
	FetchBytes     int64 // DRAM -> SRAM refills (re-reads of spilled tensors)
	WritebackBytes int64 // SRAM -> DRAM spills of still-live tensors
	BypassBytes    int64 // tensors larger than SRAM, streamed per access
	Accesses       int   // total tensor touches
	Misses         int   // touches that moved data
}

// Total returns all off-chip bytes moved.
func (t *Traffic) Total() int64 { return t.FetchBytes + t.WritebackBytes + t.BypassBytes }

// access is one tensor touch in the trace.
type access struct {
	root  int
	write bool
}

// trace builds the tensor-touch sequence of order: executing node u writes
// its output storage and reads each distinct predecessor tensor.
func trace(m *sched.MemModel, order sched.Schedule) []access {
	var tr []access
	for _, u := range order {
		for _, r := range m.PredRoots[u] {
			tr = append(tr, access{root: r, write: false})
		}
		root := m.Root[u]
		if m.RootSize[root] > 0 {
			tr = append(tr, access{root: root, write: true})
		}
	}
	return tr
}

// Simulate executes order against the hierarchy and returns the traffic.
func Simulate(m *sched.MemModel, order sched.Schedule, cfg Config) (*Traffic, error) {
	if err := m.CheckValid(order); err != nil {
		return nil, err
	}
	if cfg.OnChipBytes <= 0 {
		return nil, fmt.Errorf("memsim: on-chip capacity must be positive")
	}
	tr := trace(m, order)

	// nextUse[i] = index of the next access to the same tensor, or infinity.
	const inf = int(^uint(0) >> 1)
	nextUse := make([]int, len(tr))
	last := map[int]int{}
	for i := len(tr) - 1; i >= 0; i-- {
		if j, ok := last[tr[i].root]; ok {
			nextUse[i] = j
		} else {
			nextUse[i] = inf
		}
		last[tr[i].root] = i
	}

	// Remaining-consumer counts determine tensor death (scratch semantics:
	// dead tensors vanish without writeback).
	remaining := make([]int, m.G.NumNodes())
	for r, cs := range m.Consumers {
		remaining[r] = len(cs)
	}

	type line struct {
		size    int64
		dirty   bool
		nextUse int
		lastHit int // for LRU
	}
	resident := map[int]*line{}
	var used int64
	out := &Traffic{}

	evictOne := func(now int) {
		victim := -1
		switch cfg.Policy {
		case Belady:
			far := -1
			for r, ln := range resident {
				if ln.nextUse > far {
					far = ln.nextUse
					victim = r
				}
			}
		case LRU:
			oldest := inf
			for r, ln := range resident {
				if ln.lastHit < oldest {
					oldest = ln.lastHit
					victim = r
				}
			}
		}
		ln := resident[victim]
		if ln.dirty {
			out.WritebackBytes += ln.size
		}
		used -= ln.size
		delete(resident, victim)
	}

	for i, a := range tr {
		size := m.RootSize[a.root]
		out.Accesses++
		if size > cfg.OnChipBytes {
			// Tensor can never fit: streamed directly to/from DRAM.
			out.BypassBytes += size
			out.Misses++
		} else if ln, ok := resident[a.root]; ok {
			ln.nextUse = nextUse[i]
			ln.lastHit = i
			if a.write {
				ln.dirty = true
			}
		} else {
			for used+size > cfg.OnChipBytes {
				evictOne(i)
			}
			if !a.write {
				// Read miss: the tensor was spilled earlier (or bypass-
				// written); refill from DRAM.
				out.FetchBytes += size
				out.Misses++
			}
			if a.write {
				// Write miss allocates without fetching (whole-tensor write).
				out.Misses++
			}
			resident[a.root] = &line{size: size, dirty: a.write, nextUse: nextUse[i], lastHit: i}
			used += size
		}

		// Death check: a read that exhausts the consumers frees the tensor.
		if !a.write {
			remaining[a.root]--
			if remaining[a.root] == 0 {
				if ln, ok := resident[a.root]; ok {
					used -= ln.size
					delete(resident, a.root)
				}
			}
		}
	}
	return out, nil
}

// ZeroTraffic reports whether order incurs no off-chip traffic under cfg —
// the paper's "only SERENITY fits on-chip" condition.
func ZeroTraffic(m *sched.MemModel, order sched.Schedule, cfg Config) (bool, error) {
	t, err := Simulate(m, order, cfg)
	if err != nil {
		return false, err
	}
	return t.Total() == 0, nil
}
