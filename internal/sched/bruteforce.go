package sched

import (
	"errors"

	"github.com/serenity-ml/serenity/internal/graph"
)

// ErrTooLarge is returned by BruteForce for graphs beyond its node limit.
var ErrTooLarge = errors.New("sched: graph too large for brute force")

// BruteForceLimit caps the graph size BruteForce will attempt; the search is
// Θ(|V|!)-flavoured and exists purely as an optimality oracle for tests.
const BruteForceLimit = 14

// BruteForce exhaustively enumerates topological orders (with
// branch-and-bound pruning on the running peak) and returns an order with
// the minimum peak activation footprint. It is the test oracle for the DP
// scheduler's optimality proof (supplementary material, Theorem 1).
func BruteForce(m *MemModel) (Schedule, int64, error) {
	g := m.G
	n := g.NumNodes()
	if n > BruteForceLimit {
		return nil, 0, ErrTooLarge
	}
	indeg := g.Indegrees()
	remaining := make([]int, n)
	for r, cs := range m.Consumers {
		remaining[r] = len(cs)
	}

	best := int64(1) << 62
	var bestOrder Schedule
	cur := make(Schedule, 0, n)
	scheduled := graph.NewBitset(n)

	var rec func(mu, peak int64)
	rec = func(mu, peak int64) {
		if peak >= best {
			return // bound: can only get worse
		}
		if len(cur) == n {
			best = peak
			bestOrder = append(Schedule(nil), cur...)
			return
		}
		for u := 0; u < n; u++ {
			if scheduled.Has(u) || indeg[u] != 0 {
				continue
			}
			// Apply.
			muU := mu + m.Alloc[u]
			peakU := peak
			if muU > peakU {
				peakU = muU
			}
			scheduled.Set(u)
			cur = append(cur, u)
			var freed int64
			for _, r := range m.PredRoots[u] {
				remaining[r]--
				if remaining[r] == 0 {
					freed += m.RootSize[r]
				}
			}
			for _, s := range g.Nodes[u].Succs {
				indeg[s]--
			}

			rec(muU-freed, peakU)

			// Undo.
			for _, s := range g.Nodes[u].Succs {
				indeg[s]++
			}
			for _, r := range m.PredRoots[u] {
				remaining[r]++
			}
			cur = cur[:len(cur)-1]
			scheduled.Clear(u)
		}
	}
	rec(0, 0)
	if bestOrder == nil {
		return nil, 0, graph.ErrCycle
	}
	return bestOrder, best, nil
}

// CountTopoOrders counts the topological orders of g (no pruning); a helper
// for tests quantifying the search-space sizes quoted in Section 2.3.
func CountTopoOrders(g *graph.Graph, limit int64) int64 {
	n := g.NumNodes()
	indeg := g.Indegrees()
	scheduled := graph.NewBitset(n)
	var count int64
	var rec func(done int)
	rec = func(done int) {
		if count >= limit {
			return
		}
		if done == n {
			count++
			return
		}
		for u := 0; u < n; u++ {
			if scheduled.Has(u) || indeg[u] != 0 {
				continue
			}
			scheduled.Set(u)
			for _, s := range g.Nodes[u].Succs {
				indeg[s]--
			}
			rec(done + 1)
			for _, s := range g.Nodes[u].Succs {
				indeg[s]++
			}
			scheduled.Clear(u)
		}
	}
	rec(0)
	return count
}
