package sched

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
)

func TestGreedyMemoryValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 20, EdgeProb: 0.2})
		m := NewMemModel(g)
		order, peak, err := GreedyMemory(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckValid(order); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := m.MustPeak(order); got != peak {
			t.Fatalf("trial %d: reported %d != simulated %d", trial, peak, got)
		}
	}
}

func TestGreedyMemoryNeverBelowOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	var ties, total int
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 10, EdgeProb: 0.25})
		m := NewMemModel(g)
		_, opt, err := BruteForce(m)
		if err != nil {
			t.Fatal(err)
		}
		_, greedy, err := GreedyMemory(m)
		if err != nil {
			t.Fatal(err)
		}
		if greedy < opt {
			t.Fatalf("trial %d: greedy %d below optimal %d", trial, greedy, opt)
		}
		total++
		if greedy == opt {
			ties++
		}
	}
	t.Logf("greedy matched the optimum on %d/%d random DAGs", ties, total)
}

func TestGreedyMemoryDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 25, EdgeProb: 0.15})
	m := NewMemModel(g)
	o1, _, _ := GreedyMemory(m)
	o2, _, _ := GreedyMemory(m)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("greedy not deterministic")
		}
	}
}

// TestGreedyMemoryIsSuboptimalSomewhere documents why the exact DP matters:
// there exist graphs where the one-step-lookahead heuristic is strictly
// worse than the optimum.
func TestGreedyMemoryIsSuboptimalSomewhere(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 400; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 12, EdgeProb: 0.25})
		m := NewMemModel(g)
		_, opt, err := BruteForce(m)
		if err != nil {
			t.Fatal(err)
		}
		_, greedy, err := GreedyMemory(m)
		if err != nil {
			t.Fatal(err)
		}
		if greedy > opt {
			t.Logf("found after %d trials: greedy %d vs optimal %d", trial+1, greedy, opt)
			return
		}
	}
	t.Skip("greedy matched optimal on all sampled DAGs (heuristic unusually lucky)")
}
