package sched

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
)

func TestGreedyMemoryValidAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 20, EdgeProb: 0.2})
		m := NewMemModel(g)
		order, peak, err := GreedyMemory(m)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.CheckValid(order); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := m.MustPeak(order); got != peak {
			t.Fatalf("trial %d: reported %d != simulated %d", trial, peak, got)
		}
	}
}

func TestGreedyMemoryNeverBelowOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	var ties, total int
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 10, EdgeProb: 0.25})
		m := NewMemModel(g)
		_, opt, err := BruteForce(m)
		if err != nil {
			t.Fatal(err)
		}
		_, greedy, err := GreedyMemory(m)
		if err != nil {
			t.Fatal(err)
		}
		if greedy < opt {
			t.Fatalf("trial %d: greedy %d below optimal %d", trial, greedy, opt)
		}
		total++
		if greedy == opt {
			ties++
		}
	}
	t.Logf("greedy matched the optimum on %d/%d random DAGs", ties, total)
}

func TestGreedyMemoryDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 25, EdgeProb: 0.15})
	m := NewMemModel(g)
	o1, _, _ := GreedyMemory(m)
	o2, _, _ := GreedyMemory(m)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("greedy not deterministic")
		}
	}
}

// TestGreedyMemoryStatesAccounting pins the work metric that makes the
// heuristic comparable to the DP: one state per ready-node evaluation. Every
// step evaluates at least one candidate and at most every unscheduled node,
// so n <= states <= n^2, and a second run reports the identical count.
func TestGreedyMemoryStatesAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 18, EdgeProb: 0.2})
		m := NewMemModel(g)
		r1, err := GreedyMemoryRun(m)
		if err != nil {
			t.Fatal(err)
		}
		n := int64(g.NumNodes())
		if r1.StatesExplored < n || r1.StatesExplored > n*n {
			t.Fatalf("trial %d: states %d outside [%d, %d]", trial, r1.StatesExplored, n, n*n)
		}
		r2, err := GreedyMemoryRun(m)
		if err != nil {
			t.Fatal(err)
		}
		if r2.StatesExplored != r1.StatesExplored {
			t.Fatalf("trial %d: states nondeterministic: %d vs %d", trial, r1.StatesExplored, r2.StatesExplored)
		}
		// The wrapper and the full run must agree.
		order, peak, err := GreedyMemory(m)
		if err != nil {
			t.Fatal(err)
		}
		if peak != r1.Peak {
			t.Fatalf("trial %d: wrapper peak %d != run peak %d", trial, peak, r1.Peak)
		}
		for i := range order {
			if order[i] != r1.Order[i] {
				t.Fatalf("trial %d: wrapper order diverged", trial)
			}
		}
	}
}

// TestGreedyMemoryIsSuboptimalSomewhere documents why the exact DP matters:
// there exist graphs where the one-step-lookahead heuristic is strictly
// worse than the optimum.
func TestGreedyMemoryIsSuboptimalSomewhere(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 400; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 12, EdgeProb: 0.25})
		m := NewMemModel(g)
		_, opt, err := BruteForce(m)
		if err != nil {
			t.Fatal(err)
		}
		_, greedy, err := GreedyMemory(m)
		if err != nil {
			t.Fatal(err)
		}
		if greedy > opt {
			t.Logf("found after %d trials: greedy %d vs optimal %d", trial+1, greedy, opt)
			return
		}
	}
	t.Skip("greedy matched optimal on all sampled DAGs (heuristic unusually lucky)")
}
