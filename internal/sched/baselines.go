package sched

import (
	"github.com/serenity-ml/serenity/internal/graph"
)

// KahnFIFO returns the schedule produced by Kahn's algorithm with a FIFO
// ready queue — the O(|V|+|E|) memory-oblivious baseline the paper uses to
// obtain the hard budget τmax (Algorithm 2, line 3).
func KahnFIFO(g *graph.Graph) (Schedule, error) {
	n := g.NumNodes()
	indeg := g.Indegrees()
	queue := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	order := make(Schedule, 0, n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, s := range g.Nodes[v].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, graph.ErrCycle
	}
	return order, nil
}

// DFSEmission returns the depth-first converter emission order used as the
// TensorFlow Lite proxy baseline: the order in which a recursive code
// generator would emit nodes (emit all of a node's operands, depth first and
// in operand order, then the node), walking graph outputs in ID order.
//
// TensorFlow Lite executes ops in the flatbuffer's serialized order, which
// the converter produces by exactly this kind of memory-oblivious recursive
// traversal; see DESIGN.md "Substitutions".
func DFSEmission(g *graph.Graph) (Schedule, error) {
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}
	n := g.NumNodes()
	visited := make([]bool, n)
	order := make(Schedule, 0, n)
	var visit func(id int)
	visit = func(id int) {
		if visited[id] {
			return
		}
		visited[id] = true
		for _, p := range g.Nodes[id].Preds {
			visit(p)
		}
		order = append(order, id)
	}
	for _, out := range g.Outputs() {
		visit(out)
	}
	// Nodes unreachable from any output (shouldn't happen in practice).
	for id := 0; id < n; id++ {
		visit(id)
	}
	return order, nil
}

// MinIDOrder returns the deterministic min-ID topological order (the
// builder's construction order for generated graphs).
func MinIDOrder(g *graph.Graph) (Schedule, error) {
	o, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	return Schedule(o), nil
}

// BaselinePeak evaluates the worst peak among the memory-oblivious baseline
// orderings; the paper normalizes against TensorFlow Lite, which we proxy
// with DFSEmission (see DESIGN.md). Exposed for experiments that want a
// single named baseline.
func BaselinePeak(m *MemModel) (Schedule, int64, error) {
	order, err := DFSEmission(m.G)
	if err != nil {
		return nil, 0, err
	}
	peak, err := m.Peak(order)
	if err != nil {
		return nil, 0, err
	}
	return order, peak, nil
}
