package sched

import (
	"math/rand"
	"sort"

	"github.com/serenity-ml/serenity/internal/graph"
)

// RandomTopo samples a random topological order by running Kahn's algorithm
// and drawing uniformly from the ready set at each step. (This is the
// standard fast sampler; it is not exactly uniform over linear extensions,
// which is #P-hard to sample, but it covers the schedule space well enough
// for the CDF experiment of Figure 3b.)
func RandomTopo(g *graph.Graph, rng *rand.Rand) Schedule {
	n := g.NumNodes()
	indeg := g.Indegrees()
	ready := make([]int, 0, n)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	order := make(Schedule, 0, n)
	for len(ready) > 0 {
		i := rng.Intn(len(ready))
		v := ready[i]
		ready[i] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		order = append(order, v)
		for _, s := range g.Nodes[v].Succs {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return order
}

// PeakCDF holds sampled peak footprints in ascending order, for the
// cumulative-distribution analysis of Figure 3(b).
type PeakCDF struct {
	Peaks []int64 // sorted ascending
}

// SamplePeakCDF draws samples random topological orders of g and returns
// their peak footprints as a CDF.
func SamplePeakCDF(m *MemModel, samples int, rng *rand.Rand) *PeakCDF {
	peaks := make([]int64, samples)
	for i := 0; i < samples; i++ {
		order := RandomTopo(m.G, rng)
		p, err := m.Peak(order)
		if err != nil {
			panic("sched: RandomTopo produced invalid order: " + err.Error())
		}
		peaks[i] = p
	}
	sort.Slice(peaks, func(i, j int) bool { return peaks[i] < peaks[j] })
	return &PeakCDF{Peaks: peaks}
}

// FractionAtOrBelow returns the fraction of sampled schedules with peak
// footprint ≤ budget.
func (c *PeakCDF) FractionAtOrBelow(budget int64) float64 {
	if len(c.Peaks) == 0 {
		return 0
	}
	lo := sort.Search(len(c.Peaks), func(i int) bool { return c.Peaks[i] > budget })
	return float64(lo) / float64(len(c.Peaks))
}

// Quantile returns the peak at quantile q in [0,1].
func (c *PeakCDF) Quantile(q float64) int64 {
	if len(c.Peaks) == 0 {
		return 0
	}
	i := int(q * float64(len(c.Peaks)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(c.Peaks) {
		i = len(c.Peaks) - 1
	}
	return c.Peaks[i]
}

// Min returns the smallest sampled peak.
func (c *PeakCDF) Min() int64 {
	if len(c.Peaks) == 0 {
		return 0
	}
	return c.Peaks[0]
}

// Max returns the largest sampled peak.
func (c *PeakCDF) Max() int64 {
	if len(c.Peaks) == 0 {
		return 0
	}
	return c.Peaks[len(c.Peaks)-1]
}
