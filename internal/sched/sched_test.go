package sched

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
)

// bytesShape returns a rank-1 shape occupying exactly b bytes of float32.
func bytesShape(b int64) graph.Shape {
	return graph.Shape{int(b / 4)}
}

func chainGraph() *graph.Graph {
	g := graph.New("chain")
	a := g.AddNode(graph.OpInput, "in", bytesShape(100))
	b := g.AddNode(graph.OpReLU, "r1", bytesShape(100), a)
	g.AddNode(graph.OpReLU, "r2", bytesShape(100), b)
	return g
}

func TestSimulateChain(t *testing.T) {
	m := NewMemModel(chainGraph())
	res, err := m.Simulate(Schedule{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak != 200 {
		t.Errorf("Peak = %d, want 200", res.Peak)
	}
	if res.Final != 100 {
		t.Errorf("Final = %d, want 100", res.Final)
	}
	wantProfile := []int64{100, 100, 100}
	wantHigh := []int64{100, 200, 200}
	for i := range wantProfile {
		if res.Profile[i] != wantProfile[i] {
			t.Errorf("Profile[%d] = %d, want %d", i, res.Profile[i], wantProfile[i])
		}
		if res.HighMark[i] != wantHigh[i] {
			t.Errorf("HighMark[%d] = %d, want %d", i, res.HighMark[i], wantHigh[i])
		}
	}
}

// TestSimulateFanOut mirrors the Figure 6 mechanics: a tensor consumed by
// two nodes is freed only after the second consumer runs.
func TestSimulateFanOut(t *testing.T) {
	g := graph.New("fanout")
	a := g.AddNode(graph.OpInput, "A", bytesShape(8))
	b := g.AddNode(graph.OpReLU, "B", bytesShape(4), a)
	c := g.AddNode(graph.OpReLU, "C", bytesShape(4), a)
	g.AddNode(graph.OpAdd, "D", bytesShape(4), b, c)
	m := NewMemModel(g)

	res, err := m.Simulate(Schedule{a, b, c, 3})
	if err != nil {
		t.Fatal(err)
	}
	// A=8 stays live through B and C; peak at C: 8+4+4=16.
	if res.Peak != 16 {
		t.Errorf("Peak = %d, want 16", res.Peak)
	}
	// After C: A freed -> 4+4=8. After D: B,C freed -> 4.
	if res.Profile[2] != 8 || res.Profile[3] != 4 {
		t.Errorf("Profile = %v", res.Profile)
	}
}

func bufferGraph() *graph.Graph {
	g := graph.New("buffer")
	x1 := g.AddNode(graph.OpInput, "x1", bytesShape(40))
	x2 := g.AddNode(graph.OpInput, "x2", bytesShape(60))
	buf := g.AddNode(graph.OpBuffer, "buf", bytesShape(100))
	w1 := g.AddNode(graph.OpPartialDWConv, "w1", bytesShape(40), x1, buf)
	g.Nodes[w1].Attr.AliasOf = buf
	w2 := g.AddNode(graph.OpPartialDWConv, "w2", bytesShape(60), x2, buf)
	g.Nodes[w2].Attr.AliasOf = buf
	j := g.AddNode(graph.OpIdentity, "join", bytesShape(100), w1, w2)
	g.Nodes[j].Attr.AliasOf = buf
	g.AddNode(graph.OpReLU, "out", bytesShape(100), j)
	return g
}

func TestSimulateSharedBuffer(t *testing.T) {
	g := bufferGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMemModel(g)
	// Schedule one branch fully before loading the other input: the rewrite's
	// whole point is that x2 need not coexist with x1.
	res, err := m.Simulate(Schedule{0, 2, 3, 1, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	// Steps: x1:40; buf:140; w1: free x1 -> 100; x2: 160 (peak until out);
	// w2: free x2 -> 100; join: 100; out: +100=200 then free buf -> 100.
	if res.Peak != 200 {
		t.Errorf("Peak = %d, want 200", res.Peak)
	}
	if res.Profile[6] != 100 || res.Final != 100 {
		t.Errorf("Final = %d Profile=%v", res.Final, res.Profile)
	}
	// Buffer freed exactly at the last consumer (out), not at join.
	if res.Profile[5] != 100 {
		t.Errorf("buffer freed too early: profile %v", res.Profile)
	}
}

func TestCheckValidErrors(t *testing.T) {
	m := NewMemModel(chainGraph())
	cases := []Schedule{
		{0, 1},       // wrong length
		{0, 1, 1},    // duplicate
		{1, 0, 2},    // precedence violation
		{0, 1, 3},    // out of range
		{0, 2, 1},    // precedence violation (r2 before r1)
		{-1, 0, 1},   // negative
		{0, 1, 2, 2}, // too long
	}
	for i, c := range cases {
		if err := m.CheckValid(c); err == nil {
			t.Errorf("case %d: invalid schedule %v accepted", i, c)
		}
	}
	if err := m.CheckValid(Schedule{0, 1, 2}); err != nil {
		t.Errorf("valid schedule rejected: %v", err)
	}
}

func TestBaselinesProduceValidOrders(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 24, EdgeProb: 0.2})
		m := NewMemModel(g)
		for name, fn := range map[string]func(*graph.Graph) (Schedule, error){
			"kahn": KahnFIFO, "dfs": DFSEmission, "minid": MinIDOrder,
		} {
			o, err := fn(g)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := m.CheckValid(o); err != nil {
				t.Fatalf("%s produced invalid order: %v", name, err)
			}
		}
	}
}

func TestDFSEmissionDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 30, EdgeProb: 0.15})
	o1, _ := DFSEmission(g)
	o2, _ := DFSEmission(g)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("DFSEmission not deterministic")
		}
	}
}

func TestBaselinePeakMatchesDFS(t *testing.T) {
	g := chainGraph()
	m := NewMemModel(g)
	order, peak, err := BaselinePeak(m)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := DFSEmission(g)
	for i := range want {
		if order[i] != want[i] {
			t.Fatal("BaselinePeak order differs from DFSEmission")
		}
	}
	if peak != 200 {
		t.Errorf("baseline peak = %d, want 200", peak)
	}
}

func TestRandomTopoValidAndDiverse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 16, EdgeProb: 0.15})
	m := NewMemModel(g)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		o := RandomTopo(g, rng)
		if err := m.CheckValid(o); err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, v := range o {
			key += string(rune('a' + v))
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Error("RandomTopo produced a single order across 200 draws")
	}
}

func TestBruteForceOptimalOnChain(t *testing.T) {
	m := NewMemModel(chainGraph())
	order, peak, err := BruteForce(m)
	if err != nil {
		t.Fatal(err)
	}
	if peak != 200 {
		t.Errorf("brute force peak = %d, want 200", peak)
	}
	if err := m.CheckValid(order); err != nil {
		t.Fatal(err)
	}
}

func TestBruteForceBeatsOrMatchesAllSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 10, EdgeProb: 0.25})
		m := NewMemModel(g)
		_, best, err := BruteForce(m)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			p := m.MustPeak(RandomTopo(g, rng))
			if p < best {
				t.Fatalf("trial %d: sampled peak %d < brute force %d", trial, p, best)
			}
		}
	}
}

func TestBruteForceRejectsLargeGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: BruteForceLimit + 1, EdgeProb: 0.3})
	if _, _, err := BruteForce(NewMemModel(g)); err != ErrTooLarge {
		t.Fatalf("want ErrTooLarge, got %v", err)
	}
}

func TestCountTopoOrders(t *testing.T) {
	// Two independent 2-chains: C(4,2) = 6 interleavings.
	g := graph.New("two-chains")
	a := g.AddNode(graph.OpInput, "a", bytesShape(4))
	g.AddNode(graph.OpReLU, "a2", bytesShape(4), a)
	c := g.AddNode(graph.OpInput, "c", bytesShape(4))
	g.AddNode(graph.OpReLU, "c2", bytesShape(4), c)
	if got := CountTopoOrders(g, 1000); got != 6 {
		t.Errorf("CountTopoOrders = %d, want 6", got)
	}
	// Chain has exactly one order.
	if got := CountTopoOrders(chainGraph(), 1000); got != 1 {
		t.Errorf("chain orders = %d, want 1", got)
	}
	// Limit respected.
	if got := CountTopoOrders(g, 3); got != 3 {
		t.Errorf("limited count = %d, want 3", got)
	}
}

func TestPeakCDF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 14, EdgeProb: 0.2})
	m := NewMemModel(g)
	cdf := SamplePeakCDF(m, 300, rng)
	if len(cdf.Peaks) != 300 {
		t.Fatalf("samples = %d", len(cdf.Peaks))
	}
	for i := 1; i < len(cdf.Peaks); i++ {
		if cdf.Peaks[i-1] > cdf.Peaks[i] {
			t.Fatal("CDF not sorted")
		}
	}
	if cdf.FractionAtOrBelow(cdf.Max()) != 1.0 {
		t.Error("fraction at max should be 1")
	}
	if cdf.FractionAtOrBelow(cdf.Min()-1) != 0.0 {
		t.Error("fraction below min should be 0")
	}
	if cdf.Quantile(0) != cdf.Min() || cdf.Quantile(1) != cdf.Max() {
		t.Error("quantile endpoints wrong")
	}
	// Optimal (brute force) must be <= sampled min.
	if _, best, err := BruteForce(m); err == nil && best > cdf.Min() {
		t.Errorf("brute force %d > sampled min %d", best, cdf.Min())
	}
}

// TestStepDeallocConsistency replays a schedule using the DP transition
// helper and checks it reproduces Simulate's profile exactly.
func TestStepDeallocConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 25; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 18, EdgeProb: 0.2})
		m := NewMemModel(g)
		order := RandomTopo(g, rng)
		res, err := m.Simulate(order)
		if err != nil {
			t.Fatal(err)
		}
		scheduled := graph.NewBitset(g.NumNodes())
		var mu int64
		for i, u := range order {
			scheduled.Set(u)
			mu += m.Alloc[u]
			mu -= m.StepDealloc(scheduled, u)
			if mu != res.Profile[i] {
				t.Fatalf("trial %d step %d: replay mu %d != profile %d", trial, i, mu, res.Profile[i])
			}
		}
	}
}
