// Package sched defines execution schedules over the graph IR and the
// activation-memory model of the paper (Section 3.1, Figure 6): scheduling a
// node allocates its output tensor; a tensor is deallocated as soon as its
// last consumer has been scheduled; graph outputs stay resident. The package
// also provides the memory-oblivious baseline orderings the paper compares
// against (Kahn's algorithm, converter-style DFS emission), a random
// topological-order sampler for the schedule-CDF experiment (Figure 3b), and
// a brute-force optimal scheduler used as a test oracle.
package sched

import (
	"fmt"

	"github.com/serenity-ml/serenity/internal/graph"
)

// Schedule is an execution order: a permutation of the graph's node IDs.
type Schedule []int

// MemModel precomputes everything needed to evaluate the activation
// footprint of (partial) schedules in O(1)-ish per step. It accounts for
// shared-buffer aliasing introduced by graph rewriting: alias nodes allocate
// nothing, and a physical tensor is freed when all consumers of all of its
// views have executed.
type MemModel struct {
	G *graph.Graph

	Alloc     []int64 // bytes allocated when node i is scheduled (0 for aliases)
	Root      []int   // physical storage root of node i's output
	RootSize  []int64 // bytes of the physical tensor rooted at i (0 if i is not a root)
	Consumers [][]int // consumers[r]: node IDs consuming physical tensor r (r = root only)
	PredRoots [][]int // predRoots[i]: distinct physical roots among node i's preds

	// Zobrist assigns node i a fixed pseudo-random word so the DP scheduler
	// can hash scheduled-set signatures incrementally: hash(S ∪ {u}) =
	// hash(S) ^ Zobrist[u], computable before the child set is materialized.
	// Drawn from a fixed seed (see graph.ZobristTable), so hashes — and with
	// them the scheduler's behavior — are deterministic across processes.
	Zobrist []uint64
}

// NewMemModel builds the memory model for g. g must be a valid DAG.
func NewMemModel(g *graph.Graph) *MemModel {
	n := g.NumNodes()
	m := &MemModel{
		G:         g,
		Alloc:     make([]int64, n),
		Root:      make([]int, n),
		RootSize:  make([]int64, n),
		Consumers: make([][]int, n),
		PredRoots: make([][]int, n),
		Zobrist:   graph.ZobristTable(n),
	}
	for _, node := range g.Nodes {
		m.Alloc[node.ID] = node.OutBytes()
		m.Root[node.ID] = g.PhysRoot(node.ID)
	}
	for _, node := range g.Nodes {
		if m.Root[node.ID] == node.ID {
			m.RootSize[node.ID] = node.StorageBytes()
		}
	}
	cons := g.Consumers()
	for r, cs := range cons {
		m.Consumers[r] = cs
	}
	for _, node := range g.Nodes {
		seen := map[int]bool{}
		for _, p := range node.Preds {
			r := m.Root[p]
			if !seen[r] {
				seen[r] = true
				m.PredRoots[node.ID] = append(m.PredRoots[node.ID], r)
			}
		}
	}
	return m
}

// SimResult captures the outcome of simulating a complete schedule.
type SimResult struct {
	Peak     int64   // peak footprint (max over time of live bytes)
	Final    int64   // bytes live after the last step (graph outputs)
	Profile  []int64 // live bytes after each step's deallocations
	HighMark []int64 // live bytes at each step's allocation point (pre-dealloc)
}

// Simulate runs the full liveness simulation of order and returns the peak
// footprint and the per-step profile. It returns an error if order is not a
// valid topological permutation of the graph.
func (m *MemModel) Simulate(order Schedule) (*SimResult, error) {
	if err := m.CheckValid(order); err != nil {
		return nil, err
	}
	n := m.G.NumNodes()
	remaining := make([]int, n)
	for r, cs := range m.Consumers {
		remaining[r] = len(cs)
	}
	res := &SimResult{
		Profile:  make([]int64, len(order)),
		HighMark: make([]int64, len(order)),
	}
	var mu int64
	for i, u := range order {
		mu += m.Alloc[u]
		res.HighMark[i] = mu
		if mu > res.Peak {
			res.Peak = mu
		}
		for _, r := range m.PredRoots[u] {
			remaining[r]--
			if remaining[r] == 0 {
				mu -= m.RootSize[r]
			}
		}
		res.Profile[i] = mu
	}
	res.Final = mu
	return res, nil
}

// Peak returns just the peak footprint of order.
func (m *MemModel) Peak(order Schedule) (int64, error) {
	res, err := m.Simulate(order)
	if err != nil {
		return 0, err
	}
	return res.Peak, nil
}

// MustPeak is Peak but panics on invalid schedules; for tests and benches.
func (m *MemModel) MustPeak(order Schedule) int64 {
	p, err := m.Peak(order)
	if err != nil {
		panic(err)
	}
	return p
}

// CheckValid verifies that order is a permutation of all node IDs obeying
// every precedence edge.
func (m *MemModel) CheckValid(order Schedule) error {
	n := m.G.NumNodes()
	if len(order) != n {
		return fmt.Errorf("sched: order has %d entries, graph has %d nodes", len(order), n)
	}
	pos := make([]int, n)
	for i := range pos {
		pos[i] = -1
	}
	for i, u := range order {
		if u < 0 || u >= n {
			return fmt.Errorf("sched: node %d out of range at position %d", u, i)
		}
		if pos[u] != -1 {
			return fmt.Errorf("sched: node %d scheduled twice (positions %d and %d)", u, pos[u], i)
		}
		pos[u] = i
	}
	for _, node := range m.G.Nodes {
		for _, p := range node.Preds {
			if pos[p] > pos[node.ID] {
				return fmt.Errorf("sched: node %d scheduled before its predecessor %d", node.ID, p)
			}
		}
	}
	return nil
}

// StepDealloc computes the deallocation when node u executes given that
// scheduled already includes u: every predecessor root whose consumers are
// all scheduled is freed. Used by the DP scheduler's transition function.
func (m *MemModel) StepDealloc(scheduled *graph.Bitset, u int) int64 {
	var freed int64
	for _, r := range m.PredRoots[u] {
		all := true
		for _, c := range m.Consumers[r] {
			if !scheduled.Has(c) {
				all = false
				break
			}
		}
		if all {
			freed += m.RootSize[r]
		}
	}
	return freed
}
