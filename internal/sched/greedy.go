package sched

import (
	"github.com/serenity-ml/serenity/internal/graph"
)

// GreedyMemory is a practical heuristic baseline between the
// memory-oblivious orders and the exact DP: at every step it schedules the
// ready node with the smallest resulting footprint, breaking ties toward
// the node that frees the most memory, then the smallest allocation, then
// the lowest ID (for determinism). Linear-ish time — O(V · width · deg) —
// but not optimal: the DP-vs-greedy benchmark quantifies the gap that
// justifies the paper's exact search.
func GreedyMemory(m *MemModel) (Schedule, int64, error) {
	g := m.G
	n := g.NumNodes()
	if _, err := g.TopoOrder(); err != nil {
		return nil, 0, err
	}

	indeg := g.Indegrees()
	scheduled := graph.NewBitset(n)
	ready := make(map[int]bool)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready[id] = true
		}
	}
	remaining := make([]int, n)
	for r, cs := range m.Consumers {
		remaining[r] = len(cs)
	}

	order := make(Schedule, 0, n)
	var mu, peak int64
	for len(ready) > 0 {
		best := -1
		var bestAfter, bestFreed, bestAlloc int64
		for u := range ready {
			var freed int64
			for _, r := range m.PredRoots[u] {
				if remaining[r] == 1 {
					freed += m.RootSize[r]
				}
			}
			after := mu + m.Alloc[u] - freed
			better := false
			switch {
			case best == -1:
				better = true
			case after != bestAfter:
				better = after < bestAfter
			case freed != bestFreed:
				better = freed > bestFreed
			case m.Alloc[u] != bestAlloc:
				better = m.Alloc[u] < bestAlloc
			default:
				better = u < best
			}
			if better {
				best, bestAfter, bestFreed, bestAlloc = u, after, freed, m.Alloc[u]
			}
		}

		u := best
		delete(ready, u)
		scheduled.Set(u)
		order = append(order, u)
		mu += m.Alloc[u]
		if mu > peak {
			peak = mu
		}
		for _, r := range m.PredRoots[u] {
			remaining[r]--
			if remaining[r] == 0 {
				mu -= m.RootSize[r]
			}
		}
		for _, s := range g.Nodes[u].Succs {
			indeg[s]--
			if indeg[s] == 0 && !scheduled.Has(s) {
				ready[s] = true
			}
		}
	}
	if len(order) != n {
		return nil, 0, graph.ErrCycle
	}
	return order, peak, nil
}
