package sched

import (
	"context"

	"github.com/serenity-ml/serenity/internal/graph"
)

// GreedyResult is the outcome of one greedy search, with the work accounting
// needed to compare heuristic and exact searchers on equal terms.
type GreedyResult struct {
	Order Schedule
	Peak  int64
	// StatesExplored counts candidate partial schedules examined: one per
	// ready-node evaluation per step. The DP counts one per memo entry
	// created, i.e. per partial schedule retained; both numbers measure
	// "partial schedules considered", so they are directly comparable as a
	// work metric (the greedy's is an upper bound on distinct states, since
	// it evaluates every ready node but commits to one).
	StatesExplored int64
}

// GreedyMemory is a practical heuristic baseline between the
// memory-oblivious orders and the exact DP: at every step it schedules the
// ready node with the smallest resulting footprint, breaking ties toward
// the node that frees the most memory, then the smallest allocation, then
// the lowest ID (for determinism). Linear-ish time — O(V · width · deg) —
// but not optimal: the DP-vs-greedy benchmark quantifies the gap that
// justifies the paper's exact search.
func GreedyMemory(m *MemModel) (Schedule, int64, error) {
	r, err := GreedyMemoryRun(m)
	if err != nil {
		return nil, 0, err
	}
	return r.Order, r.Peak, nil
}

// GreedyMemoryRun is GreedyMemory with full work accounting; see
// GreedyResult.StatesExplored for how the count compares to the DP's.
func GreedyMemoryRun(m *MemModel) (*GreedyResult, error) {
	return GreedyMemoryRunCtx(context.Background(), m)
}

// GreedyMemoryRunCtx is GreedyMemoryRun with cooperative cancellation: the
// scheduling loop polls ctx every 64 steps — the inner candidate scan is
// cheap, but on graphs with tens of thousands of nodes the whole run is
// not, and a disconnected caller should not pin a CPU for it.
func GreedyMemoryRunCtx(ctx context.Context, m *MemModel) (*GreedyResult, error) {
	g := m.G
	n := g.NumNodes()
	if _, err := g.TopoOrder(); err != nil {
		return nil, err
	}

	indeg := g.Indegrees()
	scheduled := graph.NewBitset(n)
	ready := make(map[int]bool)
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			ready[id] = true
		}
	}
	remaining := make([]int, n)
	for r, cs := range m.Consumers {
		remaining[r] = len(cs)
	}

	res := &GreedyResult{Order: make(Schedule, 0, n)}
	done := ctx.Done()
	var mu int64
	for len(ready) > 0 {
		if len(res.Order)%64 == 63 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
		best := -1
		var bestAfter, bestFreed, bestAlloc int64
		for u := range ready {
			res.StatesExplored++
			var freed int64
			for _, r := range m.PredRoots[u] {
				if remaining[r] == 1 {
					freed += m.RootSize[r]
				}
			}
			after := mu + m.Alloc[u] - freed
			better := false
			switch {
			case best == -1:
				better = true
			case after != bestAfter:
				better = after < bestAfter
			case freed != bestFreed:
				better = freed > bestFreed
			case m.Alloc[u] != bestAlloc:
				better = m.Alloc[u] < bestAlloc
			default:
				better = u < best
			}
			if better {
				best, bestAfter, bestFreed, bestAlloc = u, after, freed, m.Alloc[u]
			}
		}

		u := best
		delete(ready, u)
		scheduled.Set(u)
		res.Order = append(res.Order, u)
		mu += m.Alloc[u]
		if mu > res.Peak {
			res.Peak = mu
		}
		for _, r := range m.PredRoots[u] {
			remaining[r]--
			if remaining[r] == 0 {
				mu -= m.RootSize[r]
			}
		}
		for _, s := range g.Nodes[u].Succs {
			indeg[s]--
			if indeg[s] == 0 && !scheduled.Has(s) {
				ready[s] = true
			}
		}
	}
	if len(res.Order) != n {
		return nil, graph.ErrCycle
	}
	return res, nil
}
