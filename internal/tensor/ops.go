package tensor

import (
	"fmt"
	"math"
)

// padOffsets returns the output spatial size and the top/left padding for a
// convolution-like op, mirroring the IR builder's shape inference.
func padOffsets(in, kernel, stride, dilation int, same bool) (out, pad int) {
	if stride <= 0 {
		stride = 1
	}
	if dilation <= 0 {
		dilation = 1
	}
	eff := (kernel-1)*dilation + 1
	if same {
		out = (in + stride - 1) / stride
		total := (out-1)*stride + eff - in
		if total < 0 {
			total = 0
		}
		pad = total / 2
	} else {
		out = (in-eff)/stride + 1
		pad = 0
	}
	return out, pad
}

// Conv2D computes a standard NHWC convolution of x with weights
// w[kh][kw][inC][outC].
func Conv2D(x, w *Tensor, stride, dilation int, same bool) *Tensor {
	n, h, wd, c := x.Rank4()
	kh, kw, wc, oc := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if wc != c {
		panic(fmt.Sprintf("tensor: conv weight in-channels %d != input %d", wc, c))
	}
	oh, ph := padOffsets(h, kh, stride, dilation, same)
	ow, pw := padOffsets(wd, kw, stride, dilation, same)
	y := New(n, oh, ow, oc)
	if dilation <= 0 {
		dilation = 1
	}
	if stride <= 0 {
		stride = 1
	}
	for b := 0; b < n; b++ {
		for yy := 0; yy < oh; yy++ {
			for xx := 0; xx < ow; xx++ {
				for o := 0; o < oc; o++ {
					var acc float32
					for i := 0; i < kh; i++ {
						ih := yy*stride - ph + i*dilation
						if ih < 0 || ih >= h {
							continue
						}
						for j := 0; j < kw; j++ {
							iw := xx*stride - pw + j*dilation
							if iw < 0 || iw >= wd {
								continue
							}
							for k := 0; k < c; k++ {
								acc += x.At4(b, ih, iw, k) * w.Data[((i*kw+j)*wc+k)*oc+o]
							}
						}
					}
					y.Set4(b, yy, xx, o, acc)
				}
			}
		}
	}
	return y
}

// DepthwiseConv2D computes a depthwise convolution with channel multiplier 1
// and weights w[kh][kw][C].
func DepthwiseConv2D(x, w *Tensor, stride, dilation int, same bool) *Tensor {
	n, h, wd, c := x.Rank4()
	kh, kw, wc := w.Shape[0], w.Shape[1], w.Shape[2]
	if wc != c {
		panic(fmt.Sprintf("tensor: dwconv weight channels %d != input %d", wc, c))
	}
	oh, ph := padOffsets(h, kh, stride, dilation, same)
	ow, pw := padOffsets(wd, kw, stride, dilation, same)
	y := New(n, oh, ow, c)
	if dilation <= 0 {
		dilation = 1
	}
	if stride <= 0 {
		stride = 1
	}
	for b := 0; b < n; b++ {
		for yy := 0; yy < oh; yy++ {
			for xx := 0; xx < ow; xx++ {
				for k := 0; k < c; k++ {
					var acc float32
					for i := 0; i < kh; i++ {
						ih := yy*stride - ph + i*dilation
						if ih < 0 || ih >= h {
							continue
						}
						for j := 0; j < kw; j++ {
							iw := xx*stride - pw + j*dilation
							if iw < 0 || iw >= wd {
								continue
							}
							acc += x.At4(b, ih, iw, k) * w.Data[(i*kw+j)*wc+k]
						}
					}
					y.Set4(b, yy, xx, k, acc)
				}
			}
		}
	}
	return y
}

// Add returns the elementwise sum of same-shaped tensors.
func Add(xs ...*Tensor) *Tensor {
	y := xs[0].Clone()
	for _, x := range xs[1:] {
		if len(x.Data) != len(y.Data) {
			panic("tensor: Add shape mismatch")
		}
		for i := range y.Data {
			y.Data[i] += x.Data[i]
		}
	}
	return y
}

// AccumulateInto adds src into dst elementwise (dst must match src's size).
func AccumulateInto(dst, src *Tensor) {
	if len(dst.Data) != len(src.Data) {
		panic("tensor: AccumulateInto size mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] += src.Data[i]
	}
}

// Mul returns the elementwise product.
func Mul(a, b *Tensor) *Tensor {
	y := a.Clone()
	for i := range y.Data {
		y.Data[i] *= b.Data[i]
	}
	return y
}

// ReLU applies max(0, x).
func ReLU(x *Tensor) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		if v < 0 {
			y.Data[i] = 0
		}
	}
	_ = x
	return y
}

// Sigmoid applies the logistic function.
func Sigmoid(x *Tensor) *Tensor {
	y := x.Clone()
	for i, v := range y.Data {
		y.Data[i] = float32(1.0 / (1.0 + math.Exp(-float64(v))))
	}
	return y
}

// ConcatChannels concatenates rank-4 tensors along the channel axis.
func ConcatChannels(xs ...*Tensor) *Tensor {
	n, h, w, _ := xs[0].Rank4()
	total := 0
	for _, x := range xs {
		xn, xh, xw, xc := x.Rank4()
		if xn != n || xh != h || xw != w {
			panic("tensor: ConcatChannels spatial mismatch")
		}
		total += xc
	}
	y := New(n, h, w, total)
	off := 0
	for _, x := range xs {
		_, _, _, xc := x.Rank4()
		CopyChannels(y, x, off)
		off += xc
	}
	return y
}

// CopyChannels writes src into dst's channel range [off, off+srcC).
func CopyChannels(dst, src *Tensor, off int) {
	n, h, w, sc := src.Rank4()
	for b := 0; b < n; b++ {
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				for k := 0; k < sc; k++ {
					dst.Set4(b, yy, xx, off+k, src.At4(b, yy, xx, k))
				}
			}
		}
	}
}

// SliceChannels extracts channels [off, off+count) of src.
func SliceChannels(src *Tensor, off, count int) *Tensor {
	n, h, w, _ := src.Rank4()
	y := New(n, h, w, count)
	for b := 0; b < n; b++ {
		for yy := 0; yy < h; yy++ {
			for xx := 0; xx < w; xx++ {
				for k := 0; k < count; k++ {
					y.Set4(b, yy, xx, k, src.At4(b, yy, xx, off+k))
				}
			}
		}
	}
	return y
}

// MaxPool computes k×k max pooling.
func MaxPool(x *Tensor, k, stride int, same bool) *Tensor {
	return pool(x, k, stride, same, true)
}

// AvgPool computes k×k average pooling (count includes padding like
// TensorFlow's 'SAME' with count_include_pad=false semantics simplified to
// valid-element averaging).
func AvgPool(x *Tensor, k, stride int, same bool) *Tensor {
	return pool(x, k, stride, same, false)
}

func pool(x *Tensor, k, stride int, same, isMax bool) *Tensor {
	n, h, w, c := x.Rank4()
	oh, ph := padOffsets(h, k, stride, 1, same)
	ow, pw := padOffsets(w, k, stride, 1, same)
	if stride <= 0 {
		stride = 1
	}
	y := New(n, oh, ow, c)
	for b := 0; b < n; b++ {
		for yy := 0; yy < oh; yy++ {
			for xx := 0; xx < ow; xx++ {
				for ch := 0; ch < c; ch++ {
					var acc float32
					count := 0
					first := true
					for i := 0; i < k; i++ {
						ih := yy*stride - ph + i
						if ih < 0 || ih >= h {
							continue
						}
						for j := 0; j < k; j++ {
							iw := xx*stride - pw + j
							if iw < 0 || iw >= w {
								continue
							}
							v := x.At4(b, ih, iw, ch)
							if isMax {
								if first || v > acc {
									acc = v
									first = false
								}
							} else {
								acc += v
								count++
							}
						}
					}
					if !isMax && count > 0 {
						acc /= float32(count)
					}
					y.Set4(b, yy, xx, ch, acc)
				}
			}
		}
	}
	return y
}

// GlobalAvgPool reduces H and W to 1.
func GlobalAvgPool(x *Tensor) *Tensor {
	n, h, w, c := x.Rank4()
	y := New(n, 1, 1, c)
	for b := 0; b < n; b++ {
		for ch := 0; ch < c; ch++ {
			var acc float32
			for yy := 0; yy < h; yy++ {
				for xx := 0; xx < w; xx++ {
					acc += x.At4(b, yy, xx, ch)
				}
			}
			y.Set4(b, 0, 0, ch, acc/float32(h*w))
		}
	}
	return y
}

// Dense computes x·W for flattened x (batch preserved) with W[in][out].
func Dense(x, w *Tensor) *Tensor {
	batch := x.Shape[0]
	in := x.Elems() / batch
	if w.Shape[0] != in {
		panic(fmt.Sprintf("tensor: dense weight in %d != input %d", w.Shape[0], in))
	}
	out := w.Shape[1]
	y := New(batch, out)
	for b := 0; b < batch; b++ {
		for o := 0; o < out; o++ {
			var acc float32
			for i := 0; i < in; i++ {
				acc += x.Data[b*in+i] * w.Data[i*out+o]
			}
			y.Data[b*out+o] = acc
		}
	}
	return y
}
