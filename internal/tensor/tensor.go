// Package tensor is a minimal NHWC float32 tensor library used by the
// reference executor to verify that identity graph rewriting preserves the
// arithmetic of the network (Section 3.3: "our method keeps the mathematical
// integrity of the graph intact, thus not an approximation method").
//
// It is deliberately simple and unoptimized: correctness oracle, not kernel
// library.
package tensor

import "fmt"

// Tensor is a dense float32 tensor in row-major NHWC order.
type Tensor struct {
	Shape []int
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim in %v", shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Elems returns the number of elements.
func (t *Tensor) Elems() int { return len(t.Data) }

// Bytes returns the storage footprint in bytes.
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// idx4 computes the flat index for NHWC coordinates.
func (t *Tensor) idx4(n, h, w, c int) int {
	_, H, W, C := t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
	_ = H
	return ((n*t.Shape[1]+h)*W+w)*C + c
}

// At4 reads element (n,h,w,c) of a rank-4 tensor.
func (t *Tensor) At4(n, h, w, c int) float32 { return t.Data[t.idx4(n, h, w, c)] }

// Set4 writes element (n,h,w,c) of a rank-4 tensor.
func (t *Tensor) Set4(n, h, w, c int, v float32) { t.Data[t.idx4(n, h, w, c)] = v }

// Rank4 panics unless the tensor is rank 4; returns its dims.
func (t *Tensor) Rank4() (n, h, w, c int) {
	if len(t.Shape) != 4 {
		panic(fmt.Sprintf("tensor: want rank 4, got %v", t.Shape))
	}
	return t.Shape[0], t.Shape[1], t.Shape[2], t.Shape[3]
}

// MaxAbsDiff returns the largest absolute elementwise difference between two
// same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		return 1e30
	}
	var m float64
	for i := range a.Data {
		d := float64(a.Data[i] - b.Data[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}

// splitmix64 advances the deterministic PRNG used for weights and inputs.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FillRandom fills the tensor with deterministic pseudo-random values in
// [-0.5, 0.5) derived from seed. The same seed always produces the same
// contents, which is how the rewrite-equivalence tests hold inputs and
// weights constant across graph variants.
func (t *Tensor) FillRandom(seed int64) {
	s := uint64(seed) * 0x9e3779b97f4a7c15
	for i := range t.Data {
		t.Data[i] = float32(splitmix64(&s)>>40)/float32(1<<24) - 0.5
	}
}

// RandomWeights generates a deterministic weight tensor for the given seed.
func RandomWeights(seed int64, shape ...int) *Tensor {
	t := New(shape...)
	t.FillRandom(seed)
	return t
}
