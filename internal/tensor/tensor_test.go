package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float32) bool {
	return math.Abs(float64(a-b)) < 1e-5
}

func TestNewAndIndexing(t *testing.T) {
	x := New(1, 2, 3, 4)
	if x.Elems() != 24 || x.Bytes() != 96 {
		t.Fatalf("Elems=%d Bytes=%d", x.Elems(), x.Bytes())
	}
	x.Set4(0, 1, 2, 3, 7)
	if x.At4(0, 1, 2, 3) != 7 {
		t.Error("Set4/At4 mismatch")
	}
	if x.Data[23] != 7 {
		t.Error("NHWC layout wrong: last coordinate should be last element")
	}
	c := x.Clone()
	c.Data[0] = 9
	if x.Data[0] == 9 {
		t.Error("Clone shares data")
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted non-positive dim")
		}
	}()
	New(1, 0, 3)
}

func TestFillRandomDeterministic(t *testing.T) {
	a := New(100)
	b := New(100)
	a.FillRandom(42)
	b.FillRandom(42)
	if MaxAbsDiff(a, b) != 0 {
		t.Error("same seed produced different data")
	}
	b.FillRandom(43)
	if MaxAbsDiff(a, b) == 0 {
		t.Error("different seeds produced identical data")
	}
	for _, v := range a.Data {
		if v < -0.5 || v >= 0.5 {
			t.Fatalf("value %v out of [-0.5, 0.5)", v)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	// 1x1 kernel with identity-ish weights: w[0][0][c][o] = 1 if c==o.
	x := New(1, 3, 3, 2)
	x.FillRandom(7)
	w := New(1, 1, 2, 2)
	w.Data[0] = 1 // c0->o0
	w.Data[3] = 1 // c1->o1
	y := Conv2D(x, w, 1, 1, true)
	if MaxAbsDiff(x, y) != 0 {
		t.Error("1x1 identity conv should be identity")
	}
}

func TestConv2DKnownValues(t *testing.T) {
	// 2x2 input, 2x2 all-ones kernel, valid padding: output = sum of inputs.
	x := New(1, 2, 2, 1)
	x.Data = []float32{1, 2, 3, 4}
	w := New(2, 2, 1, 1)
	for i := range w.Data {
		w.Data[i] = 1
	}
	y := Conv2D(x, w, 1, 1, false)
	if len(y.Data) != 1 || !almostEq(y.Data[0], 10) {
		t.Errorf("valid conv = %v, want [10]", y.Data)
	}
	// Same padding, stride 1: output 2x2; corner (1,1) sees only x itself.
	y2 := Conv2D(x, w, 1, 1, true)
	if !y2ShapeOK(y2) {
		t.Fatalf("same conv shape %v", y2.Shape)
	}
	if !almostEq(y2.At4(0, 0, 0, 0), 10) {
		t.Errorf("center of same conv = %v, want 10", y2.At4(0, 0, 0, 0))
	}
}

func y2ShapeOK(y *Tensor) bool {
	return len(y.Shape) == 4 && y.Shape[1] == 2 && y.Shape[2] == 2
}

func TestConv2DLinearity(t *testing.T) {
	f := func(seed int64) bool {
		x1 := New(1, 5, 5, 3)
		x2 := New(1, 5, 5, 3)
		x1.FillRandom(seed)
		x2.FillRandom(seed + 1)
		w := RandomWeights(seed+2, 3, 3, 3, 4)
		lhs := Conv2D(Add(x1, x2), w, 1, 1, true)
		rhs := Add(Conv2D(x1, w, 1, 1, true), Conv2D(x2, w, 1, 1, true))
		return MaxAbsDiff(lhs, rhs) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestConvChannelDistributivity is Equation 3-6 in miniature: conv over
// concatenated channels equals the sum of partial convs with weight slices.
func TestConvChannelDistributivity(t *testing.T) {
	x1 := New(1, 6, 6, 2)
	x2 := New(1, 6, 6, 3)
	x1.FillRandom(1)
	x2.FillRandom(2)
	w := RandomWeights(3, 3, 3, 5, 4) // over 5 input channels

	full := Conv2D(ConcatChannels(x1, x2), w, 1, 1, true)

	// Slice weights along the input-channel axis.
	w1 := New(3, 3, 2, 4)
	w2 := New(3, 3, 3, 4)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for o := 0; o < 4; o++ {
				for k := 0; k < 2; k++ {
					w1.Data[((i*3+j)*2+k)*4+o] = w.Data[((i*3+j)*5+k)*4+o]
				}
				for k := 0; k < 3; k++ {
					w2.Data[((i*3+j)*3+k)*4+o] = w.Data[((i*3+j)*5+(2+k))*4+o]
				}
			}
		}
	}
	sum := Add(Conv2D(x1, w1, 1, 1, true), Conv2D(x2, w2, 1, 1, true))
	if d := MaxAbsDiff(full, sum); d > 1e-4 {
		t.Errorf("distributivity violated: %g", d)
	}
}

// TestDepthwiseConcatCommutes is Equation 7-8: depthconv(concat) ==
// concat(depthconv slices).
func TestDepthwiseConcatCommutes(t *testing.T) {
	x1 := New(1, 6, 6, 2)
	x2 := New(1, 6, 6, 3)
	x1.FillRandom(4)
	x2.FillRandom(5)
	w := RandomWeights(6, 3, 3, 5)

	full := DepthwiseConv2D(ConcatChannels(x1, x2), w, 1, 1, true)

	w1 := SliceChannelsW(w, 0, 2)
	w2 := SliceChannelsW(w, 2, 3)
	parts := ConcatChannels(
		DepthwiseConv2D(x1, w1, 1, 1, true),
		DepthwiseConv2D(x2, w2, 1, 1, true),
	)
	if d := MaxAbsDiff(full, parts); d > 1e-4 {
		t.Errorf("commutativity violated: %g", d)
	}
}

// SliceChannelsW slices a depthwise weight tensor [kh][kw][C] along C.
func SliceChannelsW(w *Tensor, off, count int) *Tensor {
	kh, kw := w.Shape[0], w.Shape[1]
	c := w.Shape[2]
	out := New(kh, kw, count)
	for i := 0; i < kh*kw; i++ {
		for k := 0; k < count; k++ {
			out.Data[i*count+k] = w.Data[i*c+off+k]
		}
	}
	return out
}

func TestAccumulateInto(t *testing.T) {
	a := New(4)
	b := New(4)
	a.Data = []float32{1, 2, 3, 4}
	b.Data = []float32{10, 20, 30, 40}
	AccumulateInto(a, b)
	want := []float32{11, 22, 33, 44}
	for i := range want {
		if a.Data[i] != want[i] {
			t.Fatalf("AccumulateInto = %v", a.Data)
		}
	}
}

func TestReLUAndSigmoid(t *testing.T) {
	x := New(4)
	x.Data = []float32{-1, 0, 1, 2}
	r := ReLU(x)
	if r.Data[0] != 0 || r.Data[2] != 1 {
		t.Errorf("ReLU = %v", r.Data)
	}
	if x.Data[0] != -1 {
		t.Error("ReLU mutated input")
	}
	s := Sigmoid(x)
	if !almostEq(s.Data[1], 0.5) {
		t.Errorf("Sigmoid(0) = %v", s.Data[1])
	}
	if s.Data[0] >= 0.5 || s.Data[3] <= 0.5 {
		t.Error("Sigmoid not monotone")
	}
}

func TestConcatAndSliceRoundTrip(t *testing.T) {
	x1 := New(1, 3, 3, 2)
	x2 := New(1, 3, 3, 5)
	x1.FillRandom(8)
	x2.FillRandom(9)
	cc := ConcatChannels(x1, x2)
	if cc.Shape[3] != 7 {
		t.Fatalf("concat channels = %d", cc.Shape[3])
	}
	back1 := SliceChannels(cc, 0, 2)
	back2 := SliceChannels(cc, 2, 5)
	if MaxAbsDiff(x1, back1) != 0 || MaxAbsDiff(x2, back2) != 0 {
		t.Error("slice does not invert concat")
	}
}

func TestPooling(t *testing.T) {
	x := New(1, 2, 2, 1)
	x.Data = []float32{1, 2, 3, 4}
	mp := MaxPool(x, 2, 2, false)
	if len(mp.Data) != 1 || mp.Data[0] != 4 {
		t.Errorf("MaxPool = %v", mp.Data)
	}
	ap := AvgPool(x, 2, 2, false)
	if !almostEq(ap.Data[0], 2.5) {
		t.Errorf("AvgPool = %v", ap.Data)
	}
	gp := GlobalAvgPool(x)
	if !almostEq(gp.Data[0], 2.5) {
		t.Errorf("GlobalAvgPool = %v", gp.Data)
	}
}

func TestDense(t *testing.T) {
	x := New(1, 1, 1, 3)
	x.Data = []float32{1, 2, 3}
	w := New(3, 2)
	w.Data = []float32{
		1, 0,
		0, 1,
		1, 1,
	}
	y := Dense(x, w)
	if !almostEq(y.Data[0], 4) || !almostEq(y.Data[1], 5) {
		t.Errorf("Dense = %v", y.Data)
	}
}

func TestMulKnown(t *testing.T) {
	a := New(3)
	b := New(3)
	a.Data = []float32{1, 2, 3}
	b.Data = []float32{4, 5, 6}
	y := Mul(a, b)
	want := []float32{4, 10, 18}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("Mul = %v", y.Data)
		}
	}
}

func TestStridedAndDilatedConvShapes(t *testing.T) {
	x := New(1, 9, 9, 1)
	x.FillRandom(3)
	w := RandomWeights(4, 3, 3, 1, 2)
	y := Conv2D(x, w, 2, 1, true)
	if y.Shape[1] != 5 || y.Shape[2] != 5 || y.Shape[3] != 2 {
		t.Errorf("strided shape %v", y.Shape)
	}
	yd := Conv2D(x, w, 1, 2, false) // effective kernel 5
	if yd.Shape[1] != 5 || yd.Shape[2] != 5 {
		t.Errorf("dilated shape %v", yd.Shape)
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	if MaxAbsDiff(New(2), New(3)) < 1e20 {
		t.Error("shape mismatch should report huge diff")
	}
}
