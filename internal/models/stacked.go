package models

import (
	"fmt"

	"github.com/serenity-ml/serenity/internal/graph"
)

// StackedRandWire chains `cells` independently wired WS cells into one
// network, each cell consuming the previous cell's output tensor — the
// hourglass macro-structure of real RandWire networks ("many NAS and Random
// Network Generators design cells with single input and single output then
// stack them", Section 3.2). The resulting graphs scale the scheduling
// problem linearly while divide-and-conquer keeps each sub-problem
// cell-sized; the scalability benchmark relies on this.
func StackedRandWire(name string, cells int, cfg WSConfig) *graph.Graph {
	return stackCells(name, cells, cfg, func(c int) int64 {
		return cfg.Seed + int64(c)*7919
	})
}

// StackedUniformRandWire chains `cells` copies of ONE WS cell wiring — the
// same cfg.Seed for every cell — so all interior partition segments are
// structurally identical. This is the repeated-cell shape NAS-style networks
// actually ship (one searched cell, stacked), and therefore the best case for
// cross-request segment memoization: after the first cell's DP, every further
// copy is a memo hit.
func StackedUniformRandWire(name string, cells int, cfg WSConfig) *graph.Graph {
	return stackCells(name, cells, cfg, func(int) int64 { return cfg.Seed })
}

// stackCells builds the stacked network, drawing cell c's wiring seed from
// seedFor(c).
func stackCells(name string, cells int, cfg WSConfig, seedFor func(c int) int64) *graph.Graph {
	if cells < 1 {
		panic("models: stacked RandWire needs at least one cell")
	}
	b := graph.NewBuilder(name)
	shape := graph.Shape{1, cfg.HW, cfg.HW, cfg.Channel}
	cur := b.Input(shape)

	for c := 0; c < cells; c++ {
		cellCfg := cfg
		cellCfg.Seed = seedFor(c)
		edges := wsEdges(cellCfg)
		preds := make([][]int, cellCfg.Nodes)
		for _, e := range edges {
			preds[e[1]] = append(preds[e[1]], e[0])
		}
		stem := b.PointwiseConv(cur, cfg.Channel)
		ids := make([]int, cellCfg.Nodes)
		for i := 0; i < cellCfg.Nodes; i++ {
			var src int
			switch len(preds[i]) {
			case 0:
				src = stem
			case 1:
				src = ids[preds[i][0]]
			default:
				ops := make([]int, len(preds[i]))
				for j, p := range preds[i] {
					ops[j] = ids[p]
				}
				src = b.Add(ops...)
			}
			ids[i] = b.SepConv(src, cfg.Channel, 3, 1, graph.PadSame)
		}
		g := b.Graph()
		var sinks []int
		for _, id := range ids {
			if len(g.Nodes[id].Succs) == 0 {
				sinks = append(sinks, id)
			}
		}
		if len(sinks) == 1 {
			cur = sinks[0]
		} else {
			cur = b.Add(sinks...)
		}
		// A 1x1 projection forms the single-tensor cell boundary.
		cur = b.PointwiseConv(cur, cfg.Channel)
	}
	g := b.Graph()
	g.Name = fmt.Sprintf("%s_x%d", name, cells)
	return g
}
