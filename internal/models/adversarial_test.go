package models

import "testing"

// TestAdversarialWideGraph pins the generator's structural promises: a valid
// DAG, deterministic per seed, distinct across seeds, with the full branch
// fan-out hanging off one stem (the shape that defeats articulation-point
// partitioning and maximizes DP frontier width).
func TestAdversarialWideGraph(t *testing.T) {
	g := AdversarialWideGraph("adv", 8, 3, 8, 4, 7)
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	if ins := g.Inputs(); len(ins) != 1 {
		t.Errorf("inputs = %d, want 1", len(ins))
	}
	// The stem (the input's sole consumer) must fan out into every branch.
	stem := g.Nodes[g.Inputs()[0]].Succs[0]
	if got := len(g.Nodes[stem].Succs); got != 8 {
		t.Errorf("stem fans out to %d branches, want 8", got)
	}
	// Node count: input + stem + chains (8 chains of depth 2..4, SepConv is
	// one fused node) + merge + head.
	if n := g.NumNodes(); n < 4+8*2 || n > 4+8*4 {
		t.Errorf("node count %d outside the expected envelope", n)
	}

	if a, b := AdversarialWideGraph("adv", 8, 3, 8, 4, 7), AdversarialWideGraph("adv", 8, 3, 8, 4, 7); a.Fingerprint() != b.Fingerprint() {
		t.Error("same seed produced different graphs")
	}
	if a, b := AdversarialWideGraph("adv", 8, 3, 8, 4, 1), AdversarialWideGraph("adv", 8, 3, 8, 4, 2); a.Fingerprint() == b.Fingerprint() {
		t.Error("different seeds produced identical graphs (no jitter)")
	}
}
