package models

import (
	"testing"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/partition"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
)

func TestAllBenchmarkCellsValid(t *testing.T) {
	for _, c := range BenchmarkCells() {
		g := c.Build()
		if err := g.Validate(); err != nil {
			t.Errorf("%s/%s: %v", c.Network, c.Cell, err)
		}
		if g.NumNodes() < 15 {
			t.Errorf("%s/%s: suspiciously small (%d nodes)", c.Network, c.Cell, g.NumNodes())
		}
	}
}

func TestBenchmarkCellsAreDeterministic(t *testing.T) {
	for _, c := range BenchmarkCells() {
		g1, g2 := c.Build(), c.Build()
		if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
			t.Errorf("%s/%s: non-deterministic build", c.Network, c.Cell)
		}
		for i := range g1.Nodes {
			if g1.Nodes[i].Op != g2.Nodes[i].Op || !g1.Nodes[i].Shape.Equal(g2.Nodes[i].Shape) {
				t.Errorf("%s/%s: node %d differs across builds", c.Network, c.Cell, i)
				break
			}
		}
	}
}

// TestSwiftNetTable2Statistics pins the structural numbers of Table 2.
func TestSwiftNetTable2Statistics(t *testing.T) {
	g := SwiftNet()
	if g.NumNodes() != 62 {
		t.Fatalf("SwiftNet nodes = %d, want 62", g.NumNodes())
	}
	p, err := partition.Split(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{21, 19, 22}
	sizes := p.Sizes()
	if len(sizes) != 3 {
		t.Fatalf("partition sizes = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("partition sizes = %v, want %v", sizes, want)
		}
	}

	rw, matches, err := rewrite.Rewrite(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 8 {
		t.Errorf("rewrite matches = %d, want 8 (3+3+2 concat groups)", len(matches))
	}
	// Table 2 reports the rewritten partition as {33, 28, 29} (the table's
	// "92" total is inconsistent with its own partition, which sums to 90).
	if rw.NumNodes() != 90 {
		t.Fatalf("rewritten nodes = %d, want 90", rw.NumNodes())
	}
	p2, err := partition.Split(rw)
	if err != nil {
		t.Fatal(err)
	}
	want2 := []int{33, 28, 29}
	sizes2 := p2.Sizes()
	if len(sizes2) != 3 {
		t.Fatalf("rewritten partition = %v, want %v", sizes2, want2)
	}
	for i := range want2 {
		if sizes2[i] != want2[i] {
			t.Fatalf("rewritten partition = %v, want %v", sizes2, want2)
		}
	}
}

func TestSwiftNetCellNodeCounts(t *testing.T) {
	if n := SwiftNetCellA().NumNodes(); n != 21 {
		t.Errorf("Cell A nodes = %d, want 21", n)
	}
	if n := SwiftNetCellB().NumNodes(); n != 20 {
		t.Errorf("Cell B nodes = %d, want 20", n)
	}
	if n := SwiftNetCellC().NumNodes(); n != 23 {
		t.Errorf("Cell C nodes = %d, want 23", n)
	}
}

func TestRandWireDeterministicPerSeed(t *testing.T) {
	a1 := RandWireCIFAR10CellA()
	a2 := RandWireCIFAR10CellA()
	if a1.NumEdges() != a2.NumEdges() {
		t.Error("same seed produced different wiring")
	}
	b := RandWireCIFAR10CellB()
	if a1.NumEdges() == b.NumEdges() && a1.NumNodes() == b.NumNodes() {
		// Different seeds and sizes could coincide, but both is unlikely;
		// check the structure actually differs.
		same := true
		if a1.NumNodes() == b.NumNodes() {
			for i := range a1.Nodes {
				if len(a1.Nodes[i].Preds) != len(b.Nodes[i].Preds) {
					same = false
					break
				}
			}
		}
		if same {
			t.Error("different seeds produced identical wiring")
		}
	}
}

func TestRandWireHasNoRewriteMatches(t *testing.T) {
	// RandWire aggregates with weighted sums, not concats: Figure 10 shows
	// zero graph-rewriting gain for RandWire, which our generators preserve.
	for _, c := range BenchmarkCells() {
		if c.Network != "RandWire" {
			continue
		}
		if ms := rewrite.FindMatches(c.Build()); len(ms) != 0 {
			t.Errorf("%s %s: unexpected rewrite matches %d", c.Network, c.Cell, len(ms))
		}
	}
}

func TestDARTSAndSwiftNetHaveRewriteMatches(t *testing.T) {
	if ms := rewrite.FindMatches(DARTSNormalCell()); len(ms) != 1 {
		t.Errorf("DARTS matches = %d, want 1", len(ms))
	}
	for name, n := range map[string]int{"A": 3, "B": 3, "C": 2} {
		var matches int
		switch name {
		case "A":
			matches = len(rewrite.FindMatches(SwiftNetCellA()))
		case "B":
			matches = len(rewrite.FindMatches(SwiftNetCellB()))
		case "C":
			matches = len(rewrite.FindMatches(SwiftNetCellC()))
		}
		if matches != n {
			t.Errorf("SwiftNet cell %s matches = %d, want %d", name, matches, n)
		}
	}
}

// TestDPBeatsOrMatchesBaselinesOnAllCells is Figure 10's direction on every
// benchmark cell.
func TestDPBeatsOrMatchesBaselinesOnAllCells(t *testing.T) {
	for _, c := range BenchmarkCells() {
		g := c.Build()
		m := sched.NewMemModel(g)
		ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if ar.Flag != dp.FlagSolution {
			t.Fatalf("%s/%s: %v", c.Network, c.Cell, ar.Flag)
		}
		kahn, _ := sched.KahnFIFO(g)
		if kp := m.MustPeak(kahn); kp < ar.Peak {
			t.Errorf("%s/%s: Kahn %d beats DP %d", c.Network, c.Cell, kp, ar.Peak)
		}
		dfs, _ := sched.DFSEmission(g)
		if dp_ := m.MustPeak(dfs); dp_ < ar.Peak {
			t.Errorf("%s/%s: DFS %d beats DP %d", c.Network, c.Cell, dp_, ar.Peak)
		}
	}
}

// TestRewriteNeverHurtsOptimalPeak checks the graph-rewriting direction on
// every benchmark cell (Figure 10's second bar).
func TestRewriteNeverHurtsOptimalPeak(t *testing.T) {
	for _, c := range BenchmarkCells() {
		g := c.Build()
		rw, _, err := rewrite.Rewrite(g)
		if err != nil {
			t.Fatal(err)
		}
		before, err := dp.AdaptiveSchedule(sched.NewMemModel(g), dp.AdaptiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		after, err := dp.AdaptiveSchedule(sched.NewMemModel(rw), dp.AdaptiveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if after.Peak > before.Peak {
			t.Errorf("%s/%s: rewrite increased optimal peak %d -> %d",
				c.Network, c.Cell, before.Peak, after.Peak)
		}
	}
}

func TestMACsAndWeightsPlausible(t *testing.T) {
	specs := Table1Specs()
	if len(specs) != 4 {
		t.Fatalf("Table 1 rows = %d, want 4", len(specs))
	}
	for _, s := range specs {
		if s.MACs <= 0 || s.Weights <= 0 {
			t.Errorf("%s: non-positive MACs/weights (%d, %d)", s.Network, s.MACs, s.Weights)
		}
		// Same order of magnitude as the paper (substituted generators
		// cannot match exactly; see DESIGN.md).
		if s.MACs > s.PaperMACs*40 || s.MACs < s.PaperMACs/40 {
			t.Errorf("%s: MACs %d implausibly far from paper's %d", s.Network, s.MACs, s.PaperMACs)
		}
		if s.PaperTop1 == "" {
			t.Errorf("%s: missing cited accuracy", s.Network)
		}
	}
}

func TestWSEdgesProperties(t *testing.T) {
	cfg := WSConfig{Nodes: 32, K: 4, P: 0.75, Seed: 7, HW: 16, Channel: 8}
	edges := wsEdges(cfg)
	if len(edges) < cfg.Nodes || len(edges) > cfg.Nodes*cfg.K {
		t.Fatalf("edge count %d out of range", len(edges))
	}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not oriented low->high", e)
		}
		if e[1] >= cfg.Nodes {
			t.Fatalf("edge %v out of range", e)
		}
		if seen[e] {
			t.Fatalf("duplicate edge %v", e)
		}
		seen[e] = true
	}
}

func TestRandWireCellStructure(t *testing.T) {
	g := RandWireCIFAR10CellA()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Inputs()) != 1 {
		t.Errorf("inputs = %v", g.Inputs())
	}
	if len(g.Outputs()) != 1 {
		t.Errorf("outputs = %v", g.Outputs())
	}
}
