package models

// ParetoPoint is one network in the accuracy-vs-compute scatter of
// Figures 2 and 14. The values are literature numbers collected from the
// papers the figure cites; they are static data (the figure is
// motivational, not measured).
type ParetoPoint struct {
	Model     string
	MACsM     float64 // millions of multiply-accumulates
	ParamsM   float64 // millions of parameters
	Top1      float64 // ImageNet top-1 accuracy (%)
	Irregular bool    // true for NAS / random-wiring networks
}

// ParetoDataset returns the scatter points of Figure 2/14.
func ParetoDataset() []ParetoPoint {
	return []ParetoPoint{
		// Regular-topology, hand-designed networks.
		{Model: "Inception V1", MACsM: 1430, ParamsM: 6.8, Top1: 69.8, Irregular: false},
		{Model: "MobileNet", MACsM: 569, ParamsM: 4.2, Top1: 70.6, Irregular: false},
		{Model: "ShuffleNet", MACsM: 140, ParamsM: 1.4, Top1: 67.6, Irregular: false},
		{Model: "Inception V2", MACsM: 1940, ParamsM: 11.2, Top1: 74.8, Irregular: false},
		{Model: "Inception V3", MACsM: 5720, ParamsM: 23.8, Top1: 78.8, Irregular: false},
		{Model: "Xception", MACsM: 8400, ParamsM: 22.8, Top1: 79.0, Irregular: false},
		{Model: "ResNet-152", MACsM: 11300, ParamsM: 60.2, Top1: 77.8, Irregular: false},
		{Model: "SENet", MACsM: 20700, ParamsM: 145.8, Top1: 82.7, Irregular: false},
		{Model: "ResNeXt-101", MACsM: 7800, ParamsM: 83.6, Top1: 80.9, Irregular: false},
		{Model: "PolyNet", MACsM: 34700, ParamsM: 92.0, Top1: 81.3, Irregular: false},
		{Model: "Inception ResNet V2", MACsM: 13200, ParamsM: 55.8, Top1: 80.1, Irregular: false},
		{Model: "Inception V4", MACsM: 12300, ParamsM: 42.7, Top1: 80.0, Irregular: false},
		{Model: "DPN-131", MACsM: 16000, ParamsM: 79.5, Top1: 81.5, Irregular: false},

		// Irregularly wired networks from NAS and random generators.
		{Model: "NASNet-A", MACsM: 564, ParamsM: 5.3, Top1: 74.0, Irregular: true},
		{Model: "NASNet-B", MACsM: 488, ParamsM: 5.3, Top1: 72.8, Irregular: true},
		{Model: "AmoebaNet-A", MACsM: 555, ParamsM: 5.1, Top1: 74.5, Irregular: true},
		{Model: "AmoebaNet-B", MACsM: 555, ParamsM: 5.3, Top1: 74.0, Irregular: true},
		{Model: "AmoebaNet-A (large)", MACsM: 23100, ParamsM: 86.7, Top1: 82.8, Irregular: true},
		{Model: "RandWire (small)", MACsM: 583, ParamsM: 5.6, Top1: 74.7, Irregular: true},
		{Model: "RandWire (large)", MACsM: 4000, ParamsM: 31.9, Top1: 79.0, Irregular: true},
		{Model: "DARTS", MACsM: 574, ParamsM: 4.7, Top1: 73.3, Irregular: true},
	}
}

// ParetoFrontier returns, for each point class (irregular vs regular), the
// points on the accuracy-vs-MACs Pareto frontier (maximize accuracy,
// minimize compute).
func ParetoFrontier(points []ParetoPoint, irregular bool) []ParetoPoint {
	var class []ParetoPoint
	for _, p := range points {
		if p.Irregular == irregular {
			class = append(class, p)
		}
	}
	var out []ParetoPoint
	for _, p := range class {
		dominated := false
		for _, q := range class {
			if q.Model != p.Model && q.MACsM <= p.MACsM && q.Top1 >= p.Top1 &&
				(q.MACsM < p.MACsM || q.Top1 > p.Top1) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}
