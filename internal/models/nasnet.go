package models

import (
	"github.com/serenity-ml/serenity/internal/graph"
)

// Additional NAS cells from the Figure 2 population. They are not part of
// the paper's nine-cell evaluation, but they exercise the same scheduling
// machinery and ship as extra workloads for users of the library.

// NASNetACell builds the NASNet-A normal cell (Zoph et al. 2018): five
// blocks, each combining two of {separable conv, identity, average pool}
// over the two cell inputs, concatenated at the end. Shapes follow the
// mobile (224×224, N=4) configuration at the first normal cell.
func NASNetACell() *graph.Graph {
	const (
		hw = 28
		c  = 44 // NASNet-A (4 @ 1056) first-cell filter count
	)
	b := graph.NewBuilder("nasnet_a_normal")
	h0 := b.Input(graph.Shape{1, hw, hw, c}) // previous cell
	h1 := b.Input(graph.Shape{1, hw, hw, c}) // current input
	p0 := b.PointwiseConv(h0, c)
	p1 := b.PointwiseConv(h1, c)

	// Block structure of the published NASNet-A normal cell.
	b1 := b.Add(b.SepConv(p1, c, 3, 1, graph.PadSame), b.Identity(p1))
	b2 := b.Add(b.SepConv(p0, c, 3, 1, graph.PadSame), b.SepConv(p1, c, 5, 1, graph.PadSame))
	b3 := b.Add(b.AvgPool(p1, 3, 1, graph.PadSame), b.Identity(p0))
	b4 := b.Add(b.AvgPool(p0, 3, 1, graph.PadSame), b.AvgPool(p0, 3, 1, graph.PadSame))
	b5 := b.Add(b.SepConv(p0, c, 5, 1, graph.PadSame), b.SepConv(p0, c, 3, 1, graph.PadSame))

	out := b.Concat(b1, b2, b3, b4, b5)
	b.PointwiseConv(out, c) // next cell's preprocessing
	return b.Graph()
}

// AmoebaNetACell builds the AmoebaNet-A normal cell (Real et al. 2019):
// five pairwise combinations with average pooling, separable convolutions
// and skip connections, concatenating the unused states.
func AmoebaNetACell() *graph.Graph {
	const (
		hw = 28
		c  = 36
	)
	b := graph.NewBuilder("amoebanet_a_normal")
	h0 := b.Input(graph.Shape{1, hw, hw, c})
	h1 := b.Input(graph.Shape{1, hw, hw, c})
	p0 := b.PointwiseConv(h0, c)
	p1 := b.PointwiseConv(h1, c)

	s2 := b.Add(b.AvgPool(p0, 3, 1, graph.PadSame), b.SepConv(p1, c, 3, 1, graph.PadSame))
	s3 := b.Add(b.Identity(p0), b.SepConv(p1, c, 5, 1, graph.PadSame))
	s4 := b.Add(b.AvgPool(s2, 3, 1, graph.PadSame), b.Identity(p1))
	s5 := b.Add(b.SepConv(s3, c, 3, 1, graph.PadSame), b.Identity(s2))
	s6 := b.Add(b.SepConv(p0, c, 3, 1, graph.PadSame), b.Identity(p0))

	out := b.Concat(s4, s5, s6)
	b.PointwiseConv(out, c)
	return b.Graph()
}

// ExtraCells lists the additional workloads for sweeps and fuzz-style
// testing across generators.
func ExtraCells() []BenchCell {
	return []BenchCell{
		{Network: "NASNet-A", Dataset: "ImageNet", Cell: "Normal", Build: NASNetACell},
		{Network: "AmoebaNet-A", Dataset: "ImageNet", Cell: "Normal", Build: AmoebaNetACell},
	}
}
