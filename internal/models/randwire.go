package models

import (
	"fmt"
	"math/rand"

	"github.com/serenity-ml/serenity/internal/graph"
)

// RandWire (Xie et al. 2019) networks are built from randomly wired cells
// generated with the Watts–Strogatz WS(n, k, p) model: a ring of n nodes
// each connected to its k nearest neighbours, with every clockwise edge
// rewired to a uniform random target with probability p. Edges are oriented
// from lower to higher node index to form a DAG; each graph node aggregates
// its inputs with a weighted sum and applies a ReLU-SepConv-BN transform
// (modeled as Add + SepConv); sources hang off the cell input and sink
// outputs are averaged into the cell output.
//
// The index ordering of a WS ring has no memory locality — which is exactly
// why memory-oblivious emission orders do poorly on these cells (Figure 3).

// WSConfig parameterizes a Watts–Strogatz cell.
type WSConfig struct {
	Nodes   int     // ring size n
	K       int     // nearest neighbours (even)
	P       float64 // rewiring probability
	Seed    int64   // generator seed (cells are deterministic per seed)
	HW      int     // feature map side
	Channel int     // channels per node
}

// wsEdges generates the WS random graph as directed index pairs (u < v).
func wsEdges(cfg WSConfig) [][2]int {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Nodes
	type edge struct{ u, v int }
	seen := map[edge]bool{}
	var edges []edge
	addEdge := func(a, b int) {
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		e := edge{a, b}
		if !seen[e] {
			seen[e] = true
			edges = append(edges, e)
		}
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= cfg.K/2; j++ {
			target := (i + j) % n
			if rng.Float64() < cfg.P {
				// Rewire the clockwise edge to a uniform random node.
				target = rng.Intn(n)
				for target == i {
					target = rng.Intn(n)
				}
			}
			addEdge(i, target)
		}
	}
	out := make([][2]int, len(edges))
	for i, e := range edges {
		out[i] = [2]int{e.u, e.v}
	}
	return out
}

// RandWireCell builds one randomly wired cell.
func RandWireCell(name string, cfg WSConfig) *graph.Graph {
	if cfg.Nodes < 4 || cfg.K < 2 || cfg.K%2 != 0 {
		panic(fmt.Sprintf("models: bad WS config %+v", cfg))
	}
	edges := wsEdges(cfg)
	preds := make([][]int, cfg.Nodes)
	for _, e := range edges {
		preds[e[1]] = append(preds[e[1]], e[0])
	}

	b := graph.NewBuilder(name)
	shape := graph.Shape{1, cfg.HW, cfg.HW, cfg.Channel}
	in := b.Input(shape)
	stem := b.PointwiseConv(in, cfg.Channel)

	ids := make([]int, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		var src int
		switch len(preds[i]) {
		case 0:
			src = stem // source nodes consume the cell input
		case 1:
			src = ids[preds[i][0]]
		default:
			ops := make([]int, len(preds[i]))
			for j, p := range preds[i] {
				ops[j] = ids[p]
			}
			src = b.Add(ops...) // weighted-sum aggregation
		}
		ids[i] = b.SepConv(src, cfg.Channel, 3, 1, graph.PadSame)
	}

	// Average the sink nodes into the cell output.
	g := b.Graph()
	var sinks []int
	for _, id := range ids {
		if len(g.Nodes[id].Succs) == 0 {
			sinks = append(sinks, id)
		}
	}
	var out int
	if len(sinks) == 1 {
		out = sinks[0]
	} else {
		out = b.Add(sinks...)
	}
	b.PointwiseConv(out, cfg.Channel)
	return g
}

// The five RandWire benchmark cells (Figure 10's RandWire columns): two for
// CIFAR-10 and three for CIFAR-100, WS(32, 4, 0.75) as in the RandWire
// small-regime networks, at the resolutions of the corresponding stage.
func randWireConfigs() map[string]WSConfig {
	return map[string]WSConfig{
		"randwire_c10_a":  {Nodes: 32, K: 4, P: 0.75, Seed: 101, HW: 32, Channel: 16},
		"randwire_c10_b":  {Nodes: 32, K: 4, P: 0.75, Seed: 102, HW: 16, Channel: 32},
		"randwire_c100_a": {Nodes: 32, K: 4, P: 0.75, Seed: 201, HW: 32, Channel: 16},
		"randwire_c100_b": {Nodes: 32, K: 4, P: 0.75, Seed: 202, HW: 16, Channel: 32},
		"randwire_c100_c": {Nodes: 32, K: 4, P: 0.75, Seed: 203, HW: 8, Channel: 64},
	}
}

// RandWireCIFAR10CellA returns the first CIFAR-10 RandWire benchmark cell.
func RandWireCIFAR10CellA() *graph.Graph {
	return RandWireCell("randwire_c10_a", randWireConfigs()["randwire_c10_a"])
}

// RandWireCIFAR10CellB returns the second CIFAR-10 RandWire benchmark cell.
func RandWireCIFAR10CellB() *graph.Graph {
	return RandWireCell("randwire_c10_b", randWireConfigs()["randwire_c10_b"])
}

// RandWireCIFAR100CellA returns the first CIFAR-100 RandWire benchmark cell.
func RandWireCIFAR100CellA() *graph.Graph {
	return RandWireCell("randwire_c100_a", randWireConfigs()["randwire_c100_a"])
}

// RandWireCIFAR100CellB returns the second CIFAR-100 RandWire benchmark cell.
func RandWireCIFAR100CellB() *graph.Graph {
	return RandWireCell("randwire_c100_b", randWireConfigs()["randwire_c100_b"])
}

// RandWireCIFAR100CellC returns the third CIFAR-100 RandWire benchmark cell.
func RandWireCIFAR100CellC() *graph.Graph {
	return RandWireCell("randwire_c100_c", randWireConfigs()["randwire_c100_c"])
}
