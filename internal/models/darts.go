// Package models generates the irregularly wired benchmark networks of the
// paper's evaluation (Table 1): the DARTS ImageNet normal cell, SwiftNet's
// three cells for human-presence detection, and RandWire Watts–Strogatz
// cells for CIFAR-10/100. The paper's exact artifacts are not published, so
// these generators follow each source paper's published construction and
// match the structural statistics the paper reports (e.g. SwiftNet's 62
// nodes partitioning as {21,19,22}, 92 = {33,28,29} after rewriting); see
// DESIGN.md "Substitutions".
package models

import (
	"github.com/serenity-ml/serenity/internal/graph"
)

// DARTSNormalCell builds the learned DARTS (V2) normal cell for ImageNet,
// including the two 1×1 preprocessing convolutions and the next cell's 1×1
// preprocessing conv after the output concat (the concat→conv pair is what
// channel-wise rewriting targets). Genotype (Liu et al. 2019):
//
//	s2 = sep3(s0) + sep3(s1)
//	s3 = sep3(s0) + sep3(s1)
//	s4 = sep3(s1) + skip(s0)
//	s5 = skip(s0) + dil3(s2)
//	out = concat(s2, s3, s4, s5)
//
// The first normal cell has the highest peak footprint and the rest of the
// network stacks the same cell (paper Section 4.1), so this single cell is
// the scheduling benchmark.
func DARTSNormalCell() *graph.Graph {
	const (
		hw = 28 // feature map side at the first normal cell
		c  = 48 // cell channel count (the first ImageNet normal cell)
	)
	b := graph.NewBuilder("darts_normal")
	in0 := b.Input(graph.Shape{1, hw, hw, c}) // c_{k-2}
	in1 := b.Input(graph.Shape{1, hw, hw, c}) // c_{k-1}
	pre0 := b.PointwiseConv(in0, c)
	pre1 := b.PointwiseConv(in1, c)

	// DARTS sep_conv_3x3 is two stacked ReLU-SepConv-BN blocks.
	sep3 := func(x int) int {
		return b.SepConv(b.SepConv(x, c, 3, 1, graph.PadSame), c, 3, 1, graph.PadSame)
	}
	s2 := b.Add(sep3(pre0), sep3(pre1))
	s3 := b.Add(sep3(pre0), sep3(pre1))
	s4 := b.Add(sep3(pre1), b.Identity(pre0))
	s5 := b.Add(b.Identity(pre0), b.DilConv(s2, c, 3, 1, 2, graph.PadSame))

	out := b.Concat(s2, s3, s4, s5)
	b.PointwiseConv(out, c) // next cell's preprocessing: the rewrite target
	return b.Graph()
}
