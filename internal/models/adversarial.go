package models

import (
	"fmt"
	"math/rand"

	"github.com/serenity-ml/serenity/internal/graph"
)

// AdversarialWideGraph builds the memory drill's worst case: a shared stem
// fanning out into `branches` independent SepConv chains of about `depth`
// operations each, merged by a single Add before the output head.
//
// The shape is chosen to maximize the DP's frontier per node scheduled. With
// B independent chains the scheduler may interleave them freely, so the
// signatures alive at level L are the compositions of L into B parts bounded
// by the chain depths — the frontier peaks near (depth+1)^B / (B*depth+1)
// states, exponential in the branch count, while the graph itself stays
// small. And because every interior node lies on a stem→merge path, the
// graph has no internal articulation points: divide-and-conquer cannot cut
// it, so the whole frontier lands in ONE segment's search. That is exactly
// the profile that drives a byte-accounted search into its MemLimit valve
// (and an ungoverned one toward an OOM kill), which is what the OOM-chaos
// suite needs to provoke deterministically.
//
// The seed jitters each chain's depth by ±1, giving the drill distinct
// fingerprints (no memo reuse across passes) without changing the frontier
// profile; generation is deterministic per (seed, shape) so chaos runs
// replay bit-identically.
func AdversarialWideGraph(name string, branches, depth, hw, channels int, seed int64) *graph.Graph {
	if branches < 2 || depth < 1 || hw < 1 || channels < 1 {
		panic(fmt.Sprintf("models: bad adversarial config branches=%d depth=%d hw=%d channels=%d",
			branches, depth, hw, channels))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(name)
	shape := graph.Shape{1, hw, hw, channels}
	in := b.Input(shape)
	stem := b.PointwiseConv(in, channels)

	ends := make([]int, branches)
	for i := 0; i < branches; i++ {
		d := depth + rng.Intn(3) - 1 // depth-1, depth, or depth+1
		if d < 1 {
			d = 1
		}
		cur := stem
		for j := 0; j < d; j++ {
			cur = b.SepConv(cur, channels, 3, 1, graph.PadSame)
		}
		ends[i] = cur
	}
	merged := b.Add(ends...)
	b.PointwiseConv(merged, channels)
	return b.Graph()
}
