package models

import (
	"fmt"

	"github.com/serenity-ml/serenity/internal/graph"
)

// SwiftNet (Zhang et al. 2019) is a NAS-found human-presence-detection
// network built from three multi-branch cells dominated by concatenations —
// the paper's running example (Figures 3, 12; Table 2). The generators below
// reproduce the structural statistics the paper reports:
//
//	total nodes      62 = {21, 19, 22}   (input + cell interiors, Table 2)
//	after rewriting  92 = {33, 28, 29}
//
// Each cell is a set of parallel groups (branches → concat → conv) off the
// cell input plus a strided 1×1 projection skip path, merged by an Add that
// forms the single-tensor cell boundary (the hourglass waist the
// divide-and-conquer stage cuts at).

// swiftCellA appends Cell A (20 interior nodes) consuming node in
// (shape hw×hw×c), returning the cell output (hw/2 × hw/2 × c).
func swiftCellA(b *graph.Builder, in int, c int) int {
	skip := b.Conv(in, c, 1, 2, graph.PadSame)
	kernels := []int{3, 5, 3, 5}
	groups := make([]int, 3)
	for gi := range groups {
		branches := make([]int, 4)
		for bi := range branches {
			branches[bi] = b.DepthwiseConv(in, kernels[bi], 2, graph.PadSame)
		}
		cc := b.Concat(branches...)
		groups[gi] = b.PointwiseConv(cc, c)
	}
	return b.Add(skip, groups[0], groups[1], groups[2])
}

// swiftCellB appends Cell B (19 interior nodes): three 3-branch groups plus
// two activation nodes.
func swiftCellB(b *graph.Builder, in int, c int) int {
	skip := b.Conv(in, c, 1, 2, graph.PadSame)
	kernels := []int{3, 5, 3}
	groups := make([]int, 3)
	for gi := range groups {
		branches := make([]int, 3)
		for bi := range branches {
			branches[bi] = b.DepthwiseConv(in, kernels[bi], 2, graph.PadSame)
		}
		cc := b.Concat(branches...)
		groups[gi] = b.PointwiseConv(cc, c)
	}
	g0 := b.ReLU(groups[0])
	g1 := b.ReLU(groups[1])
	return b.Add(skip, g0, g1, groups[2])
}

// swiftCellC appends Cell C (22 interior nodes): a 4-branch and a 3-branch
// group feeding a depthwise-separable tail chain, merged with the skip path.
func swiftCellC(b *graph.Builder, in int, c int) int {
	skip := b.Conv(in, c, 1, 2, graph.PadSame)

	branches4 := make([]int, 4)
	for bi := range branches4 {
		branches4[bi] = b.DepthwiseConv(in, 3, 2, graph.PadSame)
	}
	g1 := b.PointwiseConv(b.Concat(branches4...), c)

	branches3 := make([]int, 3)
	for bi := range branches3 {
		branches3[bi] = b.DepthwiseConv(in, 5, 2, graph.PadSame)
	}
	g2 := b.PointwiseConv(b.Concat(branches3...), c)

	merged := b.Add(g1, g2)
	t := merged
	for i := 0; i < 2; i++ {
		t = b.DepthwiseConv(t, 3, 1, graph.PadSame)
		t = b.PointwiseConv(t, c)
		t = b.ReLU(t)
	}
	t = b.DepthwiseConv(t, 3, 1, graph.PadSame)
	t = b.PointwiseConv(t, c)
	return b.Add(skip, t)
}

// SwiftNet channel/resolution configuration. The HPD input is 112×112
// grayscale; the stem (outside the scheduled cells, constant memory) brings
// it to 44×44×8, calibrated so the schedule CDF straddles the 250 KB device
// constraint as in Figure 3(b).
const (
	swiftHW = 44
	swiftC  = 8
)

// SwiftNetCellA returns standalone Cell A (21 nodes incl. its input).
func SwiftNetCellA() *graph.Graph {
	b := graph.NewBuilder("swiftnet_cell_a")
	in := b.Input(graph.Shape{1, swiftHW, swiftHW, swiftC})
	swiftCellA(b, in, swiftC)
	return b.Graph()
}

// SwiftNetCellB returns standalone Cell B (20 nodes incl. its input).
func SwiftNetCellB() *graph.Graph {
	b := graph.NewBuilder("swiftnet_cell_b")
	in := b.Input(graph.Shape{1, swiftHW / 2, swiftHW / 2, swiftC})
	swiftCellB(b, in, swiftC)
	return b.Graph()
}

// SwiftNetCellC returns standalone Cell C (23 nodes incl. its input).
func SwiftNetCellC() *graph.Graph {
	b := graph.NewBuilder("swiftnet_cell_c")
	in := b.Input(graph.Shape{1, swiftHW / 4, swiftHW / 4, swiftC})
	swiftCellC(b, in, swiftC)
	return b.Graph()
}

// SwiftNet returns the full three-cell network: 62 nodes whose
// divide-and-conquer partition is {21, 19, 22} as in Table 2.
func SwiftNet() *graph.Graph {
	b := graph.NewBuilder("swiftnet")
	in := b.Input(graph.Shape{1, swiftHW, swiftHW, swiftC})
	a := swiftCellA(b, in, swiftC)
	bb := swiftCellB(b, a, swiftC)
	swiftCellC(b, bb, swiftC)
	g := b.Graph()
	if g.NumNodes() != 62 {
		panic(fmt.Sprintf("models: SwiftNet has %d nodes, want 62", g.NumNodes()))
	}
	return g
}
