package models

import (
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/rewrite"
	"github.com/serenity-ml/serenity/internal/sched"
)

func TestExtraCellsValidAndSchedulable(t *testing.T) {
	for _, c := range ExtraCells() {
		g := c.Build()
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", c.Network, err)
		}
		m := sched.NewMemModel(g)
		ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{StepTimeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if ar.Flag != dp.FlagSolution {
			t.Fatalf("%s: %v", c.Network, ar.Flag)
		}
		kahn, _ := sched.KahnFIFO(g)
		if kp := m.MustPeak(kahn); kp < ar.Peak {
			t.Errorf("%s: baseline %d beats DP %d", c.Network, kp, ar.Peak)
		}
	}
}

func TestExtraCellsRewriteDirection(t *testing.T) {
	for _, c := range ExtraCells() {
		g := c.Build()
		// Both cells end in concat -> pointwise conv: the channel-wise
		// pattern must match, and extended rules must also fire on the
		// Identity skip connections.
		if ms := rewrite.FindMatches(g); len(ms) != 1 {
			t.Errorf("%s: matches = %d, want 1", c.Network, len(ms))
		}
		ext, apps, err := rewrite.RewriteAll(g, rewrite.ExtendedRules(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(apps) < 2 {
			t.Errorf("%s: extended applications = %+v", c.Network, apps)
		}
		before, err := dp.AdaptiveSchedule(sched.NewMemModel(g), dp.AdaptiveOptions{StepTimeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		after, err := dp.AdaptiveSchedule(sched.NewMemModel(ext), dp.AdaptiveOptions{StepTimeout: 500 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		if after.Peak > before.Peak {
			t.Errorf("%s: extended rewriting raised peak %d -> %d", c.Network, before.Peak, after.Peak)
		}
	}
}
