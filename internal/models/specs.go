package models

import (
	"github.com/serenity-ml/serenity/internal/graph"
)

// BenchCell names one of the nine evaluation cells of Figures 10/11/13/15.
type BenchCell struct {
	Network string // column group in the figures
	Dataset string
	Cell    string // bar label within the group
	Build   func() *graph.Graph
}

// BenchmarkCells returns the nine cells of the paper's evaluation in figure
// order: DARTS normal; SwiftNet A, B, C; RandWire CIFAR-10 A, B; RandWire
// CIFAR-100 A, B, C.
func BenchmarkCells() []BenchCell {
	return []BenchCell{
		{Network: "DARTS", Dataset: "ImageNet", Cell: "Normal", Build: DARTSNormalCell},
		{Network: "SwiftNet", Dataset: "HPD", Cell: "Cell A", Build: SwiftNetCellA},
		{Network: "SwiftNet", Dataset: "HPD", Cell: "Cell B", Build: SwiftNetCellB},
		{Network: "SwiftNet", Dataset: "HPD", Cell: "Cell C", Build: SwiftNetCellC},
		{Network: "RandWire", Dataset: "CIFAR10", Cell: "Cell A", Build: RandWireCIFAR10CellA},
		{Network: "RandWire", Dataset: "CIFAR10", Cell: "Cell B", Build: RandWireCIFAR10CellB},
		{Network: "RandWire", Dataset: "CIFAR100", Cell: "Cell A", Build: RandWireCIFAR100CellA},
		{Network: "RandWire", Dataset: "CIFAR100", Cell: "Cell B", Build: RandWireCIFAR100CellB},
		{Network: "RandWire", Dataset: "CIFAR100", Cell: "Cell C", Build: RandWireCIFAR100CellC},
	}
}

// MACs returns the multiply-accumulate count of one node.
func MACs(g *graph.Graph, n *graph.Node) int64 {
	outElems := n.Shape.Elems()
	spatial := outElems
	if len(n.Shape) == 4 {
		spatial = int64(n.Shape[1]) * int64(n.Shape[2])
	}
	inC := int64(n.Attr.InChannels)
	outC := int64(n.Shape.Channels())
	k2 := int64(n.Attr.KernelH) * int64(n.Attr.KernelW)
	switch n.Op {
	case graph.OpConv, graph.OpPointwiseConv:
		return k2 * inC * outC * spatial
	case graph.OpDepthwiseConv:
		return k2 * outC * spatial
	case graph.OpSepConv, graph.OpDilConv:
		// depthwise k×k over inC channels + pointwise inC→outC
		return k2*inC*spatial + inC*outC*spatial
	case graph.OpPartialConv:
		return k2 * inC * outC * spatial
	case graph.OpPartialDWConv:
		return k2 * inC * spatial
	case graph.OpDense:
		return inC * int64(n.Shape[len(n.Shape)-1])
	case graph.OpAdd, graph.OpMul:
		return outElems * int64(len(n.Preds)-1)
	default:
		return 0
	}
}

// WeightCount returns the parameter count of one node.
func WeightCount(n *graph.Node) int64 {
	inC := int64(n.Attr.InChannels)
	outC := int64(n.Shape.Channels())
	k2 := int64(n.Attr.KernelH) * int64(n.Attr.KernelW)
	switch n.Op {
	case graph.OpConv, graph.OpPointwiseConv, graph.OpPartialConv:
		return k2 * inC * outC
	case graph.OpDepthwiseConv:
		return k2 * outC
	case graph.OpPartialDWConv:
		return k2 * inC
	case graph.OpSepConv, graph.OpDilConv:
		return k2*inC + inC*outC
	case graph.OpDense:
		return inC * int64(n.Shape[len(n.Shape)-1])
	default:
		return 0
	}
}

// GraphMACs sums MACs over all nodes.
func GraphMACs(g *graph.Graph) int64 {
	var total int64
	for _, n := range g.Nodes {
		total += MACs(g, n)
	}
	return total
}

// GraphWeights sums parameter counts over all nodes.
func GraphWeights(g *graph.Graph) int64 {
	var total int64
	for _, n := range g.Nodes {
		total += WeightCount(n)
	}
	return total
}

// Spec is one row of Table 1. MACs/weights are measured on our generated
// graphs (single benchmark cell scaled by the source network's cell count);
// Top-1 accuracy is cited from the paper (we do not train).
type Spec struct {
	Network    string
	Type       string
	Dataset    string
	MACs       int64
	Weights    int64
	PaperMACs  int64
	PaperWts   int64
	PaperTop1  string
	CellGraphs []*graph.Graph
}

// Table1Specs reproduces Table 1's rows.
func Table1Specs() []Spec {
	darts := DARTSNormalCell()
	swift := SwiftNet()
	rw10a, rw10b := RandWireCIFAR10CellA(), RandWireCIFAR10CellB()
	rw100a, rw100b, rw100c := RandWireCIFAR100CellA(), RandWireCIFAR100CellB(), RandWireCIFAR100CellC()

	sum := func(gs ...*graph.Graph) (m, w int64) {
		for _, g := range gs {
			m += GraphMACs(g)
			w += GraphWeights(g)
		}
		return m, w
	}
	dm, dw := sum(darts)
	// The DARTS ImageNet model stacks 14 cells of the same genotype.
	dm, dw = dm*14, dw*14
	sm, sw := sum(swift)
	r10m, r10w := sum(rw10a, rw10b)
	r100m, r100w := sum(rw100a, rw100b, rw100c)

	return []Spec{
		{Network: "DARTS", Type: "NAS", Dataset: "ImageNet", MACs: dm, Weights: dw,
			PaperMACs: 574_000_000, PaperWts: 4_700_000, PaperTop1: "73.3%", CellGraphs: []*graph.Graph{darts}},
		{Network: "SwiftNet", Type: "NAS", Dataset: "HPD", MACs: sm, Weights: sw,
			PaperMACs: 57_400_000, PaperWts: 249_700, PaperTop1: "95.1%", CellGraphs: []*graph.Graph{swift}},
		{Network: "RandWire", Type: "RAND", Dataset: "CIFAR10", MACs: r10m, Weights: r10w,
			PaperMACs: 111_000_000, PaperWts: 1_200_000, PaperTop1: "93.6%", CellGraphs: []*graph.Graph{rw10a, rw10b}},
		{Network: "RandWire", Type: "RAND", Dataset: "CIFAR100", MACs: r100m, Weights: r100w,
			PaperMACs: 160_000_000, PaperWts: 4_700_000, PaperTop1: "74.5%", CellGraphs: []*graph.Graph{rw100a, rw100b, rw100c}},
	}
}
