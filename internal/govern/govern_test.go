package govern

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// testGovernor builds a governor over a deterministic injected load.
func testGovernor(limit int64, load *int64, mu *sync.Mutex) *Governor {
	return New(Options{
		Limit:    limit,
		Headroom: 1, // effectively none; watermarks sit on limit-1
		ReadLoad: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			return *load
		},
	})
}

func TestLadderTransitions(t *testing.T) {
	var mu sync.Mutex
	load := int64(0)
	g := testGovernor(1000, &load, &mu)
	eff := int64(999)
	set := func(v int64) {
		mu.Lock()
		load = v
		mu.Unlock()
		g.Refresh()
	}

	steps := []struct {
		load int64
		want Level
	}{
		{0, LevelNormal},
		{int64(0.70*float64(eff)) - 1, LevelNormal},
		{int64(0.70*float64(eff)) + 1, LevelElevated},
		{int64(0.85*float64(eff)) + 1, LevelHigh},
		{int64(0.95*float64(eff)) + 1, LevelCritical},
		{0, LevelNormal}, // pressure clears
	}
	for _, s := range steps {
		set(s.load)
		if got := g.Level(); got != s.want {
			t.Fatalf("load %d: level %v, want %v", s.load, got, s.want)
		}
	}
}

func TestReserveLedgerDrivesLevel(t *testing.T) {
	var mu sync.Mutex
	load := int64(0)
	g := testGovernor(1 << 20, &load, &mu)

	// A reservation alone can escalate the level: the ledger counts toward
	// the watermarks even before the search allocates.
	r := g.Reserve(1 << 20)
	if got := g.Level(); got != LevelCritical {
		t.Fatalf("level after full-limit reservation: %v, want critical", got)
	}
	if s := g.Stats(); s.Reserved != 1<<20 {
		t.Fatalf("reserved %d, want %d", s.Reserved, 1<<20)
	}
	r.Release()
	if got := g.Level(); got != LevelNormal {
		t.Fatalf("level after release: %v, want normal", got)
	}
	r.Release() // idempotent
	if s := g.Stats(); s.Reserved != 0 {
		t.Fatalf("reserved %d after double release, want 0", s.Reserved)
	}
}

func TestReserveAtCriticalGrantsFloor(t *testing.T) {
	var mu sync.Mutex
	load := int64(1 << 20) // pin the heap at the limit
	g := testGovernor(1<<20, &load, &mu)
	g.Refresh()
	if g.Level() != LevelCritical {
		t.Fatalf("level %v, want critical", g.Level())
	}
	r := g.Reserve(4 << 20)
	defer r.Release()
	if lim := r.SearchLimit(); lim != floorReservation {
		t.Fatalf("critical-tier SearchLimit %d, want floor %d", lim, floorReservation)
	}
	if s := g.Stats(); s.Degraded != 1 {
		t.Fatalf("degraded count %d, want 1", s.Degraded)
	}
}

func TestGrowGrantsBelowHighDeniesAbove(t *testing.T) {
	var mu sync.Mutex
	load := int64(0)
	g := testGovernor(1<<20, &load, &mu)

	r := g.Reserve(minReservation)
	if lim := r.SearchLimit(); lim != minReservation {
		t.Fatalf("SearchLimit %d, want %d", lim, minReservation)
	}
	if got := r.Grow(2 * minReservation); got != 4*minReservation {
		t.Fatalf("grow granted %d, want %d", got, 4*minReservation)
	}
	if s := g.Stats(); s.Grows != 1 || s.Reserved != 4*minReservation {
		t.Fatalf("stats after grow: %+v", s)
	}

	mu.Lock()
	load = 1 << 20
	mu.Unlock()
	g.Refresh()
	if got := r.Grow(8 * minReservation); got != 0 {
		t.Fatalf("grow under pressure granted %d, want 0 (denied)", got)
	}
	if s := g.Stats(); s.GrowDenied != 1 {
		t.Fatalf("grow-denied count %d, want 1", s.GrowDenied)
	}
	r.Release()
	if s := g.Stats(); s.Reserved != 0 {
		t.Fatalf("reserved %d after release, want 0", s.Reserved)
	}
}

func TestDisabledGovernorIsTransparent(t *testing.T) {
	// Limit < 0 disables even when GOMEMLIMIT is set in the environment.
	g := New(Options{Limit: -1})
	if g.Enabled() {
		t.Fatal("negative limit should disable the governor")
	}
	if g.Level() != LevelNormal {
		t.Fatalf("disabled level %v, want normal", g.Level())
	}
	r := g.Reserve(1 << 40)
	if lim := r.SearchLimit(); lim != 0 {
		t.Fatalf("disabled SearchLimit %d, want 0 (unlimited)", lim)
	}
	if got := r.Grow(1 << 40); got != 1<<40 {
		t.Fatalf("disabled Grow %d, want pass-through", got)
	}
	r.Release()
	g.Start() // no-op
	g.Stop()

	var nilG *Governor
	nr := nilG.Reserve(123)
	if nr.SearchLimit() != 0 || nr.Grow(5) != 5 {
		t.Fatal("nil governor reservation should be unlimited")
	}
	nr.Release()
	nilG.NoteShed()
	nilG.NoteDegraded()
	if s := nilG.Stats(); s != (Stats{}) {
		t.Fatalf("nil governor stats %+v", s)
	}
}

func TestWatchdogSamplesAndShutsDown(t *testing.T) {
	before := runtime.NumGoroutine()
	var mu sync.Mutex
	load := int64(0)
	g := New(Options{
		Limit:          1000,
		Headroom:       1,
		SampleInterval: time.Millisecond,
		ReadLoad: func() int64 {
			mu.Lock()
			defer mu.Unlock()
			return load
		},
	})
	g.Start()
	g.Start() // idempotent
	mu.Lock()
	load = 999
	mu.Unlock()
	deadline := time.Now().Add(2 * time.Second)
	for g.Level() != LevelCritical {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never sampled the elevated load")
		}
		time.Sleep(time.Millisecond)
	}
	g.Stop()
	g.Stop() // idempotent
	deadline = time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d > %d before", runtime.NumGoroutine(), before)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLiveHeapSampling(t *testing.T) {
	// Sanity-check the real runtime/metrics path: a governed process has a
	// nonzero live heap.
	g := New(Options{Limit: 1 << 40})
	g.Refresh()
	if s := g.Stats(); s.Heap <= 0 {
		t.Fatalf("live heap sample %d, want > 0", s.Heap)
	}
}
