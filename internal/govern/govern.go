// Package govern implements serenityd's process-wide memory governor: a
// reservation ledger plus heap watermarks that convert memory pressure into
// bounded degradation instead of an OOM kill.
//
// Searches reserve an estimated byte footprint before running and upgrade it
// mid-search through a callback wired into the DP's MemGrow hook; the
// governor tracks sampled heap liveness (runtime/metrics) plus outstanding
// reservations against watermarks derived from GOMEMLIMIT (or an explicit
// limit) and publishes a pressure level:
//
//	Normal   — everything admitted.
//	Elevated — refinement work is shed (parked, re-enqueued when clear).
//	High     — batch admissions are rejected with 429; mid-search memory
//	           upgrades are denied, so running searches abort at their
//	           reserved ceiling instead of growing.
//	Critical — new searches are granted a floor reservation that aborts
//	           immediately, forcing interactive best-effort traffic down to
//	           its heuristic fallback (serve-then-refine repairs the result
//	           to bit-identical optimal once pressure clears).
//
// The ladder never touches correctness: every degradation it forces flows
// through paths that already guarantee feasible schedules, and the pressure
// signal is advisory — the hard per-search guarantee is the DP's own
// MemLimit valve, which the reservations parameterize.
package govern

import (
	"math"
	"runtime/debug"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

// Level is the governor's pressure tier.
type Level int32

// Pressure tiers, in escalation order.
const (
	LevelNormal Level = iota
	LevelElevated
	LevelHigh
	LevelCritical
)

// String renders the tier for metrics and logs.
func (l Level) String() string {
	switch l {
	case LevelNormal:
		return "normal"
	case LevelElevated:
		return "elevated"
	case LevelHigh:
		return "high"
	case LevelCritical:
		return "critical"
	}
	return "unknown"
}

// Defaults for Options zero values.
const (
	defaultSampleInterval = 100 * time.Millisecond
	defaultElevatedFrac   = 0.70
	defaultHighFrac       = 0.85
	defaultCriticalFrac   = 0.95
	// minReservation floors what Reserve grants below Critical, so a search
	// whose caller underestimated still gets room for a modest frontier.
	minReservation = 256 << 10
	// floorReservation is the Critical-tier grant: below even the DP's
	// level-0 accounting, so a governed search aborts before expanding.
	floorReservation = 1
)

// Options configures a Governor.
type Options struct {
	// Limit is the byte budget the governor defends. Zero derives it from
	// GOMEMLIMIT (debug.SetMemoryLimit); if that is unset too, the governor
	// is disabled: level stays Normal and reservations are unlimited.
	Limit int64
	// Headroom is subtracted from Limit before watermarks are computed —
	// slack for the runtime, request buffers, and everything the ledger
	// does not see. Defaults to Limit/16.
	Headroom int64
	// SampleInterval is the heap sampling cadence of the Start watchdog.
	// Defaults to 100ms.
	SampleInterval time.Duration
	// ElevatedFrac/HighFrac/CriticalFrac place the watermarks as fractions
	// of the effective limit (Limit - Headroom). Defaults 0.70/0.85/0.95.
	ElevatedFrac, HighFrac, CriticalFrac float64
	// ReadLoad, when non-nil, replaces the runtime/metrics heap sample —
	// injectable load for deterministic tests and drills.
	ReadLoad func() int64
}

// Governor is the process-wide memory governor. All methods are safe for
// concurrent use.
type Governor struct {
	opts      Options
	limit     int64 // effective limit: Limit - Headroom; 0 = disabled
	elevated  int64
	high      int64
	critical  int64
	heap      atomic.Int64 // last sampled heap-live bytes
	reserved  atomic.Int64 // outstanding reservation bytes
	level     atomic.Int32
	sheds     atomic.Int64 // pressure-shed admissions (batch 429s, refine parks)
	degraded  atomic.Int64 // searches forced to degrade by the ladder
	grows     atomic.Int64 // mid-search upgrades granted
	growDeny  atomic.Int64 // mid-search upgrades denied
	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

// New builds a governor. It does not start the sampling watchdog; call
// Start (and Stop on shutdown) for live heap tracking, or drive Refresh
// manually.
func New(opts Options) *Governor {
	limit := opts.Limit
	if limit == 0 {
		// debug.SetMemoryLimit(-1) reports the current GOMEMLIMIT without
		// changing it; MaxInt64 means unset.
		if ml := debug.SetMemoryLimit(-1); ml > 0 && ml < math.MaxInt64 {
			limit = ml
		}
	}
	g := &Governor{opts: opts, stop: make(chan struct{})}
	if limit <= 0 {
		return g // disabled
	}
	head := opts.Headroom
	if head <= 0 {
		head = limit / 16
	}
	eff := limit - head
	if eff <= 0 {
		eff = limit
	}
	g.limit = eff
	frac := func(f, def float64) int64 {
		if f <= 0 || f > 1 {
			f = def
		}
		return int64(f * float64(eff))
	}
	g.elevated = frac(opts.ElevatedFrac, defaultElevatedFrac)
	g.high = frac(opts.HighFrac, defaultHighFrac)
	g.critical = frac(opts.CriticalFrac, defaultCriticalFrac)
	g.Refresh()
	return g
}

// Enabled reports whether the governor has a byte budget to defend. Safe on
// a nil receiver, like Level, Reserve, and Stats, so call sites configured
// without a governor need no guards.
func (g *Governor) Enabled() bool { return g != nil && g.limit > 0 }

// readHeap samples live-heap bytes: what the previous GC marked reachable —
// the closest runtime analogue of "what a memory limit kills you over",
// without the double-count of free spans. Before the first GC that metric
// reads zero, so heap-objects-in-use backstops it.
func readHeap() int64 {
	s := []metrics.Sample{
		{Name: "/gc/heap/live:bytes"},
		{Name: "/memory/classes/heap/objects:bytes"},
	}
	metrics.Read(s)
	if s[0].Value.Kind() == metrics.KindUint64 {
		if v := int64(s[0].Value.Uint64()); v > 0 {
			return v
		}
	}
	if s[1].Value.Kind() == metrics.KindUint64 {
		return int64(s[1].Value.Uint64())
	}
	return 0
}

// Refresh samples the heap (or the injected ReadLoad) and recomputes the
// pressure level. Start's watchdog calls it on every tick; tests and drills
// call it directly for deterministic transitions.
func (g *Governor) Refresh() Level {
	if !g.Enabled() {
		return LevelNormal
	}
	var h int64
	if g.opts.ReadLoad != nil {
		h = g.opts.ReadLoad()
	} else {
		h = readHeap()
	}
	g.heap.Store(h)
	return g.recompute()
}

// recompute rederives the level from the last heap sample plus outstanding
// reservations. Reservations are upper bounds on additional retention, so
// the sum is conservative — the governor sheds slightly early rather than
// slightly late.
func (g *Governor) recompute() Level {
	load := g.heap.Load() + g.reserved.Load()
	lvl := LevelNormal
	switch {
	case load >= g.critical:
		lvl = LevelCritical
	case load >= g.high:
		lvl = LevelHigh
	case load >= g.elevated:
		lvl = LevelElevated
	}
	g.level.Store(int32(lvl))
	return lvl
}

// Level returns the current pressure tier.
func (g *Governor) Level() Level {
	if !g.Enabled() {
		return LevelNormal
	}
	return Level(g.level.Load())
}

// Start launches the sampling watchdog. Safe to call once; Stop shuts it
// down and waits for the goroutine to exit.
func (g *Governor) Start() {
	if !g.Enabled() {
		return
	}
	g.startOnce.Do(func() {
		iv := g.opts.SampleInterval
		if iv <= 0 {
			iv = defaultSampleInterval
		}
		g.wg.Add(1)
		go func() {
			defer g.wg.Done()
			t := time.NewTicker(iv)
			defer t.Stop()
			for {
				select {
				case <-g.stop:
					return
				case <-t.C:
					g.Refresh()
				}
			}
		}()
	})
}

// Stop terminates the watchdog and blocks until it has exited. Idempotent.
func (g *Governor) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

// Reservation is one search's admitted byte budget. Its methods match the
// root package's SearchReservation contract: SearchLimit seeds the DP's
// MemLimit, Grow is its MemGrow hook, Release returns the bytes.
type Reservation struct {
	g        *Governor
	granted  int64
	released atomic.Bool
	// Per-reservation lifecycle counters, reported by Grows/Denied so a
	// trace span can attribute governor activity to one specific search
	// (the Governor's own counters are process-wide aggregates).
	grows  atomic.Int64
	denied atomic.Int64
}

// Reserve admits a search expected to retain about estimate bytes. It never
// refuses: below Critical it books max(estimate, 256KiB) into the ledger;
// at Critical it grants a floor so small the DP aborts before expanding —
// the caller's memory-pressure fallback (heuristic degradation or a typed
// 503) takes over from there. A nil *Governor or a disabled governor grants
// an unlimited reservation, so call sites need no nil checks.
func (g *Governor) Reserve(estimate int64) *Reservation {
	if g == nil || !g.Enabled() {
		return &Reservation{}
	}
	var grant int64
	if g.Level() >= LevelCritical {
		grant = floorReservation
		g.degraded.Add(1)
	} else {
		grant = estimate
		if grant < minReservation {
			grant = minReservation
		}
	}
	g.reserved.Add(grant)
	g.recompute()
	return &Reservation{g: g, granted: grant}
}

// SearchLimit is the byte ceiling to run the search under: the granted
// reservation, or 0 (unlimited) for an ungoverned reservation.
func (r *Reservation) SearchLimit() int64 {
	if r.g == nil {
		return 0
	}
	return r.granted
}

// Grow asks the governor to raise this reservation's ceiling to at least
// needed bytes mid-search. At High pressure or above the upgrade is denied
// (returns 0) and the search aborts at its current ceiling; otherwise the
// ledger books double the ask — headroom so the next level or two do not
// immediately re-consult — and the new ceiling is returned.
func (r *Reservation) Grow(needed int64) int64 {
	if r.g == nil {
		return needed // ungoverned: always grant
	}
	if r.g.Level() >= LevelHigh {
		r.g.growDeny.Add(1)
		r.denied.Add(1)
		return 0
	}
	newLimit := 2 * needed
	if newLimit < needed { // overflow
		newLimit = needed
	}
	r.g.reserved.Add(newLimit - r.granted)
	r.granted = newLimit
	r.g.grows.Add(1)
	r.grows.Add(1)
	r.g.recompute()
	return newLimit
}

// Grows reports how many mid-search ceiling raises this reservation was
// granted; Denied how many were refused under pressure. Both exist for
// per-search attribution (trace spans); the Governor's Stats aggregate the
// same events process-wide.
func (r *Reservation) Grows() int64  { return r.grows.Load() }
func (r *Reservation) Denied() int64 { return r.denied.Load() }

// Release returns the reservation to the ledger. Idempotent.
func (r *Reservation) Release() {
	if r.g == nil || !r.released.CompareAndSwap(false, true) {
		return
	}
	r.g.reserved.Add(-r.granted)
	r.g.recompute()
}

// NoteShed records one unit of work shed because of pressure (a batch 429,
// a parked refinement).
func (g *Governor) NoteShed() {
	if g != nil {
		g.sheds.Add(1)
	}
}

// NoteDegraded records one search forced down the degradation ladder by
// pressure outside Reserve's Critical path (e.g. a denied mid-search grow
// that ended in a heuristic fallback).
func (g *Governor) NoteDegraded() {
	if g != nil {
		g.degraded.Add(1)
	}
}

// Stats is a point-in-time snapshot for metrics and logs.
type Stats struct {
	Limit      int64 // effective limit the watermarks divide (0 = disabled)
	Heap       int64 // last sampled heap-live bytes
	Reserved   int64 // outstanding reservation bytes
	Level      Level
	Sheds      int64
	Degraded   int64
	Grows      int64
	GrowDenied int64
}

// Stats snapshots the governor.
func (g *Governor) Stats() Stats {
	if g == nil {
		return Stats{}
	}
	return Stats{
		Limit:      g.limit,
		Heap:       g.heap.Load(),
		Reserved:   g.reserved.Load(),
		Level:      g.Level(),
		Sheds:      g.sheds.Load(),
		Degraded:   g.degraded.Load(),
		Grows:      g.grows.Load(),
		GrowDenied: g.growDeny.Load(),
	}
}
