package dp

// Allocation-free frontier machinery for the DP scheduler.
//
// The original implementation kept each DP level as a []state of heap
// bitsets indexed by a map[string]int32, which allocated on every
// transition: a string key plus two bitset clones even when the child was a
// duplicate that got discarded immediately. This file replaces that with
// three allocation-free structures:
//
//   - level: a flat slab arena. Every state at a level uses exactly
//     2W words (W = ⌈n/64⌉): its scheduled set followed by its ready set,
//     at offset 2·i·W in one shared []uint64. A level grows by appending to
//     the slab (amortized, no per-state allocations) and is recycled
//     wholesale for a later level once retired.
//
//   - ftable: an open-addressed, linear-probing index from signature hash to
//     state index. Signatures are 64-bit Zobrist hashes (MemModel.Zobrist),
//     so a transition's hash is parent.hash ^ zobrist[u] — known before the
//     child bitset exists. Collisions are disambiguated by equalPlusBit,
//     which compares the stored child against "parent ∪ {u}" word by word,
//     again without materializing anything. A duplicate transition therefore
//     costs zero allocations: probe, compare, update peak/parent/via.
//
//   - appendChild: the only path that materializes a state, writing the
//     child's words straight into the slab and computing its footprint via a
//     reusable attached Bitset view.

import (
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// stNode is one frontier entry's metadata. Its bitsets live in the owning
// level's slab at offset 2·i·W, not here, so retiring a level can drop all
// bitsets in one slice swap. peak/parent/via are updated in place when a
// duplicate transition reaches the same signature with a lower peak.
type stNode struct {
	hash   uint64 // Zobrist hash of the scheduled set
	mu     int64  // running footprint after this state's deallocations
	peak   int64  // best (minimum) peak over all partial schedules reaching it
	parent int32  // index into the previous level; -1 at level 0
	via    int32  // node scheduled to reach this state; -1 at level 0
}

// pv is the two-field residue of a retired level: everything schedule
// reconstruction needs. Completed levels are compacted from stNode+slab
// (~2W words + 32 bytes per state) down to 8 bytes per state.
type pv struct{ parent, via int32 }

// level is one DP level's frontier: state metadata plus the slab arena
// backing every state's scheduled and ready words.
type level struct {
	states []stNode
	slab   []uint64 // 2W words per state: scheduled then ready
}

// reset empties the level for reuse, keeping capacity.
func (l *level) reset() {
	l.states = l.states[:0]
	l.slab = l.slab[:0]
}

// sched returns state i's scheduled words.
func (l *level) sched(i, w int) []uint64 {
	off := 2 * i * w
	return l.slab[off : off+w]
}

// ready returns state i's ready (zero-indegree) words.
func (l *level) ready(i, w int) []uint64 {
	off := 2*i*w + w
	return l.slab[off : off+w]
}

// appendChild materializes the transition (parent state with words
// psched/pready, node u) as a new state: the child's words are appended to
// the slab (amortized, allocation-free at steady state), newly ready
// successors are computed in place, and mu is evaluated through the caller's
// reusable scratch view instead of a heap bitset. h, muHigh, and peak are the
// precomputed signature hash and footprint of the transition.
func (l *level) appendChild(m *sched.MemModel, scratch *graph.Bitset, psched, pready []uint64, si, u, w int, h uint64, muHigh, peak int64) {
	base := len(l.slab)
	l.slab = append(l.slab, psched...)
	l.slab = append(l.slab, pready...)
	csched := l.slab[base : base+w]
	cready := l.slab[base+w : base+2*w]
	csched[u>>6] |= 1 << uint(u&63)
	cready[u>>6] &^= 1 << uint(u&63)
	g := m.G
	for _, sc := range g.Nodes[u].Succs {
		if csched[sc>>6]&(1<<uint(sc&63)) != 0 {
			continue
		}
		ready := true
		for _, p := range g.Nodes[sc].Preds {
			if csched[p>>6]&(1<<uint(p&63)) == 0 {
				ready = false
				break
			}
		}
		if ready {
			cready[sc>>6] |= 1 << uint(sc&63)
		}
	}
	scratch.Attach(csched, g.NumNodes())
	mu := muHigh - m.StepDealloc(scratch, u)
	l.states = append(l.states, stNode{hash: h, mu: mu, peak: peak, parent: int32(si), via: int32(u)})
}

// equalPlusBit reports whether child equals parent with bit (uw, ubit) set:
// the word-level comparison of an existing state's scheduled set against the
// speculative transition's, without materializing the latter.
func equalPlusBit(child, parent []uint64, uw int, ubit uint64) bool {
	for i, cw := range child {
		pw := parent[i]
		if i == uw {
			pw |= ubit
		}
		if cw != pw {
			return false
		}
	}
	return true
}

// minTableSize is the smallest slot count an ftable uses; always a power of
// two so probing can mask instead of mod.
const minTableSize = 64

// ftable is the open-addressed frontier index: slots hold state indices into
// the level under construction (-1 = empty), probed linearly from the
// signature hash. Load factor stays under 3/4 (grow re-probes every state,
// whose hashes live in stNode). The table persists across levels and runs in
// its owner, so steady-state lookups and inserts allocate nothing.
type ftable struct {
	slots []int32
	mask  uint64
	used  int
}

// reset prepares the table for a new level expected to index about hint
// states: it clears the slots in place, shrinking first when a previous wide
// level left the table grossly oversized for the coming one.
func (t *ftable) reset(hint int) {
	want := minTableSize
	for want < 4*hint && want < 1<<30 {
		want <<= 1
	}
	if t.slots == nil || len(t.slots) > 8*want {
		t.slots = make([]int32, want)
		t.mask = uint64(want - 1)
	}
	for i := range t.slots {
		t.slots[i] = -1
	}
	t.used = 0
}

// grow doubles the table when one more insertion could push the load factor
// past 3/4, re-probing every state already in lvl. Callers invoke it before
// probe so the returned insertion slot stays valid for place.
func (t *ftable) grow(lvl *level) {
	if (t.used+1)*4 <= len(t.slots)*3 {
		return
	}
	ns := make([]int32, 2*len(t.slots))
	for i := range ns {
		ns[i] = -1
	}
	mask := uint64(len(ns) - 1)
	for idx := range lvl.states {
		pos := lvl.states[idx].hash & mask
		for ns[pos] >= 0 {
			pos = (pos + 1) & mask
		}
		ns[pos] = int32(idx)
	}
	t.slots, t.mask = ns, mask
}

// probe looks up the child signature "parent ∪ {u}" by its hash h. On a hit
// it returns the existing state's index; on a miss it returns -1 plus the
// empty slot where place must insert the new state.
func (t *ftable) probe(h uint64, lvl *level, w int, psched []uint64, uw int, ubit uint64) (int32, uint64) {
	pos := h & t.mask
	for {
		si := t.slots[pos]
		if si < 0 {
			return -1, pos
		}
		if lvl.states[si].hash == h {
			off := 2 * int(si) * w
			if equalPlusBit(lvl.slab[off:off+w], psched, uw, ubit) {
				return si, pos
			}
		}
		pos = (pos + 1) & t.mask
	}
}

// place records a newly appended state's index in the slot probe returned.
func (t *ftable) place(pos uint64, idx int32) {
	t.slots[pos] = idx
	t.used++
}
