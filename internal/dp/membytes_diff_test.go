package dp_test

// Differential coverage for the MemLimit byte valve and the PeakBytes
// accounting, in the same harness style as differential_test.go: a ceiling
// the run fits under must change nothing (bit-identical to the oracle, which
// has no byte accounting at all), and a ceiling it cannot fit under must
// abort both cores deterministically with FlagMemPressure.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// TestDifferentialMemLimitValve pins the valve across random DAGs: the
// unlimited run's PeakBytes is exactly the ceiling that still succeeds, any
// smaller ceiling aborts with FlagMemPressure in both the sequential and
// sharded cores, and PeakBytes itself is bit-identical on solution paths.
func TestDifferentialMemLimitValve(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 10 + rng.Intn(9), EdgeProb: 0.1 + rng.Float64()*0.4, MaxFanIn: 1 + rng.Intn(3)})
		m := sched.NewMemModel(g)
		name := fmt.Sprintf("trial%d", trial)

		base := dp.Schedule(m, dp.Options{})
		if base.Flag != dp.FlagSolution {
			t.Fatalf("%s: unlimited run: %v", name, base.Flag)
		}
		if base.PeakBytes <= 0 {
			t.Fatalf("%s: unlimited run reported PeakBytes %d", name, base.PeakBytes)
		}

		// Ceiling == the run's own peak: nothing may change, including
		// against the accounting-free oracle.
		fit := dp.Options{MemLimit: base.PeakBytes}
		want := referenceSchedule(m, fit)
		seq := dp.Schedule(m, fit)
		assertBitIdentical(t, name+"/fit/sequential", want, seq)
		par := dp.Schedule(m, parallelOpts(fit, 4))
		assertBitIdentical(t, name+"/fit/parallel", want, par)
		if seq.PeakBytes != base.PeakBytes || par.PeakBytes != base.PeakBytes {
			t.Fatalf("%s: PeakBytes diverged: unlimited %d, fit-seq %d, fit-par %d",
				name, base.PeakBytes, seq.PeakBytes, par.PeakBytes)
		}

		// Any ceiling below the peak must abort, deterministically, in both
		// cores, and a repeat run must agree with itself bit for bit.
		floor := dp.FrontierStateBytes(g.NumNodes()) + 8
		for _, limit := range []int64{base.PeakBytes - 1, base.PeakBytes / 2, floor} {
			if limit <= 0 || limit >= base.PeakBytes {
				continue
			}
			tight := dp.Options{MemLimit: limit}
			s1 := dp.Schedule(m, tight)
			if s1.Flag != dp.FlagMemPressure {
				t.Fatalf("%s/limit=%d: sequential flag %v, want memory pressure", name, limit, s1.Flag)
			}
			s2 := dp.Schedule(m, tight)
			assertBitIdentical(t, fmt.Sprintf("%s/limit=%d/repeat", name, limit), s1, s2)
			if s2.PeakBytes != s1.PeakBytes {
				t.Fatalf("%s/limit=%d: abort PeakBytes not deterministic: %d vs %d", name, limit, s1.PeakBytes, s2.PeakBytes)
			}
			p := dp.Schedule(m, parallelOpts(tight, 4))
			if p.Flag != dp.FlagMemPressure {
				t.Fatalf("%s/limit=%d: parallel flag %v, want memory pressure", name, limit, p.Flag)
			}
		}

		// A ceiling below even level 0 aborts before any expansion.
		starved := dp.Schedule(m, dp.Options{MemLimit: 1})
		if starved.Flag != dp.FlagMemPressure || starved.StatesExplored != 0 {
			t.Fatalf("%s: starved run did work: %+v", name, starved)
		}
	}
}

// TestMemGrowUpgradesAndDenies covers the mid-search upgrade callback: a
// ceiling too small to finish succeeds when MemGrow keeps granting (and the
// solution is bit-identical to an unlimited run), and aborts with
// FlagMemPressure the moment it denies.
func TestMemGrowUpgradesAndDenies(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 8; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 12 + rng.Intn(6), EdgeProb: 0.25, MaxFanIn: 3})
		m := sched.NewMemModel(g)
		want := dp.Schedule(m, dp.Options{})
		if want.Flag != dp.FlagSolution {
			t.Fatalf("trial%d: unlimited run: %v", trial, want.Flag)
		}
		start := dp.FrontierStateBytes(g.NumNodes()) + 8

		for _, workers := range []int{1, 4} {
			var grants int
			grant := func(needed int64) int64 { grants++; return needed * 2 }
			opts := dp.Options{MemLimit: start, MemGrow: grant}
			if workers > 1 {
				opts = parallelOpts(opts, workers)
			}
			got := dp.Schedule(m, opts)
			assertBitIdentical(t, fmt.Sprintf("trial%d/workers%d/grant", trial, workers), want, got)
			if got.PeakBytes != want.PeakBytes {
				t.Fatalf("trial%d/workers%d: granted run PeakBytes %d != %d", trial, workers, got.PeakBytes, want.PeakBytes)
			}
			if want.PeakBytes > start && grants == 0 {
				t.Fatalf("trial%d/workers%d: run outgrew %d bytes without consulting MemGrow", trial, workers, start)
			}

			deny := func(needed int64) int64 { return 0 }
			opts.MemGrow = deny
			if f := dp.Schedule(m, opts).Flag; f != dp.FlagMemPressure {
				t.Fatalf("trial%d/workers%d/deny: flag %v, want memory pressure", trial, workers, f)
			}
		}
	}
}

// TestAdaptiveSurrendersUnderMemPressure is the meta-search liveness
// guarantee: a ceiling no τ can fit under must terminate promptly with
// FlagMemPressure — even with timeout growth enabled, where a timeout-only
// surrender path does not exist — instead of doubling T forever.
func TestAdaptiveSurrendersUnderMemPressure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 16, EdgeProb: 0.2, MaxFanIn: 3})
	m := sched.NewMemModel(g)
	for _, disableGrowth := range []bool{false, true} {
		done := make(chan *dp.AdaptiveResult, 1)
		go func() {
			ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{
				StepTimeout:   time.Second,
				DisableGrowth: disableGrowth,
				MemLimit:      1, // below even level 0: every probe aborts
			})
			if err != nil {
				t.Errorf("disableGrowth=%v: %v", disableGrowth, err)
			}
			done <- ar
		}()
		select {
		case ar := <-done:
			if ar.Flag != dp.FlagMemPressure {
				t.Fatalf("disableGrowth=%v: flag %v, want memory pressure", disableGrowth, ar.Flag)
			}
			if ar.FinalBudget != ar.HardBudget {
				t.Fatalf("disableGrowth=%v: FinalBudget %d != HardBudget %d", disableGrowth, ar.FinalBudget, ar.HardBudget)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("disableGrowth=%v: meta-search failed to surrender", disableGrowth)
		}
	}
}

// TestAdaptiveMemLimitRoomy: with a ceiling above what the search needs the
// meta-search must still converge to the optimum, byte accounting engaged.
func TestAdaptiveMemLimitRoomy(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 14, EdgeProb: 0.25})
		m := sched.NewMemModel(g)
		want := dp.Optimal(m)
		ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{StepTimeout: time.Second, MemLimit: 64 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if ar.Flag != dp.FlagSolution || ar.Peak != want.Peak {
			t.Fatalf("trial %d: peak %d (flag %v) != optimal %d", trial, ar.Peak, ar.Flag, want.Peak)
		}
		if ar.PeakBytes <= 0 || ar.PeakBytes > 64<<20 {
			t.Fatalf("trial %d: PeakBytes %d out of range", trial, ar.PeakBytes)
		}
	}
}
