package dp

import (
	"context"
	"time"

	"github.com/serenity-ml/serenity/internal/sched"
)

// AdaptiveOptions controls the adaptive soft budgeting meta-search
// (Algorithm 2).
type AdaptiveOptions struct {
	// StepTimeout is the hyperparameter T limiting the scheduling time per
	// search step. Defaults to 1s when zero.
	StepTimeout time.Duration
	// MaxIters caps the binary-search iterations (τ is halved/bisected on
	// integer bytes, so convergence needs at most ~63 steps). Defaults to 64.
	MaxIters int
	// MaxStates is forwarded to every DP run as a memory-safety valve;
	// exceeding it is treated as a timeout, shrinking τ. Defaults to 4M.
	MaxStates int
	// GrowTimeoutOnCollapse doubles T and restarts from the hard budget if
	// the τ interval collapses without a solution — a liveness guarantee the
	// paper leaves implicit (τ = τmax always succeeds given enough time).
	// Defaults to true; set DisableGrowth to turn off.
	DisableGrowth bool
	// Parallelism is forwarded to every DP probe: wide levels fan their
	// expansion across up to this many worker shards. See
	// Options.Parallelism for the bit-identity contract.
	Parallelism int
	// MemLimit is forwarded to every DP probe as the retained-byte ceiling
	// (Options.MemLimit). A probe aborting with FlagMemPressure is treated
	// like a timeout — τ shrinks, which prunes the frontier and relieves
	// memory — but if the τ interval collapses after any memory abort the
	// meta-search surrenders with FlagMemPressure even when timeout growth
	// is enabled: doubling T cannot shrink a frontier that does not fit.
	MemLimit int64
	// MemGrow is forwarded to every DP probe (Options.MemGrow).
	MemGrow func(needed int64) int64
}

// BudgetProbe records one iteration of the meta-search, for the
// scheduling-time analyses (Figure 8(b), Table 2).
type BudgetProbe struct {
	Budget    int64
	Flag      Flag
	States    int64
	PeakBytes int64
	Elapsed   time.Duration
}

// AdaptiveResult is the outcome of AdaptiveSchedule.
type AdaptiveResult struct {
	*Result
	HardBudget  int64         // τmax: peak of Kahn's schedule (Algorithm 2 line 3)
	FinalBudget int64         // the τ that produced the solution
	Probes      []BudgetProbe // every (τ, flag) probe in order
}

// AdaptiveSchedule implements Algorithm 2: it obtains a hard budget τmax
// from Kahn's algorithm, then binary-searches a soft budget τ — lowering τ
// on 'timeout' (not enough pruning) and raising it on 'no solution'
// (over-aggressive pruning) — until the DP returns a solution. The returned
// schedule is optimal: pruning with any τ ≥ µ* preserves the optimal path,
// and the search only accepts solutions, whose peaks are optimal for their
// budget; see the package tests for the oracle comparison.
func AdaptiveSchedule(m *sched.MemModel, opts AdaptiveOptions) (*AdaptiveResult, error) {
	return AdaptiveScheduleCtx(context.Background(), m, opts)
}

// AdaptiveScheduleCtx is AdaptiveSchedule with cooperative cancellation. The
// context is threaded into every DP probe; when it is done the meta-search
// stops immediately and ctx.Err() is returned alongside the partial
// AdaptiveResult, whose Probes record the work done up to and including the
// canceled probe (Result stays nil).
func AdaptiveScheduleCtx(ctx context.Context, m *sched.MemModel, opts AdaptiveOptions) (*AdaptiveResult, error) {
	if opts.StepTimeout <= 0 {
		opts.StepTimeout = time.Second
	}
	if opts.MaxIters <= 0 {
		opts.MaxIters = 64
	}
	if opts.MaxStates <= 0 {
		opts.MaxStates = 4 << 20
	}

	kahn, err := sched.KahnFIFO(m.G)
	if err != nil {
		return nil, err
	}
	hardBudget, err := m.Peak(kahn)
	if err != nil {
		return nil, err
	}

	ar := &AdaptiveResult{HardBudget: hardBudget}
	timeout := opts.StepTimeout
	var sawMem bool
	var maxPeakBytes int64

	// Fallback answer: Kahn's schedule is always valid, so even if every DP
	// probe times out we can return it (flagged via FinalBudget==hardBudget
	// and Result.Flag==FlagSolution after verification below).
	for round := 0; ; round++ {
		tauOld, tauNew := hardBudget, hardBudget
		var best *Result
		for iter := 0; iter < opts.MaxIters; iter++ {
			r := ScheduleCtx(ctx, m, Options{Budget: tauNew, StepTimeout: timeout, MaxStates: opts.MaxStates, Parallelism: opts.Parallelism, MemLimit: opts.MemLimit, MemGrow: opts.MemGrow})
			if r.PeakBytes > maxPeakBytes {
				maxPeakBytes = r.PeakBytes
			}
			if r.Flag == FlagCanceled {
				// Return the probe record alongside the error: the states
				// explored before cancellation are real work callers may
				// want to account for (e.g. a degradable searcher).
				ar.Probes = append(ar.Probes, BudgetProbe{Budget: tauNew, Flag: r.Flag, States: r.StatesExplored, PeakBytes: r.PeakBytes, Elapsed: r.Elapsed})
				return ar, ctx.Err()
			}
			ar.Probes = append(ar.Probes, BudgetProbe{Budget: tauNew, Flag: r.Flag, States: r.StatesExplored, PeakBytes: r.PeakBytes, Elapsed: r.Elapsed})
			switch r.Flag {
			case FlagSolution:
				best = r
				ar.FinalBudget = tauNew
			case FlagTimeout:
				// Decrease τ: τold ← τnew, τnew ← τnew/2 (line 11).
				tauOld, tauNew = tauNew, tauNew/2
			case FlagMemPressure:
				// A frontier that does not fit is the timeout case's sibling:
				// shrink τ so the budget prunes the frontier down to size.
				sawMem = true
				tauOld, tauNew = tauNew, tauNew/2
			case FlagNoSolution:
				// Increase τ: τold ← τnew, τnew ← (τnew+τold)/2 (line 14).
				tauOld, tauNew = tauNew, (tauNew+tauOld)/2
			}
			if best != nil {
				ar.Result = best
				return ar, nil
			}
			if tauNew == tauOld || tauNew <= 0 {
				break // interval collapsed without a solution
			}
		}
		if sawMem {
			// Surrender under memory pressure regardless of growth policy:
			// doubling T buys wall-clock, not bytes, so another round would
			// hit the same ceiling forever. Callers degrade to a heuristic
			// (always feasible, needs no frontier) or report the pressure.
			ar.Result = &Result{Flag: FlagMemPressure, PeakBytes: maxPeakBytes}
			ar.FinalBudget = hardBudget
			return ar, nil
		}
		if opts.DisableGrowth {
			// Surrender with the Kahn schedule: feasible but possibly
			// suboptimal; callers see Flag==FlagTimeout.
			ar.Result = &Result{Flag: FlagTimeout, PeakBytes: maxPeakBytes}
			ar.FinalBudget = hardBudget
			return ar, nil
		}
		// Liveness: double T and retry from the hard budget. With unlimited
		// time a τ=τmax run must terminate with a solution.
		timeout *= 2
	}
}
