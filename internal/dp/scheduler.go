// Package dp implements SERENITY's dynamic-programming scheduler
// (Algorithm 1) and the adaptive soft budgeting meta-search (Algorithm 2).
//
// The key insight (Section 3.1) is that partial schedules that cover the
// same downward-closed set of nodes are interchangeable for the remainder of
// the search, so only the one with the lowest peak footprint needs to
// survive. The paper identifies states by their zero-indegree set z; the
// zero-indegree set is exactly the minimal antichain of the complement of
// the scheduled set, so z and the scheduled set are in bijection — we key
// the memo table on the scheduled-set bitset, which is cheaper to maintain
// incrementally.
//
// A useful consequence used throughout: the running footprint µ is a pure
// function of the scheduled set (it is the sum of live tensor sizes, and
// liveness depends only on which nodes have executed), so two partial
// schedules reaching the same signature differ only in µpeak.
//
// # Implementation
//
// The frontier is allocation-free on its hot path: states are keyed by an
// incrementally maintained 64-bit Zobrist hash (MemModel.Zobrist), indexed
// by an open-addressed table probed *before* any child state is
// materialized, and backed by per-level slab arenas — see frontier.go.
// Duplicate transitions (the bulk of a dense level) cost zero allocations;
// only genuinely new signatures write to the slab. Completed levels are
// compacted down to the (parent, via) pairs schedule reconstruction needs.
// Wide levels can additionally fan expansion across worker shards — see
// parallel.go and Options.Parallelism.
package dp

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Flag is the scheduler's outcome, mirroring Figure 4's
// {'no solution', 'timeout', 'solution'}, extended with 'canceled' for
// context cancellation (client disconnect, deadline) and 'memory pressure'
// for the Options.MemLimit byte valve.
type Flag int

// Scheduler outcomes.
const (
	FlagSolution Flag = iota
	FlagNoSolution
	FlagTimeout
	FlagCanceled
	// FlagMemPressure reports that the search's retained frontier and
	// compacted-history bytes (the accounting behind Result.PeakBytes) would
	// have exceeded Options.MemLimit and Options.MemGrow declined to raise
	// the ceiling. The abort is deterministic: the byte accounting is a pure
	// function of per-level frontier widths, so (with a fixed MemLimit and a
	// nil MemGrow) sequential and sharded runs of the same search abort at
	// the same level with the same Flag. Unlike FlagTimeout, it signals that
	// retrying with more time cannot help — only a larger byte ceiling, a
	// smaller soft budget τ (which prunes the frontier), or a heuristic
	// fallback can.
	FlagMemPressure
)

// String renders the flag as in the paper.
func (f Flag) String() string {
	switch f {
	case FlagSolution:
		return "solution"
	case FlagNoSolution:
		return "no solution"
	case FlagTimeout:
		return "timeout"
	case FlagCanceled:
		return "canceled"
	case FlagMemPressure:
		return "memory pressure"
	}
	return fmt.Sprintf("Flag(%d)", int(f))
}

// Options controls a single dynamic-programming run.
type Options struct {
	// Budget is the soft budget τ in bytes: transitions whose running peak
	// would exceed it are pruned. Zero means unlimited.
	Budget int64
	// StepTimeout is the paper's T: the wall-clock limit per search step
	// (per level of the recursion tree). Zero means unlimited.
	StepTimeout time.Duration
	// MaxStates aborts with FlagTimeout if the frontier for one search step
	// exceeds this many memoized signatures. Zero means unlimited. This is a
	// memory-safety valve for graphs the paper would call intractable
	// without divide-and-conquer.
	MaxStates int
	// Parallelism fans a single level's expansion across up to this many
	// worker shards once the frontier is at least ParallelThreshold wide.
	// Transitions are sharded by signature hash (all duplicates of a
	// signature land in one shard) and the per-shard frontiers are merged
	// back in the sequential path's exact discovery order, so on the
	// solution path every Result field is bit-identical to a sequential run.
	// The one concession, mirroring the segment pool's: when a run aborts
	// (timeout, cancellation, MaxStates), the partial StatesExplored and
	// StatesPruned counts may differ from the sequential path's — the Flag
	// itself is still identical for the deterministic MaxStates valve.
	// Values <= 1 mean sequential; the shard count is also capped by
	// GOMAXPROCS.
	Parallelism int
	// ParallelThreshold is the minimum frontier width (states in the level
	// being expanded) before Parallelism engages; below it sharding overhead
	// outweighs the win and expansion stays sequential. Zero means the
	// default (256).
	ParallelThreshold int
	// MemLimit caps the bytes the search may retain across its frontier
	// slabs and compacted (parent, via) history — the quantity reported in
	// Result.PeakBytes. Crossing it aborts with FlagMemPressure (after
	// consulting MemGrow, if set). Zero means unlimited. Unlike MaxStates,
	// which counts signatures regardless of width, the byte valve accounts
	// 2⌈n/64⌉ slab words plus a 32-byte header per state, so wide graphs
	// trip it proportionally earlier. With a fixed MemLimit and nil MemGrow
	// the abort is deterministic and bit-identical between sequential and
	// sharded runs (same Flag at the same level); when both MaxStates and
	// MemLimit could trip within one level, the sharded path resolves
	// MaxStates first while the sequential path reports whichever cap it
	// crossed first — configure one valve where that distinction matters.
	MemLimit int64
	// MemGrow, when non-nil, is consulted before a MemLimit abort with the
	// bytes the search needs to continue. Returning a new limit >= needed
	// raises the ceiling and the search proceeds; returning anything
	// smaller denies the upgrade and the search aborts with
	// FlagMemPressure. Sequential and sharded runs consult the callback at
	// different points mid-level, so abort-point determinism is only
	// guaranteed when MemGrow is nil.
	MemGrow func(needed int64) int64
}

// Result reports a scheduling attempt.
type Result struct {
	Flag           Flag
	Order          sched.Schedule // valid iff Flag == FlagSolution
	Peak           int64          // peak footprint of Order
	StatesExplored int64          // memo entries created across all steps
	StatesPruned   int64          // transitions discarded by the budget
	MaxFrontier    int            // largest number of coexisting signatures
	// PeakBytes is the high-water mark of the search's retained memory:
	// the two ping-ponged level buffers at their widest (2⌈n/64⌉ slab words
	// plus a 32-byte header per state) plus the compacted 8-byte
	// (parent, via) history. It is a pure function of per-level frontier
	// widths, so on the solution path it is bit-identical between
	// sequential and sharded runs; on abort paths it reflects only the
	// committed structure (like the partial-count concession in
	// Options.Parallelism, a mid-level abort may report fewer bytes under
	// sharding because unmerged shard-private frontiers are torn down).
	PeakBytes int64
	Elapsed   time.Duration
}

// FrontierStateBytes returns the bytes one frontier state retains for an
// n-node graph under the Result.PeakBytes accounting: 2⌈n/64⌉ slab words
// (scheduled + ready bitsets) plus the 32-byte state header. Callers sizing
// Options.MemLimit or governor reservations multiply it by an expected
// frontier width.
func FrontierStateBytes(n int) int64 {
	w := (n + 63) / 64
	return int64(16*w + 32)
}

// Schedule runs Algorithm 1 over the memory model m. It is exact: with an
// unlimited budget it returns a schedule with the minimum possible peak
// activation footprint (Theorem 1 of the paper's supplementary material).
func Schedule(m *sched.MemModel, opts Options) *Result {
	return ScheduleCtx(context.Background(), m, opts)
}

// expandOutcome is one level expansion's verdict.
type expandOutcome int

const (
	expandOK          expandOutcome = iota
	expandCanceled                  // ctx fired mid-level
	expandTimeout                   // StepTimeout or MaxStates fired mid-level
	expandMemPressure               // MemLimit crossed and MemGrow denied
)

// search carries one ScheduleCtx run's working set: the current and
// under-construction levels (ping-ponged so slabs and state slices are
// recycled every level), the frontier index, the reusable scratch view for
// footprint evaluation, and the compacted (parent, via) history.
type search struct {
	m    *sched.MemModel
	opts Options
	res  *Result
	n, w int // nodes; words per bitset

	cur, next *level
	tbl       ftable
	scratch   graph.Bitset
	pvs       [][]pv

	done      <-chan struct{}
	trans     int // transitions since the run began; poll clock
	stepStart time.Time

	// Byte accounting behind Result.PeakBytes and the MemLimit valve:
	// stateBytes is the per-state cost (FrontierStateBytes), hiCur/hiNext
	// the high-water state counts of the two ping-pong buffers (swapped
	// together with cur/next), pvBytes the cumulative compacted history.
	// The accounting is monotone, so the live total is also the peak.
	memLimit   int64
	stateBytes int64
	hiCur      int64
	hiNext     int64
	pvBytes    int64
	byteCap    int64 // per-level shard-poll width cap; -1 when inactive

	px *parallelExpander // lazily built on the first sharded level
}

// liveBytes is the search's current (== peak, by monotonicity) retained
// bytes: both ping-pong buffers at their high-water widths plus the
// compacted history. The under-construction level is folded in via
// len(next.states); after the end-of-level swap that length is covered by
// the buffer's recorded high water, so the fold is safe at any point.
func (s *search) liveBytes() int64 {
	hn := s.hiNext
	if l := int64(len(s.next.states)); l > hn {
		hn = l
	}
	return (s.hiCur+hn)*s.stateBytes + s.pvBytes
}

// memOver reports whether retaining width states in the next buffer would
// exceed MemLimit, consulting MemGrow once per crossing. A true return means
// the search must abort with FlagMemPressure. Single-threaded contexts only
// (sequential expansion, post-join, level end): it may mutate s.memLimit.
func (s *search) memOver(width int) bool {
	if s.memLimit <= 0 {
		return false
	}
	hn := int64(width)
	if s.hiNext > hn {
		hn = s.hiNext
	}
	need := (s.hiCur+hn)*s.stateBytes + s.pvBytes
	if need <= s.memLimit {
		return false
	}
	if s.opts.MemGrow != nil {
		if nl := s.opts.MemGrow(need); nl >= need {
			s.memLimit = nl
			return false
		}
	}
	return true
}

// memAuditHook, when set (tests only), receives the accounted live bytes and
// the actual in-use retained bytes just before ScheduleCtx returns, so the
// fuzz harness can assert PeakBytes never under-reports real retention.
var memAuditHook func(accounted, inUse int64)

// ScheduleCtx is Schedule with cooperative cancellation: the search loop
// polls ctx at every level of the recursion tree and every 64 transitions
// within a level — transition-count based, so a single huge-fanout state
// cannot delay the poll the way the old per-64-states check could —
// returning FlagCanceled as soon as ctx is done. The partial frontier is
// discarded; a canceled run does no further work.
func ScheduleCtx(ctx context.Context, m *sched.MemModel, opts Options) *Result {
	start := time.Now()
	res := &Result{Flag: FlagNoSolution}
	defer func() { res.Elapsed = time.Since(start) }()

	g := m.G
	n := g.NumNodes()
	if n == 0 {
		res.Flag = FlagSolution
		res.Order = sched.Schedule{}
		return res
	}

	s := &search{
		m:        m,
		opts:     opts,
		res:      res,
		n:        n,
		w:        (n + 63) / 64,
		cur:      &level{},
		next:     &level{},
		done:     ctx.Done(),
		pvs:      make([][]pv, n+1),
		memLimit: opts.MemLimit,
	}
	s.stateBytes = FrontierStateBytes(n)
	defer func() {
		res.PeakBytes = s.liveBytes()
		if memAuditHook != nil {
			inUse := 8*int64(len(s.cur.slab)+len(s.next.slab)) +
				32*int64(len(s.cur.states)+len(s.next.states))
			for _, p := range s.pvs {
				inUse += 8 * int64(len(p))
			}
			memAuditHook(res.PeakBytes, inUse)
		}
	}()

	// Level 0: empty schedule (s0=[], µ0=0, µpeak,0=0; M0[z0] per
	// Algorithm 1). hash(∅) = 0 by the Zobrist XOR construction.
	s.cur.states = append(s.cur.states, stNode{parent: -1, via: -1})
	s.cur.slab = make([]uint64, 2*s.w)
	copy(s.cur.slab[s.w:], g.ZeroIndegree(graph.NewBitset(n)).Words())
	s.pvs[0] = []pv{{parent: -1, via: -1}}
	s.hiCur, s.pvBytes = 1, 8
	if s.memOver(0) {
		// The ceiling cannot hold even the empty schedule's level.
		res.Flag = FlagMemPressure
		return res
	}

	for i := 0; i < n; i++ {
		if canceled(s.done) {
			res.Flag = FlagCanceled
			return res
		}
		s.stepStart = time.Now()
		s.next.reset()

		var out expandOutcome
		if s.shardCount() > 1 {
			out = s.expandParallel()
		} else {
			out = s.expandSequential()
		}
		switch out {
		case expandCanceled:
			res.Flag = FlagCanceled
			return res
		case expandTimeout:
			res.Flag = FlagTimeout
			return res
		case expandMemPressure:
			res.Flag = FlagMemPressure
			return res
		}
		if opts.StepTimeout > 0 && time.Since(s.stepStart) > opts.StepTimeout {
			res.Flag = FlagTimeout
			return res
		}
		if len(s.next.states) == 0 {
			// Every transition exceeded the budget: τ < τ*.
			res.Flag = FlagNoSolution
			return res
		}
		if len(s.next.states) > res.MaxFrontier {
			res.MaxFrontier = len(s.next.states)
		}
		// The finished level's (parent, via) pairs are final; compact them
		// for reconstruction and retire the expanded level entirely — its
		// slab and state slice are recycled for level i+2.
		pairs := make([]pv, len(s.next.states))
		for j := range s.next.states {
			pairs[j] = pv{s.next.states[j].parent, s.next.states[j].via}
		}
		s.pvs[i+1] = pairs
		width := len(s.next.states)
		if int64(width) > s.hiNext {
			s.hiNext = int64(width)
		}
		s.pvBytes += 8 * int64(width)
		if s.memOver(width) {
			// The compacted history alone crossed the ceiling.
			res.Flag = FlagMemPressure
			return res
		}
		s.cur, s.next = s.next, s.cur
		s.hiCur, s.hiNext = s.hiNext, s.hiCur
	}

	// Unique final entry Mn (line 27): walk the (parent, via) chain back.
	final := s.cur.states[0]
	order := make(sched.Schedule, n)
	parent, via := final.parent, final.via
	lvl := n
	for via >= 0 {
		order[lvl-1] = int(via)
		lvl--
		e := s.pvs[lvl][parent]
		parent, via = e.parent, e.via
	}
	res.Flag = FlagSolution
	res.Order = order
	res.Peak = final.peak
	return res
}

// expandSequential runs one level of Algorithm 1's recursion in discovery
// order: for each parent state, for each ready node u (line 10), the child
// signature's hash is computed incrementally and probed before anything is
// allocated. Duplicates only compete on peak (lines 21-22); new signatures
// are appended to the slab. Mirrors the original map-based loop transition
// for transition, so Result accounting is bit-identical.
func (s *search) expandSequential() expandOutcome {
	var (
		w      = s.w
		zob    = s.m.Zobrist
		alloc  = s.m.Alloc
		budget = s.opts.Budget
		next   = s.next
	)
	s.tbl.reset(len(s.cur.states))
	for si := range s.cur.states {
		st := &s.cur.states[si]
		psched := s.cur.sched(si, w)
		pready := s.cur.ready(si, w)
		for wi := 0; wi < w; wi++ {
			word := pready[wi]
			for word != 0 {
				u := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				s.trans++
				if s.trans&63 == 0 {
					if canceled(s.done) {
						return expandCanceled
					}
					if s.opts.StepTimeout > 0 && time.Since(s.stepStart) > s.opts.StepTimeout {
						return expandTimeout
					}
				}
				// Allocate u (lines 11-14).
				muHigh := st.mu + alloc[u]
				peak := st.peak
				if muHigh > peak {
					peak = muHigh
				}
				if budget > 0 && peak > budget {
					s.res.StatesPruned++
					continue
				}
				h := st.hash ^ zob[u]
				uw, ubit := u>>6, uint64(1)<<uint(u&63)
				s.tbl.grow(next)
				idx, slot := s.tbl.probe(h, next, w, psched, uw, ubit)
				if idx >= 0 {
					// Memoize the schedule with the least peak (lines 21-22).
					ns := &next.states[idx]
					if peak < ns.peak {
						ns.peak = peak
						ns.parent = int32(si)
						ns.via = int32(u)
					}
					continue
				}
				next.appendChild(s.m, &s.scratch, psched, pready, si, u, w, h, muHigh, peak)
				s.tbl.place(slot, int32(len(next.states)-1))
				s.res.StatesExplored++
			}
		}
		if s.opts.MaxStates > 0 && len(next.states) > s.opts.MaxStates {
			return expandTimeout
		}
		if s.memOver(len(next.states)) {
			return expandMemPressure
		}
	}
	return expandOK
}

// shardCount returns how many expansion shards the coming level would use:
// 1 (sequential) unless Parallelism allows more, the frontier is at least
// ParallelThreshold wide, and the machine has the cores to run them.
func (s *search) shardCount() int {
	if s.opts.Parallelism <= 1 {
		return 1
	}
	thr := s.opts.ParallelThreshold
	if thr <= 0 {
		thr = defaultParallelThreshold
	}
	if len(s.cur.states) < thr {
		return 1
	}
	shards := s.opts.Parallelism
	if mp := runtime.GOMAXPROCS(0); shards > mp {
		shards = mp
	}
	if shards > maxShards {
		shards = maxShards
	}
	return shards
}

// canceled reports whether the context's done channel has fired.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Optimal runs the DP with no budget, no timeout, and no state cap,
// returning the guaranteed-optimal schedule. Intended for small graphs and
// tests; production callers should use AdaptiveSchedule.
func Optimal(m *sched.MemModel) *Result {
	return Schedule(m, Options{})
}
