// Package dp implements SERENITY's dynamic-programming scheduler
// (Algorithm 1) and the adaptive soft budgeting meta-search (Algorithm 2).
//
// The key insight (Section 3.1) is that partial schedules that cover the
// same downward-closed set of nodes are interchangeable for the remainder of
// the search, so only the one with the lowest peak footprint needs to
// survive. The paper identifies states by their zero-indegree set z; the
// zero-indegree set is exactly the minimal antichain of the complement of
// the scheduled set, so z and the scheduled set are in bijection — we key
// the memo table on the scheduled-set bitset, which is cheaper to maintain
// incrementally.
//
// A useful consequence used throughout: the running footprint µ is a pure
// function of the scheduled set (it is the sum of live tensor sizes, and
// liveness depends only on which nodes have executed), so two partial
// schedules reaching the same signature differ only in µpeak.
package dp

import (
	"context"
	"fmt"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Flag is the scheduler's outcome, mirroring Figure 4's
// {'no solution', 'timeout', 'solution'}, extended with 'canceled' for
// context cancellation (client disconnect, deadline).
type Flag int

// Scheduler outcomes.
const (
	FlagSolution Flag = iota
	FlagNoSolution
	FlagTimeout
	FlagCanceled
)

// String renders the flag as in the paper.
func (f Flag) String() string {
	switch f {
	case FlagSolution:
		return "solution"
	case FlagNoSolution:
		return "no solution"
	case FlagTimeout:
		return "timeout"
	case FlagCanceled:
		return "canceled"
	}
	return fmt.Sprintf("Flag(%d)", int(f))
}

// Options controls a single dynamic-programming run.
type Options struct {
	// Budget is the soft budget τ in bytes: transitions whose running peak
	// would exceed it are pruned. Zero means unlimited.
	Budget int64
	// StepTimeout is the paper's T: the wall-clock limit per search step
	// (per level of the recursion tree). Zero means unlimited.
	StepTimeout time.Duration
	// MaxStates aborts with FlagTimeout if the frontier for one search step
	// exceeds this many memoized signatures. Zero means unlimited. This is a
	// memory-safety valve for graphs the paper would call intractable
	// without divide-and-conquer.
	MaxStates int
}

// Result reports a scheduling attempt.
type Result struct {
	Flag           Flag
	Order          sched.Schedule // valid iff Flag == FlagSolution
	Peak           int64          // peak footprint of Order
	StatesExplored int64          // memo entries created across all steps
	StatesPruned   int64          // transitions discarded by the budget
	MaxFrontier    int            // largest number of coexisting signatures
	Elapsed        time.Duration
}

// state is one memo entry: a downward-closed scheduled set together with the
// best (minimum) peak over all partial schedules reaching it. ready caches
// the zero-indegree set so transitions cost O(deg) instead of O(V+E).
type state struct {
	scheduled *graph.Bitset
	ready     *graph.Bitset
	mu        int64
	peak      int64
	parent    int32 // index into the previous level's slice; -1 at level 0
	via       int32 // node scheduled to reach this state
}

// Schedule runs Algorithm 1 over the memory model m. It is exact: with an
// unlimited budget it returns a schedule with the minimum possible peak
// activation footprint (Theorem 1 of the paper's supplementary material).
func Schedule(m *sched.MemModel, opts Options) *Result {
	return ScheduleCtx(context.Background(), m, opts)
}

// ScheduleCtx is Schedule with cooperative cancellation: the search loop
// polls ctx at every level of the recursion tree and every 64 states within
// a level, returning FlagCanceled as soon as ctx is done. The partial memo
// tables are discarded; a canceled run does no further work.
func ScheduleCtx(ctx context.Context, m *sched.MemModel, opts Options) *Result {
	start := time.Now()
	g := m.G
	n := g.NumNodes()
	res := &Result{Flag: FlagNoSolution}
	if n == 0 {
		res.Flag = FlagSolution
		res.Order = sched.Schedule{}
		res.Elapsed = time.Since(start)
		return res
	}

	// Level 0: empty schedule (s0=[], µ0=0, µpeak,0=0; M0[z0] per Algorithm 1).
	empty := graph.NewBitset(n)
	init := state{
		scheduled: empty,
		ready:     g.ZeroIndegree(empty),
		parent:    -1,
		via:       -1,
	}
	levels := make([][]state, n+1)
	levels[0] = []state{init}

	indegOK := func(s *graph.Bitset, v int) bool {
		for _, p := range g.Nodes[v].Preds {
			if !s.Has(p) {
				return false
			}
		}
		return true
	}

	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	for i := 0; i < n; i++ {
		if canceled() {
			res.Flag = FlagCanceled
			res.Elapsed = time.Since(start)
			return res
		}
		stepStart := time.Now()
		cur := levels[i]
		nextIdx := make(map[string]int32, len(cur)*2)
		var next []state

		for si := range cur {
			st := &cur[si]
			// Iterate ui ∈ zi (Algorithm 1 line 10).
			budgetPruned := false
			st.ready.ForEach(func(u int) {
				// Allocate u (line 11-14).
				muHigh := st.mu + m.Alloc[u]
				peak := st.peak
				if muHigh > peak {
					peak = muHigh
				}
				if opts.Budget > 0 && peak > opts.Budget {
					res.StatesPruned++
					budgetPruned = true
					return
				}
				newScheduled := st.scheduled.Clone()
				newScheduled.Set(u)
				// Deallocate exhausted predecessors (lines 15-19).
				mu := muHigh - m.StepDealloc(newScheduled, u)

				key := newScheduled.Key()
				if idx, ok := nextIdx[key]; ok {
					// Memoize the schedule with the least peak (lines 21-22).
					if peak < next[idx].peak {
						next[idx].peak = peak
						next[idx].parent = int32(si)
						next[idx].via = int32(u)
					}
					return
				}
				newReady := st.ready.Clone()
				newReady.Clear(u)
				for _, s := range g.Nodes[u].Succs {
					if !newScheduled.Has(s) && indegOK(newScheduled, s) {
						newReady.Set(s)
					}
				}
				nextIdx[key] = int32(len(next))
				next = append(next, state{
					scheduled: newScheduled,
					ready:     newReady,
					mu:        mu,
					peak:      peak,
					parent:    int32(si),
					via:       int32(u),
				})
				res.StatesExplored++
			})
			_ = budgetPruned

			if si%64 == 63 {
				if canceled() {
					res.Flag = FlagCanceled
					res.Elapsed = time.Since(start)
					return res
				}
				if opts.StepTimeout > 0 && time.Since(stepStart) > opts.StepTimeout {
					res.Flag = FlagTimeout
					res.Elapsed = time.Since(start)
					return res
				}
			}
			if opts.MaxStates > 0 && len(next) > opts.MaxStates {
				res.Flag = FlagTimeout
				res.Elapsed = time.Since(start)
				return res
			}
		}

		if opts.StepTimeout > 0 && time.Since(stepStart) > opts.StepTimeout {
			res.Flag = FlagTimeout
			res.Elapsed = time.Since(start)
			return res
		}
		if len(next) == 0 {
			// Every transition exceeded the budget: τ < τ*.
			res.Flag = FlagNoSolution
			res.Elapsed = time.Since(start)
			return res
		}
		if len(next) > res.MaxFrontier {
			res.MaxFrontier = len(next)
		}
		levels[i+1] = next
		// The previous level's bitsets are no longer needed for transitions,
		// but are kept for parent-pointer reconstruction; drop the ready sets
		// to halve retained memory.
		for si := range cur {
			cur[si].ready = nil
		}
	}

	// Unique final entry Mn (line 27).
	final := levels[n][0]
	order := make(sched.Schedule, n)
	lvl := n
	cur := &final
	for cur.via >= 0 {
		order[lvl-1] = int(cur.via)
		parent := cur.parent
		lvl--
		cur = &levels[lvl][parent]
	}
	res.Flag = FlagSolution
	res.Order = order
	res.Peak = final.peak
	res.Elapsed = time.Since(start)
	return res
}

// Optimal runs the DP with no budget, no timeout, and no state cap,
// returning the guaranteed-optimal schedule. Intended for small graphs and
// tests; production callers should use AdaptiveSchedule.
func Optimal(m *sched.MemModel) *Result {
	return Schedule(m, Options{})
}
