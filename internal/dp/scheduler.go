// Package dp implements SERENITY's dynamic-programming scheduler
// (Algorithm 1) and the adaptive soft budgeting meta-search (Algorithm 2).
//
// The key insight (Section 3.1) is that partial schedules that cover the
// same downward-closed set of nodes are interchangeable for the remainder of
// the search, so only the one with the lowest peak footprint needs to
// survive. The paper identifies states by their zero-indegree set z; the
// zero-indegree set is exactly the minimal antichain of the complement of
// the scheduled set, so z and the scheduled set are in bijection — we key
// the memo table on the scheduled-set bitset, which is cheaper to maintain
// incrementally.
//
// A useful consequence used throughout: the running footprint µ is a pure
// function of the scheduled set (it is the sum of live tensor sizes, and
// liveness depends only on which nodes have executed), so two partial
// schedules reaching the same signature differ only in µpeak.
//
// # Implementation
//
// The frontier is allocation-free on its hot path: states are keyed by an
// incrementally maintained 64-bit Zobrist hash (MemModel.Zobrist), indexed
// by an open-addressed table probed *before* any child state is
// materialized, and backed by per-level slab arenas — see frontier.go.
// Duplicate transitions (the bulk of a dense level) cost zero allocations;
// only genuinely new signatures write to the slab. Completed levels are
// compacted down to the (parent, via) pairs schedule reconstruction needs.
// Wide levels can additionally fan expansion across worker shards — see
// parallel.go and Options.Parallelism.
package dp

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Flag is the scheduler's outcome, mirroring Figure 4's
// {'no solution', 'timeout', 'solution'}, extended with 'canceled' for
// context cancellation (client disconnect, deadline).
type Flag int

// Scheduler outcomes.
const (
	FlagSolution Flag = iota
	FlagNoSolution
	FlagTimeout
	FlagCanceled
)

// String renders the flag as in the paper.
func (f Flag) String() string {
	switch f {
	case FlagSolution:
		return "solution"
	case FlagNoSolution:
		return "no solution"
	case FlagTimeout:
		return "timeout"
	case FlagCanceled:
		return "canceled"
	}
	return fmt.Sprintf("Flag(%d)", int(f))
}

// Options controls a single dynamic-programming run.
type Options struct {
	// Budget is the soft budget τ in bytes: transitions whose running peak
	// would exceed it are pruned. Zero means unlimited.
	Budget int64
	// StepTimeout is the paper's T: the wall-clock limit per search step
	// (per level of the recursion tree). Zero means unlimited.
	StepTimeout time.Duration
	// MaxStates aborts with FlagTimeout if the frontier for one search step
	// exceeds this many memoized signatures. Zero means unlimited. This is a
	// memory-safety valve for graphs the paper would call intractable
	// without divide-and-conquer.
	MaxStates int
	// Parallelism fans a single level's expansion across up to this many
	// worker shards once the frontier is at least ParallelThreshold wide.
	// Transitions are sharded by signature hash (all duplicates of a
	// signature land in one shard) and the per-shard frontiers are merged
	// back in the sequential path's exact discovery order, so on the
	// solution path every Result field is bit-identical to a sequential run.
	// The one concession, mirroring the segment pool's: when a run aborts
	// (timeout, cancellation, MaxStates), the partial StatesExplored and
	// StatesPruned counts may differ from the sequential path's — the Flag
	// itself is still identical for the deterministic MaxStates valve.
	// Values <= 1 mean sequential; the shard count is also capped by
	// GOMAXPROCS.
	Parallelism int
	// ParallelThreshold is the minimum frontier width (states in the level
	// being expanded) before Parallelism engages; below it sharding overhead
	// outweighs the win and expansion stays sequential. Zero means the
	// default (256).
	ParallelThreshold int
}

// Result reports a scheduling attempt.
type Result struct {
	Flag           Flag
	Order          sched.Schedule // valid iff Flag == FlagSolution
	Peak           int64          // peak footprint of Order
	StatesExplored int64          // memo entries created across all steps
	StatesPruned   int64          // transitions discarded by the budget
	MaxFrontier    int            // largest number of coexisting signatures
	Elapsed        time.Duration
}

// Schedule runs Algorithm 1 over the memory model m. It is exact: with an
// unlimited budget it returns a schedule with the minimum possible peak
// activation footprint (Theorem 1 of the paper's supplementary material).
func Schedule(m *sched.MemModel, opts Options) *Result {
	return ScheduleCtx(context.Background(), m, opts)
}

// expandOutcome is one level expansion's verdict.
type expandOutcome int

const (
	expandOK       expandOutcome = iota
	expandCanceled               // ctx fired mid-level
	expandTimeout                // StepTimeout or MaxStates fired mid-level
)

// search carries one ScheduleCtx run's working set: the current and
// under-construction levels (ping-ponged so slabs and state slices are
// recycled every level), the frontier index, the reusable scratch view for
// footprint evaluation, and the compacted (parent, via) history.
type search struct {
	m    *sched.MemModel
	opts Options
	res  *Result
	n, w int // nodes; words per bitset

	cur, next *level
	tbl       ftable
	scratch   graph.Bitset
	pvs       [][]pv

	done      <-chan struct{}
	trans     int // transitions since the run began; poll clock
	stepStart time.Time

	px *parallelExpander // lazily built on the first sharded level
}

// ScheduleCtx is Schedule with cooperative cancellation: the search loop
// polls ctx at every level of the recursion tree and every 64 transitions
// within a level — transition-count based, so a single huge-fanout state
// cannot delay the poll the way the old per-64-states check could —
// returning FlagCanceled as soon as ctx is done. The partial frontier is
// discarded; a canceled run does no further work.
func ScheduleCtx(ctx context.Context, m *sched.MemModel, opts Options) *Result {
	start := time.Now()
	res := &Result{Flag: FlagNoSolution}
	defer func() { res.Elapsed = time.Since(start) }()

	g := m.G
	n := g.NumNodes()
	if n == 0 {
		res.Flag = FlagSolution
		res.Order = sched.Schedule{}
		return res
	}

	s := &search{
		m:    m,
		opts: opts,
		res:  res,
		n:    n,
		w:    (n + 63) / 64,
		cur:  &level{},
		next: &level{},
		done: ctx.Done(),
		pvs:  make([][]pv, n+1),
	}

	// Level 0: empty schedule (s0=[], µ0=0, µpeak,0=0; M0[z0] per
	// Algorithm 1). hash(∅) = 0 by the Zobrist XOR construction.
	s.cur.states = append(s.cur.states, stNode{parent: -1, via: -1})
	s.cur.slab = make([]uint64, 2*s.w)
	copy(s.cur.slab[s.w:], g.ZeroIndegree(graph.NewBitset(n)).Words())
	s.pvs[0] = []pv{{parent: -1, via: -1}}

	for i := 0; i < n; i++ {
		if canceled(s.done) {
			res.Flag = FlagCanceled
			return res
		}
		s.stepStart = time.Now()
		s.next.reset()

		var out expandOutcome
		if s.shardCount() > 1 {
			out = s.expandParallel()
		} else {
			out = s.expandSequential()
		}
		switch out {
		case expandCanceled:
			res.Flag = FlagCanceled
			return res
		case expandTimeout:
			res.Flag = FlagTimeout
			return res
		}
		if opts.StepTimeout > 0 && time.Since(s.stepStart) > opts.StepTimeout {
			res.Flag = FlagTimeout
			return res
		}
		if len(s.next.states) == 0 {
			// Every transition exceeded the budget: τ < τ*.
			res.Flag = FlagNoSolution
			return res
		}
		if len(s.next.states) > res.MaxFrontier {
			res.MaxFrontier = len(s.next.states)
		}
		// The finished level's (parent, via) pairs are final; compact them
		// for reconstruction and retire the expanded level entirely — its
		// slab and state slice are recycled for level i+2.
		pairs := make([]pv, len(s.next.states))
		for j := range s.next.states {
			pairs[j] = pv{s.next.states[j].parent, s.next.states[j].via}
		}
		s.pvs[i+1] = pairs
		s.cur, s.next = s.next, s.cur
	}

	// Unique final entry Mn (line 27): walk the (parent, via) chain back.
	final := s.cur.states[0]
	order := make(sched.Schedule, n)
	parent, via := final.parent, final.via
	lvl := n
	for via >= 0 {
		order[lvl-1] = int(via)
		lvl--
		e := s.pvs[lvl][parent]
		parent, via = e.parent, e.via
	}
	res.Flag = FlagSolution
	res.Order = order
	res.Peak = final.peak
	return res
}

// expandSequential runs one level of Algorithm 1's recursion in discovery
// order: for each parent state, for each ready node u (line 10), the child
// signature's hash is computed incrementally and probed before anything is
// allocated. Duplicates only compete on peak (lines 21-22); new signatures
// are appended to the slab. Mirrors the original map-based loop transition
// for transition, so Result accounting is bit-identical.
func (s *search) expandSequential() expandOutcome {
	var (
		w      = s.w
		zob    = s.m.Zobrist
		alloc  = s.m.Alloc
		budget = s.opts.Budget
		next   = s.next
	)
	s.tbl.reset(len(s.cur.states))
	for si := range s.cur.states {
		st := &s.cur.states[si]
		psched := s.cur.sched(si, w)
		pready := s.cur.ready(si, w)
		for wi := 0; wi < w; wi++ {
			word := pready[wi]
			for word != 0 {
				u := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				s.trans++
				if s.trans&63 == 0 {
					if canceled(s.done) {
						return expandCanceled
					}
					if s.opts.StepTimeout > 0 && time.Since(s.stepStart) > s.opts.StepTimeout {
						return expandTimeout
					}
				}
				// Allocate u (lines 11-14).
				muHigh := st.mu + alloc[u]
				peak := st.peak
				if muHigh > peak {
					peak = muHigh
				}
				if budget > 0 && peak > budget {
					s.res.StatesPruned++
					continue
				}
				h := st.hash ^ zob[u]
				uw, ubit := u>>6, uint64(1)<<uint(u&63)
				s.tbl.grow(next)
				idx, slot := s.tbl.probe(h, next, w, psched, uw, ubit)
				if idx >= 0 {
					// Memoize the schedule with the least peak (lines 21-22).
					ns := &next.states[idx]
					if peak < ns.peak {
						ns.peak = peak
						ns.parent = int32(si)
						ns.via = int32(u)
					}
					continue
				}
				next.appendChild(s.m, &s.scratch, psched, pready, si, u, w, h, muHigh, peak)
				s.tbl.place(slot, int32(len(next.states)-1))
				s.res.StatesExplored++
			}
		}
		if s.opts.MaxStates > 0 && len(next.states) > s.opts.MaxStates {
			return expandTimeout
		}
	}
	return expandOK
}

// shardCount returns how many expansion shards the coming level would use:
// 1 (sequential) unless Parallelism allows more, the frontier is at least
// ParallelThreshold wide, and the machine has the cores to run them.
func (s *search) shardCount() int {
	if s.opts.Parallelism <= 1 {
		return 1
	}
	thr := s.opts.ParallelThreshold
	if thr <= 0 {
		thr = defaultParallelThreshold
	}
	if len(s.cur.states) < thr {
		return 1
	}
	shards := s.opts.Parallelism
	if mp := runtime.GOMAXPROCS(0); shards > mp {
		shards = mp
	}
	if shards > maxShards {
		shards = maxShards
	}
	return shards
}

// canceled reports whether the context's done channel has fired.
func canceled(done <-chan struct{}) bool {
	if done == nil {
		return false
	}
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// Optimal runs the DP with no budget, no timeout, and no state cap,
// returning the guaranteed-optimal schedule. Intended for small graphs and
// tests; production callers should use AdaptiveSchedule.
func Optimal(m *sched.MemModel) *Result {
	return Schedule(m, Options{})
}
