package dp

// White-box allocation tests and benchmarks for the frontier core. The
// headline contract of the rewrite: a duplicate transition — probe, word
// compare, peak update — allocates nothing, and a full scheduler run stays
// within a small, frontier-growth-only allocation budget (versus one string
// key plus two bitset clones per transition before).

import (
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/sched"
)

// buildDuplicateFixture fabricates a level of k states over n nodes plus a
// table indexing them, such that for every parent i the transition
// "schedule node u" lands exactly on state i — i.e. every probe is a
// duplicate hit, isolating the zero-allocation path.
func buildDuplicateFixture(k, n, u int) (*level, *ftable, []uint64, [][]uint64) {
	w := (n + 63) / 64
	zob := graph.ZobristTable(n)
	lvl := &level{}
	var tbl ftable
	tbl.reset(k)
	parents := make([][]uint64, k)
	for i := 0; i < k; i++ {
		// Child scheduled set {i, u}; parent {i}.
		h := zob[i] ^ zob[u]
		base := len(lvl.slab)
		lvl.slab = append(lvl.slab, make([]uint64, 2*w)...)
		csched := lvl.slab[base : base+w]
		csched[i>>6] |= 1 << uint(i&63)
		csched[u>>6] |= 1 << uint(u&63)
		lvl.states = append(lvl.states, stNode{hash: h, peak: int64(i + 1)})
		tbl.grow(lvl)
		_, slot := tbl.probe(h, lvl, w, csched, u>>6, 0) // locate its empty slot
		tbl.place(slot, int32(i))

		p := make([]uint64, w)
		p[i>>6] |= 1 << uint(i&63)
		parents[i] = p
	}
	return lvl, &tbl, zob, parents
}

// TestDuplicateProbeZeroAllocs pins the contract directly: probing every
// fabricated duplicate transition against a populated frontier performs
// zero allocations.
func TestDuplicateProbeZeroAllocs(t *testing.T) {
	const k, n, u = 512, 1024, 1000
	lvl, tbl, zob, parents := buildDuplicateFixture(k, n, u)
	w := (n + 63) / 64
	uw, ubit := u>>6, uint64(1)<<uint(u&63)
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < k; i++ {
			h := zob[i] ^ zob[u]
			idx, _ := tbl.probe(h, lvl, w, parents[i], uw, ubit)
			if idx != int32(i) {
				t.Fatalf("probe(%d) = %d", i, idx)
			}
			// The lines-21-22 peak update (taken on the first run only).
			if peak := int64(i); peak < lvl.states[idx].peak {
				ns := &lvl.states[idx]
				ns.peak = peak
				ns.parent = int32(i)
				ns.via = int32(u)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("duplicate-state path allocated %.1f times per run, want 0", allocs)
	}
}

// TestSchedulerAllocationBudget pins the end-to-end profile: a full
// SwiftNet Cell C run (6k+ states, most transitions duplicates) must stay
// within a small fixed allocation budget — slab/table growth and per-level
// compaction only, two orders of magnitude under the old per-transition
// clones (~6500 allocs for the same cell).
func TestSchedulerAllocationBudget(t *testing.T) {
	m := sched.NewMemModel(models.SwiftNetCellC())
	r := Optimal(m) // warm the model-independent paths
	if r.Flag != FlagSolution {
		t.Fatalf("flag %v", r.Flag)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if res := Optimal(m); res.Flag != FlagSolution {
			t.Fatal("DP failed")
		}
	})
	if allocs > 150 {
		t.Fatalf("full run allocated %.0f times, budget is 150", allocs)
	}
}

// BenchmarkDuplicateTransition measures the steady-state duplicate path in
// isolation: hash, probe, verify, update. Expect 0 allocs/op.
func BenchmarkDuplicateTransition(b *testing.B) {
	const k, n, u = 512, 1024, 1000
	lvl, tbl, zob, parents := buildDuplicateFixture(k, n, u)
	w := (n + 63) / 64
	uw, ubit := u>>6, uint64(1)<<uint(u&63)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i & (k - 1)
		h := zob[j] ^ zob[u]
		idx, _ := tbl.probe(h, lvl, w, parents[j], uw, ubit)
		if idx < 0 {
			b.Fatal("fixture miss")
		}
	}
}

// BenchmarkScheduleSwiftNetC is the package-local twin of the root
// BenchmarkDPSchedulerMicro, handy when iterating on the core.
func BenchmarkScheduleSwiftNetC(b *testing.B) {
	m := sched.NewMemModel(models.SwiftNetCellC())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if r := Optimal(m); r.Flag != FlagSolution {
			b.Fatal("DP failed")
		}
	}
}
