package dp_test

// The map-based frontier the production scheduler replaced, kept verbatim as
// the differential oracle: referenceScheduleCtx is the pre-optimization
// implementation (string-keyed memo table, per-transition bitset clones),
// and the harness in differential_test.go asserts the allocation-free core
// is bit-identical to it — Flag, Order, Peak, StatesExplored, StatesPruned,
// and MaxFrontier — across the nine-cell suite, random DAGs, and the
// deterministic abort paths (budget, MaxStates, pre-canceled contexts).
//
// Do not "fix" or modernize this file: its value is being the old code.

import (
	"context"
	"time"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// refState is one memo entry of the reference implementation: heap bitsets
// and all.
type refState struct {
	scheduled *graph.Bitset
	ready     *graph.Bitset
	mu        int64
	peak      int64
	parent    int32
	via       int32
}

func referenceSchedule(m *sched.MemModel, opts dp.Options) *dp.Result {
	return referenceScheduleCtx(context.Background(), m, opts)
}

// referenceScheduleCtx is the seed repository's ScheduleCtx, unchanged apart
// from the package qualifiers (and dropping its dead budgetPruned bool, which
// was computed and discarded).
func referenceScheduleCtx(ctx context.Context, m *sched.MemModel, opts dp.Options) *dp.Result {
	start := time.Now()
	g := m.G
	n := g.NumNodes()
	res := &dp.Result{Flag: dp.FlagNoSolution}
	if n == 0 {
		res.Flag = dp.FlagSolution
		res.Order = sched.Schedule{}
		res.Elapsed = time.Since(start)
		return res
	}

	empty := graph.NewBitset(n)
	init := refState{
		scheduled: empty,
		ready:     g.ZeroIndegree(empty),
		parent:    -1,
		via:       -1,
	}
	levels := make([][]refState, n+1)
	levels[0] = []refState{init}

	indegOK := func(s *graph.Bitset, v int) bool {
		for _, p := range g.Nodes[v].Preds {
			if !s.Has(p) {
				return false
			}
		}
		return true
	}

	done := ctx.Done()
	canceled := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}

	for i := 0; i < n; i++ {
		if canceled() {
			res.Flag = dp.FlagCanceled
			res.Elapsed = time.Since(start)
			return res
		}
		stepStart := time.Now()
		cur := levels[i]
		nextIdx := make(map[string]int32, len(cur)*2)
		var next []refState

		for si := range cur {
			st := &cur[si]
			st.ready.ForEach(func(u int) {
				muHigh := st.mu + m.Alloc[u]
				peak := st.peak
				if muHigh > peak {
					peak = muHigh
				}
				if opts.Budget > 0 && peak > opts.Budget {
					res.StatesPruned++
					return
				}
				newScheduled := st.scheduled.Clone()
				newScheduled.Set(u)
				mu := muHigh - m.StepDealloc(newScheduled, u)

				key := newScheduled.Key()
				if idx, ok := nextIdx[key]; ok {
					if peak < next[idx].peak {
						next[idx].peak = peak
						next[idx].parent = int32(si)
						next[idx].via = int32(u)
					}
					return
				}
				newReady := st.ready.Clone()
				newReady.Clear(u)
				for _, s := range g.Nodes[u].Succs {
					if !newScheduled.Has(s) && indegOK(newScheduled, s) {
						newReady.Set(s)
					}
				}
				nextIdx[key] = int32(len(next))
				next = append(next, refState{
					scheduled: newScheduled,
					ready:     newReady,
					mu:        mu,
					peak:      peak,
					parent:    int32(si),
					via:       int32(u),
				})
				res.StatesExplored++
			})

			if si%64 == 63 {
				if canceled() {
					res.Flag = dp.FlagCanceled
					res.Elapsed = time.Since(start)
					return res
				}
				if opts.StepTimeout > 0 && time.Since(stepStart) > opts.StepTimeout {
					res.Flag = dp.FlagTimeout
					res.Elapsed = time.Since(start)
					return res
				}
			}
			if opts.MaxStates > 0 && len(next) > opts.MaxStates {
				res.Flag = dp.FlagTimeout
				res.Elapsed = time.Since(start)
				return res
			}
		}

		if opts.StepTimeout > 0 && time.Since(stepStart) > opts.StepTimeout {
			res.Flag = dp.FlagTimeout
			res.Elapsed = time.Since(start)
			return res
		}
		if len(next) == 0 {
			res.Flag = dp.FlagNoSolution
			res.Elapsed = time.Since(start)
			return res
		}
		if len(next) > res.MaxFrontier {
			res.MaxFrontier = len(next)
		}
		levels[i+1] = next
		for si := range cur {
			cur[si].ready = nil
		}
	}

	final := levels[n][0]
	order := make(sched.Schedule, n)
	lvl := n
	cur := &final
	for cur.via >= 0 {
		order[lvl-1] = int(cur.via)
		parent := cur.parent
		lvl--
		cur = &levels[lvl][parent]
	}
	res.Flag = dp.FlagSolution
	res.Order = order
	res.Peak = final.peak
	res.Elapsed = time.Since(start)
	return res
}
