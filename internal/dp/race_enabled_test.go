//go:build race

package dp_test

// raceEnabled trims the differential sweeps when the race detector is on:
// the map-based reference oracle runs ~8x slower under race and contributes
// nothing to race coverage (it is single-threaded by construction). The
// sharded expander keeps full race coverage via TestParallelExpansionRace
// and TestParallelMatchesSequentialWideFrontiers.
const raceEnabled = true
