package dp

import (
	"math/rand"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

func bytesShape(b int64) graph.Shape { return graph.Shape{int(b / 4)} }

// paperExample builds the running example of Figures 5/6/8: a single
// source A fanning out to parallel branches that reconverge. Sizes are
// chosen so branch interleaving matters.
func paperExample() *graph.Graph {
	g := graph.New("paper")
	a := g.AddNode(graph.OpInput, "A", bytesShape(8))
	b := g.AddNode(graph.OpReLU, "B", bytesShape(24), a)
	c := g.AddNode(graph.OpReLU, "C", bytesShape(24), a)
	j := g.AddNode(graph.OpReLU, "J", bytesShape(24), a)
	d := g.AddNode(graph.OpReLU, "D", bytesShape(24), b)
	e := g.AddNode(graph.OpReLU, "E", bytesShape(24), c)
	f := g.AddNode(graph.OpReLU, "F", bytesShape(24), c)
	h := g.AddNode(graph.OpReLU, "H", bytesShape(12), d, e)
	i := g.AddNode(graph.OpReLU, "I", bytesShape(12), f)
	k := g.AddNode(graph.OpAdd, "K", bytesShape(12), h, i)
	g.AddNode(graph.OpAdd, "L", bytesShape(4), k, j)
	return g
}

func TestOptimalMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 11, EdgeProb: 0.25})
		m := sched.NewMemModel(g)
		_, want, err := sched.BruteForce(m)
		if err != nil {
			t.Fatal(err)
		}
		r := Optimal(m)
		if r.Flag != FlagSolution {
			t.Fatalf("trial %d: flag %v", trial, r.Flag)
		}
		if err := m.CheckValid(r.Order); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got := m.MustPeak(r.Order); got != r.Peak {
			t.Fatalf("trial %d: reported peak %d != simulated %d", trial, r.Peak, got)
		}
		if r.Peak != want {
			t.Fatalf("trial %d: DP peak %d != brute force %d", trial, r.Peak, want)
		}
	}
}

func TestOptimalOnPaperExample(t *testing.T) {
	g := paperExample()
	m := sched.NewMemModel(g)
	r := Optimal(m)
	if r.Flag != FlagSolution {
		t.Fatalf("flag %v", r.Flag)
	}
	_, want, err := sched.BruteForce(m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Peak != want {
		t.Errorf("DP peak %d != optimal %d", r.Peak, want)
	}
	// And it must beat or match every baseline.
	for _, base := range [](func(*graph.Graph) (sched.Schedule, error)){
		sched.KahnFIFO, sched.DFSEmission, sched.MinIDOrder,
	} {
		o, _ := base(g)
		if bp := m.MustPeak(o); bp < r.Peak {
			t.Errorf("baseline peak %d beats DP %d", bp, r.Peak)
		}
	}
}

func TestScheduleEmptyGraph(t *testing.T) {
	m := sched.NewMemModel(graph.New("empty"))
	r := Optimal(m)
	if r.Flag != FlagSolution || len(r.Order) != 0 {
		t.Fatalf("empty graph: %+v", r)
	}
}

func TestBudgetPruning(t *testing.T) {
	g := paperExample()
	m := sched.NewMemModel(g)
	opt := Optimal(m)

	// Budget exactly at the optimum: still finds the optimal schedule.
	r := Schedule(m, Options{Budget: opt.Peak})
	if r.Flag != FlagSolution || r.Peak != opt.Peak {
		t.Fatalf("budget=optimum: flag %v peak %d (want %d)", r.Flag, r.Peak, opt.Peak)
	}
	if r.StatesExplored > opt.StatesExplored {
		t.Errorf("budget pruning explored more states (%d) than unbudgeted (%d)",
			r.StatesExplored, opt.StatesExplored)
	}

	// Budget below the optimum: no solution (Figure 8(b) left region).
	r = Schedule(m, Options{Budget: opt.Peak - 1})
	if r.Flag != FlagNoSolution {
		t.Fatalf("budget<optimum: flag %v, want no solution", r.Flag)
	}

	// Generous budget: solution, but more states explored than tight budget.
	loose := Schedule(m, Options{Budget: opt.Peak * 4})
	if loose.Flag != FlagSolution || loose.Peak != opt.Peak {
		t.Fatalf("loose budget: flag %v peak %d", loose.Flag, loose.Peak)
	}
}

func TestBudgetMonotonicity(t *testing.T) {
	// Number of explored schedules grows monotonically with τ (the property
	// Figure 8(b) relies on for binary search).
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 12, EdgeProb: 0.2})
		m := sched.NewMemModel(g)
		opt := Optimal(m)
		prev := int64(-1)
		for _, mult := range []float64{1.0, 1.25, 1.5, 2.0, 4.0} {
			r := Schedule(m, Options{Budget: int64(float64(opt.Peak) * mult)})
			if r.Flag != FlagSolution {
				t.Fatalf("trial %d mult %v: flag %v", trial, mult, r.Flag)
			}
			if r.StatesExplored < prev {
				t.Fatalf("trial %d: states decreased with larger budget (%d -> %d)",
					trial, prev, r.StatesExplored)
			}
			prev = r.StatesExplored
		}
	}
}

func TestStepTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Wide random DAG with tiny timeout must report timeout, not hang.
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 60, EdgeProb: 0.05, MaxFanIn: 2})
	m := sched.NewMemModel(g)
	r := Schedule(m, Options{StepTimeout: time.Nanosecond})
	if r.Flag != FlagTimeout {
		t.Fatalf("flag %v, want timeout", r.Flag)
	}
}

func TestMaxStatesValve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 40, EdgeProb: 0.04, MaxFanIn: 2})
	m := sched.NewMemModel(g)
	r := Schedule(m, Options{MaxStates: 8})
	if r.Flag != FlagTimeout {
		t.Fatalf("flag %v, want timeout from MaxStates", r.Flag)
	}
}

func TestFlagString(t *testing.T) {
	if FlagSolution.String() != "solution" ||
		FlagNoSolution.String() != "no solution" ||
		FlagTimeout.String() != "timeout" {
		t.Error("flag strings diverge from the paper's vocabulary")
	}
}

func TestAdaptiveScheduleFindsOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 12, EdgeProb: 0.25})
		m := sched.NewMemModel(g)
		_, want, err := sched.BruteForce(m)
		if err != nil {
			t.Fatal(err)
		}
		ar, err := AdaptiveSchedule(m, AdaptiveOptions{StepTimeout: time.Second})
		if err != nil {
			t.Fatal(err)
		}
		if ar.Flag != FlagSolution {
			t.Fatalf("trial %d: %v", trial, ar.Flag)
		}
		if ar.Peak != want {
			t.Fatalf("trial %d: adaptive peak %d != optimal %d", trial, ar.Peak, want)
		}
		if ar.HardBudget < ar.Peak {
			t.Fatalf("trial %d: hard budget %d below optimal peak %d", trial, ar.HardBudget, ar.Peak)
		}
		if len(ar.Probes) == 0 {
			t.Fatal("no probes recorded")
		}
	}
}

func TestAdaptiveScheduleShrinksBudgetOnTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 26, EdgeProb: 0.12, MaxFanIn: 3})
	m := sched.NewMemModel(g)
	ar, err := AdaptiveSchedule(m, AdaptiveOptions{StepTimeout: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Flag != FlagSolution {
		t.Fatalf("flag %v", ar.Flag)
	}
	if err := m.CheckValid(ar.Order); err != nil {
		t.Fatal(err)
	}
	// The solution's budget can never be below its own peak.
	if ar.FinalBudget < ar.Peak {
		t.Errorf("final budget %d < peak %d", ar.FinalBudget, ar.Peak)
	}
}

func TestAdaptiveDisableGrowthSurrenders(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 70, EdgeProb: 0.05, MaxFanIn: 2})
	m := sched.NewMemModel(g)
	ar, err := AdaptiveSchedule(m, AdaptiveOptions{
		StepTimeout:   time.Nanosecond,
		DisableGrowth: true,
		MaxIters:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Flag == FlagSolution {
		t.Skip("machine fast enough to solve within a nanosecond step budget")
	}
	if ar.FinalBudget != ar.HardBudget {
		t.Errorf("surrender should report the hard budget")
	}
}

// TestDPNeverWorseThanSampledSchedules is the paper's core claim as a
// property test: the DP peak lower-bounds every topological order.
func TestDPNeverWorseThanSampledSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 14, EdgeProb: 0.2})
		m := sched.NewMemModel(g)
		r := Optimal(m)
		for s := 0; s < 40; s++ {
			p := m.MustPeak(sched.RandomTopo(g, rng))
			if p < r.Peak {
				t.Fatalf("trial %d: sampled %d < DP %d", trial, p, r.Peak)
			}
		}
	}
}
