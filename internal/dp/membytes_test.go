package dp

// Internal tests for the Result.PeakBytes accounting: the fuzz target rides
// the memAuditHook to compare the accounted bytes against the search's real
// in-use retention on whatever DAG the fuzzer generates. The differential
// valve tests live with the rest of the oracle harness in
// membytes_diff_test.go (package dp_test).

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

func TestFrontierStateBytes(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{1, 48},    // w=1: 16 bytes of slab words + 32-byte header
		{64, 48},   // still one word per bitset
		{65, 64},   // w=2
		{130, 80},  // w=3
		{640, 192}, // w=10
	}
	for _, c := range cases {
		if got := FrontierStateBytes(c.n); got != c.want {
			t.Errorf("FrontierStateBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// FuzzPeakBytesCoversRetention asserts the accounting contract on random
// DAGs under every option mix the fuzzer reaches: at the end of a run —
// solution, budget exhaustion, or a valve abort — the accounted PeakBytes is
// never below the bytes actually held in the two level buffers and the
// compacted history. Under-reporting would let a governed search silently
// exceed its reservation, which is the failure mode the byte valve exists to
// prevent.
func FuzzPeakBytesCoversRetention(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(80), uint8(0), int64(0))
	f.Add(int64(7), uint8(18), uint8(40), uint8(1), int64(4096))
	f.Add(int64(-5), uint8(8), uint8(200), uint8(2), int64(300))
	f.Add(int64(33), uint8(16), uint8(25), uint8(3), int64(100000))
	f.Fuzz(func(t *testing.T, seed int64, nodes, edgeProb, sel uint8, memLimit int64) {
		if nodes > 20 {
			t.Skip("keep the DP tractable")
		}
		if memLimit < 0 {
			memLimit = -memLimit
		}
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{
			Nodes:    int(nodes),
			EdgeProb: float64(edgeProb) / 255,
			MaxFanIn: 1 + int(sel%4),
		})
		m := sched.NewMemModel(g)

		var audits int
		memAuditHook = func(accounted, inUse int64) {
			audits++
			if accounted < inUse {
				t.Errorf("accounted %d bytes < %d actually retained", accounted, inUse)
			}
		}
		defer func() { memAuditHook = nil }()

		opts := Options{MemLimit: memLimit}
		switch sel % 4 {
		case 1:
			opts.MaxStates = 16
		case 2:
			opts.Budget = 1 << uint(sel%20)
		case 3:
			opts.Parallelism = 4
			opts.ParallelThreshold = 1
		}
		r := Schedule(m, opts)
		if audits != 1 {
			t.Fatalf("audit hook ran %d times, want 1", audits)
		}
		// Completed runs stayed under the ceiling; abort paths may record a
		// transient overshoot (valves fire per parent state, after the
		// crossing transition has been appended).
		if memLimit > 0 && (r.Flag == FlagSolution || r.Flag == FlagNoSolution) && r.PeakBytes > memLimit {
			t.Errorf("flag %v but PeakBytes %d exceeds MemLimit %d", r.Flag, r.PeakBytes, memLimit)
		}
	})
}
