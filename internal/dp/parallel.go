package dp

// Intra-level parallel expansion: when one level's frontier is wide enough
// (Options.ParallelThreshold) and Options.Parallelism allows it, the level's
// transitions are sharded across workers by signature hash. Every worker
// scans the whole parent frontier in discovery order but owns only the
// transitions whose child hash maps to its shard — ownership is a pure
// function of the signature, so all duplicates of a signature are resolved
// inside one shard, with the same first-discovery/lowest-peak tie-break the
// sequential path applies. Non-owned transitions cost a hash XOR and a
// modulo; the expensive work (footprint evaluation, probing, slab writes) is
// done once, by the owner.
//
// Each shard records its states' discovery keys (parent index, node), which
// are strictly increasing within a shard because workers scan in order. The
// sequential path's frontier ordering is exactly the ascending merge of
// those key streams, so mergeShards' k-way merge reproduces it bit for bit —
// parent indices, duplicate winners, StatesExplored, StatesPruned,
// MaxFrontier, and the reconstructed schedule are all identical to a
// sequential run on the solution path. Abort paths (cancellation, timeouts,
// the MaxStates valve) keep the identical Flag but may report different
// partial counts; see Options.Parallelism.

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"github.com/serenity-ml/serenity/internal/graph"
)

const (
	// defaultParallelThreshold is the frontier width below which sharding
	// overhead (goroutine fan-out plus every worker scanning the level)
	// outweighs the parallel win.
	defaultParallelThreshold = 256
	// maxShards caps the fan-out; beyond this the per-worker full-frontier
	// scan dominates.
	maxShards = 16
	// shardPollInterval is how many scanned transitions a worker goes
	// between ctx/deadline/stop polls. Power of two (it is used as a mask).
	shardPollInterval = 2048
)

// Abort reasons published by the first worker that trips one; cancellation,
// the timeout flavors, and the byte valve map onto the sequential path's
// Flag priority.
const (
	abortNone int32 = iota
	abortCanceled
	abortTimeout
	abortMemPressure
)

// shardWorker is one expansion shard's private working set, reused across
// every sharded level of a run so steady-state expansion allocates nothing.
type shardWorker struct {
	lvl      level
	tbl      ftable
	keys     []uint64 // discovery key (si<<32 | u) per state, ascending
	scratch  graph.Bitset
	explored int64
	pruned   int64
}

// expandParallel expands the current level across shardCount() workers and
// merges the per-shard frontiers back into s.next in sequential discovery
// order. Counters are folded into s.res only after all workers join, so the
// workers share nothing mutable but the atomics below.
func (s *search) expandParallel() expandOutcome {
	shards := s.shardCount()
	if s.px == nil {
		s.px = &parallelExpander{}
	}
	for len(s.px.workers) < shards {
		s.px.workers = append(s.px.workers, &shardWorker{})
	}
	ws := s.px.workers[:shards]

	// Precompute the frontier width the byte valve allows so shard polls can
	// compare the shared created counter against it without touching the
	// accounting fields. Only when MemGrow is nil: with an upgrade callback
	// the (single-threaded) post-join check below is the sole consult point,
	// so workers never race on s.memLimit. The previous level's end check
	// guarantees byteCap >= the next buffer's recorded high water, so
	// crossing it is exactly the sequential path's per-parent condition.
	s.byteCap = -1
	if s.memLimit > 0 && s.opts.MemGrow == nil {
		s.byteCap = (s.memLimit-s.pvBytes)/s.stateBytes - s.hiCur
	}

	var created atomic.Int64
	var reason atomic.Int32
	var wg sync.WaitGroup
	for i := 1; i < shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.runShard(ws[i], i, shards, &created, &reason)
		}(i)
	}
	s.runShard(ws[0], 0, shards, &created, &reason)
	wg.Wait()

	for _, w := range ws {
		s.res.StatesExplored += w.explored
		s.res.StatesPruned += w.pruned
	}
	switch reason.Load() {
	case abortCanceled:
		return expandCanceled
	case abortTimeout:
		return expandTimeout
	case abortMemPressure:
		return expandMemPressure
	}
	total := int(created.Load())
	if s.opts.MaxStates > 0 && total > s.opts.MaxStates {
		// Deterministic valve: the level's full frontier exceeds the cap, so
		// the sequential path would have aborted mid-level with the same
		// Flag. (ctx may have fired between the workers' last poll and here;
		// cancellation still wins, as it would at the next sequential poll.)
		if canceled(s.done) {
			return expandCanceled
		}
		return expandTimeout
	}
	if s.memOver(total) {
		// Same deterministic-valve argument as MaxStates above, on the byte
		// accounting: a full frontier of total states would cross MemLimit,
		// so the sequential path would have aborted mid-level (this is also
		// where MemGrow is consulted for sharded levels — post-join, where
		// no workers race on the accounting).
		if canceled(s.done) {
			return expandCanceled
		}
		return expandMemPressure
	}
	s.mergeShards(ws, total)
	return expandOK
}

// parallelExpander owns the lazily grown worker set of a search.
type parallelExpander struct {
	workers []*shardWorker
}

// runShard is one worker's pass over the whole parent frontier. It mirrors
// expandSequential transition for transition, except that it skips
// transitions owned by other shards after the (cheap) hash computation and
// stops early when any worker publishes an abort reason.
func (s *search) runShard(wk *shardWorker, id, shards int, created *atomic.Int64, reason *atomic.Int32) {
	var (
		w      = s.w
		zob    = s.m.Zobrist
		alloc  = s.m.Alloc
		budget = s.opts.Budget
		me     = uint64(id)
		nsh    = uint64(shards)
	)
	wk.lvl.reset()
	wk.keys = wk.keys[:0]
	wk.tbl.reset(len(s.cur.states)/shards + 1)
	wk.explored, wk.pruned = 0, 0

	scan := 0
	for si := range s.cur.states {
		st := &s.cur.states[si]
		psched := s.cur.sched(si, w)
		pready := s.cur.ready(si, w)
		for wi := 0; wi < w; wi++ {
			word := pready[wi]
			for word != 0 {
				u := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				scan++
				if scan&(shardPollInterval-1) == 0 {
					if reason.Load() != abortNone {
						return
					}
					if canceled(s.done) {
						reason.CompareAndSwap(abortNone, abortCanceled)
						return
					}
					if s.opts.StepTimeout > 0 && time.Since(s.stepStart) > s.opts.StepTimeout {
						reason.CompareAndSwap(abortNone, abortTimeout)
						return
					}
					if s.opts.MaxStates > 0 && created.Load() > int64(s.opts.MaxStates) {
						reason.CompareAndSwap(abortNone, abortTimeout)
						return
					}
					if s.byteCap >= 0 && created.Load() > s.byteCap {
						reason.CompareAndSwap(abortNone, abortMemPressure)
						return
					}
				}
				h := st.hash ^ zob[u]
				if h%nsh != me {
					continue
				}
				muHigh := st.mu + alloc[u]
				peak := st.peak
				if muHigh > peak {
					peak = muHigh
				}
				if budget > 0 && peak > budget {
					wk.pruned++
					continue
				}
				uw, ubit := u>>6, uint64(1)<<uint(u&63)
				wk.tbl.grow(&wk.lvl)
				idx, slot := wk.tbl.probe(h, &wk.lvl, w, psched, uw, ubit)
				if idx >= 0 {
					ns := &wk.lvl.states[idx]
					if peak < ns.peak {
						ns.peak = peak
						ns.parent = int32(si)
						ns.via = int32(u)
					}
					continue
				}
				wk.lvl.appendChild(s.m, &wk.scratch, psched, pready, si, u, w, h, muHigh, peak)
				wk.tbl.place(slot, int32(len(wk.lvl.states)-1))
				wk.keys = append(wk.keys, uint64(si)<<32|uint64(u))
				wk.explored++
				created.Add(1)
			}
		}
	}
}

// mergeShards concatenates the per-shard frontiers into s.next in ascending
// discovery-key order — a k-way merge of already sorted streams, so the
// result is exactly the frontier a sequential expansion would have built.
func (s *search) mergeShards(ws []*shardWorker, total int) {
	w := s.w
	next := s.next
	if cap(next.states) < total {
		next.states = make([]stNode, 0, total)
	}
	if need := total * 2 * w; cap(next.slab) < need {
		next.slab = make([]uint64, 0, need)
	}
	var at [maxShards]int
	for k := 0; k < total; k++ {
		best := -1
		var bk uint64
		for i := range ws {
			j := at[i]
			if j >= len(ws[i].keys) {
				continue
			}
			if best < 0 || ws[i].keys[j] < bk {
				best, bk = i, ws[i].keys[j]
			}
		}
		wk := ws[best]
		j := at[best]
		at[best]++
		next.states = append(next.states, wk.lvl.states[j])
		off := 2 * j * w
		next.slab = append(next.slab, wk.lvl.slab[off:off+2*w]...)
	}
}
