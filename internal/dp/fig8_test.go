package dp

import (
	"testing"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// TestFigure8PruningExample encodes the worked example of Figure 8(a): from
// a state with µ=32 where {G, H, F, J} are schedulable, scheduling H
// (size 3) keeps the running peak at 35 while F or J (size 6) push it to 38.
// With soft budget τ=36 the F/J transitions are pruned and the optimal path
// through H survives.
func TestFigure8PruningExample(t *testing.T) {
	// Sizes in "units" (bytes here); the example's µ=32 prefix is modeled
	// by an input of size 32 consumed at the very end so it stays live.
	g := graph.New("fig8")
	base := g.AddNode(graph.OpInput, "base", graph.Shape{8}) // 32 bytes live throughout
	h := g.AddNode(graph.OpReLU, "H", graph.Shape{1}, base)  // 3 bytes... see below
	f := g.AddNode(graph.OpReLU, "F", graph.Shape{1}, base)
	j := g.AddNode(graph.OpReLU, "J", graph.Shape{1}, base)
	sink := g.AddNode(graph.OpAdd, "L", graph.Shape{1}, h, f, j)
	_ = sink

	// Byte-exact sizes: base=32, H=3, F=6, J=6, L=1.
	g.Nodes[h].Shape = graph.Shape{3}
	g.Nodes[f].Shape = graph.Shape{6}
	g.Nodes[j].Shape = graph.Shape{6}
	for _, n := range g.Nodes {
		n.DType = graph.Int8 // 1 byte per element -> sizes are literal
	}
	m := sched.NewMemModel(g)

	// Unbudgeted optimum: schedule everything; peak = 32+3+6+6+1 = 48
	// (all of H, F, J feed the sink so they coexist eventually).
	opt := Optimal(m)
	if opt.Flag != FlagSolution {
		t.Fatal(opt.Flag)
	}

	// The Figure 8 lesson is about the *intermediate* peak right after the
	// prefix: scheduling H first reaches µpeak=35, F or J reach 38. A budget
	// of 36 cannot complete the whole graph (the final state needs 48), so
	// test the one-step pruning directly.
	empty := graph.NewBitset(g.NumNodes())
	empty.Set(base)
	ready := g.ZeroIndegree(empty)
	if !ready.Has(h) || !ready.Has(f) || !ready.Has(j) {
		t.Fatalf("ready set %v", ready.Elems())
	}
	mu := int64(32)
	for _, tc := range []struct {
		node int
		peak int64
	}{{h, 35}, {f, 38}, {j, 38}} {
		if got := mu + m.Alloc[tc.node]; got != tc.peak {
			t.Errorf("scheduling %s: peak %d, want %d", g.Nodes[tc.node].Name, got, tc.peak)
		}
	}

	// And the budget semantics end to end: τ just below the true optimum
	// fails, τ at the optimum succeeds with the same peak.
	if r := Schedule(m, Options{Budget: opt.Peak - 1}); r.Flag != FlagNoSolution {
		t.Errorf("τ below optimum: flag %v", r.Flag)
	}
	if r := Schedule(m, Options{Budget: opt.Peak}); r.Flag != FlagSolution || r.Peak != opt.Peak {
		t.Errorf("τ at optimum: flag %v peak %d (want %d)", r.Flag, r.Peak, opt.Peak)
	}
}

// TestFigure6WalkThrough encodes the Figure 6 step: scheduling H at step 8
// allocates H, records the new peak, then deallocates D and E whose
// outdegrees drop to zero.
func TestFigure6WalkThrough(t *testing.T) {
	g := graph.New("fig6")
	d := g.AddNode(graph.OpInput, "D", graph.Shape{4})
	e := g.AddNode(graph.OpInput, "E", graph.Shape{4})
	h := g.AddNode(graph.OpAdd, "H", graph.Shape{2}, d, e)
	for _, n := range g.Nodes {
		n.DType = graph.Int8
	}
	m := sched.NewMemModel(g)
	res, err := m.Simulate(sched.Schedule{d, e, h})
	if err != nil {
		t.Fatal(err)
	}
	// At H's allocation: D(4)+E(4)+H(2) = 10; after freeing D and E: 2.
	if res.HighMark[2] != 10 {
		t.Errorf("high mark at H = %d, want 10", res.HighMark[2])
	}
	if res.Profile[2] != 2 {
		t.Errorf("after deallocation = %d, want 2", res.Profile[2])
	}
	_ = h
}
