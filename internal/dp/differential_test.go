package dp_test

// Differential harness: every test here runs the allocation-free production
// core against referenceScheduleCtx (the retired map-based frontier) on the
// same inputs and asserts the results are bit-identical — the hard contract
// the frontier rewrite shipped under. Wall-clock-dependent aborts
// (StepTimeout) are compared on Flag only; everything deterministic —
// solutions, budget exhaustion, the MaxStates valve, pre-canceled contexts —
// is compared field by field, including the search accounting.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/models"
	"github.com/serenity-ml/serenity/internal/partition"
	"github.com/serenity-ml/serenity/internal/sched"
)

// assertBitIdentical fails unless got matches want on every deterministic
// Result field. Elapsed is exempt (wall clock).
func assertBitIdentical(t *testing.T, name string, want, got *dp.Result) {
	t.Helper()
	if got.Flag != want.Flag {
		t.Fatalf("%s: flag %v != reference %v", name, got.Flag, want.Flag)
	}
	if got.Peak != want.Peak {
		t.Errorf("%s: peak %d != reference %d", name, got.Peak, want.Peak)
	}
	if got.StatesExplored != want.StatesExplored {
		t.Errorf("%s: states explored %d != reference %d", name, got.StatesExplored, want.StatesExplored)
	}
	if got.StatesPruned != want.StatesPruned {
		t.Errorf("%s: states pruned %d != reference %d", name, got.StatesPruned, want.StatesPruned)
	}
	if got.MaxFrontier != want.MaxFrontier {
		t.Errorf("%s: max frontier %d != reference %d", name, got.MaxFrontier, want.MaxFrontier)
	}
	if len(got.Order) != len(want.Order) {
		t.Fatalf("%s: order length %d != reference %d", name, len(got.Order), len(want.Order))
	}
	for i := range got.Order {
		if got.Order[i] != want.Order[i] {
			t.Fatalf("%s: order diverges at %d: %v vs reference %v", name, i, got.Order, want.Order)
		}
	}
}

// parallelOpts returns opts with sharded expansion forced on: threshold 1 so
// even tiny levels shard, exercising the merge on every instance.
func parallelOpts(opts dp.Options, workers int) dp.Options {
	opts.Parallelism = workers
	opts.ParallelThreshold = 1
	return opts
}

// forceProcs raises GOMAXPROCS for the test's duration: the scheduler caps
// its shard count there, so on a single-core machine (or CI runner) the
// sharded path would otherwise silently degrade to sequential and these
// differentials would compare the sequential core against itself.
func forceProcs(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// diffOne runs reference, sequential, and forced-parallel cores on one
// instance/options pair and asserts all three agree.
func diffOne(t *testing.T, name string, m *sched.MemModel, opts dp.Options) *dp.Result {
	t.Helper()
	want := referenceSchedule(m, opts)
	seq := dp.Schedule(m, opts)
	assertBitIdentical(t, name+"/sequential", want, seq)
	par := dp.Schedule(m, parallelOpts(opts, 4))
	if want.Flag == dp.FlagSolution {
		assertBitIdentical(t, name+"/parallel", want, par)
	} else if par.Flag != want.Flag {
		// Abort paths: the sharded expander guarantees the Flag, not the
		// partial counters (see Options.Parallelism).
		t.Fatalf("%s/parallel: flag %v != reference %v", name, par.Flag, want.Flag)
	}
	return want
}

// TestDifferentialNineCells runs the harness over every segment of the
// paper's nine evaluation cells — the exact workload serenityd serves — with
// an unlimited budget, a tight budget (the optimum), and an infeasible
// budget (optimum-1). MaxStates guards the densest segments; a deterministic
// valve abort is itself compared bit for bit.
func TestDifferentialNineCells(t *testing.T) {
	forceProcs(t, 4)
	if testing.Short() {
		t.Skip("nine-cell differential is the long way round")
	}
	if raceEnabled {
		t.Skip("single-threaded oracle adds no race coverage and is ~8x slower under race")
	}
	for _, cell := range models.BenchmarkCells() {
		g := cell.Build()
		part, err := partition.Split(g)
		if err != nil {
			t.Fatalf("%s %s: %v", cell.Network, cell.Cell, err)
		}
		for i, seg := range part.Segments {
			m := sched.NewMemModel(seg.G)
			name := fmt.Sprintf("%s/%s/seg%d", cell.Network, cell.Cell, i)
			base := diffOne(t, name, m, dp.Options{MaxStates: 1 << 20})
			if base.Flag != dp.FlagSolution {
				continue // valve fired; already compared
			}
			diffOne(t, name+"/budget=opt", m, dp.Options{Budget: base.Peak, MaxStates: 1 << 20})
			diffOne(t, name+"/budget=opt-1", m, dp.Options{Budget: base.Peak - 1, MaxStates: 1 << 20})
		}
	}
}

// TestDifferentialRandomDAGs is the harness over 200 random DAGs spanning
// densities and fan-in limits, each under four budget regimes.
func TestDifferentialRandomDAGs(t *testing.T) {
	forceProcs(t, 4)
	iters := 200
	if testing.Short() || raceEnabled {
		iters = 40
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < iters; i++ {
		cfg := graph.RandomDAGConfig{
			Nodes:    4 + rng.Intn(15),
			EdgeProb: 0.1 + rng.Float64()*0.6,
			MaxFanIn: 1 + rng.Intn(4),
		}
		g := graph.RandomDAG(rng, cfg)
		m := sched.NewMemModel(g)
		name := fmt.Sprintf("iter%d", i)
		base := diffOne(t, name, m, dp.Options{})
		diffOne(t, name+"/budget=opt", m, dp.Options{Budget: base.Peak})
		diffOne(t, name+"/budget=opt-1", m, dp.Options{Budget: base.Peak - 1})
		diffOne(t, name+"/budget=2opt", m, dp.Options{Budget: 2 * base.Peak})
	}
}

// TestDifferentialMaxStatesValve pins the deterministic abort: a tiny state
// cap must fire at the same point with the same partial accounting in the
// sequential core as in the reference.
func TestDifferentialMaxStatesValve(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 40, EdgeProb: 0.04, MaxFanIn: 2})
		m := sched.NewMemModel(g)
		for _, cap := range []int{1, 8, 64} {
			opts := dp.Options{MaxStates: cap}
			want := referenceSchedule(m, opts)
			got := dp.Schedule(m, opts)
			assertBitIdentical(t, fmt.Sprintf("trial%d/cap%d", trial, cap), want, got)
			// The sharded path guarantees the Flag for the valve.
			par := dp.Schedule(m, parallelOpts(opts, 4))
			if par.Flag != want.Flag {
				t.Fatalf("trial%d/cap%d/parallel: flag %v != %v", trial, cap, par.Flag, want.Flag)
			}
		}
	}
}

// TestDifferentialCancellation covers the cancellation edges: a pre-canceled
// context is deterministic (no work yet) and must match bit for bit; a
// mid-flight cancellation must abort both cores with FlagCanceled.
func TestDifferentialCancellation(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 30, EdgeProb: 0.1, MaxFanIn: 3})
	m := sched.NewMemModel(g)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	want := referenceScheduleCtx(pre, m, dp.Options{})
	got := dp.ScheduleCtx(pre, m, dp.Options{})
	assertBitIdentical(t, "pre-canceled", want, got)
	par := dp.ScheduleCtx(pre, m, parallelOpts(dp.Options{}, 4))
	assertBitIdentical(t, "pre-canceled/parallel", want, par)
	if want.Flag != dp.FlagCanceled || want.StatesExplored != 0 {
		t.Fatalf("pre-canceled reference did work: %+v", want)
	}

	// Mid-flight: cancel shortly after the search starts on a graph too wide
	// to finish instantly. Wall-clock dependent, so Flag-only — it may even
	// finish first on a fast machine.
	wide := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 60, EdgeProb: 0.05, MaxFanIn: 2})
	wm := sched.NewMemModel(wide)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		r := dp.ScheduleCtx(ctx, wm, parallelOpts(dp.Options{}, workers))
		cancel()
		if r.Flag != dp.FlagCanceled && r.Flag != dp.FlagSolution {
			t.Fatalf("workers=%d: mid-flight cancel returned %v", workers, r.Flag)
		}
	}
}

// TestDifferentialStepTimeout covers the wall-clock abort: with a nanosecond
// step budget both cores must report timeout (never hang, never return a
// bogus solution) on a graph whose levels cannot complete that fast.
func TestDifferentialStepTimeout(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 60, EdgeProb: 0.05, MaxFanIn: 2})
	m := sched.NewMemModel(g)
	opts := dp.Options{StepTimeout: time.Nanosecond}
	if f := referenceSchedule(m, opts).Flag; f != dp.FlagTimeout {
		t.Fatalf("reference: flag %v, want timeout", f)
	}
	if f := dp.Schedule(m, opts).Flag; f != dp.FlagTimeout {
		t.Fatalf("sequential: flag %v, want timeout", f)
	}
	if f := dp.Schedule(m, parallelOpts(opts, 4)).Flag; f != dp.FlagTimeout {
		t.Fatalf("parallel: flag %v, want timeout", f)
	}
}

// TestParallelMatchesSequentialWideFrontiers drives the sharded expander on
// graphs wide enough to exceed the default threshold organically (no forced
// threshold) and across worker counts, including ones above GOMAXPROCS.
func TestParallelMatchesSequentialWideFrontiers(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(31))
	trials := 5
	if raceEnabled || testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 22 + trial*3, EdgeProb: 0.16, MaxFanIn: 3})
		m := sched.NewMemModel(g)
		opts := dp.Options{MaxStates: 1 << 17}
		want := dp.Schedule(m, opts)
		for _, workers := range []int{2, 3, 8, 64} {
			po := opts
			po.Parallelism = workers
			got := dp.Schedule(m, po)
			if want.Flag == dp.FlagSolution {
				assertBitIdentical(t, fmt.Sprintf("trial%d/workers%d", trial, workers), want, got)
			} else if got.Flag != want.Flag {
				t.Fatalf("trial%d/workers%d: flag %v != %v", trial, workers, got.Flag, want.Flag)
			}
		}
	}
}

// TestParallelExpansionRace exists for the race detector: concurrent
// schedules over one shared MemModel (its tables are read-only at search
// time) with sharding forced on every level.
func TestParallelExpansionRace(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(55))
	g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 30, EdgeProb: 0.1, MaxFanIn: 3})
	m := sched.NewMemModel(g)
	want := dp.Optimal(m)
	done := make(chan *dp.Result, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			done <- dp.Schedule(m, parallelOpts(dp.Options{}, 2+i%3))
		}(i)
	}
	for i := 0; i < 8; i++ {
		r := <-done
		assertBitIdentical(t, fmt.Sprintf("concurrent%d", i), want, r)
	}
}

// TestAdaptiveParallelFindsOptimum wires Parallelism through the Algorithm 2
// meta-search: probe outcomes are wall-clock sensitive, but the converged
// peak must be the optimum regardless of sharding.
func TestAdaptiveParallelFindsOptimum(t *testing.T) {
	forceProcs(t, 4)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{Nodes: 14, EdgeProb: 0.25})
		m := sched.NewMemModel(g)
		want := dp.Optimal(m)
		ar, err := dp.AdaptiveSchedule(m, dp.AdaptiveOptions{StepTimeout: time.Second, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if ar.Flag != dp.FlagSolution || ar.Peak != want.Peak {
			t.Fatalf("trial %d: adaptive parallel peak %d (flag %v) != optimal %d", trial, ar.Peak, ar.Flag, want.Peak)
		}
	}
}

// FuzzDPDifferential fuzzes the harness itself: generator parameters plus a
// budget selector, asserting reference/sequential/parallel agreement on
// whatever DAG falls out.
func FuzzDPDifferential(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(80), uint8(0))
	f.Add(int64(7), uint8(16), uint8(40), uint8(1))
	f.Add(int64(-3), uint8(6), uint8(200), uint8(2))
	f.Add(int64(99), uint8(18), uint8(20), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, nodes, edgeProb, budgetSel uint8) {
		forceProcs(t, 4)
		if nodes > 20 {
			t.Skip("keep the DP tractable")
		}
		rng := rand.New(rand.NewSource(seed))
		g := graph.RandomDAG(rng, graph.RandomDAGConfig{
			Nodes:    int(nodes),
			EdgeProb: float64(edgeProb) / 255,
			MaxFanIn: 1 + int(budgetSel%4),
		})
		m := sched.NewMemModel(g)
		base := diffOne(t, "fuzz", m, dp.Options{MaxStates: 1 << 18})
		if base.Flag != dp.FlagSolution {
			return
		}
		var budget int64
		switch budgetSel % 4 {
		case 0:
			budget = 0
		case 1:
			budget = base.Peak
		case 2:
			budget = base.Peak - 1
		case 3:
			budget = base.Peak + base.Peak/2
		}
		diffOne(t, "fuzz/budgeted", m, dp.Options{Budget: budget, MaxStates: 1 << 18})
	})
}

// TestZobristIncrementalMatchesScratch pins the hash algebra the frontier
// rides on: XOR-ing one node's word must agree with hashing the mutated set
// from scratch, across random mutation walks.
func TestZobristIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n = 130 // cross word boundaries
	tab := graph.ZobristTable(n)
	b := graph.NewBitset(n)
	var h uint64
	for step := 0; step < 1000; step++ {
		u := rng.Intn(n)
		if b.Has(u) {
			b.Clear(u)
		} else {
			b.Set(u)
		}
		h ^= tab[u]
		if want := b.ZobristHash(tab); h != want {
			t.Fatalf("step %d: incremental hash %#x != scratch %#x", step, h, want)
		}
	}
	if empty := graph.NewBitset(n).ZobristHash(tab); empty != 0 {
		t.Fatalf("hash(∅) = %#x, want 0", empty)
	}
}
