//go:build !race

package dp_test

// raceEnabled mirrors race_enabled_test.go; see the build-tagged twin.
const raceEnabled = false
