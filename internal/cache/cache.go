// Package cache provides the bounded LRU used by the serenityd compile
// server to memoize schedule results. Keys are canonical structural
// fingerprints (graph.Fingerprint plus an options discriminator), so two
// requests carrying the same topology hit the same entry no matter how the
// graphs are named.
//
// The cache is safe for concurrent use. Values are treated as immutable:
// callers must not mutate a value after Put or after reading it with Get —
// the serving layer shares one *serenity.Result across all hits for a key.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a snapshot of the cache's hit/miss counters.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Len       int
}

// Cache is a fixed-capacity LRU map from string keys to values of type V.
type Cache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats Stats
}

type entry[V any] struct {
	key string
	val V
}

// New returns an LRU cache holding at most capacity entries; capacity < 1 is
// raised to 1.
func New[V any](capacity int) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get returns the value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry[V]).val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put inserts or refreshes key, evicting the least recently used entry when
// over capacity.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry[V]).key)
		c.stats.Evictions++
	}
}

// Len returns the current number of entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Len = c.ll.Len()
	return s
}
