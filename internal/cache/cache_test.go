package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBasics(t *testing.T) {
	c := New[int](2)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d,%v", v, ok)
	}
	c.Put("c", 3) // evicts b: a was touched more recently
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s missing after eviction of b", k)
		}
	}
	s := c.Stats()
	if s.Evictions != 1 || s.Len != 2 {
		t.Errorf("stats = %+v, want 1 eviction, len 2", s)
	}
	if s.Hits != 3 || s.Misses != 2 {
		t.Errorf("stats = %+v, want 3 hits / 2 misses", s)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New[string](2)
	c.Put("k", "old")
	c.Put("k", "new")
	if c.Len() != 1 {
		t.Fatalf("len = %d after double Put", c.Len())
	}
	if v, _ := c.Get("k"); v != "new" {
		t.Errorf("Get = %q, want refreshed value", v)
	}
}

func TestCapacityFloor(t *testing.T) {
	c := New[int](0)
	c.Put("a", 1)
	c.Put("b", 2)
	if c.Len() != 1 {
		t.Errorf("len = %d, want capacity floor of 1", c.Len())
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				if v, ok := c.Get(k); ok && v != len(k) {
					t.Errorf("corrupted value %d for %s", v, k)
				}
				c.Put(k, len(k))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Len(); got > 32 {
		t.Errorf("len = %d exceeds capacity", got)
	}
	s := c.Stats()
	if s.Hits+s.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", s.Hits+s.Misses, 8*500)
	}
}
