package cache

import (
	"context"
	"errors"
	"sync"
)

// ErrPanicked is the error followers of a flight observe when the leader's
// compute function panicked instead of returning. The panic itself still
// propagates on the leader's goroutine; followers must not mistake the
// flight's zero value for a successful result.
var ErrPanicked = errors.New("cache: singleflight leader panicked before completing")

// Group coalesces concurrent computations by key (singleflight): while one
// caller — the leader — runs the compute function for a key, every other
// caller for the same key blocks on the leader's outcome instead of
// recomputing it. The zero value is ready to use.
//
// Group deliberately does not store results beyond the flight: pair it with a
// Cache when completed results should outlive the computation.
type Group[V any] struct {
	mu      sync.Mutex
	flights map[string]*flight[V]
}

// flight is one in-progress computation.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the result of fn for key, running fn at most once across
// concurrent callers. The second return reports whether the result was shared
// from another caller's flight (true) or computed by this call (false).
//
// Waiting honors ctx: a follower whose own context ends returns ctx.Err()
// without waiting further. A follower whose *leader* failed with a context
// error retries — the leader's caller went away, which says nothing about the
// computation — and may become the new leader. Any other leader error is
// shared with every follower of that flight.
//
// fn runs on the leader's goroutine with the leader's context captured in its
// closure. If fn panics, the panic propagates to the leader's caller, the
// flight is still cleaned up, and followers receive ErrPanicked rather than
// a zero value masquerading as success.
func (g *Group[V]) Do(ctx context.Context, key string, fn func() (V, error)) (V, bool, error) {
	for {
		g.mu.Lock()
		if g.flights == nil {
			g.flights = make(map[string]*flight[V])
		}
		if f, ok := g.flights[key]; ok {
			g.mu.Unlock()
			select {
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			case <-f.done:
			}
			if f.err == nil {
				return f.val, true, nil
			}
			if errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded) {
				continue // the leader was canceled, not the computation's fault
			}
			var zero V
			return zero, true, f.err
		}
		f := &flight[V]{done: make(chan struct{})}
		g.flights[key] = f
		g.mu.Unlock()

		func() {
			completed := false
			defer func() {
				if !completed {
					f.err = ErrPanicked
				}
				g.mu.Lock()
				delete(g.flights, key)
				g.mu.Unlock()
				close(f.done)
			}()
			f.val, f.err = fn()
			completed = true
		}()
		return f.val, false, f.err
	}
}

// Inflight returns the number of keys currently being computed.
func (g *Group[V]) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
