package cache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCoalesces: concurrent Do calls for one key run the function once;
// exactly one caller reports shared=false.
func TestGroupCoalesces(t *testing.T) {
	var g Group[int]
	var computes atomic.Int64
	gate := make(chan struct{})

	const callers = 8
	results := make([]int, callers)
	shareds := make([]bool, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shareds[i], errs[i] = g.Do(context.Background(), "k", func() (int, error) {
				<-gate // hold the flight open until every caller has arrived
				computes.Add(1)
				return 42, nil
			})
		}(i)
	}
	// Wait for the leader to open the flight, then let everyone pile on.
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("computed %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < callers; i++ {
		if errs[i] != nil || results[i] != 42 {
			t.Fatalf("caller %d: got %d, %v", i, results[i], errs[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("%d callers report shared=false, want exactly 1", leaders)
	}
	if g.Inflight() != 0 {
		t.Errorf("flights leaked: %d", g.Inflight())
	}
}

// TestGroupSequentialRunsEachTime: without overlap there is nothing to
// coalesce — every call computes.
func TestGroupSequentialRunsEachTime(t *testing.T) {
	var g Group[int]
	var computes int
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func() (int, error) {
			computes++
			return computes, nil
		})
		if err != nil || shared || v != i+1 {
			t.Fatalf("call %d: v=%d shared=%t err=%v", i, v, shared, err)
		}
	}
}

// TestGroupSharesErrors: a genuine leader error reaches the followers; a
// context error makes followers retry on their own.
func TestGroupSharesErrors(t *testing.T) {
	var g Group[int]
	boom := errors.New("boom")
	gate := make(chan struct{})

	var followerErr, leaderErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, leaderErr = g.Do(context.Background(), "k", func() (int, error) {
			<-gate
			return 0, boom
		})
	}()
	go func() {
		defer wg.Done()
		for g.Inflight() == 0 {
			time.Sleep(time.Millisecond)
		}
		_, _, followerErr = g.Do(context.Background(), "k", func() (int, error) {
			t.Error("follower recomputed a genuinely failed flight")
			return 0, nil
		})
	}()
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond) // let the follower reach the flight wait
	close(gate)
	wg.Wait()
	if !errors.Is(leaderErr, boom) || !errors.Is(followerErr, boom) {
		t.Fatalf("leader %v / follower %v, want the leader's error on both", leaderErr, followerErr)
	}

	// Leader canceled: the follower must retry with its own context and
	// succeed.
	gate2 := make(chan struct{})
	var v int
	var err error
	wg.Add(2)
	go func() {
		defer wg.Done()
		g.Do(context.Background(), "k2", func() (int, error) {
			<-gate2
			return 0, context.Canceled
		})
	}()
	go func() {
		defer wg.Done()
		for g.Inflight() == 0 {
			time.Sleep(time.Millisecond)
		}
		v, _, err = g.Do(context.Background(), "k2", func() (int, error) {
			return 7, nil
		})
	}()
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate2)
	wg.Wait()
	if err != nil || v != 7 {
		t.Fatalf("follower after canceled leader: v=%d err=%v, want a fresh computation", v, err)
	}
}

// TestGroupLeaderPanic: a panicking leader must not hand followers a zero
// value with a nil error — they get ErrPanicked, and the panic still
// propagates on the leader's goroutine.
func TestGroupLeaderPanic(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	var leaderPanic any
	var followerErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() { leaderPanic = recover() }()
		g.Do(context.Background(), "k", func() (int, error) {
			<-gate
			panic("boom")
		})
	}()
	go func() {
		defer wg.Done()
		for g.Inflight() == 0 {
			time.Sleep(time.Millisecond)
		}
		_, _, followerErr = g.Do(context.Background(), "k", func() (int, error) {
			return 5, nil
		})
	}()
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(5 * time.Millisecond)
	close(gate)
	wg.Wait()
	if leaderPanic == nil {
		t.Fatal("leader's panic did not propagate")
	}
	if !errors.Is(followerErr, ErrPanicked) {
		t.Fatalf("follower got %v, want ErrPanicked", followerErr)
	}
	if g.Inflight() != 0 {
		t.Errorf("flights leaked after panic: %d", g.Inflight())
	}
}

// TestGroupFollowerContext: a follower whose own context ends stops waiting.
func TestGroupFollowerContext(t *testing.T) {
	var g Group[int]
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.Do(context.Background(), "k", func() (int, error) {
			<-gate
			return 1, nil
		})
	}()
	for g.Inflight() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.Do(ctx, "k", func() (int, error) { return 2, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(gate)
	wg.Wait()
}
