package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHealthStateMachine drives the consecutive-streak transitions with
// reported outcomes only (no prober): the deterministic core of the detector.
func TestHealthStateMachine(t *testing.T) {
	const peer = "http://p:1"
	cases := []struct {
		name     string
		opts     HealthOptions
		outcomes string // 'F' = failure, 'S' = success, applied in order
		want     State
	}{
		{"starts alive", HealthOptions{}, "", StateAlive},
		{"first failure suspects", HealthOptions{}, "F", StateSuspect},
		{"two failures still suspect", HealthOptions{}, "FF", StateSuspect},
		{"third failure kills", HealthOptions{}, "FFF", StateDead},
		{"success resets the streak", HealthOptions{}, "FFSFF", StateSuspect},
		{"one success revives a suspect", HealthOptions{}, "FS", StateAlive},
		{"one success revives the dead", HealthOptions{}, "FFFS", StateAlive},
		{"alive stays alive on success", HealthOptions{}, "SSS", StateAlive},
		{"dead stays dead on more failures", HealthOptions{}, "FFFFFF", StateDead},
		{"suspect threshold is configurable", HealthOptions{SuspectAfter: 2}, "F", StateAlive},
		{"suspect at configured threshold", HealthOptions{SuspectAfter: 2}, "FF", StateSuspect},
		{"dead threshold is configurable", HealthOptions{DeadAfter: 5}, "FFFF", StateSuspect},
		{"dead at configured threshold", HealthOptions{DeadAfter: 5}, "FFFFF", StateDead},
		{"revive threshold is configurable", HealthOptions{ReviveAfter: 2}, "FFFS", StateDead},
		{"revive at configured threshold", HealthOptions{ReviveAfter: 2}, "FFFSS", StateAlive},
		{"dead-after clamps to suspect-after", HealthOptions{SuspectAfter: 4, DeadAfter: 2}, "FFFF", StateDead},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewHealth([]string{peer}, tc.opts)
			for _, o := range tc.outcomes {
				if o == 'F' {
					h.ReportFailure(peer)
				} else {
					h.ReportSuccess(peer)
				}
			}
			if got := h.State(peer); got != tc.want {
				t.Fatalf("after %q: state=%v, want %v", tc.outcomes, got, tc.want)
			}
		})
	}
}

// TestHealthViewsAndTransitions pins the two routing views' asymmetry (fetch
// skips Suspect, replication only skips Dead) and the transition hook.
func TestHealthViewsAndTransitions(t *testing.T) {
	const peer = "http://p:1"
	var mu sync.Mutex
	var seen []string
	h := NewHealth([]string{peer}, HealthOptions{
		OnTransition: func(p string, from, to State) {
			mu.Lock()
			seen = append(seen, fmt.Sprintf("%s:%v->%v", p, from, to))
			mu.Unlock()
		},
	})
	if !h.Live(peer) || !h.Reachable(peer) {
		t.Fatal("fresh peer must be live and reachable")
	}
	h.ReportFailure(peer) // -> suspect
	if h.Live(peer) {
		t.Fatal("suspect peer must not be Live: the fetch path skips it")
	}
	if !h.Reachable(peer) {
		t.Fatal("suspect peer must stay Reachable: replication still pushes to it")
	}
	h.ReportFailure(peer)
	h.ReportFailure(peer) // -> dead
	if h.Reachable(peer) {
		t.Fatal("dead peer must not be Reachable")
	}
	h.ReportSuccess(peer) // -> alive
	if !h.Live(peer) {
		t.Fatal("revived peer must be Live again")
	}
	mu.Lock()
	got := fmt.Sprint(seen)
	mu.Unlock()
	want := fmt.Sprint([]string{
		peer + ":alive->suspect", peer + ":suspect->dead", peer + ":dead->alive",
	})
	if got != want {
		t.Fatalf("transitions %v, want %v", got, want)
	}
	if st := h.Stats(); st.Transitions != 3 {
		t.Errorf("Transitions=%d, want 3", st.Transitions)
	}
}

// TestHealthUntrackedPeersReadAlive: a node is always alive from its own
// point of view, and a peer outside the tracked set must not be routed around.
func TestHealthUntrackedPeersReadAlive(t *testing.T) {
	h := NewHealth([]string{"http://p:1"}, HealthOptions{})
	if got := h.State("http://self:1"); got != StateAlive {
		t.Fatalf("untracked peer reads %v, want alive", got)
	}
	// Reports about untracked peers are dropped, not accumulated.
	h.ReportFailure("http://stranger:1")
	if got := h.State("http://stranger:1"); got != StateAlive {
		t.Fatalf("reported-on stranger reads %v, want alive", got)
	}
}

// TestHealthSetMembers pins the join/leave semantics: new peers start Alive,
// departed peers are forgotten, survivors keep their state and streaks.
func TestHealthSetMembers(t *testing.T) {
	a, b, c := "http://a:1", "http://b:1", "http://c:1"
	h := NewHealth([]string{a, b}, HealthOptions{})
	h.ReportFailure(a)
	h.ReportFailure(a)
	h.ReportFailure(a) // a dead
	h.ReportFailure(b) // b suspect
	h.SetMembers([]string{a, c})
	if got := h.State(a); got != StateDead {
		t.Fatalf("survivor lost its state: %v", got)
	}
	if got := h.State(c); got != StateAlive {
		t.Fatalf("joiner starts %v, want alive", got)
	}
	// b departed: forgotten, so it reads the untracked default.
	if got := h.State(b); got != StateAlive {
		t.Fatalf("departed peer reads %v, want alive (forgotten)", got)
	}
	if got := fmt.Sprint(h.Members()); got != fmt.Sprint([]string{a, c}) {
		t.Fatalf("Members()=%v", got)
	}
	snap := h.Snapshot()
	if len(snap) != 2 || snap[a] != StateDead || snap[c] != StateAlive {
		t.Fatalf("Snapshot()=%v", snap)
	}
	// a's failure streak survived the membership change: one more success
	// still revives it (oks streak fresh), one more failure keeps it dead.
	h.ReportSuccess(a)
	if got := h.State(a); got != StateAlive {
		t.Fatalf("survivor revive after SetMembers: %v", got)
	}
}

// TestHealthProberDrivesTransitions runs the real probe loop against servers
// that flip between healthy and failing, and watches the state follow.
func TestHealthProberDrivesTransitions(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != PingPath {
			t.Errorf("probe hit %q, want %q", r.URL.Path, PingPath)
		}
		if healthy.Load() {
			w.WriteHeader(http.StatusNoContent)
		} else {
			http.Error(w, "draining", http.StatusServiceUnavailable)
		}
	}))
	defer srv.Close()

	h := NewHealth([]string{srv.URL}, HealthOptions{
		Interval:  5 * time.Millisecond,
		Timeout:   200 * time.Millisecond,
		DeadAfter: 2,
	})
	h.Start()
	defer h.Stop()

	waitState := func(want State) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if h.State(srv.URL) == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("peer never reached %v (stuck at %v)", want, h.State(srv.URL))
	}

	waitState(StateAlive)
	healthy.Store(false) // 503s now: suspect after 1 failure, dead after 2
	waitState(StateDead)
	healthy.Store(true)
	waitState(StateAlive)
	if st := h.Stats(); st.Probes == 0 || st.Failures == 0 {
		t.Errorf("prober counters never moved: %+v", st)
	}
}

// TestHealthProberTreatsDeadSocketAsFailure: a closed listener (the kill -9
// case) must read exactly like a 503 — transport errors demote too.
func TestHealthProberTreatsDeadSocketAsFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	url := srv.URL
	srv.Close()
	h := NewHealth([]string{url}, HealthOptions{
		Interval:  5 * time.Millisecond,
		Timeout:   100 * time.Millisecond,
		DeadAfter: 2,
	})
	h.Start()
	defer h.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.State(url) == StateDead {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("dead socket never demoted the peer (stuck at %v)", h.State(url))
}

func TestHealthStateStrings(t *testing.T) {
	want := map[State]string{StateAlive: "alive", StateSuspect: "suspect", StateDead: "dead"}
	for _, s := range States {
		if s.String() != want[s] {
			t.Errorf("State(%d).String()=%q, want %q", s, s.String(), want[s])
		}
	}
}
