package fleet

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		// Shaped like real memo keys: hex fingerprint | strategy discriminator.
		keys[i] = fmt.Sprintf("%064x|exact|a=true|t=1000000000|s=0", i*2654435761)
	}
	return keys
}

func TestRingMembersAgreeOnOwnership(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	rings := make([]*Ring, len(members))
	for i, self := range members {
		// Each node gets the membership in a different rotation: flag order
		// must not matter.
		rot := append(append([]string(nil), members[i:]...), members[:i]...)
		r, err := NewRing(self, rot, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for _, key := range testKeys(2000) {
		owner := rings[0].Owner(key)
		for _, r := range rings[1:] {
			if got := r.Owner(key); got != owner {
				t.Fatalf("ring disagreement for %q: %s vs %s", key, owner, got)
			}
		}
		owns := 0
		for i, r := range rings {
			if r.Owns(key) {
				owns++
				if members[i] != owner {
					t.Fatalf("node %s claims %q but owner is %s", members[i], key, owner)
				}
			}
		}
		if owns != 1 {
			t.Fatalf("key %q claimed by %d nodes, want exactly 1", key, owns)
		}
	}
}

func TestRingNormalizesMembership(t *testing.T) {
	r1, err := NewRing("http://a:1", []string{" http://b:1/ ", "http://a:1", "http://b:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing("http://a:1/", []string{"http://b:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.Members()) != fmt.Sprint(r2.Members()) {
		t.Fatalf("normalization differs: %v vs %v", r1.Members(), r2.Members())
	}
	for _, key := range testKeys(500) {
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("normalized rings disagree on %q", key)
		}
	}
	if _, err := NewRing("", []string{"http://b:1"}, 0); err == nil {
		t.Fatal("empty self must be rejected")
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	r, err := NewRing(members[0], members, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(6000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	for _, m := range members {
		share := float64(counts[m]) / float64(len(keys))
		if share < 0.15 || share > 0.55 {
			t.Errorf("member %s owns %.0f%% of the keyspace; want roughly a third", m, 100*share)
		}
	}
	// OwnedShare (the exported gauge) must land in the same ballpark.
	if share := r.OwnedShare(4096); share < 0.10 || share > 0.60 {
		t.Errorf("OwnedShare probe answered %.2f for a 3-node ring", share)
	}
}

func TestRingSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRing("http://solo:1", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range testKeys(200) {
		if !r.Owns(key) {
			t.Fatalf("single-node ring does not own %q", key)
		}
	}
	if len(r.Peers()) != 0 {
		t.Fatalf("single-node ring has peers: %v", r.Peers())
	}
}

// TestRingOwnersFailoverOrder pins the properties failover relies on: the
// sequence starts at the static owner, never repeats a member, covers the
// whole membership, and every node computes the identical order.
func TestRingOwnersFailoverOrder(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	rings := make([]*Ring, len(members))
	for i, self := range members {
		r, err := NewRing(self, members, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	for _, key := range testKeys(500) {
		order := rings[0].Owners(key, len(members))
		if len(order) != len(members) {
			t.Fatalf("Owners(%q) returned %d members, want %d", key, len(order), len(members))
		}
		if order[0] != rings[0].Owner(key) {
			t.Fatalf("Owners(%q)[0]=%s, want the static owner %s", key, order[0], rings[0].Owner(key))
		}
		seen := map[string]bool{}
		for _, m := range order {
			if seen[m] {
				t.Fatalf("Owners(%q) repeats %s", key, m)
			}
			seen[m] = true
		}
		for _, r := range rings[1:] {
			if got := fmt.Sprint(r.Owners(key, len(members))); got != fmt.Sprint(order) {
				t.Fatalf("failover order disagreement for %q: %v vs %v", key, order, got)
			}
		}
	}
	if got := rings[0].Owners("k", 2); len(got) != 2 {
		t.Fatalf("Owners with max=2 returned %d members", len(got))
	}
	if got := rings[0].Owners("k", 0); got != nil {
		t.Fatalf("Owners with max=0 returned %v", got)
	}
}

// TestRingLiveOwnerFailsOverAndReturns: a dead member's keys land on the next
// live point — on every node identically — and return when it revives.
func TestRingLiveOwnerFailsOverAndReturns(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	rings := make([]*Ring, len(members))
	for i, self := range members {
		r, err := NewRing(self, members, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
	}
	dead := "http://b:1"
	live := func(m string) bool { return m != dead }
	moved := 0
	for _, key := range testKeys(1000) {
		static := rings[0].Owner(key)
		for _, r := range rings {
			got := r.LiveOwner(key, live)
			if static == dead {
				// b's keys must fail over — except on b itself, which always
				// counts itself live so it keeps serving what it can.
				want := rings[0].Owners(key, 3)[1]
				if r.Self() == dead {
					want = dead
				}
				if got != want {
					t.Fatalf("LiveOwner(%q) on %s = %s, want %s", key, r.Self(), got, want)
				}
			} else if got != static {
				t.Fatalf("healthy owner %s overridden to %s for %q", static, got, key)
			}
		}
		if static == dead {
			moved++
		}
		// Recovery: with everyone live the static owner is back in charge.
		if got := rings[0].LiveOwner(key, func(string) bool { return true }); got != static {
			t.Fatalf("recovered fleet still failing %q over to %s", key, got)
		}
		// nil live degrades to the static owner.
		if got := rings[0].LiveOwner(key, nil); got != static {
			t.Fatalf("nil live view moved %q to %s", key, got)
		}
	}
	if moved == 0 {
		t.Fatal("test never exercised a failover (no key owned by the dead member)")
	}
}

// TestRingLiveOwnerAlwaysAnswers: even with every other member dead, each
// node resolves some owner — itself — so compiles never stall on routing.
func TestRingLiveOwnerAlwaysAnswers(t *testing.T) {
	members := []string{"http://a:1", "http://b:1", "http://c:1"}
	r, err := NewRing(members[0], members, 0)
	if err != nil {
		t.Fatal(err)
	}
	nobody := func(string) bool { return false }
	for _, key := range testKeys(300) {
		if got := r.LiveOwner(key, nobody); got != members[0] {
			t.Fatalf("with the fleet down, LiveOwner(%q)=%s, want self", key, got)
		}
	}
}

func TestRingMinimalRemappingOnGrowth(t *testing.T) {
	three := []string{"http://a:1", "http://b:1", "http://c:1"}
	four := append(append([]string(nil), three...), "http://d:1")
	r3, err := NewRing(three[0], three, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(three[0], four, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := testKeys(4000)
	moved, movedToNew := 0, 0
	for _, key := range keys {
		o3, o4 := r3.Owner(key), r4.Owner(key)
		if o3 != o4 {
			moved++
			if o4 == "http://d:1" {
				movedToNew++
			}
		}
	}
	// Consistent hashing's whole point: growing 3 -> 4 should move roughly a
	// quarter of the keyspace, essentially all of it onto the new member.
	if frac := float64(moved) / float64(len(keys)); frac > 0.45 {
		t.Errorf("adding one member remapped %.0f%% of keys; consistent hashing should move ~25%%", 100*frac)
	}
	if moved > 0 && float64(movedToNew)/float64(moved) < 0.95 {
		t.Errorf("only %d/%d moved keys landed on the new member", movedToNew, moved)
	}
}
