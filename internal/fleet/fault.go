package fleet

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// FaultRule describes the failure injected for traffic toward one peer (or,
// via SetAll, toward everyone). Fields compose: a Delay is applied first,
// then Drop/DropProb, then ErrorStatus.
type FaultRule struct {
	// Drop fails the request with a transport error — what a kill -9'd or
	// partitioned peer looks like from this side of the wire.
	Drop bool
	// DropProb drops the request with this probability, using the
	// transport's seeded RNG: deterministic flaky-network soak.
	DropProb float64
	// Delay stalls the request before anything else happens; the request's
	// own context keeps ticking, so a Delay beyond the caller's budget is a
	// timeout. Models a slow peer.
	Delay time.Duration
	// ErrorStatus, when nonzero, answers with this HTTP status and no body
	// instead of forwarding — a peer that is up but failing (5xx).
	ErrorStatus int
}

// zero reports an all-defaults rule, i.e. "no fault".
func (r FaultRule) zero() bool {
	return !r.Drop && r.DropProb == 0 && r.Delay == 0 && r.ErrorStatus == 0
}

// FaultStats counts the faults the transport actually injected.
type FaultStats struct {
	Dropped int64
	Delayed int64
	Errored int64
}

// FaultTransport is an http.RoundTripper that injects per-peer faults —
// drops, delays, partitions, synthesized error statuses — in front of a real
// transport. It is the chaos harness's network: tests and the fleet drill
// wrap every fleet HTTP client (fetch, replication, sync, health probes)
// with one, so killing, partitioning, and healing a node is a rule edit, not
// process surgery, and a seeded RNG makes probabilistic faults replayable.
//
// Rules are keyed by the peer's URL host ("10.0.0.5:7433"); SetRule accepts
// the same base-URL form ring members use. Safe for concurrent use.
type FaultTransport struct {
	base http.RoundTripper

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]FaultRule
	all   *FaultRule

	dropped, delayed, errored atomic.Int64
}

// NewFaultTransport wraps base (nil selects http.DefaultTransport) with a
// fault layer seeded for deterministic probabilistic rules.
func NewFaultTransport(base http.RoundTripper, seed int64) *FaultTransport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &FaultTransport{
		base:  base,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]FaultRule),
	}
}

// hostOf normalizes a peer base URL ("http://10.0.0.5:7433/") to the host
// requests will carry.
func hostOf(peer string) string {
	peer = strings.TrimSuffix(strings.TrimSpace(peer), "/")
	if u, err := url.Parse(peer); err == nil && u.Host != "" {
		return u.Host
	}
	return peer
}

// SetRule installs (or, for a zero rule, clears) the fault applied to
// traffic toward peer.
func (t *FaultTransport) SetRule(peer string, rule FaultRule) {
	host := hostOf(peer)
	t.mu.Lock()
	defer t.mu.Unlock()
	if rule.zero() {
		delete(t.rules, host)
		return
	}
	t.rules[host] = rule
}

// ClearRule removes peer's fault rule.
func (t *FaultTransport) ClearRule(peer string) { t.SetRule(peer, FaultRule{}) }

// SetAll installs a rule applied to every request regardless of peer —
// isolating this node's whole outbound side. Per-peer rules take precedence.
func (t *FaultTransport) SetAll(rule FaultRule) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rule.zero() {
		t.all = nil
		return
	}
	r := rule
	t.all = &r
}

// Partition makes peer unreachable from this node (a one-directional cut;
// partition the reverse direction on peer's own transports).
func (t *FaultTransport) Partition(peer string) { t.SetRule(peer, FaultRule{Drop: true}) }

// Heal removes peer's fault rule — the cut is repaired.
func (t *FaultTransport) Heal(peer string) { t.ClearRule(peer) }

// Isolate cuts this node off from everyone (its half of a full partition).
func (t *FaultTransport) Isolate() { t.SetAll(FaultRule{Drop: true}) }

// Rejoin clears the Isolate rule and every per-peer rule.
func (t *FaultTransport) Rejoin() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.all = nil
	t.rules = make(map[string]FaultRule)
}

// Stats returns how many faults were actually injected.
func (t *FaultTransport) Stats() FaultStats {
	return FaultStats{
		Dropped: t.dropped.Load(),
		Delayed: t.delayed.Load(),
		Errored: t.errored.Load(),
	}
}

// ruleFor picks the effective rule for a request host and rolls the
// probabilistic drop under the lock so replays see the same dice.
func (t *FaultTransport) ruleFor(host string) (FaultRule, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rule, ok := t.rules[host]
	if !ok {
		if t.all == nil {
			return FaultRule{}, false
		}
		rule = *t.all
	}
	if rule.DropProb > 0 && t.rng.Float64() < rule.DropProb {
		rule.Drop = true
	}
	return rule, true
}

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rule, ok := t.ruleFor(req.URL.Host)
	if !ok {
		return t.base.RoundTrip(req)
	}
	if rule.Delay > 0 {
		t.delayed.Add(1)
		timer := time.NewTimer(rule.Delay)
		select {
		case <-req.Context().Done():
			timer.Stop()
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if rule.Drop {
		t.dropped.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("fleet: injected fault: %s unreachable", req.URL.Host)
	}
	if rule.ErrorStatus != 0 {
		t.errored.Add(1)
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d injected fault", rule.ErrorStatus),
			StatusCode: rule.ErrorStatus,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header:  make(http.Header),
			Body:    io.NopCloser(strings.NewReader("injected fault")),
			Request: req,
		}, nil
	}
	return t.base.RoundTrip(req)
}
