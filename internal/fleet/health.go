package fleet

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is one member's position in the health state machine. Members start
// Alive (innocent until proven otherwise — a wrong Alive costs one cheap
// failed round trip; a wrong Dead costs availability), degrade to Suspect on
// the first consecutive probe/fetch failure, to Dead after a run of them,
// and return to Alive after ReviveAfter consecutive successes.
type State int32

const (
	// StateAlive members take fetch, replication, and sync traffic normally.
	StateAlive State = iota
	// StateSuspect members are skipped by the latency-sensitive fetch path
	// (ownership fails over to the next live ring point immediately, so a
	// freshly dead owner stops costing a timeout after its FIRST failure),
	// but background replication still tries them: a suspect is usually a
	// blip, and a failed push only costs an anti-entropy round.
	StateSuspect
	// StateDead members take no traffic at all — fetch, replication, and
	// sync all route around them — until probes succeed again.
	StateDead
)

// String renders the state the way the serenityd_peer_state metric labels it.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// States lists every health state in severity order, for metrics emission.
var States = []State{StateAlive, StateSuspect, StateDead}

// HealthOptions tune the prober and the state machine. The zero value is
// usable: every field falls back to the default documented on it.
type HealthOptions struct {
	// Interval between probe rounds, jittered ±20% per node so a fleet
	// restarted together does not synchronize its heartbeats. Default 2s.
	Interval time.Duration
	// Timeout bounds one probe attempt. Default 500ms.
	Timeout time.Duration
	// SuspectAfter is how many consecutive failures demote Alive to Suspect.
	// Default 1: the first failure already stops the fetch path from dialing,
	// which is what kills the dead-owner cold-key timeout penalty.
	SuspectAfter int
	// DeadAfter is how many consecutive failures demote to Dead. Default 3.
	DeadAfter int
	// ReviveAfter is how many consecutive successes promote a Suspect or
	// Dead member back to Alive. Default 1.
	ReviveAfter int
	// ProbePath is the endpoint probed on each member. Default PingPath (the
	// fleet server's ungated liveness ping); serenityd points it at /readyz
	// instead so a booting node pre-streaming its keys reads as not-yet-alive
	// and takes no ownership until its handoff completes.
	ProbePath string
	// HTTPClient overrides the probe transport (tests, fault injection).
	HTTPClient *http.Client
	// OnTransition, when non-nil, observes every state change. Called
	// outside the health lock; must not block for long.
	OnTransition func(peer string, from, to State)
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 500 * time.Millisecond
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 1
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3
	}
	if o.DeadAfter < o.SuspectAfter {
		o.DeadAfter = o.SuspectAfter
	}
	if o.ReviveAfter <= 0 {
		o.ReviveAfter = 1
	}
	if o.ProbePath == "" {
		o.ProbePath = PingPath
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

// HealthStats is a snapshot of the prober's counters.
type HealthStats struct {
	// Probes counts probe attempts; Failures the subset that failed (error,
	// timeout, or non-2xx). Transitions counts state changes, both
	// demotions and revivals, from probes and reported fetch outcomes alike.
	Probes      int64
	Failures    int64
	Transitions int64
}

// memberHealth is one peer's state plus the consecutive-outcome streaks that
// drive transitions.
type memberHealth struct {
	state State
	fails int
	oks   int
}

// Health tracks per-peer liveness for a fleet node: a background prober
// (periodic GET of ProbePath with jitter) plus failure/success reports fed
// in by the fetch path, driving each peer through alive → suspect → dead and
// back. The ring consults it (via Live/Reachable) so ownership of a dead
// member's keys fails over to the next live point without a restart, and a
// recovered member re-enters the moment its probes succeed.
//
// Health deliberately tracks only *other* members: a node is always alive
// from its own point of view, which is what Ring.LiveOwner relies on to
// guarantee every key always has some live owner. Safe for concurrent use.
type Health struct {
	opts HealthOptions

	mu      sync.Mutex
	members map[string]*memberHealth

	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once

	probes, failures, transitions atomic.Int64
}

// NewHealth builds the health view over peers (this node's OWN address must
// not be included). Call Start to run the background prober; ReportSuccess
// and ReportFailure work without it, which is how deterministic tests drive
// the state machine.
func NewHealth(peers []string, opts HealthOptions) *Health {
	h := &Health{opts: opts.withDefaults(), members: make(map[string]*memberHealth, len(peers))}
	h.SetMembers(peers)
	return h
}

// SetMembers replaces the tracked peer set: new peers start Alive, departed
// peers are forgotten, surviving peers keep their state and streaks. Called
// on ring membership changes (join/leave).
func (h *Health) SetMembers(peers []string) {
	keep := make(map[string]bool, len(peers))
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, p := range peers {
		keep[p] = true
		if h.members[p] == nil {
			h.members[p] = &memberHealth{state: StateAlive}
		}
	}
	for p := range h.members {
		if !keep[p] {
			delete(h.members, p)
		}
	}
}

// State returns peer's current health. Untracked peers — including this
// node's own address — read as Alive.
func (h *Health) State(peer string) State {
	h.mu.Lock()
	defer h.mu.Unlock()
	if m := h.members[peer]; m != nil {
		return m.state
	}
	return StateAlive
}

// Live reports whether peer is Alive — the latency-sensitive view the fetch
// path routes by: a merely Suspect owner is already skipped.
func (h *Health) Live(peer string) bool { return h.State(peer) == StateAlive }

// Reachable reports whether peer is not Dead — the lenient view background
// replication routes by: a Suspect peer is still worth one cheap push,
// because failing it only costs an anti-entropy round, while rerouting it
// would strand the artifact away from its owner over a blip.
func (h *Health) Reachable(peer string) bool { return h.State(peer) != StateDead }

// Snapshot returns every tracked peer's state, for /readyz and /metrics.
func (h *Health) Snapshot() map[string]State {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]State, len(h.members))
	for p, m := range h.members {
		out[p] = m.state
	}
	return out
}

// Members returns the tracked peers, sorted — deterministic metrics order.
func (h *Health) Members() []string {
	h.mu.Lock()
	out := make([]string, 0, len(h.members))
	for p := range h.members {
		out = append(out, p)
	}
	h.mu.Unlock()
	sort.Strings(out)
	return out
}

// Stats returns a snapshot of the prober counters.
func (h *Health) Stats() HealthStats {
	return HealthStats{
		Probes:      h.probes.Load(),
		Failures:    h.failures.Load(),
		Transitions: h.transitions.Load(),
	}
}

// ReportSuccess feeds a successful round trip to peer into the state
// machine. The fetch path calls this on every peer hit, so live traffic
// keeps the view fresh between probe ticks.
func (h *Health) ReportSuccess(peer string) { h.report(peer, true) }

// ReportFailure feeds a transport-level failure (timeout, refused
// connection) into the state machine. The fetch path calls this the moment
// an owner times out, so the SECOND cold key routed at a dead owner already
// skips it — the probe loop is the backstop, not the only detector.
func (h *Health) ReportFailure(peer string) { h.report(peer, false) }

func (h *Health) report(peer string, ok bool) {
	var from, to State
	changed := false
	h.mu.Lock()
	m := h.members[peer]
	if m == nil {
		h.mu.Unlock()
		return
	}
	if ok {
		m.fails = 0
		m.oks++
		if m.state != StateAlive && m.oks >= h.opts.ReviveAfter {
			from, to, changed = m.state, StateAlive, true
			m.state = StateAlive
		}
	} else {
		m.oks = 0
		m.fails++
		switch {
		case m.fails >= h.opts.DeadAfter && m.state != StateDead:
			from, to, changed = m.state, StateDead, true
			m.state = StateDead
		case m.fails >= h.opts.SuspectAfter && m.state == StateAlive:
			from, to, changed = StateAlive, StateSuspect, true
			m.state = StateSuspect
		}
	}
	h.mu.Unlock()
	if changed {
		h.transitions.Add(1)
		if h.opts.OnTransition != nil {
			h.opts.OnTransition(peer, from, to)
		}
	}
}

// Start launches the background probe loop. Stop it with Stop. Idempotent
// only in the sense that tests may never call it — ReportSuccess/Failure
// drive the machine without a prober.
func (h *Health) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	h.cancel = cancel
	h.wg.Add(1)
	go h.loop(ctx)
}

// Stop halts the prober and waits for in-flight probes. Idempotent; safe
// even if Start never ran.
func (h *Health) Stop() {
	h.once.Do(func() {
		if h.cancel != nil {
			h.cancel()
		}
		h.wg.Wait()
	})
}

func (h *Health) loop(ctx context.Context) {
	defer h.wg.Done()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		// ±20% jitter so a fleet restarted together staggers its heartbeats.
		d := h.opts.Interval + time.Duration((rng.Float64()-0.5)*0.4*float64(h.opts.Interval))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		h.probeAll(ctx)
	}
}

// probeAll probes every tracked peer concurrently and reports the outcomes.
// Exported indirectly through Start; deterministic tests call probeOne via
// the report API instead.
func (h *Health) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, peer := range h.Members() {
		wg.Add(1)
		go func(p string) {
			defer wg.Done()
			h.report(p, h.probeOne(ctx, p))
		}(peer)
	}
	wg.Wait()
}

// probeOne performs one GET probe under the per-probe timeout; any transport
// error or non-2xx answer counts as a failure (a 503 /readyz is a node that
// exists but must not take ownership yet — exactly what Suspect means).
func (h *Health) probeOne(ctx context.Context, peer string) bool {
	h.probes.Add(1)
	callCtx, cancel := context.WithTimeout(ctx, h.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(callCtx, http.MethodGet, peer+h.opts.ProbePath, nil)
	if err != nil {
		h.failures.Add(1)
		return false
	}
	resp, err := h.opts.HTTPClient.Do(req)
	if err != nil {
		h.failures.Add(1)
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		h.failures.Add(1)
		return false
	}
	return true
}
