package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/store"
)

// testStore adapts internal/store to the fleet Store interface the way the
// serenityd side does: first-writer-wins puts, skip-existing imports. No
// payload validation — these tests move opaque bytes.
type testStore struct{ s *store.Store }

func (t testStore) GetArtifact(key string) ([]byte, bool) { return t.s.Get(key) }

func (t testStore) PutArtifact(key string, payload []byte) bool {
	if t.s.Has(key) {
		return false
	}
	return t.s.Put(key, payload) == nil
}

func (t testStore) KeyHashes() []uint64 { return t.s.KeyHashes() }

func (t testStore) ExportSubset(w io.Writer, want map[uint64]bool) (int, error) {
	n := 0
	err := t.s.ExportFiltered(w, func(key string) bool {
		if want[store.KeyHash(key)] {
			n++
			return true
		}
		return false
	})
	return n, err
}

func (t testStore) ImportMissing(r io.Reader) (int, error) {
	added, _, err := t.s.ImportFiltered(r, func(key string, payload []byte) bool {
		return !t.s.Has(key)
	})
	return added, err
}

// node is one in-process fleet member: a store, a mux, and a live listener.
type node struct {
	st  testStore
	mux *http.ServeMux
	srv *httptest.Server
	// requests counts every peer request that reached this node.
	requests atomic.Int64
}

func newNode(t *testing.T) *node {
	t.Helper()
	s, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	n := &node{st: testStore{s: s}, mux: http.NewServeMux()}
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.requests.Add(1)
		n.mux.ServeHTTP(w, r)
	}))
	t.Cleanup(n.srv.Close)
	return n
}

// buildFleet starts n nodes and wires each one's ring + peer server; the
// rings are built after every listener is up so the member URLs are real.
func buildFleet(t *testing.T, count int, gate Gate) ([]*node, []*Ring) {
	t.Helper()
	nodes := make([]*node, count)
	members := make([]string, count)
	for i := range nodes {
		nodes[i] = newNode(t)
		members[i] = nodes[i].srv.URL
	}
	rings := make([]*Ring, count)
	for i, n := range nodes {
		r, err := NewRing(members[i], members, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
		NewServer(n.st, r, gate).Register(n.mux)
	}
	return nodes, rings
}

// keyOwnedBy finds a memo-shaped key (pipes, equals signs — the characters
// that must survive URL escaping) owned by the member at ownerIdx.
func keyOwnedBy(t *testing.T, r *Ring, owner string, salt int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("%064x|exact|a=true|t=%d|s=0", i*2654435761+salt, i)
		if r.Owner(key) == owner {
			return key
		}
	}
	t.Fatal("could not synthesize a key for the target owner")
	return ""
}

func TestClientFetchFromOwner(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	payload := []byte("artifact-bytes-\x00\x01")
	if err := b.st.s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	c := NewClient(rings[0], ClientOptions{})
	defer c.Close()
	got, ok := c.Fetch(context.Background(), key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch from owner: ok=%v payload=%q", ok, got)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats after hit: %+v", st)
	}
	// Fetching a key this node owns itself must short-circuit: no peer is
	// authoritative for it, so there is nobody worth asking.
	selfKey := keyOwnedBy(t, rings[0], a.srv.URL, 7)
	if _, ok := c.Fetch(context.Background(), selfKey); ok {
		t.Fatal("Fetch answered a self-owned key")
	}
}

func TestClientNegativeCacheAbsorbsRepeatMisses(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	c := NewClient(rings[0], ClientOptions{NegativeTTL: time.Minute})
	defer c.Close()
	if _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch found a record nobody stored")
	}
	before := b.requests.Load()
	for i := 0; i < 10; i++ {
		if _, ok := c.Fetch(context.Background(), key); ok {
			t.Fatal("negative-cached key turned into a hit")
		}
	}
	if b.requests.Load() != before {
		t.Errorf("repeat misses dialed the owner %d more times; the negative cache should absorb them",
			b.requests.Load()-before)
	}
	if st := c.Stats(); st.Misses != 11 {
		t.Errorf("misses = %d, want 11", st.Misses)
	}
}

func TestClientBreakerSkipsDeadPeer(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	b.srv.Close() // the owner is dead before the first fetch
	c := NewClient(rings[0], ClientOptions{Timeout: 100 * time.Millisecond, BreakerBackoff: time.Minute})
	defer c.Close()
	if _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch succeeded against a dead peer")
	}
	afterFirst := c.Stats()
	if afterFirst.Timeouts == 0 {
		t.Fatalf("dead peer produced no transport failures: %+v", afterFirst)
	}
	// A different key with the same dead owner must now miss instantly via
	// the breaker — no further dial attempts.
	key2 := keyOwnedBy(t, rings[0], b.srv.URL, 99)
	start := time.Now()
	if _, ok := c.Fetch(context.Background(), key2); ok {
		t.Fatal("Fetch succeeded against a dead peer")
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("breaker-window fetch took %v; it should not dial at all", elapsed)
	}
	if st := c.Stats(); st.Timeouts != afterFirst.Timeouts {
		t.Errorf("breaker window still dialed the dead peer: %+v", st)
	}
}

func TestClientReplicatesToOwner(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	payload := []byte("fresh-local-compute")
	c := NewClient(rings[0], ClientOptions{})
	defer c.Close()
	c.Replicate(context.Background(), key, payload)
	c.Drain()
	got, ok := b.st.GetArtifact(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("owner never received the replica: ok=%v payload=%q", ok, got)
	}
	// First-writer-wins: a second replica with different bytes must not
	// clobber the established record.
	c.Replicate(context.Background(), key, []byte("a-different-twin"))
	c.Drain()
	got, _ = b.st.GetArtifact(key)
	if !bytes.Equal(got, payload) {
		t.Fatalf("replication clobbered an established record: %q", got)
	}
	if st := c.Stats(); st.Replicated != 2 {
		t.Errorf("Replicated = %d, want 2 (second push accepted as an idempotent no-op)", st.Replicated)
	}
}

func TestGateShedsPeerTraffic(t *testing.T) {
	denied := Gate(func() (func(), bool) { return nil, false })
	nodes, rings := buildFleet(t, 2, denied)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	if err := b.st.s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c := NewClient(rings[0], ClientOptions{})
	defer c.Close()
	// The record exists, but the gate sheds the request: the client must
	// treat 429 as a miss, not an error and not a breaker trip.
	if _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch got through a closed gate")
	}
	if st := c.Stats(); st.Misses != 1 || st.Timeouts != 0 {
		t.Errorf("shed fetch should be a clean miss: %+v", st)
	}
}

func TestSyncerConvergesInCappedBatches(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	const records = 10
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x|greedy", i)
		if err := a.st.s.Put(keys[i], bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// B already holds one of the keys with different bytes; sync must leave
	// it alone (first-writer-wins) and pull only what is missing.
	if err := b.st.s.Put(keys[3], []byte("established")); err != nil {
		t.Fatal(err)
	}
	sy := NewSyncer(b.st, rings[1], SyncerOptions{Batch: 4})
	total := 0
	for round := 0; round < 10 && total < records-1; round++ {
		n, err := sy.SyncOnce(context.Background(), a.srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if n > 4 {
			t.Fatalf("round pulled %d records; batch cap is 4", n)
		}
		total += n
	}
	if total != records-1 {
		t.Fatalf("sync pulled %d records, want %d", total, records-1)
	}
	for i, key := range keys {
		got, ok := b.st.GetArtifact(key)
		if !ok {
			t.Fatalf("key %q never converged", key)
		}
		if i == 3 {
			if !bytes.Equal(got, []byte("established")) {
				t.Fatalf("sync clobbered an established record: %q", got)
			}
		} else if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 16)) {
			t.Fatalf("key %q converged with wrong bytes", key)
		}
	}
	// A fully converged pair must settle to no-op rounds.
	if n, err := sy.SyncOnce(context.Background(), a.srv.URL); err != nil || n != 0 {
		t.Fatalf("converged sync round moved %d records (err=%v)", n, err)
	}
	if st := sy.Stats(); st.Pulled != int64(records-1) {
		t.Errorf("syncer stats pulled=%d, want %d", st.Pulled, records-1)
	}
}

func TestSyncerBackgroundLoopConverges(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	for i := 0; i < 5; i++ {
		if err := a.st.s.Put(fmt.Sprintf("bg-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sy := NewSyncer(b.st, rings[1], SyncerOptions{Interval: 10 * time.Millisecond})
	sy.Start()
	defer sy.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.st.KeyHashes()) == 5 {
			sy.Stop()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background sync never converged; B holds %d records", len(b.st.KeyHashes()))
}

func TestSyncerSurvivesDeadPeer(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a := nodes[0]
	a.srv.Close()
	sy := NewSyncer(nodes[1].st, rings[1], SyncerOptions{Timeout: 100 * time.Millisecond})
	if _, err := sy.SyncOnce(context.Background(), a.srv.URL); err == nil {
		t.Fatal("sync against a dead peer must report the error (the loop counts and moves on)")
	}
}

// keyWithFailover finds a memo-shaped key whose static owner is primary AND
// whose first failover candidate is second — so a test can pin exactly where
// a key lands when its owner dies.
func keyWithFailover(t *testing.T, r *Ring, primary, second string, salt int) string {
	t.Helper()
	n := len(r.Members())
	for i := 0; i < 100000; i++ {
		key := fmt.Sprintf("%064x|exact|a=true|t=%d|s=1", i*2654435761+salt, i)
		if order := r.Owners(key, n); order[0] == primary && order[1] == second {
			return key
		}
	}
	t.Fatal("could not synthesize a key with the target failover order")
	return ""
}

// TestClientFailoverSkipsSuspectOwner is the dead-owner cold-key regression
// test: once the health view marks a key's owner Suspect, a fetch for a key
// it owns goes STRAIGHT to the failover owner — zero dials at the primary,
// zero added latency, no timeout burned.
func TestClientFailoverSkipsSuspectOwner(t *testing.T) {
	nodes, rings := buildFleet(t, 3, nil)
	b, cNode := nodes[1], nodes[2]
	key := keyWithFailover(t, rings[0], b.srv.URL, cNode.srv.URL, 0)
	payload := []byte("failover-served-bytes")
	if err := cNode.st.s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	h := NewHealth(rings[0].Peers(), HealthOptions{})
	h.ReportFailure(b.srv.URL) // one failed probe: b is Suspect
	c := NewClient(rings[0], ClientOptions{Health: h, Timeout: 150 * time.Millisecond})
	defer c.Close()

	before := b.requests.Load()
	start := time.Now()
	got, ok := c.Fetch(context.Background(), key)
	elapsed := time.Since(start)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("failover fetch: ok=%v payload=%q", ok, got)
	}
	if b.requests.Load() != before {
		t.Fatalf("fetch dialed the suspect owner %d times; it must skip straight to the failover",
			b.requests.Load()-before)
	}
	if elapsed > 100*time.Millisecond {
		t.Errorf("failover fetch took %v; skipping a suspect must cost no timeout", elapsed)
	}
	if st := c.Stats(); st.Failovers != 1 || st.Hits != 1 {
		t.Errorf("stats after failover hit: %+v", st)
	}
}

// TestClientFetchOutcomeFeedsHealth: the first timeout against a dead owner
// demotes it via the fetch path itself (no prober running), so the SECOND
// cold key routed at it already fails over instantly.
func TestClientFetchOutcomeFeedsHealth(t *testing.T) {
	nodes, rings := buildFleet(t, 3, nil)
	b, cNode := nodes[1], nodes[2]
	key1 := keyWithFailover(t, rings[0], b.srv.URL, cNode.srv.URL, 0)
	key2 := keyWithFailover(t, rings[0], b.srv.URL, cNode.srv.URL, 99)
	payload := []byte("on-the-failover")
	if err := cNode.st.s.Put(key2, payload); err != nil {
		t.Fatal(err)
	}
	b.srv.Close() // kill -9, from the wire's point of view

	h := NewHealth(rings[0].Peers(), HealthOptions{})
	c := NewClient(rings[0], ClientOptions{Health: h, Timeout: 100 * time.Millisecond})
	defer c.Close()

	// First fetch pays the discovery cost: the dial fails, the detector hears
	// about it, b goes Suspect.
	if _, ok := c.Fetch(context.Background(), key1); ok {
		t.Fatal("fetch succeeded against a closed listener")
	}
	if got := h.State(b.srv.URL); got != StateSuspect && got != StateDead {
		t.Fatalf("fetch failure never reached the detector: b is %v", got)
	}
	// Second fetch must route around b without dialing it at all.
	start := time.Now()
	got, ok := c.Fetch(context.Background(), key2)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("second fetch did not fail over: ok=%v payload=%q", ok, got)
	}
	if elapsed := time.Since(start); elapsed > 80*time.Millisecond {
		t.Errorf("second fetch took %v; the dead owner should cost exactly one discovery", elapsed)
	}
}

// TestClientReplicationReroutesAroundDeadOwner: write-behind pushes for a
// Dead owner's keys land on the failover owner (who is actually serving
// them); a merely Suspect owner still gets its push.
func TestClientReplicationReroutesAroundDeadOwner(t *testing.T) {
	nodes, rings := buildFleet(t, 3, nil)
	b, cNode := nodes[1], nodes[2]
	h := NewHealth(rings[0].Peers(), HealthOptions{})
	c := NewClient(rings[0], ClientOptions{Health: h})
	defer c.Close()

	// Suspect: the push still goes to the static owner.
	keySuspect := keyWithFailover(t, rings[0], b.srv.URL, cNode.srv.URL, 0)
	h.ReportFailure(b.srv.URL)
	c.Replicate(context.Background(), keySuspect, []byte("pushed-despite-blip"))
	c.Drain()
	if _, ok := b.st.GetArtifact(keySuspect); !ok {
		t.Fatal("suspect owner lost its replica; only Dead reroutes replication")
	}
	// Dead: the push reroutes to the failover owner.
	keyDead := keyWithFailover(t, rings[0], b.srv.URL, cNode.srv.URL, 777)
	h.ReportFailure(b.srv.URL)
	h.ReportFailure(b.srv.URL) // three consecutive: Dead
	c.Replicate(context.Background(), keyDead, []byte("rerouted"))
	c.Drain()
	if _, ok := cNode.st.GetArtifact(keyDead); !ok {
		t.Fatal("dead owner's replica never rerouted to the failover owner")
	}
	if _, ok := b.st.GetArtifact(keyDead); ok {
		t.Fatal("replica was pushed to the dead owner anyway")
	}
}

// TestClientUpdateRing: a joining member starts receiving its keys' fetches
// without the client restarting.
func TestClientUpdateRing(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a := nodes[0]
	// A third node joins after the client exists.
	d := newNode(t)
	grown := append([]string{d.srv.URL}, rings[0].Members()...)
	ringA, err := NewRing(a.srv.URL, grown, 0)
	if err != nil {
		t.Fatal(err)
	}
	ringD, err := NewRing(d.srv.URL, grown, 0)
	if err != nil {
		t.Fatal(err)
	}
	NewServer(d.st, ringD, nil).Register(d.mux)

	c := NewClient(rings[0], ClientOptions{})
	defer c.Close()
	c.UpdateRing(ringA)
	key := keyOwnedBy(t, ringA, d.srv.URL, 3)
	payload := []byte("served-by-the-joiner")
	if err := d.st.s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Fetch(context.Background(), key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("post-join fetch: ok=%v payload=%q", ok, got)
	}
	if c.Ring() != ringA {
		t.Fatal("Ring() does not reflect the swap")
	}
}

// TestSyncerConvergePreStreamsEverything: the join handoff primitive pulls
// the full corpus from every live peer in passes until a pass adds nothing.
func TestSyncerConvergePreStreams(t *testing.T) {
	nodes, rings := buildFleet(t, 3, nil)
	a, b, cNode := nodes[0], nodes[1], nodes[2]
	for i := 0; i < 7; i++ {
		if err := a.st.s.Put(fmt.Sprintf("from-a-%d", i), []byte{1, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := b.st.s.Put(fmt.Sprintf("from-b-%d", i), []byte{2, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var rounds atomic.Int64
	sy := NewSyncer(cNode.st, rings[2], SyncerOptions{
		Batch:   3, // force multiple passes
		OnRound: func(string, int, error) { rounds.Add(1) },
	})
	total, err := sy.Converge(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if total != 12 {
		t.Fatalf("Converge imported %d records, want 12", total)
	}
	if len(cNode.st.KeyHashes()) != 12 {
		t.Fatalf("joiner holds %d records after handoff, want 12", len(cNode.st.KeyHashes()))
	}
	if rounds.Load() == 0 {
		t.Error("OnRound hook never fired")
	}
	// Converged: another Converge is a no-op single pass.
	if n, err := sy.Converge(context.Background()); err != nil || n != 0 {
		t.Fatalf("second Converge moved %d records (err=%v)", n, err)
	}
}

// TestSyncerConvergeSkipsDeadPeers: with a health view, Converge pulls from
// live peers only and still terminates despite a dead one.
func TestSyncerConvergeSkipsDeadPeers(t *testing.T) {
	nodes, rings := buildFleet(t, 3, nil)
	a, b, cNode := nodes[0], nodes[1], nodes[2]
	if err := a.st.s.Put("survivor-key", []byte("x")); err != nil {
		t.Fatal(err)
	}
	b.srv.Close()
	h := NewHealth(rings[2].Peers(), HealthOptions{})
	h.ReportFailure(b.srv.URL)
	h.ReportFailure(b.srv.URL)
	h.ReportFailure(b.srv.URL) // dead
	sy := NewSyncer(cNode.st, rings[2], SyncerOptions{Health: h, Timeout: 200 * time.Millisecond})
	start := time.Now()
	total, err := sy.Converge(context.Background())
	if err != nil {
		t.Fatalf("Converge over a part-dead fleet errored: %v", err)
	}
	if total != 1 {
		t.Fatalf("Converge imported %d records, want 1", total)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Converge burned %v dialing a dead peer it knew about", elapsed)
	}
}

func TestDigestRoundTripAndAlienRejection(t *testing.T) {
	hashes := []uint64{0, 1, ^uint64(0), 0xdeadbeefcafef00d}
	var buf bytes.Buffer
	if err := writeDigest(&buf, hashes); err != nil {
		t.Fatal(err)
	}
	got, err := readDigest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(hashes) {
		t.Fatalf("digest round trip: %v != %v", got, hashes)
	}
	for _, alien := range [][]byte{nil, []byte("x"), []byte("NOPE\x00\x00\x00\x00"), append([]byte("SDG1"), 0xFF, 0xFF, 0xFF, 0xFF)} {
		if _, err := readDigest(bytes.NewReader(alien)); err == nil {
			t.Errorf("alien digest %q was accepted", alien)
		}
	}
}
