package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/serenity-ml/serenity/internal/store"
)

// testStore adapts internal/store to the fleet Store interface the way the
// serenityd side does: first-writer-wins puts, skip-existing imports. No
// payload validation — these tests move opaque bytes.
type testStore struct{ s *store.Store }

func (t testStore) GetArtifact(key string) ([]byte, bool) { return t.s.Get(key) }

func (t testStore) PutArtifact(key string, payload []byte) bool {
	if t.s.Has(key) {
		return false
	}
	return t.s.Put(key, payload) == nil
}

func (t testStore) KeyHashes() []uint64 { return t.s.KeyHashes() }

func (t testStore) ExportSubset(w io.Writer, want map[uint64]bool) (int, error) {
	n := 0
	err := t.s.ExportFiltered(w, func(key string) bool {
		if want[store.KeyHash(key)] {
			n++
			return true
		}
		return false
	})
	return n, err
}

func (t testStore) ImportMissing(r io.Reader) (int, error) {
	added, _, err := t.s.ImportFiltered(r, func(key string, payload []byte) bool {
		return !t.s.Has(key)
	})
	return added, err
}

// node is one in-process fleet member: a store, a mux, and a live listener.
type node struct {
	st  testStore
	mux *http.ServeMux
	srv *httptest.Server
	// requests counts every peer request that reached this node.
	requests atomic.Int64
}

func newNode(t *testing.T) *node {
	t.Helper()
	s, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	n := &node{st: testStore{s: s}, mux: http.NewServeMux()}
	n.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n.requests.Add(1)
		n.mux.ServeHTTP(w, r)
	}))
	t.Cleanup(n.srv.Close)
	return n
}

// buildFleet starts n nodes and wires each one's ring + peer server; the
// rings are built after every listener is up so the member URLs are real.
func buildFleet(t *testing.T, count int, gate Gate) ([]*node, []*Ring) {
	t.Helper()
	nodes := make([]*node, count)
	members := make([]string, count)
	for i := range nodes {
		nodes[i] = newNode(t)
		members[i] = nodes[i].srv.URL
	}
	rings := make([]*Ring, count)
	for i, n := range nodes {
		r, err := NewRing(members[i], members, 0)
		if err != nil {
			t.Fatal(err)
		}
		rings[i] = r
		NewServer(n.st, r, gate).Register(n.mux)
	}
	return nodes, rings
}

// keyOwnedBy finds a memo-shaped key (pipes, equals signs — the characters
// that must survive URL escaping) owned by the member at ownerIdx.
func keyOwnedBy(t *testing.T, r *Ring, owner string, salt int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("%064x|exact|a=true|t=%d|s=0", i*2654435761+salt, i)
		if r.Owner(key) == owner {
			return key
		}
	}
	t.Fatal("could not synthesize a key for the target owner")
	return ""
}

func TestClientFetchFromOwner(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	payload := []byte("artifact-bytes-\x00\x01")
	if err := b.st.s.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	c := NewClient(rings[0], ClientOptions{})
	defer c.Close()
	got, ok := c.Fetch(context.Background(), key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch from owner: ok=%v payload=%q", ok, got)
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats after hit: %+v", st)
	}
	// Fetching a key this node owns itself must short-circuit: no peer is
	// authoritative for it, so there is nobody worth asking.
	selfKey := keyOwnedBy(t, rings[0], a.srv.URL, 7)
	if _, ok := c.Fetch(context.Background(), selfKey); ok {
		t.Fatal("Fetch answered a self-owned key")
	}
}

func TestClientNegativeCacheAbsorbsRepeatMisses(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	c := NewClient(rings[0], ClientOptions{NegativeTTL: time.Minute})
	defer c.Close()
	if _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch found a record nobody stored")
	}
	before := b.requests.Load()
	for i := 0; i < 10; i++ {
		if _, ok := c.Fetch(context.Background(), key); ok {
			t.Fatal("negative-cached key turned into a hit")
		}
	}
	if b.requests.Load() != before {
		t.Errorf("repeat misses dialed the owner %d more times; the negative cache should absorb them",
			b.requests.Load()-before)
	}
	if st := c.Stats(); st.Misses != 11 {
		t.Errorf("misses = %d, want 11", st.Misses)
	}
}

func TestClientBreakerSkipsDeadPeer(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	b.srv.Close() // the owner is dead before the first fetch
	c := NewClient(rings[0], ClientOptions{Timeout: 100 * time.Millisecond, BreakerBackoff: time.Minute})
	defer c.Close()
	if _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch succeeded against a dead peer")
	}
	afterFirst := c.Stats()
	if afterFirst.Timeouts == 0 {
		t.Fatalf("dead peer produced no transport failures: %+v", afterFirst)
	}
	// A different key with the same dead owner must now miss instantly via
	// the breaker — no further dial attempts.
	key2 := keyOwnedBy(t, rings[0], b.srv.URL, 99)
	start := time.Now()
	if _, ok := c.Fetch(context.Background(), key2); ok {
		t.Fatal("Fetch succeeded against a dead peer")
	}
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Errorf("breaker-window fetch took %v; it should not dial at all", elapsed)
	}
	if st := c.Stats(); st.Timeouts != afterFirst.Timeouts {
		t.Errorf("breaker window still dialed the dead peer: %+v", st)
	}
}

func TestClientReplicatesToOwner(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	payload := []byte("fresh-local-compute")
	c := NewClient(rings[0], ClientOptions{})
	defer c.Close()
	c.Replicate(key, payload)
	c.Drain()
	got, ok := b.st.GetArtifact(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("owner never received the replica: ok=%v payload=%q", ok, got)
	}
	// First-writer-wins: a second replica with different bytes must not
	// clobber the established record.
	c.Replicate(key, []byte("a-different-twin"))
	c.Drain()
	got, _ = b.st.GetArtifact(key)
	if !bytes.Equal(got, payload) {
		t.Fatalf("replication clobbered an established record: %q", got)
	}
	if st := c.Stats(); st.Replicated != 2 {
		t.Errorf("Replicated = %d, want 2 (second push accepted as an idempotent no-op)", st.Replicated)
	}
}

func TestGateShedsPeerTraffic(t *testing.T) {
	denied := Gate(func() (func(), bool) { return nil, false })
	nodes, rings := buildFleet(t, 2, denied)
	b := nodes[1]
	key := keyOwnedBy(t, rings[0], b.srv.URL, 0)
	if err := b.st.s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	c := NewClient(rings[0], ClientOptions{})
	defer c.Close()
	// The record exists, but the gate sheds the request: the client must
	// treat 429 as a miss, not an error and not a breaker trip.
	if _, ok := c.Fetch(context.Background(), key); ok {
		t.Fatal("Fetch got through a closed gate")
	}
	if st := c.Stats(); st.Misses != 1 || st.Timeouts != 0 {
		t.Errorf("shed fetch should be a clean miss: %+v", st)
	}
}

func TestSyncerConvergesInCappedBatches(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	const records = 10
	keys := make([]string, records)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x|greedy", i)
		if err := a.st.s.Put(keys[i], bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	// B already holds one of the keys with different bytes; sync must leave
	// it alone (first-writer-wins) and pull only what is missing.
	if err := b.st.s.Put(keys[3], []byte("established")); err != nil {
		t.Fatal(err)
	}
	sy := NewSyncer(b.st, rings[1], SyncerOptions{Batch: 4})
	total := 0
	for round := 0; round < 10 && total < records-1; round++ {
		n, err := sy.SyncOnce(context.Background(), a.srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		if n > 4 {
			t.Fatalf("round pulled %d records; batch cap is 4", n)
		}
		total += n
	}
	if total != records-1 {
		t.Fatalf("sync pulled %d records, want %d", total, records-1)
	}
	for i, key := range keys {
		got, ok := b.st.GetArtifact(key)
		if !ok {
			t.Fatalf("key %q never converged", key)
		}
		if i == 3 {
			if !bytes.Equal(got, []byte("established")) {
				t.Fatalf("sync clobbered an established record: %q", got)
			}
		} else if !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 16)) {
			t.Fatalf("key %q converged with wrong bytes", key)
		}
	}
	// A fully converged pair must settle to no-op rounds.
	if n, err := sy.SyncOnce(context.Background(), a.srv.URL); err != nil || n != 0 {
		t.Fatalf("converged sync round moved %d records (err=%v)", n, err)
	}
	if st := sy.Stats(); st.Pulled != int64(records-1) {
		t.Errorf("syncer stats pulled=%d, want %d", st.Pulled, records-1)
	}
}

func TestSyncerBackgroundLoopConverges(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a, b := nodes[0], nodes[1]
	for i := 0; i < 5; i++ {
		if err := a.st.s.Put(fmt.Sprintf("bg-%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sy := NewSyncer(b.st, rings[1], SyncerOptions{Interval: 10 * time.Millisecond})
	sy.Start()
	defer sy.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(b.st.KeyHashes()) == 5 {
			sy.Stop()
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("background sync never converged; B holds %d records", len(b.st.KeyHashes()))
}

func TestSyncerSurvivesDeadPeer(t *testing.T) {
	nodes, rings := buildFleet(t, 2, nil)
	a := nodes[0]
	a.srv.Close()
	sy := NewSyncer(nodes[1].st, rings[1], SyncerOptions{Timeout: 100 * time.Millisecond})
	if _, err := sy.SyncOnce(context.Background(), a.srv.URL); err == nil {
		t.Fatal("sync against a dead peer must report the error (the loop counts and moves on)")
	}
}

func TestDigestRoundTripAndAlienRejection(t *testing.T) {
	hashes := []uint64{0, 1, ^uint64(0), 0xdeadbeefcafef00d}
	var buf bytes.Buffer
	if err := writeDigest(&buf, hashes); err != nil {
		t.Fatal(err)
	}
	got, err := readDigest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(hashes) {
		t.Fatalf("digest round trip: %v != %v", got, hashes)
	}
	for _, alien := range [][]byte{nil, []byte("x"), []byte("NOPE\x00\x00\x00\x00"), append([]byte("SDG1"), 0xFF, 0xFF, 0xFF, 0xFF)} {
		if _, err := readDigest(bytes.NewReader(alien)); err == nil {
			t.Errorf("alien digest %q was accepted", alien)
		}
	}
}
