// Package fleet implements the distributed compile tier: a static cluster of
// serenityd instances that share one global corpus of per-segment schedule
// artifacts, so each distinct segment fingerprint pays its memory-aware DP
// once — fleet-wide, not once per process.
//
// Three pieces compose the tier:
//
//   - Ring: a consistent-hash ring (virtual nodes, rendezvous tiebreak) that
//     assigns every content-addressed segment key exactly one authoritative
//     owner. Ownership bounds the compile path to at most one peer round trip
//     per miss: a node asks the owner, and only the owner.
//   - Client: the bounded-concurrency HTTP fetch path a compile miss takes
//     before falling back to running the DP, plus write-behind replication of
//     locally computed non-owned keys to their owners. Budgeted aggressively:
//     short timeout, single retry, negative-result cache, and a per-peer
//     breaker, so a slow or dead peer costs a small bounded latency — never
//     more than a fraction of the DP it was trying to avoid — and degrades to
//     local compute, never to an error.
//   - Server + Syncer: the peer-facing HTTP surface (artifact get/put, key
//     digest, sync pull) and the pull-based anti-entropy loop built on the
//     store's digest/filtered-export primitives. The ring bounds who a
//     compile miss asks; anti-entropy spreads the corpus in the background so
//     a rebooted or newly joined node converges a capped batch per round
//     instead of thundering onto one peer.
//
// Everything here degrades gracefully by construction: every fleet failure
// mode (dead peer, slow peer, corrupt artifact, alien stream) converts into
// "compute locally", which is exactly what a fleetless serenityd would do.
package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the per-member virtual node count: enough points
// that a three-node ring splits the keyspace within a few percent of evenly,
// small enough that building a ring stays microseconds.
const DefaultVirtualNodes = 64

// hash64 is the ring's placement hash (FNV-1a with a splitmix64 finalizer).
// It must be identical on every member — ownership is only consistent if all
// nodes compute the same ring — so it is deliberately dependency-free.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ringPoint is one virtual node on the ring.
type ringPoint struct {
	hash   uint64
	member int // index into members
}

// Ring is an immutable consistent-hash ring over a static member set. Each
// member contributes vnodes points; a key is owned by the member whose point
// is the first at or clockwise of the key's hash. Two members landing on the
// same point (a 64-bit coincidence, but fleets must not silently disagree on
// ownership) are broken by rendezvous hashing — highest hash(member, key)
// wins — which every node computes identically.
//
// Members are addresses as peers dial them (e.g. "http://10.0.0.5:7433");
// the set is sorted and deduplicated, so every node that is given the same
// membership builds the same ring regardless of flag order.
type Ring struct {
	self    string
	selfIdx int
	members []string
	points  []ringPoint
}

// NewRing builds a ring over members (which must include self). vnodes <= 0
// selects DefaultVirtualNodes.
func NewRing(self string, members []string, vnodes int) (*Ring, error) {
	if self == "" {
		return nil, fmt.Errorf("fleet: ring needs a self address")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	uniq := make(map[string]bool, len(members)+1)
	all := make([]string, 0, len(members)+1)
	for _, m := range append(append([]string(nil), members...), self) {
		m = strings.TrimSuffix(strings.TrimSpace(m), "/")
		if m == "" || uniq[m] {
			continue
		}
		uniq[m] = true
		all = append(all, m)
	}
	sort.Strings(all)
	self = strings.TrimSuffix(strings.TrimSpace(self), "/")
	r := &Ring{self: self, selfIdx: -1, members: all}
	for i, m := range all {
		if m == self {
			r.selfIdx = i
		}
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m, v)), member: i})
		}
	}
	if r.selfIdx < 0 {
		return nil, fmt.Errorf("fleet: self %q did not survive membership normalization", self)
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r, nil
}

// Self returns this node's normalized member address.
func (r *Ring) Self() string { return r.self }

// Members returns every member address, sorted.
func (r *Ring) Members() []string { return append([]string(nil), r.members...) }

// Peers returns every member except self, sorted.
func (r *Ring) Peers() []string {
	out := make([]string, 0, len(r.members)-1)
	for i, m := range r.members {
		if i != r.selfIdx {
			out = append(out, m)
		}
	}
	return out
}

// ownerIdx locates key's owner: the first ring point at or clockwise of the
// key's hash, with coincident points broken by rendezvous hashing so every
// member resolves the tie the same way.
func (r *Ring) ownerIdx(key string) int {
	h := hash64(key)
	n := len(r.points)
	i := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	if i == n {
		i = 0 // wrap past the highest point to the lowest
	}
	best := r.points[i].member
	// Collect every point sharing the chosen hash value and rendezvous-break.
	if j := i + 1; j < n && r.points[j].hash == r.points[i].hash {
		bestScore := hash64(fmt.Sprintf("%s\x00%s", r.members[best], key))
		for ; j < n && r.points[j].hash == r.points[i].hash; j++ {
			cand := r.points[j].member
			if cand == best {
				continue
			}
			if score := hash64(fmt.Sprintf("%s\x00%s", r.members[cand], key)); score > bestScore {
				best, bestScore = cand, score
			}
		}
	}
	return best
}

// Owner returns the member address that authoritatively owns key.
func (r *Ring) Owner(key string) string { return r.members[r.ownerIdx(key)] }

// Owners returns up to max distinct members in key's failover order: the
// authoritative owner first, then each further distinct member encountered
// walking the ring clockwise. Every node with the same membership computes
// the identical sequence, which is what makes health-driven failover
// coordination-free: when the primary is down, everyone independently agrees
// on the same next-in-line owner.
func (r *Ring) Owners(key string, max int) []string {
	if max <= 0 || len(r.members) == 0 {
		return nil
	}
	if max > len(r.members) {
		max = len(r.members)
	}
	primary := r.ownerIdx(key)
	out := []string{r.members[primary]}
	seen := map[int]bool{primary: true}
	h := hash64(key)
	n := len(r.points)
	start := sort.Search(n, func(i int) bool { return r.points[i].hash >= h })
	for scanned := 0; scanned < n && len(out) < max; scanned++ {
		p := r.points[(start+scanned)%n]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// LiveOwner returns the first member in key's failover order that live
// reports healthy; this node itself always counts as live (a node never
// routes around itself), so every key always has some live owner even when
// the rest of the fleet is down. A nil live degrades to the static Owner.
func (r *Ring) LiveOwner(key string, live func(string) bool) string {
	if live == nil {
		return r.Owner(key)
	}
	owners := r.Owners(key, len(r.members))
	for _, m := range owners {
		if m == r.self || live(m) {
			return m
		}
	}
	// Unreachable when self is a member, but never return "" regardless.
	return owners[0]
}

// Owns reports whether this node is key's authoritative owner. A single-node
// ring owns everything, which disables the peer fetch path by construction.
func (r *Ring) Owns(key string) bool { return r.ownerIdx(key) == r.selfIdx }

// OwnedShare estimates the fraction of the keyspace this node owns by probing
// samples evenly spread synthetic keys — the ring-ownership gauge serenityd
// exports so an operator can see a misbalanced or misconfigured ring.
func (r *Ring) OwnedShare(samples int) float64 {
	if samples <= 0 {
		samples = 1024
	}
	owned := 0
	for i := 0; i < samples; i++ {
		if r.Owns(fmt.Sprintf("ring-share-probe-%d", i)) {
			owned++
		}
	}
	return float64(owned) / float64(samples)
}
