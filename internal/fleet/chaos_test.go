package fleet

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"testing"
	"time"
)

// chaosNode is one fully wired fleet member for the chaos harness: every
// outbound HTTP path (fetch, replication, probes, sync) rides the node's
// FaultTransport, so killing, partitioning, and healing it is a rule edit.
type chaosNode struct {
	n    *node
	ring *Ring
	ft   *FaultTransport
	h    *Health
	c    *Client
	sy   *Syncer
}

// buildChaosFleet wires count members with fault transports and health
// probers. Probers start only after EVERY node's handlers are mounted — a
// probe that lands before Register would 404, and a fleet that boots into
// false suspects tests nothing but the boot race.
func buildChaosFleet(t *testing.T, count int, seed int64) []*chaosNode {
	t.Helper()
	nodes := make([]*node, count)
	members := make([]string, count)
	for i := range nodes {
		nodes[i] = newNode(t)
		members[i] = nodes[i].srv.URL
	}
	fleet := make([]*chaosNode, count)
	for i, n := range nodes {
		r, err := NewRing(members[i], members, 0)
		if err != nil {
			t.Fatal(err)
		}
		NewServer(n.st, r, nil).Register(n.mux)
		ft := NewFaultTransport(nil, seed*1000+int64(i))
		hc := &http.Client{Transport: ft}
		h := NewHealth(r.Peers(), HealthOptions{
			Interval:   10 * time.Millisecond,
			Timeout:    200 * time.Millisecond,
			DeadAfter:  2,
			HTTPClient: hc,
		})
		fleet[i] = &chaosNode{
			n: n, ring: r, ft: ft, h: h,
			c: NewClient(r, ClientOptions{
				Timeout:        150 * time.Millisecond,
				BreakerBackoff: 50 * time.Millisecond,
				HTTPClient:     hc,
				Health:         h,
			}),
			sy: NewSyncer(n.st, r, SyncerOptions{
				Timeout:    500 * time.Millisecond,
				HTTPClient: hc,
				Health:     h,
			}),
		}
	}
	for _, cn := range fleet {
		cn.h.Start()
		t.Cleanup(cn.h.Stop)
		t.Cleanup(cn.c.Close)
	}
	return fleet
}

// digestOf is a node's corpus fingerprint: its sorted key hashes.
func digestOf(cn *chaosNode) string {
	hs := cn.n.st.KeyHashes()
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	return fmt.Sprint(hs)
}

// runChaosSchedule replays one seeded kill/heal/put/fetch sequence and then
// asserts the chaos invariants: a fetch hit is always bit-identical to the
// canonical artifact, health views reconverge to all-alive after the final
// heal, the corpus converges to identical stores everywhere, and ownership
// returns to the static ring assignment.
func runChaosSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	fleet := buildChaosFleet(t, 3, seed)
	ctx := context.Background()

	canonical := map[string][]byte{}
	var keys []string
	isolated := -1

	isolate := func(i int) {
		fleet[i].ft.Isolate()
		for j, cn := range fleet {
			if j != i {
				cn.ft.Partition(fleet[i].n.srv.URL)
			}
		}
	}
	healAll := func() {
		for _, cn := range fleet {
			cn.ft.Rejoin()
		}
	}

	const steps = 24
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			// A compile finished somewhere: the node stores its artifact
			// locally and write-behind replicates it toward the owner.
			ni := rng.Intn(len(fleet))
			key := fmt.Sprintf("%064x|exact|seed=%d|step=%d", rng.Int63(), seed, step)
			payload := []byte(fmt.Sprintf("artifact-%d-%d", seed, step))
			if err := fleet[ni].n.st.s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			fleet[ni].c.Replicate(context.Background(), key, payload)
			canonical[key] = payload
			keys = append(keys, key)
		case op < 8:
			// A compile miss somewhere asks the peer tier. The API contract
			// under ANY fault is miss-not-error; a hit must be bit-identical.
			if len(keys) == 0 {
				continue
			}
			ni := rng.Intn(len(fleet))
			key := keys[rng.Intn(len(keys))]
			if got, ok := fleet[ni].c.Fetch(ctx, key); ok && !bytes.Equal(got, canonical[key]) {
				t.Fatalf("seed %d step %d: fetch returned %q, canonical is %q",
					seed, step, got, canonical[key])
			}
		case op < 9:
			if isolated >= 0 {
				continue
			}
			isolated = rng.Intn(len(fleet))
			isolate(isolated)
		default:
			if isolated < 0 {
				continue
			}
			healAll()
			isolated = -1
		}
	}

	// Final heal, then the reconvergence invariants.
	healAll()
	deadline := time.Now().Add(15 * time.Second)
	allAlive := func() bool {
		for _, cn := range fleet {
			for _, s := range cn.h.Snapshot() {
				if s != StateAlive {
					return false
				}
			}
		}
		return true
	}
	for !allAlive() {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: health views never reconverged to all-alive", seed)
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, cn := range fleet {
		cn.c.Drain()
	}
	converged := false
	for pass := 0; pass < 8 && !converged; pass++ {
		for _, cn := range fleet {
			if _, err := cn.sy.Converge(ctx); err != nil {
				t.Fatalf("seed %d: post-heal Converge errored: %v", seed, err)
			}
		}
		converged = true
		ref := digestOf(fleet[0])
		for _, cn := range fleet[1:] {
			if digestOf(cn) != ref {
				converged = false
			}
		}
	}
	if !converged {
		t.Fatalf("seed %d: stores never converged to one corpus", seed)
	}
	for i, cn := range fleet {
		for key, want := range canonical {
			got, ok := cn.n.st.GetArtifact(key)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("seed %d: node %d diverged on %q after convergence (ok=%v)", seed, i, key, ok)
			}
		}
	}
	// Ownership reconverged: with everyone alive again, every node routes
	// every key at its static ring owner — failover fully unwound.
	for _, key := range keys {
		want := fleet[0].ring.Owner(key)
		for i, cn := range fleet {
			if got := cn.ring.LiveOwner(key, cn.h.Live); got != want {
				t.Fatalf("seed %d: node %d still routes %q at %s, static owner is %s",
					seed, i, key, got, want)
			}
		}
	}
}

// TestChaosSchedules replays randomized kill/rejoin/partition schedules
// across many seeds. Every seed is an independent 3-node fleet; the suite is
// the certification the dynamic-membership work ships under: no fault
// sequence may produce a wrong payload, a stuck health view, a diverged
// corpus, or lingering failover.
func TestChaosSchedules(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			t.Parallel()
			runChaosSchedule(t, int64(seed))
		})
	}
}
