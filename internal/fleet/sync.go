package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/serenity-ml/serenity/internal/trace"
)

// SyncerOptions tune the anti-entropy loop. The zero value is usable.
type SyncerOptions struct {
	// Interval between rounds; each round talks to exactly one peer. Jittered
	// ±20% so a fleet restarted together does not synchronize its pulls.
	// Default 15s.
	Interval time.Duration
	// Batch caps the records pulled per round. A rebooted node converges over
	// several rounds instead of slamming one peer for the whole corpus — the
	// no-thundering-herd rule. Default 512.
	Batch int
	// Timeout bounds each HTTP call. Sync moves bulk in the background, so it
	// gets a far more lenient budget than the compile path's fetches.
	// Default 10s.
	Timeout time.Duration
	// HTTPClient overrides the transport (tests).
	HTTPClient *http.Client
	// Health, when non-nil, steers rounds away from peers that are not
	// Alive: syncing against a dead peer only burns the round's budget, and
	// anti-entropy is exactly the machinery that heals it once it revives.
	Health *Health
	// OnRound, when non-nil, observes every completed exchange (including
	// Converge's) — a deterministic test and logging hook. Called from the
	// syncing goroutine; must not block for long.
	OnRound func(peer string, added int, err error)
	// Tracer, when non-nil, opens a "sync.round" trace per exchange and
	// propagates its context to the peer, so the peer's digest/sync serve
	// spans stitch under this node's round trace.
	Tracer *trace.Tracer
}

func (o SyncerOptions) withDefaults() SyncerOptions {
	if o.Interval <= 0 {
		o.Interval = 15 * time.Second
	}
	if o.Batch <= 0 {
		o.Batch = 512
	}
	if o.Timeout <= 0 {
		o.Timeout = 10 * time.Second
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	return o
}

// SyncerStats is a snapshot of the anti-entropy counters.
type SyncerStats struct {
	// Rounds counts completed peer exchanges (including no-op ones); Pulled
	// the records imported from peers; Errors rounds that failed (unreachable
	// peer, alien stream).
	Rounds int64
	Pulled int64
	Errors int64
}

// Syncer is the pull-based anti-entropy loop: every interval it asks the next
// peer (round-robin) for its key digest, diffs against the local store, and
// pulls a capped batch of the records it is missing. Convergence is eventual
// and deliberately unhurried — the compile path's owner fetches serve the
// latency-sensitive traffic; the syncer's job is that a rebooted, rejoined,
// or drop-afflicted node ends up with the full corpus anyway.
type Syncer struct {
	store Store
	ring  atomic.Pointer[Ring]
	opts  SyncerOptions

	next   int // round-robin cursor over the live peer list
	cancel context.CancelFunc
	wg     sync.WaitGroup
	once   sync.Once

	rounds, pulled, errors atomic.Int64
}

// NewSyncer builds the anti-entropy loop over store and ring. Call Start to
// run it; SyncOnce works without Start for drills and tests.
func NewSyncer(store Store, ring *Ring, opts SyncerOptions) *Syncer {
	s := &Syncer{store: store, opts: opts.withDefaults()}
	s.ring.Store(ring)
	return s
}

// UpdateRing swaps the membership the syncer pulls over — a join or leave
// took effect. The next round sees the new peer list.
func (s *Syncer) UpdateRing(r *Ring) { s.ring.Store(r) }

// livePeers returns the peers worth syncing against right now: every peer
// without a health view, only Alive ones with it.
func (s *Syncer) livePeers() []string {
	peers := s.ring.Load().Peers()
	if s.opts.Health == nil {
		return peers
	}
	out := peers[:0]
	for _, p := range peers {
		if s.opts.Health.Live(p) {
			out = append(out, p)
		}
	}
	return out
}

// Stats returns a snapshot of the syncer's counters.
func (s *Syncer) Stats() SyncerStats {
	return SyncerStats{Rounds: s.rounds.Load(), Pulled: s.pulled.Load(), Errors: s.errors.Load()}
}

// Start launches the background loop. The loop idles through rounds where
// no live peer exists — membership is dynamic now, so a node booted alone
// still syncs the moment a peer joins. Stop it with Stop.
func (s *Syncer) Start() {
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.wg.Add(1)
	go s.loop(ctx)
}

// Stop halts the loop and waits for an in-flight round to finish. Idempotent;
// safe to call even if Start never ran.
func (s *Syncer) Stop() {
	s.once.Do(func() {
		if s.cancel != nil {
			s.cancel()
		}
		s.wg.Wait()
	})
}

func (s *Syncer) loop(ctx context.Context) {
	defer s.wg.Done()
	rng := rand.New(rand.NewSource(int64(hash64(s.ring.Load().Self()))))
	for {
		// ±20% jitter, seeded from the member address so each node wanders
		// its own schedule: a fleet restarted together must not line up its
		// pulls on the same peer at the same instant.
		d := s.opts.Interval + time.Duration((rng.Float64()-0.5)*0.4*float64(s.opts.Interval))
		select {
		case <-ctx.Done():
			return
		case <-time.After(d):
		}
		peers := s.livePeers()
		if len(peers) == 0 {
			continue // alone, or everyone is down; try again next round
		}
		peer := peers[s.next%len(peers)]
		s.next++
		if _, err := s.SyncOnce(ctx, peer); err != nil {
			s.errors.Add(1)
		}
	}
}

// Converge runs digest-diff-pull passes against every live peer until one
// full pass imports nothing, and returns the total records imported. This is
// the join/rejoin handoff: a node entering the ring pre-streams the corpus —
// its owned keys included — BEFORE reporting ready, so the moment peers
// start routing to it, it serves from its store instead of re-running DPs.
// An unreachable peer's error is remembered but does not abort the pass; the
// last error is returned alongside whatever did converge, and the caller
// (which has a boot deadline) decides whether partial convergence is
// acceptable. ctx cancellation aborts between exchanges.
func (s *Syncer) Converge(ctx context.Context) (int, error) {
	total := 0
	var lastErr error
	// A pass cap guards against a peer that grows its corpus faster than we
	// pull; 10k passes of Batch records each is far beyond any real store.
	for pass := 0; pass < 10000; pass++ {
		peers := s.livePeers()
		if len(peers) == 0 {
			return total, lastErr
		}
		added := 0
		lastErr = nil
		for _, peer := range peers {
			if err := ctx.Err(); err != nil {
				return total, err
			}
			n, err := s.SyncOnce(ctx, peer)
			if err != nil {
				s.errors.Add(1)
				lastErr = err
				continue
			}
			added += n
		}
		total += added
		if added == 0 {
			return total, lastErr
		}
	}
	return total, lastErr
}

// SyncOnce performs one digest-diff-pull exchange with peer and returns the
// number of records imported. Exported so drills and shutdown paths can force
// a deterministic convergence step.
func (s *Syncer) SyncOnce(ctx context.Context, peer string) (int, error) {
	var span *trace.SpanHandle
	if s.opts.Tracer != nil && trace.FromContext(ctx) == nil {
		// Anti-entropy runs on its own schedule with no caller to inherit a
		// trace from, so each sampled round opens its own.
		if s.opts.Tracer.Sample() {
			span = s.opts.Tracer.StartTrace("sync.round", trace.Str("peer", peer))
			ctx = trace.ContextWith(ctx, span)
		}
	}
	added, err := s.syncOnce(ctx, peer)
	if span != nil {
		span.Annotate(trace.Int("added", int64(added)))
		s.opts.Tracer.Finish(span, trace.Outcome{Err: err})
	}
	s.rounds.Add(1)
	if s.opts.OnRound != nil {
		s.opts.OnRound(peer, added, err)
	}
	return added, err
}

func (s *Syncer) syncOnce(ctx context.Context, peer string) (int, error) {
	theirs, err := s.fetchDigest(ctx, peer)
	if err != nil {
		return 0, err
	}
	mine := make(map[uint64]bool, 1024)
	for _, h := range s.store.KeyHashes() {
		mine[h] = true
	}
	missing := make([]uint64, 0, 64)
	for _, h := range theirs {
		if !mine[h] {
			missing = append(missing, h)
			if len(missing) >= s.opts.Batch {
				break // the rest converges on later rounds
			}
		}
	}
	if len(missing) == 0 {
		return 0, nil
	}
	added, err := s.pull(ctx, peer, missing)
	s.pulled.Add(int64(added))
	return added, err
}

// fetchDigest GETs peer's key digest.
func (s *Syncer) fetchDigest(ctx context.Context, peer string) ([]uint64, error) {
	callCtx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(callCtx, http.MethodGet, peer+digestPath, nil)
	if err != nil {
		return nil, err
	}
	if tp := trace.FromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
	resp, err := s.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("fleet: digest from %s answered %d", peer, resp.StatusCode)
	}
	return readDigest(resp.Body)
}

// pull POSTs the wanted hashes to peer and imports the record stream it
// answers with. The store's ImportMissing skips keys that arrived locally in
// the meantime and payloads that fail validation, so a stale or lying peer
// can waste a round but never poison the store.
func (s *Syncer) pull(ctx context.Context, peer string, want []uint64) (int, error) {
	var body bytes.Buffer
	if err := writeDigest(&body, want); err != nil {
		return 0, err
	}
	callCtx, cancel := context.WithTimeout(ctx, s.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(callCtx, http.MethodPost, peer+syncPath, &body)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if tp := trace.FromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
	resp, err := s.opts.HTTPClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("fleet: sync pull from %s answered %d", peer, resp.StatusCode)
	}
	return s.store.ImportMissing(resp.Body)
}
