package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/serenity-ml/serenity/internal/trace"
)

// Peer endpoint paths, shared by Client and Server so the two sides cannot
// drift apart.
const (
	segmentPathPrefix = "/v1/peer/segment/"
	digestPath        = "/v1/peer/digest"
	syncPath          = "/v1/peer/sync"
	// PingPath is the fleet-native liveness probe target: ungated, bodyless,
	// 204. Health probes default to it; serenityd points them at /readyz
	// instead so readiness (including join pre-streaming) gates ownership.
	PingPath = "/v1/peer/ping"
	// TraceparentHeader carries the caller's trace context on every peer
	// request (fetch, replication, anti-entropy), W3C-style, so the owner's
	// serve spans stitch under the caller's trace.
	TraceparentHeader = "traceparent"
)

// maxArtifactBytes bounds one fetched artifact body: at 4 bytes per scheduled
// node this is far beyond any real segment, and it keeps a confused or
// malicious peer from ballooning a fetch into an allocation incident.
const maxArtifactBytes = 16 << 20

// ClientOptions tune the fetch path. The zero value is usable: every field
// falls back to the default documented on it.
type ClientOptions struct {
	// Timeout bounds each fetch attempt. The budget exists so a slow peer
	// costs a small constant instead of the DP time it was trying to save;
	// default 250ms.
	Timeout time.Duration
	// Concurrency bounds in-flight peer fetches. Arrivals beyond the bound
	// miss immediately rather than queue — queueing behind slow fetches is
	// exactly the cost bound this client exists to enforce. Default 8.
	Concurrency int
	// NegativeTTL is how long a fetched miss (owner answered 404) is
	// remembered so a storm of identical cold keys costs one round trip, not
	// one per request. Default 2s.
	NegativeTTL time.Duration
	// BreakerBackoff is how long a peer that timed out or refused a
	// connection is skipped entirely; during the window every fetch routed to
	// it misses instantly. Default 3s.
	BreakerBackoff time.Duration
	// ReplicationQueue bounds the write-behind replication queue; overflow
	// drops the replication (the owner converges later via anti-entropy).
	// Default 256.
	ReplicationQueue int
	// HTTPClient overrides the transport (tests); nil uses a dedicated
	// client with sane connection pooling.
	HTTPClient *http.Client
	// Health, when non-nil, is the member health view driving failover
	// routing: fetches skip any owner that is not Alive and go straight to
	// the next live ring point (a dead owner costs zero added latency once
	// its first probe or fetch fails), replication reroutes only around Dead
	// owners (a Suspect blip is still worth one cheap push), and every
	// transport outcome this client observes is fed back into the view. Nil
	// preserves the static PR-7 behavior: breaker-only protection.
	Health *Health
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout <= 0 {
		o.Timeout = 250 * time.Millisecond
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.NegativeTTL <= 0 {
		o.NegativeTTL = 2 * time.Second
	}
	if o.BreakerBackoff <= 0 {
		o.BreakerBackoff = 3 * time.Second
	}
	if o.ReplicationQueue <= 0 {
		o.ReplicationQueue = 256
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 16,
			IdleConnTimeout:     90 * time.Second,
		}}
	}
	return o
}

// ClientStats is a snapshot of the fetch/replication counters.
type ClientStats struct {
	// Hits are fetches that returned an artifact payload; Misses everything
	// else the compile path asked for (404s, errors, breaker skips, negative
	// cache, concurrency shedding). Timeouts is the subset of misses whose
	// attempts ran out the per-attempt budget.
	Hits     int64
	Misses   int64
	Timeouts int64
	// Failovers counts fetches and replications routed to a failover owner
	// because the key's primary owner was not healthy enough for that path.
	Failovers int64
	// Replicated counts write-behind artifact pushes accepted by owners;
	// ReplicationDropped counts pushes shed on queue overflow or shutdown.
	Replicated         int64
	ReplicationDropped int64
}

// replicaPush is one queued write-behind replication. traceparent is the
// originating request's trace context, captured at Replicate time because
// the push itself runs later, under the replicator's own context.
type replicaPush struct {
	key         string
	payload     []byte
	traceparent string
}

// Client is the compile path's peer tier: Fetch asks a key's ring owner for
// the artifact before the caller falls back to running the DP, and Replicate
// pushes locally computed non-owned artifacts to their owners in the
// background. It implements serenity.PeerTier. Safe for concurrent use.
type Client struct {
	ring atomic.Pointer[Ring]
	opts ClientOptions
	sem  chan struct{}

	mu       sync.Mutex
	negative map[string]time.Time // key -> expiry of a remembered miss
	down     map[string]time.Time // peer -> end of its breaker window
	closed   bool

	pushCh  chan replicaPush
	pending atomic.Int64 // enqueued replications not yet fully processed
	wg      sync.WaitGroup

	hits, misses, timeouts atomic.Int64
	failovers              atomic.Int64
	replicated, repDropped atomic.Int64
}

// NewClient builds the peer fetch client for ring. Close it on shutdown to
// stop the replication worker.
func NewClient(ring *Ring, opts ClientOptions) *Client {
	o := opts.withDefaults()
	c := &Client{
		opts:     o,
		sem:      make(chan struct{}, o.Concurrency),
		negative: make(map[string]time.Time),
		down:     make(map[string]time.Time),
		pushCh:   make(chan replicaPush, o.ReplicationQueue),
	}
	c.ring.Store(ring)
	c.wg.Add(1)
	go c.replicator()
	return c
}

// Ring returns the membership the client currently routes over.
func (c *Client) Ring() *Ring { return c.ring.Load() }

// UpdateRing swaps the membership the client routes over — a join or leave
// took effect. In-flight fetches finish against the old ring; that is safe
// because any owner answers only from its store and a misrouted fetch is at
// worst a 404 miss.
func (c *Client) UpdateRing(r *Ring) { c.ring.Store(r) }

// fetchOwner resolves key's owner for the latency-sensitive fetch path:
// with a health view, the first Alive member in failover order (counting a
// reroute); without one, the static ring owner.
func (c *Client) fetchOwner(r *Ring, key string) string {
	if c.opts.Health == nil {
		return r.Owner(key)
	}
	owner := r.LiveOwner(key, c.opts.Health.Live)
	if owner != r.Owner(key) {
		c.failovers.Add(1)
	}
	return owner
}

// Owns implements serenity.PeerTier: whether this node is key's CURRENT
// authoritative owner — the static ring owner, unless health failed
// ownership over to this node. A compile miss on a key this node owns runs
// the DP locally and serves peers afterward, which is exactly what
// ownership failover means.
func (c *Client) Owns(key string) bool {
	r := c.ring.Load()
	if c.opts.Health == nil {
		return r.Owns(key)
	}
	return r.LiveOwner(key, c.opts.Health.Live) == r.Self()
}

// Stats returns a snapshot of the client's counters.
func (c *Client) Stats() ClientStats {
	return ClientStats{
		Hits:               c.hits.Load(),
		Misses:             c.misses.Load(),
		Timeouts:           c.timeouts.Load(),
		Failovers:          c.failovers.Load(),
		Replicated:         c.replicated.Load(),
		ReplicationDropped: c.repDropped.Load(),
	}
}

// Fetch implements serenity.PeerTier: it asks key's ring owner for the raw
// artifact payload. Every failure mode — dead peer, slow peer, 404, overload,
// shutdown — returns ok=false so the caller computes locally; Fetch never
// surfaces an error. One transport-level retry, then the peer's breaker
// trips.
func (c *Client) Fetch(ctx context.Context, key string) ([]byte, bool) {
	r := c.ring.Load()
	owner := c.fetchOwner(r, key)
	if owner == r.Self() {
		return nil, false
	}
	now := time.Now()
	c.mu.Lock()
	if c.closed || now.Before(c.negative[key]) || now.Before(c.down[owner]) {
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.mu.Unlock()

	// Bounded concurrency, non-queueing: if every fetch slot is busy the
	// fleet is already saturating its peer budget, and waiting in line would
	// add unbounded latency to a path whose whole contract is "cheap or not
	// at all".
	select {
	case c.sem <- struct{}{}:
	default:
		c.misses.Add(1)
		return nil, false
	}
	defer func() { <-c.sem }()

	reqURL := owner + segmentPathPrefix + url.PathEscape(key)
	var lastTimeout bool
	for attempt := 0; attempt < 2; attempt++ {
		payload, status, err := c.getOnce(ctx, reqURL)
		switch {
		case err == nil && status == http.StatusOK:
			c.hits.Add(1)
			if c.opts.Health != nil {
				c.opts.Health.ReportSuccess(owner)
			}
			return payload, true
		case err == nil && status == http.StatusNotFound:
			// The authoritative owner does not have it; nobody does. Remember
			// the miss so the herd behind this key computes instead of dialing.
			c.mu.Lock()
			c.negative[key] = time.Now().Add(c.opts.NegativeTTL)
			c.pruneNegativeLocked()
			c.mu.Unlock()
			c.misses.Add(1)
			return nil, false
		case err == nil:
			// Overload (429) or an unexpected status: one retry, then miss
			// without tripping the breaker — the peer is alive, just busy.
			lastTimeout = false
		default:
			if ctx.Err() != nil {
				// The compile itself is done waiting; not the peer's fault.
				c.misses.Add(1)
				return nil, false
			}
			lastTimeout = true
			c.timeouts.Add(1)
			if c.opts.Health != nil {
				// Feed the detector immediately: with SuspectAfter 1 the very
				// next fetch routed at this owner already fails over, so a
				// dead owner costs the fleet exactly one timeout, total.
				c.opts.Health.ReportFailure(owner)
			}
		}
	}
	if lastTimeout {
		// Two consecutive transport failures: stop dialing this peer for a
		// while. Fetches routed to it during the window miss instantly, so a
		// dead owner costs the fleet one breaker window of round trips, total.
		c.mu.Lock()
		c.down[owner] = time.Now().Add(c.opts.BreakerBackoff)
		c.mu.Unlock()
	}
	c.misses.Add(1)
	return nil, false
}

// getOnce performs one GET attempt under the per-attempt timeout.
func (c *Client) getOnce(ctx context.Context, reqURL string) ([]byte, int, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, http.MethodGet, reqURL, nil)
	if err != nil {
		return nil, 0, err
	}
	if tp := trace.FromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set(TraceparentHeader, tp)
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, resp.StatusCode, nil
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
	if err != nil {
		return nil, 0, err
	}
	if len(payload) > maxArtifactBytes {
		return nil, 0, fmt.Errorf("fleet: artifact exceeds %d bytes", maxArtifactBytes)
	}
	return payload, http.StatusOK, nil
}

// pruneNegativeLocked bounds the negative cache; expired entries go first,
// and if a flood of distinct cold keys outruns expiry the whole map resets —
// losing remembered misses only costs extra 404s, never correctness.
func (c *Client) pruneNegativeLocked() {
	if len(c.negative) < 4096 {
		return
	}
	now := time.Now()
	for k, exp := range c.negative {
		if now.After(exp) {
			delete(c.negative, k)
		}
	}
	if len(c.negative) >= 4096 {
		c.negative = make(map[string]time.Time)
	}
}

// Replicate implements serenity.PeerTier: it enqueues a write-behind push of
// a locally computed artifact to key's ring owner. Non-blocking — the compile
// path never waits on replication; overflow is dropped and counted, and
// anti-entropy heals whatever the drops missed. ctx contributes only the
// caller's trace context, captured here because the push runs after the
// request (and its context) are gone.
func (c *Client) Replicate(ctx context.Context, key string, payload []byte) {
	if r := c.ring.Load(); r.Owner(key) == r.Self() {
		return
	}
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		c.repDropped.Add(1)
		return
	}
	c.pending.Add(1)
	select {
	case c.pushCh <- replicaPush{key: key, payload: payload, traceparent: trace.FromContext(ctx).Traceparent()}:
	default:
		c.pending.Add(-1)
		c.repDropped.Add(1)
	}
}

// replicator drains the write-behind queue, PUTting each artifact to its
// owner. Failures are dropped and counted: the artifact still exists locally
// and in the local store, so the only cost is that the owner converges via
// anti-entropy instead of immediately.
func (c *Client) replicator() {
	defer c.wg.Done()
	for p := range c.pushCh {
		c.replicateOne(p)
		c.pending.Add(-1)
	}
}

func (c *Client) replicateOne(p replicaPush) {
	r := c.ring.Load()
	owner := r.Owner(p.key)
	if c.opts.Health != nil && !c.opts.Health.Reachable(owner) {
		// The owner is Dead: push to the failover owner instead, so the keys
		// a dead member would have held keep converging onto the member that
		// is actually serving them. A merely Suspect owner still gets the
		// push — a blip is cheaper to retry than to route around.
		if lo := r.LiveOwner(p.key, c.opts.Health.Reachable); lo != owner {
			c.failovers.Add(1)
			owner = lo
		}
	}
	if owner == r.Self() {
		return
	}
	c.mu.Lock()
	down := time.Now().Before(c.down[owner])
	c.mu.Unlock()
	if down {
		c.repDropped.Add(1)
		return
	}
	if err := c.putOnce(owner, p); err != nil {
		c.repDropped.Add(1)
		return
	}
	c.replicated.Add(1)
}

// putOnce performs one replication PUT under the per-attempt timeout.
func (c *Client) putOnce(owner string, p replicaPush) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		owner+segmentPathPrefix+url.PathEscape(p.key), strings.NewReader(string(p.payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if p.traceparent != "" {
		req.Header.Set(TraceparentHeader, p.traceparent)
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("fleet: replication to %s answered %d", owner, resp.StatusCode)
	}
	return nil
}

// Drain blocks until every replication enqueued before the call has been
// fully attempted (not merely dequeued) — a test and drill barrier, not a
// production path.
func (c *Client) Drain() {
	for {
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed || c.pending.Load() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// Close stops the replication worker and makes every later Fetch miss and
// every later Replicate drop. Idempotent.
func (c *Client) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.pushCh)
	c.wg.Wait()
}

var _ interface {
	Owns(string) bool
	Fetch(context.Context, string) ([]byte, bool)
	Replicate(context.Context, string, []byte)
} = (*Client)(nil)

// errAlien guards the sync stream decoding paths.
var errAlien = errors.New("fleet: alien sync stream")
