package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// faultClient wraps srv behind a FaultTransport-backed http.Client.
func faultClient(seed int64) (*FaultTransport, *http.Client) {
	ft := NewFaultTransport(nil, seed)
	return ft, &http.Client{Transport: ft}
}

func TestFaultTransportPassthrough(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()
	_, hc := faultClient(1)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("passthrough answered %d %q", resp.StatusCode, body)
	}
}

func TestFaultTransportPartitionAndHeal(t *testing.T) {
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	ft, hc := faultClient(1)
	ft.Partition(srv.URL)
	if _, err := hc.Get(srv.URL); err == nil {
		t.Fatal("partitioned peer answered")
	}
	if served != 0 {
		t.Fatal("the request crossed the partition")
	}
	ft.Heal(srv.URL)
	if _, err := hc.Get(srv.URL); err != nil {
		t.Fatalf("healed peer still unreachable: %v", err)
	}
	if st := ft.Stats(); st.Dropped != 1 {
		t.Errorf("Dropped=%d, want 1", st.Dropped)
	}
}

func TestFaultTransportIsolateAndRejoin(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer a.Close()
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer b.Close()
	ft, hc := faultClient(1)
	ft.Isolate()
	if _, err := hc.Get(a.URL); err == nil {
		t.Fatal("isolated node reached peer a")
	}
	if _, err := hc.Get(b.URL); err == nil {
		t.Fatal("isolated node reached peer b")
	}
	ft.Rejoin()
	if _, err := hc.Get(a.URL); err != nil {
		t.Fatalf("rejoin did not restore a: %v", err)
	}
	if _, err := hc.Get(b.URL); err != nil {
		t.Fatalf("rejoin did not restore b: %v", err)
	}
}

func TestFaultTransportErrorStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request reached the real server through an ErrorStatus rule")
	}))
	defer srv.Close()
	ft, hc := faultClient(1)
	ft.SetRule(srv.URL, FaultRule{ErrorStatus: http.StatusBadGateway})
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status=%d, want 502", resp.StatusCode)
	}
	if st := ft.Stats(); st.Errored != 1 {
		t.Errorf("Errored=%d, want 1", st.Errored)
	}
}

func TestFaultTransportDelayHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	ft, hc := faultClient(1)
	ft.SetRule(srv.URL, FaultRule{Delay: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	if _, err := hc.Do(req); err == nil {
		t.Fatal("delayed request succeeded before its context expired")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("delay ignored the request context: took %v", elapsed)
	}
}

// TestFaultTransportSeededDropsReplay pins determinism: two transports with
// the same seed must roll the same probabilistic drops in the same order.
func TestFaultTransportSeededDropsReplay(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	run := func(seed int64) []bool {
		ft, hc := faultClient(seed)
		ft.SetRule(srv.URL, FaultRule{DropProb: 0.5})
		out := make([]bool, 40)
		for i := range out {
			resp, err := hc.Get(srv.URL)
			if err == nil {
				resp.Body.Close()
			}
			out[i] = err != nil
		}
		return out
	}
	a, b := run(42), run(42)
	dropped := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
		if a[i] {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("DropProb=0.5 dropped %d/%d; the dice are not rolling", dropped, len(a))
	}
}

// TestFaultTransportPerPeerPrecedence: a per-peer rule wins over SetAll.
func TestFaultTransportPerPeerPrecedence(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()
	ft, hc := faultClient(1)
	ft.SetAll(FaultRule{Drop: true})
	ft.SetRule(srv.URL, FaultRule{ErrorStatus: http.StatusTeapot})
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatalf("per-peer rule lost to SetAll: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTeapot {
		t.Fatalf("status=%d, want 418", resp.StatusCode)
	}
}

func TestHostOfNormalizesPeerForms(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"http://10.0.0.5:7433", "10.0.0.5:7433"},
		{"http://10.0.0.5:7433/", "10.0.0.5:7433"},
		{" http://host:1 ", "host:1"},
		{"host-only", "host-only"},
	} {
		if got := hostOf(tc.in); got != tc.want {
			t.Errorf("hostOf(%q)=%q, want %q", tc.in, got, tc.want)
		}
	}
}
