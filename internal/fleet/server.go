package fleet

import (
	"encoding/binary"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/serenity-ml/serenity/internal/trace"
)

// Store is the slice of the artifact store the peer surface needs. The
// serenityd side adapts its schedule store to this; payloads are opaque bytes
// here — validation (artifact decode, permutation check, FellBack poison
// rule) lives with the implementations, so the fleet never has to understand
// schedules to move them.
type Store interface {
	// GetArtifact returns the raw payload stored for key.
	GetArtifact(key string) ([]byte, bool)
	// PutArtifact stores a replicated payload under key, first-writer-wins:
	// an existing record keeps its established bytes. It reports whether the
	// payload was accepted (false for invalid payloads or existing keys).
	PutArtifact(key string, payload []byte) bool
	// KeyHashes returns the store.KeyHash digest of every live key.
	KeyHashes() []uint64
	// ExportSubset streams the live records whose key-hash want contains, as
	// a self-contained store file, and returns how many records it wrote.
	ExportSubset(w io.Writer, want map[uint64]bool) (int, error)
	// ImportMissing merges a store stream, skipping keys already present and
	// payloads that fail validation, and returns how many records it added.
	ImportMissing(r io.Reader) (added int, err error)
}

// Gate admits one peer request; ok=false sheds it with 429. The release func
// must be called when the request finishes. serenityd plugs its admission
// controller in here so peer traffic has its own lane — a peer fetch must
// never wait behind a long local DP, and peer floods must never starve
// interactive compiles.
type Gate func() (release func(), ok bool)

// ServerStats is a snapshot of the peer-facing counters.
type ServerStats struct {
	// SegmentHits/SegmentMisses count artifact GETs answered with a payload
	// vs. 404. ReplicasAccepted/ReplicasIgnored count artifact PUTs stored
	// vs. dropped (already present or invalid). SyncRecords counts records
	// streamed out to peers' anti-entropy pulls; Shed counts requests the
	// gate refused.
	SegmentHits     int64
	SegmentMisses   int64
	ReplicasAccepted int64
	ReplicasIgnored int64
	SyncRecords     int64
	Shed            int64
}

// Server is serenityd's peer-facing HTTP surface: artifact get/put for the
// compile path's fetches and write-behind replication, and digest/sync for
// the anti-entropy loop. Safe for concurrent use.
type Server struct {
	store  Store
	ring   atomic.Pointer[Ring]
	gate   Gate
	tracer atomic.Pointer[trace.Tracer]

	segHits, segMisses       atomic.Int64
	repAccepted, repIgnored  atomic.Int64
	syncRecords, shed        atomic.Int64
}

// NewServer builds the peer surface over store and ring. gate may be nil
// (no admission control — tests and single-tenant drills).
func NewServer(store Store, ring *Ring, gate Gate) *Server {
	s := &Server{store: store, gate: gate}
	s.ring.Store(ring)
	return s
}

// UpdateRing swaps the membership this server belongs to — a join or leave
// took effect. The peer surface itself is membership-agnostic (it answers
// from the store whoever asks), so this only keeps the view consistent.
func (s *Server) UpdateRing(r *Ring) { s.ring.Store(r) }

// SetTracer installs the tracer recording this node's side of fleet
// requests. When a peer request carries a traceparent header, the handler
// records a remote child span under the caller's trace ID, so one trace
// stitches the caller's fetch span to the owner's serve span. Nil disables.
func (s *Server) SetTracer(t *trace.Tracer) { s.tracer.Store(t) }

// serveSpan records one handler's remote child span when the request was
// traced. It returns a done func taking the attributes known only at the
// end of the handler.
func (s *Server) serveSpan(r *http.Request, name string) func(attrs ...trace.Attr) {
	t := s.tracer.Load()
	if t == nil {
		return func(...trace.Attr) {}
	}
	tp := r.Header.Get(TraceparentHeader)
	if tp == "" {
		return func(...trace.Attr) {}
	}
	start := time.Now()
	return func(attrs ...trace.Attr) {
		t.RecordRemote(tp, name, start, time.Since(start), attrs...)
	}
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		SegmentHits:      s.segHits.Load(),
		SegmentMisses:    s.segMisses.Load(),
		ReplicasAccepted: s.repAccepted.Load(),
		ReplicasIgnored:  s.repIgnored.Load(),
		SyncRecords:      s.syncRecords.Load(),
		Shed:             s.shed.Load(),
	}
}

// Register mounts the peer endpoints on mux.
func (s *Server) Register(mux *http.ServeMux) {
	mux.HandleFunc("GET "+segmentPathPrefix+"{key}", s.handleSegmentGet)
	mux.HandleFunc("PUT "+segmentPathPrefix+"{key}", s.handleSegmentPut)
	mux.HandleFunc("GET "+digestPath, s.handleDigest)
	mux.HandleFunc("POST "+syncPath, s.handleSync)
	// The ping deliberately bypasses the gate: health probes must answer even
	// when the peer lane is saturated, or overload would read as death and
	// the fleet would route around a node that is merely busy.
	mux.HandleFunc("GET "+PingPath, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})
}

// admit runs the gate; on shed it writes the 429 itself and returns ok=false.
func (s *Server) admit(w http.ResponseWriter) (func(), bool) {
	if s.gate == nil {
		return func() {}, true
	}
	release, ok := s.gate()
	if !ok {
		s.shed.Add(1)
		http.Error(w, "peer tier saturated", http.StatusTooManyRequests)
		return nil, false
	}
	return release, true
}

func (s *Server) handleSegmentGet(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	done := s.serveSpan(r, "peer.serve.segment")
	key := r.PathValue("key")
	payload, found := s.store.GetArtifact(key)
	done(trace.Str("key", key), trace.Bool("hit", found))
	if !found {
		s.segMisses.Add(1)
		http.Error(w, "unknown segment", http.StatusNotFound)
		return
	}
	s.segHits.Add(1)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

func (s *Server) handleSegmentPut(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	done := s.serveSpan(r, "peer.serve.replica")
	key := r.PathValue("key")
	payload, err := io.ReadAll(io.LimitReader(r.Body, maxArtifactBytes+1))
	if err != nil || len(payload) > maxArtifactBytes || len(payload) == 0 {
		done(trace.Str("key", key), trace.Bool("accepted", false))
		http.Error(w, "bad artifact body", http.StatusBadRequest)
		return
	}
	accepted := s.store.PutArtifact(key, payload)
	done(trace.Str("key", key), trace.Bool("accepted", accepted))
	if accepted {
		s.repAccepted.Add(1)
	} else {
		// Already present (first-writer-wins) or failed validation; either
		// way the replication achieved its goal or never could. 200 in both
		// cases — a replica push is idempotent fire-and-forget.
		s.repIgnored.Add(1)
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	done := s.serveSpan(r, "peer.serve.digest")
	hashes := s.store.KeyHashes()
	done(trace.Int("keys", int64(len(hashes))))
	w.Header().Set("Content-Type", "application/octet-stream")
	writeDigest(w, hashes)
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w)
	if !ok {
		return
	}
	defer release()
	done := s.serveSpan(r, "peer.serve.sync")
	wanted, err := readDigest(r.Body)
	if err != nil {
		done(trace.Int("records", 0))
		http.Error(w, "bad digest body", http.StatusBadRequest)
		return
	}
	want := make(map[uint64]bool, len(wanted))
	for _, h := range wanted {
		want[h] = true
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	n, _ := s.store.ExportSubset(w, want)
	done(trace.Int("records", int64(n)))
	s.syncRecords.Add(int64(n))
}

// Digest wire format: 4-byte magic "SDG1" | uint32 LE count | count × uint64
// LE key-hashes. Used for both the digest response and the sync pull request
// body (the hashes the requester wants).
var digestMagic = [4]byte{'S', 'D', 'G', '1'}

// maxDigestEntries bounds one digest at 2M keys (16 MiB) so an alien or
// malicious stream cannot balloon into an allocation incident.
const maxDigestEntries = 1 << 21

func writeDigest(w io.Writer, hashes []uint64) error {
	hdr := make([]byte, 8)
	copy(hdr, digestMagic[:])
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(hashes)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 8*len(hashes))
	for i, h := range hashes {
		binary.LittleEndian.PutUint64(buf[8*i:], h)
	}
	_, err := w.Write(buf)
	return err
}

func readDigest(r io.Reader) ([]uint64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, errAlien
	}
	if [4]byte(hdr[:4]) != digestMagic {
		return nil, errAlien
	}
	count := binary.LittleEndian.Uint32(hdr[4:])
	if count > maxDigestEntries {
		return nil, errAlien
	}
	buf := make([]byte, 8*count)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, errAlien
	}
	out := make([]uint64, count)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return out, nil
}
