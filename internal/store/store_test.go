package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, dir string, maxBytes int64) *Store {
	t.Helper()
	s, err := Open(dir, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	pairs := map[string][]byte{
		"alpha": []byte("one"),
		"beta":  {},
		"gamma": bytes.Repeat([]byte{0xAB}, 4096),
	}
	for k, v := range pairs {
		if err := s.Put(k, v); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
	}
	for k, v := range pairs {
		got, ok := s.Get(k)
		if !ok {
			t.Fatalf("Get(%q) missed", k)
		}
		if !bytes.Equal(got, v) {
			t.Errorf("Get(%q) = %x, want %x", k, got, v)
		}
	}
	if _, ok := s.Get("absent"); ok {
		t.Error("Get on an absent key reported a hit")
	}
	st := s.Stats()
	if st.Entries != 3 || st.Writes != 3 || st.Hits != 3 || st.Misses != 1 {
		t.Errorf("stats %+v do not reconcile with the workload", st)
	}
}

func TestReopenRestoresEntries(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	for i := 0; i < 10; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Supersede one key; the later record must win after reopen.
	if err := s.Put("k03", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, 0)
	if st := s2.Stats(); st.Entries != 10 || st.CorruptRecords != 0 {
		t.Fatalf("reopen: stats %+v, want 10 clean entries", st)
	}
	got, ok := s2.Get("k03")
	if !ok || string(got) != "new" {
		t.Errorf("superseded key after reopen = %q, %t; want \"new\"", got, ok)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte{1}, 100)
	one := int64(len(encodeRecord("k0", payload)))
	s := openT(t, dir, 3*one)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), payload); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Entries != 3 || st.Evictions != 2 {
		t.Fatalf("stats %+v; want 3 live entries, 2 evictions", st)
	}
	for i, want := range []bool{false, false, true, true, true} {
		_, ok := s.Get(fmt.Sprintf("k%d", i))
		if ok != want {
			t.Errorf("k%d present=%t, want %t (LRU order violated)", i, ok, want)
		}
	}
	// Touch k2, insert another: k3 (now LRU) must go, k2 stay.
	s.Get("k2")
	if err := s.Put("k5", payload); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k3"); ok {
		t.Error("k3 survived despite being least recently used")
	}
	if _, ok := s.Get("k2"); !ok {
		t.Error("recency refresh did not protect k2")
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	s := openT(t, t.TempDir(), 64)
	err := s.Put("key", bytes.Repeat([]byte{1}, 128))
	if err != ErrTooLarge {
		t.Fatalf("Put oversized = %v, want ErrTooLarge", err)
	}
	if st := s.Stats(); st.Writes != 0 || st.Entries != 0 {
		t.Errorf("oversized record left traces: %+v", st)
	}
}

func TestCompactReclaimsDeadSpace(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	for i := 0; i < 20; i++ {
		// Every key written twice: half the file is dead.
		key := fmt.Sprintf("k%d", i%10)
		if err := s.Put(key, bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.Stats()
	if before.DeadBytes == 0 {
		t.Fatal("superseding writes produced no dead bytes")
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.DeadBytes != 0 {
		t.Errorf("dead bytes after compact: %d", after.DeadBytes)
	}
	if after.FileBytes >= before.FileBytes {
		t.Errorf("file did not shrink: %d -> %d", before.FileBytes, after.FileBytes)
	}
	if after.Entries != 10 {
		t.Errorf("entries after compact: %d, want 10", after.Entries)
	}
	for i := 10; i < 20; i++ {
		got, ok := s.Get(fmt.Sprintf("k%d", i%10))
		if !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 64)) {
			t.Errorf("k%d wrong after compact (ok=%t)", i%10, ok)
		}
	}
	// And the compacted file must reopen cleanly with recency preserved.
	s.Close()
	s2 := openT(t, dir, 0)
	if st := s2.Stats(); st.Entries != 10 || st.CorruptRecords != 0 {
		t.Errorf("post-compact reopen stats %+v", st)
	}
}

// corruptAt flips one byte of the data file (store must be closed).
func corruptAt(t *testing.T, dir string, off int64) {
	t.Helper()
	path := filepath.Join(dir, DataFileName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestOpenSkipsCRCCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	var offs []int64
	for i := 0; i < 3; i++ {
		offs = append(offs, s.Stats().FileBytes)
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	// Flip a payload byte of the middle record: well-framed, bad CRC.
	corruptAt(t, dir, offs[1]+recHeaderSize+4)

	s2 := openT(t, dir, 0)
	st := s2.Stats()
	if st.CorruptRecords != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v; want 1 corrupt, 2 survivors", st)
	}
	if _, ok := s2.Get("k1"); ok {
		t.Error("CRC-corrupt record served")
	}
	for _, k := range []string{"k0", "k2"} {
		if _, ok := s2.Get(k); !ok {
			t.Errorf("%s lost despite being intact", k)
		}
	}
}

func TestOpenTruncatesTornTail(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("whole", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	good := s.Stats().FileBytes
	if err := s.Put("torn", bytes.Repeat([]byte{7}, 64)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Simulate a crash mid-append: cut the last record in half.
	path := filepath.Join(dir, DataFileName)
	if err := os.Truncate(path, good+9); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, 0)
	st := s2.Stats()
	if st.CorruptRecords != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v; want the torn record counted and dropped", st)
	}
	if st.FileBytes != good {
		t.Errorf("file not truncated back to the last good record: %d != %d", st.FileBytes, good)
	}
	// Appends after the repair must be readable.
	if err := s2.Put("after", []byte("repair")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := openT(t, dir, 0)
	if got, ok := s3.Get("after"); !ok || string(got) != "repair" {
		t.Errorf("append after tail repair unreadable (ok=%t, %q)", ok, got)
	}
}

func TestOpenSetsAsideAlienHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, DataFileName)
	if err := os.WriteFile(path, []byte("this is not an artifact store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, 0)
	if st := s.Stats(); st.CorruptRecords != 1 || st.Entries != 0 {
		t.Errorf("stats %+v; want the alien file counted once", st)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("alien file not set aside: %v", err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestGetReVerifiesCRC(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("k", bytes.Repeat([]byte{3}, 32)); err != nil {
		t.Fatal(err)
	}
	// Rot a byte underneath the open store.
	path := filepath.Join(dir, DataFileName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xEE}, headerSize+recHeaderSize+2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, ok := s.Get("k"); ok {
		t.Fatal("bit-rotted record served to the caller")
	}
	if st := s.Stats(); st.CorruptRecords != 1 || st.Entries != 0 {
		t.Errorf("stats %+v after bit rot", st)
	}
}

func TestExportImport(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	for i := 0; i < 5; i++ {
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 16)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Export(&buf); err != nil {
		t.Fatal(err)
	}

	dst := openT(t, t.TempDir(), 0)
	if err := dst.Put("k1", []byte("local")); err != nil {
		t.Fatal(err)
	}
	added, corrupt, err := dst.Import(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 || corrupt != 0 {
		t.Fatalf("import added %d (corrupt %d), want 5 clean", added, corrupt)
	}
	if st := dst.Stats(); st.Entries != 5 {
		t.Errorf("entries after import: %d", st.Entries)
	}
	got, ok := dst.Get("k1")
	if !ok || !bytes.Equal(got, bytes.Repeat([]byte{1}, 16)) {
		t.Errorf("imported record did not supersede the local one: %q", got)
	}

	// A stream with a bad header must be refused outright.
	if _, _, err := dst.Import(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("import accepted a non-store stream")
	}
	// A valid stream with a corrupt record imports the rest.
	raw := buf.Bytes()
	flip := make([]byte, len(raw))
	copy(flip, raw)
	flip[headerSize+recHeaderSize+3] ^= 0x55
	dst2 := openT(t, t.TempDir(), 0)
	added, corrupt, err = dst2.Import(bytes.NewReader(flip))
	if err != nil {
		t.Fatal(err)
	}
	if added != 4 || corrupt != 1 {
		t.Errorf("tolerant import: added %d corrupt %d, want 4/1", added, corrupt)
	}
}

func TestVerifyDropsRottenRecords(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	var offs []int64
	for i := 0; i < 4; i++ {
		offs = append(offs, s.Stats().FileBytes)
		if err := s.Put(fmt.Sprintf("k%d", i), bytes.Repeat([]byte{byte(i)}, 24)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(dir, DataFileName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xEE}, offs[2]+recHeaderSize+1); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ok, corrupt := s.Verify()
	if ok != 3 || corrupt != 1 {
		t.Errorf("Verify = %d ok, %d corrupt; want 3/1", ok, corrupt)
	}
	if st := s.Stats(); st.Entries != 3 {
		t.Errorf("entries after Verify: %d", st.Entries)
	}
}

func TestClosedStoreOperations(t *testing.T) {
	s := openT(t, t.TempDir(), 0)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
	if err := s.Put("k2", []byte("v")); err != ErrClosed {
		t.Errorf("Put on closed store: %v, want ErrClosed", err)
	}
	if _, ok := s.Get("k"); ok {
		t.Error("Get on closed store reported a hit")
	}
	if err := s.Compact(); err != ErrClosed {
		t.Errorf("Compact on closed store: %v, want ErrClosed", err)
	}
}

func TestOpenReadOnly(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	good := s.Stats().FileBytes
	if err := s.Put("torn", bytes.Repeat([]byte{9}, 64)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	path := filepath.Join(dir, DataFileName)
	// Tear the tail: read-only must report it but leave the bytes alone.
	if err := os.Truncate(path, good+5); err != nil {
		t.Fatal(err)
	}

	ro, err := OpenReadOnly(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if got, ok := ro.Get("k"); !ok || string(got) != "v" {
		t.Errorf("read-only Get = %q, %t", got, ok)
	}
	if st := ro.Stats(); st.CorruptRecords != 1 || st.Entries != 1 {
		t.Errorf("read-only stats %+v; want the torn tail counted, one survivor", st)
	}
	if err := ro.Put("k2", []byte("v")); err != ErrReadOnly {
		t.Errorf("read-only Put: %v, want ErrReadOnly", err)
	}
	if err := ro.Compact(); err != ErrReadOnly {
		t.Errorf("read-only Compact: %v, want ErrReadOnly", err)
	}
	if err := ro.Sync(); err != ErrReadOnly {
		t.Errorf("read-only Sync: %v, want ErrReadOnly", err)
	}
	// The torn tail must still be on disk, untruncated.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != good+5 {
		t.Errorf("read-only open changed the file: %d bytes, want %d", fi.Size(), good+5)
	}

	// A directory without a data file must be an error, and nothing may be
	// created as a side effect.
	empty := t.TempDir()
	if _, err := OpenReadOnly(empty); err == nil {
		t.Error("OpenReadOnly manufactured a store in an empty directory")
	}
	if _, err := os.Stat(filepath.Join(empty, DataFileName)); !os.IsNotExist(err) {
		t.Errorf("OpenReadOnly created %s: %v", DataFileName, err)
	}
	// An unreadable header is reported, not set aside.
	alien := t.TempDir()
	if err := os.WriteFile(filepath.Join(alien, DataFileName), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	ro2, err := OpenReadOnly(alien)
	if err != nil {
		t.Fatal(err)
	}
	defer ro2.Close()
	if st := ro2.Stats(); st.CorruptRecords != 1 || st.Entries != 0 {
		t.Errorf("read-only alien header: stats %+v", st)
	}
	if _, err := os.Stat(filepath.Join(alien, DataFileName+".corrupt")); !os.IsNotExist(err) {
		t.Error("read-only open set the alien file aside")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open("", 0); err == nil {
		t.Error("Open accepted an empty directory")
	}
	if _, err := Open(t.TempDir(), -1); err == nil {
		t.Error("Open accepted negative MaxBytes")
	}
}

func TestRejectedVersionMismatch(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, 0)
	s.Put("k", []byte("v"))
	s.Close()
	// Bump the on-disk version: a future-format file must be set aside, not
	// misread.
	path := filepath.Join(dir, DataFileName)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], FormatVersion+1)
	if _, err := f.WriteAt(v[:], 8); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s2 := openT(t, dir, 0)
	if st := s2.Stats(); st.Entries != 0 || st.CorruptRecords != 1 {
		t.Errorf("future-version file: stats %+v, want set-aside", st)
	}
}
