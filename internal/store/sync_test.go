package store

// Tests for the anti-entropy building blocks: key digests, filtered
// export/import, and — most importantly — Export racing concurrent Puts,
// which is exactly the interleaving the fleet's sync loop produces when one
// node streams records to a peer while its own compile traffic keeps
// appending. Run under -race.

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestKeyHashDeterministicAndSpread(t *testing.T) {
	if KeyHash("a") != KeyHash("a") {
		t.Fatal("KeyHash is not deterministic")
	}
	seen := make(map[uint64]string)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("%064x|exact|a=true|t=1000000000|s=0", i)
		h := KeyHash(k)
		if prev, dup := seen[h]; dup {
			t.Fatalf("KeyHash collision between %q and %q", prev, k)
		}
		seen[h] = k
	}
}

func TestHasDoesNotPerturbRecencyOrCounters(t *testing.T) {
	s := openT(t, t.TempDir(), 0)
	if err := s.Put("old", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("new", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if !s.Has("old") || s.Has("absent") {
		t.Fatal("Has answered membership wrongly")
	}
	st := s.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Has moved the lookup counters: %+v", st)
	}
	// "old" must still be the LRU tail: probing it with Has must not have
	// refreshed its recency the way Get would.
	entries := s.Entries()
	if entries[len(entries)-1].Key != "old" {
		t.Errorf("Has refreshed recency; LRU order now %v", entries)
	}
}

func TestKeyHashesMatchEntries(t *testing.T) {
	s := openT(t, t.TempDir(), 0)
	want := make(map[uint64]bool)
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := s.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		want[KeyHash(k)] = true
	}
	got := s.KeyHashes()
	if len(got) != len(want) {
		t.Fatalf("KeyHashes returned %d hashes, want %d", len(got), len(want))
	}
	for _, h := range got {
		if !want[h] {
			t.Fatalf("KeyHashes returned unexpected hash %x", h)
		}
	}
}

func TestExportFilteredStreamsOnlyKeptRecords(t *testing.T) {
	src := openT(t, t.TempDir(), 0)
	for i := 0; i < 10; i++ {
		if err := src.Put(fmt.Sprintf("k%02d", i), bytes.Repeat([]byte{byte(i)}, 8)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	keep := func(key string) bool { return key == "k03" || key == "k07" }
	if err := src.ExportFiltered(&buf, keep); err != nil {
		t.Fatal(err)
	}
	dst := openT(t, t.TempDir(), 0)
	added, corrupt, err := dst.Import(&buf)
	if err != nil || corrupt != 0 {
		t.Fatalf("Import: added=%d corrupt=%d err=%v", added, corrupt, err)
	}
	if added != 2 || !dst.Has("k03") || !dst.Has("k07") || dst.Has("k00") {
		t.Fatalf("filtered export delivered the wrong records: added=%d entries=%v", added, dst.Entries())
	}
}

func TestImportFilteredSkipsRejectedWithoutCountingCorrupt(t *testing.T) {
	src := openT(t, t.TempDir(), 0)
	for i := 0; i < 6; i++ {
		if err := src.Put(fmt.Sprintf("k%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst := openT(t, t.TempDir(), 0)
	if err := dst.Put("k1", []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	accept := func(key string, payload []byte) bool { return !dst.Has(key) }
	added, corrupt, err := dst.ImportFiltered(&buf, accept)
	if err != nil {
		t.Fatal(err)
	}
	if added != 5 || corrupt != 0 {
		t.Fatalf("ImportFiltered added=%d corrupt=%d, want 5 and 0", added, corrupt)
	}
	// The pre-existing record must keep its established payload: skip-existing
	// is the fleet's first-writer-wins rule.
	got, ok := dst.Get("k1")
	if !ok || !bytes.Equal(got, []byte{0xFF}) {
		t.Fatalf("ImportFiltered clobbered an existing record: %x", got)
	}
}

// TestExportRacesConcurrentPuts hammers Export (and the digest/Has helpers
// the sync loop calls between exports) from one side while writer goroutines
// append, supersede, and read on the other — the exact interleaving a
// serenityd node serving peer sync under live compile traffic sees. Every
// exported stream must stand alone: a fresh store importing it may see any
// prefix of the writes, but never a corrupt record and never a torn stream.
func TestExportRacesConcurrentPuts(t *testing.T) {
	src := openT(t, t.TempDir(), 0)
	const (
		writers       = 4
		putsPerWriter = 200
		exports       = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < putsPerWriter; i++ {
				// Half the keys collide across writers so Export also races
				// supersede bookkeeping, not just appends.
				key := fmt.Sprintf("k%d", (w*putsPerWriter+i)%(writers*putsPerWriter/2))
				if err := src.Put(key, bytes.Repeat([]byte{byte(i)}, 1+i%64)); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if i%16 == 0 {
					src.Get(key)
					src.Has(key)
				}
			}
		}(w)
	}
	importDir := t.TempDir()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < exports; i++ {
			var buf bytes.Buffer
			if err := src.Export(&buf); err != nil {
				t.Errorf("Export during writes: %v", err)
				return
			}
			src.KeyHashes()
			dst, err := Open(fmt.Sprintf("%s/imp%d", importDir, i), 0)
			if err != nil {
				t.Errorf("Open import target: %v", err)
				return
			}
			_, corrupt, err := dst.Import(bytes.NewReader(buf.Bytes()))
			if err != nil || corrupt != 0 {
				t.Errorf("export %d produced a damaged stream: corrupt=%d err=%v", i, corrupt, err)
			}
			dst.Close()
		}
	}()
	wg.Wait()
	<-done
	if st := src.Stats(); st.CorruptRecords != 0 {
		t.Errorf("source store counted %d corrupt records under the race", st.CorruptRecords)
	}
}
