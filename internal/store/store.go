// Package store implements the on-disk schedule artifact store: a
// content-addressed, crash-tolerant byte store that persists per-segment
// search results across process restarts, so a redeployed or recovered
// serenityd warm-starts from the corpus its predecessor paid for instead of
// re-running every DP under live traffic.
//
// # Layout
//
// A store is one directory holding a single append-only data file
// (segments.dat) in artifact format version 1:
//
//	header:  8-byte magic "SRNSTOR\x01" | uint32 LE format version
//	record:  uint32 LE record magic | uint16 LE key length |
//	         uint32 LE payload length | key | payload |
//	         uint32 LE CRC-32 (IEEE) over key||payload
//
// Keys are the caller's content addresses (serenity uses
// Segment.Fingerprint()+"|"+MemoKey(), both golden-pinned); payloads are
// opaque bytes — the store never interprets them. Updates append a new record
// for the key; the previous record becomes dead file space until Compact.
//
// # Durability and corruption
//
// Appends go straight to the data file; rewrites (Compact, and salvaging a
// store whose header is unreadable) build a temp file in the same directory
// and atomically rename it over segments.dat, so a crash at any moment leaves
// either the old file or the new one, never a half-rewritten hybrid. Open
// scans the file record by record: a record with a bad checksum is skipped, a
// torn append (truncated tail, bad framing) truncates the file back to the
// last well-formed record, and an unreadable header sets the whole file aside
// as segments.dat.corrupt and starts fresh. Every skipped record increments
// the corrupt-records counter; no input, however mangled, makes Open panic.
//
// # Bounds
//
// The store is size-bounded: when the live records exceed MaxBytes the least
// recently used entries are evicted from the index (their file space becomes
// dead until the next Compact). Get refreshes recency; Compact rewrites only
// live records, preserving recency order across a reopen.
package store

import (
	"bufio"
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FormatVersion is the artifact format this package reads and writes. Bump it
// only with a migration plan: Open rejects files written by other versions
// (they are set aside, not misread).
const FormatVersion = 1

// DataFileName is the store's single data file inside its directory.
const DataFileName = "segments.dat"

// fileMagic opens every data file; the trailing byte doubles as a
// format-era discriminator so truncating the version word cannot alias an
// old-era file into a new one.
var fileMagic = [8]byte{'S', 'R', 'N', 'S', 'T', 'O', 'R', 1}

// recMagic frames every record ("SREC" little-endian).
const recMagic uint32 = 0x43455253

const (
	headerSize    = 12 // fileMagic + uint32 version
	recHeaderSize = 10 // recMagic + keyLen + payloadLen
	recTrailerLen = 4  // CRC-32

	// MaxKeyLen and MaxPayloadLen bound one record; Open treats larger
	// claimed lengths as corruption rather than allocating them.
	MaxKeyLen     = 1 << 12
	MaxPayloadLen = 1 << 26
)

// ErrTooLarge is returned by Put when a single record cannot fit the store's
// byte bound at all.
var ErrTooLarge = errors.New("store: record exceeds the store's MaxBytes")

// syncWrites gates the fsync calls on rewrite and close. Always true outside
// tests; the fuzz harness disables it because per-exec fsync latency would
// reduce fuzzing to running the seed corpus.
var syncWrites = true

func maybeSync(f *os.File) error {
	if !syncWrites {
		return nil
	}
	return f.Sync()
}

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("store: closed")

// KeyHash is the 64-bit digest of one record key used by the fleet's
// anti-entropy exchange: peers compare sets of key hashes instead of shipping
// full key lists, so the hash must be identical on every node. FNV-1a with a
// splitmix64 finalizer — the finalizer matters because raw FNV of the short
// structured keys serenity uses (hex fingerprint + strategy discriminator)
// clusters in the low bits.
func KeyHash(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ErrReadOnly is returned by mutating operations on a store opened with
// OpenReadOnly.
var ErrReadOnly = errors.New("store: opened read-only")

// Stats is a snapshot of the store's counters. CorruptRecords counts records
// dropped for failing validation — at Open, on a Get re-check, during Compact
// or Import — over the store's lifetime.
type Stats struct {
	Hits           int64
	Misses         int64
	Writes         int64
	Evictions      int64
	CorruptRecords int64
	// LiveBytes is the file space occupied by indexed (retrievable) records,
	// headers included; DeadBytes the space held by superseded, evicted, or
	// corrupt records that Compact would reclaim; FileBytes the data file's
	// current size.
	LiveBytes int64
	DeadBytes int64
	FileBytes int64
	Entries   int
}

// Entry describes one live record, for listings.
type Entry struct {
	Key        string
	PayloadLen int
	// Size is the record's total on-disk footprint, framing included.
	Size int64
}

// rec locates one live record in the data file.
type rec struct {
	key        string
	off        int64 // record start
	size       int64 // total bytes including framing
	payloadLen int
}

// Store is the on-disk artifact store. It is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	dir      string
	path     string
	f        *os.File
	size     int64 // current append offset
	maxBytes int64 // 0 = unbounded

	ll    *list.List // front = most recently used; values are *rec
	items map[string]*list.Element

	liveBytes int64
	deadBytes int64

	hits, misses, writes, evictions, corrupt int64
	closed                                   bool
	readOnly                                 bool
}

// Open opens (creating if needed) the store in dir, bounded to maxBytes of
// live records (0 = unbounded). The data file is scanned and validated record
// by record; corrupt or truncated records are skipped and counted, never
// fatal. The returned store must be closed to release the file handle.
//
// Open may repair the file in place (truncating torn tails, setting aside an
// unreadable file), so it must not race a live writer on the same directory;
// use OpenReadOnly for inspection tooling.
func Open(dir string, maxBytes int64) (*Store, error) {
	return open(dir, maxBytes, false)
}

// OpenReadOnly opens an existing store without modifying anything on disk:
// no file creation, no tail truncation, no setting-aside of corrupt files —
// corruption is still skipped and counted, the bytes are just left alone. A
// missing data file is an error (inspecting a mistyped directory must not
// manufacture an empty store). Mutating operations (Put, Compact, Import,
// Sync) return ErrReadOnly. Safe to run against a directory a live serenityd
// is appending to: at worst the scan sees a mid-append tail and counts it as
// one corrupt record.
func OpenReadOnly(dir string) (*Store, error) {
	return open(dir, 0, true)
}

func open(dir string, maxBytes int64, readOnly bool) (*Store, error) {
	if dir == "" {
		return nil, errors.New("store: empty directory")
	}
	if maxBytes < 0 {
		return nil, fmt.Errorf("store: negative MaxBytes %d", maxBytes)
	}
	if !readOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	s := &Store{
		dir:      dir,
		path:     filepath.Join(dir, DataFileName),
		maxBytes: maxBytes,
		readOnly: readOnly,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
	}
	if err := s.load(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.evictLocked()
	s.mu.Unlock()
	return s, nil
}

// load opens the data file and rebuilds the index, handling every corruption
// mode without failing: only genuine I/O errors propagate.
func (s *Store) load() error {
	flags, perm := os.O_RDWR|os.O_CREATE, os.FileMode(0o644)
	if s.readOnly {
		flags, perm = os.O_RDONLY, 0
	}
	f, err := os.OpenFile(s.path, flags, perm)
	if err != nil {
		return err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return err
	}
	if fi.Size() == 0 {
		if s.readOnly {
			// An empty file holds nothing to index and nothing to write.
			s.f = f
			return nil
		}
		if err := writeHeader(f); err != nil {
			f.Close()
			return err
		}
		s.f, s.size = f, headerSize
		return nil
	}

	var hdr [headerSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil || !validHeader(hdr) {
		// The header itself is unreadable: nothing in the file can be
		// trusted. Read-only inspection leaves the evidence in place; a
		// writable store sets it aside for post-mortem and starts fresh.
		s.corrupt++
		if s.readOnly {
			s.f = f
			return nil
		}
		f.Close()
		if err := os.Rename(s.path, s.path+".corrupt"); err != nil {
			return fmt.Errorf("store: setting aside corrupt data file: %w", err)
		}
		return s.createFresh()
	}

	_, corrupt, dead, truncated := s.scanFile(f, fi.Size())
	s.corrupt += corrupt
	s.deadBytes += dead
	if truncated < fi.Size() && !s.readOnly {
		// A torn append (or unframeable garbage) follows the last good
		// record; cut it off so future appends restore a clean stream.
		if err := f.Truncate(truncated); err != nil {
			f.Close()
			return err
		}
	}
	s.f, s.size = f, truncated
	return nil
}

// createFresh atomically replaces the data file with an empty one (header
// only) via temp-file+rename.
func (s *Store) createFresh() error {
	tmp, err := os.CreateTemp(s.dir, DataFileName+".tmp-*")
	if err != nil {
		return err
	}
	if err := writeHeader(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := maybeSync(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	s.f, s.size = tmp, headerSize
	return nil
}

func writeHeader(w io.Writer) error {
	var hdr [headerSize]byte
	copy(hdr[:8], fileMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	_, err := w.Write(hdr[:])
	return err
}

func validHeader(hdr [headerSize]byte) bool {
	return [8]byte(hdr[:8]) == fileMagic &&
		binary.LittleEndian.Uint32(hdr[8:]) == FormatVersion
}

// scanFile indexes every well-formed record from the already-positioned file
// (reader just past the header). It returns the number of live records, the
// corrupt records skipped, dead bytes from CRC-failed and superseded records,
// and the offset of the first byte that could not be framed (the truncation
// point; == fileSize when the whole file framed cleanly).
func (s *Store) scanFile(f *os.File, fileSize int64) (good, corrupt, dead int64, truncated int64) {
	br := bufio.NewReaderSize(f, 1<<16)
	off := int64(headerSize)
	for {
		key, payload, recSize, ok, fatal := readRecord(br, fileSize-off)
		if fatal {
			// Unframeable bytes: everything from off onward is lost. Count
			// the torn tail as one corrupt record if any bytes remain.
			if off < fileSize {
				corrupt++
			}
			return good, corrupt, dead, off
		}
		if !ok {
			// Well-framed but CRC-failed: skip it, keep scanning.
			corrupt++
			dead += recSize
			off += recSize
			continue
		}
		if el, exists := s.items[key]; exists {
			// A later append supersedes the earlier record.
			old := el.Value.(*rec)
			dead += old.size
			s.liveBytes -= old.size
			s.ll.Remove(el)
			delete(s.items, key)
		}
		r := &rec{key: key, off: off, size: recSize, payloadLen: len(payload)}
		s.items[key] = s.ll.PushFront(r)
		s.liveBytes += recSize
		good++
		off += recSize
		if off == fileSize {
			return good, corrupt, dead, off
		}
	}
}

// readRecord decodes one record from br, which has at most remain bytes
// left. ok=false,fatal=false means a well-framed record failed its CRC (skip
// it; recSize is valid). fatal=true means framing itself is broken —
// truncated tail, bad magic, or an implausible length — and scanning must
// stop.
func readRecord(br *bufio.Reader, remain int64) (key string, payload []byte, recSize int64, ok, fatal bool) {
	if remain == 0 {
		return "", nil, 0, false, true
	}
	var hdr [recHeaderSize]byte
	if remain < recHeaderSize {
		return "", nil, 0, false, true
	}
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", nil, 0, false, true
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != recMagic {
		return "", nil, 0, false, true
	}
	keyLen := int(binary.LittleEndian.Uint16(hdr[4:]))
	payloadLen := int(binary.LittleEndian.Uint32(hdr[6:]))
	if keyLen == 0 || keyLen > MaxKeyLen || payloadLen > MaxPayloadLen {
		return "", nil, 0, false, true
	}
	recSize = recHeaderSize + int64(keyLen) + int64(payloadLen) + recTrailerLen
	if recSize > remain {
		return "", nil, 0, false, true
	}
	buf := make([]byte, keyLen+payloadLen+recTrailerLen)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", nil, 0, false, true
	}
	body := buf[:keyLen+payloadLen]
	want := binary.LittleEndian.Uint32(buf[keyLen+payloadLen:])
	if crc32.ChecksumIEEE(body) != want {
		return "", nil, recSize, false, false
	}
	return string(body[:keyLen]), body[keyLen:], recSize, true, false
}

// encodeRecord renders one record into a fresh buffer.
func encodeRecord(key string, payload []byte) []byte {
	buf := make([]byte, recHeaderSize+len(key)+len(payload)+recTrailerLen)
	binary.LittleEndian.PutUint32(buf[0:], recMagic)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(key)))
	binary.LittleEndian.PutUint32(buf[6:], uint32(len(payload)))
	copy(buf[recHeaderSize:], key)
	copy(buf[recHeaderSize+len(key):], payload)
	crc := crc32.ChecksumIEEE(buf[recHeaderSize : recHeaderSize+len(key)+len(payload)])
	binary.LittleEndian.PutUint32(buf[recHeaderSize+len(key)+len(payload):], crc)
	return buf
}

// Get returns the payload stored for key, refreshing its recency. The
// record's CRC is re-verified on every read: silent bit rot surfaces as a
// counted corrupt record and a miss, never as bad bytes handed to the caller.
// The returned slice is the caller's to keep.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	el, exists := s.items[key]
	if !exists {
		s.misses++
		return nil, false
	}
	r := el.Value.(*rec)
	buf := make([]byte, r.size)
	if _, err := s.f.ReadAt(buf, r.off); err != nil {
		s.dropLocked(el, r)
		s.corrupt++
		s.misses++
		return nil, false
	}
	body := buf[recHeaderSize : recHeaderSize+len(r.key)+r.payloadLen]
	want := binary.LittleEndian.Uint32(buf[len(buf)-recTrailerLen:])
	if crc32.ChecksumIEEE(body) != want {
		s.dropLocked(el, r)
		s.corrupt++
		s.misses++
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.hits++
	payload := make([]byte, r.payloadLen)
	copy(payload, body[len(r.key):])
	return payload, true
}

// Put appends a record for key, superseding any previous one, and evicts
// least-recently-used entries if the live set now exceeds the byte bound.
func (s *Store) Put(key string, payload []byte) error {
	if key == "" || len(key) > MaxKeyLen {
		return fmt.Errorf("store: key length %d out of range (1..%d)", len(key), MaxKeyLen)
	}
	if len(payload) > MaxPayloadLen {
		return fmt.Errorf("store: payload length %d exceeds %d", len(payload), MaxPayloadLen)
	}
	buf := encodeRecord(key, payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly {
		return ErrReadOnly
	}
	if s.maxBytes > 0 && int64(len(buf)) > s.maxBytes {
		return ErrTooLarge
	}
	if _, err := s.f.WriteAt(buf, s.size); err != nil {
		// A torn append leaves unframeable bytes at the tail; cut them off so
		// the in-memory offset and the file agree again.
		_ = s.f.Truncate(s.size)
		return err
	}
	r := &rec{key: key, off: s.size, size: int64(len(buf)), payloadLen: len(payload)}
	s.size += r.size
	if el, exists := s.items[key]; exists {
		old := el.Value.(*rec)
		s.deadBytes += old.size
		s.liveBytes -= old.size
		s.ll.Remove(el)
		delete(s.items, key)
	}
	s.items[key] = s.ll.PushFront(r)
	s.liveBytes += r.size
	s.writes++
	s.evictLocked()
	return nil
}

// Has reports whether key is currently retrievable, without touching recency
// or the hit/miss counters — membership probes (replication receivers, the
// anti-entropy import filter) must not perturb the LRU order lookups see.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	_, exists := s.items[key]
	return exists
}

// KeyHashes returns the KeyHash of every live key, unordered. This is the
// compact digest two peers exchange during anti-entropy: comparing hash sets
// costs 8 bytes per record instead of shipping every key, and the requester
// then pulls only the records whose hashes it lacks.
func (s *Store) KeyHashes() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.items))
	for key := range s.items {
		out = append(out, KeyHash(key))
	}
	return out
}

// Delete removes key from the live set (its file space becomes dead until
// Compact) and reports whether it was present.
func (s *Store) Delete(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, exists := s.items[key]
	if !exists {
		return false
	}
	s.dropLocked(el, el.Value.(*rec))
	return true
}

// dropLocked removes one entry from the index, accounting its space as dead.
func (s *Store) dropLocked(el *list.Element, r *rec) {
	s.ll.Remove(el)
	delete(s.items, r.key)
	s.liveBytes -= r.size
	s.deadBytes += r.size
}

// evictLocked enforces the byte bound on live records.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 {
		return
	}
	for s.liveBytes > s.maxBytes && s.ll.Len() > 0 {
		el := s.ll.Back()
		s.dropLocked(el, el.Value.(*rec))
		s.evictions++
	}
}

// Compact rewrites the data file with only the live records, reclaiming dead
// space from superseded, evicted, and corrupt records. The new file is built
// in a temp file and atomically renamed over the old one; a crash mid-compact
// leaves the previous file intact. Recency order survives the rewrite.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly {
		return ErrReadOnly
	}
	tmp, err := os.CreateTemp(s.dir, DataFileName+".tmp-*")
	if err != nil {
		return err
	}
	cleanup := func() {
		tmp.Close()
		os.Remove(tmp.Name())
	}
	w := bufio.NewWriterSize(tmp, 1<<16)
	if err := writeHeader(w); err != nil {
		cleanup()
		return err
	}
	// Oldest-first, so a future Open (which scans in file order, refreshing
	// recency as it goes) reconstructs the same LRU order.
	type placed struct {
		r   *rec
		off int64
		sz  int64
	}
	var kept []placed
	off := int64(headerSize)
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		r := el.Value.(*rec)
		buf := make([]byte, r.size)
		if _, err := s.f.ReadAt(buf, r.off); err != nil {
			s.corrupt++
			continue
		}
		body := buf[recHeaderSize : recHeaderSize+len(r.key)+r.payloadLen]
		want := binary.LittleEndian.Uint32(buf[len(buf)-recTrailerLen:])
		if crc32.ChecksumIEEE(body) != want {
			s.corrupt++
			continue
		}
		if _, err := w.Write(buf); err != nil {
			cleanup()
			return err
		}
		kept = append(kept, placed{r: r, off: off, sz: r.size})
		off += r.size
	}
	if err := w.Flush(); err != nil {
		cleanup()
		return err
	}
	if err := maybeSync(tmp); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		cleanup()
		return err
	}
	// The rename made tmp the store's data file; swap handles and rebuild
	// the index against the new offsets.
	s.f.Close()
	s.f = tmp
	s.size = off
	s.ll = list.New()
	s.items = make(map[string]*list.Element, len(kept))
	s.liveBytes, s.deadBytes = 0, 0
	for _, p := range kept { // kept is oldest-first; PushFront restores MRU order
		p.r.off, p.r.size = p.off, p.sz
		s.items[p.r.key] = s.ll.PushFront(p.r)
		s.liveBytes += p.sz
	}
	return nil
}

// Sync flushes the data file to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.readOnly {
		return ErrReadOnly
	}
	return s.f.Sync()
}

// Close syncs and releases the data file. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if !s.readOnly {
		err = maybeSync(s.f)
	}
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:           s.hits,
		Misses:         s.misses,
		Writes:         s.writes,
		Evictions:      s.evictions,
		CorruptRecords: s.corrupt,
		LiveBytes:      s.liveBytes,
		DeadBytes:      s.deadBytes,
		FileBytes:      s.size,
		Entries:        s.ll.Len(),
	}
}

// Entries lists the live records, most recently used first.
func (s *Store) Entries() []Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, 0, s.ll.Len())
	for el := s.ll.Front(); el != nil; el = el.Next() {
		r := el.Value.(*rec)
		out = append(out, Entry{Key: r.key, PayloadLen: r.payloadLen, Size: r.size})
	}
	return out
}

// Verify re-reads every live record and checks its CRC, dropping (and
// counting) any that fail. It returns the number that verified and the number
// dropped.
func (s *Store) Verify() (ok, corrupt int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var next *list.Element
	for el := s.ll.Front(); el != nil; el = next {
		next = el.Next()
		r := el.Value.(*rec)
		buf := make([]byte, r.size)
		if _, err := s.f.ReadAt(buf, r.off); err == nil {
			body := buf[recHeaderSize : recHeaderSize+len(r.key)+r.payloadLen]
			if crc32.ChecksumIEEE(body) == binary.LittleEndian.Uint32(buf[len(buf)-recTrailerLen:]) {
				ok++
				continue
			}
		}
		s.dropLocked(el, r)
		s.corrupt++
		corrupt++
	}
	return ok, corrupt
}

// Export streams the live records to w in the data-file format (header
// included), least recently used first, so importing the stream reproduces
// the recency order. The result is a valid store file on its own — fleet
// pre-warming is copying one node's export into another node's store.
func (s *Store) Export(w io.Writer) error {
	return s.ExportFiltered(w, nil)
}

// ExportFiltered is Export restricted to the live records whose key keep
// accepts (nil keeps everything). The fleet's anti-entropy responder uses it
// to stream exactly the records a peer's digest reported missing, in the same
// self-contained store-file format Export writes.
func (s *Store) ExportFiltered(w io.Writer, keep func(key string) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeHeader(bw); err != nil {
		return err
	}
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		r := el.Value.(*rec)
		if keep != nil && !keep(r.key) {
			continue
		}
		buf := make([]byte, r.size)
		if _, err := s.f.ReadAt(buf, r.off); err != nil {
			s.corrupt++
			continue
		}
		body := buf[recHeaderSize : recHeaderSize+len(r.key)+r.payloadLen]
		if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(buf[len(buf)-recTrailerLen:]) {
			s.corrupt++
			continue
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Import merges records from r (a store data file or Export stream) into the
// store through the normal Put path — imported records supersede existing
// keys and respect the byte bound. Corrupt records are skipped and counted; a
// torn tail stops the import without failing it. Only a missing or alien
// header makes Import return an error.
func (s *Store) Import(r io.Reader) (added int, corrupt int64, err error) {
	return s.ImportFiltered(r, nil)
}

// ImportFiltered is Import with a per-record acceptance gate: records accept
// rejects are skipped without being counted as corrupt (nil accepts
// everything). The fleet's anti-entropy receiver uses it to take only records
// it is missing and whose payloads decode, so a convergence pull can never
// clobber an established local artifact with a byte-different twin.
func (s *Store) ImportFiltered(r io.Reader, accept func(key string, payload []byte) bool) (added int, corrupt int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("store: import stream too short for a header: %w", err)
	}
	if !validHeader(hdr) {
		return 0, 0, errors.New("store: import stream is not an artifact store (bad magic or format version)")
	}
	for {
		key, payload, _, ok, fatal := readRecord(br, MaxPayloadLen+MaxKeyLen+recHeaderSize+recTrailerLen)
		if fatal {
			break
		}
		if !ok {
			corrupt++
			continue
		}
		if accept != nil && !accept(key, payload) {
			continue
		}
		if err := s.Put(key, payload); err != nil {
			if errors.Is(err, ErrTooLarge) {
				continue // one oversized record should not abort the merge
			}
			return added, corrupt, err
		}
		added++
	}
	s.mu.Lock()
	s.corrupt += corrupt
	s.mu.Unlock()
	return added, corrupt, nil
}
