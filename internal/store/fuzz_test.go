package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreOpen is the corruption-robustness contract: whatever bytes sit in
// segments.dat, Open must return a working store — skipping or setting aside
// anything unreadable — and every subsequent operation must behave, never
// panic. Seeds cover a valid file, truncations, bit flips, and hostile
// length fields.
func FuzzStoreOpen(f *testing.F) {
	// A well-formed file with three records.
	valid := validStoreFile(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-3])             // torn tail
	f.Add(valid[:headerSize])               // header only
	f.Add([]byte{})                         // empty
	f.Add([]byte("not a store"))            // alien
	f.Add(bytes.Repeat([]byte{0xFF}, 1024)) // noise
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+recHeaderSize+1] ^= 0x40
	f.Add(flipped) // CRC failure mid-file
	// Hostile lengths: a record header claiming a huge payload.
	hostile := append([]byte(nil), valid[:headerSize]...)
	hostile = append(hostile, encodeRecord("k", []byte("v"))...)
	hostile[headerSize+6] = 0xFF
	hostile[headerSize+7] = 0xFF
	hostile[headerSize+8] = 0xFF
	f.Add(hostile)

	f.Fuzz(func(t *testing.T, data []byte) {
		syncWrites = false // fsync latency would reduce fuzzing to the seeds
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, DataFileName), data, 0o644); err != nil {
			t.Skip()
		}
		s, err := Open(dir, 1<<20)
		if err != nil {
			// Only genuine I/O errors may surface; corruption must not.
			t.Fatalf("Open failed on corrupt input: %v", err)
		}
		defer s.Close()
		// Every surviving entry must be fully readable.
		for _, e := range s.Entries() {
			if p, ok := s.Get(e.Key); ok && len(p) != e.PayloadLen {
				t.Fatalf("entry %q: payload %d bytes, index says %d", e.Key, len(p), e.PayloadLen)
			}
		}
		if err := s.Put("fuzz-probe", []byte("alive")); err != nil {
			t.Fatalf("Put after corrupt open: %v", err)
		}
		if err := s.Compact(); err != nil {
			t.Fatalf("Compact after corrupt open: %v", err)
		}
		if got, ok := s.Get("fuzz-probe"); !ok || string(got) != "alive" {
			t.Fatalf("probe lost across compact (ok=%t)", ok)
		}
		s.Verify()
	})
}

// FuzzStoreReopen round-trips random workloads through close/reopen: every
// record written must come back bit-identical with zero corruption counted.
func FuzzStoreReopen(f *testing.F) {
	f.Add([]byte("seed"), 3)
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7}, 9)
	f.Fuzz(func(t *testing.T, blob []byte, n int) {
		syncWrites = false // fsync latency would reduce fuzzing to the seeds
		if n < 1 || n > 32 {
			t.Skip()
		}
		dir := t.TempDir()
		s, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string][]byte{}
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%d", i%max(1, n-2)) // force some supersedes
			lo := i * len(blob) / n
			payload := append([]byte(nil), blob[lo:]...)
			if err := s.Put(key, payload); err != nil {
				t.Fatal(err)
			}
			want[key] = payload
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer s2.Close()
		if st := s2.Stats(); st.CorruptRecords != 0 || st.Entries != len(want) {
			t.Fatalf("reopen stats %+v, want %d clean entries", st, len(want))
		}
		for k, v := range want {
			got, ok := s2.Get(k)
			if !ok || !bytes.Equal(got, v) {
				t.Fatalf("key %q: got %x ok=%t, want %x", k, got, ok, v)
			}
		}
	})
}

func validStoreFile(f *testing.F) []byte {
	f.Helper()
	dir := f.TempDir()
	s, err := Open(dir, 0)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("seed-%d", i), bytes.Repeat([]byte{byte(i + 1)}, 20)); err != nil {
			f.Fatal(err)
		}
	}
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, DataFileName))
	if err != nil {
		f.Fatal(err)
	}
	return data
}
