package partition

import (
	"math/rand"
	"testing"

	"github.com/serenity-ml/serenity/internal/dp"
	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

func bytesShape(b int64) graph.Shape { return graph.Shape{int(b / 4)} }

// hourglass builds cells of parallel branches joined by single waist nodes:
//
//	in -> [branch x width] -> join -> [branch x width] -> join -> ...
func hourglass(cells, width int) *graph.Graph {
	g := graph.New("hourglass")
	cur := g.AddNode(graph.OpInput, "in", bytesShape(64))
	for c := 0; c < cells; c++ {
		branches := make([]int, width)
		for w := 0; w < width; w++ {
			h := g.AddNode(graph.OpReLU, "", bytesShape(int64(32+16*w)), cur)
			branches[w] = g.AddNode(graph.OpReLU, "", bytesShape(32), h)
		}
		cur = g.AddNode(graph.OpAdd, "", bytesShape(64), branches...)
	}
	for _, n := range g.Nodes {
		if n.Name == "" {
			n.Name = n.Op.String()
		}
	}
	return g
}

func TestCutNodesOnHourglass(t *testing.T) {
	g := hourglass(3, 3)
	cuts, err := CutNodes(g)
	if err != nil {
		t.Fatal(err)
	}
	// Cuts: the two inner join nodes. The input is a degenerate (sourceless)
	// cut and the final join is the graph's last node; both are excluded.
	if len(cuts) != 2 {
		t.Fatalf("cuts = %v, want 2 inner joins", cuts)
	}
	for _, c := range cuts {
		if g.Nodes[c].Op != graph.OpAdd {
			t.Errorf("cut %d is %v, want the Add joins", c, g.Nodes[c].Op)
		}
	}
}

func TestCutNodesRejectsSkippingEdges(t *testing.T) {
	// A -> B -> C plus A -> C: B is comparable with everything but edge A->C
	// skips it, so B must not be a cut.
	g := graph.New("skip")
	a := g.AddNode(graph.OpInput, "A", bytesShape(8))
	b := g.AddNode(graph.OpReLU, "B", bytesShape(8), a)
	g.AddNode(graph.OpAdd, "C", bytesShape(8), b, a)
	cuts, err := CutNodes(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cuts {
		if c == b {
			t.Fatalf("B reported as cut despite skipping edge: %v", cuts)
		}
	}
	_ = a
	if len(cuts) != 0 {
		t.Errorf("cuts = %v, want none (A is a sourceless cut)", cuts)
	}
}

func TestCutNodesNoCutInParallelGraph(t *testing.T) {
	// Two independent chains: nothing is comparable across chains.
	g := graph.New("par")
	a := g.AddNode(graph.OpInput, "a", bytesShape(8))
	g.AddNode(graph.OpReLU, "a2", bytesShape(8), a)
	c := g.AddNode(graph.OpInput, "c", bytesShape(8))
	g.AddNode(graph.OpReLU, "c2", bytesShape(8), c)
	cuts, err := CutNodes(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) != 0 {
		t.Errorf("cuts = %v, want none", cuts)
	}
}

func TestSplitSegmentSizes(t *testing.T) {
	g := hourglass(3, 3) // 1 + 3*(6+1) = 22 nodes
	p, err := Split(g)
	if err != nil {
		t.Fatal(err)
	}
	sizes := p.Sizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != g.NumNodes() {
		t.Fatalf("segment sizes %v sum to %d, want %d", sizes, total, g.NumNodes())
	}
	if len(p.Segments) < 3 {
		t.Fatalf("expected >=3 segments, got %d (sizes %v)", len(p.Segments), sizes)
	}
	for i, seg := range p.Segments {
		if err := seg.G.Validate(); err != nil {
			t.Fatalf("segment %d invalid: %v", i, err)
		}
		if i > 0 && seg.VirtualInput != 0 {
			t.Errorf("segment %d: virtual input should be node 0, got %d", i, seg.VirtualInput)
		}
	}
}

func TestSplitSingleSegmentWhenNoCuts(t *testing.T) {
	g := graph.New("par")
	a := g.AddNode(graph.OpInput, "a", bytesShape(8))
	g.AddNode(graph.OpReLU, "a2", bytesShape(8), a)
	c := g.AddNode(graph.OpInput, "c", bytesShape(8))
	g.AddNode(graph.OpReLU, "c2", bytesShape(8), c)
	p, err := Split(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) != 1 {
		t.Fatalf("segments = %d, want 1", len(p.Segments))
	}
	if p.Segments[0].G.NumNodes() != g.NumNodes() {
		t.Error("single segment should mirror the graph")
	}
}

// TestDivideAndConquerMatchesWholeGraphDP is the combine-stage optimality
// claim (Figure 7): concatenating per-segment optimal schedules equals the
// whole-graph optimum.
func TestDivideAndConquerMatchesWholeGraphDP(t *testing.T) {
	for _, cfg := range []struct{ cells, width int }{{2, 2}, {3, 2}, {2, 3}} {
		g := hourglass(cfg.cells, cfg.width)
		m := sched.NewMemModel(g)
		whole := dp.Optimal(m)
		if whole.Flag != dp.FlagSolution {
			t.Fatal("whole-graph DP failed")
		}

		p, err := Split(g)
		if err != nil {
			t.Fatal(err)
		}
		orders := make([]sched.Schedule, len(p.Segments))
		for i, seg := range p.Segments {
			r := dp.Optimal(sched.NewMemModel(seg.G))
			if r.Flag != dp.FlagSolution {
				t.Fatalf("segment %d DP failed", i)
			}
			orders[i] = r.Order
		}
		combined, err := p.Combine(orders)
		if err != nil {
			t.Fatal(err)
		}
		peak, err := m.Peak(combined)
		if err != nil {
			t.Fatalf("combined schedule invalid: %v", err)
		}
		if peak != whole.Peak {
			t.Errorf("cells=%d width=%d: combined peak %d != whole-graph %d",
				cfg.cells, cfg.width, peak, whole.Peak)
		}
	}
}

func TestCombineErrors(t *testing.T) {
	g := hourglass(2, 2)
	p, err := Split(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Combine(nil); err == nil {
		t.Error("Combine accepted wrong order count")
	}
	orders := make([]sched.Schedule, len(p.Segments))
	for i := range orders {
		orders[i] = sched.Schedule{0}
	}
	if _, err := p.Combine(orders); err == nil {
		t.Error("Combine accepted wrong-length segment orders")
	}
}

// TestSegmentBoundaryAccounting verifies the virtual boundary input models
// the live cut tensor: segment peaks never understate the combined profile.
func TestSegmentBoundaryAccounting(t *testing.T) {
	g := hourglass(3, 3)
	m := sched.NewMemModel(g)
	p, err := Split(g)
	if err != nil {
		t.Fatal(err)
	}
	var maxSegPeak int64
	orders := make([]sched.Schedule, len(p.Segments))
	for i, seg := range p.Segments {
		r := dp.Optimal(sched.NewMemModel(seg.G))
		orders[i] = r.Order
		if r.Peak > maxSegPeak {
			maxSegPeak = r.Peak
		}
	}
	combined, err := p.Combine(orders)
	if err != nil {
		t.Fatal(err)
	}
	peak, err := m.Peak(combined)
	if err != nil {
		t.Fatal(err)
	}
	if peak != maxSegPeak {
		t.Errorf("combined peak %d != max segment peak %d", peak, maxSegPeak)
	}
}

// TestSegmentFingerprintIdentifiesRepeatedCells: in an hourglass of
// identical cells, every interior segment (same wiring, same virtual
// boundary input) must hash identically — the property the cross-request
// segment memo keys on — while the entry segment (real input, no boundary)
// must not collide with them.
func TestSegmentFingerprintIdentifiesRepeatedCells(t *testing.T) {
	p, err := Split(hourglass(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Segments) < 4 {
		t.Fatalf("got %d segments, want >= 4", len(p.Segments))
	}
	interior := p.Segments[1].Fingerprint()
	for i := 2; i < len(p.Segments); i++ {
		if got := p.Segments[i].Fingerprint(); got != interior {
			t.Errorf("segment %d fingerprint %s != segment 1's %s; identical cells must share a memo key", i, got, interior)
		}
	}
	if first := p.Segments[0].Fingerprint(); first == interior {
		t.Error("entry segment (no virtual input) collides with interior segments")
	}
}

// TestSegmentFingerprintBoundarySignature: two segments with byte-identical
// graphs but different boundary liveness (virtual input vs. none) must hash
// differently, and the boundary signature must be the ONLY thing separating
// them from the plain graph fingerprint.
func TestSegmentFingerprintBoundarySignature(t *testing.T) {
	g := graph.New("seg")
	a := g.AddNode(graph.OpInput, "a", bytesShape(16))
	g.AddNode(graph.OpReLU, "b", bytesShape(16), a)

	noBoundary := &Segment{G: g, VirtualInput: -1}
	boundary := &Segment{G: g, VirtualInput: 0}
	if noBoundary.Fingerprint() == boundary.Fingerprint() {
		t.Error("boundary liveness signature not part of the fingerprint")
	}
	if noBoundary.Fingerprint() != (&Segment{G: g, VirtualInput: -1}).Fingerprint() {
		t.Error("fingerprint not deterministic")
	}
}

// TestSegmentFingerprintIgnoresNames mirrors graph.Fingerprint's contract:
// node names cannot affect any schedule, so they must not fragment the memo.
func TestSegmentFingerprintIgnoresNames(t *testing.T) {
	build := func(name string) *graph.Graph {
		g := graph.New("n")
		a := g.AddNode(graph.OpInput, name, bytesShape(16))
		g.AddNode(graph.OpReLU, name+"2", bytesShape(16), a)
		return g
	}
	s1 := &Segment{G: build("x"), VirtualInput: 0}
	s2 := &Segment{G: build("totally-different"), VirtualInput: 0}
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Error("renamed segment changed fingerprint")
	}
	g3 := build("x")
	g3.Nodes[1].Op = graph.OpAdd
	s3 := &Segment{G: g3, VirtualInput: 0}
	if s1.Fingerprint() == s3.Fingerprint() {
		t.Error("structural change did not change fingerprint")
	}
}

func TestSplitPreservesRandomHourglasses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		// Random cells chained by waist nodes.
		g := graph.New("rand-hourglass")
		cur := g.AddNode(graph.OpInput, "in", bytesShape(32))
		for c := 0; c < 3; c++ {
			nb := 2 + rng.Intn(3)
			var branches []int
			for w := 0; w < nb; w++ {
				n := g.AddNode(graph.OpReLU, "x", bytesShape(int64(4*(1+rng.Intn(16)))), cur)
				if rng.Intn(2) == 0 {
					n = g.AddNode(graph.OpReLU, "y", bytesShape(int64(4*(1+rng.Intn(16)))), n)
				}
				branches = append(branches, n)
			}
			cur = g.AddNode(graph.OpAdd, "join", bytesShape(32), branches...)
		}
		m := sched.NewMemModel(g)
		whole := dp.Optimal(m)

		p, err := Split(g)
		if err != nil {
			t.Fatal(err)
		}
		orders := make([]sched.Schedule, len(p.Segments))
		for i, seg := range p.Segments {
			orders[i] = dp.Optimal(sched.NewMemModel(seg.G)).Order
		}
		combined, err := p.Combine(orders)
		if err != nil {
			t.Fatal(err)
		}
		if got := m.MustPeak(combined); got != whole.Peak {
			t.Fatalf("trial %d: combined %d != whole %d", trial, got, whole.Peak)
		}
	}
}
