// Package partition implements SERENITY's divide-and-conquer stage
// (Section 3.2, Figure 7): irregularly wired networks from NAS and random
// generators are hourglass-shaped — stacks of cells joined by single
// tensors — so the graph can be split at those waist nodes, each sub-graph
// scheduled independently, and the sub-schedules concatenated into a
// globally optimal schedule.
//
// A node v is a *cut* when (a) every other node is an ancestor or a
// descendant of v, and (b) no edge skips v: every ancestor's successors are
// themselves ancestors of v (or v). Under (a)+(b) the only tensor live at
// the moment v completes is v's own output, so: every topological order of
// the full graph is exactly a concatenation of per-segment topological
// orders, and the footprint of the combined schedule within segment k is
// independent of the choices made in other segments. Minimizing each
// segment independently therefore minimizes the global peak (the argument
// of Wilken et al. 2000 instantiated for tensor liveness).
package partition

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"github.com/serenity-ml/serenity/internal/graph"
	"github.com/serenity-ml/serenity/internal/sched"
)

// Segment is one sub-problem: a standalone graph whose node 0 may be a
// virtual Input standing for the producing cut of the previous segment.
type Segment struct {
	G *graph.Graph
	// ToOriginal maps segment node IDs to original-graph node IDs;
	// virtual boundary inputs map to the original cut node ID but are
	// flagged in VirtualInput.
	ToOriginal   []int
	VirtualInput int // segment node ID of the boundary input, or -1
}

// Fingerprint returns a canonical hash of the segment as a scheduling
// sub-problem: the segment graph's structural fingerprint (operation, dtype,
// shape, wiring, and scheduling-relevant attributes of every node, in ID
// order — names excluded, exactly as graph.Fingerprint) extended with the
// boundary liveness signature: which node, if any, is the virtual input
// standing for the previous cut's live output tensor. Two segments with equal
// fingerprints pose identical search problems, so a schedule computed for one
// is valid — order, peak, and optimality proof included — for the other. This
// is the key of the cross-request segment memo (serenity.SegmentMemo).
func (s *Segment) Fingerprint() string {
	h := sha256.New()
	h.Write([]byte(s.G.Fingerprint()))
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(s.VirtualInput)))
	h.Write(buf[:])
	return hex.EncodeToString(h.Sum(nil))
}

// Partition is the result of Split.
type Partition struct {
	Original *graph.Graph
	Cuts     []int // cut node IDs in topological order (excludes the final sink unless it is a cut)
	Segments []*Segment
}

// CutNodes returns the graph's cut nodes in topological order. The final
// node of the graph is excluded (cutting after the last node is vacuous).
func CutNodes(g *graph.Graph) ([]int, error) {
	n := g.NumNodes()
	reach, err := g.Reachability()
	if err != nil {
		return nil, err
	}
	anc, err := g.Ancestors()
	if err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	var cuts []int
	for _, v := range order[:max(0, n-1)] {
		if anc[v].Count() == 0 {
			// A sourceless cut (the graph's single entry) would only carve
			// off a one-node segment; skip it so segments align with cells.
			continue
		}
		if anc[v].Count()+reach[v].Count() != n-1 {
			continue // (a) fails: some node is incomparable with v
		}
		ok := true
		anc[v].ForEach(func(u int) {
			if !ok {
				return
			}
			for _, s := range g.Nodes[u].Succs {
				if s != v && !anc[v].Has(s) {
					ok = false // (b) fails: edge u->s skips v
					return
				}
			}
		})
		if ok {
			cuts = append(cuts, v)
		}
	}
	return cuts, nil
}

// Split partitions g at its cut nodes. A graph with no cuts yields a single
// segment identical to g.
func Split(g *graph.Graph) (*Partition, error) {
	cuts, err := CutNodes(g)
	if err != nil {
		return nil, err
	}
	anc, err := g.Ancestors()
	if err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}

	p := &Partition{Original: g, Cuts: cuts}
	// segmentOf[v] = index of the segment containing v: the number of cuts
	// that are proper ancestors of v... plus care for the cuts themselves,
	// which terminate their own segment.
	segmentOf := make([]int, g.NumNodes())
	for _, v := range order {
		seg := 0
		for _, c := range cuts {
			if c != v && anc[v].Has(c) {
				seg++
			}
		}
		segmentOf[v] = seg
	}
	numSegs := len(cuts) + 1
	// The last cut may be the final node; then the trailing segment is empty.
	counts := make([]int, numSegs)
	for _, v := range order {
		counts[segmentOf[v]]++
	}
	for numSegs > 1 && counts[numSegs-1] == 0 {
		numSegs--
	}

	for s := 0; s < numSegs; s++ {
		seg := &Segment{G: graph.New(fmt.Sprintf("%s/seg%d", g.Name, s)), VirtualInput: -1}
		remap := map[int]int{}
		if s > 0 {
			// Virtual input standing for the previous cut's output storage.
			prev := g.Nodes[cuts[s-1]]
			vid := seg.G.AddNode(graph.OpInput, prev.Name+"#boundary", prev.Shape)
			seg.G.Nodes[vid].DType = prev.DType
			seg.ToOriginal = append(seg.ToOriginal, prev.ID)
			seg.VirtualInput = vid
			remap[prev.ID] = vid
		}
		for _, v := range order {
			if segmentOf[v] != s {
				continue
			}
			orig := g.Nodes[v]
			var preds []int
			for _, pr := range orig.Preds {
				mapped, ok := remap[pr]
				if !ok {
					return nil, fmt.Errorf("partition: node %d pred %d crosses segment %d unexpectedly", v, pr, s)
				}
				preds = append(preds, mapped)
			}
			nid := seg.G.AddNode(orig.Op, orig.Name, orig.Shape, preds...)
			nn := seg.G.Nodes[nid]
			nn.DType = orig.DType
			nn.Attr = orig.Attr
			if orig.Attr.AliasOf >= 0 {
				if a, ok := remap[orig.Attr.AliasOf]; ok {
					nn.Attr.AliasOf = a
				} else {
					return nil, fmt.Errorf("partition: node %d aliases %d across segment boundary", v, orig.Attr.AliasOf)
				}
			}
			seg.ToOriginal = append(seg.ToOriginal, v)
			remap[v] = nid
		}
		p.Segments = append(p.Segments, seg)
	}
	return p, nil
}

// Combine maps per-segment schedules back to original node IDs and
// concatenates them (Figure 7's combine stage), dropping virtual boundary
// inputs. orders[i] must be a valid schedule of Segments[i].G.
func (p *Partition) Combine(orders []sched.Schedule) (sched.Schedule, error) {
	if len(orders) != len(p.Segments) {
		return nil, fmt.Errorf("partition: %d orders for %d segments", len(orders), len(p.Segments))
	}
	var out sched.Schedule
	for i, seg := range p.Segments {
		if len(orders[i]) != seg.G.NumNodes() {
			return nil, fmt.Errorf("partition: segment %d order has %d entries, want %d", i, len(orders[i]), seg.G.NumNodes())
		}
		for _, v := range orders[i] {
			if v == seg.VirtualInput {
				continue
			}
			out = append(out, seg.ToOriginal[v])
		}
	}
	if len(out) != p.Original.NumNodes() {
		return nil, fmt.Errorf("partition: combined schedule has %d nodes, want %d", len(out), p.Original.NumNodes())
	}
	return out, nil
}

// Sizes returns the node count of each segment, as reported in Table 2
// (e.g. 62={21,19,22}).
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.Segments))
	for i, s := range p.Segments {
		n := s.G.NumNodes()
		if s.VirtualInput >= 0 {
			n-- // virtual boundary inputs are bookkeeping, not graph nodes
		}
		out[i] = n
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
