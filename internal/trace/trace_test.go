package trace

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundtrip(t *testing.T) {
	tr := New(Options{})
	root := tr.StartTrace("req")
	tp := root.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") {
		t.Fatalf("traceparent %q is not a 55-char 00- header", tp)
	}
	tid, sid, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent rejected its own output %q", tp)
	}
	if tid != root.TraceID() {
		t.Fatalf("trace ID roundtrip: got %s want %s", tid, root.TraceID())
	}
	if sid.IsZero() {
		t.Fatal("span ID roundtrip produced zero")
	}
	for _, bad := range []string{
		"",
		"00-short",
		"01-" + tp[3:], // unknown version
		strings.Replace(tp, "-", "_", 1),
		tp + "x",
		"00-" + strings.Repeat("g", 32) + tp[35:], // non-hex trace ID
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent accepted %q", bad)
		}
	}
}

func TestNilSafety(t *testing.T) {
	// A nil tracer and nil handles must be inert everywhere the untraced
	// path touches them — this is what keeps tracing-off overhead at zero.
	var tr *Tracer
	if tr.Sample() {
		t.Fatal("nil tracer sampled")
	}
	h := tr.StartTrace("x")
	if h != nil {
		t.Fatal("nil tracer returned a live handle")
	}
	child := h.Child("y")
	if child != nil {
		t.Fatal("nil handle spawned a child")
	}
	h.Annotate(Str("k", "v"))
	h.End()
	h.EndErr(errors.New("boom"))
	if tp := h.Traceparent(); tp != "" {
		t.Fatalf("nil handle produced traceparent %q", tp)
	}
	if !h.TraceID().IsZero() {
		t.Fatal("nil handle produced a trace ID")
	}
	if td := tr.Finish(h, Outcome{}); td != nil {
		t.Fatal("nil tracer retained a trace")
	}
	tr.Incident("x", nil)
	tr.RecordLinked(Link{}, "x", time.Now(), 0, nil)
	if tr.RecordRemote("", "x", time.Now(), 0) {
		t.Fatal("nil tracer recorded a remote span")
	}
	if tr.Traces() != nil || tr.Incidents() != nil || tr.Get("00000000000000000000000000000001") != nil {
		t.Fatal("nil tracer returned data")
	}
}

func TestContextPropagation(t *testing.T) {
	tr := New(Options{})
	root := tr.StartTrace("req")
	ctx := ContextWith(t.Context(), root)
	if got := FromContext(ctx); got != root {
		t.Fatal("FromContext did not return the stored handle")
	}
	if got := FromContext(t.Context()); got != nil {
		t.Fatal("FromContext invented a handle on an empty context")
	}
	// Nil handle: context unchanged, so downstream sees no trace.
	if ctx2 := ContextWith(t.Context(), nil); FromContext(ctx2) != nil {
		t.Fatal("ContextWith(nil) stored something")
	}
	l := LinkFromContext(ctx)
	if l.TraceID != root.TraceID() {
		t.Fatal("LinkFromContext lost the trace ID")
	}
	if l2 := LinkFromContext(t.Context()); !l2.TraceID.IsZero() {
		t.Fatal("LinkFromContext invented a link")
	}
}

func TestTailSamplingKeepsDegradedAndErred(t *testing.T) {
	tr := New(Options{RingSize: 8})
	// Healthy fast traces: mostly sampled out. The 1-in-16 residual keep
	// guarantees at least 2 of 32 survive; the slow-percentile keep may add
	// a few more depending on timer jitter, but never a majority.
	kept := 0
	for i := 0; i < 32; i++ {
		h := tr.StartTrace("healthy")
		if tr.Finish(h, Outcome{Status: 200}) != nil {
			kept++
		}
	}
	if kept < 2 || kept > 16 {
		t.Fatalf("tail sampling retained %d of 32 healthy traces, want a thinned pulse (2..16)", kept)
	}
	// Degraded, erred, 4xx/5xx, and forced traces always survive.
	cases := []Outcome{
		{Status: 200, Degraded: true},
		{Status: 200, Err: errors.New("boom")},
		{Status: 503},
		{Status: 200, Force: true},
	}
	for i, out := range cases {
		h := tr.StartTrace("kept")
		td := tr.Finish(h, out)
		if td == nil {
			t.Fatalf("case %d: tail-sampling dropped a must-keep trace (%+v)", i, out)
		}
		if tr.Get(td.ID.String()) == nil {
			t.Fatalf("case %d: retained trace not retrievable by ID", i)
		}
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{RingSize: 4})
	var ids []string
	for i := 0; i < 10; i++ {
		h := tr.StartTrace("req")
		td := tr.Finish(h, Outcome{Force: true})
		ids = append(ids, td.ID.String())
	}
	if got := len(tr.Traces()); got != 4 {
		t.Fatalf("ring holds %d traces, want 4", got)
	}
	if tr.Get(ids[0]) != nil {
		t.Fatal("oldest trace survived eviction")
	}
	if tr.Get(ids[9]) == nil {
		t.Fatal("newest trace was evicted")
	}
}

func TestSpanTree(t *testing.T) {
	tr := New(Options{})
	root := tr.StartTrace("req", Str("graph", "g"))
	search := root.Child("stage.search")
	seg := search.Child("segment", Int("index", 0))
	seg.Annotate(Str("memo_tier", "fresh"))
	seg.End()
	search.End()
	td := tr.Finish(root, Outcome{Force: true})
	roots := Tree(td.Start, td.Spans)
	if len(roots) != 1 || roots[0].Name != "req" {
		t.Fatalf("tree roots = %v, want single req", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "stage.search" {
		t.Fatalf("req children = %+v", roots[0].Children)
	}
	segNode := roots[0].Children[0].Children[0]
	if segNode.Name != "segment" || segNode.Attrs["memo_tier"] != "fresh" || segNode.Attrs["index"] != "0" {
		t.Fatalf("segment node = %+v", segNode)
	}
}

func TestRemoteFragmentsMergeIntoTrace(t *testing.T) {
	tr := New(Options{})
	remote := New(Options{})

	root := tr.StartTrace("req")
	fetch := root.Child("memo.peer")
	tp := fetch.Traceparent()

	// The owner node records its serve span under the caller's trace ID.
	if !remote.RecordRemote(tp, "peer.serve.segment", time.Now(), time.Millisecond, Str("key", "k")) {
		t.Fatal("RecordRemote rejected a valid traceparent")
	}
	// On the owner, the fragment is listed and retrievable by the caller's ID.
	frags := remote.Traces()
	if len(frags) != 1 || !frags[0].Remote || frags[0].Root != "(remote)" {
		t.Fatalf("owner fragment listing = %+v", frags)
	}
	if frags[0].ID != root.TraceID() {
		t.Fatal("fragment not keyed by the caller's trace ID")
	}
	got := remote.Get(root.TraceID().String())
	if got == nil || len(got.Spans) != 1 || got.Spans[0].Name != "peer.serve.segment" || !got.Spans[0].Remote {
		t.Fatalf("owner fragment = %+v", got)
	}

	// On the caller, a remote span recorded locally (e.g. loopback testing)
	// merges into the finished trace.
	tr.RecordRemote(tp, "peer.serve.segment", time.Now(), time.Millisecond)
	fetch.End()
	td := tr.Finish(root, Outcome{Force: true})
	found := false
	for _, sp := range td.Spans {
		if sp.Name == "peer.serve.segment" && sp.Remote {
			found = true
		}
	}
	if !found {
		t.Fatalf("remote span did not merge into the finished trace: %+v", td.Spans)
	}
}

func TestLinkedSpansAttachAfterFinish(t *testing.T) {
	tr := New(Options{})
	root := tr.StartTrace("req")
	l := root.Link()
	td := tr.Finish(root, Outcome{Force: true})

	// A refinement finishing after the request records against the link.
	tr.RecordLinked(l, "refine.run", time.Now(), time.Millisecond, nil, Str("key", "k"))
	got := tr.Get(td.ID.String())
	found := false
	for _, sp := range got.Spans {
		if sp.Name == "refine.run" {
			found = true
		}
	}
	if !found {
		t.Fatalf("linked span missing from retained trace: %+v", got.Spans)
	}
}

func TestFlightRecorderIncidents(t *testing.T) {
	tr := New(Options{FlightSize: 4, MaxIncidents: 2})
	for i := 0; i < 6; i++ {
		h := tr.StartTrace("req")
		h.Child("stage.search").End()
		tr.Finish(h, Outcome{Status: 200})
	}
	cur := tr.StartTrace("victim")
	cur.Child("stage.rewrite").End()
	tr.Incident("fallback", cur)
	reports := tr.Incidents()
	if len(reports) != 1 {
		t.Fatalf("got %d incidents, want 1", len(reports))
	}
	rep := reports[0]
	if rep.Reason != "fallback" || rep.TraceID != cur.TraceID().String() {
		t.Fatalf("incident = %+v", rep)
	}
	// Flight ring (4) + the victim's own spans so far (rewrite child; the
	// unfinished root is not yet recorded).
	if len(rep.Spans) < 5 {
		t.Fatalf("incident snapshot has %d spans, want >= 5", len(rep.Spans))
	}
	// The incident list is bounded: newest MaxIncidents survive.
	tr.Incident("http_429", nil)
	tr.Incident("http_503", nil)
	reports = tr.Incidents()
	if len(reports) != 2 || reports[0].Reason != "http_429" || reports[1].Reason != "http_503" {
		t.Fatalf("bounded incidents = %+v", reports)
	}
}

func TestSampleEvery(t *testing.T) {
	tr := New(Options{SampleEvery: 4})
	hits := 0
	for i := 0; i < 16; i++ {
		if tr.Sample() {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("SampleEvery=4 sampled %d of 16, want 4", hits)
	}
	off := New(Options{})
	for i := 0; i < 8; i++ {
		if off.Sample() {
			t.Fatal("SampleEvery=0 sampled ambiently")
		}
	}
}

func TestSpanCapDrops(t *testing.T) {
	tr := New(Options{})
	root := tr.StartTrace("req")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		root.Child("s").End()
	}
	td := tr.Finish(root, Outcome{Force: true})
	if len(td.Spans) > maxSpansPerTrace {
		t.Fatalf("trace holds %d spans, cap is %d", len(td.Spans), maxSpansPerTrace)
	}
	if td.Dropped == 0 {
		t.Fatal("span overflow not reported in Dropped")
	}
}
