// Package trace is a zero-dependency span subsystem for per-request
// attribution. One compile request produces one trace: a tree of spans
// covering admission wait, every pipeline stage, each segment's walk down
// the memo hierarchy, the governed DP search itself, and the background
// refinement that later upgrades a degraded answer. Traces propagate across
// the fleet through a W3C-traceparent-compatible header so a peer-served
// segment shows up as a child span recorded on the owning node, stitched to
// the caller's tree by trace ID.
//
// The package is built for a hot path that almost never traces: every
// method on *SpanHandle is nil-safe, FromContext on an untraced context
// allocates nothing, and call sites guard attribute construction behind a
// nil check so the disabled path stays zero-allocation.
package trace

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// TraceID identifies one request's trace across every node it touches.
type TraceID [16]byte

// SpanID identifies one span within a trace.
type SpanID [8]byte

func (t TraceID) String() string { return hex.EncodeToString(t[:]) }
func (s SpanID) String() string  { return hex.EncodeToString(s[:]) }

func (t TraceID) IsZero() bool { return t == TraceID{} }
func (s SpanID) IsZero() bool  { return s == SpanID{} }

// MarshalJSON renders IDs as lowercase hex strings, the same form the
// traceparent header and the /debug/traces API use.
func (t TraceID) MarshalJSON() ([]byte, error) { return []byte(`"` + t.String() + `"`), nil }
func (s SpanID) MarshalJSON() ([]byte, error)  { return []byte(`"` + s.String() + `"`), nil }

// UnmarshalJSON accepts the hex-string form MarshalJSON produces, so
// /debug/traces responses round-trip through typed clients.
func (t *TraceID) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return errors.New("trace id must be a JSON string")
	}
	id, err := ParseTraceID(string(b[1 : len(b)-1]))
	if err != nil {
		return err
	}
	*t = id
	return nil
}

func (s *SpanID) UnmarshalJSON(b []byte) error {
	if len(b) != 18 || b[0] != '"' || b[17] != '"' {
		return errors.New("span id must be a 16-hex-digit JSON string")
	}
	raw, err := hex.DecodeString(string(b[1:17]))
	if err != nil {
		return err
	}
	copy(s[:], raw)
	return nil
}

func newTraceID() TraceID {
	var t TraceID
	a, b := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		t[i] = byte(a >> (8 * i))
		t[8+i] = byte(b >> (8 * i))
	}
	if t.IsZero() {
		t[0] = 1 // the all-zero ID is invalid per the traceparent spec
	}
	return t
}

func newSpanID() SpanID {
	var s SpanID
	a := rand.Uint64()
	for i := 0; i < 8; i++ {
		s[i] = byte(a >> (8 * i))
	}
	if s.IsZero() {
		s[0] = 1
	}
	return s
}

// ParseTraceID parses the 32-hex-digit form produced by TraceID.String.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace id must be 32 hex digits, got %d", len(s))
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return t, err
	}
	copy(t[:], b)
	if t.IsZero() {
		return t, errors.New("all-zero trace id is invalid")
	}
	return t, nil
}

// Attr is one key/value annotation on a span. Values are strings on the
// wire; use the typed constructors so numeric attributes format uniformly.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Str builds a string attribute.
func Str(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: strconv.FormatBool(v)} }

// Span is one completed span: a named interval inside a trace, parented to
// the span that was live when it started. Remote marks spans recorded on a
// node other than the one that started the trace (fleet child spans).
type Span struct {
	TraceID  TraceID       `json:"trace_id"`
	SpanID   SpanID        `json:"span_id"`
	ParentID SpanID        `json:"parent_id"`
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
	Err      string        `json:"error,omitempty"`
	Remote   bool          `json:"remote,omitempty"`
}

// maxSpansPerTrace bounds one trace's span collection. A pathological graph
// with thousands of segments must not let one traced request hold megabytes
// of spans; past the cap, spans are counted (Dropped) rather than kept.
const maxSpansPerTrace = 512

// Recorder collects the finished spans of one trace. Spans end on whatever
// goroutine ran the work (segment workers, refinement workers, HTTP
// handlers), so the collection is mutex-guarded.
type Recorder struct {
	mu      sync.Mutex
	traceID TraceID
	start   time.Time
	spans   []Span
	dropped int
}

func (r *Recorder) record(sp Span) {
	r.mu.Lock()
	if len(r.spans) >= maxSpansPerTrace {
		r.dropped++
	} else {
		r.spans = append(r.spans, sp)
	}
	r.mu.Unlock()
}

// snapshot copies the finished spans out under the lock.
func (r *Recorder) snapshot() ([]Span, int) {
	r.mu.Lock()
	spans := make([]Span, len(r.spans))
	copy(spans, r.spans)
	dropped := r.dropped
	r.mu.Unlock()
	return spans, dropped
}

// SpanHandle is a live (unfinished) span. The nil handle is valid and every
// method on it is a no-op, so call sites instrument unconditionally and the
// untraced path costs one nil check per site.
type SpanHandle struct {
	rec    *Recorder
	spanID SpanID
	parent SpanID
	name   string
	start  time.Time

	mu    sync.Mutex
	attrs []Attr
	ended bool
}

func newSpan(rec *Recorder, parent SpanID, name string, attrs []Attr) *SpanHandle {
	return &SpanHandle{
		rec:    rec,
		spanID: newSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
		attrs:  attrs,
	}
}

// Child starts a span under h. Returns nil when h is nil.
func (h *SpanHandle) Child(name string, attrs ...Attr) *SpanHandle {
	if h == nil {
		return nil
	}
	return newSpan(h.rec, h.spanID, name, attrs)
}

// Annotate appends attributes to a live span. No-op on nil or ended spans.
func (h *SpanHandle) Annotate(attrs ...Attr) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if !h.ended {
		h.attrs = append(h.attrs, attrs...)
	}
	h.mu.Unlock()
}

// End finishes the span and records it. Idempotent: only the first End (or
// EndErr) takes effect.
func (h *SpanHandle) End() { h.end("") }

// EndErr finishes the span, recording err's message when non-nil.
func (h *SpanHandle) EndErr(err error) {
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	h.end(msg)
}

func (h *SpanHandle) end(errMsg string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	if h.ended {
		h.mu.Unlock()
		return
	}
	h.ended = true
	sp := Span{
		TraceID:  h.rec.traceID,
		SpanID:   h.spanID,
		ParentID: h.parent,
		Name:     h.name,
		Start:    h.start,
		Duration: time.Since(h.start),
		Attrs:    h.attrs,
		Err:      errMsg,
	}
	h.mu.Unlock()
	h.rec.record(sp)
}

// TraceID reports the trace this span belongs to (zero for nil handles).
func (h *SpanHandle) TraceID() TraceID {
	if h == nil {
		return TraceID{}
	}
	return h.rec.traceID
}

// Traceparent renders the header value that propagates this span's context
// to a peer: 00-<trace-id>-<span-id>-01. Empty for nil handles.
func (h *SpanHandle) Traceparent() string {
	if h == nil {
		return ""
	}
	return "00-" + h.rec.traceID.String() + "-" + h.spanID.String() + "-01"
}

// Link names a span so later, out-of-band work (background refinement) can
// attach its own spans to the originating trace.
type Link struct {
	TraceID TraceID
	SpanID  SpanID
}

// Link returns a durable reference to this span. Zero for nil handles.
func (h *SpanHandle) Link() Link {
	if h == nil {
		return Link{}
	}
	return Link{TraceID: h.rec.traceID, SpanID: h.spanID}
}

// ParseTraceparent parses a 00-<32hex>-<16hex>-<2hex> header. Only version
// 00 is accepted; the flags byte is ignored (this package always samples
// what it propagates).
func ParseTraceparent(v string) (TraceID, SpanID, bool) {
	var tid TraceID
	var sid SpanID
	if len(v) != 55 || v[0] != '0' || v[1] != '0' || v[2] != '-' || v[35] != '-' || v[52] != '-' {
		return tid, sid, false
	}
	tb, err := hex.DecodeString(v[3:35])
	if err != nil {
		return tid, sid, false
	}
	sb, err := hex.DecodeString(v[36:52])
	if err != nil {
		return tid, sid, false
	}
	copy(tid[:], tb)
	copy(sid[:], sb)
	if tid.IsZero() || sid.IsZero() {
		return tid, sid, false
	}
	return tid, sid, true
}

// ctxKey is the context key for the live span. A zero-size type keeps
// ContextWith/FromContext allocation-free for the key itself.
type ctxKey struct{}

// ContextWith returns ctx carrying h as the live span. When h is nil, ctx
// is returned unchanged so untraced requests never grow their context
// chain.
func ContextWith(ctx context.Context, h *SpanHandle) context.Context {
	if h == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, h)
}

// FromContext returns the live span carried by ctx, or nil. The miss path
// does not allocate.
func FromContext(ctx context.Context) *SpanHandle {
	h, _ := ctx.Value(ctxKey{}).(*SpanHandle)
	return h
}

// LinkFromContext returns a durable reference to ctx's live span (zero Link
// when untraced).
func LinkFromContext(ctx context.Context) Link {
	return FromContext(ctx).Link()
}
