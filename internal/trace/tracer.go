package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TraceData is one retained trace: the root request's metadata plus every
// span collected for its ID, including Remote spans recorded by fleet
// handlers and linked spans appended later by background refinement.
type TraceData struct {
	ID       TraceID       `json:"trace_id"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Status   int           `json:"status,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	Err      string        `json:"error,omitempty"`
	Spans    []Span        `json:"spans"`
	Dropped  int           `json:"dropped_spans,omitempty"`
	// fragment marks a TraceData holding only remote/linked spans whose
	// root lives on another node (or was not retained here).
	fragment bool
}

// Outcome describes how a traced request ended; Finish uses it for the
// tail-sampling retention decision.
type Outcome struct {
	Status   int
	Degraded bool
	Err      error
	// Force retains the trace unconditionally (?debug=trace requests — the
	// caller was explicitly promised the trace would be retrievable).
	Force bool
}

// IncidentReport is a flight-recorder snapshot taken when the server issued
// a 429/503 or a search fell back: the most recent finished spans across
// all requests, plus (when the triggering request was traced) that
// request's own spans so far.
type IncidentReport struct {
	Reason  string    `json:"reason"`
	Time    time.Time `json:"time"`
	TraceID string    `json:"trace_id,omitempty"`
	Spans   []Span    `json:"spans"`
}

// Options sizes a Tracer.
type Options struct {
	// RingSize bounds retained traces (default 256).
	RingSize int
	// FlightSize bounds the flight recorder's span ring (default 128).
	FlightSize int
	// SampleEvery ambiently traces one request in N (0 disables ambient
	// sampling; ?debug=trace requests are always traced).
	SampleEvery int
	// MaxIncidents bounds retained incident reports (default 8).
	MaxIncidents int
}

// Tracer owns trace lifecycle on one node: it starts root spans, retains
// finished traces with tail-sampling, collects remote and linked span
// fragments by trace ID, and keeps the flight recorder.
type Tracer struct {
	sampleEvery int64
	counter     atomic.Int64

	mu           sync.Mutex
	ringSize     int
	order        []TraceID // retention order, oldest first
	byID         map[TraceID]*TraceData
	frags        map[TraceID]*TraceData
	fragOrder    []TraceID
	durs         [64]time.Duration // reservoir of recent durations for the slow-percentile keep
	durN         int
	tick         int64 // finished-trace counter for the 1-in-16 residual keep
	flight       []Span
	flightNext   int
	flightFull   bool
	incidents    []IncidentReport
	maxIncidents int
}

const (
	defaultRingSize   = 256
	defaultFlight     = 128
	defaultIncidents  = 8
	maxFragments      = 256
	residualKeepEvery = 16
)

// New builds a Tracer. The zero Options value yields a 256-trace ring, a
// 128-span flight recorder, and no ambient sampling.
func New(opts Options) *Tracer {
	if opts.RingSize <= 0 {
		opts.RingSize = defaultRingSize
	}
	if opts.FlightSize <= 0 {
		opts.FlightSize = defaultFlight
	}
	if opts.MaxIncidents <= 0 {
		opts.MaxIncidents = defaultIncidents
	}
	return &Tracer{
		sampleEvery:  int64(opts.SampleEvery),
		ringSize:     opts.RingSize,
		byID:         make(map[TraceID]*TraceData),
		frags:        make(map[TraceID]*TraceData),
		flight:       make([]Span, opts.FlightSize),
		maxIncidents: opts.MaxIncidents,
	}
}

// Sample reports whether the next ambient (non-?debug=trace) request should
// be traced: one in SampleEvery, counter-based so load tests sample
// deterministically. Nil-safe; a nil Tracer never samples.
func (t *Tracer) Sample() bool {
	if t == nil || t.sampleEvery <= 0 {
		return false
	}
	return t.counter.Add(1)%t.sampleEvery == 0
}

// StartTrace opens a new trace and returns its root span. Nil-safe: a nil
// Tracer returns a nil handle, which every downstream site tolerates.
func (t *Tracer) StartTrace(name string, attrs ...Attr) *SpanHandle {
	if t == nil {
		return nil
	}
	rec := &Recorder{traceID: newTraceID(), start: time.Now()}
	return newSpan(rec, SpanID{}, name, attrs)
}

// Finish ends the root span and decides retention. Tail-sampling always
// keeps forced, degraded, and erred traces plus anything slower than the
// recent ~p90; the rest are thinned to one in sixteen so steady-state
// healthy traffic still leaves a pulse in /debug/traces. The finished
// trace's spans also feed the flight recorder. Returns the retained trace
// (merged with any fleet/refinement fragments) or nil when sampled out.
func (t *Tracer) Finish(h *SpanHandle, out Outcome) *TraceData {
	if t == nil || h == nil {
		return nil
	}
	var errMsg string
	if out.Err != nil {
		errMsg = out.Err.Error()
	}
	h.end(errMsg)
	spans, dropped := h.rec.snapshot()
	dur := time.Duration(0)
	for i := range spans {
		if spans[i].SpanID == h.spanID {
			dur = spans[i].Duration
			break
		}
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	t.feedFlightLocked(spans)
	keep := out.Force || out.Degraded || out.Err != nil || out.Status >= 400
	if !keep {
		keep = dur >= t.slowBarLocked()
	}
	t.durs[t.durN%len(t.durs)] = dur
	t.durN++
	if !keep {
		t.tick++
		keep = t.tick%residualKeepEvery == 0
	}
	if !keep {
		return nil
	}
	td := &TraceData{
		ID:       h.rec.traceID,
		Root:     h.name,
		Start:    h.rec.start,
		Duration: dur,
		Status:   out.Status,
		Degraded: out.Degraded,
		Err:      errMsg,
		Spans:    spans,
		Dropped:  dropped,
	}
	// Fleet child spans or refinement spans may have landed before the root
	// finished; fold the fragment in.
	if frag, ok := t.frags[td.ID]; ok {
		td.Spans = append(td.Spans, frag.Spans...)
		td.Dropped += frag.Dropped
		t.dropFragLocked(td.ID)
	}
	t.retainLocked(td)
	// The caller reads the result outside the lock while late fragments
	// (refinement, fleet serves) may still append to the retained trace;
	// hand out a snapshot, not the live object.
	cp := *td
	cp.Spans = append([]Span(nil), td.Spans...)
	return &cp
}

// slowBarLocked estimates the recent p90 duration from the reservoir.
func (t *Tracer) slowBarLocked() time.Duration {
	n := t.durN
	if n > len(t.durs) {
		n = len(t.durs)
	}
	if n < 8 {
		return 1 << 62 // not enough signal; nothing qualifies as "slow" yet
	}
	buf := make([]time.Duration, n)
	copy(buf, t.durs[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	return buf[n*9/10]
}

func (t *Tracer) retainLocked(td *TraceData) {
	if old, ok := t.byID[td.ID]; ok {
		// A fragment for this ID was promoted earlier (remote spans arriving
		// before the local Finish); merge rather than duplicate.
		td.Spans = append(td.Spans, old.Spans...)
		td.Dropped += old.Dropped
		for i, id := range t.order {
			if id == td.ID {
				t.order = append(t.order[:i], t.order[i+1:]...)
				break
			}
		}
	}
	t.byID[td.ID] = td
	t.order = append(t.order, td.ID)
	for len(t.order) > t.ringSize {
		evict := t.order[0]
		t.order = t.order[1:]
		delete(t.byID, evict)
	}
}

func (t *Tracer) feedFlightLocked(spans []Span) {
	for i := range spans {
		t.flight[t.flightNext] = spans[i]
		t.flightNext++
		if t.flightNext == len(t.flight) {
			t.flightNext = 0
			t.flightFull = true
		}
	}
}

func (t *Tracer) dropFragLocked(id TraceID) {
	delete(t.frags, id)
	for i, fid := range t.fragOrder {
		if fid == id {
			t.fragOrder = append(t.fragOrder[:i], t.fragOrder[i+1:]...)
			break
		}
	}
}

// fragLocked finds or creates the fragment collector for id.
func (t *Tracer) fragLocked(id TraceID) *TraceData {
	if td, ok := t.byID[id]; ok {
		return td
	}
	if td, ok := t.frags[id]; ok {
		return td
	}
	if len(t.fragOrder) >= maxFragments {
		t.dropFragLocked(t.fragOrder[0])
	}
	td := &TraceData{ID: id, Start: time.Now(), fragment: true}
	t.frags[id] = td
	t.fragOrder = append(t.fragOrder, id)
	return td
}

func (t *Tracer) appendSpanLocked(td *TraceData, sp Span) {
	if len(td.Spans) >= maxSpansPerTrace {
		td.Dropped++
		return
	}
	td.Spans = append(td.Spans, sp)
	t.feedFlightLocked(td.Spans[len(td.Spans)-1:])
}

// RecordRemote records a child span for a caller on another node, parsed
// from its traceparent header. The span lands in this node's fragment store
// under the caller's trace ID; GET /debug/traces/{id} on this node then
// shows the owner-side view, and the caller's node shows its own. Returns
// false when the header is absent or malformed. Nil-safe.
func (t *Tracer) RecordRemote(traceparent, name string, start time.Time, d time.Duration, attrs ...Attr) bool {
	if t == nil || traceparent == "" {
		return false
	}
	tid, sid, ok := ParseTraceparent(traceparent)
	if !ok {
		return false
	}
	sp := Span{
		TraceID:  tid,
		SpanID:   newSpanID(),
		ParentID: sid,
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
		Remote:   true,
	}
	t.mu.Lock()
	t.appendSpanLocked(t.fragLocked(tid), sp)
	t.mu.Unlock()
	return true
}

// RecordLinked records an out-of-band span (refinement lifecycle) attached
// to the originating request's trace via the Link captured at enqueue time.
// Nil-safe; zero links are ignored.
func (t *Tracer) RecordLinked(l Link, name string, start time.Time, d time.Duration, err error, attrs ...Attr) {
	if t == nil || l.TraceID.IsZero() {
		return
	}
	var errMsg string
	if err != nil {
		errMsg = err.Error()
	}
	sp := Span{
		TraceID:  l.TraceID,
		SpanID:   newSpanID(),
		ParentID: l.SpanID,
		Name:     name,
		Start:    start,
		Duration: d,
		Attrs:    attrs,
		Err:      errMsg,
	}
	t.mu.Lock()
	t.appendSpanLocked(t.fragLocked(l.TraceID), sp)
	t.mu.Unlock()
}

// Incident snapshots the flight recorder at the moment of a 429/503/
// fallback. h, when non-nil, attributes the incident to that request's
// trace and folds its spans-so-far into the snapshot.
func (t *Tracer) Incident(reason string, h *SpanHandle) {
	if t == nil {
		return
	}
	var own []Span
	var tid string
	if h != nil {
		own, _ = h.rec.snapshot()
		tid = h.rec.traceID.String()
	}
	t.mu.Lock()
	spans := t.flightSnapshotLocked()
	spans = append(spans, own...)
	t.incidents = append(t.incidents, IncidentReport{
		Reason:  reason,
		Time:    time.Now(),
		TraceID: tid,
		Spans:   spans,
	})
	if len(t.incidents) > t.maxIncidents {
		t.incidents = t.incidents[len(t.incidents)-t.maxIncidents:]
	}
	t.mu.Unlock()
}

func (t *Tracer) flightSnapshotLocked() []Span {
	if !t.flightFull {
		out := make([]Span, t.flightNext)
		copy(out, t.flight[:t.flightNext])
		return out
	}
	out := make([]Span, 0, len(t.flight))
	out = append(out, t.flight[t.flightNext:]...)
	out = append(out, t.flight[:t.flightNext]...)
	return out
}

// Incidents returns retained incident reports, newest last.
func (t *Tracer) Incidents() []IncidentReport {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]IncidentReport, len(t.incidents))
	copy(out, t.incidents)
	t.mu.Unlock()
	return out
}

// Summary is one line of GET /debug/traces.
type Summary struct {
	ID       TraceID       `json:"trace_id"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Status   int           `json:"status,omitempty"`
	Degraded bool          `json:"degraded,omitempty"`
	Err      string        `json:"error,omitempty"`
	Spans    int           `json:"spans"`
	Remote   bool          `json:"remote,omitempty"`
}

// Traces lists retained traces, newest first. Fragments (remote-only
// traces whose root lives on another node) are included and flagged.
func (t *Tracer) Traces() []Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Summary, 0, len(t.order)+len(t.fragOrder))
	for i := len(t.order) - 1; i >= 0; i-- {
		td := t.byID[t.order[i]]
		out = append(out, Summary{
			ID: td.ID, Root: td.Root, Start: td.Start, Duration: td.Duration,
			Status: td.Status, Degraded: td.Degraded, Err: td.Err, Spans: len(td.Spans),
		})
	}
	for i := len(t.fragOrder) - 1; i >= 0; i-- {
		td := t.frags[t.fragOrder[i]]
		out = append(out, Summary{
			ID: td.ID, Root: "(remote)", Start: td.Start, Spans: len(td.Spans), Remote: true,
		})
	}
	return out
}

// Get returns a copy of the retained trace (or fragment) with the given
// hex ID, or nil.
func (t *Tracer) Get(id string) *TraceData {
	if t == nil {
		return nil
	}
	tid, err := ParseTraceID(id)
	if err != nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	td, ok := t.byID[tid]
	if !ok {
		td, ok = t.frags[tid]
	}
	if !ok {
		return nil
	}
	cp := *td
	cp.Spans = make([]Span, len(td.Spans))
	copy(cp.Spans, td.Spans)
	return &cp
}

// Node is one vertex of the rendered span tree.
type Node struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	Remote   bool              `json:"remote,omitempty"`
	Err      string            `json:"error,omitempty"`
	StartUS  int64             `json:"start_us"` // offset from trace start
	DurUS    int64             `json:"duration_us"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []*Node           `json:"children,omitempty"`
}

// Tree assembles spans into parent/child trees ordered by start time.
// Spans whose parent is missing (remote fragments, dropped parents) become
// roots, so a partial trace still renders.
func Tree(start time.Time, spans []Span) []*Node {
	nodes := make(map[SpanID]*Node, len(spans))
	for i := range spans {
		sp := &spans[i]
		n := &Node{
			Name:    sp.Name,
			SpanID:  sp.SpanID.String(),
			Remote:  sp.Remote,
			Err:     sp.Err,
			StartUS: sp.Start.Sub(start).Microseconds(),
			DurUS:   sp.Duration.Microseconds(),
		}
		if len(sp.Attrs) > 0 {
			n.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				n.Attrs[a.Key] = a.Value
			}
		}
		nodes[sp.SpanID] = n
	}
	var roots []*Node
	for i := range spans {
		sp := &spans[i]
		n := nodes[sp.SpanID]
		if parent, ok := nodes[sp.ParentID]; ok && sp.ParentID != sp.SpanID {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	var sortKids func(n *Node)
	sortKids = func(n *Node) {
		sort.SliceStable(n.Children, func(i, j int) bool { return n.Children[i].StartUS < n.Children[j].StartUS })
		for _, c := range n.Children {
			sortKids(c)
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return roots[i].StartUS < roots[j].StartUS })
	for _, r := range roots {
		sortKids(r)
	}
	return roots
}
