package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	serenity "github.com/serenity-ml/serenity"
)

func TestBuildAllNetworks(t *testing.T) {
	for _, name := range []string{"darts", "swiftnet", "swiftnet-a", "swiftnet-b", "swiftnet-c", "randwire"} {
		g, err := build(name, 16, 4, 0.5, 3, 16, 8)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s invalid: %v", name, err)
		}
	}
	if _, err := build("nope", 0, 0, 0, 0, 0, 0); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestRunWritesJSONAndDOT(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "g.json")
	dotPath := filepath.Join(dir, "g.dot")
	if err := run("swiftnet-b", jsonPath, dotPath, 0, 0, 0, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := serenity.ReadGraphJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != serenity.SwiftNetCellB().NumNodes() {
		t.Error("JSON round trip changed the graph")
	}
	dot, err := os.ReadFile(dotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dot), "digraph") {
		t.Error("DOT output malformed")
	}
}

// TestGeneratedJSONSchedulesEndToEnd: graphgen output feeds the scheduler.
func TestGeneratedJSONSchedulesEndToEnd(t *testing.T) {
	g, err := build("randwire", 12, 4, 0.75, 9, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	res, err := serenity.Schedule(g, serenity.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Peak <= 0 || res.Peak > res.BaselinePeak {
		t.Errorf("peak %d baseline %d", res.Peak, res.BaselinePeak)
	}
}
