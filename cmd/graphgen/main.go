// Command graphgen emits benchmark graphs in the JSON IR format (and
// optionally Graphviz DOT), for use with cmd/serenity or external tooling.
//
//	graphgen -net swiftnet -o swiftnet.json -dot swiftnet.dot
//	graphgen -net randwire -nodes 32 -k 4 -p 0.75 -seed 7 -o rw.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	serenity "github.com/serenity-ml/serenity"
)

func main() {
	net := flag.String("net", "swiftnet", "network to generate (darts|swiftnet|swiftnet-a|swiftnet-b|swiftnet-c|randwire)")
	out := flag.String("o", "-", "output JSON path ('-' for stdout)")
	dot := flag.String("dot", "", "also write Graphviz DOT to this path")
	nodes := flag.Int("nodes", 32, "randwire: WS graph size")
	k := flag.Int("k", 4, "randwire: nearest neighbours")
	p := flag.Float64("p", 0.75, "randwire: rewiring probability")
	seed := flag.Int64("seed", 101, "randwire: generator seed")
	hw := flag.Int("hw", 32, "randwire: feature map side")
	channels := flag.Int("channels", 16, "randwire: channels")
	flag.Parse()

	if err := run(*net, *out, *dot, *nodes, *k, *p, *seed, *hw, *channels); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(net, out, dot string, nodes, k int, p float64, seed int64, hw, channels int) error {
	g, err := build(net, nodes, k, p, seed, hw, channels)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := serenity.WriteGraphJSON(w, g); err != nil {
		return err
	}
	if dot != "" {
		f, err := os.Create(dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := g.WriteDOT(f); err != nil {
			return err
		}
	}
	return nil
}

func build(net string, nodes, k int, p float64, seed int64, hw, channels int) (*serenity.Graph, error) {
	switch net {
	case "darts":
		return serenity.DARTSNormalCell(), nil
	case "swiftnet":
		return serenity.SwiftNet(), nil
	case "swiftnet-a":
		return serenity.SwiftNetCellA(), nil
	case "swiftnet-b":
		return serenity.SwiftNetCellB(), nil
	case "swiftnet-c":
		return serenity.SwiftNetCellC(), nil
	case "randwire":
		return serenity.RandWireCell(fmt.Sprintf("randwire_ws_%d_%d_%v_%d", nodes, k, p, seed),
			nodes, k, p, seed, hw, channels), nil
	}
	return nil, fmt.Errorf("unknown network %q", net)
}
