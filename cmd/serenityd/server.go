package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	serenity "github.com/serenity-ml/serenity"
	"github.com/serenity-ml/serenity/internal/cache"
	"github.com/serenity-ml/serenity/internal/fleet"
	"github.com/serenity-ml/serenity/internal/govern"
	"github.com/serenity-ml/serenity/internal/trace"
)

// maxRequestBytes bounds a /v1/schedule request body; the largest bundled
// model serializes to well under 1 MB, so 64 MB leaves room for very large
// client graphs without letting one request exhaust memory.
const maxRequestBytes = 64 << 20

// stageMS breaks the compile time down per pipeline stage, milliseconds.
type stageMS struct {
	Rewrite   float64 `json:"rewrite"`
	Partition float64 `json:"partition"`
	Search    float64 `json:"search"`
	Alloc     float64 `json:"alloc"`
}

// scheduleResponse is the wire format of a successful /v1/schedule call.
// Cached entries are shared across responses, so the struct is immutable
// after construction; Cached is the only per-response field and is set on a
// shallow copy.
type scheduleResponse struct {
	Graph          string             `json:"graph"`
	Nodes          int                `json:"nodes"`
	Fingerprint    string             `json:"fingerprint"`
	Order          []int              `json:"order"`
	Peak           int64              `json:"peak"`
	ArenaSize      int64              `json:"arena_size"`
	BaselinePeak   int64              `json:"baseline_peak"`
	Rewrites       int                `json:"rewrites,omitempty"`
	PartitionSizes []int              `json:"partition_sizes,omitempty"`
	Strategy       string             `json:"strategy"`
	Quality        serenity.Quality   `json:"quality"`
	SegmentQuality []serenity.Quality `json:"segment_quality,omitempty"`
	Fallbacks      int                `json:"fallbacks,omitempty"`
	StatesExplored int64              `json:"states_explored"`
	// SegmentMemoHits reports how many of this compilation's segments were
	// served from the server's cross-request segment memo instead of a fresh
	// search. On a cached response it describes the compilation that built
	// the entry.
	SegmentMemoHits int `json:"segment_memo_hits,omitempty"`
	// SegmentMemoDiskHits is the subset of SegmentMemoHits answered by the
	// persistent schedule store (-store-dir): artifacts surviving from a
	// previous process. Nonzero right after a restart is the warm-start
	// working.
	SegmentMemoDiskHits int `json:"segment_memo_disk_hits,omitempty"`
	// SegmentMemoPeerHits is the subset of SegmentMemoHits answered by the
	// distributed fleet tier (-peers): artifacts another node computed and this
	// one fetched from the key's ring owner instead of re-running the DP.
	SegmentMemoPeerHits int `json:"segment_memo_peer_hits,omitempty"`
	// MaxFrontier is the largest number of coexisting DP signatures any
	// segment's search held — how close the compilation came to the
	// server's state-cap valve.
	MaxFrontier  int     `json:"max_frontier,omitempty"`
	SchedulingMS float64 `json:"scheduling_ms"`
	StageMS      stageMS `json:"stage_ms"`
	Cached       bool    `json:"cached"`
	// ScheduleVersion starts at 1 for a fresh compilation and increments
	// when a background refinement replaces a degraded answer with the
	// exact one. Together with the ETag header it lets a client that
	// accepted a degraded schedule revalidate cheaply (If-None-Match) or
	// wait for the repair (?wait_refined=ms).
	ScheduleVersion int `json:"schedule_version"`
	// RefinementsQueued reports how many of this compilation's degraded
	// segments were queued for background refinement; a later identical
	// request can expect exact quality once they drain.
	RefinementsQueued int `json:"refinements_queued,omitempty"`
	// RewrittenGraph is set when identity graph rewriting changed the graph:
	// Order indexes ITS nodes, not the submitted graph's, so clients need it
	// to interpret or execute the schedule.
	RewrittenGraph *serenity.Graph `json:"rewritten_graph,omitempty"`
	// Trace is the inline span tree a ?debug=trace request asked for. It is
	// only ever set on a per-response copy — cached entries are shared and
	// stay trace-free.
	Trace *traceView `json:"trace,omitempty"`
}

// traceView is the ?debug=trace rendering of one request's span tree,
// attached inline to the schedule response. The same trace stays
// retrievable later via GET /debug/traces/{trace_id}.
type traceView struct {
	TraceID    string        `json:"trace_id"`
	DurationUS int64         `json:"duration_us"`
	Spans      []*trace.Node `json:"spans"`
}

// stageExemplar links one pipeline stage's most recent traced duration to
// the trace that exhibited it, so a dashboard reading the stage latency
// series can jump straight to a concrete span tree.
type stageExemplar struct {
	traceID string
	seconds float64
}

type errorResponse struct {
	Error string `json:"error"`
}

// server is the serenityd compile service: a schedule cache keyed by the
// graph's structural fingerprint plus the effective options, fronted by
// HTTP handlers with Prometheus-style counters.
type server struct {
	opts  serenity.Options
	cache *cache.Cache[*scheduleResponse]
	// segMemo, when non-nil, is the process-wide segment-level schedule
	// memo: per-segment search results shared across ALL requests (single
	// and batch, all graphs), so two different models stacking the same
	// cell pay for its DP once. See serenity.SegmentMemo and the
	// -segment-memo-size flag.
	segMemo *serenity.SegmentMemo
	// store, when non-nil, is the persistent tier under segMemo: the
	// on-disk schedule artifact store (-store-dir) that survives restarts,
	// so a redeployed server warm-starts from its predecessor's corpus
	// instead of re-running every DP under live traffic. See
	// serenity.ScheduleStore.
	store *serenity.ScheduleStore
	// maxNodes rejects graphs above this node count (0 = unlimited);
	// computeTimeout bounds one compilation server-side so a patient client
	// cannot pin a CPU indefinitely (0 = unlimited).
	maxNodes       int
	computeTimeout time.Duration
	// admit, when non-nil, is the weighted priority semaphore over compile
	// slots: interactive requests are admitted ahead of batch, batch ahead
	// of background refinement, and a full class queue answers 429 +
	// Retry-After instead of hanging (see admission). Nil means unlimited
	// admission (tests, and -compile-slots 0).
	admit *admission
	// gov, when enabled, is the process-wide memory governor (-mem-limit):
	// every fresh search reserves its estimated byte footprint, the watchdog
	// samples heap liveness against GOMEMLIMIT-derived watermarks, and the
	// pressure ladder sheds refinement, then batch (429), then forces
	// interactive best-effort searches down to their heuristic fallback
	// instead of letting the process OOM. Nil or disabled is fully
	// transparent. See internal/govern.
	gov *govern.Governor
	// refine, when non-nil, is the background refinement pool: degraded
	// compilations are served immediately and their exact re-search is
	// queued here, repairing the segment memo, the schedule store, and this
	// server's response cache once a compile slot is free (lowest priority
	// class). See serenity.RefinePool.
	refine *serenity.RefinePool
	// Fleet tier (-peers/-peer-addr), all nil on a fleetless server: ring is
	// the consistent-hash membership (an atomic pointer — admin join/leave
	// swaps it under live traffic); peers the bounded fetch/replication
	// client the pipeline consults as its PeerTier; peerSrv the peer-facing
	// HTTP surface (artifact get/put, digest, sync) mounted on the same mux;
	// syncer the background anti-entropy loop; health the per-peer liveness
	// view driving failover routing. See internal/fleet.
	ring    atomic.Pointer[fleet.Ring]
	peers   *fleet.Client
	peerSrv *fleet.Server
	syncer  *fleet.Syncer
	health  *fleet.Health
	// peerVnodes is remembered so admin join/leave rebuilds rings with the
	// same virtual-node count every other member uses; fleetMu serializes
	// concurrent membership edits.
	peerVnodes int
	fleetMu    sync.Mutex
	// ready flips once boot completed: store warm-started and the fleet ring
	// (when configured) wired. /readyz answers 503 until then so a load
	// balancer holds traffic off a node still importing its corpus, while
	// /healthz stays a pure liveness probe.
	ready atomic.Bool

	// tracer owns the request trace lifecycle: root spans for sampled and
	// ?debug=trace requests, the tail-sampled retained-trace ring behind
	// GET /debug/traces, the fragment store collecting fleet child spans and
	// refinement lifecycle spans by trace ID, and the degraded-request
	// flight recorder. Always non-nil (newServer installs a default; main
	// resizes it from -trace-ring/-trace-sample).
	tracer *trace.Tracer
	// logger is the structured request log (-log-format); request-scoped
	// lines carry request_id and, when the request was traced, trace_id.
	logger *slog.Logger
	// exemplars holds, per pipeline stage, the latest traced compilation's
	// stage time and trace ID — the serenityd_stage_exemplar_seconds series.
	exemplars [4]atomic.Pointer[stageExemplar]

	// flights coalesces concurrent compilations of the same key into one
	// (singleflight); followers of a canceled leader retry on their own.
	flights cache.Group[*scheduleResponse]

	requests  atomic.Int64 // schedule requests received (batch counts once), including rejected ones
	batches   atomic.Int64 // /v1/schedule/batch requests received
	batchItem atomic.Int64 // graphs submitted across all batch requests
	inFlight  atomic.Int64 // currently executing schedule requests
	coalesced atomic.Int64 // requests served by joining another's flight
	states    atomic.Int64 // DP states explored by non-cached compilations
	errored   atomic.Int64 // requests answered with an error status
	canceled  atomic.Int64 // requests abandoned by the client mid-compile
	fallbacks atomic.Int64 // segments degraded from exact to heuristic search
	heuristic atomic.Int64 // non-cached compilations answered with a heuristic schedule
	// frontierHigh is the largest DP frontier (coexisting signatures) any
	// compilation's search has held since startup — the scheduler's memory
	// high-water mark, fed from Result.MaxFrontier.
	frontierHigh atomic.Int64
	// Cumulative per-stage pipeline time in nanoseconds, fed by the
	// Pipeline's Observer hook on every non-cached compilation.
	stageNS [4]atomic.Int64 // indexed by stageIdx order: rewrite, partition, search, alloc
	started time.Time
}

// pipelineStages fixes the order of the stageNS counters and the /metrics
// stage labels.
var pipelineStages = [4]serenity.Stage{
	serenity.StageRewrite, serenity.StagePartition, serenity.StageSearch, serenity.StageAlloc,
}

func stageIdx(st serenity.Stage) int {
	for i, s := range pipelineStages {
		if s == st {
			return i
		}
	}
	return -1
}

func newServer(opts serenity.Options, cacheSize int) *server {
	return &server{
		opts:    opts,
		cache:   cache.New[*scheduleResponse](cacheSize),
		tracer:  trace.New(trace.Options{}),
		logger:  slog.Default(),
		started: time.Now(),
	}
}

// handler routes the service endpoints.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/schedule", s.handleSchedule)
	mux.HandleFunc("/v1/schedule/batch", s.handleScheduleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	s.registerDebug(mux)
	if s.peerSrv != nil {
		s.peerSrv.Register(mux)
		mux.HandleFunc("GET /admin/fleet", s.handleFleetGet)
		mux.HandleFunc("POST /admin/fleet/join", s.handleFleetJoin)
		mux.HandleFunc("POST /admin/fleet/leave", s.handleFleetLeave)
	}
	return mux
}

// applyRing swaps the fleet membership everywhere it is consulted: the
// pipeline's routing (peers), the peer surface, the anti-entropy loop, and
// the health view. Callers hold fleetMu.
func (s *server) applyRing(r *fleet.Ring) {
	s.ring.Store(r)
	if s.peers != nil {
		s.peers.UpdateRing(r)
	}
	if s.peerSrv != nil {
		s.peerSrv.UpdateRing(r)
	}
	if s.syncer != nil {
		s.syncer.UpdateRing(r)
	}
	if s.health != nil {
		s.health.SetMembers(r.Peers())
	}
}

// fleetStatus is the admin view of the membership: every member plus the
// health state this node currently holds for it.
func (s *server) fleetStatus() map[string]any {
	r := s.ring.Load()
	states := map[string]string{r.Self(): "self"}
	for _, p := range r.Peers() {
		if s.health != nil {
			states[p] = s.health.State(p).String()
		} else {
			states[p] = "untracked"
		}
	}
	return map[string]any{
		"self":    r.Self(),
		"members": r.Members(),
		"states":  states,
	}
}

func (s *server) handleFleetGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fleetStatus())
}

// handleFleetJoin adds ?peer= to this node's membership view without a
// restart. The new member starts Alive and immediately owns its share of the
// keyspace; call the same endpoint on every other member (or let the joiner
// announce itself) — membership is a per-node view, deliberately without a
// consensus layer, exactly like the -peers flag it extends.
func (s *server) handleFleetJoin(w http.ResponseWriter, r *http.Request) {
	peer := strings.TrimSpace(r.URL.Query().Get("peer"))
	if peer == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("join needs ?peer=<base URL>"))
		return
	}
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	cur := s.ring.Load()
	next, err := fleet.NewRing(cur.Self(), append(cur.Members(), peer), s.peerVnodes)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("join %q: %w", peer, err))
		return
	}
	s.applyRing(next)
	writeJSON(w, http.StatusOK, s.fleetStatus())
}

// handleFleetLeave removes ?peer= from this node's membership view; its keys
// fail over to the surviving ring points permanently (a health-driven
// failover, by contrast, unwinds on revival). A node cannot remove itself —
// shut it down instead.
func (s *server) handleFleetLeave(w http.ResponseWriter, r *http.Request) {
	peer := strings.TrimSuffix(strings.TrimSpace(r.URL.Query().Get("peer")), "/")
	if peer == "" {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("leave needs ?peer=<base URL>"))
		return
	}
	s.fleetMu.Lock()
	defer s.fleetMu.Unlock()
	cur := s.ring.Load()
	if peer == cur.Self() {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("a node cannot leave its own fleet view; stop the process instead"))
		return
	}
	var rest []string
	found := false
	for _, m := range cur.Members() {
		if m == peer {
			found = true
			continue
		}
		rest = append(rest, m)
	}
	if !found {
		s.fail(w, http.StatusNotFound, fmt.Errorf("%q is not a fleet member", peer))
		return
	}
	next, err := fleet.NewRing(cur.Self(), rest, s.peerVnodes)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("leave %q: %w", peer, err))
		return
	}
	s.applyRing(next)
	writeJSON(w, http.StatusOK, s.fleetStatus())
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	reqID := s.requests.Add(1)
	if r.Method != http.MethodPost {
		s.fail(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)

	prm, err := s.requestOptions(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	opts, deadline := prm.opts, prm.deadline
	g, err := serenity.ReadGraphJSON(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("parsing graph: %w", err))
		return
	}
	if s.maxNodes > 0 && g.NumNodes() > s.maxNodes {
		s.fail(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("graph has %d nodes, server accepts at most %d", g.NumNodes(), s.maxNodes))
		return
	}

	fp := g.Fingerprint()
	key := scheduleKey(fp, opts, deadline, prm.forceDegrade)
	if inm := r.Header.Get("If-None-Match"); inm != "" {
		if resp, ok := s.cache.Get(key); ok {
			if tag := etagFor(resp); etagMatch(inm, tag) {
				// The client already holds the current answer.
				w.Header().Set("ETag", tag)
				w.WriteHeader(http.StatusNotModified)
				return
			}
			// The cached entry differs (typically a refinement landed); fall
			// through and serve it.
		} else if s.refine != nil && s.refine.Pending(respRefineKey(key)) {
			// The client holds a degraded answer whose repair is still
			// queued. Recomputing now would duplicate the refinement's work,
			// so report "unchanged, try again shortly" instead.
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}

	// Root span: ?debug=trace requests are always traced (the client was
	// promised the tree); otherwise the ambient sampler picks one in
	// -trace-sample requests.
	var root *trace.SpanHandle
	if prm.debugTrace || s.tracer.Sample() {
		root = s.tracer.StartTrace("schedule",
			trace.Str("graph", g.Name),
			trace.Int("nodes", int64(g.NumNodes())),
			trace.Int("request_id", reqID))
	}

	ctx := r.Context()
	if root != nil {
		ctx = trace.ContextWith(ctx, root)
	}
	if s.computeTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.computeTimeout)
		defer cancel()
	}
	if deadline > 0 {
		// The client's own compile deadline: under strategy=best-effort it
		// degrades the search instead of failing it.
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	resp, cached, err := s.schedule(ctx, g, opts, fp, key, classInteractive, prm.forceDegrade)
	if err != nil {
		if isContextErr(err) && r.Context().Err() != nil {
			// The client is gone; nothing useful to write, and it is not a
			// served error — it gets its own counter.
			s.canceled.Add(1)
			s.tracer.Finish(root, trace.Outcome{Err: err, Force: prm.debugTrace})
			return
		}
		code, werr := s.scheduleErrorStatus(err, opts.Strategy, deadline)
		s.tracer.Finish(root, trace.Outcome{Status: code, Err: werr, Force: prm.debugTrace})
		s.logSchedule(reqID, root, code, cached, werr)
		s.fail(w, code, werr)
		return
	}
	if prm.waitRefined > 0 && resp.Fallbacks > 0 && s.refine != nil {
		if refined := s.awaitRefined(r.Context(), key, prm.waitRefined); refined != nil {
			resp, cached = refined, true
		}
	}
	if root != nil {
		root.Annotate(trace.Bool("cached", cached), trace.Int("fallbacks", int64(resp.Fallbacks)))
	}
	td := s.tracer.Finish(root, trace.Outcome{
		Status:   http.StatusOK,
		Degraded: resp.Fallbacks > 0,
		Force:    prm.debugTrace,
	})
	if root != nil && !cached {
		s.noteExemplars(root.TraceID().String(), resp.StageMS)
	}
	s.logSchedule(reqID, root, http.StatusOK, cached, nil)
	out := respForClient(resp, cached, g.Name)
	if prm.debugTrace && td != nil {
		// Cached entries are shared across responses: the trace rides on a
		// per-response copy, never on the stored entry.
		c := *out
		c.Trace = &traceView{
			TraceID:    td.ID.String(),
			DurationUS: td.Duration.Microseconds(),
			Spans:      trace.Tree(td.Start, td.Spans),
		}
		out = &c
	}
	w.Header().Set("ETag", etagFor(resp))
	writeJSON(w, http.StatusOK, out)
}

// logSchedule emits the structured per-request log line. Successes log at
// Debug (request volume belongs in /metrics, not the log); errors at Warn.
// Every line carries request_id; traced requests add trace_id, which is the
// key into GET /debug/traces/{id}.
func (s *server) logSchedule(reqID int64, root *trace.SpanHandle, status int, cached bool, err error) {
	args := []any{"request_id", reqID, "status", status}
	if root != nil {
		args = append(args, "trace_id", root.TraceID().String())
	}
	if err != nil {
		args = append(args, "error", err.Error())
		s.logger.Warn("schedule request failed", args...)
		return
	}
	args = append(args, "cached", cached)
	s.logger.Debug("schedule request", args...)
}

// noteExemplars records the freshly compiled stages' times under this
// trace's ID for the /metrics exemplar series.
func (s *server) noteExemplars(traceID string, st stageMS) {
	secs := [4]float64{st.Rewrite / 1000, st.Partition / 1000, st.Search / 1000, st.Alloc / 1000}
	for i, sec := range secs {
		s.exemplars[i].Store(&stageExemplar{traceID: traceID, seconds: sec})
	}
}

// registerDebug mounts the trace inspection surface: the retained-trace
// ring, single-trace span trees, and the flight recorder's incident
// reports. These mount on both the public mux and the -debug-addr mux;
// pprof mounts on the -debug-addr mux ONLY (see main).
func (s *server) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTraceGet)
	mux.HandleFunc("GET /debug/incidents", s.handleIncidents)
}

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"traces": s.tracer.Traces()})
}

func (s *server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	td := s.tracer.Get(id)
	if td == nil {
		// Deliberately not s.fail: a miss on a debug endpoint is not a served
		// request error.
		writeJSON(w, http.StatusNotFound, errorResponse{Error: fmt.Sprintf("no retained trace %q", id)})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"trace_id":      td.ID.String(),
		"root":          td.Root,
		"start":         td.Start,
		"duration_us":   td.Duration.Microseconds(),
		"status":        td.Status,
		"degraded":      td.Degraded,
		"error":         td.Err,
		"dropped_spans": td.Dropped,
		"spans":         trace.Tree(td.Start, td.Spans),
	})
}

func (s *server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"incidents": s.tracer.Incidents()})
}

// respRefineKey names the response-level refinement job for a schedule key;
// the prefix keeps it from colliding with segment-memo refinement keys in the
// shared pool.
func respRefineKey(key string) string { return "resp|" + key }

// awaitRefined polls the response cache for up to budget waiting for key's
// background refinement to land, returning the refined entry or nil if the
// budget (or the client) ran out first. It bails early when the refinement is
// no longer pending — completed (the cache has it), failed, or dropped —
// since no repair is coming.
func (s *server) awaitRefined(ctx context.Context, key string, budget time.Duration) *scheduleResponse {
	timeout := time.NewTimer(budget)
	defer timeout.Stop()
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		if resp, ok := s.cache.Get(key); ok && resp.Fallbacks == 0 {
			return resp
		}
		if !s.refine.Pending(respRefineKey(key)) {
			// Re-check: the job may have retired between the two tests above,
			// with its cache write already visible.
			if resp, ok := s.cache.Get(key); ok && resp.Fallbacks == 0 {
				return resp
			}
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-timeout.C:
			return nil
		case <-tick.C:
		}
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// scheduleErrorStatus maps a failed compilation to the HTTP status and
// client-facing error both the single and batch endpoints answer with.
// Callers handle client disconnects beforehand; by the time this runs, a
// context error means a server-side budget fired, and the message tells the
// client which one ran out.
func (s *server) scheduleErrorStatus(err error, strategy serenity.Strategy, deadline time.Duration) (int, error) {
	switch {
	case errors.As(err, new(*errAdmission)):
		// fail() adds the Retry-After header from the error itself.
		return http.StatusTooManyRequests, err
	case errors.Is(err, serenity.ErrMemoryPressure):
		// The memory governor (or the search's own byte valve) aborted the
		// compilation and no degradable fallback absorbed it. A server
		// condition, not a client one: 503 + Retry-After (added by fail()).
		return http.StatusServiceUnavailable,
			&errMemPressure{level: s.gov.Level(), retryAfter: memPressureRetryAfter, cause: err}
	case errors.As(err, new(*serenity.ErrBudgetExceeded)):
		return http.StatusUnprocessableEntity, err
	case isContextErr(err):
		if deadline > 0 && (s.computeTimeout <= 0 || deadline <= s.computeTimeout) {
			if strategy == serenity.StrategyBestEffort {
				// The deadline expired before the search stage could
				// intercept it and degrade (e.g. during parsing or graph
				// validation): no schedule exists to serve.
				return http.StatusServiceUnavailable,
					fmt.Errorf("the requested %s deadline expired before the search could degrade; raise deadline_ms", deadline)
			}
			return http.StatusServiceUnavailable,
				fmt.Errorf("compilation exceeded the requested %s deadline (use strategy=best-effort to degrade instead)", deadline)
		}
		return http.StatusServiceUnavailable,
			fmt.Errorf("compilation exceeded the server's %s compute budget", s.computeTimeout)
	}
	return http.StatusInternalServerError, err
}

// respForClient prepares a schedule response for one client. Cache (or
// coalesced-flight) hits get a shallow copy echoing the requester's graph
// name — the entry was built for the first submitter of this structure, and
// while the fingerprint deliberately ignores names, the response should not.
// A coalesced follower of a degraded compute is NOT labeled cached: fallback
// responses are never stored, and clients rely on cached=true implying a
// repeatable (exact-quality) entry.
func respForClient(resp *scheduleResponse, cached bool, graphName string) *scheduleResponse {
	if !cached {
		return resp
	}
	c := *resp
	c.Cached = resp.Fallbacks == 0
	c.Graph = graphName
	return &c
}

// scheduleKey builds the cache/flight key for one compilation: structural
// fingerprint plus every result-affecting option. Only best-effort results
// depend on the deadline (it decides which segments degrade); exact and
// greedy results are deadline-invariant, so keying them by deadline would
// only fragment the cache. A forced degradation (?degrade=force) gets its
// own key suffix so a drill never coalesces with — or is served from — a
// normal flight, while its background refinement still repairs the forced
// key's cache entry.
func scheduleKey(fp string, opts serenity.Options, deadline time.Duration, forced bool) string {
	key := fp + "|" + optionsKey(opts)
	if opts.Strategy == serenity.StrategyBestEffort {
		key += deadlineKey(deadline)
	}
	if forced {
		key += "|forced"
	}
	return key
}

// schedule returns the response for key, serving from the cache when
// possible, otherwise computing it at most once across concurrent requests
// via the singleflight group: later arrivals join the first request's
// flight, a follower whose leader failed with a context error (the leader's
// client hung up mid-compile) retries with its own context, and a panicking
// compute surfaces as an error to followers instead of a nil response (all
// cache.Group's contract). Successful non-degraded responses enter the
// cache inside the flight, before followers are released.
//
// The flight's leader acquires a compile slot in class before computing
// (classPreAdmitted skips this — the caller already holds slots), so cache
// and coalesced hits are never throttled, only actual compilations. A
// degraded compute queues a response-level background refinement before
// returning, so the repaired exact answer eventually replaces it in the
// cache with a bumped ScheduleVersion.
func (s *server) schedule(ctx context.Context, g *serenity.Graph, opts serenity.Options, fingerprint, key string, class admitClass, degrade bool) (*scheduleResponse, bool, error) {
	if resp, ok := s.cache.Get(key); ok {
		return resp, true, nil
	}
	resp, shared, err := s.flights.Do(ctx, key, func() (*scheduleResponse, error) {
		if s.admit != nil && class != classPreAdmitted {
			// The admission wait is often the dominant latency under load;
			// traced requests get it as its own span so queueing time is
			// never misread as compute time.
			var admSp *trace.SpanHandle
			if sp := trace.FromContext(ctx); sp != nil {
				admSp = sp.Child("admission.wait", trace.Str("class", class.String()))
			}
			release, err := s.admit.acquire(ctx, class, 1)
			admSp.EndErr(err)
			if err != nil {
				return nil, err
			}
			defer release()
		}
		r, err := s.compute(ctx, g, opts, fingerprint, degrade)
		if err != nil {
			return nil, err
		}
		if r.Fallbacks == 0 {
			// Degraded (fallback) schedules are served but not cached: the
			// degradation reflects this moment's load, and pinning it would
			// deny every later identical request the exact answer a quieter
			// server could produce.
			s.cache.Put(key, r)
		} else {
			s.enqueueRespRefine(ctx, key, g, opts, fingerprint, r)
		}
		return r, nil
	})
	if err != nil {
		return nil, false, err
	}
	if shared {
		s.coalesced.Add(1)
		return resp, true, nil
	}
	return resp, false, nil
}

// enqueueRespRefine queues the serve-then-refine repair for a degraded
// response: recompute the same request without degradation under the
// refinement pool's context (no client deadline — background work takes the
// time it needs), and write the exact answer into the response cache with the
// next ScheduleVersion. The pool runs it at the lowest admission priority via
// its Gate, and FIFO order means the compilation's per-segment refinements —
// queued earlier by the pipeline — have already warmed the segment memo by
// the time this recompute runs.
func (s *server) enqueueRespRefine(ctx context.Context, key string, g *serenity.Graph, opts serenity.Options, fingerprint string, degraded *scheduleResponse) {
	if s.refine == nil {
		return
	}
	version := degraded.ScheduleVersion + 1
	s.refine.Enqueue(ctx, respRefineKey(key), func(ctx context.Context) error {
		r, err := s.compute(ctx, g, opts, fingerprint, false)
		if err != nil {
			return err
		}
		if r.Fallbacks > 0 {
			return fmt.Errorf("refinement of %q still degraded (%d fallbacks); keeping it out of the cache", key, r.Fallbacks)
		}
		r.ScheduleVersion = version
		s.cache.Put(key, r)
		return nil
	})
}

// compute runs one compilation. degrade forces every best-effort segment
// down the heuristic path (?degrade=force) — the deterministic overload
// drill for the serve-then-refine machinery.
func (s *server) compute(ctx context.Context, g *serenity.Graph, opts serenity.Options, fingerprint string, degrade bool) (*scheduleResponse, error) {
	p, err := serenity.NewPipeline(opts)
	if err != nil {
		return nil, err
	}
	if degrade {
		if be, ok := p.Searcher.(serenity.BestEffort); ok {
			be.SkipExact = true
			p.Searcher = be
		}
	}
	// One process-wide memo across every request: per-segment results are
	// interchangeable wherever the segment fingerprint and strategy match,
	// whatever graph they arrived in. The store beneath it extends the same
	// sharing across process restarts. The refinement pool hangs off the
	// same pipeline: any segment that falls back is queued for background
	// repair.
	p.SegmentMemo = s.segMemo
	p.Store = s.store
	p.RefinePool = s.refine
	if s.gov.Enabled() {
		// Every fresh segment search reserves its estimated footprint with
		// the governor; at Critical the floor grant aborts the search before
		// it expands, which best-effort absorbs as a heuristic fallback and
		// exact strategies surface as ErrMemoryPressure (503).
		p.Govern = governAdapter{s.gov}
	}
	if s.peers != nil {
		// Conditional so a fleetless server leaves the interface nil rather
		// than holding a typed nil *fleet.Client.
		p.Peers = s.peers
	}
	// The Observer feeds the /metrics stage and fallback counters as the
	// compilation runs, so a long compile is visible before it finishes.
	p.Observer = serenity.ObserverFunc(func(e serenity.Event) {
		switch e.Kind {
		case serenity.EventStageDone:
			if i := stageIdx(e.Stage); i >= 0 {
				s.stageNS[i].Add(int64(e.Elapsed))
			}
		case serenity.EventFallback:
			s.fallbacks.Add(1)
			// Flight recorder: a degradation snapshots the recent span
			// history across all requests, plus this request's spans so far
			// when it was traced.
			s.tracer.Incident("fallback", trace.FromContext(ctx))
		}
	})
	res, err := p.Run(ctx, g)
	if res != nil {
		// Over-budget compilations (ErrBudgetExceeded) still ran the full
		// DP; their states count. Segment-memo hits do not: they replay a
		// stored count into StatesExplored without exploring anything.
		s.states.Add(res.FreshStatesExplored)
		for {
			cur := s.frontierHigh.Load()
			if int64(res.MaxFrontier) <= cur || s.frontierHigh.CompareAndSwap(cur, int64(res.MaxFrontier)) {
				break
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if res.Quality == serenity.QualityHeuristic {
		s.heuristic.Add(1)
	}
	resp := &scheduleResponse{
		Graph:               g.Name,
		Nodes:               res.Graph.NumNodes(),
		Fingerprint:         fingerprint,
		Order:               res.Order,
		Peak:                res.Peak,
		ArenaSize:           res.ArenaSize,
		BaselinePeak:        res.BaselinePeak,
		Rewrites:            res.RewriteCount,
		PartitionSizes:      res.PartitionSizes,
		Strategy:            p.Searcher.Name(),
		Quality:             res.Quality,
		SegmentQuality:      res.SegmentQuality,
		Fallbacks:           res.Fallbacks,
		StatesExplored:      res.StatesExplored,
		SegmentMemoHits:     res.SegmentMemoHits,
		SegmentMemoDiskHits: res.SegmentMemoDiskHits,
		SegmentMemoPeerHits: res.SegmentMemoPeerHits,
		MaxFrontier:         res.MaxFrontier,
		ScheduleVersion:     1,
		RefinementsQueued:   res.RefinementsQueued,
		SchedulingMS:        float64(res.SchedulingTime.Microseconds()) / 1000,
		StageMS: stageMS{
			Rewrite:   float64(res.Stages.Rewrite.Microseconds()) / 1000,
			Partition: float64(res.Stages.Partition.Microseconds()) / 1000,
			Search:    float64(res.Stages.Search.Microseconds()) / 1000,
			Alloc:     float64(res.Stages.Alloc.Microseconds()) / 1000,
		},
	}
	if res.Rewritten {
		resp.RewrittenGraph = res.Graph
	}
	return resp, nil
}

// governAdapter bridges internal/govern's concrete *Reservation to the root
// package's SearchReservation interface (Go method results are invariant, so
// *govern.Governor cannot satisfy serenity.MemoryGovernor directly even
// though *govern.Reservation satisfies serenity.SearchReservation).
type governAdapter struct{ g *govern.Governor }

func (a governAdapter) Reserve(estimate int64) serenity.SearchReservation {
	return a.g.Reserve(estimate)
}

// reqParams is one request's decoded scheduling parameters.
type reqParams struct {
	opts     serenity.Options
	deadline time.Duration
	// forceDegrade (?degrade=force, best-effort only) skips the exact
	// search outright, as if the deadline expired at search start — the
	// deterministic way to drill the serve-then-refine path.
	forceDegrade bool
	// waitRefined (?wait_refined=ms) bounds how long the handler may hold a
	// degraded response back waiting for its background refinement.
	waitRefined time.Duration
	// debugTrace (?debug=trace) traces this request unconditionally and
	// returns the span tree inline in the response.
	debugTrace bool
}

// requestOptions derives the effective scheduling options for one request —
// the server's defaults overridden by query parameters — plus the client's
// optional compile deadline and the serve-then-refine parameters.
// Options.Validate runs here so a bad request fails with a clear 400
// instead of a deep-pipeline error.
func (s *server) requestOptions(r *http.Request) (reqParams, error) {
	opts := s.opts
	var deadline time.Duration
	q := r.URL.Query()
	if v := q.Get("parallelism"); v != "" {
		p, err := strconv.Atoi(v)
		if err != nil {
			return reqParams{}, fmt.Errorf("bad parallelism %q", v)
		}
		opts.Parallelism = p
	}
	if v := q.Get("budget"); v != "" {
		b, err := parseBytes(v)
		if err != nil {
			return reqParams{}, err
		}
		opts.MemoryBudget = b
	}
	if v := q.Get("rewrite"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return reqParams{}, fmt.Errorf("bad rewrite %q", v)
		}
		opts.Rewrite = on
	}
	if v := q.Get("partition"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return reqParams{}, fmt.Errorf("bad partition %q", v)
		}
		opts.Partition = on
	}
	if v := q.Get("strategy"); v != "" {
		st, err := serenity.ParseStrategy(v)
		if err != nil {
			return reqParams{}, err
		}
		opts.Strategy = st
	}
	if v := q.Get("deadline_ms"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms <= 0 {
			return reqParams{}, fmt.Errorf("bad deadline_ms %q (want a positive integer)", v)
		}
		deadline = time.Duration(ms) * time.Millisecond
	}
	if err := opts.Validate(); err != nil {
		return reqParams{}, err
	}
	params := reqParams{opts: opts, deadline: deadline}
	if v := q.Get("degrade"); v != "" {
		if v != "force" {
			return reqParams{}, fmt.Errorf("bad degrade %q (the only value is \"force\")", v)
		}
		if opts.Strategy != serenity.StrategyBestEffort {
			return reqParams{}, fmt.Errorf("degrade=force requires strategy=best-effort (only a degradable strategy can skip its exact search)")
		}
		params.forceDegrade = true
	}
	if v := q.Get("wait_refined"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil || ms < 0 {
			return reqParams{}, fmt.Errorf("bad wait_refined %q (want milliseconds)", v)
		}
		params.waitRefined = time.Duration(ms) * time.Millisecond
	}
	if v := q.Get("debug"); v != "" {
		if v != "trace" {
			return reqParams{}, fmt.Errorf("bad debug %q (the only value is \"trace\")", v)
		}
		params.debugTrace = true
	}
	return params, nil
}

// optionsKey renders every result-affecting option into the cache key.
// Parallelism is deliberately excluded: it introduces no nondeterminism of
// its own and every returned schedule is peak-optimal for its options, so
// results are interchangeable across Parallelism settings.
func optionsKey(o serenity.Options) string {
	return fmt.Sprintf("r%t:x%t:p%t:a%t:t%d:b%d:s%d:y%s",
		o.Rewrite, o.ExtendedRewrite, o.Partition, o.AdaptiveBudget,
		o.StepTimeout, o.MemoryBudget, o.MaxStates, o.Strategy)
}

// deadlineKey extends a cache key with the client deadline: under
// strategy=best-effort the deadline changes which segments degrade, so
// responses are only interchangeable at the same deadline.
func deadlineKey(d time.Duration) string {
	if d <= 0 {
		return ""
	}
	return fmt.Sprintf("|d%d", d)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{
		"status": "ok",
		"uptime": time.Since(s.started).Round(time.Millisecond).String(),
	})
}

// handleReadyz is the readiness probe, distinct from liveness: it answers 503
// until the boot sequence finished (persistent store warm-started, fleet ring
// wired when configured), so an orchestrator keeps traffic off a node still
// importing its corpus without restarting a process that is merely slow.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "starting"})
		return
	}
	resp := map[string]any{
		"status": "ready",
		"uptime": time.Since(s.started).Round(time.Millisecond).String(),
	}
	if ring := s.ring.Load(); ring != nil {
		resp["fleet_members"] = len(ring.Members())
		resp["fleet_self"] = ring.Self()
		if s.health != nil {
			states := map[string]string{}
			for peer, st := range s.health.Snapshot() {
				states[peer] = st.String()
			}
			resp["peer_states"] = states
		}
	}
	if s.gov.Enabled() {
		gs := s.gov.Stats()
		resp["mem_pressure"] = gs.Level.String()
		resp["mem_reserved_bytes"] = gs.Reserved
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprintf(w, "# HELP serenityd_requests_total Schedule requests received, including rejected ones.\n")
	fmt.Fprintf(w, "# TYPE serenityd_requests_total counter\n")
	fmt.Fprintf(w, "serenityd_requests_total %d\n", s.requests.Load())
	fmt.Fprintf(w, "# HELP serenityd_in_flight_requests Schedule requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE serenityd_in_flight_requests gauge\n")
	fmt.Fprintf(w, "serenityd_in_flight_requests %d\n", s.inFlight.Load())
	fmt.Fprintf(w, "# HELP serenityd_cache_hits_total Schedule cache hits.\n")
	fmt.Fprintf(w, "# TYPE serenityd_cache_hits_total counter\n")
	fmt.Fprintf(w, "serenityd_cache_hits_total %d\n", cs.Hits)
	fmt.Fprintf(w, "# HELP serenityd_cache_misses_total Schedule cache lookups that missed; subtract coalesced requests for compilations actually run.\n")
	fmt.Fprintf(w, "# TYPE serenityd_cache_misses_total counter\n")
	fmt.Fprintf(w, "serenityd_cache_misses_total %d\n", cs.Misses)
	fmt.Fprintf(w, "# HELP serenityd_cache_evictions_total Schedule cache evictions.\n")
	fmt.Fprintf(w, "# TYPE serenityd_cache_evictions_total counter\n")
	fmt.Fprintf(w, "serenityd_cache_evictions_total %d\n", cs.Evictions)
	fmt.Fprintf(w, "# HELP serenityd_cache_entries Schedule cache current size.\n")
	fmt.Fprintf(w, "# TYPE serenityd_cache_entries gauge\n")
	fmt.Fprintf(w, "serenityd_cache_entries %d\n", cs.Len)
	fmt.Fprintf(w, "# HELP serenityd_coalesced_requests_total Requests served by joining an identical in-flight compilation.\n")
	fmt.Fprintf(w, "# TYPE serenityd_coalesced_requests_total counter\n")
	fmt.Fprintf(w, "serenityd_coalesced_requests_total %d\n", s.coalesced.Load())
	fmt.Fprintf(w, "# HELP serenityd_states_explored_total DP states explored by non-cached compilations.\n")
	fmt.Fprintf(w, "# TYPE serenityd_states_explored_total counter\n")
	fmt.Fprintf(w, "serenityd_states_explored_total %d\n", s.states.Load())
	fmt.Fprintf(w, "# HELP serenityd_errors_total Requests answered with an error.\n")
	fmt.Fprintf(w, "# TYPE serenityd_errors_total counter\n")
	fmt.Fprintf(w, "serenityd_errors_total %d\n", s.errored.Load())
	fmt.Fprintf(w, "# HELP serenityd_canceled_requests_total Requests abandoned by the client mid-compile.\n")
	fmt.Fprintf(w, "# TYPE serenityd_canceled_requests_total counter\n")
	fmt.Fprintf(w, "serenityd_canceled_requests_total %d\n", s.canceled.Load())
	fmt.Fprintf(w, "# HELP serenityd_fallbacks_total Segments degraded from exact to heuristic search (strategy=best-effort).\n")
	fmt.Fprintf(w, "# TYPE serenityd_fallbacks_total counter\n")
	fmt.Fprintf(w, "serenityd_fallbacks_total %d\n", s.fallbacks.Load())
	fmt.Fprintf(w, "# HELP serenityd_heuristic_responses_total Non-cached compilations answered with a heuristic-quality schedule.\n")
	fmt.Fprintf(w, "# TYPE serenityd_heuristic_responses_total counter\n")
	fmt.Fprintf(w, "serenityd_heuristic_responses_total %d\n", s.heuristic.Load())
	fmt.Fprintf(w, "# HELP serenityd_stage_seconds_total Cumulative pipeline time per stage across non-cached compilations.\n")
	fmt.Fprintf(w, "# TYPE serenityd_stage_seconds_total counter\n")
	for i, st := range pipelineStages {
		fmt.Fprintf(w, "serenityd_stage_seconds_total{stage=%q} %.6f\n", st, float64(s.stageNS[i].Load())/1e9)
	}
	// Exemplars: the latest traced compilation's per-stage time, labeled
	// with its trace ID so a dashboard can jump from the latency series to
	// GET /debug/traces/{trace_id}. A separate valid 0.0.4 series (the
	// `# {...}` exemplar suffix is OpenMetrics-only).
	fmt.Fprintf(w, "# HELP serenityd_stage_exemplar_seconds Per-stage time of the most recent traced compilation; trace_id keys into /debug/traces.\n")
	fmt.Fprintf(w, "# TYPE serenityd_stage_exemplar_seconds gauge\n")
	for i, st := range pipelineStages {
		if ex := s.exemplars[i].Load(); ex != nil {
			fmt.Fprintf(w, "serenityd_stage_exemplar_seconds{stage=%q,trace_id=%q} %.6f\n", st, ex.traceID, ex.seconds)
		}
	}
	fmt.Fprintf(w, "# HELP serenityd_traces_retained Traces currently retained in the /debug/traces ring (fleet fragments included).\n")
	fmt.Fprintf(w, "# TYPE serenityd_traces_retained gauge\n")
	fmt.Fprintf(w, "serenityd_traces_retained %d\n", len(s.tracer.Traces()))
	// DP core throughput: fresh states over cumulative search-stage time.
	// Cache hits skip the pipeline entirely; segment-memo hits add zero
	// states and only microseconds of lookup time to the denominator, so
	// the gauge tracks the core's crunch rate to within the memo's lookup
	// overhead (a slight under-read under heavily warmed traffic).
	var statesPerSec float64
	if searchSec := float64(s.stageNS[stageIdx(serenity.StageSearch)].Load()) / 1e9; searchSec > 0 {
		statesPerSec = float64(s.states.Load()) / searchSec
	}
	fmt.Fprintf(w, "# HELP serenityd_dp_states_per_second Fresh DP states explored per second of cumulative search-stage time.\n")
	fmt.Fprintf(w, "# TYPE serenityd_dp_states_per_second gauge\n")
	fmt.Fprintf(w, "serenityd_dp_states_per_second %.1f\n", statesPerSec)
	fmt.Fprintf(w, "# HELP serenityd_dp_frontier_high_water Largest DP frontier (coexisting signatures) any compilation has held.\n")
	fmt.Fprintf(w, "# TYPE serenityd_dp_frontier_high_water gauge\n")
	fmt.Fprintf(w, "serenityd_dp_frontier_high_water %d\n", s.frontierHigh.Load())
	var ms serenity.SegmentMemoStats
	if s.segMemo != nil {
		ms = s.segMemo.Stats()
	}
	fmt.Fprintf(w, "# HELP serenityd_segment_memo_hits_total Segment searches served from the cross-request segment memo.\n")
	fmt.Fprintf(w, "# TYPE serenityd_segment_memo_hits_total counter\n")
	fmt.Fprintf(w, "serenityd_segment_memo_hits_total %d\n", ms.Hits)
	fmt.Fprintf(w, "# HELP serenityd_segment_memo_misses_total Segment searches that ran because the memo had no entry.\n")
	fmt.Fprintf(w, "# TYPE serenityd_segment_memo_misses_total counter\n")
	fmt.Fprintf(w, "serenityd_segment_memo_misses_total %d\n", ms.Misses)
	fmt.Fprintf(w, "# HELP serenityd_segment_memo_entries Segment memo current size.\n")
	fmt.Fprintf(w, "# TYPE serenityd_segment_memo_entries gauge\n")
	fmt.Fprintf(w, "serenityd_segment_memo_entries %d\n", ms.Entries)
	var ss serenity.StoreStats
	if s.store != nil {
		ss = s.store.Stats()
	}
	fmt.Fprintf(w, "# HELP serenityd_store_hits_total Segment artifacts served from the persistent schedule store.\n")
	fmt.Fprintf(w, "# TYPE serenityd_store_hits_total counter\n")
	fmt.Fprintf(w, "serenityd_store_hits_total %d\n", ss.Hits)
	fmt.Fprintf(w, "# HELP serenityd_store_misses_total Store lookups that fell through to a fresh search.\n")
	fmt.Fprintf(w, "# TYPE serenityd_store_misses_total counter\n")
	fmt.Fprintf(w, "serenityd_store_misses_total %d\n", ss.Misses)
	fmt.Fprintf(w, "# HELP serenityd_store_writes_total Segment artifacts written through to the store.\n")
	fmt.Fprintf(w, "# TYPE serenityd_store_writes_total counter\n")
	fmt.Fprintf(w, "serenityd_store_writes_total %d\n", ss.Writes)
	fmt.Fprintf(w, "# HELP serenityd_store_evictions_total Artifacts evicted to honor -store-max-bytes.\n")
	fmt.Fprintf(w, "# TYPE serenityd_store_evictions_total counter\n")
	fmt.Fprintf(w, "serenityd_store_evictions_total %d\n", ss.Evictions)
	fmt.Fprintf(w, "# HELP serenityd_store_corrupt_records_total Store records dropped for failing CRC or artifact validation.\n")
	fmt.Fprintf(w, "# TYPE serenityd_store_corrupt_records_total counter\n")
	fmt.Fprintf(w, "serenityd_store_corrupt_records_total %d\n", ss.CorruptRecords)
	fmt.Fprintf(w, "# HELP serenityd_store_bytes Live bytes held by the persistent schedule store.\n")
	fmt.Fprintf(w, "# TYPE serenityd_store_bytes gauge\n")
	fmt.Fprintf(w, "serenityd_store_bytes %d\n", ss.LiveBytes)
	fmt.Fprintf(w, "# HELP serenityd_store_entries Artifacts currently retrievable from the store.\n")
	fmt.Fprintf(w, "# TYPE serenityd_store_entries gauge\n")
	fmt.Fprintf(w, "serenityd_store_entries %d\n", ss.Entries)
	fmt.Fprintf(w, "# HELP serenityd_batch_requests_total Batch schedule requests received.\n")
	fmt.Fprintf(w, "# TYPE serenityd_batch_requests_total counter\n")
	fmt.Fprintf(w, "serenityd_batch_requests_total %d\n", s.batches.Load())
	fmt.Fprintf(w, "# HELP serenityd_batch_items_total Graphs submitted across all batch requests.\n")
	fmt.Fprintf(w, "# TYPE serenityd_batch_items_total counter\n")
	fmt.Fprintf(w, "serenityd_batch_items_total %d\n", s.batchItem.Load())
	var rs serenity.RefinePoolStats
	if s.refine != nil {
		rs = s.refine.Stats()
	}
	fmt.Fprintf(w, "# HELP serenityd_refinements_queued_total Background refinements accepted into the repair queue.\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_queued_total counter\n")
	fmt.Fprintf(w, "serenityd_refinements_queued_total %d\n", rs.Queued)
	fmt.Fprintf(w, "# HELP serenityd_refinements_done_total Background refinements that completed and repaired their caches.\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_done_total counter\n")
	fmt.Fprintf(w, "serenityd_refinements_done_total %d\n", rs.Done)
	fmt.Fprintf(w, "# HELP serenityd_refinements_failed_total Background refinements that ran but errored; nothing was replaced.\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_failed_total counter\n")
	fmt.Fprintf(w, "serenityd_refinements_failed_total %d\n", rs.Failed)
	fmt.Fprintf(w, "# HELP serenityd_refinements_dropped_total Refinements shed without running: full queue, duplicate key, or shutdown.\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_dropped_total counter\n")
	fmt.Fprintf(w, "serenityd_refinements_dropped_total %d\n", rs.Dropped)
	fmt.Fprintf(w, "# HELP serenityd_refinements_outstanding Refinements queued or running right now.\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_outstanding gauge\n")
	fmt.Fprintf(w, "serenityd_refinements_outstanding %d\n", rs.Outstanding)
	fmt.Fprintf(w, "# HELP serenityd_refinements_shed_total Refinements parked by the memory governor's pressure signal (re-enqueued once pressure clears).\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_shed_total counter\n")
	fmt.Fprintf(w, "serenityd_refinements_shed_total %d\n", rs.Shed)
	fmt.Fprintf(w, "# HELP serenityd_refinements_requeued_total Parked refinements re-injected into the queue after pressure cleared.\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_requeued_total counter\n")
	fmt.Fprintf(w, "serenityd_refinements_requeued_total %d\n", rs.Requeued)
	fmt.Fprintf(w, "# HELP serenityd_refinements_parked Refinements currently parked waiting out memory pressure.\n")
	fmt.Fprintf(w, "# TYPE serenityd_refinements_parked gauge\n")
	fmt.Fprintf(w, "serenityd_refinements_parked %d\n", rs.Parked)
	if s.gov.Enabled() {
		gs := s.gov.Stats()
		fmt.Fprintf(w, "# HELP serenityd_mem_limit_bytes Effective byte budget the memory governor defends (limit minus headroom).\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_limit_bytes gauge\n")
		fmt.Fprintf(w, "serenityd_mem_limit_bytes %d\n", gs.Limit)
		fmt.Fprintf(w, "# HELP serenityd_mem_pressure_level Current pressure tier: 0 normal, 1 elevated (refinement shed), 2 high (batch 429, grows denied), 3 critical (searches forced to degrade).\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_pressure_level gauge\n")
		fmt.Fprintf(w, "serenityd_mem_pressure_level %d\n", int(gs.Level))
		fmt.Fprintf(w, "# HELP serenityd_mem_heap_bytes Last sampled heap-live bytes.\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_heap_bytes gauge\n")
		fmt.Fprintf(w, "serenityd_mem_heap_bytes %d\n", gs.Heap)
		fmt.Fprintf(w, "# HELP serenityd_mem_reserved_bytes Outstanding search reservation bytes in the governor's ledger.\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_reserved_bytes gauge\n")
		fmt.Fprintf(w, "serenityd_mem_reserved_bytes %d\n", gs.Reserved)
		fmt.Fprintf(w, "# HELP serenityd_mem_pressure_sheds_total Work units shed by the pressure ladder: batch 429s plus parked refinements.\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_pressure_sheds_total counter\n")
		fmt.Fprintf(w, "serenityd_mem_pressure_sheds_total %d\n", gs.Sheds+rs.Shed)
		fmt.Fprintf(w, "# HELP serenityd_mem_pressure_degraded_total Searches forced down the degradation ladder by Critical pressure (heuristic fallback or 503).\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_pressure_degraded_total counter\n")
		fmt.Fprintf(w, "serenityd_mem_pressure_degraded_total %d\n", gs.Degraded)
		fmt.Fprintf(w, "# HELP serenityd_mem_grows_total Mid-search reservation upgrades granted by the governor.\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_grows_total counter\n")
		fmt.Fprintf(w, "serenityd_mem_grows_total %d\n", gs.Grows)
		fmt.Fprintf(w, "# HELP serenityd_mem_grow_denied_total Mid-search reservation upgrades denied at High pressure or above; the search aborted at its ceiling.\n")
		fmt.Fprintf(w, "# TYPE serenityd_mem_grow_denied_total counter\n")
		fmt.Fprintf(w, "serenityd_mem_grow_denied_total %d\n", gs.GrowDenied)
	}
	if s.peers != nil {
		ps := s.peers.Stats()
		fmt.Fprintf(w, "# HELP serenityd_peer_hits_total Segment artifacts fetched from a fleet peer instead of a fresh search.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_hits_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_hits_total %d\n", ps.Hits)
		fmt.Fprintf(w, "# HELP serenityd_peer_misses_total Peer fetches that came back empty (404, dead peer, breaker, shed); the caller computed locally.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_misses_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_misses_total %d\n", ps.Misses)
		fmt.Fprintf(w, "# HELP serenityd_peer_timeouts_total Peer fetch attempts that ran out their per-attempt budget.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_timeouts_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_timeouts_total %d\n", ps.Timeouts)
		fmt.Fprintf(w, "# HELP serenityd_peer_replicated_total Locally computed artifacts pushed to their ring owners (write-behind).\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_replicated_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_replicated_total %d\n", ps.Replicated)
		fmt.Fprintf(w, "# HELP serenityd_peer_replication_dropped_total Replication pushes shed (queue overflow, dead owner); anti-entropy heals them.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_replication_dropped_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_replication_dropped_total %d\n", ps.ReplicationDropped)
		fmt.Fprintf(w, "# HELP serenityd_peer_failovers_total Fetches and replications routed to a failover owner because the primary was unhealthy.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_failovers_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_failovers_total %d\n", ps.Failovers)
	}
	if s.health != nil {
		snap := s.health.Snapshot()
		fmt.Fprintf(w, "# HELP serenityd_peer_state Per-peer health as seen from this node: 1 for the current state, 0 otherwise.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_state gauge\n")
		for _, peer := range s.health.Members() {
			for _, st := range fleet.States {
				v := 0
				if snap[peer] == st {
					v = 1
				}
				fmt.Fprintf(w, "serenityd_peer_state{peer=%q,state=%q} %d\n", peer, st, v)
			}
		}
		hs := s.health.Stats()
		fmt.Fprintf(w, "# HELP serenityd_peer_probes_total Health probe attempts against fleet peers.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_probes_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_probes_total %d\n", hs.Probes)
		fmt.Fprintf(w, "# HELP serenityd_peer_probe_failures_total Health probes that failed (error, timeout, non-2xx).\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_probe_failures_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_probe_failures_total %d\n", hs.Failures)
		fmt.Fprintf(w, "# HELP serenityd_peer_transitions_total Health state changes (demotions and revivals), from probes and fetch outcomes alike.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_transitions_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_transitions_total %d\n", hs.Transitions)
	}
	if s.peerSrv != nil {
		fs := s.peerSrv.Stats()
		fmt.Fprintf(w, "# HELP serenityd_peer_served_hits_total Peer artifact GETs this node answered with a payload.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_served_hits_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_served_hits_total %d\n", fs.SegmentHits)
		fmt.Fprintf(w, "# HELP serenityd_peer_served_misses_total Peer artifact GETs this node answered 404.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_served_misses_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_served_misses_total %d\n", fs.SegmentMisses)
		fmt.Fprintf(w, "# HELP serenityd_peer_shed_total Peer requests refused by the peer admission lane (-peer-slots).\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_shed_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_shed_total %d\n", fs.Shed)
		fmt.Fprintf(w, "# HELP serenityd_peer_sync_records_total Store records streamed out to peers' anti-entropy pulls.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_sync_records_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_sync_records_total %d\n", fs.SyncRecords)
	}
	if s.syncer != nil {
		ys := s.syncer.Stats()
		fmt.Fprintf(w, "# HELP serenityd_peer_sync_rounds_total Anti-entropy rounds completed (including no-op ones).\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_sync_rounds_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_sync_rounds_total %d\n", ys.Rounds)
		fmt.Fprintf(w, "# HELP serenityd_peer_sync_pulled_total Store records imported from peers by anti-entropy.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_sync_pulled_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_sync_pulled_total %d\n", ys.Pulled)
		fmt.Fprintf(w, "# HELP serenityd_peer_sync_errors_total Anti-entropy rounds that failed (unreachable peer, alien stream).\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_sync_errors_total counter\n")
		fmt.Fprintf(w, "serenityd_peer_sync_errors_total %d\n", ys.Errors)
	}
	if ring := s.ring.Load(); ring != nil {
		fmt.Fprintf(w, "# HELP serenityd_peer_ring_members Fleet membership size, this node included.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_ring_members gauge\n")
		fmt.Fprintf(w, "serenityd_peer_ring_members %d\n", len(ring.Members()))
		fmt.Fprintf(w, "# HELP serenityd_peer_ring_owned_share Estimated fraction of the keyspace this node owns; far from 1/members means a misbalanced ring.\n")
		fmt.Fprintf(w, "# TYPE serenityd_peer_ring_owned_share gauge\n")
		fmt.Fprintf(w, "serenityd_peer_ring_owned_share %.4f\n", ring.OwnedShare(4096))
	}
	if s.admit != nil {
		fmt.Fprintf(w, "# HELP serenityd_admission_admitted_total Compile-slot acquisitions granted, per priority class.\n")
		fmt.Fprintf(w, "# TYPE serenityd_admission_admitted_total counter\n")
		for c := admitClass(0); c < numClasses; c++ {
			fmt.Fprintf(w, "serenityd_admission_admitted_total{class=%q} %d\n", c, s.admit.admitted[c].Load())
		}
		fmt.Fprintf(w, "# HELP serenityd_admission_rejected_total Acquisitions rejected with 429 because the class queue was full.\n")
		fmt.Fprintf(w, "# TYPE serenityd_admission_rejected_total counter\n")
		for c := admitClass(0); c < numClasses; c++ {
			fmt.Fprintf(w, "serenityd_admission_rejected_total{class=%q} %d\n", c, s.admit.rejected[c].Load())
		}
		fmt.Fprintf(w, "# HELP serenityd_admission_waiting Acquisitions currently queued for a compile slot, per priority class.\n")
		fmt.Fprintf(w, "# TYPE serenityd_admission_waiting gauge\n")
		for c := admitClass(0); c < numClasses; c++ {
			fmt.Fprintf(w, "serenityd_admission_waiting{class=%q} %d\n", c, s.admit.waiting[c].Load())
		}
	}
}

func (s *server) fail(w http.ResponseWriter, code int, err error) {
	s.errored.Add(1)
	var adm *errAdmission
	if errors.As(err, &adm) {
		// Admission rejections always carry backoff advice and always answer
		// 429, whatever status the call site guessed.
		code = http.StatusTooManyRequests
		w.Header().Set("Retry-After", strconv.Itoa(int(adm.retryAfter/time.Second)))
	}
	var mem *errMemPressure
	if errors.As(err, &mem) {
		// Memory-pressure rejections answer 503 + Retry-After: the server's
		// condition, not the client's rate.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(int(mem.retryAfter/time.Second)))
	}
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		// Flight recorder: every shed or pressure answer snapshots the span
		// history leading up to it, so the moments before an overload stay
		// inspectable after the fact (GET /debug/incidents).
		s.tracer.Incident(fmt.Sprintf("http_%d", code), nil)
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// etagFor derives the entity tag clients revalidate against: a content hash
// over everything that distinguishes one served schedule from another,
// including ScheduleVersion so a refined answer never shares a tag with the
// degraded one it replaced.
func etagFor(resp *scheduleResponse) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%s|%d|%d|%d|%v",
		resp.Fingerprint, resp.ScheduleVersion, resp.Quality,
		resp.Peak, resp.ArenaSize, resp.Fallbacks, resp.Order)
	return fmt.Sprintf("%q", fmt.Sprintf("%016x", h.Sum64()))
}

// etagMatch implements If-None-Match matching: a comma-separated candidate
// list, weak validators compared by value, and "*" matching anything.
func etagMatch(header, etag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
