package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"testing"
	"time"

	serenity "github.com/serenity-ml/serenity"
)

// refineServer attaches a background refinement pool to a test server.
func refineServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s, ts := testServer(t)
	s.refine = serenity.NewRefinePool(s.segMemo, nil, serenity.RefinePoolOptions{
		Workers: 1, QueueDepth: 64,
	})
	t.Cleanup(s.refine.Close)
	return s, ts
}

func postScheduleINM(t *testing.T, ts *httptest.Server, query string, body []byte, inm string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/schedule"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("If-None-Match", inm)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func drainRefine(t *testing.T, pool *serenity.RefinePool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := pool.Quiesce(ctx); err != nil {
		t.Fatalf("refinement pool did not drain: %v", err)
	}
}

// TestOverloadSoakRefinedBitIdentical is the serve-then-refine acceptance
// scenario over HTTP: a forced-degraded request is served instantly at
// heuristic quality, and after the background refinement drains, the
// identical request returns an exact-quality schedule bit-identical —
// order, peak, arena — to an unpressured compilation of the same graph.
func TestOverloadSoakRefinedBitIdentical(t *testing.T) {
	s, ts := refineServer(t)
	g := smallCell(41)

	// The unpressured reference: the exact options the server resolves for
	// ?strategy=best-effort, run directly with no pressure.
	refOpts := s.opts
	refOpts.Strategy = serenity.StrategyBestEffort
	ref, err := serenity.ScheduleContext(context.Background(), smallCell(41), refOpts)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Quality != serenity.QualityOptimal {
		t.Fatalf("reference quality %q; the scenario needs an exact baseline", ref.Quality)
	}

	body := graphBody(t, g)
	resp, data := postSchedule(t, ts, "?strategy=best-effort&degrade=force", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded request: status %d: %s", resp.StatusCode, data)
	}
	var degraded scheduleResponse
	if err := json.Unmarshal(data, &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Quality != serenity.QualityHeuristic || degraded.Fallbacks == 0 {
		t.Fatalf("forced degradation served quality %q with %d fallbacks", degraded.Quality, degraded.Fallbacks)
	}
	if degraded.ScheduleVersion != 1 {
		t.Errorf("degraded schedule_version = %d, want 1", degraded.ScheduleVersion)
	}
	if degraded.RefinementsQueued == 0 {
		t.Error("degraded response queued no segment refinements")
	}
	degradedTag := resp.Header.Get("ETag")
	if degradedTag == "" {
		t.Error("degraded response missing ETag")
	}

	drainRefine(t, s.refine)
	if st := s.refine.Stats(); st.Failed != 0 {
		t.Fatalf("refinements failed: %+v", st)
	}

	resp2, data2 := postSchedule(t, ts, "?strategy=best-effort&degrade=force", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-refinement request: status %d: %s", resp2.StatusCode, data2)
	}
	var refined scheduleResponse
	if err := json.Unmarshal(data2, &refined); err != nil {
		t.Fatal(err)
	}
	if refined.Quality != serenity.QualityOptimal {
		t.Fatalf("post-refinement quality %q, want optimal", refined.Quality)
	}
	if !refined.Cached {
		t.Error("refined answer not served from the repaired cache")
	}
	if refined.ScheduleVersion != degraded.ScheduleVersion+1 {
		t.Errorf("refined schedule_version = %d, want %d", refined.ScheduleVersion, degraded.ScheduleVersion+1)
	}
	if tag := resp2.Header.Get("ETag"); tag == "" || tag == degradedTag {
		t.Errorf("refined ETag %q did not change from degraded %q", tag, degradedTag)
	}
	if !reflect.DeepEqual(refined.Order, []int(ref.Order)) {
		t.Errorf("refined order diverged from unpressured reference\nref: %v\ngot: %v", ref.Order, refined.Order)
	}
	if refined.Peak != ref.Peak || refined.ArenaSize != ref.ArenaSize {
		t.Errorf("refined peak/arena %d/%d, want %d/%d", refined.Peak, refined.ArenaSize, ref.Peak, ref.ArenaSize)
	}
}

// TestWaitRefinedAndPending304 exercises the revalidation surface while the
// repair is still queued: wait_refined holds the response for the refined
// answer, and If-None-Match answers 304 + Retry-After instead of recomputing
// what the client already holds.
func TestWaitRefinedAndPending304(t *testing.T) {
	s, ts := refineServer(t)

	// Plug the single refinement worker so queued repairs stay pending.
	unblock := make(chan struct{})
	if !s.refine.Enqueue(context.Background(), "test-blocker", func(ctx context.Context) error {
		select {
		case <-unblock:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}) {
		t.Fatal("blocker job declined")
	}

	body := graphBody(t, smallCell(42))
	resp, data := postSchedule(t, ts, "?strategy=best-effort&degrade=force", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var degraded scheduleResponse
	if err := json.Unmarshal(data, &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Quality != serenity.QualityHeuristic {
		t.Fatalf("forced degradation served quality %q", degraded.Quality)
	}
	degradedTag := resp.Header.Get("ETag")

	// Revalidation while the repair is queued: unchanged, retry later, and
	// crucially no recompilation of an answer the client already holds.
	resp304, _ := postScheduleINM(t, ts, "?strategy=best-effort&degrade=force", body, degradedTag)
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation during pending refinement: status %d, want 304", resp304.StatusCode)
	}
	if resp304.Header.Get("Retry-After") == "" {
		t.Error("pending-refinement 304 missing Retry-After")
	}

	// A waiting client: ask for the refined answer with a generous budget,
	// then release the worker.
	type waitResult struct {
		resp *scheduleResponse
		tag  string
	}
	waited := make(chan waitResult, 1)
	go func() {
		resp, data := postSchedule(t, ts, "?strategy=best-effort&degrade=force&wait_refined=30000", body)
		var sr scheduleResponse
		if resp.StatusCode == http.StatusOK {
			_ = json.Unmarshal(data, &sr)
		}
		waited <- waitResult{&sr, resp.Header.Get("ETag")}
	}()
	time.Sleep(50 * time.Millisecond) // let the waiter reach its poll loop
	close(unblock)

	got := <-waited
	if got.resp.Quality != serenity.QualityOptimal {
		t.Fatalf("wait_refined returned quality %q, want the refined optimal answer", got.resp.Quality)
	}
	if got.resp.ScheduleVersion != degraded.ScheduleVersion+1 {
		t.Errorf("wait_refined schedule_version = %d, want %d", got.resp.ScheduleVersion, degraded.ScheduleVersion+1)
	}

	// Revalidating the stale degraded tag now yields the refined answer in
	// full; revalidating the refined tag is a 304.
	drainRefine(t, s.refine)
	respNew, dataNew := postScheduleINM(t, ts, "?strategy=best-effort&degrade=force", body, degradedTag)
	if respNew.StatusCode != http.StatusOK {
		t.Fatalf("revalidation after refinement: status %d: %s", respNew.StatusCode, dataNew)
	}
	var fresh scheduleResponse
	if err := json.Unmarshal(dataNew, &fresh); err != nil {
		t.Fatal(err)
	}
	if fresh.Quality != serenity.QualityOptimal {
		t.Errorf("post-refinement revalidation served quality %q", fresh.Quality)
	}
	respSame, _ := postScheduleINM(t, ts, "?strategy=best-effort&degrade=force", body, respNew.Header.Get("ETag"))
	if respSame.StatusCode != http.StatusNotModified {
		t.Errorf("revalidating the current tag: status %d, want 304", respSame.StatusCode)
	}
}

// TestEtagRevalidationExact pins the ETag flow on the plain (never degraded)
// path: stable tag, 304 on match, full response on mismatch.
func TestEtagRevalidationExact(t *testing.T) {
	_, ts := testServer(t)
	body := graphBody(t, smallCell(43))
	resp, data := postSchedule(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	tag := resp.Header.Get("ETag")
	if tag == "" {
		t.Fatal("response missing ETag")
	}
	resp2, _ := postScheduleINM(t, ts, "", body, tag)
	if resp2.StatusCode != http.StatusNotModified {
		t.Errorf("matching If-None-Match: status %d, want 304", resp2.StatusCode)
	}
	resp3, _ := postScheduleINM(t, ts, "", body, `"0000000000000000"`)
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", resp3.StatusCode)
	}
	if got := resp3.Header.Get("ETag"); got != tag {
		t.Errorf("ETag unstable across identical requests: %q then %q", tag, got)
	}
}

func waitWaiting(t *testing.T, a *admission, c admitClass, n int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for a.waiting[c].Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("class %s never reached %d queued waiters", c, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionPriorityOrder: with the only slot held, waiters enqueued in
// reverse priority are granted interactive → batch → refinement once it
// frees, regardless of arrival order.
func TestAdmissionPriorityOrder(t *testing.T) {
	a := newAdmission(1, [numClasses]int{4, 4, 4})
	release, err := a.acquire(context.Background(), classInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}
	order := make(chan admitClass, int(numClasses))
	done := make(chan struct{})
	start := func(c admitClass) {
		go func() {
			rel, err := a.acquire(context.Background(), c, 1)
			if err != nil {
				t.Errorf("class %s: %v", c, err)
				return
			}
			order <- c
			rel()
			if c == classRefine {
				close(done)
			}
		}()
	}
	start(classRefine)
	waitWaiting(t, a, classRefine, 1)
	start(classBatch)
	waitWaiting(t, a, classBatch, 1)
	start(classInteractive)
	waitWaiting(t, a, classInteractive, 1)

	release()
	<-done
	close(order)
	var got []admitClass
	for c := range order {
		got = append(got, c)
	}
	want := []admitClass{classInteractive, classBatch, classRefine}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("grant order %v, want %v", got, want)
	}
}

// TestAdmissionRejectAndWeightClamp: a full class queue rejects immediately
// with errAdmission and backoff advice, and weights above capacity clamp
// instead of deadlocking.
func TestAdmissionRejectAndWeightClamp(t *testing.T) {
	a := newAdmission(2, [numClasses]int{1, 1, 1})
	release, err := a.acquire(context.Background(), classBatch, 100) // clamped to 2
	if err != nil {
		t.Fatalf("over-capacity weight did not clamp: %v", err)
	}

	queuedErr := make(chan error, 1)
	go func() {
		rel, err := a.acquire(context.Background(), classInteractive, 1)
		if err == nil {
			rel()
		}
		queuedErr <- err
	}()
	waitWaiting(t, a, classInteractive, 1)

	_, err = a.acquire(context.Background(), classInteractive, 1)
	var adm *errAdmission
	if !errors.As(err, &adm) {
		t.Fatalf("full queue returned %v, want errAdmission", err)
	}
	if adm.class != classInteractive || adm.retryAfter < time.Second {
		t.Errorf("rejection %+v; want interactive class with >=1s backoff", adm)
	}
	if a.rejected[classInteractive].Load() != 1 {
		t.Errorf("rejected counter = %d, want 1", a.rejected[classInteractive].Load())
	}

	release()
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued waiter failed after release: %v", err)
	}
}

// TestAdmissionAbandonedHeadRegrants: an abandoned head-of-line waiter must
// not leave the slots it was holding out for stranded — and until it leaves,
// strict priority means no lower-class waiter slips past it.
func TestAdmissionAbandonedHeadRegrants(t *testing.T) {
	a := newAdmission(2, [numClasses]int{4, 4, 4})
	release, err := a.acquire(context.Background(), classInteractive, 1) // free=1
	if err != nil {
		t.Fatal(err)
	}

	headCtx, cancelHead := context.WithCancel(context.Background())
	defer cancelHead()
	headErr := make(chan error, 1)
	go func() {
		_, err := a.acquire(headCtx, classInteractive, 2) // needs 2, only 1 free: blocks
		headErr <- err
	}()
	waitWaiting(t, a, classInteractive, 1)

	granted := make(chan struct{})
	go func() {
		rel, err := a.acquire(context.Background(), classRefine, 1)
		if err != nil {
			t.Errorf("refine acquire: %v", err)
			return
		}
		close(granted)
		rel()
	}()
	waitWaiting(t, a, classRefine, 1)

	// The refine waiter would fit in the free slot, but the interactive head
	// is ahead of it: no bypass.
	select {
	case <-granted:
		t.Fatal("lower-priority waiter bypassed a blocked head-of-line waiter")
	case <-time.After(30 * time.Millisecond):
	}

	cancelHead()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoned head returned %v", err)
	}
	select {
	case <-granted:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoning the head-of-line waiter did not re-grant the queue")
	}
	release()
}

// TestSchedule429UnderOverload drives admission rejection through HTTP: with
// the one compile slot held and the wait queues full, both endpoints answer
// 429 with Retry-After immediately — never a hung connection — and recover
// once the slot frees.
func TestSchedule429UnderOverload(t *testing.T) {
	s, ts := testServer(t)
	s.admit = newAdmission(1, [numClasses]int{1, 1, 1})

	release, err := s.admit.acquire(context.Background(), classInteractive, 1)
	if err != nil {
		t.Fatal(err)
	}
	fillCtx, cancelFill := context.WithCancel(context.Background())
	defer cancelFill()
	for _, c := range []admitClass{classInteractive, classBatch} {
		c := c
		go func() {
			rel, err := s.admit.acquire(fillCtx, c, 1)
			if err == nil {
				rel()
			}
		}()
		waitWaiting(t, s.admit, c, 1)
	}

	body := graphBody(t, smallCell(44))
	resp, data := postSchedule(t, ts, "", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded single request: status %d: %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	batchBody, err := json.Marshal(map[string]any{"items": []json.RawMessage{body}})
	if err != nil {
		t.Fatal(err)
	}
	respB, dataB := postBatch(t, ts, "", batchBody)
	if respB.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded batch request: status %d: %s", respB.StatusCode, dataB)
	}
	if respB.Header.Get("Retry-After") == "" {
		t.Error("batch 429 missing Retry-After")
	}

	// Load subsides: the same requests are admitted and served.
	cancelFill()
	release()
	waitWaiting(t, s.admit, classInteractive, 0)
	waitWaiting(t, s.admit, classBatch, 0)
	resp2, data2 := postSchedule(t, ts, "", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("after overload: status %d: %s", resp2.StatusCode, data2)
	}
	if s.admit.admitted[classInteractive].Load() == 0 {
		t.Error("admitted counter never moved")
	}
}

// TestBatchSplitBudget pins the oversubscription fix: the two fan-out levels
// (item workers × per-item parallelism) never exceed the GOMAXPROCS-clamped
// request budget.
func TestBatchSplitBudget(t *testing.T) {
	mp := runtime.GOMAXPROCS(0)
	for _, tc := range []struct{ par, items int }{
		{0, 1}, {1, 1}, {1, 8}, {2, 2}, {4, 2}, {4, 8}, {3, 7},
		{64, 1}, {64, 8}, {mp, mp}, {4 * mp, 16}, {4 * mp, 1},
	} {
		workers, perItem := batchSplit(tc.par, tc.items)
		budget := tc.par
		if budget < 1 {
			budget = 1
		}
		if budget > mp {
			budget = mp
		}
		if workers < 1 || perItem < 1 {
			t.Errorf("batchSplit(%d, %d) = %d, %d; both must be >= 1", tc.par, tc.items, workers, perItem)
		}
		if workers > tc.items {
			t.Errorf("batchSplit(%d, %d) = %d workers for %d items", tc.par, tc.items, workers, tc.items)
		}
		if workers*perItem > budget {
			t.Errorf("batchSplit(%d, %d) = %d×%d = %d goroutines, budget %d: oversubscribed",
				tc.par, tc.items, workers, perItem, workers*perItem, budget)
		}
	}
}

// TestServeRefineParamValidation rejects malformed serve-then-refine
// parameters with 400s.
func TestServeRefineParamValidation(t *testing.T) {
	_, ts := testServer(t)
	body := graphBody(t, smallCell(45))
	for _, q := range []string{
		"?degrade=yes&strategy=best-effort",
		"?degrade=force", // server default strategy is exact
		"?degrade=force&strategy=greedy",
		"?strategy=best-effort&wait_refined=-5",
		"?strategy=best-effort&wait_refined=soon",
	} {
		resp, data := postSchedule(t, ts, q, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", q, resp.StatusCode, data)
		}
	}
}
