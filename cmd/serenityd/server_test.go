package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	serenity "github.com/serenity-ml/serenity"
	"github.com/serenity-ml/serenity/internal/models"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	opts := serenity.DefaultOptions()
	opts.StepTimeout = 500 * time.Millisecond
	opts.Parallelism = 4
	s := newServer(opts, 64)
	s.segMemo = serenity.NewSegmentMemo(1024)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// smallCell is a compact irregularly wired model: real enough to exercise
// rewriting/partitioning, small enough that the DP is instant even under the
// race detector.
func smallCell(seed int64) *serenity.Graph {
	return serenity.RandWireCell(fmt.Sprintf("rw-test-%d", seed), 12, 4, 0.75, seed, 8, 4)
}

func graphBody(t *testing.T, g *serenity.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := serenity.WriteGraphJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postSchedule(t *testing.T, ts *httptest.Server, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestScheduleEndpoint(t *testing.T) {
	_, ts := testServer(t)
	body := graphBody(t, smallCell(1))

	resp, data := postSchedule(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got scheduleResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Nodes == 0 || len(got.Order) != got.Nodes {
		t.Errorf("order covers %d of %d nodes", len(got.Order), got.Nodes)
	}
	if got.Peak <= 0 || got.ArenaSize < got.Peak {
		t.Errorf("peak %d arena %d", got.Peak, got.ArenaSize)
	}
	if got.Cached {
		t.Error("first request reported cached")
	}
	if got.Fingerprint == "" {
		t.Error("missing fingerprint")
	}

	// Same topology again: served from cache, otherwise identical.
	resp2, data2 := postSchedule(t, ts, "", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, data2)
	}
	var again scheduleResponse
	if err := json.Unmarshal(data2, &again); err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("second request not served from cache")
	}
	again.Cached = got.Cached
	if !reflect.DeepEqual(got, again) {
		t.Errorf("cached response differs:\n%+v\n%+v", got, again)
	}

	// A structurally identical graph under a different name hits the cache
	// but must echo the requester's name, not the first submitter's.
	renamed := smallCell(1)
	renamed.Name = "renamed-topology"
	resp3, data3 := postSchedule(t, ts, "", graphBody(t, renamed))
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp3.StatusCode, data3)
	}
	var third scheduleResponse
	if err := json.Unmarshal(data3, &third); err != nil {
		t.Fatal(err)
	}
	if !third.Cached {
		t.Error("renamed topology missed the structural cache")
	}
	if third.Graph != "renamed-topology" {
		t.Errorf("cached response echoes %q, want the requester's name", third.Graph)
	}
}

// TestConcurrentScheduleRequests is the acceptance scenario: 50 concurrent
// POSTs over a small model zoo, all answered correctly, with the cache
// recording hits.
func TestConcurrentScheduleRequests(t *testing.T) {
	s, ts := testServer(t)
	bodies := [][]byte{
		graphBody(t, smallCell(1)),
		graphBody(t, smallCell(2)),
		graphBody(t, smallCell(3)),
	}
	// Warm one entry so at least one concurrent request is a plain cache hit
	// regardless of scheduling interleavings.
	if resp, data := postSchedule(t, ts, "", bodies[0]); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up failed: %d %s", resp.StatusCode, data)
	}

	const requests = 50
	responses := make([]scheduleResponse, requests)
	errs := make([]error, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(bodies[i%len(bodies)]))
			if err != nil {
				errs[i] = err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			errs[i] = json.Unmarshal(data, &responses[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Identical topology => identical schedule, cached or not.
	for i := len(bodies); i < requests; i++ {
		prev := responses[i-len(bodies)]
		cur := responses[i]
		if cur.Peak != prev.Peak || !reflect.DeepEqual(cur.Order, prev.Order) {
			t.Errorf("request %d: schedule diverged from request %d", i, i-len(bodies))
		}
	}
	if hits := s.cache.Stats().Hits; hits < 1 {
		t.Errorf("cache hits = %d, want >= 1", hits)
	}
	if got := s.requests.Load(); got != requests+1 {
		t.Errorf("requests counter = %d, want %d", got, requests+1)
	}
	if s.inFlight.Load() != 0 {
		t.Errorf("in-flight gauge = %d after quiesce", s.inFlight.Load())
	}
}

// TestScheduleReturnsRewrittenGraph pins the contract that makes responses
// self-contained: when rewriting changes the graph, Order indexes the
// rewritten graph, so the response must carry it and the order must be valid
// against it.
func TestScheduleReturnsRewrittenGraph(t *testing.T) {
	_, ts := testServer(t)
	b := serenity.NewBuilder("rewritable")
	in := b.Input(serenity.Shape{1, 16, 16, 4})
	x := b.Conv(in, 8, 3, 1, serenity.PadSame)
	y := b.Conv(in, 8, 3, 1, serenity.PadSame)
	cc := b.Concat(x, y)
	z := b.Conv(cc, 8, 3, 1, serenity.PadSame)
	b.ReLU(z)

	resp, data := postSchedule(t, ts, "", graphBody(t, b.Graph()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got scheduleResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Rewrites == 0 {
		t.Fatal("conv-conv-concat pattern did not rewrite; test graph needs updating")
	}
	if got.RewrittenGraph == nil {
		t.Fatal("rewritten response carries no rewritten_graph; Order is uninterpretable")
	}
	if got.RewrittenGraph.NumNodes() != got.Nodes || len(got.Order) != got.Nodes {
		t.Errorf("rewritten graph has %d nodes, response reports %d with %d order entries",
			got.RewrittenGraph.NumNodes(), got.Nodes, len(got.Order))
	}
	seen := make(map[int]bool)
	for _, id := range got.Order {
		if id < 0 || id >= got.Nodes || seen[id] {
			t.Fatalf("order is not a permutation of the rewritten graph's nodes: %v", got.Order)
		}
		seen[id] = true
	}

	// A graph that does not rewrite must omit the field.
	resp, data = postSchedule(t, ts, "?rewrite=false", graphBody(t, b.Graph()))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var plain scheduleResponse
	if err := json.Unmarshal(data, &plain); err != nil {
		t.Fatal(err)
	}
	if plain.RewrittenGraph != nil {
		t.Error("rewrite=false response still carries rewritten_graph")
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	s, ts := testServer(t)
	if resp, data := postSchedule(t, ts, "", graphBody(t, smallCell(1))); resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule failed: %d %s", resp.StatusCode, data)
	}
	postSchedule(t, ts, "", graphBody(t, smallCell(1)))

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"serenityd_requests_total 2",
		"serenityd_cache_hits_total 1",
		"serenityd_cache_misses_total 1",
		"serenityd_in_flight_requests 0",
		"serenityd_states_explored_total",
		"serenityd_errors_total 0",
		"serenityd_dp_states_per_second",
		"serenityd_dp_frontier_high_water",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}
	if s.states.Load() <= 0 {
		t.Error("states-explored counter never incremented")
	}
	if s.frontierHigh.Load() <= 0 {
		t.Error("frontier high-water gauge never rose above zero")
	}
	if strings.Contains(string(metrics), "serenityd_dp_states_per_second 0.0\n") {
		t.Error("states-per-second gauge is zero after a fresh compilation")
	}
}

func TestScheduleErrors(t *testing.T) {
	s, ts := testServer(t)
	body := graphBody(t, smallCell(1))

	if resp, _ := postSchedule(t, ts, "", []byte("{not json")); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid body: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSchedule(t, ts, "?parallelism=abc", body); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := postSchedule(t, ts, "?budget=1", body); resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("impossible budget: status %d, want 422", resp.StatusCode)
	}
	s.maxNodes = 3
	if resp, _ := postSchedule(t, ts, "", body); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("over max-nodes: status %d, want 413", resp.StatusCode)
	}
	s.maxNodes = 0
	resp, err := ts.Client().Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

func TestQueryOverridesChangeCacheKey(t *testing.T) {
	s, ts := testServer(t)
	body := graphBody(t, smallCell(1))
	postSchedule(t, ts, "", body)
	resp, data := postSchedule(t, ts, "?rewrite=false", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got scheduleResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Error("different options hit the same cache entry")
	}
	if s.cache.Stats().Len != 2 {
		t.Errorf("cache entries = %d, want 2 distinct keys", s.cache.Stats().Len)
	}

	// Parallelism is excluded from the key: results are bit-identical.
	resp, data = postSchedule(t, ts, "?parallelism=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Error("parallelism override missed the cache")
	}
}

// TestStrategyParam: per-request strategy selection reaches the pipeline
// and the response is honestly labeled.
func TestStrategyParam(t *testing.T) {
	_, ts := testServer(t)
	body := graphBody(t, smallCell(4))

	resp, data := postSchedule(t, ts, "?strategy=greedy", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got scheduleResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Strategy != "greedy" {
		t.Errorf("strategy = %q, want greedy", got.Strategy)
	}
	if got.Quality != serenity.QualityHeuristic {
		t.Errorf("quality = %q, want heuristic", got.Quality)
	}
	if got.StatesExplored <= 0 {
		t.Error("greedy response reports no states explored")
	}
	if len(got.SegmentQuality) != len(got.PartitionSizes) {
		t.Errorf("segment_quality %d entries, partitions %d", len(got.SegmentQuality), len(got.PartitionSizes))
	}

	// Exact on the same graph: distinct cache entry, optimal quality, and a
	// peak no better than the heuristic's.
	resp, data = postSchedule(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var exact scheduleResponse
	if err := json.Unmarshal(data, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Cached {
		t.Error("exact request hit the greedy cache entry")
	}
	if exact.Strategy != "exact" || exact.Quality != serenity.QualityOptimal {
		t.Errorf("exact response labeled %q/%q", exact.Strategy, exact.Quality)
	}
	if got.Peak < exact.Peak {
		t.Errorf("greedy peak %d below optimal %d", got.Peak, exact.Peak)
	}
}

// TestBestEffortDeadlineFallback is the serving-side acceptance scenario: a
// deadline far too tight for the exact DP yields 200 with a heuristic
// schedule, and /metrics reports the fallback.
func TestBestEffortDeadlineFallback(t *testing.T) {
	s, ts := testServer(t)
	// Exact DP on this wiring runs seconds per segment; 50ms lands mid-search.
	g := serenity.RandWireCell("be-big", 48, 8, 0.9, 10, 16, 8)
	resp, data := postSchedule(t, ts, "?strategy=best-effort&deadline_ms=50", graphBody(t, g))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got scheduleResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Quality != serenity.QualityHeuristic {
		t.Errorf("quality = %q, want heuristic under an impossible deadline", got.Quality)
	}
	if got.Fallbacks == 0 {
		t.Error("response reports no fallbacks")
	}
	if len(got.Order) != got.Nodes || got.Peak <= 0 {
		t.Errorf("degraded response is not a valid schedule: %d/%d nodes, peak %d", len(got.Order), got.Nodes, got.Peak)
	}
	if s.fallbacks.Load() == 0 {
		t.Error("fallback counter never incremented")
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"serenityd_fallbacks_total",
		"serenityd_heuristic_responses_total 1",
		`serenityd_stage_seconds_total{stage="search"}`,
		`serenityd_stage_seconds_total{stage="alloc"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// Degraded results must not be pinned in the cache.
	resp, data = postSchedule(t, ts, "?strategy=best-effort&deadline_ms=50", graphBody(t, g))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, data)
	}
	var again scheduleResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	if again.Cached {
		t.Error("heuristic fallback response was served from the cache")
	}

	// Same strategy with a generous deadline: full exact quality.
	small := graphBody(t, smallCell(5))
	resp, data = postSchedule(t, ts, "?strategy=best-effort&deadline_ms=60000", small)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var easy scheduleResponse
	if err := json.Unmarshal(data, &easy); err != nil {
		t.Fatal(err)
	}
	if easy.Quality != serenity.QualityOptimal || easy.Fallbacks != 0 {
		t.Errorf("feasible best-effort degraded: quality=%q fallbacks=%d", easy.Quality, easy.Fallbacks)
	}
}

// TestRequestValidation: malformed strategy/deadline/options fail fast with
// 400 and a JSON error body, before any scheduling work.
func TestRequestValidation(t *testing.T) {
	_, ts := testServer(t)
	body := graphBody(t, smallCell(1))
	for _, query := range []string{
		"?strategy=simulated-annealing",
		"?deadline_ms=abc",
		"?deadline_ms=-5",
		"?deadline_ms=0",
		"?parallelism=-2",
	} {
		resp, data := postSchedule(t, ts, query, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", query, resp.StatusCode, data)
			continue
		}
		var e errorResponse
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not a JSON error", query, data)
		}
	}
}

// TestBudgetExceededResponse pins the ErrBudgetExceeded wire contract: a
// distinct 422 status with a JSON error body naming both sides of the
// overflow.
func TestBudgetExceededResponse(t *testing.T) {
	_, ts := testServer(t)
	resp, data := postSchedule(t, ts, "?budget=1", graphBody(t, smallCell(1)))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content type %q, want JSON", ct)
	}
	var e errorResponse
	if err := json.Unmarshal(data, &e); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, data)
	}
	if !strings.Contains(e.Error, "exceeds device budget") {
		t.Errorf("error %q does not explain the budget overflow", e.Error)
	}
}

// TestScheduleBatchEndpoint is the batch acceptance scenario: mixed
// valid/invalid items answered per item (200s alongside 400s in one 200
// response), with the cross-request segment memo shared across items — the
// two stacks reuse each other's cell DP — and the memo metrics moving.
func TestScheduleBatchEndpoint(t *testing.T) {
	s, ts := testServer(t)
	stacked := func(cells int) *serenity.Graph {
		return models.StackedUniformRandWire(fmt.Sprintf("batch-%d", cells), cells, models.WSConfig{
			Nodes: 12, K: 4, P: 0.75, Seed: 9, HW: 8, Channel: 4,
		})
	}
	items := []json.RawMessage{
		graphBody(t, stacked(2)),
		[]byte(`{"nodes": "not-a-graph"}`),
		graphBody(t, stacked(3)),
		graphBody(t, smallCell(7)),
	}
	body, err := json.Marshal(batchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}

	resp, data := postBatch(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var got batchResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Items) != len(items) {
		t.Fatalf("batch answered %d of %d items", len(got.Items), len(items))
	}
	if got.Scheduled != 3 || got.Failed != 1 {
		t.Errorf("scheduled=%d failed=%d, want 3/1", got.Scheduled, got.Failed)
	}
	for i, item := range got.Items {
		if item.Index != i {
			t.Errorf("item %d carries index %d", i, item.Index)
		}
		if i == 1 {
			if item.Status != http.StatusBadRequest || item.Error == "" || item.Schedule != nil {
				t.Errorf("invalid item: status=%d error=%q schedule=%v, want a 400 with an error body", item.Status, item.Error, item.Schedule)
			}
			continue
		}
		if item.Status != http.StatusOK || item.Schedule == nil {
			t.Fatalf("item %d: status=%d error=%q, want 200 with a schedule", i, item.Status, item.Error)
		}
		if len(item.Schedule.Order) != item.Schedule.Nodes || item.Schedule.Peak <= 0 {
			t.Errorf("item %d: not a valid schedule (%d/%d nodes, peak %d)", i, len(item.Schedule.Order), item.Schedule.Nodes, item.Schedule.Peak)
		}
	}

	// The uniform stacks repeat one cell within and across items: the memo
	// must have both hits and misses, and hold entries.
	st := s.segMemo.Stats()
	if st.Hits < 1 || st.Misses < 1 || st.Entries < 1 {
		t.Errorf("segment memo did not move: %+v", st)
	}
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		fmt.Sprintf("serenityd_segment_memo_hits_total %d", st.Hits),
		fmt.Sprintf("serenityd_segment_memo_misses_total %d", st.Misses),
		fmt.Sprintf("serenityd_segment_memo_entries %d", st.Entries),
		"serenityd_batch_requests_total 1",
		fmt.Sprintf("serenityd_batch_items_total %d", len(items)),
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q:\n%s", want, metrics)
		}
	}

	// The same batch again: every valid item is a whole-graph cache hit.
	resp, data = postBatch(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, data)
	}
	var again batchResponse
	if err := json.Unmarshal(data, &again); err != nil {
		t.Fatal(err)
	}
	for i, item := range again.Items {
		if i == 1 {
			continue
		}
		if item.Schedule == nil || !item.Schedule.Cached {
			t.Errorf("repeat item %d not served from the schedule cache", i)
		}
	}
	if st2 := s.segMemo.Stats(); st2.Misses != st.Misses {
		t.Errorf("cached batch re-ran segment searches: misses %d -> %d", st.Misses, st2.Misses)
	}
}

// TestScheduleBatchErrors: the batch envelope itself fails fast — bad
// method, malformed body, empty and oversized batches, bad query options.
func TestScheduleBatchErrors(t *testing.T) {
	_, ts := testServer(t)
	if resp, data := postBatch(t, ts, "", []byte(`{not json`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400 (%s)", resp.StatusCode, data)
	}
	if resp, data := postBatch(t, ts, "", []byte(`{"items": []}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400 (%s)", resp.StatusCode, data)
	}
	if resp, data := postBatch(t, ts, "?strategy=quantum", []byte(`{"items": [0]}`)); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad strategy: status %d, want 400 (%s)", resp.StatusCode, data)
	}
	over := batchRequest{Items: make([]json.RawMessage, maxBatchItems+1)}
	for i := range over.Items {
		over.Items[i] = json.RawMessage("0")
	}
	body, err := json.Marshal(over)
	if err != nil {
		t.Fatal(err)
	}
	if resp, data := postBatch(t, ts, "", body); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized batch: status %d, want 413 (%s)", resp.StatusCode, data)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/schedule/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestScheduleBatchPerItemBudget: a budget only some items can meet fails
// exactly the over-budget items with the single endpoint's 422, leaving the
// rest scheduled.
func TestScheduleBatchPerItemBudget(t *testing.T) {
	_, ts := testServer(t)
	items := []json.RawMessage{
		graphBody(t, smallCell(1)),
		// Same wiring at double resolution and channels: 4x the tensor
		// bytes, so a budget between the two arenas always exists.
		graphBody(t, serenity.RandWireCell("big-cell", 12, 4, 0.75, 1, 16, 8)),
	}
	body, err := json.Marshal(batchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	// First find a budget between the two arenas: schedule both unbudgeted.
	resp, data := postBatch(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe status %d: %s", resp.StatusCode, data)
	}
	var probe batchResponse
	if err := json.Unmarshal(data, &probe); err != nil {
		t.Fatal(err)
	}
	if probe.Scheduled != 2 {
		t.Fatalf("probe scheduled %d of 2", probe.Scheduled)
	}
	lo, hi := probe.Items[0].Schedule.ArenaSize, probe.Items[1].Schedule.ArenaSize
	if lo == hi {
		t.Skip("cells landed on equal arenas; no budget separates them")
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	resp, data = postBatch(t, ts, fmt.Sprintf("?budget=%d", lo), body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("budget batch status %d: %s", resp.StatusCode, data)
	}
	var got batchResponse
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Scheduled != 1 || got.Failed != 1 {
		t.Fatalf("scheduled=%d failed=%d, want exactly the affordable item to pass", got.Scheduled, got.Failed)
	}
	for _, item := range got.Items {
		if item.Schedule != nil && item.Schedule.ArenaSize > lo {
			t.Errorf("item %d scheduled over budget", item.Index)
		}
		if item.Status != http.StatusOK && item.Status != http.StatusUnprocessableEntity {
			t.Errorf("item %d: status %d, want 200 or 422", item.Index, item.Status)
		}
		if item.Status == http.StatusUnprocessableEntity && !strings.Contains(item.Error, "exceeds device budget") {
			t.Errorf("over-budget item error %q does not explain the overflow", item.Error)
		}
	}
}

func postBatch(t *testing.T, ts *httptest.Server, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule/batch"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen smoke test is not short")
	}
	opts := serenity.DefaultOptions()
	opts.StepTimeout = 500 * time.Millisecond
	s := newServer(opts, 64)
	s.segMemo = serenity.NewSegmentMemo(1024)
	s.admit = newAdmission(2, [numClasses]int{64, 64, 64})
	s.refine = serenity.NewRefinePool(s.segMemo, nil, serenity.RefinePoolOptions{
		Workers: 1, QueueDepth: 256,
		Gate: func(ctx context.Context) (func(), error) {
			return s.admit.acquire(ctx, classRefine, 1)
		},
	})
	defer s.refine.Close()
	var out bytes.Buffer
	if err := runLoadgen(s, 30, 8, &out); err != nil {
		t.Fatalf("loadgen: %v\n%s", err, out.String())
	}
	if s.cache.Stats().Hits < 1 {
		t.Errorf("loadgen produced no cache hits:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "refined to exact in") &&
		!strings.Contains(out.String(), "nothing to refine") {
		t.Errorf("loadgen overload drill never reported:\n%s", out.String())
	}
}
