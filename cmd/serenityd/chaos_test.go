package main

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	serenity "github.com/serenity-ml/serenity"
	"github.com/serenity-ml/serenity/internal/fleet"
)

// runServerChaosSchedule replays one seeded fault schedule against a 3-node
// serenityd fleet doing REAL compiles. The invariants are the service-level
// contract under faults:
//
//   - every compile answers 200 with optimal quality — a partition costs
//     latency and duplicate work, never an error or a degraded schedule;
//   - schedules are bit-identical no matter which node compiled them, warm
//     or cold, partitioned or not;
//   - pay-once holds up to partitions: each fresh DP run beyond the first
//     per graph must be explained by an isolation event;
//   - after the final heal, health views reconverge, anti-entropy merges the
//     stores, and every node replays the whole corpus with zero new DP work.
func runServerChaosSchedule(t *testing.T, seed int64) {
	nodes := testFleet(t, 3)
	rng := rand.New(rand.NewSource(seed))

	graphs := make([][]byte, 5)
	for i := range graphs {
		graphs[i] = graphBody(t, smallCell(seed*100+int64(i)))
	}
	orders := make([][]int, len(graphs))
	isolated := -1
	isolations := 0
	freshCompiles := 0

	isolate := func(i int) {
		nodes[i].fault.Isolate()
		for j, n := range nodes {
			if j != i {
				n.fault.Partition(nodes[i].ts.URL)
			}
		}
	}
	healAll := func() {
		for _, n := range nodes {
			n.fault.Rejoin()
		}
	}

	const steps = 16
	for step := 0; step < steps; step++ {
		switch op := rng.Intn(10); {
		case op < 6:
			ni := rng.Intn(len(nodes))
			gi := rng.Intn(len(graphs))
			before := nodes[ni].s.states.Load()
			// fleetPost fails the test on any non-200: no fault sequence may
			// surface a client-visible error.
			sr := fleetPost(t, nodes[ni], graphs[gi])
			if sr.Quality != serenity.QualityOptimal {
				t.Fatalf("seed %d step %d: node %d answered quality %q", seed, step, ni, sr.Quality)
			}
			if orders[gi] == nil {
				orders[gi] = sr.Order
			} else if !reflect.DeepEqual(sr.Order, orders[gi]) {
				t.Fatalf("seed %d step %d: node %d order %v diverged from canonical %v",
					seed, step, ni, sr.Order, orders[gi])
			}
			if nodes[ni].s.states.Load() != before {
				freshCompiles++
			}
			// Barrier the write-behind pushes so the pay-once ledger below is
			// deterministic rather than a race against the replication queue.
			nodes[ni].s.peers.Drain()
		case op < 8:
			if isolated >= 0 {
				continue
			}
			isolated = rng.Intn(len(nodes))
			isolate(isolated)
			isolations++
		default:
			if isolated < 0 {
				continue
			}
			healAll()
			isolated = -1
		}
	}

	// Pay-once ledger: the first compile of each graph pays; each isolation
	// can make both sides of the cut pay again (the isolated node recomputes
	// what it cannot fetch, survivors recompute what the isolated node owned).
	// The +2 absorbs a spurious probe blip on an overloaded CI machine.
	if max := len(graphs)*(1+2*isolations) + 2; freshCompiles > max {
		t.Errorf("seed %d: %d fresh compiles exceed the pay-once bound %d (%d isolations)",
			seed, freshCompiles, max, isolations)
	}

	// Final heal: health views must reconverge to all-alive on every node.
	healAll()
	deadline := time.Now().Add(15 * time.Second)
	allAlive := func() bool {
		for _, n := range nodes {
			for _, st := range n.s.health.Snapshot() {
				if st != fleet.StateAlive {
					return false
				}
			}
		}
		return true
	}
	for !allAlive() {
		if time.Now().After(deadline) {
			t.Fatalf("seed %d: health views never reconverged to all-alive", seed)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Merge the partition-era corpora, then make sure every graph exists
	// somewhere (a schedule may never have compiled some of them) and share it.
	ctx := context.Background()
	for _, n := range nodes {
		n.s.peers.Drain()
	}
	converge := func() {
		for pass := 0; pass < 4; pass++ {
			total := 0
			for _, n := range nodes {
				pulled, err := n.s.syncer.Converge(ctx)
				if err != nil {
					t.Fatalf("seed %d: post-heal converge: %v", seed, err)
				}
				total += pulled
			}
			if total == 0 {
				return
			}
		}
	}
	converge()
	for gi, g := range graphs {
		sr := fleetPost(t, nodes[0], g)
		if orders[gi] == nil {
			orders[gi] = sr.Order
		} else if !reflect.DeepEqual(sr.Order, orders[gi]) {
			t.Fatalf("seed %d: priming pass diverged on graph %d", seed, gi)
		}
	}
	nodes[0].s.peers.Drain()
	converge()

	// Replay the whole corpus on every node: bit-identical answers and ZERO
	// new fresh DP states fleet-wide — the fleet is one shared corpus again.
	for ni, n := range nodes {
		before := n.s.states.Load()
		for gi, g := range graphs {
			sr := fleetPost(t, n, g)
			if !reflect.DeepEqual(sr.Order, orders[gi]) {
				t.Fatalf("seed %d: post-heal replay on node %d diverged on graph %d", seed, ni, gi)
			}
		}
		if d := n.s.states.Load() - before; d != 0 {
			t.Errorf("seed %d: node %d re-explored %d DP states after reconvergence", seed, ni, d)
		}
	}
}

// TestServerChaosSchedules is the daemon-scope companion to the fleet
// package's 50-seed chaos suite: fewer seeds (compiles are real), same shape.
func TestServerChaosSchedules(t *testing.T) {
	seeds := 6
	if testing.Short() {
		seeds = 2
	}
	for seed := 1; seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%02d", seed), func(t *testing.T) {
			t.Parallel()
			runServerChaosSchedule(t, int64(seed))
		})
	}
}
