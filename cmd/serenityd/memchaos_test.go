package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"runtime/pprof"
	"sync"
	"testing"
	"time"

	serenity "github.com/serenity-ml/serenity"
	"github.com/serenity-ml/serenity/internal/govern"
)

// checkGoroutines polls until the goroutine count returns to (about) the
// captured baseline, failing with a full goroutine dump if the shutdown path
// stranded anything — the governor watchdog, the refine requeue loop, or a
// worker blocked on a channel nobody will close.
func checkGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			var buf bytes.Buffer
			_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Errorf("goroutine leak after shutdown: %d at start, %d now\n%s",
				baseline, runtime.NumGoroutine(), buf.String())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// newMemChaosServer builds the full overload stack — segment memo, admission
// semaphore, memory governor with a live watchdog, and a refinement pool that
// parks under pressure — and registers shutdown plus a goroutine-leak check.
// The governor reads an injected zero heap load so the pressure level is
// driven purely by the reservation ledger: deterministic under the race
// detector regardless of how much the test binary itself has allocated.
func newMemChaosServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	// +2 of slack on the full stack: the runtime and the HTTP transport own
	// a couple of transient goroutines (GC workers, timer wakeups) that come
	// and go outside our control.
	baseline := runtime.NumGoroutine()
	t.Cleanup(func() { checkGoroutines(t, baseline, 2) })

	opts := serenity.DefaultOptions()
	opts.StepTimeout = 500 * time.Millisecond
	opts.Parallelism = 4
	s := newServer(opts, 256)
	s.segMemo = serenity.NewSegmentMemo(1024)
	s.admit = newAdmission(4, [numClasses]int{16, 16, 16})
	s.gov = govern.New(govern.Options{
		Limit:          64 << 20,
		Headroom:       1,
		SampleInterval: 5 * time.Millisecond,
		ReadLoad:       func() int64 { return 0 },
	})
	if !s.gov.Enabled() {
		t.Fatal("chaos governor failed to enable")
	}
	s.gov.Start()
	t.Cleanup(s.gov.Stop)
	s.refine = serenity.NewRefinePool(s.segMemo, nil, serenity.RefinePoolOptions{
		Workers: 2, QueueDepth: 256,
		RequeueInterval: 2 * time.Millisecond,
		Pressure:        func() bool { return s.gov.Level() >= govern.LevelElevated },
		Gate: func(ctx context.Context) (func(), error) {
			return s.admit.acquire(ctx, classRefine, 1)
		},
	})
	t.Cleanup(s.refine.Close)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(ts.Client().CloseIdleConnections)
	return s, ts
}

// TestMemChaosSurvivesPressure is the OOM-chaos certification: seeded mixed
// traffic (exact, forced-degraded best-effort, batch) hammers the server
// while a chaos goroutine oscillates ballast reservations across the whole
// pressure ladder. The contract under fire: every response is 200, 429, or
// 503 — never a hung connection, never an unexplained 5xx — and every
// rejection carries Retry-After. Then pressure clears and the damage must be
// temporary: the pool drains, and a degraded answer repairs to a schedule
// bit-identical to an unpressured exact compilation.
func TestMemChaosSurvivesPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is not short")
	}
	s, ts := newMemChaosServer(t)
	limit := s.gov.Stats().Limit

	// Small adversarial graphs: parallel chains with no articulation points,
	// so every request lands its whole frontier in one governed search.
	const nGraphs = 6
	bodies := make([][]byte, nGraphs)
	for i := range bodies {
		g := serenity.AdversarialWideGraph(fmt.Sprintf("adv-chaos-%d", i), 6, 3, 8, 4, int64(i))
		var buf bytes.Buffer
		if err := serenity.WriteGraphJSON(&buf, g); err != nil {
			t.Fatal(err)
		}
		bodies[i] = buf.Bytes()
	}

	post := func(path string, body []byte) (*http.Response, []byte, error) {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		data, err := readAllClose(resp)
		return resp, data, err
	}

	// The chaos goroutine: book 50–100% of the effective limit as ballast,
	// hold it a few milliseconds, release, breathe, repeat. Every tier of the
	// ladder is visited many times over the soak.
	chaosStop := make(chan struct{})
	chaosDone := make(chan struct{})
	go func() {
		defer close(chaosDone)
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-chaosStop:
				return
			default:
			}
			frac := 0.5 + 0.5*rng.Float64()
			ballast := s.gov.Reserve(int64(frac * float64(limit)))
			s.gov.Refresh()
			time.Sleep(time.Duration(2+rng.Intn(4)) * time.Millisecond)
			ballast.Release()
			s.gov.Refresh()
			time.Sleep(time.Duration(1+rng.Intn(3)) * time.Millisecond)
		}
	}()

	// Mixed traffic: 8 seeded workers, each interleaving interactive exact
	// requests, forced-degraded best-effort (so refinements keep flowing into
	// the parking lot), and 2-item batches (the first class shed at High).
	const (
		workers    = 8
		iterations = 30
	)
	var (
		mu       sync.Mutex
		statuses = map[int]int{}
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterations; i++ {
				body := bodies[rng.Intn(nGraphs)]
				var (
					resp *http.Response
					data []byte
					err  error
				)
				switch rng.Intn(3) {
				case 0:
					resp, data, err = post("/v1/schedule", body)
				case 1:
					resp, data, err = post("/v1/schedule?strategy=best-effort&deadline_ms=2000&degrade=force", body)
				default:
					batch, merr := json.Marshal(map[string]any{
						"items": []json.RawMessage{bodies[rng.Intn(nGraphs)], body},
					})
					if merr != nil {
						t.Error(merr)
						return
					}
					resp, data, err = post("/v1/schedule/batch", batch)
				}
				if err != nil {
					t.Errorf("worker %d: transport error: %v", seed, err)
					return
				}
				switch resp.StatusCode {
				case http.StatusOK:
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					if resp.Header.Get("Retry-After") == "" {
						t.Errorf("worker %d: %d rejection without Retry-After: %s", seed, resp.StatusCode, data)
					}
				default:
					t.Errorf("worker %d: status %d outside the overload contract: %s", seed, resp.StatusCode, data)
				}
				mu.Lock()
				statuses[resp.StatusCode]++
				mu.Unlock()
			}
		}(int64(100 + w))
	}
	wg.Wait()
	close(chaosStop)
	<-chaosDone

	// Deterministic rung checks after the random soak: hold Critical ballast
	// and certify both halves of the split — exact traffic answers a typed
	// 503 + Retry-After, best-effort degrades to 200 heuristic.
	for s.gov.Refresh() != govern.LevelNormal {
		time.Sleep(time.Millisecond)
	}
	crit := s.gov.Reserve(int64(0.97 * float64(limit)))
	if lvl := s.gov.Refresh(); lvl != govern.LevelCritical {
		t.Fatalf("critical ballast yields level %s", lvl)
	}
	var fresh bytes.Buffer
	if err := serenity.WriteGraphJSON(&fresh,
		serenity.AdversarialWideGraph("adv-chaos-fresh", 6, 3, 8, 4, 999)); err != nil {
		t.Fatal(err)
	}
	resp503, data503, err := post("/v1/schedule", fresh.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if resp503.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("exact under held critical ballast: status %d, want 503: %s", resp503.StatusCode, data503)
	}
	if resp503.Header.Get("Retry-After") == "" {
		t.Error("critical 503 missing Retry-After")
	}
	respBE, dataBE, err := post("/v1/schedule?strategy=best-effort&deadline_ms=2000", fresh.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if respBE.StatusCode != http.StatusOK {
		t.Fatalf("best-effort under held critical ballast: status %d: %s", respBE.StatusCode, dataBE)
	}
	var degraded scheduleResponse
	if err := json.Unmarshal(dataBE, &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Quality != serenity.QualityHeuristic {
		t.Fatalf("best-effort under critical ballast served quality %q, want heuristic", degraded.Quality)
	}
	crit.Release()

	// Recovery: pressure gone, parked refinements requeue and drain, and the
	// degraded answer repairs to exactly what an unpressured exact compile of
	// the same graph produces — order, peak, arena, bit for bit.
	deadline := time.Now().Add(10 * time.Second)
	for s.gov.Refresh() != govern.LevelNormal {
		if time.Now().After(deadline) {
			t.Fatalf("level stuck at %s after chaos: %+v", s.gov.Level(), s.gov.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	drainRefine(t, s.refine)
	respRef, dataRef, err := post("/v1/schedule?strategy=best-effort&deadline_ms=2000&wait_refined=30000", fresh.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var refined scheduleResponse
	if respRef.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos refined request: status %d: %s", respRef.StatusCode, dataRef)
	}
	if err := json.Unmarshal(dataRef, &refined); err != nil {
		t.Fatal(err)
	}
	if refined.Quality != serenity.QualityOptimal {
		t.Fatalf("degraded answer never repaired: quality %q", refined.Quality)
	}
	respEx, dataEx, err := post("/v1/schedule", fresh.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var exact scheduleResponse
	if respEx.StatusCode != http.StatusOK {
		t.Fatalf("post-chaos exact request: status %d: %s", respEx.StatusCode, dataEx)
	}
	if err := json.Unmarshal(dataEx, &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Peak != refined.Peak || exact.ArenaSize != refined.ArenaSize {
		t.Errorf("repaired peak/arena %d/%d diverged from exact %d/%d",
			refined.Peak, refined.ArenaSize, exact.Peak, exact.ArenaSize)
	}
	if fmt.Sprint(exact.Order) != fmt.Sprint(refined.Order) {
		t.Errorf("repaired order diverged from exact\nexact: %v\ngot:   %v", exact.Order, refined.Order)
	}

	if statuses[http.StatusOK] == 0 {
		t.Error("chaos soak produced no successful responses")
	}
	gs := s.gov.Stats()
	if gs.Degraded == 0 {
		t.Errorf("chaos never forced a degradation: %+v", gs)
	}
	t.Logf("chaos soak: statuses=%v governor=%+v refine=%+v", statuses, gs, s.refine.Stats())
}

// readAllClose drains and closes a response body.
func readAllClose(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// TestGovernorShutdownNoLeak pins the watchdog lifecycle: Start launches one
// sampling goroutine, Stop retires it synchronously and is idempotent, and a
// second Start after Stop stays a no-op (startOnce), so shutdown never
// strands a ticker loop.
func TestGovernorShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	g := govern.New(govern.Options{
		Limit:          1 << 20,
		SampleInterval: time.Millisecond,
		ReadLoad:       func() int64 { return 0 },
	})
	if !g.Enabled() {
		t.Fatal("governor failed to enable")
	}
	g.Start()
	time.Sleep(5 * time.Millisecond) // let the watchdog tick
	g.Stop()
	g.Stop()  // idempotent
	g.Start() // post-Stop Start must not relaunch the watchdog
	// Zero slack: the watchdog is exactly one goroutine, so any residue here
	// is a real leak.
	checkGoroutines(t, before, 0)
}
