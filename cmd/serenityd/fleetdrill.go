package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"sync/atomic"
	"time"

	serenity "github.com/serenity-ml/serenity"
	"github.com/serenity-ml/serenity/internal/fleet"
)

// drillNode is one member of the in-process drill fleet.
type drillNode struct {
	s   *server
	ts  *httptest.Server
	dir string
	// fault fronts every outbound fleet path (fetch, replication, sync,
	// probes), so the drill partitions and heals nodes with rule edits.
	fault *fleet.FaultTransport
}

// newDrillFleet stands up n serenityd instances, each with its own segment
// memo and persistent store, joined into one consistent-hash ring over their
// httptest URLs. The handlers are late-bound because the ring needs every
// member's URL, and URLs only exist once the listeners are up.
func newDrillFleet(opts serenity.Options, n int) ([]*drillNode, error) {
	handlers := make([]atomic.Value, n)
	nodes := make([]*drillNode, n)
	urls := make([]string, n)
	for i := range nodes {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			h, _ := handlers[i].Load().(http.Handler)
			if h == nil {
				http.Error(w, "booting", http.StatusServiceUnavailable)
				return
			}
			h.ServeHTTP(w, r)
		}))
		nodes[i] = &drillNode{ts: ts}
		urls[i] = ts.URL
	}
	for i, node := range nodes {
		dir, err := os.MkdirTemp("", "serenityd-fleet-drill-")
		if err != nil {
			return nodes, err
		}
		node.dir = dir
		store, err := serenity.OpenScheduleStore(dir, 0)
		if err != nil {
			return nodes, err
		}
		ring, err := fleet.NewRing(urls[i], urls, fleet.DefaultVirtualNodes)
		if err != nil {
			return nodes, err
		}
		s := newServer(opts, 64)
		s.segMemo = serenity.NewSegmentMemo(4096)
		s.store = store
		s.ring.Store(ring)
		s.peerVnodes = fleet.DefaultVirtualNodes
		node.fault = fleet.NewFaultTransport(nil, int64(i+1))
		hc := &http.Client{Transport: node.fault}
		// Fast probes so failure detection converges in drill time, probing
		// /readyz the way production does.
		s.health = fleet.NewHealth(ring.Peers(), fleet.HealthOptions{
			Interval:   50 * time.Millisecond,
			Timeout:    500 * time.Millisecond,
			DeadAfter:  2,
			ProbePath:  "/readyz",
			HTTPClient: hc,
		})
		// Generous fetch budget: the drill proves correctness, not latency,
		// and a loaded CI machine must not flake it on a slow scheduler tick.
		s.peers = fleet.NewClient(ring, fleet.ClientOptions{
			Timeout:    2 * time.Second,
			HTTPClient: hc,
			Health:     s.health,
		})
		s.peerSrv = fleet.NewServer(store, ring, peerGate(8))
		// Traced compiles on one node stitch their peer-serve child spans on
		// the owner — the drill fleet mirrors production wiring.
		s.peerSrv.SetTracer(s.tracer)
		// No background loop: the drill drives anti-entropy deterministically
		// through SyncOnce.
		s.syncer = fleet.NewSyncer(store, ring, fleet.SyncerOptions{
			Batch:      64,
			HTTPClient: hc,
			Health:     s.health,
		})
		s.ready.Store(true)
		node.s = s
		handlers[i].Store(s.handler())
	}
	// Probers start only after EVERY node's handler is live: a probe landing
	// on a still-booting handler reads 503 and would boot the fleet into
	// false suspects.
	for _, node := range nodes {
		if node.s != nil && node.s.health != nil {
			node.s.health.Start()
		}
	}
	return nodes, nil
}

func (n *drillNode) close() {
	if n.ts != nil {
		n.ts.Close()
	}
	if n.s != nil {
		closeFleet(n.s)
		closeStore(n.s)
	}
	if n.dir != "" {
		os.RemoveAll(n.dir)
	}
}

// drillPost compiles one graph on a node and decodes the response.
func drillPost(ts *httptest.Server, body []byte) (*scheduleResponse, error) {
	resp, err := ts.Client().Post(ts.URL+"/v1/schedule", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("schedule on %s answered %d: %s", ts.URL, resp.StatusCode, data)
	}
	var sr scheduleResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// runFleetDrill (-loadgen-fleet) proves the fleet's contract end to end on a
// 3-node in-process cluster:
//
//  1. Global pay-once — node A compiles the bundled model zoo and its
//     write-behind replication distributes the artifacts to their ring
//     owners; node B then compiles the same zoo with ZERO fresh DP states
//     (every segment answered by a peer fetch or a replicated store record)
//     and bit-identical schedules.
//  2. Anti-entropy — node C, which never saw the traffic, pulls the corpus
//     digest-diff by digest-diff in capped batches until it converges, then
//     also compiles the zoo without fresh search work.
//  3. Dead-owner degradation — node A is killed outright; a graph nobody has
//     compiled still gets an exact schedule from node B (peer fetches time
//     out, the DP runs locally, no client-visible error).
//  4. Health-driven failover — B's prober marks the killed node dead; the
//     NEXT unseen graph compiles with zero new peer timeouts, because dead
//     owners are skipped outright and their keys fail over to live members.
//  5. Partition and rejoin — B and C are cut apart by the fault transports;
//     B still compiles exactly during the partition, and after the cut heals
//     the two views revive each other, C converges the partition-era corpus
//     via anti-entropy, and C replays it with zero fresh DP states.
func runFleetDrill(opts serenity.Options, out io.Writer) error {
	bodies, err := loadgenWorkload()
	if err != nil {
		return err
	}
	nodes, err := newDrillFleet(opts, 3)
	defer func() {
		for _, n := range nodes {
			if n != nil {
				n.close()
			}
		}
	}()
	if err != nil {
		return err
	}
	a, b, c := nodes[0], nodes[1], nodes[2]
	fmt.Fprintf(out, "fleet drill: 3 nodes, %d graphs; shares A=%.2f B=%.2f C=%.2f\n",
		len(bodies), a.s.ring.Load().OwnedShare(4096), b.s.ring.Load().OwnedShare(4096), c.s.ring.Load().OwnedShare(4096))

	// Pass 1: node A pays for the corpus.
	start := time.Now()
	orders := make([][]int, len(bodies))
	for i, body := range bodies {
		sr, err := drillPost(a.ts, body)
		if err != nil {
			return err
		}
		orders[i] = sr.Order
	}
	coldElapsed := time.Since(start)
	// The drill is a barrier-style drill: wait for every write-behind
	// replication so B's "zero fresh states" assertion is deterministic.
	a.s.peers.Drain()
	fmt.Fprintf(out, "fleet drill: node A cold pass %s, %d fresh DP states, %d artifacts replicated to owners\n",
		coldElapsed.Round(time.Millisecond), a.s.states.Load(), a.s.peers.Stats().Replicated)

	// Pass 2: node B compiles the same zoo from the fleet alone.
	start = time.Now()
	for i, body := range bodies {
		sr, err := drillPost(b.ts, body)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(sr.Order, orders[i]) {
			return fmt.Errorf("fleet drill: node B's schedule for graph %d diverged from node A's", i)
		}
	}
	warmElapsed := time.Since(start)
	bs := b.s.peers.Stats()
	if fresh := b.s.states.Load(); fresh != 0 {
		return fmt.Errorf("fleet drill: node B explored %d fresh DP states; the fleet should have answered every segment", fresh)
	}
	if bs.Hits == 0 {
		return fmt.Errorf("fleet drill: node B reported no peer hits compiling a fleet-warm corpus")
	}
	fmt.Fprintf(out, "fleet drill: node B warm pass %s (%.1fx cold), 0 fresh DP states, %d peer hits, bit-identical schedules\n",
		warmElapsed.Round(time.Millisecond), coldElapsed.Seconds()/warmElapsed.Seconds(), bs.Hits)

	// Anti-entropy: node C pulls the corpus from A in capped batches.
	pulled, rounds := 0, 0
	for ; rounds < 64; rounds++ {
		n, err := c.s.syncer.SyncOnce(context.Background(), a.ts.URL)
		if err != nil {
			return fmt.Errorf("fleet drill: anti-entropy round %d: %w", rounds, err)
		}
		pulled += n
		if n == 0 {
			break
		}
	}
	if pulled == 0 {
		return fmt.Errorf("fleet drill: anti-entropy pulled nothing; node A's corpus should have been missing from C")
	}
	for i, body := range bodies {
		sr, err := drillPost(c.ts, body)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(sr.Order, orders[i]) {
			return fmt.Errorf("fleet drill: node C's schedule for graph %d diverged after anti-entropy", i)
		}
	}
	if fresh := c.s.states.Load(); fresh != 0 {
		return fmt.Errorf("fleet drill: node C explored %d fresh DP states after anti-entropy convergence", fresh)
	}
	fmt.Fprintf(out, "fleet drill: node C converged via anti-entropy: %d records over %d rounds, then compiled the zoo with 0 fresh DP states\n",
		pulled, rounds+1)

	// Dead-owner degradation: kill A, then compile a graph nobody has seen on
	// B. Peer fetches to the dead owner fail fast and the DP runs locally.
	a.ts.Close()
	fresh := serenity.RandWireCell("rw-fleet-drill-dead-owner", 24, 4, 0.75, 99, 16, 8)
	var buf bytes.Buffer
	if err := serenity.WriteGraphJSON(&buf, fresh); err != nil {
		return err
	}
	sr, err := drillPost(b.ts, buf.Bytes())
	if err != nil {
		return fmt.Errorf("fleet drill: compile with a dead peer surfaced an error: %w", err)
	}
	if sr.Quality != serenity.QualityOptimal {
		return fmt.Errorf("fleet drill: dead-peer compile degraded quality to %q", sr.Quality)
	}
	fmt.Fprintf(out, "fleet drill: killed node A; node B compiled an unseen graph locally (%d fresh states, quality %s, no error)\n",
		b.s.states.Load(), sr.Quality)

	// Health-driven failover: once B's prober marks A dead, unseen graphs
	// stop paying even the discovery timeout — dead owners are skipped, not
	// dialed, and their keys fail over to live ring points.
	waitState := func(viewer *drillNode, peer string, want fleet.State) error {
		deadline := time.Now().Add(15 * time.Second)
		for viewer.s.health.State(peer) != want {
			if time.Now().After(deadline) {
				return fmt.Errorf("fleet drill: %s never saw %s reach %s (stuck at %s)",
					viewer.ts.URL, peer, want, viewer.s.health.State(peer))
			}
			time.Sleep(10 * time.Millisecond)
		}
		return nil
	}
	if err := waitState(b, a.ts.URL, fleet.StateDead); err != nil {
		return err
	}
	timeoutsBefore := b.s.peers.Stats().Timeouts
	failover := serenity.RandWireCell("rw-fleet-drill-failover", 24, 4, 0.75, 101, 16, 8)
	buf.Reset()
	if err := serenity.WriteGraphJSON(&buf, failover); err != nil {
		return err
	}
	fsr, err := drillPost(b.ts, buf.Bytes())
	if err != nil {
		return fmt.Errorf("fleet drill: post-failover compile surfaced an error: %w", err)
	}
	if fsr.Quality != serenity.QualityOptimal {
		return fmt.Errorf("fleet drill: post-failover compile degraded quality to %q", fsr.Quality)
	}
	if d := b.s.peers.Stats().Timeouts - timeoutsBefore; d != 0 {
		return fmt.Errorf("fleet drill: post-failover compile burned %d peer timeouts; a dead owner must be skipped, not dialed", d)
	}
	fmt.Fprintf(out, "fleet drill: B marked A dead and compiled another unseen graph with 0 new peer timeouts (%d failovers routed)\n",
		b.s.peers.Stats().Failovers)

	// Partition and rejoin: cut B and C apart (both directions), compile on B
	// mid-partition, heal, wait for the views to revive, and converge C.
	b.fault.Partition(c.ts.URL)
	c.fault.Partition(b.ts.URL)
	if err := waitState(b, c.ts.URL, fleet.StateDead); err != nil {
		return err
	}
	parted := serenity.RandWireCell("rw-fleet-drill-partition", 24, 4, 0.75, 103, 16, 8)
	buf.Reset()
	if err := serenity.WriteGraphJSON(&buf, parted); err != nil {
		return err
	}
	psr, err := drillPost(b.ts, buf.Bytes())
	if err != nil {
		return fmt.Errorf("fleet drill: mid-partition compile surfaced an error: %w", err)
	}
	b.fault.Heal(c.ts.URL)
	c.fault.Heal(b.ts.URL)
	if err := waitState(b, c.ts.URL, fleet.StateAlive); err != nil {
		return err
	}
	cPulled := 0
	for rounds := 0; rounds < 64; rounds++ {
		n, err := c.s.syncer.SyncOnce(context.Background(), b.ts.URL)
		if err != nil {
			return fmt.Errorf("fleet drill: post-heal anti-entropy: %w", err)
		}
		cPulled += n
		if n == 0 {
			break
		}
	}
	statesBefore := c.s.states.Load()
	crs, err := drillPost(c.ts, buf.Bytes())
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(crs.Order, psr.Order) {
		return fmt.Errorf("fleet drill: C's post-heal schedule diverged from B's mid-partition one")
	}
	if d := c.s.states.Load() - statesBefore; d != 0 {
		return fmt.Errorf("fleet drill: C re-explored %d DP states for a corpus anti-entropy already delivered", d)
	}
	fmt.Fprintf(out, "fleet drill: partition healed; C pulled %d records and replayed the partition-era graph with 0 fresh DP states\n",
		cPulled)
	fmt.Fprintln(out, "fleet drill: PASS")
	return nil
}
