// Command serenityd is the SERENITY compile server: it schedules dataflow
// graphs for minimum peak activation memory over HTTP, caching results by
// structural fingerprint so repeated compilations of the same topology are
// O(1).
//
//	serenityd -addr :7433 [-cache 256] [-parallelism 8] [-timeout 1s]
//
// Endpoints:
//
//	POST /v1/schedule   body: graph in the JSON IR format (see internal/graph)
//	                    query: parallelism=N, budget=250KiB, rewrite=false,
//	                    partition=false, strategy=exact|greedy|best-effort,
//	                    deadline_ms=N override the server defaults; with
//	                    strategy=best-effort an expiring deadline degrades
//	                    the search to the greedy heuristic instead of
//	                    failing the request. degrade=force (best-effort
//	                    only) skips the exact search outright — the
//	                    deterministic overload drill. wait_refined=ms holds
//	                    a degraded response back up to that long waiting
//	                    for its background refinement to land.
//	                    response: order, peak, arena_size, quality,
//	                    segment_quality, fallbacks, stage_ms,
//	                    segment_memo_hits, schedule_version, ...; when
//	                    rewriting changed the graph, rewritten_graph
//	                    carries the IR the order indexes. Every response
//	                    carries an ETag; a client holding a degraded answer
//	                    revalidates with If-None-Match and gets 304 until
//	                    the refinement bumps schedule_version
//	POST /v1/schedule/batch
//	                    body: {"items": [<graph>, ...]} (same IR, up to 256
//	                    graphs); same query parameters, applied to every
//	                    item. Items fan out over a worker pool bounded by
//	                    parallelism and are answered per item: the response
//	                    is {"items": [{index, status, schedule|error},...],
//	                    "scheduled": N, "failed": M} with per-item statuses
//	                    matching the single endpoint (one bad graph fails
//	                    its item, not the batch)
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus-style counters (cache hits, in-flight
//	                    requests, states explored, fallbacks, per-stage
//	                    compile seconds, segment memo hits/misses, ...)
//
// Beyond the whole-graph schedule cache, the server keeps a cross-request
// *segment* memo (-segment-memo-size, 0 disables): per-segment DP results
// keyed by the segment's structural fingerprint plus the strategy, shared
// across all requests. Different models that stack the same cell — the
// repeated-cell shape of NAS-style irregularly wired networks — pay for that
// cell's DP once, ever; concurrent requests for the same segment coalesce
// into one search. Degraded (deadline-fallback) segment results are never
// memoized, so one overloaded moment cannot pin heuristic schedules.
//
// Degraded answers are provisional, not final: a compilation that fell back
// queues its exact re-search with the background refinement pool
// (-refine-workers/-refine-queue), which repairs the segment memo, the
// persistent store, and the response cache once the load subsides — serve
// now, refine when quiet. Compile slots (-compile-slots) are granted by a
// strict-priority admission controller: interactive requests ahead of batch,
// batch ahead of refinement, each class's wait queue bounded (-admit-queue)
// and answering 429 + Retry-After when full instead of hanging connections.
//
// A memory governor (-mem-limit, or GOMEMLIMIT when unset) keeps the whole
// degradation machinery ahead of the OOM killer: every fresh search reserves
// its estimated byte footprint, sampled heap liveness plus the reservation
// ledger is compared against 70/85/95% watermarks, and rising pressure sheds
// work in reverse priority order — background refinement parks first
// (re-enqueued when pressure clears), then batch requests answer 429 +
// Retry-After, and at Critical new searches are granted a floor reservation
// that aborts them before they expand, so interactive best-effort traffic
// degrades to its heuristic fallback (repaired later by refinement) and
// exact-strategy requests answer 503 + Retry-After. The search core enforces
// the granted ceilings itself through byte-accurate frontier accounting, so
// a search never retains more than its reservation no matter what the
// watchdog sees. Pressure state is exported on /metrics (serenityd_mem_*)
// and /readyz.
//
// With -store-dir the memo gains a persistent tier: per-segment results are
// also written (asynchronously) to a content-addressed on-disk artifact
// store, and a restarted server warm-starts from it — lookups fall through
// memory → disk → fresh DP, so a deploy, crash, or autoscale event no longer
// re-pays the whole corpus under live traffic. The store is size-bounded
// (-store-max-bytes, LRU), checksummed per record, and survives corruption
// by recomputing (see serenity.ScheduleStore and the serenity store
// subcommand for ls/verify/gc/export/import). On SIGINT/SIGTERM the server
// drains in-flight requests for -drain-timeout and flushes the store before
// exiting.
//
// With -peer-addr and -peers the store becomes one shard of a distributed
// compile fleet: a static cluster of serenityd instances sharing one global
// artifact corpus over a consistent-hash ring, so each distinct segment
// fingerprint pays its DP once fleet-wide. A memo/disk miss asks the key's
// ring owner (GET /v1/peer/segment/{key}, budgeted by -peer-timeout) before
// falling back to the local DP; fresh local computes of non-owned keys are
// replicated to their owners in the background; and a pull-based anti-entropy
// loop (-peer-sync-interval) converges whatever replication missed, a capped
// batch per round. Peer traffic runs in its own admission lane (-peer-slots),
// apart from compile slots. Every fleet failure mode — dead peer, slow peer,
// corrupt artifact — degrades to local compute, never to a client-visible
// error. GET /readyz answers 503 until the store warm-start and ring wiring
// finish, so load balancers can hold traffic off a booting node (/healthz
// stays a pure liveness probe).
//
// Membership is dynamic: a background health prober (-peer-probe-interval,
// -peer-probe-timeout) heartbeats every peer's /readyz and drives it through
// alive -> suspect (-peer-suspect-after failures; the fetch path skips it
// immediately, so a freshly dead owner stops costing timeouts after its FIRST
// failure) -> dead (-peer-dead-after; every path routes around it and its
// keys fail over to the next live ring point, identically on every node) and
// back (-peer-revive-after successes). Fetch outcomes feed the same detector,
// so discovery does not wait for the next probe tick. POST
// /admin/fleet/join?peer=URL and /admin/fleet/leave?peer=URL edit this node's
// membership view without a restart (GET /admin/fleet shows it); a booting
// node pre-streams the fleet corpus to convergence before reporting ready
// (-peer-join-sync, bounded by -peer-join-timeout), so the moment it takes
// ownership it serves its keys with zero fresh DP searches. Per-peer health
// is exported as serenityd_peer_state{peer,state} gauges plus probe/failover
// counters on /metrics and in the /readyz payload.
//
// Example:
//
//	graphgen -net swiftnet-a -o model.json   # any JSON IR producer works
//	curl -s -X POST --data-binary @model.json localhost:7433/v1/schedule
//
// With -loadgen the binary instead starts an in-process server, fires
// -loadgen-n requests at it from -loadgen-c concurrent clients drawing from
// the bundled benchmark models under a rotating mix of strategies (exact,
// greedy, best-effort-with-deadline), and prints the achieved throughput —
// a self-contained demonstration of the cache, the concurrent scheduler,
// and the degradable search path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	serenity "github.com/serenity-ml/serenity"
	"github.com/serenity-ml/serenity/internal/fleet"
	"github.com/serenity-ml/serenity/internal/govern"
	"github.com/serenity-ml/serenity/internal/trace"
)

func main() {
	addr := flag.String("addr", ":7433", "listen address")
	cacheSize := flag.Int("cache", 256, "schedule cache capacity (entries)")
	segMemoSize := flag.Int("segment-memo-size", 4096, "cross-request segment memo capacity (segment results; 0 disables)")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0), "per-request segment scheduling parallelism")
	strategy := flag.String("strategy", "exact", "default search strategy (exact|greedy|best-effort); requests override with ?strategy=")
	stepTimeout := flag.Duration("timeout", time.Second, "adaptive soft budgeting step timeout T")
	noRewrite := flag.Bool("no-rewrite", false, "disable identity graph rewriting")
	noPartition := flag.Bool("no-partition", false, "disable divide-and-conquer")
	maxNodes := flag.Int("max-nodes", 20000, "reject graphs with more nodes (0 = unlimited)")
	computeTimeout := flag.Duration("compute-timeout", 2*time.Minute, "server-side limit per compilation (0 = unlimited)")
	storeDir := flag.String("store-dir", "", "persist segment schedules to this directory and warm-start from it on boot (empty = in-memory only)")
	storeMax := flag.String("store-max-bytes", "256MiB", "persistent store size bound, e.g. 64MiB or 0 for unbounded (requires -store-dir)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown: how long to wait for in-flight compilations on SIGINT/SIGTERM")
	compileSlots := flag.Int("compile-slots", runtime.GOMAXPROCS(0), "concurrently executing compilations; interactive > batch > refinement priority (0 = unlimited, no admission control)")
	admitQueue := flag.Int("admit-queue", 64, "per-class admission wait-queue depth; a full class answers 429 + Retry-After")
	refineWorkers := flag.Int("refine-workers", 1, "background refinement workers repairing degraded schedules (0 disables serve-then-refine)")
	refineQueue := flag.Int("refine-queue", 256, "background refinement queue depth; overflow refinements are shed")
	memLimit := flag.String("mem-limit", "", "byte budget the memory governor defends, e.g. 256MiB; empty derives it from GOMEMLIMIT, 0 disables the governor")
	memHeadroom := flag.String("mem-headroom", "", "slack subtracted from -mem-limit before pressure watermarks are computed (runtime, buffers); empty = limit/16")
	peersFlag := flag.String("peers", "", "comma-separated fleet member base URLs (e.g. http://10.0.0.5:7433,http://10.0.0.6:7433); requires -peer-addr")
	peerAddr := flag.String("peer-addr", "", "this node's own base URL as fleet peers dial it; joins the fleet and requires -store-dir (the store is the fleet-visible corpus)")
	peerVnodes := flag.Int("peer-vnodes", fleet.DefaultVirtualNodes, "consistent-hash virtual nodes per fleet member")
	peerTimeout := flag.Duration("peer-timeout", 250*time.Millisecond, "per-attempt budget for one peer artifact fetch; a slow peer costs at most two of these, then its breaker trips")
	peerConcurrency := flag.Int("peer-concurrency", 8, "in-flight peer fetches; arrivals beyond the bound skip the fleet tier instead of queueing")
	peerSlots := flag.Int("peer-slots", 4, "concurrently served peer requests, a dedicated admission lane apart from -compile-slots (0 = unlimited)")
	peerSyncInterval := flag.Duration("peer-sync-interval", 15*time.Second, "anti-entropy round interval, jittered per node (0 disables the background sync loop)")
	peerSyncBatch := flag.Int("peer-sync-batch", 512, "max store records pulled per anti-entropy round; a rebooted node converges over several rounds instead of thundering onto one peer")
	peerProbeInterval := flag.Duration("peer-probe-interval", 2*time.Second, "health probe round interval, jittered per node (0 disables health-driven failover; the fleet falls back to breaker-only protection)")
	peerProbeTimeout := flag.Duration("peer-probe-timeout", 500*time.Millisecond, "budget for one health probe against a peer's /readyz")
	peerSuspectAfter := flag.Int("peer-suspect-after", 1, "consecutive probe/fetch failures before a peer is suspect (skipped by the fetch path)")
	peerDeadAfter := flag.Int("peer-dead-after", 3, "consecutive failures before a peer is dead (skipped by every path; its keys fail over)")
	peerReviveAfter := flag.Int("peer-revive-after", 1, "consecutive probe successes before a suspect or dead peer is alive again")
	peerJoinSync := flag.Bool("peer-join-sync", true, "pre-stream the fleet corpus (anti-entropy until convergence) before reporting ready, so a joining node serves its owned keys without re-running DPs")
	peerJoinTimeout := flag.Duration("peer-join-timeout", 30*time.Second, "bound on the join pre-stream; on expiry the node goes ready with whatever converged (anti-entropy finishes the rest in the background)")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json (log/slog; request lines carry request_id and trace_id)")
	logLevel := flag.String("log-level", "info", "minimum log level: debug|info|warn|error (per-request success lines log at debug)")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof plus the /debug/traces surface; never mounted on the public port (empty disables pprof entirely)")
	traceSample := flag.Int("trace-sample", 0, "ambiently trace one in N schedule requests into the /debug/traces ring (0 = only ?debug=trace requests)")
	traceRing := flag.Int("trace-ring", 256, "retained traces in the /debug/traces ring (tail-sampled: degraded, erred, and slowest requests are always kept)")
	loadgen := flag.Bool("loadgen", false, "run the load generator against an in-process server instead of serving")
	loadN := flag.Int("loadgen-n", 200, "loadgen: total requests")
	loadC := flag.Int("loadgen-c", 16, "loadgen: concurrent clients")
	loadgenFleet := flag.Bool("loadgen-fleet", false, "drill a 3-node in-process fleet (pay-once, anti-entropy, dead-owner degradation) instead of serving")
	loadgenMem := flag.Bool("loadgen-mem", false, "run the self-asserting memory-pressure drill (walks the governor's shed ladder, then proves recovery) instead of serving; needs -mem-limit or GOMEMLIMIT")
	flag.Parse()

	opts := serenity.DefaultOptions()
	opts.Rewrite = !*noRewrite
	opts.Partition = !*noPartition
	opts.StepTimeout = *stepTimeout
	opts.Parallelism = *parallelism
	st, err := serenity.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serenityd:", err)
		os.Exit(2)
	}
	opts.Strategy = st
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "serenityd:", err)
		os.Exit(2)
	}

	// Structured logging first: every later boot line goes through it.
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "serenityd: -log-level:", err)
		os.Exit(2)
	}
	var lh slog.Handler
	switch *logFormat {
	case "text":
		lh = slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
	case "json":
		lh = slog.NewJSONHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})
	default:
		fmt.Fprintln(os.Stderr, `serenityd: -log-format must be "text" or "json"`)
		os.Exit(2)
	}
	logger := slog.New(lh)
	slog.SetDefault(logger)

	s := newServer(opts, *cacheSize)
	s.logger = logger
	// The tracer exists regardless of sampling: ?debug=trace requests are
	// always traced, and the fleet/refinement layers feed fragments into it.
	s.tracer = trace.New(trace.Options{RingSize: *traceRing, SampleEvery: *traceSample})
	if *segMemoSize > 0 {
		s.segMemo = serenity.NewSegmentMemo(*segMemoSize)
	}
	s.maxNodes = *maxNodes
	s.computeTimeout = *computeTimeout
	if *compileSlots > 0 {
		s.admit = newAdmission(*compileSlots, [numClasses]int{*admitQueue, *admitQueue, *admitQueue})
	}

	// Flag-level validation before any resource is opened: a store bound
	// without a store is a configuration mistake, not a silent no-op.
	storeMaxSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "store-max-bytes" {
			storeMaxSet = true
		}
	})
	if storeMaxSet && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "serenityd: -store-max-bytes requires -store-dir")
		os.Exit(2)
	}
	if *peersFlag != "" && *peerAddr == "" {
		fmt.Fprintln(os.Stderr, "serenityd: -peers requires -peer-addr (this node's own base URL)")
		os.Exit(2)
	}
	if *peerAddr != "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "serenityd: -peer-addr requires -store-dir (the persistent store is the fleet-visible artifact corpus)")
		os.Exit(2)
	}
	if *storeDir != "" {
		maxBytes, err := parseBytes(*storeMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serenityd: -store-max-bytes:", err)
			os.Exit(2)
		}
		store, err := serenity.OpenScheduleStore(*storeDir, maxBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serenityd: opening schedule store:", err)
			os.Exit(1)
		}
		s.store = store
		st := store.Stats()
		logger.Info("warm-start from schedule store",
			"artifacts", st.Entries, "bytes", st.LiveBytes, "dir", *storeDir, "corrupt_skipped", st.CorruptRecords)
	}

	if *peerAddr != "" {
		ring, err := fleet.NewRing(*peerAddr, splitPeers(*peersFlag), *peerVnodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serenityd:", err)
			os.Exit(2)
		}
		s.ring.Store(ring)
		s.peerVnodes = *peerVnodes
		if *peerProbeInterval > 0 {
			// Probes target /readyz, not the fleet ping: a node pre-streaming
			// its corpus answers 503 and therefore takes no ownership until
			// its join handoff completes.
			s.health = fleet.NewHealth(ring.Peers(), fleet.HealthOptions{
				Interval:     *peerProbeInterval,
				Timeout:      *peerProbeTimeout,
				SuspectAfter: *peerSuspectAfter,
				DeadAfter:    *peerDeadAfter,
				ReviveAfter:  *peerReviveAfter,
				ProbePath:    "/readyz",
				OnTransition: func(peer string, from, to fleet.State) {
					logger.Info("fleet peer transition", "peer", peer, "from", from.String(), "to", to.String())
				},
			})
		}
		s.peers = fleet.NewClient(ring, fleet.ClientOptions{
			Timeout:     *peerTimeout,
			Concurrency: *peerConcurrency,
			Health:      s.health,
		})
		var gate fleet.Gate
		if *peerSlots > 0 {
			gate = peerGate(*peerSlots)
		}
		s.peerSrv = fleet.NewServer(s.store, ring, gate)
		// Peer requests carrying a traceparent header record their serve
		// spans under the caller's trace ID, so one trace stitches across
		// the fleet.
		s.peerSrv.SetTracer(s.tracer)
		if *peerSyncInterval > 0 {
			// The loop starts even on a currently peerless node: admin join can
			// add members later, and the loop idles until one exists.
			s.syncer = fleet.NewSyncer(s.store, ring, fleet.SyncerOptions{
				Interval: *peerSyncInterval,
				Batch:    *peerSyncBatch,
				Health:   s.health,
				Tracer:   s.tracer,
			})
			s.syncer.Start()
		}
		if s.health != nil {
			s.health.Start()
		}
		logger.Info("fleet assembled",
			"members", len(ring.Members()), "self", ring.Self(), "owned_share", ring.OwnedShare(4096))
	}

	// The memory governor converts heap pressure into tiered degradation
	// instead of an OOM kill: refinement parks first, then batch sheds with
	// 429, then interactive searches are forced down to their heuristic
	// fallback (serve-then-refine repairs them once pressure clears). Built
	// before the refinement pool so the pool's pressure signal can hook it.
	govOpts := govern.Options{}
	if *memLimit != "" {
		v, err := parseBytes(*memLimit)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serenityd: -mem-limit:", err)
			os.Exit(2)
		}
		if v <= 0 {
			v = -1 // explicit 0 disables; only an empty flag derives from GOMEMLIMIT
		}
		govOpts.Limit = v
	}
	if *memHeadroom != "" {
		v, err := parseBytes(*memHeadroom)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serenityd: -mem-headroom:", err)
			os.Exit(2)
		}
		govOpts.Headroom = v
	}
	s.gov = govern.New(govOpts)
	if s.gov.Enabled() {
		s.gov.Start()
		logger.Info("memory governor started", "limit_bytes", s.gov.Stats().Limit, "watermarks", "70/85/95%")
	}

	if *refineWorkers > 0 {
		ropts := serenity.RefinePoolOptions{
			Workers:     *refineWorkers,
			QueueDepth:  *refineQueue,
			Parallelism: 1, // background repairs crawl one segment at a time
			// Refinement lifecycle spans (queued/parked/run) link back to the
			// originating request's trace.
			Tracer: s.tracer,
		}
		if s.gov.Enabled() {
			// Refinement is the first work the pressure ladder sheds: parked
			// at Elevated and above, re-enqueued when the level drops back.
			ropts.Pressure = func() bool { return s.gov.Level() >= govern.LevelElevated }
		}
		if s.admit != nil {
			// Refinements compete for the same compile slots as requests, in
			// the lowest priority class: they only run when nothing a client
			// is waiting on needs the CPU.
			ropts.Gate = func(ctx context.Context) (func(), error) {
				return s.admit.acquire(ctx, classRefine, 1)
			}
		}
		s.refine = serenity.NewRefinePool(s.segMemo, s.store, ropts)
	}

	// The serve path flips readiness only after the join pre-stream (below);
	// the loadgen modes have no probers pointed at them and go ready here.
	if *loadgen || *loadgenFleet || *loadgenMem {
		s.ready.Store(true)
	}

	if *loadgenFleet {
		// The drill builds its own 3-node fleet; the server assembled above
		// only contributed flag validation, so release its resources first.
		closeFleet(s)
		closeRefine(s)
		closeGovern(s)
		closeStore(s)
		if err := runFleetDrill(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "serenityd:", err)
			os.Exit(1)
		}
		return
	}
	if *loadgenMem {
		err := runMemDrill(s, os.Stdout)
		closeFleet(s)
		closeRefine(s)
		closeGovern(s)
		closeStore(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serenityd:", err)
			os.Exit(1)
		}
		return
	}
	if *loadgen {
		err := runLoadgen(s, *loadN, *loadC, os.Stdout)
		closeFleet(s)
		closeRefine(s)
		closeGovern(s)
		closeStore(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serenityd:", err)
			os.Exit(1)
		}
		return
	}
	// The pprof surface binds to its own listener ONLY: profiling endpoints
	// never share the public port, so an internet-facing deployment cannot
	// leak heap contents by mux accident. The trace inspection endpoints are
	// mounted here too, for operators who firewall the public /debug/traces.
	if *debugAddr != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("GET /debug/pprof/", pprof.Index)
		dmux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		s.registerDebug(dmux)
		dsrv := &http.Server{
			Addr:              *debugAddr,
			Handler:           dmux,
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			if err := dsrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "addr", *debugAddr, "error", err.Error())
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}

	logger.Info("listening", "addr", *addr, "cache", *cacheSize, "parallelism", *parallelism)
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.handler(),
		// No WriteTimeout: compilations may legitimately run long. Header
		// and idle timeouts keep slow or abandoned connections from
		// pinning goroutines and descriptors.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Graceful shutdown: the first SIGINT/SIGTERM stops accepting work and
	// drains in-flight compilations for up to -drain-timeout; the store is
	// flushed after the handlers are done writing to it. A second signal
	// kills the process the hard way (signal.NotifyContext restores default
	// handling once the context fires).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.ListenAndServe() }()
	// Join handoff: with the listener up (so /readyz answers 503 and peers'
	// probes see a node that exists but must not take ownership yet), pull the
	// fleet corpus to convergence BEFORE going ready. The moment peers start
	// routing this node's keys at it, it serves them from its store instead of
	// re-running their DPs. A fresh single-node fleet converges instantly; on
	// pre-stream timeout the node goes ready anyway and background anti-entropy
	// finishes the job.
	if s.syncer != nil && *peerJoinSync {
		joinCtx, cancelJoin := context.WithTimeout(ctx, *peerJoinTimeout)
		pulled, err := s.syncer.Converge(joinCtx)
		cancelJoin()
		if err != nil {
			logger.Warn("join pre-stream incomplete; anti-entropy continues in the background",
				"records", pulled, "error", err.Error())
		} else if pulled > 0 {
			logger.Info("join pre-stream complete; serving warm", "records", pulled)
		}
	}
	s.ready.Store(true)
	select {
	case err := <-serveErr:
		closeFleet(s)
		closeRefine(s)
		closeGovern(s)
		closeStore(s)
		fmt.Fprintln(os.Stderr, "serenityd:", err)
		os.Exit(1)
	case <-ctx.Done():
		stop()
		logger.Info("shutting down", "drain_timeout", drainTimeout.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err := srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			logger.Warn("drain incomplete", "error", err.Error())
		}
		if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			logger.Warn("serve error", "error", serr.Error())
		}
		// Shutdown order matters: the syncer and replication client write to
		// the store, the refinement pool writes to the memo, store, and cache,
		// the governor's pressure signal is read by the pool — stop each
		// producer before the tier it feeds, store last.
		closeFleet(s)
		closeRefine(s)
		closeGovern(s)
		closeStore(s)
		logger.Info("stopped")
	}
}

// splitPeers parses the -peers flag: comma-separated base URLs, blanks
// dropped (the ring normalizes and deduplicates further).
func splitPeers(list string) []string {
	var out []string
	for _, p := range strings.Split(list, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// closeFleet stops the anti-entropy loop and the peer fetch/replication
// client. It must precede closeRefine/closeStore so no fleet-driven write
// lands on a store that has already shut down.
func closeFleet(s *server) {
	if s.health != nil {
		s.health.Stop()
		hs := s.health.Stats()
		s.logger.Info("health prober stopped",
			"probes", hs.Probes, "failures", hs.Failures, "transitions", hs.Transitions)
	}
	if s.syncer != nil {
		s.syncer.Stop()
		ys := s.syncer.Stats()
		s.logger.Info("anti-entropy stopped",
			"rounds", ys.Rounds, "pulled", ys.Pulled, "errors", ys.Errors)
	}
	if s.peers != nil {
		s.peers.Close()
		cs := s.peers.Stats()
		s.logger.Info("fleet client stopped",
			"hits", cs.Hits, "misses", cs.Misses, "timeouts", cs.Timeouts,
			"replicated", cs.Replicated, "replication_drops", cs.ReplicationDropped)
	}
}

// closeRefine stops the background refinement pool, canceling the running
// repair and shedding the backlog; it must precede closeStore so the store
// sees no writes after its own shutdown.
func closeRefine(s *server) {
	if s.refine == nil {
		return
	}
	s.refine.Close()
	st := s.refine.Stats()
	s.logger.Info("refinement pool stopped",
		"queued", st.Queued, "done", st.Done, "failed", st.Failed, "dropped", st.Dropped)
}

// closeGovern stops the memory governor's sampling watchdog and logs the
// pressure ledger it retires with. It runs after closeRefine (the pool's
// pressure signal reads the governor; stopping the watchdog first would be
// harmless but backwards) and before closeStore.
func closeGovern(s *server) {
	if !s.gov.Enabled() {
		return
	}
	s.gov.Stop()
	gs := s.gov.Stats()
	s.logger.Info("memory governor stopped",
		"level", gs.Level.String(), "sheds", gs.Sheds, "degraded", gs.Degraded,
		"grows", gs.Grows, "grow_denied", gs.GrowDenied)
}

// closeStore flushes and closes the persistent schedule store, logging the
// corpus it leaves behind for the next boot.
func closeStore(s *server) {
	if s.store == nil {
		return
	}
	if err := s.store.Close(); err != nil {
		s.logger.Warn("closing schedule store failed", "error", err.Error())
		return
	}
	st := s.store.Stats()
	s.logger.Info("schedule store flushed",
		"artifacts", st.Entries, "live_bytes", st.LiveBytes, "writes", st.Writes)
}

// parseBytes accepts "262144", "250KiB"/"250KB", or "4MiB"/"4MB".
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	u := strings.ToLower(s)
	switch {
	case strings.HasSuffix(u, "kib"), strings.HasSuffix(u, "kb"):
		mult = 1024
		u = strings.TrimSuffix(strings.TrimSuffix(u, "kib"), "kb")
	case strings.HasSuffix(u, "mib"), strings.HasSuffix(u, "mb"):
		mult = 1 << 20
		u = strings.TrimSuffix(strings.TrimSuffix(u, "mib"), "mb")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return v * mult, nil
}
