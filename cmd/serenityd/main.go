// Command serenityd is the SERENITY compile server: it schedules dataflow
// graphs for minimum peak activation memory over HTTP, caching results by
// structural fingerprint so repeated compilations of the same topology are
// O(1).
//
//	serenityd -addr :7433 [-cache 256] [-parallelism 8] [-timeout 1s]
//
// Endpoints:
//
//	POST /v1/schedule   body: graph in the JSON IR format (see internal/graph)
//	                    query: parallelism=N, budget=250KiB, rewrite=false,
//	                    partition=false, strategy=exact|greedy|best-effort,
//	                    deadline_ms=N override the server defaults; with
//	                    strategy=best-effort an expiring deadline degrades
//	                    the search to the greedy heuristic instead of
//	                    failing the request
//	                    response: order, peak, arena_size, quality,
//	                    segment_quality, fallbacks, stage_ms,
//	                    segment_memo_hits, ...; when rewriting changed the
//	                    graph, rewritten_graph carries the IR the order
//	                    indexes
//	POST /v1/schedule/batch
//	                    body: {"items": [<graph>, ...]} (same IR, up to 256
//	                    graphs); same query parameters, applied to every
//	                    item. Items fan out over a worker pool bounded by
//	                    parallelism and are answered per item: the response
//	                    is {"items": [{index, status, schedule|error},...],
//	                    "scheduled": N, "failed": M} with per-item statuses
//	                    matching the single endpoint (one bad graph fails
//	                    its item, not the batch)
//	GET  /healthz       liveness probe
//	GET  /metrics       Prometheus-style counters (cache hits, in-flight
//	                    requests, states explored, fallbacks, per-stage
//	                    compile seconds, segment memo hits/misses, ...)
//
// Beyond the whole-graph schedule cache, the server keeps a cross-request
// *segment* memo (-segment-memo-size, 0 disables): per-segment DP results
// keyed by the segment's structural fingerprint plus the strategy, shared
// across all requests. Different models that stack the same cell — the
// repeated-cell shape of NAS-style irregularly wired networks — pay for that
// cell's DP once, ever; concurrent requests for the same segment coalesce
// into one search. Degraded (deadline-fallback) segment results are never
// memoized, so one overloaded moment cannot pin heuristic schedules.
//
// Example:
//
//	graphgen -net swiftnet-a -o model.json   # any JSON IR producer works
//	curl -s -X POST --data-binary @model.json localhost:7433/v1/schedule
//
// With -loadgen the binary instead starts an in-process server, fires
// -loadgen-n requests at it from -loadgen-c concurrent clients drawing from
// the bundled benchmark models under a rotating mix of strategies (exact,
// greedy, best-effort-with-deadline), and prints the achieved throughput —
// a self-contained demonstration of the cache, the concurrent scheduler,
// and the degradable search path.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	serenity "github.com/serenity-ml/serenity"
)

func main() {
	addr := flag.String("addr", ":7433", "listen address")
	cacheSize := flag.Int("cache", 256, "schedule cache capacity (entries)")
	segMemoSize := flag.Int("segment-memo-size", 4096, "cross-request segment memo capacity (segment results; 0 disables)")
	parallelism := flag.Int("parallelism", runtime.GOMAXPROCS(0), "per-request segment scheduling parallelism")
	strategy := flag.String("strategy", "exact", "default search strategy (exact|greedy|best-effort); requests override with ?strategy=")
	stepTimeout := flag.Duration("timeout", time.Second, "adaptive soft budgeting step timeout T")
	noRewrite := flag.Bool("no-rewrite", false, "disable identity graph rewriting")
	noPartition := flag.Bool("no-partition", false, "disable divide-and-conquer")
	maxNodes := flag.Int("max-nodes", 20000, "reject graphs with more nodes (0 = unlimited)")
	computeTimeout := flag.Duration("compute-timeout", 2*time.Minute, "server-side limit per compilation (0 = unlimited)")
	loadgen := flag.Bool("loadgen", false, "run the load generator against an in-process server instead of serving")
	loadN := flag.Int("loadgen-n", 200, "loadgen: total requests")
	loadC := flag.Int("loadgen-c", 16, "loadgen: concurrent clients")
	flag.Parse()

	opts := serenity.DefaultOptions()
	opts.Rewrite = !*noRewrite
	opts.Partition = !*noPartition
	opts.StepTimeout = *stepTimeout
	opts.Parallelism = *parallelism
	st, err := serenity.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serenityd:", err)
		os.Exit(2)
	}
	opts.Strategy = st
	if err := opts.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "serenityd:", err)
		os.Exit(2)
	}

	s := newServer(opts, *cacheSize)
	if *segMemoSize > 0 {
		s.segMemo = serenity.NewSegmentMemo(*segMemoSize)
	}
	s.maxNodes = *maxNodes
	s.computeTimeout = *computeTimeout
	if *loadgen {
		if err := runLoadgen(s, *loadN, *loadC, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "serenityd:", err)
			os.Exit(1)
		}
		return
	}
	log.Printf("serenityd listening on %s (cache=%d, parallelism=%d)", *addr, *cacheSize, *parallelism)
	srv := &http.Server{
		Addr:    *addr,
		Handler: s.handler(),
		// No WriteTimeout: compilations may legitimately run long. Header
		// and idle timeouts keep slow or abandoned connections from
		// pinning goroutines and descriptors.
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "serenityd:", err)
		os.Exit(1)
	}
}

// parseBytes accepts "262144", "250KiB"/"250KB", or "4MiB"/"4MB".
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	u := strings.ToLower(s)
	switch {
	case strings.HasSuffix(u, "kib"), strings.HasSuffix(u, "kb"):
		mult = 1024
		u = strings.TrimSuffix(strings.TrimSuffix(u, "kib"), "kb")
	case strings.HasSuffix(u, "mib"), strings.HasSuffix(u, "mb"):
		mult = 1 << 20
		u = strings.TrimSuffix(strings.TrimSuffix(u, "mib"), "mb")
	}
	v, err := strconv.ParseInt(strings.TrimSpace(u), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q", s)
	}
	return v * mult, nil
}
