package main

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/serenity-ml/serenity/internal/fleet"
	"github.com/serenity-ml/serenity/internal/govern"
)

// admitClass is a request's admission priority. Lower values are admitted
// first: a live caller waiting on one schedule beats a batch sweep, and both
// beat the background refinement of answers already served.
type admitClass int

const (
	classInteractive admitClass = iota
	classBatch
	classRefine
	numClasses
	// classPreAdmitted marks work whose slots were already acquired by an
	// enclosing request (batch items run under their batch's grant); the
	// scheduler skips admission for it.
	classPreAdmitted admitClass = -1
)

func (c admitClass) String() string {
	switch c {
	case classInteractive:
		return "interactive"
	case classBatch:
		return "batch"
	case classRefine:
		return "refinement"
	}
	return "unknown"
}

// errAdmission is the typed rejection the admission controller returns when a
// class's wait queue is full; the HTTP layer maps it to 429 + Retry-After.
type errAdmission struct {
	class      admitClass
	retryAfter time.Duration
}

func (e *errAdmission) Error() string {
	return fmt.Sprintf("server overloaded: %s admission queue is full, retry in %s", e.class, e.retryAfter)
}

// memPressureRetryAfter is the backoff advice attached to memory-pressure
// rejections. Coarse, like retryAfterFor: heap relief depends on GC and on
// running searches releasing their reservations, both of which resolve in
// seconds, not milliseconds.
const memPressureRetryAfter = 2 * time.Second

// errMemPressure is the typed rejection for memory-governor shedding. Unlike
// errAdmission (the client sent more than the server's queues hold: 429),
// pressure is the server's own condition, so the HTTP layer answers 503 +
// Retry-After — "I am unwell, come back" rather than "you are too eager".
type errMemPressure struct {
	level      govern.Level
	retryAfter time.Duration
	cause      error
}

func (e *errMemPressure) Error() string {
	msg := fmt.Sprintf("server under memory pressure (%s), retry in %s", e.level, e.retryAfter)
	if e.cause != nil {
		msg += ": " + e.cause.Error()
	}
	return msg
}

func (e *errMemPressure) Unwrap() error { return e.cause }

// admitWaiter is one queued acquire.
type admitWaiter struct {
	weight  int
	granted chan struct{}
}

// admission is a weighted, strictly prioritized semaphore over the server's
// compile slots. Capacity is the number of concurrently executing
// compilations (-compile-slots); an acquire takes weight slots (a batch
// takes one per item worker) and blocks until granted. Grants are strict
// priority with FIFO head-of-line order within each class: no slot goes to
// a class while a higher class has a waiter, and no waiter bypasses an
// earlier waiter of its own class — predictable degradation over maximal
// utilization. Each class's wait queue is bounded; an acquire against a
// full queue fails immediately with errAdmission (the caller answers 429 +
// Retry-After) rather than hanging the connection.
type admission struct {
	mu      sync.Mutex
	free    int
	slots   int
	limits  [numClasses]int
	queues  [numClasses][]*admitWaiter
	waiting [numClasses]atomic.Int64 // gauge: queued acquires per class

	admitted [numClasses]atomic.Int64
	rejected [numClasses]atomic.Int64
}

// newAdmission builds a controller with the given slot capacity (minimum 1)
// and per-class wait-queue limits (minimum 1 each).
func newAdmission(slots int, limits [numClasses]int) *admission {
	if slots < 1 {
		slots = 1
	}
	for i := range limits {
		if limits[i] < 1 {
			limits[i] = 1
		}
	}
	return &admission{free: slots, slots: slots, limits: limits}
}

// acquire takes weight compile slots in class, blocking until they are
// granted or ctx ends. Weights above the total capacity are clamped so an
// oversized request degrades to "the whole machine" instead of deadlocking.
// The returned release returns the slots and wakes the next waiters; it
// must be called exactly once. A full class queue fails fast with
// *errAdmission.
func (a *admission) acquire(ctx context.Context, class admitClass, weight int) (func(), error) {
	if weight < 1 {
		weight = 1
	}
	if weight > a.slots {
		weight = a.slots
	}
	a.mu.Lock()
	if len(a.queues[class]) >= a.limits[class] {
		depth := 0
		for c := admitClass(0); c < numClasses; c++ {
			depth += len(a.queues[c])
		}
		a.mu.Unlock()
		a.rejected[class].Add(1)
		return nil, &errAdmission{class: class, retryAfter: retryAfterFor(depth, a.slots)}
	}
	w := &admitWaiter{weight: weight, granted: make(chan struct{})}
	a.queues[class] = append(a.queues[class], w)
	a.waiting[class].Add(1)
	a.grantLocked()
	a.mu.Unlock()

	release := func() {
		a.mu.Lock()
		a.free += weight
		a.grantLocked()
		a.mu.Unlock()
	}
	select {
	case <-w.granted:
		a.waiting[class].Add(-1)
		a.admitted[class].Add(1)
		return release, nil
	case <-ctx.Done():
	}
	// The waiter gave up; it may have been granted concurrently, in which
	// case the slots must go back.
	a.mu.Lock()
	select {
	case <-w.granted:
		a.mu.Unlock()
		a.waiting[class].Add(-1)
		release()
		return nil, ctx.Err()
	default:
	}
	q := a.queues[class]
	for i, cand := range q {
		if cand == w {
			a.queues[class] = append(q[:i], q[i+1:]...)
			break
		}
	}
	// The abandoned waiter may have been the head-of-line blocker; whoever
	// is next might fit in the slots it was holding out for.
	a.grantLocked()
	a.mu.Unlock()
	a.waiting[class].Add(-1)
	return nil, ctx.Err()
}

// grantLocked hands free slots to waiters in strict priority order,
// head-of-line within each class. It stops at the first waiter it cannot
// satisfy: letting a smaller, lower-priority waiter slip past would let a
// stream of cheap refinements starve a wide batch forever.
func (a *admission) grantLocked() {
	for c := admitClass(0); c < numClasses; c++ {
		for len(a.queues[c]) > 0 {
			head := a.queues[c][0]
			if head.weight > a.free {
				return
			}
			a.free -= head.weight
			a.queues[c] = a.queues[c][1:]
			close(head.granted)
		}
	}
}

// peerGate is the fleet tier's own admission lane: a plain non-queueing
// semaphore of -peer-slots over the peer-facing handlers. Deliberately
// separate from the compile-slot controller — a peer artifact fetch must
// never wait behind a long local DP (its caller budgets a few hundred
// milliseconds, then computes), and a flood of peer traffic must never
// starve interactive compiles. Saturation sheds with 429; the fetching
// peer treats that as a miss without tripping its breaker.
func peerGate(slots int) fleet.Gate {
	sem := make(chan struct{}, slots)
	return func() (func(), bool) {
		select {
		case sem <- struct{}{}:
			return func() { <-sem }, true
		default:
			return nil, false
		}
	}
}

// retryAfterFor estimates when a rejected client should retry: one second
// per queued compile-slot generation, floored at one second. Coarse on
// purpose — it is backoff advice, not a reservation.
func retryAfterFor(queueDepth, slots int) time.Duration {
	if slots < 1 {
		slots = 1
	}
	d := time.Duration(1+queueDepth/slots) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}
