package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	serenity "github.com/serenity-ml/serenity"
	"github.com/serenity-ml/serenity/internal/fleet"
)

// testFleet builds an n-node in-process fleet with the drill's constructor
// and wires cleanup into the test.
func testFleet(t *testing.T, n int) []*drillNode {
	t.Helper()
	opts := serenity.DefaultOptions()
	opts.StepTimeout = 500 * time.Millisecond
	opts.Parallelism = 4
	nodes, err := newDrillFleet(opts, n)
	t.Cleanup(func() {
		for _, node := range nodes {
			if node != nil {
				node.close()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func fleetPost(t *testing.T, node *drillNode, body []byte) *scheduleResponse {
	t.Helper()
	sr, err := drillPost(node.ts, body)
	if err != nil {
		t.Fatal(err)
	}
	return sr
}

// TestFleetPayOnceAcrossServers is the tentpole contract at serenityd scope:
// node A compiles a corpus, write-behind replication distributes it, and node
// B answers the same graphs with zero fresh DP searches and bit-identical
// schedules, entirely from the fleet tier.
func TestFleetPayOnceAcrossServers(t *testing.T) {
	nodes := testFleet(t, 2)
	a, b := nodes[0], nodes[1]
	graphs := [][]byte{
		graphBody(t, smallCell(21)),
		graphBody(t, smallCell(22)),
		graphBody(t, serenity.SwiftNetCellA()),
	}

	orders := make([][]int, len(graphs))
	for i, g := range graphs {
		orders[i] = fleetPost(t, a, g).Order
	}
	if a.s.states.Load() == 0 {
		t.Fatal("node A's cold pass explored no states; the test workload is broken")
	}
	a.s.peers.Drain()

	peerHitsInResponses := 0
	for i, g := range graphs {
		sr := fleetPost(t, b, g)
		if !reflect.DeepEqual(sr.Order, orders[i]) {
			t.Errorf("graph %d: node B order %v diverged from node A %v", i, sr.Order, orders[i])
		}
		peerHitsInResponses += sr.SegmentMemoPeerHits
	}
	if fresh := b.s.states.Load(); fresh != 0 {
		t.Errorf("node B explored %d fresh DP states; the fleet should have answered every segment", fresh)
	}
	if bs := b.s.peers.Stats(); bs.Hits == 0 {
		t.Error("node B's fleet client reported no peer hits")
	}
	if peerHitsInResponses == 0 {
		t.Error("no response carried segment_memo_peer_hits > 0")
	}
	if got := metricValue(t, b.ts, "serenityd_peer_hits_total"); got == 0 {
		t.Error("node B's /metrics exports zero serenityd_peer_hits_total")
	}
	if got := metricValue(t, b.ts, "serenityd_states_explored_total"); got != 0 {
		t.Errorf("node B's /metrics exports %v fresh states", got)
	}
	// A served those fetches: its peer-facing hit counter moved too.
	if got := metricValue(t, a.ts, "serenityd_peer_served_hits_total"); got == 0 {
		t.Error("node A's /metrics exports zero serenityd_peer_served_hits_total")
	}
	if got := metricValue(t, a.ts, "serenityd_peer_ring_members"); got != 2 {
		t.Errorf("ring members gauge = %v, want 2", got)
	}
}

// TestFleetDeadPeerDegradesToLocalCompute: killing a peer mid-run must cost
// latency, never correctness — an unseen graph still compiles exactly, with
// no client-visible error.
func TestFleetDeadPeerDegradesToLocalCompute(t *testing.T) {
	nodes := testFleet(t, 2)
	a, b := nodes[0], nodes[1]

	// Warm the fleet so the surviving node has both kinds of keys.
	warm := graphBody(t, smallCell(31))
	want := fleetPost(t, a, warm)
	a.s.peers.Drain()

	a.ts.Close()

	// The warm graph still answers (store/replicated records + local compute
	// for whatever only A held), and an entirely fresh graph compiles exactly.
	got := fleetPost(t, b, warm)
	if !reflect.DeepEqual(got.Order, want.Order) {
		t.Errorf("surviving node's schedule diverged:\nA: %v\nB: %v", want.Order, got.Order)
	}
	fresh := fleetPost(t, b, graphBody(t, smallCell(32)))
	if fresh.Quality != serenity.QualityOptimal {
		t.Errorf("dead-peer compile degraded quality to %q", fresh.Quality)
	}
	if b.s.states.Load() == 0 {
		t.Error("surviving node never ran a local DP; the dead-peer path was not exercised")
	}
}

// TestReadyzDistinctFromHealthz: /healthz is liveness and always answers 200;
// /readyz answers 503 until boot completes (store warm, ring wired).
func TestReadyzDistinctFromHealthz(t *testing.T) {
	s, ts := testServer(t)

	get := func(path string) int {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz during boot = %d, want 200 (liveness must not gate on readiness)", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz before boot completion = %d, want 503", code)
	}
	s.ready.Store(true)
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz after boot = %d, want 200", code)
	}
}

// TestReadyzReportsFleetMembership: a fleet node's readiness payload names
// its ring so an operator can spot a node that joined the wrong cluster.
func TestReadyzReportsFleetMembership(t *testing.T) {
	nodes := testFleet(t, 3)
	resp, err := nodes[0].ts.Client().Get(nodes[0].ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d: %s", resp.StatusCode, data)
	}
	var body struct {
		Status       string `json:"status"`
		FleetMembers int    `json:"fleet_members"`
		FleetSelf    string `json:"fleet_self"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ready" || body.FleetMembers != 3 || body.FleetSelf == "" {
		t.Errorf("readyz payload %s, want status=ready members=3 self set", data)
	}
}

// adminCall hits a fleet admin endpoint on a node and returns status + body.
func adminCall(t *testing.T, node *drillNode, method, path string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, node.ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := node.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, data
}

// TestFleetAdminJoinLeave: membership is editable per node at runtime. A
// joined-but-dead member grows the ring, gets discovered by the prober, and
// is routed around; leaving it shrinks the ring and forgets its health.
func TestFleetAdminJoinLeave(t *testing.T) {
	nodes := testFleet(t, 2)
	a, b := nodes[0], nodes[1]

	code, data := adminCall(t, a, http.MethodGet, "/admin/fleet")
	if code != http.StatusOK {
		t.Fatalf("GET /admin/fleet = %d: %s", code, data)
	}
	var view struct {
		Self    string            `json:"self"`
		Members []string          `json:"members"`
		States  map[string]string `json:"states"`
	}
	if err := json.Unmarshal(data, &view); err != nil {
		t.Fatal(err)
	}
	if view.Self != a.ts.URL || len(view.Members) != 2 {
		t.Fatalf("fleet view %s, want self=%s and 2 members", data, a.ts.URL)
	}
	if view.States[b.ts.URL] != "alive" {
		t.Errorf("peer B state %q, want alive", view.States[b.ts.URL])
	}

	// Join a peer that is already a corpse: the ring grows immediately, the
	// prober discovers the dead socket, and compiles route around it.
	ghost := httptest.NewServer(http.NotFoundHandler())
	ghostURL := ghost.URL
	ghost.Close()
	code, data = adminCall(t, a, http.MethodPost, "/admin/fleet/join?peer="+url.QueryEscape(ghostURL))
	if code != http.StatusOK {
		t.Fatalf("join = %d: %s", code, data)
	}
	if got := metricValue(t, a.ts, "serenityd_peer_ring_members"); got != 3 {
		t.Errorf("ring members after join = %v, want 3", got)
	}
	deadline := time.Now().Add(15 * time.Second)
	for a.s.health.State(ghostURL) != fleet.StateDead {
		if time.Now().After(deadline) {
			t.Fatalf("prober never marked the joined corpse dead (state %s)", a.s.health.State(ghostURL))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sr := fleetPost(t, a, graphBody(t, smallCell(61))); sr.Quality != serenity.QualityOptimal {
		t.Errorf("compile with a dead member degraded quality to %q", sr.Quality)
	}

	// Error contract: join without ?peer=, leaving yourself, leaving a stranger.
	if code, _ = adminCall(t, a, http.MethodPost, "/admin/fleet/join"); code != http.StatusBadRequest {
		t.Errorf("join without peer = %d, want 400", code)
	}
	if code, _ = adminCall(t, a, http.MethodPost, "/admin/fleet/leave?peer="+url.QueryEscape(a.ts.URL)); code != http.StatusBadRequest {
		t.Errorf("self-leave = %d, want 400", code)
	}
	if code, _ = adminCall(t, a, http.MethodPost, "/admin/fleet/leave?peer="+url.QueryEscape("http://127.0.0.1:1/nobody")); code != http.StatusNotFound {
		t.Errorf("leave of a non-member = %d, want 404", code)
	}

	// Leave the corpse: the ring shrinks back and health stops tracking it
	// (untracked members read alive by design).
	code, data = adminCall(t, a, http.MethodPost, "/admin/fleet/leave?peer="+url.QueryEscape(ghostURL))
	if code != http.StatusOK {
		t.Fatalf("leave = %d: %s", code, data)
	}
	if got := metricValue(t, a.ts, "serenityd_peer_ring_members"); got != 2 {
		t.Errorf("ring members after leave = %v, want 2", got)
	}
	if st := a.s.health.State(ghostURL); st != fleet.StateAlive {
		t.Errorf("departed member still tracked as %s; forgotten members read alive", st)
	}
}

// newJoiner stands up a drill-style node that is NOT ready yet, with a ring
// spanning the existing fleet plus itself — the state a production joiner is
// in between its listener coming up and its join pre-stream finishing.
// onRound observes every pre-stream exchange from the syncing goroutine.
func newJoiner(t *testing.T, existing []*drillNode, onRound func(peer string, added int, err error)) *drillNode {
	t.Helper()
	opts := serenity.DefaultOptions()
	opts.StepTimeout = 500 * time.Millisecond
	opts.Parallelism = 4

	var handler atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h, _ := handler.Load().(http.Handler)
		if h == nil {
			http.Error(w, "booting", http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	}))
	node := &drillNode{ts: ts}
	t.Cleanup(node.close)

	store, err := serenity.OpenScheduleStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	urls := []string{ts.URL}
	for _, n := range existing {
		urls = append(urls, n.ts.URL)
	}
	ring, err := fleet.NewRing(ts.URL, urls, fleet.DefaultVirtualNodes)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(opts, 64)
	s.segMemo = serenity.NewSegmentMemo(4096)
	s.store = store
	s.ring.Store(ring)
	s.peerVnodes = fleet.DefaultVirtualNodes
	node.fault = fleet.NewFaultTransport(nil, 99)
	hc := &http.Client{Transport: node.fault}
	s.health = fleet.NewHealth(ring.Peers(), fleet.HealthOptions{
		Interval:   50 * time.Millisecond,
		Timeout:    500 * time.Millisecond,
		DeadAfter:  2,
		ProbePath:  "/readyz",
		HTTPClient: hc,
	})
	s.peers = fleet.NewClient(ring, fleet.ClientOptions{
		Timeout:    2 * time.Second,
		HTTPClient: hc,
		Health:     s.health,
	})
	s.peerSrv = fleet.NewServer(store, ring, peerGate(8))
	// Tiny batches force the pre-stream through several exchanges, so the
	// mid-stream readiness probe in the test has a window to observe.
	s.syncer = fleet.NewSyncer(store, ring, fleet.SyncerOptions{
		Batch:      4,
		HTTPClient: hc,
		Health:     s.health,
		OnRound:    onRound,
	})
	// Deliberately NOT ready: main.go flips ready only after the pre-stream
	// completes, and this helper replicates that ordering exactly.
	node.s = s
	handler.Store(s.handler())
	s.health.Start()
	return node
}

// TestFleetJoinHandoff certifies the join choreography: the joiner's /readyz
// answers 503 throughout the pre-stream (holding it out of every prober's
// routing), and once ready it serves the warm corpus with zero fresh DP work.
func TestFleetJoinHandoff(t *testing.T) {
	nodes := testFleet(t, 2)
	a := nodes[0]

	graphs := [][]byte{
		graphBody(t, smallCell(51)),
		graphBody(t, smallCell(52)),
		graphBody(t, serenity.SwiftNetCellA()),
	}
	orders := make([][]int, len(graphs))
	for i, g := range graphs {
		orders[i] = fleetPost(t, a, g).Order
	}
	a.s.peers.Drain()

	var joinerURL atomic.Value
	var midStreamNotReady atomic.Bool
	var rounds atomic.Int64
	onRound := func(peer string, added int, err error) {
		rounds.Add(1)
		tsURL, _ := joinerURL.Load().(string)
		if tsURL == "" {
			return
		}
		resp, err2 := http.Get(tsURL + "/readyz")
		if err2 != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			midStreamNotReady.Store(true)
		}
	}
	j := newJoiner(t, nodes, onRound)
	joinerURL.Store(j.ts.URL)

	// Announce the joiner to both members. Its listener is up but /readyz
	// answers 503, so their probers keep it out of routing while it streams.
	for _, n := range nodes {
		code, data := adminCall(t, n, http.MethodPost, "/admin/fleet/join?peer="+url.QueryEscape(j.ts.URL))
		if code != http.StatusOK {
			t.Fatalf("join on %s = %d: %s", n.ts.URL, code, data)
		}
	}
	deadline := time.Now().Add(15 * time.Second)
	for a.s.health.State(j.ts.URL) == fleet.StateAlive {
		if time.Now().After(deadline) {
			t.Fatal("A never noticed the joiner is not ready; probes must target /readyz")
		}
		time.Sleep(5 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	pulled, err := j.s.syncer.Converge(ctx)
	if err != nil {
		t.Fatalf("join pre-stream: %v", err)
	}
	if pulled == 0 {
		t.Fatal("join pre-stream imported nothing; the warm corpus should flow before readiness")
	}
	if rounds.Load() == 0 {
		t.Fatal("OnRound never fired during the pre-stream")
	}
	if !midStreamNotReady.Load() {
		t.Error("joiner answered /readyz 200 mid-pre-stream; readiness must wait for convergence")
	}

	j.s.ready.Store(true)
	for a.s.health.State(j.ts.URL) != fleet.StateAlive {
		if time.Now().After(deadline) {
			t.Fatal("A never revived the joiner after it turned ready")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The joiner now owns its keyspace share and answers the warm corpus
	// bit-identically with ZERO fresh DP states — the handoff delivered
	// everything before the first request arrived.
	for i, g := range graphs {
		sr := fleetPost(t, j, g)
		if !reflect.DeepEqual(sr.Order, orders[i]) {
			t.Errorf("graph %d: joiner order %v diverged from %v", i, sr.Order, orders[i])
		}
	}
	if fresh := j.s.states.Load(); fresh != 0 {
		t.Errorf("joiner explored %d fresh DP states; the pre-stream should have delivered the corpus", fresh)
	}
}

// TestFleetDrillSmoke runs the -loadgen-fleet drill end to end; it is the
// same machinery CI's multi-process smoke exercises, kept green from go test.
func TestFleetDrillSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("3-node drill compiles the full model zoo")
	}
	opts := serenity.DefaultOptions()
	opts.StepTimeout = 500 * time.Millisecond
	opts.Parallelism = 4
	var out bytes.Buffer
	if err := runFleetDrill(opts, &out); err != nil {
		t.Fatalf("fleet drill failed: %v\n%s", err, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("fleet drill: PASS")) {
		t.Errorf("drill output missing PASS line:\n%s", out.String())
	}
}
